package fusion_test

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/fusionstore/fusion/internal/workload"
)

// TestShedGate is the CI guard for overload behavior: it walks the
// saturation-knee ladder fresh (capacity is machine-dependent, so the knee
// is always re-measured, never read from the baseline), then drives the
// store at twice the measured knee — a scan-heavy aggressor plus a weighted
// latency-sensitive point-read tenant, every op carrying an end-to-end
// deadline — and fails unless the store degrades the only acceptable way:
//
//   - admitted reads stay ≥99% available for every tenant (shedding is
//     legal; failing work the scheduler accepted is not),
//   - every rejection is a classified, typed error (ErrOverloaded or a
//     deadline) — zero failures land in the "other" bucket,
//   - p99.9 stays bounded for admitted and shed ops alike (a deadline-
//     bounded system may not show an unbounded tail),
//   - the point tenant is actually served under the aggressor, and
//   - zero oracle mismatches, ever — overload must never corrupt reads.
//
// The checked-in BENCH_load.json knee is the trajectory record; this gate
// compares against it only informationally. It runs when FUSION_SHED_GATE=1
// so ordinary `go test ./...` stays timing-independent.
func TestShedGate(t *testing.T) {
	if os.Getenv("FUSION_SHED_GATE") != "1" {
		t.Skip("shed gate is timing-dependent; set FUSION_SHED_GATE=1 to run")
	}

	var baselineKnee float64
	if raw, err := os.ReadFile("BENCH_load.json"); err == nil {
		var baseline workload.LoadStats
		if err := json.Unmarshal(raw, &baseline); err == nil && baseline.Knee != nil {
			baselineKnee = baseline.Knee.KneeOps
		}
	}

	st, err := workload.MeasureKnee(workload.NewLab(1), workload.DefaultKneeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, rung := range st.Rungs {
		t.Logf("rung %.0f ops/s: slo_pass=%v goodput %.0f get p99.9 %.0fµs",
			rung.RateOps, rung.SLOPass, rung.GoodputOps, rung.GetP999Us)
	}
	t.Logf("knee: %.0f ops/s (saturated=%v, baseline artifact recorded %.0f)",
		st.KneeOps, st.Saturated, baselineKnee)

	sh := st.Shed
	if sh == nil {
		t.Fatal("knee experiment produced no shed leg")
	}
	if !sh.Pass {
		t.Errorf("shed verdict failed at %.0f ops/s (2x knee): %v", sh.OfferedOps, sh.Failures)
	}
	for name, tn := range sh.Tenants {
		// Re-assert the headline bounds explicitly so a verdict-computation
		// bug cannot silently pass the gate.
		if tn.AdmittedReadAvailability < 0.99 {
			t.Errorf("%s: admitted read availability %.4f < 0.99", name, tn.AdmittedReadAvailability)
		}
		if tn.Unclassified > 0 {
			t.Errorf("%s: %d unclassified failures under overload", name, tn.Unclassified)
		}
		if tn.OracleMismatches > 0 {
			t.Errorf("%s: %d oracle mismatches", name, tn.OracleMismatches)
		}
		if tn.GetP999Us > sh.TailBoundUs {
			t.Errorf("%s: get p99.9 %.0fµs exceeds bound %.0fµs", name, tn.GetP999Us, sh.TailBoundUs)
		}
		t.Logf("%s: offered %.0f ops/s, shed %d/%d, deadline-failed %d, admitted-read avail %.4f, get p99.9 %.0fµs",
			name, tn.RateOps, tn.Shed, tn.Attempted, tn.DeadlineFails,
			tn.AdmittedReadAvailability, tn.GetP999Us)
	}
}
