package snappy

import (
	"bytes"
	"testing"
)

// FuzzSnappyDecode throws arbitrary bytes at Decode: it must never panic or
// over-allocate, and anything it accepts must survive an
// Encode→Decode round trip byte-identically.
func FuzzSnappyDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x03, 0x08, 'a', 'b', 'c'})
	f.Add(Encode([]byte("the quick brown fox jumps over the lazy dog")))
	f.Add(Encode(bytes.Repeat([]byte("abcd"), 64)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}) // huge declared length
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return // rejected cleanly: fine
		}
		if n, err := DecodedLen(data); err != nil || n != len(dec) {
			t.Fatalf("DecodedLen = %d, %v; Decode returned %d bytes", n, err, len(dec))
		}
		re, err := Decode(Encode(dec))
		if err != nil {
			t.Fatalf("re-decode of re-encoded output failed: %v", err)
		}
		if !bytes.Equal(dec, re) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(dec), len(re))
		}
	})
}
