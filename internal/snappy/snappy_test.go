package snappy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc := Encode(src)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode(%d bytes): %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip failed for %d bytes", len(src))
	}
}

func TestRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abc"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte(strings.Repeat("abcd", 1000)),
		[]byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 100)),
		bytes.Repeat([]byte{0}, 1<<16),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 15, 16, 17, 63, 64, 65, 1000, 65535, 65536, 1 << 18} {
		// Incompressible random bytes.
		b := make([]byte, n)
		rng.Read(b)
		roundTrip(t, b)
		// Highly compressible: few distinct values.
		for i := range b {
			b[i] = byte(rng.Intn(3))
		}
		roundTrip(t, b)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(b []byte) bool {
		got, err := Decode(Encode(b))
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeHandCraftedVectors(t *testing.T) {
	cases := []struct {
		name string
		enc  []byte
		want []byte
	}{
		{
			name: "short literal",
			enc:  []byte{0x03, 0x02 << 2, 'a', 'b', 'c'},
			want: []byte("abc"),
		},
		{
			name: "overlapping copy1",
			// "a" then copy(offset=1, len=9): Snappy's RLE idiom.
			enc:  []byte{0x0a, 0x00, 'a', (9-4)<<2 | tagCopy1, 0x01},
			want: []byte("aaaaaaaaaa"),
		},
		{
			name: "copy2",
			// "ab" then copy(offset=2, len=4) via copy-2 element.
			enc:  []byte{0x06, 0x01 << 2, 'a', 'b', (4-1)<<2 | tagCopy2, 0x02, 0x00},
			want: []byte("ababab"),
		},
		{
			name: "empty",
			enc:  []byte{0x00},
			want: []byte{},
		},
	}
	for _, c := range cases {
		got, err := Decode(c.enc)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: got %q want %q", c.name, got, c.want)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                             // no preamble
		{0x05},                         // declared 5 bytes, no body
		{0x03, 0x02 << 2, 'a'},         // literal truncated
		{0x02, 0x00, 'a', 0x15, 0x05},  // copy offset beyond written output
		{0x01, (9 - 4) << 2 & 0xff, 1}, // copy before any output
		{0x01, 0x00, 'a', 0x00, 'b'},   // extra literal overruns declared len
		{0xff, 0xff, 0xff, 0xff, 0xff}, // absurd uvarint
		{0x04, tagCopy4, 1, 0, 0},      // copy4 truncated
		{0x04, 61 << 2, 0x01},          // 2-byte literal length truncated
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: Decode must fail", i)
		}
	}
}

func TestDecodedLen(t *testing.T) {
	enc := Encode(bytes.Repeat([]byte("x"), 12345))
	n, err := DecodedLen(enc)
	if err != nil || n != 12345 {
		t.Fatalf("DecodedLen = %d, %v; want 12345", n, err)
	}
	if _, err := DecodedLen(nil); err == nil {
		t.Fatal("DecodedLen of empty input must fail")
	}
}

func TestCompressionEffective(t *testing.T) {
	// Repetitive data must compress substantially; the paper relies on
	// column chunks reaching ratios up to ~63 (Fig. 6).
	data := bytes.Repeat([]byte("0.0400000"), 100000)
	enc := Encode(data)
	if ratio := float64(len(data)) / float64(len(enc)); ratio < 20 {
		t.Fatalf("repetitive data must compress at least 20x, got %.1fx", ratio)
	}
}

func TestIncompressibleExpandsWithinBound(t *testing.T) {
	b := make([]byte, 100000)
	rand.New(rand.NewSource(3)).Read(b)
	enc := Encode(b)
	if len(enc) > MaxEncodedLen(len(b)) {
		t.Fatalf("encoded %d exceeds MaxEncodedLen %d", len(enc), MaxEncodedLen(len(b)))
	}
}

func TestRatio(t *testing.T) {
	if Ratio(nil) != 1 {
		t.Fatal("Ratio of empty input must be 1")
	}
	if r := Ratio(bytes.Repeat([]byte("ab"), 10000)); r < 10 {
		t.Fatalf("Ratio of repetitive input too low: %v", r)
	}
}

func BenchmarkEncode1MB(b *testing.B) {
	data := []byte(strings.Repeat("SELECT l_extendedprice FROM lineitem; ", 1<<20/38))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Encode(data)
	}
}

func BenchmarkDecode1MB(b *testing.B) {
	data := []byte(strings.Repeat("SELECT l_extendedprice FROM lineitem; ", 1<<20/38))
	enc := Encode(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeLargeLiteralLengths(t *testing.T) {
	// Exercise the 2-, 3- and 4-byte literal length encodings directly.
	build := func(n int, hdr ...byte) []byte {
		enc := binaryAppendUvarint(nil, uint64(n))
		enc = append(enc, hdr...)
		for i := 0; i < n; i++ {
			enc = append(enc, byte(i))
		}
		return enc
	}
	// 61: 2-byte length (n-1 = 0x1234 -> n = 0x1235).
	n := 0x1235
	enc := build(n, 61<<2, byte(n-1), byte((n-1)>>8))
	got, err := Decode(enc)
	if err != nil || len(got) != n {
		t.Fatalf("2-byte literal: %d bytes, %v", len(got), err)
	}
	// 62: 3-byte length.
	n = 0x012345
	enc = build(n, 62<<2, byte(n-1), byte((n-1)>>8), byte((n-1)>>16))
	got, err = Decode(enc)
	if err != nil || len(got) != n {
		t.Fatalf("3-byte literal: %d bytes, %v", len(got), err)
	}
	// 63: 4-byte length.
	n = 0x0100005
	enc = build(n, 63<<2, byte(n-1), byte((n-1)>>8), byte((n-1)>>16), byte((n-1)>>24))
	got, err = Decode(enc)
	if err != nil || len(got) != n {
		t.Fatalf("4-byte literal: %d bytes, %v", len(got), err)
	}
}

func TestDecodeCopy4(t *testing.T) {
	// Hand-crafted copy-4 element: "ab" then copy(offset=2, len=6).
	enc := []byte{0x08, 0x01 << 2, 'a', 'b', (6-1)<<2 | tagCopy4, 2, 0, 0, 0}
	got, err := Decode(enc)
	if err != nil || string(got) != "abababab" {
		t.Fatalf("copy4: %q, %v", got, err)
	}
	// Bad copy4 offset.
	bad := []byte{0x08, 0x01 << 2, 'a', 'b', (6-1)<<2 | tagCopy4, 9, 0, 0, 0}
	if _, err := Decode(bad); err == nil {
		t.Fatal("copy4 with bad offset must fail")
	}
}

func TestDecodeRejectsHugeDeclaredLength(t *testing.T) {
	enc := binaryAppendUvarint(nil, 1<<62)
	if _, err := Decode(enc); err == nil {
		t.Fatal("absurd declared length must be rejected")
	}
	if _, err := DecodedLen(enc); err == nil {
		t.Fatal("DecodedLen must reject absurd lengths")
	}
}

func TestEncodeVeryLongMatch(t *testing.T) {
	// A 1KB run forces the >=68 branch of emitCopy repeatedly.
	data := bytes.Repeat([]byte{'z'}, 1024)
	data = append(data, []byte("tail-entropy-1234567890")...)
	roundTrip(t, data)
}

func binaryAppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}
