// Package snappy implements the Snappy block compression format from
// scratch, wire-compatible with the reference implementation. Fusion uses it
// to compress column-chunk pages when writing PAX files (§2) and to compress
// filter bitmaps before they cross the network (§5).
//
// The format is a little-endian uvarint with the decompressed length,
// followed by a sequence of literal and copy elements. See
// https://github.com/google/snappy/blob/main/format_description.txt.
package snappy

import (
	"encoding/binary"
	"errors"
)

// Element tags (low two bits of the tag byte).
const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03
)

// Errors returned by Decode.
var (
	ErrCorrupt  = errors.New("snappy: corrupt input")
	ErrTooLarge = errors.New("snappy: decoded block is too large")
)

// maxBlockSize is the largest decompressed block Decode will allocate.
const maxBlockSize = 1 << 30

// MaxEncodedLen returns an upper bound on the size of Encode's output for an
// input of srcLen bytes (the reference implementation's bound).
func MaxEncodedLen(srcLen int) int {
	return 32 + srcLen + srcLen/6
}

// Encode compresses src and returns the compressed block.
func Encode(src []byte) []byte {
	dst := make([]byte, 0, MaxEncodedLen(len(src)))
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(src)))
	dst = append(dst, lenBuf[:n]...)
	if len(src) == 0 {
		return dst
	}
	if len(src) < minMatchInput {
		return emitLiteral(dst, src)
	}
	return encodeBlock(dst, src)
}

// Inputs shorter than this cannot contain a worthwhile match.
const (
	minMatchInput = 16
	minMatchLen   = 4
	hashTableBits = 14
	hashTableSize = 1 << hashTableBits
)

func hash4(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - hashTableBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// encodeBlock is a greedy single-pass matcher in the style of the reference
// implementation: hash 4-byte windows, on a hit emit the pending literal and
// extend the match as far as it goes.
func encodeBlock(dst, src []byte) []byte {
	var table [hashTableSize]int32
	for i := range table {
		table[i] = -1
	}
	// s is the scan position, lit the start of the pending literal run.
	s, lit := 0, 0
	limit := len(src) - minMatchLen
	for s <= limit {
		h := hash4(load32(src, s))
		cand := int(table[h])
		table[h] = int32(s)
		if cand >= 0 && s-cand <= 1<<16-1 && load32(src, cand) == load32(src, s) {
			// Emit pending literal.
			if lit < s {
				dst = emitLiteral(dst, src[lit:s])
			}
			// Extend the match.
			matchLen := minMatchLen
			for s+matchLen < len(src) && src[cand+matchLen] == src[s+matchLen] {
				matchLen++
			}
			dst = emitCopy(dst, s-cand, matchLen)
			s += matchLen
			lit = s
			// Seed the table at the end of the match so back-to-back matches
			// are found quickly.
			if s <= limit {
				table[hash4(load32(src, s-1))] = int32(s - 1)
			}
			continue
		}
		s++
	}
	if lit < len(src) {
		dst = emitLiteral(dst, src[lit:])
	}
	return dst
}

// emitLiteral appends a literal element for lit to dst.
func emitLiteral(dst, lit []byte) []byte {
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|tagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|tagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|tagLiteral, byte(n), byte(n>>8))
	case n < 1<<24:
		dst = append(dst, 62<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16))
	default:
		dst = append(dst, 63<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return append(dst, lit...)
}

// emitCopy appends copy elements covering a match of the given length at the
// given backwards offset (1 ≤ offset ≤ 65535).
func emitCopy(dst []byte, offset, length int) []byte {
	// Long matches are emitted as a run of 64-byte copy-2 elements.
	for length >= 68 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length > 64 {
		// Leave at least 4 for the final element.
		dst = append(dst, 59<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 60
	}
	if 4 <= length && length <= 11 && offset < 1<<11 {
		dst = append(dst, byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1, byte(offset))
		return dst
	}
	return append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
}

// DecodedLen returns the declared decompressed length of a block.
func DecodedLen(src []byte) (int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 || v > maxBlockSize {
		return 0, ErrCorrupt
	}
	return int(v), nil
}

// Decode decompresses a Snappy block produced by Encode (or any conforming
// encoder) and returns the original bytes.
func Decode(src []byte) ([]byte, error) {
	declared, hdr := binary.Uvarint(src)
	if hdr <= 0 {
		return nil, ErrCorrupt
	}
	if declared > maxBlockSize {
		return nil, ErrTooLarge
	}
	dst := make([]byte, declared)
	d, s := 0, hdr
	for s < len(src) {
		tag := src[s]
		switch tag & 0x03 {
		case tagLiteral:
			n := int(tag >> 2)
			s++
			switch {
			case n < 60:
				n++
			case n == 60:
				if s >= len(src) {
					return nil, ErrCorrupt
				}
				n = int(src[s]) + 1
				s++
			case n == 61:
				if s+1 >= len(src) {
					return nil, ErrCorrupt
				}
				n = int(src[s]) | int(src[s+1])<<8
				n++
				s += 2
			case n == 62:
				if s+2 >= len(src) {
					return nil, ErrCorrupt
				}
				n = int(src[s]) | int(src[s+1])<<8 | int(src[s+2])<<16
				n++
				s += 3
			default: // 63
				if s+3 >= len(src) {
					return nil, ErrCorrupt
				}
				n = int(src[s]) | int(src[s+1])<<8 | int(src[s+2])<<16 | int(src[s+3])<<24
				n++
				s += 4
			}
			if n <= 0 || s+n > len(src) || d+n > len(dst) {
				return nil, ErrCorrupt
			}
			copy(dst[d:], src[s:s+n])
			s += n
			d += n
		case tagCopy1:
			if s+1 >= len(src) {
				return nil, ErrCorrupt
			}
			length := 4 + int(tag>>2)&0x07
			offset := int(tag&0xe0)<<3 | int(src[s+1])
			s += 2
			if err := copyWithin(dst, &d, offset, length); err != nil {
				return nil, err
			}
		case tagCopy2:
			if s+2 >= len(src) {
				return nil, ErrCorrupt
			}
			length := 1 + int(tag>>2)
			offset := int(src[s+1]) | int(src[s+2])<<8
			s += 3
			if err := copyWithin(dst, &d, offset, length); err != nil {
				return nil, err
			}
		default: // tagCopy4
			if s+4 >= len(src) {
				return nil, ErrCorrupt
			}
			length := 1 + int(tag>>2)
			offset := int(src[s+1]) | int(src[s+2])<<8 | int(src[s+3])<<16 | int(src[s+4])<<24
			s += 5
			if err := copyWithin(dst, &d, offset, length); err != nil {
				return nil, err
			}
		}
	}
	if d != len(dst) {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// copyWithin executes a back-reference copy, honoring the Snappy rule that
// the copy may overlap itself (offset < length repeats the pattern).
func copyWithin(dst []byte, d *int, offset, length int) error {
	if offset <= 0 || offset > *d || *d+length > len(dst) {
		return ErrCorrupt
	}
	pos := *d
	src := pos - offset
	for i := 0; i < length; i++ {
		dst[pos+i] = dst[src+i]
	}
	*d = pos + length
	return nil
}

// Ratio returns the compression ratio achieved by Encode on data — the
// "compressibility" quantity in the paper's pushdown cost model (§4.3).
func Ratio(data []byte) float64 {
	if len(data) == 0 {
		return 1
	}
	return float64(len(data)) / float64(len(Encode(data)))
}
