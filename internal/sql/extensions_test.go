package sql

import (
	"testing"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
)

// bitmapT aliases the bitmap type for leaf signatures in tests.
type bitmapT = bitmap.Bitmap

func TestParseBetween(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE a BETWEEN 5 AND 10")
	and, ok := q.Where.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("BETWEEN must desugar to AND, got %v", q.Where)
	}
	lo := and.L.(*Compare)
	hi := and.R.(*Compare)
	if lo.Op != OpGe || lo.Value.I != 5 || hi.Op != OpLe || hi.Value.I != 10 {
		t.Fatalf("BETWEEN bounds wrong: %v", q.Where)
	}
	// The BETWEEN-internal AND must not swallow a following boolean AND.
	q = mustParse(t, "SELECT a FROM t WHERE a BETWEEN 5 AND 10 AND b = 1")
	root := q.Where.(*Binary)
	if root.Op != OpAnd {
		t.Fatal("outer AND must remain")
	}
	if _, ok := root.R.(*Compare); !ok {
		t.Fatalf("right side must be b = 1, got %v", root.R)
	}
}

func TestParseIn(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE tag IN ('x', 'y', 'z')")
	// Desugars to ((tag = x OR tag = y) OR tag = z).
	cols := q.FilterColumns()
	if len(cols) != 1 || cols[0] != "tag" {
		t.Fatalf("FilterColumns = %v", cols)
	}
	count := 0
	var walk func(e Expr)
	walk = func(e Expr) {
		switch node := e.(type) {
		case *Compare:
			if node.Op != OpEq {
				t.Fatalf("IN must desugar to equalities, got %v", node.Op)
			}
			count++
		case *Binary:
			if node.Op != OpOr {
				t.Fatalf("IN must desugar to ORs, got %v", node.Op)
			}
			walk(node.L)
			walk(node.R)
		}
	}
	walk(q.Where)
	if count != 3 {
		t.Fatalf("IN list must produce 3 equalities, got %d", count)
	}
	// Single-element IN.
	q = mustParse(t, "SELECT a FROM t WHERE n IN (7)")
	if cmp, ok := q.Where.(*Compare); !ok || cmp.Value.I != 7 {
		t.Fatalf("single IN must be a bare equality: %v", q.Where)
	}
}

func TestParseLimit(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE a > 1 LIMIT 25")
	if q.Limit != 25 {
		t.Fatalf("Limit = %d", q.Limit)
	}
	q = mustParse(t, "SELECT a FROM t LIMIT 3")
	if q.Limit != 3 || q.Where != nil {
		t.Fatalf("LIMIT without WHERE: %+v", q)
	}
	if q.String() != "SELECT a FROM t LIMIT 3" {
		t.Fatalf("String() = %q", q.String())
	}
	for _, bad := range []string{
		"SELECT a FROM t LIMIT",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t LIMIT 1 2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestParseBetweenInErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT a FROM t WHERE a BETWEEN 5",
		"SELECT a FROM t WHERE a BETWEEN 5 OR 10",
		"SELECT a FROM t WHERE a IN 5",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t WHERE a IN (1, )",
		"SELECT a FROM t WHERE a IN (1 2)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestBetweenInEvaluate(t *testing.T) {
	col := lpq.IntColumn([]int64{1, 5, 7, 10, 12})
	leaf := func(c *Compare) (*bitmapT, error) { return EvalCompare(c, col) }
	q := mustParse(t, "SELECT x FROM t WHERE x BETWEEN 5 AND 10")
	bm, err := EvalExpr(q.Where, 5, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if got := bm.Indexes(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("BETWEEN selected %v, want [1 2 3]", got)
	}
	q = mustParse(t, "SELECT x FROM t WHERE x IN (1, 12, 99)")
	bm, err = EvalExpr(q.Where, 5, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if got := bm.Indexes(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("IN selected %v, want [0 4]", got)
	}
}
