package sql

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
)

// This file is the partial-aggregate merge-semantics property suite: the
// merge algebra must agree with a single-pass reference under EVERY merge
// topology (left fold, right-leaning fold, balanced tree, arbitrary
// interleavings), and the ordered reduction the query fan-out uses must be
// bit-for-bit reproducible for floats.

// refState folds all values in one pass — the single-pass reference.
func refState(kind AggKind, col lpq.ColumnData) *AggState {
	s := NewAggState(kind)
	s.AddColumn(col, bitmap.NewFull(col.Len()))
	return s
}

// chunkStates splits col at the given cut points and reduces each chunk to
// its own partial state.
func chunkStates(kind AggKind, col lpq.ColumnData, cuts []int) []*AggState {
	var out []*AggState
	prev := 0
	for _, c := range append(cuts, col.Len()) {
		part := NewAggState(kind)
		for i := prev; i < c; i++ {
			part.AddValue(col, i)
		}
		out = append(out, part)
		prev = c
	}
	return out
}

// mergeLeft folds partials left-associatively: ((p0+p1)+p2)+...
func mergeLeft(kind AggKind, parts []*AggState) *AggState {
	acc := NewAggState(kind)
	for _, p := range parts {
		acc.Merge(p)
	}
	return acc
}

// mergeTree merges partials as a balanced binary tree.
func mergeTree(kind AggKind, parts []*AggState) *AggState {
	if len(parts) == 0 {
		return NewAggState(kind)
	}
	level := make([]*AggState, len(parts))
	for i, p := range parts {
		c := *p
		level[i] = &c
	}
	for len(level) > 1 {
		var next []*AggState
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			level[i].Merge(level[i+1])
			next = append(next, level[i])
		}
		level = next
	}
	return level[0]
}

// TestAggStateMergeTopologyProperty: for exactly-representable data (integer
// values, strings), any way of splitting the rows into chunks and any merge
// topology must produce an AggState exactly equal to the single-pass
// reference — the algebra is associative whenever the arithmetic is exact.
func TestAggStateMergeTopologyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	kinds := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		var col lpq.ColumnData
		switch trial % 3 {
		case 0:
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(rng.Intn(2001) - 1000)
			}
			col = lpq.IntColumn(vals)
		case 1:
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(rng.Intn(2001) - 1000) // integer-valued: exact sums
			}
			col = lpq.FloatColumn(vals)
		default:
			vals := make([]string, n)
			for i := range vals {
				vals[i] = string(rune('a' + rng.Intn(26)))
			}
			col = lpq.StringColumn(vals)
		}
		// Random cut points: between 0 and n-1 splits.
		var cuts []int
		for i := 1; i < n; i++ {
			if rng.Intn(4) == 0 {
				cuts = append(cuts, i)
			}
		}
		for _, kind := range kinds {
			want := refState(kind, col)
			parts := chunkStates(kind, col, cuts)
			shuffled := append([]*AggState(nil), parts...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			for name, got := range map[string]*AggState{
				"left-fold":     mergeLeft(kind, parts),
				"balanced-tree": mergeTree(kind, parts),
				"shuffled-fold": mergeLeft(kind, shuffled),
			} {
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %v %s: merged state %+v != single-pass %+v (cuts %v)",
						trial, kind, name, got, want, cuts)
				}
			}
		}
	}
}

// TestAggStateOrderedFoldDeterminism: for arbitrary floats, the canonical
// reduction — per-chunk partials merged left-associatively in chunk order —
// must be bit-for-bit reproducible, and must match folding the same partials
// from a different compute path (AddColumn vs AddValue), which is how a
// pushed node-side partial and a coordinator-side partial end up identical.
func TestAggStateOrderedFoldDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n := 500
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
	}
	col := lpq.FloatColumn(vals)
	cuts := []int{100, 137, 300, 450}

	fold := func(byColumn bool) uint64 {
		acc := NewAggState(AggSum)
		prev := 0
		for _, c := range append(append([]int(nil), cuts...), n) {
			part := NewAggState(AggSum)
			if byColumn {
				sub := lpq.FloatColumn(vals[prev:c])
				part.AddColumn(sub, bitmap.NewFull(c-prev))
			} else {
				for i := prev; i < c; i++ {
					part.AddValue(col, i)
				}
			}
			acc.Merge(part)
			prev = c
		}
		return math.Float64bits(acc.Sum)
	}

	want := fold(true)
	for i := 0; i < 100; i++ {
		if got := fold(i%2 == 0); got != want {
			t.Fatalf("run %d: ordered fold produced %x, want %x", i, got, want)
		}
	}
}
