package sql

import (
	"reflect"
	"testing"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
)

func TestParseGroupBy(t *testing.T) {
	q := mustParse(t, "SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept")
	if !reflect.DeepEqual(q.GroupBy, []string{"dept"}) {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
	if q.String() != "SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept" {
		t.Fatalf("String() = %q", q.String())
	}
	// Multiple keys, WHERE in between.
	q = mustParse(t, "SELECT a, b, SUM(x) FROM t WHERE x > 0 GROUP BY a, b")
	if !reflect.DeepEqual(q.GroupBy, []string{"a", "b"}) {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
}

func TestParseGroupByAlias(t *testing.T) {
	// GROUP BY on a projected alias resolves to the underlying column.
	q := mustParse(t, "SELECT dept AS d, SUM(salary) AS total FROM emp GROUP BY d")
	if !reflect.DeepEqual(q.GroupBy, []string{"dept"}) {
		t.Fatalf("alias GroupBy = %v", q.GroupBy)
	}
	if q.Projections[0].Alias != "d" || q.Projections[1].Alias != "total" {
		t.Fatalf("aliases = %+v", q.Projections)
	}
	if q.String() != "SELECT dept AS d, SUM(salary) AS total FROM emp GROUP BY dept" {
		t.Fatalf("String() = %q", q.String())
	}
}

func TestParseOrderBy(t *testing.T) {
	q := mustParse(t, "SELECT id, qty FROM t ORDER BY qty DESC, id LIMIT 10")
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[0].Proj.Column != "qty" {
		t.Fatalf("OrderBy = %+v", q.OrderBy)
	}
	if q.OrderBy[1].Desc || q.OrderBy[1].Proj.Column != "id" {
		t.Fatalf("OrderBy[1] = %+v", q.OrderBy[1])
	}
	if !q.HasLimit || q.Limit != 10 {
		t.Fatalf("limit = %v/%v", q.HasLimit, q.Limit)
	}
	if q.String() != "SELECT id, qty FROM t ORDER BY qty DESC, id LIMIT 10" {
		t.Fatalf("String() = %q", q.String())
	}
	// Explicit ASC parses and normalizes away.
	q = mustParse(t, "SELECT id FROM t ORDER BY id ASC")
	if q.OrderBy[0].Desc {
		t.Fatal("ASC must not set Desc")
	}
}

func TestParseOrderByAggregate(t *testing.T) {
	// ORDER BY on an aggregate expression.
	q := mustParse(t, "SELECT dept, SUM(salary) FROM emp GROUP BY dept ORDER BY SUM(salary) DESC LIMIT 3")
	o := q.OrderBy[0]
	if o.Proj.Agg != AggSum || o.Proj.Column != "salary" || !o.Desc {
		t.Fatalf("agg order item = %+v", o)
	}
	// ORDER BY on an aggregate alias.
	q = mustParse(t, "SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept ORDER BY total DESC")
	o = q.OrderBy[0]
	if o.Proj.Agg != AggSum || o.Proj.Column != "salary" || !o.Desc {
		t.Fatalf("alias agg order item = %+v", o)
	}
	// ORDER BY COUNT(*).
	q = mustParse(t, "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY COUNT(*)")
	if o := q.OrderBy[0]; o.Proj.Agg != AggCount || !o.Proj.Star {
		t.Fatalf("count(*) order item = %+v", o)
	}
}

func TestParseLimitZero(t *testing.T) {
	// LIMIT 0 is a real limit: zero rows, not "no limit".
	q := mustParse(t, "SELECT a FROM t LIMIT 0")
	if !q.HasLimit || q.Limit != 0 {
		t.Fatalf("LIMIT 0: HasLimit=%v Limit=%d", q.HasLimit, q.Limit)
	}
	if q.String() != "SELECT a FROM t LIMIT 0" {
		t.Fatalf("String() = %q", q.String())
	}
	q = mustParse(t, "SELECT a FROM t")
	if q.HasLimit {
		t.Fatal("no LIMIT clause must leave HasLimit false")
	}
}

func TestParseGroupByErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT * FROM t GROUP BY a",                        // star with grouping
		"SELECT a, b FROM t GROUP BY a",                     // b not grouped
		"SELECT a, SUM(x) AS s FROM t GROUP BY a, s",        // grouping an aggregate alias
		"SELECT a FROM t GROUP BY",                          // missing column
		"SELECT a FROM t GROUP a",                           // missing BY
		"SELECT a FROM t GROUP BY SUM(a)",                   // aggregate key
		"SELECT SUM(x) FROM t ORDER BY y",                   // plain order on aggregate-only query
		"SELECT a, SUM(x) FROM t GROUP BY a ORDER BY x",     // order col not a group key
		"SELECT a FROM t ORDER BY SUM(x)",                   // aggregate order without aggregates
		"SELECT a FROM t ORDER BY",                          // missing item
		"SELECT a FROM t ORDER BY a DESC,",                  // trailing comma
		"SELECT a AS FROM FROM t",                           // reserved word as alias
		"SELECT a FROM t GROUP BY where",                    // reserved word as key
		"SELECT group FROM t",                               // reserved word as column
		"SELECT a FROM order",                               // reserved word as table
		"SELECT a, b AS a2 FROM t GROUP BY a ORDER BY SUM",  // bare agg keyword
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestParseGroupOrderPrintFixpoint(t *testing.T) {
	for _, src := range []string{
		"SELECT dept, COUNT(*) FROM emp GROUP BY dept",
		"SELECT dept AS d, SUM(salary) AS total FROM emp GROUP BY dept ORDER BY SUM(salary) DESC LIMIT 5",
		"SELECT a, b, MIN(x) FROM t WHERE x > 1 GROUP BY a, b ORDER BY a, b DESC LIMIT 0",
		"SELECT id FROM t ORDER BY price DESC LIMIT 7",
	} {
		q := mustParse(t, src)
		q2 := mustParse(t, q.String())
		if q.String() != q2.String() {
			t.Fatalf("print fixpoint broken: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestGroupTableBasic(t *testing.T) {
	keys := []lpq.ColumnData{lpq.StringColumn([]string{"a", "b", "a", "b", "a"})}
	vals := []lpq.ColumnData{
		lpq.IntColumn([]int64{1, 2, 3, 4, 5}),
		{}, // COUNT(*)
	}
	sel := bitmap.New(5)
	for i := 0; i < 5; i++ {
		sel.Set(i)
	}
	g := NewGroupTable([]AggKind{AggSum, AggCount}, 0)
	if err := g.AddRows(keys, vals, sel); err != nil {
		t.Fatal(err)
	}
	got := g.Sorted()
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	if got[0].Key[0].S != "a" || got[0].Aggs[0].Sum != 9 || got[0].Aggs[1].Count != 3 {
		t.Fatalf("group a = %+v", got[0])
	}
	if got[1].Key[0].S != "b" || got[1].Aggs[0].Sum != 6 || got[1].Aggs[1].Count != 2 {
		t.Fatalf("group b = %+v", got[1])
	}
}

func TestGroupTableMergeMatchesSinglePass(t *testing.T) {
	// Split the rows across two tables, merge, and compare against one
	// table that saw everything — states must be identical, not just
	// close: AVG merges as (sum, count).
	keyCol := []int64{1, 2, 1, 3, 2, 1, 3, 3}
	valCol := []float64{0.5, 1.5, 2.25, -1, 4, 8, 0.125, 3}
	kinds := []AggKind{AggAvg, AggMin, AggCount}
	build := func(lo, hi int) *GroupTable {
		g := NewGroupTable(kinds, 0)
		sel := bitmap.New(hi - lo)
		for i := range hi - lo {
			sel.Set(i)
		}
		err := g.AddRows(
			[]lpq.ColumnData{lpq.IntColumn(keyCol[lo:hi])},
			[]lpq.ColumnData{lpq.FloatColumn(valCol[lo:hi]), lpq.FloatColumn(valCol[lo:hi]), {}},
			sel)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	single := build(0, len(keyCol))
	left, right := build(0, 5), build(5, len(keyCol))
	merged := NewGroupTable(kinds, 0)
	if err := merged.Merge(left.Sorted()); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(right.Sorted()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single.Sorted(), merged.Sorted()) {
		t.Fatalf("merged != single-pass:\n%+v\n%+v", merged.Sorted(), single.Sorted())
	}
}

func TestGroupTableCardinalityCap(t *testing.T) {
	g := NewGroupTable([]AggKind{AggCount}, 3)
	keys := []lpq.ColumnData{lpq.IntColumn([]int64{1, 2, 3, 4})}
	sel := bitmap.New(4)
	for i := 0; i < 4; i++ {
		sel.Set(i)
	}
	err := g.AddRows(keys, []lpq.ColumnData{{}}, sel)
	if err != ErrTooManyGroups {
		t.Fatalf("err = %v, want ErrTooManyGroups", err)
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	// Equal keys resolve by (rg, row) no matter the push order.
	a := NewTopK(3, false)
	b := NewTopK(3, false)
	rows := []TopRow{
		{Key: IntLit(5), RG: 1, Row: 0},
		{Key: IntLit(5), RG: 0, Row: 2},
		{Key: IntLit(5), RG: 0, Row: 1},
		{Key: IntLit(4), RG: 2, Row: 7},
		{Key: IntLit(9), RG: 0, Row: 0},
	}
	for _, r := range rows {
		a.Push(r.Key, r.RG, r.Row)
	}
	for i := len(rows) - 1; i >= 0; i-- {
		b.Push(rows[i].Key, rows[i].RG, rows[i].Row)
	}
	ra, rb := a.Rows(), b.Rows()
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("order-dependent top-k: %v vs %v", ra, rb)
	}
	want := []TopRow{
		{Key: IntLit(4), RG: 2, Row: 7},
		{Key: IntLit(5), RG: 0, Row: 1},
		{Key: IntLit(5), RG: 0, Row: 2},
	}
	if !reflect.DeepEqual(ra, want) {
		t.Fatalf("top-k = %v, want %v", ra, want)
	}
}

func TestTopKDescAndMerge(t *testing.T) {
	whole := NewTopK(2, true)
	parts := []*TopK{NewTopK(2, true), NewTopK(2, true)}
	vals := []float64{1.5, 9, -2, 7, 3, 9}
	for i, v := range vals {
		whole.Push(FloatLit(v), int32(i/3), int32(i%3))
		parts[i/3].Push(FloatLit(v), int32(i/3), int32(i%3))
	}
	merged := NewTopK(2, true)
	for _, p := range parts {
		merged.Merge(p.Rows())
	}
	if !reflect.DeepEqual(whole.Rows(), merged.Rows()) {
		t.Fatalf("merged desc top-k differs: %v vs %v", merged.Rows(), whole.Rows())
	}
	want := []TopRow{
		{Key: FloatLit(9), RG: 0, Row: 1},
		{Key: FloatLit(9), RG: 1, Row: 2},
	}
	if !reflect.DeepEqual(whole.Rows(), want) {
		t.Fatalf("desc top-k = %v, want %v", whole.Rows(), want)
	}
}

func TestTopKUnbounded(t *testing.T) {
	tk := NewTopK(0, false)
	for i := int32(4); i >= 0; i-- {
		tk.Push(IntLit(int64(i)), 0, i)
	}
	rows := tk.Rows()
	if len(rows) != 5 || rows[0].Key.I != 0 || rows[4].Key.I != 4 {
		t.Fatalf("unbounded topk = %v", rows)
	}
}

// FuzzParse asserts the lexer/parser never panic and that any successfully
// parsed query re-parses to the same rendering (print fixpoint).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT a FROM t",
		"SELECT * FROM t WHERE a > 1 AND b < 'x' LIMIT 3",
		"SELECT dept, COUNT(*), AVG(salary) FROM emp WHERE x BETWEEN 1 AND 2 GROUP BY dept",
		"SELECT dept AS d, SUM(s) AS total FROM emp GROUP BY d ORDER BY total DESC LIMIT 5",
		"SELECT id FROM t ORDER BY price DESC, id ASC LIMIT 0",
		"SELECT a FROM t WHERE a IN (1, 2.5, 'x') ORDER BY a",
		"SELECT COUNT(*) FROM t ORDER BY COUNT(*)",
		"GROUP BY ORDER AS DESC SELECT",
		"SELECT a AS b FROM t GROUP BY b ORDER BY b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", q.String(), src, err)
		}
		if q.String() != q2.String() {
			t.Fatalf("print fixpoint broken: %q -> %q", q.String(), q2.String())
		}
	})
}
