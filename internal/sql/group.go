package sql

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
)

// ErrTooManyGroups reports that a GROUP BY exceeded the group-cardinality
// cap. A storage node returning it makes the coordinator fall back to
// coordinator-side execution for that row group (the partial states would
// be larger than the raw chunks — exactly when pushdown loses).
var ErrTooManyGroups = errors.New("sql: group cardinality exceeds limit")

// GroupPartial is the partial aggregate state of one group: its key
// literals, the number of contributing rows, and one AggState per
// aggregate. AVG is never pre-divided — it travels as (sum, count) inside
// its AggState and is divided only once, at final result rendering.
type GroupPartial struct {
	Key  []Literal
	Rows int64
	Aggs []AggState
}

// GroupTable accumulates per-group partial aggregates. Storage nodes and
// the coordinator share this one implementation, so a group's state is
// bit-identical whether it was computed remotely, locally, or merged from
// any mix of the two.
type GroupTable struct {
	kinds     []AggKind
	maxGroups int
	m         map[string]*GroupPartial
}

// NewGroupTable returns a table accumulating one AggState per kind for
// each group. maxGroups caps cardinality (<=0 means unbounded).
func NewGroupTable(kinds []AggKind, maxGroups int) *GroupTable {
	return &GroupTable{
		kinds:     append([]AggKind(nil), kinds...),
		maxGroups: maxGroups,
		m:         make(map[string]*GroupPartial),
	}
}

// Len returns the number of groups seen so far.
func (g *GroupTable) Len() int { return len(g.m) }

// AddRows folds the selected rows into the table. keys holds the grouping
// columns; vals[i] is the argument column of aggregate i, or a zero-length
// ColumnData for COUNT(*). All non-empty columns must have sel.Len() rows.
func (g *GroupTable) AddRows(keys []lpq.ColumnData, vals []lpq.ColumnData, sel *bitmap.Bitmap) error {
	if len(vals) != len(g.kinds) {
		return errors.New("sql: GroupTable.AddRows: vals/kinds length mismatch")
	}
	var keyBuf []byte
	var addErr error
	sel.ForEach(func(i int) {
		if addErr != nil {
			return
		}
		keyBuf = appendGroupKey(keyBuf[:0], keys, i)
		gp := g.m[string(keyBuf)]
		if gp == nil {
			if g.maxGroups > 0 && len(g.m) >= g.maxGroups {
				addErr = ErrTooManyGroups
				return
			}
			gp = &GroupPartial{Key: keyLiterals(keys, i), Aggs: make([]AggState, len(g.kinds))}
			for ai, kind := range g.kinds {
				gp.Aggs[ai].Kind = kind
			}
			g.m[string(keyBuf)] = gp
		}
		gp.Rows++
		for ai := range g.kinds {
			if vals[ai].Len() == 0 {
				gp.Aggs[ai].Count++ // COUNT(*): no argument column
				continue
			}
			gp.Aggs[ai].AddValue(vals[ai], i)
		}
	})
	return addErr
}

// Merge folds partial states (from a node, another table, or the wire)
// into the table, in the order given. Merging the same partials in the
// same order always produces bit-identical state.
func (g *GroupTable) Merge(partials []GroupPartial) error {
	var keyBuf []byte
	for pi := range partials {
		p := &partials[pi]
		if len(p.Aggs) != len(g.kinds) {
			return errors.New("sql: GroupTable.Merge: aggregate arity mismatch")
		}
		keyBuf = appendKeyLits(keyBuf[:0], p.Key)
		gp := g.m[string(keyBuf)]
		if gp == nil {
			if g.maxGroups > 0 && len(g.m) >= g.maxGroups {
				return ErrTooManyGroups
			}
			gp = &GroupPartial{Key: append([]Literal(nil), p.Key...), Aggs: make([]AggState, len(g.kinds))}
			for ai, kind := range g.kinds {
				gp.Aggs[ai].Kind = kind
			}
			g.m[string(keyBuf)] = gp
		}
		gp.Rows += p.Rows
		for ai := range g.kinds {
			gp.Aggs[ai].Merge(&p.Aggs[ai])
		}
	}
	return nil
}

// Sorted returns the groups ordered by key (CompareLiterals elementwise) —
// the deterministic group ordering every result and every wire payload
// uses.
func (g *GroupTable) Sorted() []GroupPartial {
	out := make([]GroupPartial, 0, len(g.m))
	for _, gp := range g.m {
		out = append(out, *gp)
	}
	sort.Slice(out, func(i, j int) bool {
		return CompareKeys(out[i].Key, out[j].Key) < 0
	})
	return out
}

// CompareKeys orders two key tuples elementwise.
func CompareKeys(a, b []Literal) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := CompareLiterals(a[i], b[i]); c != 0 {
			return c
		}
		// Same value, different kind (can only happen across schema
		// changes): order by kind for totality.
		if a[i].Kind != b[i].Kind {
			if a[i].Kind < b[i].Kind {
				return -1
			}
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// keyLiterals extracts row i of the key columns as literals.
func keyLiterals(keys []lpq.ColumnData, i int) []Literal {
	out := make([]Literal, len(keys))
	for ki, col := range keys {
		switch col.Type {
		case lpq.Int64:
			out[ki] = IntLit(col.Ints[i])
		case lpq.Float64:
			out[ki] = FloatLit(col.Floats[i])
		default:
			out[ki] = StringLit(col.Strings[i])
		}
	}
	return out
}

// appendGroupKey appends a canonical byte encoding of row i's key tuple:
// a type tag then a fixed or length-prefixed payload per column, so
// distinct tuples never collide.
func appendGroupKey(dst []byte, keys []lpq.ColumnData, i int) []byte {
	for _, col := range keys {
		switch col.Type {
		case lpq.Int64:
			dst = append(dst, 'i')
			dst = binary.LittleEndian.AppendUint64(dst, uint64(col.Ints[i]))
		case lpq.Float64:
			dst = append(dst, 'f')
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(col.Floats[i]))
		default:
			s := col.Strings[i]
			dst = append(dst, 's')
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst
}

// appendKeyLits is appendGroupKey for an already-extracted literal tuple.
func appendKeyLits(dst []byte, key []Literal) []byte {
	for _, l := range key {
		switch l.Kind {
		case LitInt:
			dst = append(dst, 'i')
			dst = binary.LittleEndian.AppendUint64(dst, uint64(l.I))
		case LitFloat:
			dst = append(dst, 'f')
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(l.F))
		default:
			dst = append(dst, 's')
			dst = binary.AppendUvarint(dst, uint64(len(l.S)))
			dst = append(dst, l.S...)
		}
	}
	return dst
}

// TopRow is one candidate in a top-k order: its sort key and its global
// (row group, row) position — the deterministic tie-break, so equal keys
// always resolve to the same winners regardless of merge order.
type TopRow struct {
	Key Literal
	RG  int32
	Row int32
}

// TopK accumulates the k smallest (or largest, when desc) rows by key.
// Nodes run one per row group and return their local top-k; the
// coordinator merges them with the same structure, giving a bounded k-way
// merge whose result is independent of arrival order.
type TopK struct {
	k    int
	desc bool
	rows []TopRow
}

// NewTopK returns an accumulator for the top k rows. k <= 0 keeps
// everything (used for ORDER BY without LIMIT).
func NewTopK(k int, desc bool) *TopK {
	return &TopK{k: k, desc: desc}
}

// Push adds one candidate row.
func (t *TopK) Push(key Literal, rg, row int32) {
	t.rows = append(t.rows, TopRow{Key: key, RG: rg, Row: row})
	if t.k > 0 && len(t.rows) >= 2*t.k+64 {
		t.compact()
	}
}

// Merge adds candidates from another accumulator's Rows.
func (t *TopK) Merge(rows []TopRow) {
	for _, r := range rows {
		t.Push(r.Key, r.RG, r.Row)
	}
}

// Rows returns the final top-k, fully ordered by (key, rg, row).
func (t *TopK) Rows() []TopRow {
	t.compact()
	return t.rows
}

func (t *TopK) compact() {
	sort.Slice(t.rows, func(i, j int) bool { return t.less(t.rows[i], t.rows[j]) })
	if t.k > 0 && len(t.rows) > t.k {
		t.rows = t.rows[:t.k]
	}
}

func (t *TopK) less(a, b TopRow) bool {
	c := CompareLiterals(a.Key, b.Key)
	if c != 0 {
		if t.desc {
			return c > 0
		}
		return c < 0
	}
	if a.RG != b.RG {
		return a.RG < b.RG
	}
	return a.Row < b.Row
}
