package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// AggKind enumerates the aggregate functions (aggregate pushdown is the
// paper's stated future work; Fusion evaluates them at the coordinator).
type AggKind int

const (
	// AggNone means a plain column projection.
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return ""
	}
}

// Projection is one SELECT-list item: a column, an aggregate over a column,
// or COUNT(*).
type Projection struct {
	Column string // empty for COUNT(*)
	Agg    AggKind
	Star   bool // COUNT(*)
}

func (p Projection) String() string {
	if p.Agg == AggNone {
		return p.Column
	}
	arg := p.Column
	if p.Star {
		arg = "*"
	}
	return fmt.Sprintf("%s(%s)", p.Agg, arg)
}

// CmpOp enumerates comparison operators.
type CmpOp int

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	default:
		return ">="
	}
}

// LitKind is the type of a literal.
type LitKind int

const (
	LitInt LitKind = iota
	LitFloat
	LitString
)

// Literal is a typed constant in a predicate.
type Literal struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
}

func (l Literal) String() string {
	switch l.Kind {
	case LitInt:
		return strconv.FormatInt(l.I, 10)
	case LitFloat:
		return strconv.FormatFloat(l.F, 'g', -1, 64)
	default:
		return "'" + strings.ReplaceAll(l.S, "'", "''") + "'"
	}
}

// AsFloat returns the numeric value of an int or float literal.
func (l Literal) AsFloat() float64 {
	if l.Kind == LitInt {
		return float64(l.I)
	}
	return l.F
}

// IntLit, FloatLit and StringLit are Literal constructors.
func IntLit(v int64) Literal     { return Literal{Kind: LitInt, I: v} }
func FloatLit(v float64) Literal { return Literal{Kind: LitFloat, F: v} }
func StringLit(s string) Literal { return Literal{Kind: LitString, S: s} }

// Expr is a boolean predicate expression.
type Expr interface {
	fmt.Stringer
	// Columns appends the column names the expression references.
	Columns(dst []string) []string
}

// Compare is a column-vs-literal comparison, the predicate leaf.
type Compare struct {
	Column string
	Op     CmpOp
	Value  Literal
}

func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Column, c.Op, c.Value)
}

// Columns implements Expr.
func (c *Compare) Columns(dst []string) []string { return append(dst, c.Column) }

// LogicalOp combines predicates.
type LogicalOp int

const (
	OpAnd LogicalOp = iota
	OpOr
)

func (o LogicalOp) String() string {
	if o == OpAnd {
		return "AND"
	}
	return "OR"
}

// Binary is an AND/OR of two predicates.
type Binary struct {
	Op   LogicalOp
	L, R Expr
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Columns implements Expr.
func (b *Binary) Columns(dst []string) []string {
	return b.R.Columns(b.L.Columns(dst))
}

// Not negates a predicate.
type Not struct{ E Expr }

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// Columns implements Expr.
func (n *Not) Columns(dst []string) []string { return n.E.Columns(dst) }

// Query is a parsed SELECT statement.
type Query struct {
	Projections []Projection
	// Star is SELECT *.
	Star  bool
	Table string
	Where Expr // nil when there is no WHERE clause
	// Limit caps the number of returned rows; 0 means no limit.
	Limit int
}

func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Star {
		sb.WriteString("*")
	} else {
		for i, p := range q.Projections {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.String())
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(q.Table)
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// FilterColumns returns the distinct columns referenced by the WHERE clause,
// in first-reference order.
func (q *Query) FilterColumns() []string {
	if q.Where == nil {
		return nil
	}
	return dedup(q.Where.Columns(nil))
}

// ProjectionColumns returns the distinct columns needed by the SELECT list
// (excluding COUNT(*)), in first-reference order.
func (q *Query) ProjectionColumns() []string {
	var cols []string
	for _, p := range q.Projections {
		if !p.Star && p.Column != "" {
			cols = append(cols, p.Column)
		}
	}
	return dedup(cols)
}

// HasAggregates reports whether any SELECT item is an aggregate.
func (q *Query) HasAggregates() bool {
	for _, p := range q.Projections {
		if p.Agg != AggNone {
			return true
		}
	}
	return false
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
