package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// AggKind enumerates the aggregate functions (aggregate pushdown is the
// paper's stated future work; Fusion evaluates them at the coordinator).
type AggKind int

const (
	// AggNone means a plain column projection.
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return ""
	}
}

// Projection is one SELECT-list item: a column, an aggregate over a column,
// or COUNT(*), optionally with an AS alias.
type Projection struct {
	Column string // empty for COUNT(*)
	Agg    AggKind
	Star   bool   // COUNT(*)
	Alias  string // optional AS name
}

func (p Projection) String() string {
	s := p.exprString()
	if p.Alias != "" {
		s += " AS " + p.Alias
	}
	return s
}

// exprString renders the projection without its alias.
func (p Projection) exprString() string {
	if p.Agg == AggNone {
		return p.Column
	}
	arg := p.Column
	if p.Star {
		arg = "*"
	}
	return fmt.Sprintf("%s(%s)", p.Agg, arg)
}

// sameExpr reports whether two projections denote the same expression,
// ignoring aliases.
func (p Projection) sameExpr(o Projection) bool {
	return p.Column == o.Column && p.Agg == o.Agg && p.Star == o.Star
}

// CmpOp enumerates comparison operators.
type CmpOp int

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	default:
		return ">="
	}
}

// LitKind is the type of a literal.
type LitKind int

const (
	LitInt LitKind = iota
	LitFloat
	LitString
)

// Literal is a typed constant in a predicate.
type Literal struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
}

func (l Literal) String() string {
	switch l.Kind {
	case LitInt:
		return strconv.FormatInt(l.I, 10)
	case LitFloat:
		return strconv.FormatFloat(l.F, 'g', -1, 64)
	default:
		return "'" + strings.ReplaceAll(l.S, "'", "''") + "'"
	}
}

// AsFloat returns the numeric value of an int or float literal.
func (l Literal) AsFloat() float64 {
	if l.Kind == LitInt {
		return float64(l.I)
	}
	return l.F
}

// IntLit, FloatLit and StringLit are Literal constructors.
func IntLit(v int64) Literal     { return Literal{Kind: LitInt, I: v} }
func FloatLit(v float64) Literal { return Literal{Kind: LitFloat, F: v} }
func StringLit(s string) Literal { return Literal{Kind: LitString, S: s} }

// CompareLiterals imposes a total order on literals: numerics compare
// numerically (int-vs-int exactly, mixed in float space), strings compare
// lexically, and any string sorts after any numeric. NaN sorts before every
// other numeric and equal to itself, keeping sorts deterministic.
func CompareLiterals(a, b Literal) int {
	if (a.Kind == LitString) != (b.Kind == LitString) {
		if a.Kind == LitString {
			return 1
		}
		return -1
	}
	if a.Kind == LitString {
		return strings.Compare(a.S, b.S)
	}
	if a.Kind == LitInt && b.Kind == LitInt {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	af, bf := a.AsFloat(), b.AsFloat()
	aNaN, bNaN := af != af, bf != bf
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return -1
	case bNaN:
		return 1
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

// Expr is a boolean predicate expression.
type Expr interface {
	fmt.Stringer
	// Columns appends the column names the expression references.
	Columns(dst []string) []string
}

// Compare is a column-vs-literal comparison, the predicate leaf.
type Compare struct {
	Column string
	Op     CmpOp
	Value  Literal
}

func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Column, c.Op, c.Value)
}

// Columns implements Expr.
func (c *Compare) Columns(dst []string) []string { return append(dst, c.Column) }

// LogicalOp combines predicates.
type LogicalOp int

const (
	OpAnd LogicalOp = iota
	OpOr
)

func (o LogicalOp) String() string {
	if o == OpAnd {
		return "AND"
	}
	return "OR"
}

// Binary is an AND/OR of two predicates.
type Binary struct {
	Op   LogicalOp
	L, R Expr
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Columns implements Expr.
func (b *Binary) Columns(dst []string) []string {
	return b.R.Columns(b.L.Columns(dst))
}

// Not negates a predicate.
type Not struct{ E Expr }

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// Columns implements Expr.
func (n *Not) Columns(dst []string) []string { return n.E.Columns(dst) }

// OrderItem is one ORDER BY term: a plain column or an aggregate, with a
// direction.
type OrderItem struct {
	Proj Projection // Alias unused; identifies the sort expression
	Desc bool
}

func (o OrderItem) String() string {
	s := o.Proj.exprString()
	if o.Desc {
		s += " DESC"
	}
	return s
}

// Query is a parsed SELECT statement.
type Query struct {
	Projections []Projection
	// Star is SELECT *.
	Star  bool
	Table string
	Where Expr // nil when there is no WHERE clause
	// GroupBy lists grouping columns (aliases already resolved to column
	// names by the parser); empty means no GROUP BY.
	GroupBy []string
	// OrderBy lists sort terms; empty means no ORDER BY.
	OrderBy []OrderItem
	// Limit caps the number of returned rows when HasLimit is set.
	// LIMIT 0 is a valid query that returns no rows.
	Limit int
	// HasLimit reports whether a LIMIT clause was present.
	HasLimit bool
}

func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Star {
		sb.WriteString("*")
	} else {
		for i, p := range q.Projections {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.String())
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(q.Table)
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(q.GroupBy, ", "))
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.String())
		}
	}
	if q.HasLimit {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// FilterColumns returns the distinct columns referenced by the WHERE clause,
// in first-reference order.
func (q *Query) FilterColumns() []string {
	if q.Where == nil {
		return nil
	}
	return dedup(q.Where.Columns(nil))
}

// ProjectionColumns returns the distinct columns needed by the SELECT list
// (excluding COUNT(*)), in first-reference order.
func (q *Query) ProjectionColumns() []string {
	var cols []string
	for _, p := range q.Projections {
		if !p.Star && p.Column != "" {
			cols = append(cols, p.Column)
		}
	}
	return dedup(cols)
}

// OrderColumns returns the distinct plain (non-aggregate) columns referenced
// by ORDER BY, in first-reference order.
func (q *Query) OrderColumns() []string {
	var cols []string
	for _, o := range q.OrderBy {
		if o.Proj.Agg == AggNone && o.Proj.Column != "" {
			cols = append(cols, o.Proj.Column)
		}
	}
	return dedup(cols)
}

// GroupKeyIndex returns the position of col in GroupBy, or -1.
func (q *Query) GroupKeyIndex(col string) int {
	for i, g := range q.GroupBy {
		if g == col {
			return i
		}
	}
	return -1
}

// HasAggregates reports whether any SELECT item is an aggregate.
func (q *Query) HasAggregates() bool {
	for _, p := range q.Projections {
		if p.Agg != AggNone {
			return true
		}
	}
	return false
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
