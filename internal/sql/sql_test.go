package sql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
)

func mustParse(t *testing.T, q string) *Query {
	t.Helper()
	parsed, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return parsed
}

func TestParseBasic(t *testing.T) {
	q := mustParse(t, "SELECT salary FROM Employees WHERE name = 'Bob'")
	if q.Table != "Employees" {
		t.Fatalf("table = %q", q.Table)
	}
	if len(q.Projections) != 1 || q.Projections[0].Column != "salary" {
		t.Fatalf("projections = %v", q.Projections)
	}
	cmp, ok := q.Where.(*Compare)
	if !ok || cmp.Column != "name" || cmp.Op != OpEq || cmp.Value.S != "Bob" {
		t.Fatalf("where = %v", q.Where)
	}
}

func TestParseDoubleEquals(t *testing.T) {
	// The paper's running example uses ==.
	q := mustParse(t, "SELECT salary FROM Employees WHERE name == 'Bob'")
	cmp := q.Where.(*Compare)
	if cmp.Op != OpEq {
		t.Fatal("== must parse as equality")
	}
}

func TestParseOperators(t *testing.T) {
	ops := map[string]CmpOp{
		"=": OpEq, "==": OpEq, "!=": OpNe, "<>": OpNe,
		"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for text, want := range ops {
		q := mustParse(t, "SELECT a FROM t WHERE a "+text+" 5")
		if got := q.Where.(*Compare).Op; got != want {
			t.Errorf("op %q parsed as %v, want %v", text, got, want)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE a < -12")
	if lit := q.Where.(*Compare).Value; lit.Kind != LitInt || lit.I != -12 {
		t.Fatalf("literal = %+v", lit)
	}
	q = mustParse(t, "SELECT a FROM t WHERE a < 3.25")
	if lit := q.Where.(*Compare).Value; lit.Kind != LitFloat || lit.F != 3.25 {
		t.Fatalf("literal = %+v", lit)
	}
	q = mustParse(t, "SELECT a FROM t WHERE a < 1e3")
	if lit := q.Where.(*Compare).Value; lit.Kind != LitFloat || lit.F != 1000 {
		t.Fatalf("literal = %+v", lit)
	}
	q = mustParse(t, "SELECT a FROM t WHERE a = 'it''s'")
	if lit := q.Where.(*Compare).Value; lit.S != "it's" {
		t.Fatalf("escaped quote wrong: %q", lit.S)
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than OR.
	q := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := q.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("root must be OR, got %v", q.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right side must be AND, got %v", or.R)
	}
	// Parentheses override.
	q = mustParse(t, "SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
	root := q.Where.(*Binary)
	if root.Op != OpAnd {
		t.Fatal("parenthesized OR must nest under AND")
	}
}

func TestParseNot(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE NOT a = 1 AND b = 2")
	and := q.Where.(*Binary)
	if _, ok := and.L.(*Not); !ok {
		t.Fatal("NOT must bind tighter than AND")
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustParse(t, "SELECT count(*), AVG(fare), sum(tip), min(a), max(b) FROM taxi")
	wants := []struct {
		agg  AggKind
		col  string
		star bool
	}{{AggCount, "", true}, {AggAvg, "fare", false}, {AggSum, "tip", false}, {AggMin, "a", false}, {AggMax, "b", false}}
	if len(q.Projections) != len(wants) {
		t.Fatalf("got %d projections", len(q.Projections))
	}
	for i, w := range wants {
		p := q.Projections[i]
		if p.Agg != w.agg || p.Column != w.col || p.Star != w.star {
			t.Errorf("projection %d = %+v, want %+v", i, p, w)
		}
	}
	if !q.HasAggregates() {
		t.Fatal("HasAggregates must be true")
	}
}

func TestParseStar(t *testing.T) {
	q := mustParse(t, "SELECT * FROM t")
	if !q.Star || q.Where != nil {
		t.Fatalf("star parse wrong: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a <",
		"SELECT a FROM t WHERE a < 'x",
		"SELECT a FROM t WHERE (a < 1",
		"SELECT a FROM t WHERE a ! 1",
		"SELECT a FROM t extra",
		"SELECT sum(*) FROM t",
		"SELECT sum( FROM t",
		"INSERT INTO t VALUES (1)",
		"SELECT a FROM t WHERE a < 5 $",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) must fail", q)
		}
	}
}

func TestParsePrintFixpoint(t *testing.T) {
	queries := []string{
		"SELECT salary FROM Employees WHERE name = 'Bob'",
		"SELECT a, b, COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND (NOT c >= 3.5)",
		"SELECT * FROM t",
		"SELECT AVG(fare) FROM taxi WHERE date < '2015-02-01'",
	}
	for _, qs := range queries {
		q1 := mustParse(t, qs)
		q2 := mustParse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("parse→print→parse not a fixpoint:\n  %s\n  %s", q1, q2)
		}
	}
}

func TestColumnsHelpers(t *testing.T) {
	q := mustParse(t, "SELECT a, b, a, SUM(c) FROM t WHERE d < 5 AND a = 1 AND d > 2")
	if got := q.FilterColumns(); !strsEq(got, []string{"d", "a"}) {
		t.Fatalf("FilterColumns = %v", got)
	}
	if got := q.ProjectionColumns(); !strsEq(got, []string{"a", "b", "c"}) {
		t.Fatalf("ProjectionColumns = %v", got)
	}
}

func strsEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEvalCompareInt(t *testing.T) {
	col := lpq.IntColumn([]int64{1, 5, 10, 5, -3})
	b, err := EvalCompare(&Compare{Column: "x", Op: OpLt, Value: IntLit(5)}, col)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Indexes(); !intsEq(got, []int{0, 4}) {
		t.Fatalf("x < 5 selected %v", got)
	}
	b, _ = EvalCompare(&Compare{Column: "x", Op: OpEq, Value: FloatLit(5)}, col)
	if b.Count() != 2 {
		t.Fatal("float literal against int column must coerce")
	}
	if _, err := EvalCompare(&Compare{Column: "x", Op: OpEq, Value: StringLit("a")}, col); err == nil {
		t.Fatal("string literal against int column must fail")
	}
}

func TestEvalCompareString(t *testing.T) {
	col := lpq.StringColumn([]string{"alice", "bob", "carol"})
	b, err := EvalCompare(&Compare{Column: "n", Op: OpGe, Value: StringLit("bob")}, col)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count() != 2 {
		t.Fatalf("n >= 'bob' selected %d", b.Count())
	}
	if _, err := EvalCompare(&Compare{Column: "n", Op: OpEq, Value: IntLit(1)}, col); err == nil {
		t.Fatal("int literal against string column must fail")
	}
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEvalExprAgainstBruteForce is the central evaluator property: for random
// predicate trees and random data, EvalExpr over per-compare bitmaps must
// agree with direct row-at-a-time evaluation.
func TestEvalExprAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 500
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(rng.Intn(20))
		floats[i] = float64(rng.Intn(100)) / 4
		strs[i] = string(rune('a' + rng.Intn(5)))
	}
	cols := map[string]lpq.ColumnData{
		"i": lpq.IntColumn(ints),
		"f": lpq.FloatColumn(floats),
		"s": lpq.StringColumn(strs),
	}
	var genExpr func(depth int) Expr
	genExpr = func(depth int) Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return &Compare{Column: "i", Op: CmpOp(rng.Intn(6)), Value: IntLit(int64(rng.Intn(20)))}
			case 1:
				return &Compare{Column: "f", Op: CmpOp(rng.Intn(6)), Value: FloatLit(float64(rng.Intn(100)) / 4)}
			default:
				return &Compare{Column: "s", Op: CmpOp(rng.Intn(6)), Value: StringLit(string(rune('a' + rng.Intn(5))))}
			}
		}
		if rng.Intn(4) == 0 {
			return &Not{E: genExpr(depth - 1)}
		}
		return &Binary{Op: LogicalOp(rng.Intn(2)), L: genExpr(depth - 1), R: genExpr(depth - 1)}
	}
	var evalRow func(e Expr, i int) bool
	evalRow = func(e Expr, i int) bool {
		switch node := e.(type) {
		case *Compare:
			col := cols[node.Column]
			switch col.Type {
			case lpq.Int64:
				if node.Value.Kind == LitInt {
					return cmpInt(col.Ints[i], node.Value.I, node.Op)
				}
				return cmpFloat(float64(col.Ints[i]), node.Value.AsFloat(), node.Op)
			case lpq.Float64:
				return cmpFloat(col.Floats[i], node.Value.AsFloat(), node.Op)
			default:
				return cmpString(col.Strings[i], node.Value.S, node.Op)
			}
		case *Binary:
			if node.Op == OpAnd {
				return evalRow(node.L, i) && evalRow(node.R, i)
			}
			return evalRow(node.L, i) || evalRow(node.R, i)
		case *Not:
			return !evalRow(node.E, i)
		}
		return false
	}
	for trial := 0; trial < 100; trial++ {
		e := genExpr(3)
		got, err := EvalExpr(e, n, func(c *Compare) (*bitmap.Bitmap, error) {
			return EvalCompare(c, cols[c.Column])
		})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, e, err)
		}
		for i := 0; i < n; i++ {
			if got.Get(i) != evalRow(e, i) {
				t.Fatalf("trial %d (%s): row %d mismatch", trial, e, i)
			}
		}
	}
}

func TestCheckStatsInt(t *testing.T) {
	st := lpq.Stats{Valid: true, MinI: 10, MaxI: 20}
	cases := []struct {
		op   CmpOp
		lit  int64
		want StatsVerdict
	}{
		{OpLt, 5, StatsNone},
		{OpLt, 10, StatsNone},
		{OpLt, 25, StatsAll},
		{OpLt, 15, StatsUnknown},
		{OpEq, 30, StatsNone},
		{OpEq, 15, StatsUnknown},
		{OpGe, 10, StatsAll},
		{OpGt, 20, StatsNone},
		{OpNe, 30, StatsAll},
		{OpLe, 20, StatsAll},
	}
	for _, c := range cases {
		got := CheckStats(&Compare{Column: "x", Op: c.op, Value: IntLit(c.lit)}, lpq.Int64, st)
		if got != c.want {
			t.Errorf("op %v lit %d: verdict %v, want %v", c.op, c.lit, got, c.want)
		}
	}
	if CheckStats(&Compare{Op: OpEq, Value: IntLit(1)}, lpq.Int64, lpq.Stats{}) != StatsUnknown {
		t.Fatal("invalid stats must be unknown")
	}
	if CheckStats(&Compare{Op: OpEq, Value: StringLit("x")}, lpq.Int64, st) != StatsUnknown {
		t.Fatal("type-mismatched stats check must be unknown")
	}
}

func TestCheckStatsString(t *testing.T) {
	st := lpq.Stats{Valid: true, MinS: "f", MaxS: "m"}
	if CheckStats(&Compare{Op: OpEq, Value: StringLit("z")}, lpq.String, st) != StatsNone {
		t.Fatal("z outside [f,m] must prune")
	}
	if CheckStats(&Compare{Op: OpLt, Value: StringLit("z")}, lpq.String, st) != StatsAll {
		t.Fatal("all < z must be StatsAll")
	}
}

// Property: CheckStats verdicts are always consistent with row evaluation.
func TestCheckStatsSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50))
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		st := lpq.Stats{Valid: true, MinI: min, MaxI: max}
		cmp := &Compare{Column: "x", Op: CmpOp(rng.Intn(6)), Value: IntLit(int64(rng.Intn(60) - 5))}
		b, err := EvalCompare(cmp, lpq.IntColumn(vals))
		if err != nil {
			return false
		}
		switch CheckStats(cmp, lpq.Int64, st) {
		case StatsNone:
			return b.Count() == 0
		case StatsAll:
			return b.Count() == n
		default:
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAggState(t *testing.T) {
	col := lpq.FloatColumn([]float64{1, 2, 3, 4})
	sel := bitmap.New(4)
	sel.Set(1)
	sel.Set(3) // values 2 and 4
	sum := NewAggState(AggSum)
	sum.AddColumn(col, sel)
	if sum.Result().F != 6 {
		t.Fatalf("SUM = %v", sum.Result())
	}
	avg := NewAggState(AggAvg)
	avg.AddColumn(col, sel)
	if avg.Result().F != 3 {
		t.Fatalf("AVG = %v", avg.Result())
	}
	cnt := NewAggState(AggCount)
	cnt.AddCount(sel.Count())
	if cnt.Result().I != 2 {
		t.Fatalf("COUNT = %v", cnt.Result())
	}
	mn := NewAggState(AggMin)
	mn.AddColumn(col, sel)
	if mn.Result().F != 2 {
		t.Fatalf("MIN = %v", mn.Result())
	}
	mx := NewAggState(AggMax)
	mx.AddColumn(col, sel)
	if mx.Result().F != 4 {
		t.Fatalf("MAX = %v", mx.Result())
	}
	// AVG of nothing is 0, not NaN.
	if NewAggState(AggAvg).Result().F != 0 {
		t.Fatal("empty AVG must be 0")
	}
	// String min/max.
	sCol := lpq.StringColumn([]string{"pear", "apple", "fig"})
	full := bitmap.NewFull(3)
	sMin := NewAggState(AggMin)
	sMin.AddColumn(sCol, full)
	if sMin.Result().S != "apple" {
		t.Fatalf("string MIN = %v", sMin.Result())
	}
}

func TestAggStateAcrossChunks(t *testing.T) {
	// Aggregation accumulates across chunk boundaries, matching a single
	// pass over the concatenated column.
	a := NewAggState(AggSum)
	a.AddColumn(lpq.IntColumn([]int64{1, 2}), bitmap.NewFull(2))
	a.AddColumn(lpq.IntColumn([]int64{3, 4}), bitmap.NewFull(2))
	if a.Result().F != 10 {
		t.Fatalf("cross-chunk SUM = %v", a.Result())
	}
}

func TestLiteralString(t *testing.T) {
	if IntLit(5).String() != "5" || FloatLit(2.5).String() != "2.5" {
		t.Fatal("numeric literal printing wrong")
	}
	if StringLit("a'b").String() != "'a''b'" {
		t.Fatal("string literal must escape quotes")
	}
	if !strings.Contains((&ParseError{Pos: 3, Msg: "x"}).Error(), "position 3") {
		t.Fatal("ParseError must include position")
	}
}
