// Package sql implements the SQL dialect Fusion supports (§5 "SQL
// Support"): SELECT with projections and aggregates, FROM a single object,
// WHERE with comparison predicates combined by AND/OR/NOT, plus GROUP BY
// with partial-aggregate pushdown, ORDER BY [ASC|DESC] and LIMIT — an
// S3-Select-style surface grown toward the paper's stated future work.
// Joins are deliberately excluded, as in the paper.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // = == != <> < <= > >=
	tokComma // ,
	tokLParen
	tokRParen
	tokStar
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords recognized case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true,
	"BETWEEN": true, "IN": true, "LIMIT": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"GROUP": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "AS": true,
}

// ParseError describes a lexical or syntactic error with its position.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at position %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "=", i})
				i++
			}
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, errAt(i, "unexpected '!'")
			}
		case c == '<':
			switch {
			case i+1 < len(input) && input[i+1] == '=':
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
			case i+1 < len(input) && input[i+1] == '>':
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			default:
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(input) {
					return nil, errAt(i, "unterminated string literal")
				}
				if input[j] == '\'' {
					if j+1 < len(input) && input[j+1] == '\'' {
						sb.WriteByte('\'') // escaped quote
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9':
			j := i + 1
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
				(input[j] == '-' || input[j] == '+') && (input[j-1] == 'e' || input[j-1] == 'E')) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(word), i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, errAt(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
