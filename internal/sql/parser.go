package sql

import (
	"strconv"
	"strings"
)

// Parse parses a SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errAt(p.peek().pos, "unexpected trailing input %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return errAt(t.pos, "expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.peek().kind == tokStar {
		p.next()
		q.Star = true
	} else {
		for {
			proj, err := p.parseProjection()
			if err != nil {
				return nil, err
			}
			q.Projections = append(q.Projections, proj)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, errAt(t.pos, "expected table name, got %q", t.text)
	}
	q.Table = t.text
	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		where, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = where
	}
	if p.peek().kind == tokKeyword && p.peek().text == "LIMIT" {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "expected row count after LIMIT, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errAt(t.pos, "bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

var aggKinds = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parseProjection() (Projection, error) {
	t := p.next()
	switch t.kind {
	case tokKeyword:
		agg, ok := aggKinds[t.text]
		if !ok {
			return Projection{}, errAt(t.pos, "unexpected keyword %q in select list", t.text)
		}
		if lp := p.next(); lp.kind != tokLParen {
			return Projection{}, errAt(lp.pos, "expected ( after %s", t.text)
		}
		proj := Projection{Agg: agg}
		arg := p.next()
		switch arg.kind {
		case tokStar:
			if agg != AggCount {
				return Projection{}, errAt(arg.pos, "%s(*) is not supported", agg)
			}
			proj.Star = true
		case tokIdent:
			proj.Column = arg.text
		default:
			return Projection{}, errAt(arg.pos, "expected column or * in %s(...)", agg)
		}
		if rp := p.next(); rp.kind != tokRParen {
			return Projection{}, errAt(rp.pos, "expected ) after aggregate argument")
		}
		return proj, nil
	case tokIdent:
		return Projection{Column: t.text}, nil
	default:
		return Projection{}, errAt(t.pos, "expected projection, got %q", t.text)
	}
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "OR" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "AND" {
		p.next()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if rp := p.next(); rp.kind != tokRParen {
			return nil, errAt(rp.pos, "expected )")
		}
		return e, nil
	case t.kind == tokKeyword && t.text == "NOT":
		p.next()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	default:
		return p.parseCompare()
	}
}

var cmpOps = map[string]CmpOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCompare() (Expr, error) {
	col := p.next()
	if col.kind != tokIdent {
		return nil, errAt(col.pos, "expected column name, got %q", col.text)
	}
	opTok := p.next()
	switch {
	case opTok.kind == tokKeyword && opTok.text == "BETWEEN":
		// col BETWEEN lo AND hi desugars to (col >= lo AND col <= hi);
		// the AND here binds to BETWEEN, not to the boolean grammar.
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Binary{
			Op: OpAnd,
			L:  &Compare{Column: col.text, Op: OpGe, Value: lo},
			R:  &Compare{Column: col.text, Op: OpLe, Value: hi},
		}, nil
	case opTok.kind == tokKeyword && opTok.text == "IN":
		// col IN (a, b, ...) desugars to equality ORs.
		if lp := p.next(); lp.kind != tokLParen {
			return nil, errAt(lp.pos, "expected ( after IN")
		}
		var expr Expr
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			cmp := &Compare{Column: col.text, Op: OpEq, Value: lit}
			if expr == nil {
				expr = cmp
			} else {
				expr = &Binary{Op: OpOr, L: expr, R: cmp}
			}
			t := p.next()
			if t.kind == tokRParen {
				return expr, nil
			}
			if t.kind != tokComma {
				return nil, errAt(t.pos, "expected , or ) in IN list, got %q", t.text)
			}
		}
	case opTok.kind == tokOp:
		op := cmpOps[opTok.text]
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Compare{Column: col.text, Op: op, Value: lit}, nil
	default:
		return nil, errAt(opTok.pos, "expected comparison operator, BETWEEN or IN, got %q", opTok.text)
	}
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Literal{}, errAt(t.pos, "bad number %q", t.text)
			}
			return FloatLit(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Literal{}, errAt(t.pos, "bad integer %q", t.text)
		}
		return IntLit(i), nil
	case tokString:
		return StringLit(t.text), nil
	default:
		return Literal{}, errAt(t.pos, "expected literal, got %q", t.text)
	}
}
