package sql

import (
	"strconv"
	"strings"
)

// Parse parses a SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errAt(p.peek().pos, "unexpected trailing input %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return errAt(t.pos, "expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.peek().kind == tokStar {
		p.next()
		q.Star = true
	} else {
		for {
			proj, err := p.parseProjection()
			if err != nil {
				return nil, err
			}
			q.Projections = append(q.Projections, proj)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, errAt(t.pos, "expected table name, got %q", t.text)
	}
	q.Table = t.text
	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		where, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = where
	}
	if p.peek().kind == tokKeyword && p.peek().text == "GROUP" {
		if err := p.parseGroupBy(q); err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tokKeyword && p.peek().text == "ORDER" {
		if err := p.parseOrderBy(q); err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tokKeyword && p.peek().text == "LIMIT" {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "expected row count after LIMIT, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errAt(t.pos, "bad LIMIT %q", t.text)
		}
		q.Limit = n
		q.HasLimit = true
	}
	return q, nil
}

// resolveAlias maps an identifier through the SELECT-list aliases: it
// returns the aliased projection and true when ident names one.
func resolveAlias(q *Query, ident string) (Projection, bool) {
	for _, proj := range q.Projections {
		if proj.Alias == ident {
			return proj, true
		}
	}
	return Projection{}, false
}

// parseGroupBy parses GROUP BY col[, col...], resolving SELECT-list aliases
// to their underlying columns, and validates the grouped select list:
// every plain projection must be a grouping column. (Without GROUP BY the
// dialect keeps its relaxed S3-Select-style mixing of plain and aggregate
// projections.)
func (p *parser) parseGroupBy(q *Query) error {
	groupPos := p.next().pos // GROUP
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	if q.Star {
		return errAt(groupPos, "SELECT * cannot be combined with GROUP BY")
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return errAt(t.pos, "expected grouping column, got %q", t.text)
		}
		col := t.text
		if proj, ok := resolveAlias(q, col); ok {
			if proj.Agg != AggNone {
				return errAt(t.pos, "cannot GROUP BY aggregate alias %q", col)
			}
			col = proj.Column
		}
		if q.GroupKeyIndex(col) < 0 {
			q.GroupBy = append(q.GroupBy, col)
		}
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	for _, proj := range q.Projections {
		if proj.Agg == AggNone && q.GroupKeyIndex(proj.Column) < 0 {
			return errAt(groupPos, "column %q must appear in GROUP BY or inside an aggregate", proj.Column)
		}
	}
	return nil
}

// parseOrderBy parses ORDER BY item [ASC|DESC][, ...] where an item is a
// plain column, a SELECT-list alias, or an aggregate expression.
func (p *parser) parseOrderBy(q *Query) error {
	p.next() // ORDER
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	aggOnly := !q.Star && q.HasAggregates()
	for _, proj := range q.Projections {
		if proj.Agg == AggNone {
			aggOnly = false
		}
	}
	for {
		t := p.peek()
		var item OrderItem
		switch {
		case t.kind == tokKeyword && aggKinds[t.text] != AggNone:
			proj, err := p.parseProjExpr()
			if err != nil {
				return err
			}
			item.Proj = proj
		case t.kind == tokIdent:
			p.next()
			if proj, ok := resolveAlias(q, t.text); ok {
				proj.Alias = ""
				item.Proj = proj
			} else {
				item.Proj = Projection{Column: t.text}
			}
		default:
			return errAt(t.pos, "expected ORDER BY column or aggregate, got %q", t.text)
		}
		if item.Proj.Agg == AggNone {
			if len(q.GroupBy) > 0 && q.GroupKeyIndex(item.Proj.Column) < 0 {
				return errAt(t.pos, "ORDER BY column %q is not a grouping column", item.Proj.Column)
			}
			if len(q.GroupBy) == 0 && aggOnly {
				return errAt(t.pos, "ORDER BY column %q on an aggregate-only query", item.Proj.Column)
			}
		} else if len(q.GroupBy) == 0 && !q.HasAggregates() {
			return errAt(t.pos, "ORDER BY aggregate requires aggregates or GROUP BY")
		}
		if nt := p.peek(); nt.kind == tokKeyword && (nt.text == "ASC" || nt.text == "DESC") {
			p.next()
			item.Desc = nt.text == "DESC"
		}
		q.OrderBy = append(q.OrderBy, item)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	return nil
}

var aggKinds = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

// parseProjection parses one SELECT-list item with an optional AS alias.
func (p *parser) parseProjection() (Projection, error) {
	proj, err := p.parseProjExpr()
	if err != nil {
		return proj, err
	}
	if t := p.peek(); t.kind == tokKeyword && t.text == "AS" {
		p.next()
		a := p.next()
		if a.kind != tokIdent {
			return proj, errAt(a.pos, "expected alias after AS, got %q", a.text)
		}
		proj.Alias = a.text
	}
	return proj, nil
}

// parseProjExpr parses a projection expression: a column name, AGG(column),
// or COUNT(*) — without any alias.
func (p *parser) parseProjExpr() (Projection, error) {
	t := p.next()
	switch t.kind {
	case tokKeyword:
		agg, ok := aggKinds[t.text]
		if !ok {
			return Projection{}, errAt(t.pos, "unexpected keyword %q in select list", t.text)
		}
		if lp := p.next(); lp.kind != tokLParen {
			return Projection{}, errAt(lp.pos, "expected ( after %s", t.text)
		}
		proj := Projection{Agg: agg}
		arg := p.next()
		switch arg.kind {
		case tokStar:
			if agg != AggCount {
				return Projection{}, errAt(arg.pos, "%s(*) is not supported", agg)
			}
			proj.Star = true
		case tokIdent:
			proj.Column = arg.text
		default:
			return Projection{}, errAt(arg.pos, "expected column or * in %s(...)", agg)
		}
		if rp := p.next(); rp.kind != tokRParen {
			return Projection{}, errAt(rp.pos, "expected ) after aggregate argument")
		}
		return proj, nil
	case tokIdent:
		return Projection{Column: t.text}, nil
	default:
		return Projection{}, errAt(t.pos, "expected projection, got %q", t.text)
	}
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "OR" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "AND" {
		p.next()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if rp := p.next(); rp.kind != tokRParen {
			return nil, errAt(rp.pos, "expected )")
		}
		return e, nil
	case t.kind == tokKeyword && t.text == "NOT":
		p.next()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	default:
		return p.parseCompare()
	}
}

var cmpOps = map[string]CmpOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCompare() (Expr, error) {
	col := p.next()
	if col.kind != tokIdent {
		return nil, errAt(col.pos, "expected column name, got %q", col.text)
	}
	opTok := p.next()
	switch {
	case opTok.kind == tokKeyword && opTok.text == "BETWEEN":
		// col BETWEEN lo AND hi desugars to (col >= lo AND col <= hi);
		// the AND here binds to BETWEEN, not to the boolean grammar.
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Binary{
			Op: OpAnd,
			L:  &Compare{Column: col.text, Op: OpGe, Value: lo},
			R:  &Compare{Column: col.text, Op: OpLe, Value: hi},
		}, nil
	case opTok.kind == tokKeyword && opTok.text == "IN":
		// col IN (a, b, ...) desugars to equality ORs.
		if lp := p.next(); lp.kind != tokLParen {
			return nil, errAt(lp.pos, "expected ( after IN")
		}
		var expr Expr
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			cmp := &Compare{Column: col.text, Op: OpEq, Value: lit}
			if expr == nil {
				expr = cmp
			} else {
				expr = &Binary{Op: OpOr, L: expr, R: cmp}
			}
			t := p.next()
			if t.kind == tokRParen {
				return expr, nil
			}
			if t.kind != tokComma {
				return nil, errAt(t.pos, "expected , or ) in IN list, got %q", t.text)
			}
		}
	case opTok.kind == tokOp:
		op := cmpOps[opTok.text]
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Compare{Column: col.text, Op: op, Value: lit}, nil
	default:
		return nil, errAt(opTok.pos, "expected comparison operator, BETWEEN or IN, got %q", opTok.text)
	}
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Literal{}, errAt(t.pos, "bad number %q", t.text)
			}
			return FloatLit(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Literal{}, errAt(t.pos, "bad integer %q", t.text)
		}
		return IntLit(i), nil
	case tokString:
		return StringLit(t.text), nil
	default:
		return Literal{}, errAt(t.pos, "expected literal, got %q", t.text)
	}
}
