package sql

import (
	"fmt"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
)

// ErrType reports a predicate whose literal type is incompatible with the
// column type.
type ErrType struct {
	Column string
	Col    lpq.Type
	Lit    LitKind
}

func (e *ErrType) Error() string {
	return fmt.Sprintf("sql: column %s has type %v, incompatible literal kind %d", e.Column, e.Col, e.Lit)
}

// EvalCompare evaluates a comparison over one column chunk's values and
// returns the row bitmap. This is the operation Fusion pushes down to
// storage nodes in the filter stage.
func EvalCompare(c *Compare, col lpq.ColumnData) (*bitmap.Bitmap, error) {
	n := col.Len()
	out := bitmap.New(n)
	switch col.Type {
	case lpq.Int64:
		switch c.Value.Kind {
		case LitInt:
			lit := c.Value.I
			for i, v := range col.Ints {
				if cmpInt(v, lit, c.Op) {
					out.Set(i)
				}
			}
		case LitFloat:
			lit := c.Value.F
			for i, v := range col.Ints {
				if cmpFloat(float64(v), lit, c.Op) {
					out.Set(i)
				}
			}
		default:
			return nil, &ErrType{Column: c.Column, Col: col.Type, Lit: c.Value.Kind}
		}
	case lpq.Float64:
		if c.Value.Kind == LitString {
			return nil, &ErrType{Column: c.Column, Col: col.Type, Lit: c.Value.Kind}
		}
		lit := c.Value.AsFloat()
		for i, v := range col.Floats {
			if cmpFloat(v, lit, c.Op) {
				out.Set(i)
			}
		}
	case lpq.String:
		if c.Value.Kind != LitString {
			return nil, &ErrType{Column: c.Column, Col: col.Type, Lit: c.Value.Kind}
		}
		lit := c.Value.S
		for i, v := range col.Strings {
			if cmpString(v, lit, c.Op) {
				out.Set(i)
			}
		}
	}
	return out, nil
}

func cmpInt(v, lit int64, op CmpOp) bool {
	switch op {
	case OpEq:
		return v == lit
	case OpNe:
		return v != lit
	case OpLt:
		return v < lit
	case OpLe:
		return v <= lit
	case OpGt:
		return v > lit
	default:
		return v >= lit
	}
}

func cmpFloat(v, lit float64, op CmpOp) bool {
	switch op {
	case OpEq:
		return v == lit
	case OpNe:
		return v != lit
	case OpLt:
		return v < lit
	case OpLe:
		return v <= lit
	case OpGt:
		return v > lit
	default:
		return v >= lit
	}
}

func cmpString(v, lit string, op CmpOp) bool {
	switch op {
	case OpEq:
		return v == lit
	case OpNe:
		return v != lit
	case OpLt:
		return v < lit
	case OpLe:
		return v <= lit
	case OpGt:
		return v > lit
	default:
		return v >= lit
	}
}

// StatsVerdict is the outcome of testing a predicate against chunk min/max
// statistics.
type StatsVerdict int

const (
	// StatsUnknown: some rows may match; the chunk must be read.
	StatsUnknown StatsVerdict = iota
	// StatsNone: provably no row matches; the chunk can be skipped and an
	// all-zero bitmap substituted (the paper's footer-based coarse
	// filtering, §5).
	StatsNone
	// StatsAll: provably every row matches; an all-one bitmap can be
	// substituted without reading the chunk.
	StatsAll
)

// CheckStats tests a comparison against a chunk's min/max statistics.
func CheckStats(c *Compare, t lpq.Type, st lpq.Stats) StatsVerdict {
	if !st.Valid {
		return StatsUnknown
	}
	switch t {
	case lpq.Int64:
		if c.Value.Kind == LitString {
			return StatsUnknown
		}
		// Compare in float space, exact enough for pruning decisions on
		// the ranges the datasets use.
		return rangeVerdict(float64(st.MinI), float64(st.MaxI), c.Value.AsFloat(), c.Op)
	case lpq.Float64:
		if c.Value.Kind == LitString {
			return StatsUnknown
		}
		return rangeVerdict(st.MinF, st.MaxF, c.Value.AsFloat(), c.Op)
	default:
		if c.Value.Kind != LitString {
			return StatsUnknown
		}
		return stringRangeVerdict(st.MinS, st.MaxS, c.Value.S, c.Op)
	}
}

func rangeVerdict(min, max, lit float64, op CmpOp) StatsVerdict {
	switch op {
	case OpEq:
		if lit < min || lit > max {
			return StatsNone
		}
		if min == max && min == lit {
			return StatsAll
		}
	case OpNe:
		if lit < min || lit > max {
			return StatsAll
		}
		if min == max && min == lit {
			return StatsNone
		}
	case OpLt:
		if max < lit {
			return StatsAll
		}
		if min >= lit {
			return StatsNone
		}
	case OpLe:
		if max <= lit {
			return StatsAll
		}
		if min > lit {
			return StatsNone
		}
	case OpGt:
		if min > lit {
			return StatsAll
		}
		if max <= lit {
			return StatsNone
		}
	case OpGe:
		if min >= lit {
			return StatsAll
		}
		if max < lit {
			return StatsNone
		}
	}
	return StatsUnknown
}

func stringRangeVerdict(min, max, lit string, op CmpOp) StatsVerdict {
	switch op {
	case OpEq:
		if lit < min || lit > max {
			return StatsNone
		}
	case OpNe:
		if lit < min || lit > max {
			return StatsAll
		}
	case OpLt:
		if max < lit {
			return StatsAll
		}
		if min >= lit {
			return StatsNone
		}
	case OpLe:
		if max <= lit {
			return StatsAll
		}
		if min > lit {
			return StatsNone
		}
	case OpGt:
		if min > lit {
			return StatsAll
		}
		if max <= lit {
			return StatsNone
		}
	case OpGe:
		if min >= lit {
			return StatsAll
		}
		if max < lit {
			return StatsNone
		}
	}
	return StatsUnknown
}

// EvalExpr evaluates a predicate tree over n rows, obtaining each leaf
// comparison's bitmap from leaf (which may push down, prune via stats, or
// compute locally) and combining them with AND/OR/NOT at the coordinator.
func EvalExpr(e Expr, n int, leaf func(c *Compare) (*bitmap.Bitmap, error)) (*bitmap.Bitmap, error) {
	switch node := e.(type) {
	case *Compare:
		b, err := leaf(node)
		if err != nil {
			return nil, err
		}
		if b.Len() != n {
			return nil, fmt.Errorf("sql: leaf bitmap has %d rows, want %d", b.Len(), n)
		}
		return b, nil
	case *Binary:
		l, err := EvalExpr(node.L, n, leaf)
		if err != nil {
			return nil, err
		}
		r, err := EvalExpr(node.R, n, leaf)
		if err != nil {
			return nil, err
		}
		if node.Op == OpAnd {
			err = l.And(r)
		} else {
			err = l.Or(r)
		}
		return l, err
	case *Not:
		b, err := EvalExpr(node.E, n, leaf)
		if err != nil {
			return nil, err
		}
		b.Not()
		return b, nil
	default:
		return nil, fmt.Errorf("sql: unknown expression node %T", e)
	}
}

// AggState accumulates one aggregate across chunks.
type AggState struct {
	Kind  AggKind
	Count int64
	Sum   float64
	// Min/Max track extrema; Init reports whether any value was seen.
	Init       bool
	MinF, MaxF float64
	MinS, MaxS string
	IsString   bool
}

// NewAggState returns an accumulator for the given aggregate kind.
func NewAggState(kind AggKind) *AggState { return &AggState{Kind: kind} }

// AddColumn folds the selected rows of one chunk into the accumulator.
func (a *AggState) AddColumn(col lpq.ColumnData, sel *bitmap.Bitmap) {
	sel.ForEach(func(i int) {
		a.AddValue(col, i)
	})
}

// AddValue folds row i of col into the accumulator. Every execution path
// (node pushdown, coordinator fallback, grouped tables) folds values
// through this one function so partial states are bit-identical no matter
// where they were computed.
func (a *AggState) AddValue(col lpq.ColumnData, i int) {
	switch col.Type {
	case lpq.Int64:
		a.addNum(float64(col.Ints[i]))
	case lpq.Float64:
		a.addNum(col.Floats[i])
	default:
		a.addStr(col.Strings[i])
	}
}

func (a *AggState) addNum(f float64) {
	a.Count++
	a.Sum += f
	if !a.Init || f < a.MinF {
		a.MinF = f
	}
	if !a.Init || f > a.MaxF {
		a.MaxF = f
	}
	a.Init = true
}

func (a *AggState) addStr(s string) {
	a.Count++
	a.IsString = true
	if !a.Init || s < a.MinS {
		a.MinS = s
	}
	if !a.Init || s > a.MaxS {
		a.MaxS = s
	}
	a.Init = true
}

// AddCount folds a bare row count (for COUNT(*), which needs no column).
func (a *AggState) AddCount(n int) { a.Count += int64(n) }

// Merge folds another accumulator's state into a. Storage nodes compute
// partial aggregates over their chunks (aggregate pushdown, the paper's §5
// future-work extension) and the coordinator merges the partials.
func (a *AggState) Merge(p *AggState) {
	if p == nil || (!p.Init && p.Count == 0) {
		return
	}
	a.Count += p.Count
	a.Sum += p.Sum
	if !p.Init {
		return
	}
	if p.IsString {
		a.IsString = true
		if !a.Init || p.MinS < a.MinS {
			a.MinS = p.MinS
		}
		if !a.Init || p.MaxS > a.MaxS {
			a.MaxS = p.MaxS
		}
	} else {
		if !a.Init || p.MinF < a.MinF {
			a.MinF = p.MinF
		}
		if !a.Init || p.MaxF > a.MaxF {
			a.MaxF = p.MaxF
		}
	}
	a.Init = true
}

// Result returns the final aggregate value as a literal.
func (a *AggState) Result() Literal {
	switch a.Kind {
	case AggCount:
		return IntLit(a.Count)
	case AggSum:
		return FloatLit(a.Sum)
	case AggAvg:
		if a.Count == 0 {
			return FloatLit(0)
		}
		return FloatLit(a.Sum / float64(a.Count))
	case AggMin:
		if a.IsString {
			return StringLit(a.MinS)
		}
		return FloatLit(a.MinF)
	default: // AggMax
		if a.IsString {
			return StringLit(a.MaxS)
		}
		return FloatLit(a.MaxF)
	}
}
