package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/rpc"
)

// fakeClock is an injectable, manually-advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})
	b.SetClock(clk.Now)

	// Closed: everything flows; failures below the threshold don't trip.
	for i := 0; i < 2; i++ {
		if !b.Allow(0) {
			t.Fatal("closed circuit must allow")
		}
		b.Failure(0)
	}
	if b.State(0) != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v", b.State(0))
	}
	// A success resets the streak.
	b.Success(0)
	b.Failure(0)
	b.Failure(0)
	if b.State(0) != BreakerClosed {
		t.Fatalf("success must reset the failure streak: %v", b.State(0))
	}
	// The third consecutive failure opens the circuit.
	b.Failure(0)
	if b.State(0) != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State(0))
	}
	if b.Allow(0) {
		t.Fatal("open circuit must reject before cooldown")
	}
	// Cooldown elapses: exactly one probe is admitted (half-open).
	clk.Advance(time.Second)
	if !b.Allow(0) {
		t.Fatal("cooldown elapsed: the probe must be admitted")
	}
	if b.State(0) != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State(0))
	}
	if b.Allow(0) {
		t.Fatal("only one probe may be in flight")
	}
	// A failed probe re-opens immediately; the next cooldown applies.
	b.Failure(0)
	if b.State(0) != BreakerOpen {
		t.Fatalf("failed probe must re-open: %v", b.State(0))
	}
	if b.Allow(0) {
		t.Fatal("re-opened circuit must reject")
	}
	clk.Advance(time.Second)
	if !b.Allow(0) {
		t.Fatal("second probe must be admitted after another cooldown")
	}
	// A successful probe closes the circuit for good.
	b.Success(0)
	if b.State(0) != BreakerClosed || !b.Allow(0) {
		t.Fatalf("successful probe must close: %v", b.State(0))
	}
	// Per-node isolation: node 1 was never touched.
	if b.State(1) != BreakerClosed || !b.Allow(1) {
		t.Fatal("untouched node must stay closed")
	}
}

func TestBreakerNilReceiver(t *testing.T) {
	var b *Breaker
	if !b.Allow(3) {
		t.Fatal("nil breaker must allow everything")
	}
	b.Success(3)
	b.Failure(3)
	if b.State(3) != BreakerClosed {
		t.Fatal("nil breaker reports closed")
	}
	if snap := b.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil breaker snapshot = %v", snap)
	}
}

func TestBreakerSnapshot(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	b.Failure(2)
	b.Success(5)
	snap := b.Snapshot()
	if snap[2] != "open" || snap[5] != "closed" {
		t.Fatalf("snapshot = %v", snap)
	}
}

// failingClient always fails at the transport level and counts attempts.
type failingClient struct {
	mu    sync.Mutex
	calls int
}

func (c *failingClient) NumNodes() int { return 3 }

func (c *failingClient) Call(node int, req *rpc.Request) (*rpc.Response, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return nil, fmt.Errorf("transport refused (node %d)", node)
}

func (c *failingClient) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// TestCallRetryBreakerFailsFast pins the breaker/retry integration: once a
// node's consecutive transport failures cross the threshold, further calls
// fail with ErrNodeDown before any transport attempt is made.
func TestCallRetryBreakerFailsFast(t *testing.T) {
	fc := &failingClient{}
	p := Policy{
		MaxAttempts: 1,
		BaseBackoff: time.Microsecond,
		Breaker:     NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Hour}),
	}
	req := &rpc.Request{Kind: rpc.KindPing}
	for i := 0; i < 2; i++ {
		if _, err := CallRetry(fc, 0, req, p); err == nil {
			t.Fatal("failing transport must error")
		}
	}
	if fc.count() != 2 {
		t.Fatalf("transport attempts before trip = %d, want 2", fc.count())
	}
	// Circuit open: the next call is rejected without touching the transport.
	_, err := CallRetry(fc, 0, req, p)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("open circuit: want ErrNodeDown, got %v", err)
	}
	if fc.count() != 2 {
		t.Fatalf("open circuit must not issue transport calls (calls = %d)", fc.count())
	}
	// Other nodes are unaffected (they still reach the transport).
	if _, err := CallRetry(fc, 1, req, p); errors.Is(err, ErrNodeDown) {
		t.Fatalf("node 1 must not be short-circuited: %v", err)
	}
	if fc.count() != 3 {
		t.Fatalf("node 1 call must hit the transport (calls = %d)", fc.count())
	}
}
