// Package cluster implements Fusion's storage-node substrate: the per-node
// block store, the node service that executes block operations and pushdown
// computations, and the Client interface coordinators use to reach nodes
// over any transport.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a missing block.
var ErrNotFound = errors.New("cluster: block not found")

// BlockStore is a node's local block storage.
type BlockStore interface {
	// Put stores data under id, replacing any previous contents.
	Put(id string, data []byte) error
	// Get reads length bytes at offset; length 0 means to the end.
	Get(id string, offset, length uint64) ([]byte, error)
	// Size returns a block's byte size.
	Size(id string) (uint64, error)
	// Delete removes a block. Deleting a missing block is not an error.
	Delete(id string) error
	// IDs returns all block ids in sorted order.
	IDs() []string
}

// MemStore is an in-memory BlockStore, used by the simulated cluster and by
// tests.
type MemStore struct {
	mu     sync.RWMutex
	blocks map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blocks: make(map[string][]byte)}
}

// Put implements BlockStore.
func (s *MemStore) Put(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks[id] = append([]byte(nil), data...)
	return nil
}

// Get implements BlockStore.
func (s *MemStore) Get(id string, offset, length uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return sliceRange(b, offset, length)
}

// Size implements BlockStore.
func (s *MemStore) Size(id string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blocks[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return uint64(len(b)), nil
}

// Delete implements BlockStore.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blocks, id)
	return nil
}

// IDs implements BlockStore.
func (s *MemStore) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.blocks))
	for id := range s.blocks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TotalBytes returns the sum of all block sizes (storage-overhead audits).
func (s *MemStore) TotalBytes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total uint64
	for _, b := range s.blocks {
		total += uint64(len(b))
	}
	return total
}

func sliceRange(b []byte, offset, length uint64) ([]byte, error) {
	if offset > uint64(len(b)) {
		return nil, fmt.Errorf("cluster: offset %d beyond block of %d bytes", offset, len(b))
	}
	end := uint64(len(b))
	if length > 0 {
		end = offset + length
		if end > uint64(len(b)) {
			return nil, fmt.Errorf("cluster: range [%d,%d) beyond block of %d bytes", offset, end, len(b))
		}
	}
	return append([]byte(nil), b[offset:end]...), nil
}

// DiskStore is a BlockStore persisting each block as a file under a
// directory — the layout the fusion-server binary uses.
type DiskStore struct {
	dir string
	mu  sync.RWMutex
}

// NewDiskStore creates (if needed) and opens a directory-backed store.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// path maps a block id to a file path, escaping separators.
func (s *DiskStore) path(id string) string {
	enc := strings.NewReplacer("/", "_S_", "\\", "_B_", "..", "_D_").Replace(id)
	return filepath.Join(s.dir, enc+".blk")
}

// Put implements BlockStore.
func (s *DiskStore) Put(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(id))
}

// Get implements BlockStore.
func (s *DiskStore) Get(id string, offset, length uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := os.Open(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := uint64(st.Size())
	if offset > size {
		return nil, fmt.Errorf("cluster: offset %d beyond block of %d bytes", offset, size)
	}
	end := size
	if length > 0 {
		end = offset + length
		if end > size {
			return nil, fmt.Errorf("cluster: range [%d,%d) beyond block of %d bytes", offset, end, size)
		}
	}
	buf := make([]byte, end-offset)
	if _, err := f.ReadAt(buf, int64(offset)); err != nil {
		return nil, err
	}
	return buf, nil
}

// Size implements BlockStore.
func (s *DiskStore) Size(id string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, err := os.Stat(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return 0, err
	}
	return uint64(st.Size()), nil
}

// Delete implements BlockStore.
func (s *DiskStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// IDs implements BlockStore.
func (s *DiskStore) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	dec := strings.NewReplacer("_S_", "/", "_B_", "\\", "_D_", "..")
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".blk") {
			ids = append(ids, dec.Replace(strings.TrimSuffix(name, ".blk")))
		}
	}
	sort.Strings(ids)
	return ids
}
