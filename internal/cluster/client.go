package cluster

import (
	"errors"

	"github.com/fusionstore/fusion/internal/rpc"
)

// Client is how a coordinator reaches storage nodes. Implementations:
// simnet.Cluster (deterministic in-process simulation) and tcpnet.Client
// (real sockets).
type Client interface {
	// Call sends one request to the given node and waits for its response.
	// Transport-level failures (node down, connection refused) are returned
	// as errors; application-level failures arrive in Response.Err.
	Call(node int, req *rpc.Request) (*rpc.Response, error)
	// NumNodes returns the cluster size.
	NumNodes() int
}

// ErrNodeDown reports a call to an unreachable node.
var ErrNodeDown = errors.New("cluster: node down")

// CallChecked performs a Call under DefaultPolicy (bounded retries with
// backoff for transient transport errors; ErrNodeDown fails fast) and
// converts application errors to Go errors.
func CallChecked(c Client, node int, req *rpc.Request) (*rpc.Response, error) {
	return CallCheckedPolicy(c, node, req, DefaultPolicy())
}

// ParallelResult is one completed call from Parallel.
type ParallelResult struct {
	Index int
	Node  int
	Req   *rpc.Request
	Resp  *rpc.Response
	Err   error
}

// Parallel issues all calls concurrently under DefaultPolicy and returns
// results indexed like the input. The coordinator fans its filter and
// projection stages out this way (§4.3).
func Parallel(c Client, nodes []int, reqs []*rpc.Request) []ParallelResult {
	return ParallelPolicy(c, nodes, reqs, DefaultPolicy())
}
