package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/rpc"
)

// ErrCallTimeout reports an attempt abandoned at its per-call deadline. The
// underlying transport call keeps running in the background; every node RPC
// is idempotent, so a retried attempt racing a late response is harmless.
var ErrCallTimeout = errors.New("cluster: call timed out")

// Policy bounds the retry/backoff/deadline behavior of the hardened call
// path. The zero value means "defaults": 3 attempts, 1ms base backoff
// doubling to 100ms, 50% jitter, no per-attempt deadline.
type Policy struct {
	// MaxAttempts is the total number of tries (first call included).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// JitterFrac scales each backoff by a uniform factor in
	// [1, 1+JitterFrac], decorrelating retry storms across callers.
	JitterFrac float64
	// Timeout, when positive, bounds each attempt; an attempt that exceeds
	// it fails with ErrCallTimeout and is retried like any transport error.
	Timeout time.Duration
	// RetryNodeDown also retries ErrNodeDown. Off by default: a refused
	// connection is a definitive answer, and for reads the caller's better
	// retry is the reconstruction fan-out over other nodes.
	RetryNodeDown bool
	// Jitter is the randomness source for backoff jitter. Nil means the
	// package's locked, fixed-seed default — NOT the global math/rand
	// source, so fault-injection runs under a fixed FUSION_FAULT_SEED
	// replay byte-identical backoff schedules. Tests and chaos harnesses
	// inject NewJitterSource(seed) to tie the jitter to their seed.
	Jitter JitterSource
	// OnBackoff, when set, observes every retry sleep before it happens:
	// the node, the retry number (1-based), and the jittered duration. The
	// determinism tests record these into a backoff trace.
	OnBackoff func(node, retry int, d time.Duration)
	// Health, when set, receives per-node call/failure/retry/timeout counts.
	Health *metrics.Health
	// Breaker, when set, is the per-node circuit breaker every call
	// consults: a node whose circuit is open fails fast with ErrNodeDown
	// (no transport attempt), and every attempt's transport outcome feeds
	// the breaker's state machine. Nil disables circuit breaking.
	Breaker *Breaker
}

// JitterSource yields uniform draws in [0,1) for backoff jitter. It must be
// safe for concurrent use.
type JitterSource interface {
	Float64() float64
}

// lockedSource is a mutex-guarded seeded *rand.Rand: deterministic given
// its seed, safe across the goroutines of a parallel fan-out.
type lockedSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitterSource returns a concurrency-safe jitter source with its own
// seeded generator.
func NewJitterSource(seed int64) JitterSource {
	return &lockedSource{rng: rand.New(rand.NewSource(seed))}
}

func (s *lockedSource) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// defaultJitter decorrelates retry storms without depending on the global
// math/rand state, keeping default-policy runs reproducible.
var defaultJitter = NewJitterSource(1)

// DefaultPolicy returns the policy CallChecked and Parallel apply.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		JitterFrac:  0.5,
	}
}

// withDefaults fills unset bounds.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	return p
}

// backoff returns the sleep before retry number retry (1-based).
func (p Policy) backoff(retry int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < retry && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.JitterFrac > 0 {
		src := p.Jitter
		if src == nil {
			src = defaultJitter
		}
		d = time.Duration(float64(d) * (1 + p.JitterFrac*src.Float64()))
	}
	return d
}

// retryable reports whether a transport error is worth another attempt.
func (p Policy) retryable(err error) bool {
	if errors.Is(err, ErrNodeDown) {
		return p.RetryNodeDown
	}
	return true
}

// CallTimeout performs one Call bounded by d (d <= 0 means unbounded). On
// timeout the in-flight call is abandoned to a buffered channel, so the
// transport goroutine never blocks.
func CallTimeout(c Client, node int, req *rpc.Request, d time.Duration) (*rpc.Response, error) {
	if d <= 0 {
		return c.Call(node, req)
	}
	type result struct {
		resp *rpc.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := c.Call(node, req)
		ch <- result{resp, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-timer.C:
		return nil, fmt.Errorf("%w: node %d after %v", ErrCallTimeout, node, d)
	}
}

// CallRetry is the hardened transport call: per-attempt deadline, bounded
// retries with exponential backoff + jitter, and per-node health accounting.
// Only transport-level failures are retried; an rpc.Response carrying an
// application error is returned as a success at this layer. All node RPCs
// are idempotent (Put rewrites the same bytes, reads have no side effects),
// so re-sending a request whose response was lost is safe.
func CallRetry(c Client, node int, req *rpc.Request, p Policy) (*rpc.Response, error) {
	resp, _, err := CallRetryN(c, node, req, p)
	return resp, err
}

// CallRetryN is CallRetry reporting how many attempts ran (>= 1), so
// request-scoped tracing can attribute retries to the request that paid for
// them.
func CallRetryN(c Client, node int, req *rpc.Request, p Policy) (*rpc.Response, int, error) {
	return CallRetryCtx(context.Background(), c, node, req, p)
}

// CallRetryCtx is CallRetryN bounded end to end by the caller's context:
// no attempt is issued once ctx is done, a backoff that would sleep past
// the context deadline fails immediately instead of sleeping into a
// guaranteed-useless retry, and each attempt's per-call timeout is capped
// at the remaining deadline budget. A Background context restores plain
// CallRetryN behavior.
func CallRetryCtx(ctx context.Context, c Client, node int, req *rpc.Request, p Policy) (*rpc.Response, int, error) {
	p = p.withDefaults()
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, attempts, fmt.Errorf("cluster: %d attempts to node %d abandoned (%v): %w", attempts, node, lastErr, err)
			}
			return nil, attempts, err
		}
		if attempt > 1 {
			p.Health.Retry(node)
			d := p.backoff(attempt - 1)
			if p.OnBackoff != nil {
				p.OnBackoff(node, attempt-1, d)
			}
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
				// The retry could only fire after the caller's deadline —
				// fail now rather than sleeping past it and issuing doomed
				// work (the pre-context bug this path exists to fix).
				return nil, attempts, fmt.Errorf("cluster: %d attempts to node %d, backoff crosses deadline (%v): %w",
					attempts, node, lastErr, context.DeadlineExceeded)
			}
			if !sleepCtx(ctx, d) {
				return nil, attempts, ctx.Err()
			}
		}
		if !p.Breaker.Allow(node) {
			// Open circuit: fail fast without a transport attempt, with the
			// same sentinel a refused connection produces so callers fall
			// into their reconstruction/fan-out paths immediately.
			return nil, attempts, fmt.Errorf("%w: node %d (circuit open)", ErrNodeDown, node)
		}
		attempts = attempt
		p.Health.Call(node)
		timeout := p.Timeout
		if dl, ok := ctx.Deadline(); ok {
			rem := time.Until(dl)
			if rem <= 0 {
				return nil, attempts, context.DeadlineExceeded
			}
			if timeout <= 0 || rem < timeout {
				timeout = rem
			}
		}
		resp, err := callTimeoutCtx(ctx, c, node, req, timeout)
		if err == nil {
			p.Breaker.Success(node)
			return resp, attempts, nil
		}
		p.Breaker.Failure(node)
		p.Health.Failure(node)
		if errors.Is(err, ErrCallTimeout) {
			p.Health.Timeout(node)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Cancelled or expired mid-attempt: the context error wins and
			// is never retried.
			return nil, attempts, fmt.Errorf("cluster: attempt %d to node %d abandoned (%v): %w", attempts, node, err, ctxErr)
		}
		lastErr = err
		if !p.retryable(err) {
			return nil, attempts, err
		}
	}
	return nil, attempts, fmt.Errorf("cluster: %d attempts to node %d failed: %w", p.MaxAttempts, node, lastErr)
}

// sleepCtx sleeps for d unless ctx is done first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx.Done() == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// callTimeoutCtx is CallTimeout that additionally abandons the in-flight
// attempt the moment ctx is done.
func callTimeoutCtx(ctx context.Context, c Client, node int, req *rpc.Request, d time.Duration) (*rpc.Response, error) {
	if d <= 0 && ctx.Done() == nil {
		return c.Call(node, req)
	}
	type result struct {
		resp *rpc.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := c.Call(node, req)
		ch <- result{resp, err}
	}()
	var timeC <-chan time.Time
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeC = timer.C
	}
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-timeC:
		return nil, fmt.Errorf("%w: node %d after %v", ErrCallTimeout, node, d)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// CallCheckedPolicy is CallChecked under an explicit policy.
func CallCheckedPolicy(c Client, node int, req *rpc.Request, p Policy) (*rpc.Response, error) {
	resp, err := CallRetry(c, node, req, p)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("cluster: node %d: %s", node, resp.Err)
	}
	return resp, nil
}

// ParallelPolicy issues all calls concurrently under the given retry policy,
// returning results indexed like the input.
func ParallelPolicy(c Client, nodes []int, reqs []*rpc.Request, p Policy) []ParallelResult {
	if len(nodes) != len(reqs) {
		panic("cluster: nodes and reqs length mismatch")
	}
	results := make([]ParallelResult, len(reqs))
	done := make(chan int, len(reqs))
	for i := range reqs {
		go func(i int) {
			resp, err := CallRetry(c, nodes[i], reqs[i], p)
			results[i] = ParallelResult{Index: i, Node: nodes[i], Req: reqs[i], Resp: resp, Err: err}
			done <- i
		}(i)
	}
	for range reqs {
		<-done
	}
	return results
}
