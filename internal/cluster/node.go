package cluster

import (
	"fmt"
	"time"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sql"
)

// Node is one Fusion storage node: a block store plus the in-situ pushdown
// executor. Every node is identical; any of them can additionally act as a
// coordinator (§4.1), which the store layer implements on top of Client.
type Node struct {
	ID     int
	Blocks BlockStore

	hist *metrics.HistogramSet
}

// NewNode returns a node backed by the given store.
func NewNode(id int, bs BlockStore) *Node {
	return &Node{ID: id, Blocks: bs}
}

// SetMetrics installs a node-side latency histogram set: every handled RPC
// is timed under Key{Op: "node.<kind>", Node: ID}. A nil set (the default)
// disables timing entirely.
func (n *Node) SetMetrics(h *metrics.HistogramSet) { n.hist = h }

// Handle executes one request against this node. It never panics on
// malformed input; errors are reported in Response.Err.
func (n *Node) Handle(req *rpc.Request) *rpc.Response {
	if n.hist == nil {
		return n.handle(req)
	}
	start := time.Now()
	resp := n.handle(req)
	n.hist.Observe(metrics.Key{Op: "node." + req.Kind.String(), Node: n.ID}, time.Since(start))
	return resp
}

func (n *Node) handle(req *rpc.Request) *rpc.Response {
	switch req.Kind {
	case rpc.KindPing:
		return &rpc.Response{}
	case rpc.KindPutBlock:
		if err := n.Blocks.Put(req.BlockID, req.Data); err != nil {
			return errResp(err)
		}
		return &rpc.Response{}
	case rpc.KindGetBlock:
		data, err := n.Blocks.Get(req.BlockID, req.Offset, req.Length)
		if err != nil {
			return errResp(err)
		}
		return &rpc.Response{Data: data, Cost: rpc.Cost{DiskBytes: uint64(len(data))}}
	case rpc.KindDeleteBlock:
		if err := n.Blocks.Delete(req.BlockID); err != nil {
			return errResp(err)
		}
		return &rpc.Response{}
	case rpc.KindBlockSize:
		size, err := n.Blocks.Size(req.BlockID)
		if err != nil {
			return errResp(err)
		}
		return &rpc.Response{Size: size}
	case rpc.KindFilter:
		return n.handleFilter(req)
	case rpc.KindProject:
		return n.handleProject(req)
	case rpc.KindAggregate:
		return n.handleAggregate(req)
	default:
		return errResp(fmt.Errorf("cluster: unknown request kind %d", req.Kind))
	}
}

// readChunk loads and decodes the referenced column chunk from local
// storage, returning the decoded values and the disk/processing cost.
func (n *Node) readChunk(ref rpc.ChunkRef) (lpq.ColumnData, rpc.Cost, error) {
	raw, err := n.Blocks.Get(ref.BlockID, ref.Offset, ref.Meta.Size)
	if err != nil {
		return lpq.ColumnData{}, rpc.Cost{}, err
	}
	cost := rpc.Cost{DiskBytes: uint64(len(raw)), ProcBytes: ref.Meta.RawSize}
	col, err := lpq.DecodeChunk(ref.Type, ref.Meta, raw)
	if err != nil {
		return lpq.ColumnData{}, cost, err
	}
	return col, cost, nil
}

// handleFilter runs a pushed-down comparison on a local chunk and returns
// the compressed result bitmap (§5: the node reads the chunk, decompresses
// and decodes it, runs the filter, and Snappy-compresses the bitmap).
func (n *Node) handleFilter(req *rpc.Request) *rpc.Response {
	col, cost, err := n.readChunk(req.Chunk)
	if err != nil {
		return errRespCost(err, cost)
	}
	cmp := &sql.Compare{Column: "pushdown", Op: req.Op, Value: req.Value}
	bm, err := sql.EvalCompare(cmp, col)
	if err != nil {
		return errRespCost(err, cost)
	}
	return &rpc.Response{Data: bm.Marshal(), Matches: bm.Count(), Cost: cost}
}

// handleProject returns the chunk values selected by the request bitmap in
// plain (uncompressed) encoding — the projection-stage reply whose size the
// cost model weighs against shipping the compressed chunk (§4.3).
func (n *Node) handleProject(req *rpc.Request) *rpc.Response {
	col, cost, err := n.readChunk(req.Chunk)
	if err != nil {
		return errRespCost(err, cost)
	}
	bm, err := bitmap.Unmarshal(req.Bitmap)
	if err != nil {
		return errRespCost(err, cost)
	}
	if bm.Len() != col.Len() {
		return errRespCost(fmt.Errorf("cluster: bitmap has %d rows, chunk has %d", bm.Len(), col.Len()), cost)
	}
	sel := SelectRows(col, bm)
	data := EncodePlain(sel)
	return &rpc.Response{Data: data, Matches: sel.Len(), Cost: cost}
}

// handleAggregate computes a partial aggregate over the selected rows of a
// local chunk: only the accumulator crosses the network, never the values.
func (n *Node) handleAggregate(req *rpc.Request) *rpc.Response {
	col, cost, err := n.readChunk(req.Chunk)
	if err != nil {
		return errRespCost(err, cost)
	}
	bm, err := bitmap.Unmarshal(req.Bitmap)
	if err != nil {
		return errRespCost(err, cost)
	}
	if bm.Len() != col.Len() {
		return errRespCost(fmt.Errorf("cluster: bitmap has %d rows, chunk has %d", bm.Len(), col.Len()), cost)
	}
	// The accumulator gathers count, sum and extrema at once; the
	// coordinator extracts whichever the query's aggregates need.
	state := sql.NewAggState(sql.AggCount)
	state.AddColumn(col, bm)
	return &rpc.Response{Matches: bm.Count(), Agg: state, Cost: cost}
}

func errResp(err error) *rpc.Response { return &rpc.Response{Err: err.Error()} }

func errRespCost(err error, c rpc.Cost) *rpc.Response {
	return &rpc.Response{Err: err.Error(), Cost: c}
}

// SelectRows returns the subset of col's values whose bits are set.
func SelectRows(col lpq.ColumnData, bm *bitmap.Bitmap) lpq.ColumnData {
	out := lpq.ColumnData{Type: col.Type}
	switch col.Type {
	case lpq.Int64:
		out.Ints = make([]int64, 0, bm.Count())
		bm.ForEach(func(i int) { out.Ints = append(out.Ints, col.Ints[i]) })
	case lpq.Float64:
		out.Floats = make([]float64, 0, bm.Count())
		bm.ForEach(func(i int) { out.Floats = append(out.Floats, col.Floats[i]) })
	default:
		out.Strings = make([]string, 0, bm.Count())
		bm.ForEach(func(i int) { out.Strings = append(out.Strings, col.Strings[i]) })
	}
	return out
}
