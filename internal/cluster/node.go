package cluster

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sql"
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64 via hash/crc32's SSE4.2/CRC32 fast paths).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the block checksum used across the durability layer: CRC32C
// over the stored (unpadded) block bytes.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ErrChecksum reports a block whose bytes no longer match its recorded
// CRC32C — bit rot at rest, or a write whose payload was corrupted in
// flight. It crosses the wire as a Response.Err string; use IsChecksumErr
// on that side.
var ErrChecksum = errors.New("cluster: block checksum mismatch")

// IsChecksumErr reports whether a Response.Err string carries ErrChecksum.
func IsChecksumErr(msg string) bool {
	return strings.Contains(msg, "block checksum mismatch")
}

// ErrExpired reports work a node refused (or abandoned at a batch
// checkpoint) because the request's relative deadline budget
// (rpc.Request.DeadlineMicros) had already elapsed — the caller gave up, so
// finishing the work would only burn node CPU for an abandoned request. It
// crosses the wire as a Response.Err string; use IsExpiredErr on that side.
var ErrExpired = errors.New("cluster: request deadline expired")

// IsExpiredErr reports whether a Response.Err string carries ErrExpired.
func IsExpiredErr(msg string) bool {
	return strings.Contains(msg, "request deadline expired")
}

// blockEntry is the node's durability record for one block: which write
// attempt produced it, whether that attempt has committed, and the CRC32C
// its bytes must verify against.
type blockEntry struct {
	object  string
	epoch   uint64
	crc     uint32
	pending bool
}

// Node is one Fusion storage node: a block store plus the in-situ pushdown
// executor. Every node is identical; any of them can additionally act as a
// coordinator (§4.1), which the store layer implements on top of Client.
type Node struct {
	ID     int
	Blocks BlockStore

	hist *metrics.HistogramSet

	mu      sync.Mutex
	entries map[string]blockEntry
}

// NewNode returns a node backed by the given store.
func NewNode(id int, bs BlockStore) *Node {
	return &Node{ID: id, Blocks: bs, entries: make(map[string]blockEntry)}
}

// SetMetrics installs a node-side latency histogram set: every handled RPC
// is timed under Key{Op: "node.<kind>", Node: ID}. A nil set (the default)
// disables timing entirely.
func (n *Node) SetMetrics(h *metrics.HistogramSet) { n.hist = h }

// Handle executes one request against this node. It never panics on
// malformed input; errors are reported in Response.Err.
//
// A request carrying a positive DeadlineMicros is held to that budget: the
// deadline is the handling start plus the relative budget (stamped by the
// coordinator at send time, so clock skew never shifts it), already-expired
// work is rejected before touching storage, and batch frames re-check at
// every sub-op boundary — the checkpoints that let a long scan abort
// mid-row-group once its caller has given up.
func (n *Node) Handle(req *rpc.Request) *rpc.Response {
	start := time.Now()
	var deadline time.Time
	if req.DeadlineMicros > 0 {
		deadline = start.Add(time.Duration(req.DeadlineMicros) * time.Microsecond)
	}
	if n.hist == nil {
		return n.handle(req, deadline)
	}
	resp := n.handle(req, deadline)
	n.hist.Observe(metrics.Key{Op: "node." + req.Kind.String(), Node: n.ID}, time.Since(start))
	return resp
}

// expired reports whether a request's deadline budget has elapsed (a zero
// deadline means unbounded).
func expired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

func (n *Node) handle(req *rpc.Request, deadline time.Time) *rpc.Response {
	if expired(deadline) {
		return errResp(fmt.Errorf("%w: %s", ErrExpired, req.Kind))
	}
	switch req.Kind {
	case rpc.KindPing:
		return &rpc.Response{}
	case rpc.KindPutBlock:
		return n.handlePut(req, false)
	case rpc.KindPrepareBlock:
		return n.handlePut(req, true)
	case rpc.KindCommitObject:
		return n.handleCommit(req)
	case rpc.KindListBlocks:
		return n.handleList()
	case rpc.KindGetBlock:
		return n.handleGet(req)
	case rpc.KindDeleteBlock:
		if err := n.Blocks.Delete(req.BlockID); err != nil {
			return errResp(err)
		}
		n.mu.Lock()
		delete(n.entries, req.BlockID)
		n.mu.Unlock()
		return &rpc.Response{}
	case rpc.KindBlockSize:
		size, err := n.Blocks.Size(req.BlockID)
		if err != nil {
			return errResp(err)
		}
		return &rpc.Response{Size: size}
	case rpc.KindFilter:
		return n.handleFilter(req)
	case rpc.KindProject:
		return n.handleProject(req)
	case rpc.KindAggregate:
		return n.handleAggregate(req)
	case rpc.KindGroupAgg:
		return n.handleGroupAgg(req)
	case rpc.KindTopK:
		return n.handleTopK(req)
	case rpc.KindBatch:
		return n.handleBatch(req, deadline)
	default:
		return errResp(fmt.Errorf("cluster: unknown request kind %d", req.Kind))
	}
}

// handlePut stores a block. A request carrying an Object ties the block to
// a write attempt: the payload is verified against req.Crc before it
// touches the block store (rejecting writes corrupted in flight) and a
// durability record is kept — pending for PrepareBlock (phase one of the
// two-phase write), committed for PutBlock (repair/scrub rewrites).
// Object-less PutBlock keeps the legacy semantics for the metadata
// register, which carries its own payload checksum.
func (n *Node) handlePut(req *rpc.Request, pending bool) *rpc.Response {
	if req.Object != "" || pending {
		if got := Checksum(req.Data); got != req.Crc {
			return errResp(fmt.Errorf("%w: %s: payload crc %08x, want %08x",
				ErrChecksum, req.BlockID, got, req.Crc))
		}
	}
	if err := n.Blocks.Put(req.BlockID, req.Data); err != nil {
		return errResp(err)
	}
	n.mu.Lock()
	if req.Object != "" || pending {
		n.entries[req.BlockID] = blockEntry{
			object: req.Object, epoch: req.Epoch, crc: req.Crc, pending: pending,
		}
	} else {
		// A plain overwrite invalidates any stale durability record.
		delete(n.entries, req.BlockID)
	}
	n.mu.Unlock()
	return &rpc.Response{}
}

// handleCommit flips every pending block of (Object, Epoch) to committed.
// Idempotent: re-committing, or committing after a reconciliation pass
// already did, is a no-op.
func (n *Node) handleCommit(req *rpc.Request) *rpc.Response {
	n.mu.Lock()
	for id, e := range n.entries {
		if e.pending && e.object == req.Object && e.epoch == req.Epoch {
			e.pending = false
			n.entries[id] = e
		}
	}
	n.mu.Unlock()
	return &rpc.Response{}
}

// handleList returns the node's block inventory. The block store is the
// source of truth for which blocks exist; durability records annotate the
// ones this node has seen prepared or checksummed (a restarted node may
// have blocks with no record — reconciliation falls back to parsing IDs).
func (n *Node) handleList() *rpc.Response {
	ids := n.Blocks.IDs()
	infos := make([]rpc.BlockInfo, 0, len(ids))
	n.mu.Lock()
	for _, id := range ids {
		info := rpc.BlockInfo{ID: id}
		if e, ok := n.entries[id]; ok {
			info.Object, info.Epoch, info.Pending = e.object, e.epoch, e.pending
			info.Crc, info.HasCrc = e.crc, true
		}
		infos = append(infos, info)
	}
	n.mu.Unlock()
	return &rpc.Response{Blocks: infos}
}

// handleGet serves a byte range of a block. Blocks with a durability record
// are verified at rest first — the whole block is read and checked against
// its recorded CRC32C, and a mismatch is served as ErrChecksum so the
// coordinator treats the block as an erasure (reconstruct-and-serve) and
// queues a repair. A request with CallerVerifies set skips that pass: the
// caller holds the block's checksum in its own metadata and verifies the
// received bytes itself, which covers rot and transit corruption in a
// single pass at the receiver. Every reply carries the CRC32C of the served
// range for end-to-end (in-flight) verification at the coordinator; a
// whole-block serve reuses the CRC the at-rest pass already computed (or
// the recorded one under CallerVerifies) instead of hashing the bytes
// again.
func (n *Node) handleGet(req *rpc.Request) *rpc.Response {
	n.mu.Lock()
	e, verified := n.entries[req.BlockID]
	n.mu.Unlock()
	if !verified {
		data, err := n.Blocks.Get(req.BlockID, req.Offset, req.Length)
		if err != nil {
			return errResp(err)
		}
		return &rpc.Response{Data: data, Crc: Checksum(data), Cost: rpc.Cost{DiskBytes: uint64(len(data))}}
	}
	full, err := n.Blocks.Get(req.BlockID, 0, 0)
	if err != nil {
		return errResp(err)
	}
	cost := rpc.Cost{DiskBytes: uint64(len(full))}
	if !req.CallerVerifies {
		if got := Checksum(full); got != e.crc {
			return errRespCost(fmt.Errorf("%w: %s: crc %08x, want %08x",
				ErrChecksum, req.BlockID, got, e.crc), cost)
		}
	}
	data, err := sliceRange(full, req.Offset, req.Length)
	if err != nil {
		return errRespCost(err, cost)
	}
	crc := e.crc
	if len(data) != len(full) {
		crc = Checksum(data)
	}
	return &rpc.Response{Data: data, Crc: crc, Cost: cost}
}

// readChunk loads and decodes the referenced column chunk from local
// storage, returning the decoded values and the disk/processing cost.
func (n *Node) readChunk(ref rpc.ChunkRef) (lpq.ColumnData, rpc.Cost, error) {
	raw, err := n.Blocks.Get(ref.BlockID, ref.Offset, ref.Meta.Size)
	if err != nil {
		return lpq.ColumnData{}, rpc.Cost{}, err
	}
	cost := rpc.Cost{DiskBytes: uint64(len(raw)), ProcBytes: ref.Meta.RawSize}
	col, err := lpq.DecodeChunk(ref.Type, ref.Meta, raw)
	if err != nil {
		return lpq.ColumnData{}, cost, err
	}
	return col, cost, nil
}

// handleFilter runs a pushed-down comparison on a local chunk and returns
// the compressed result bitmap (§5: the node reads the chunk, decompresses
// and decodes it, runs the filter, and Snappy-compresses the bitmap).
func (n *Node) handleFilter(req *rpc.Request) *rpc.Response {
	col, cost, err := n.readChunk(req.Chunk)
	if err != nil {
		return errRespCost(err, cost)
	}
	cmp := &sql.Compare{Column: "pushdown", Op: req.Op, Value: req.Value}
	bm, err := sql.EvalCompare(cmp, col)
	if err != nil {
		return errRespCost(err, cost)
	}
	return &rpc.Response{Data: bm.Marshal(), Matches: bm.Count(), Cost: cost}
}

// handleProject returns the chunk values selected by the request bitmap in
// plain (uncompressed) encoding — the projection-stage reply whose size the
// cost model weighs against shipping the compressed chunk (§4.3).
func (n *Node) handleProject(req *rpc.Request) *rpc.Response {
	col, cost, err := n.readChunk(req.Chunk)
	if err != nil {
		return errRespCost(err, cost)
	}
	bm, err := bitmap.Unmarshal(req.Bitmap)
	if err != nil {
		return errRespCost(err, cost)
	}
	if bm.Len() != col.Len() {
		return errRespCost(fmt.Errorf("cluster: bitmap has %d rows, chunk has %d", bm.Len(), col.Len()), cost)
	}
	sel := SelectRows(col, bm)
	data := EncodePlain(sel)
	return &rpc.Response{Data: data, Matches: sel.Len(), Cost: cost}
}

// handleAggregate computes a partial aggregate over the selected rows of a
// local chunk: only the accumulator crosses the network, never the values.
func (n *Node) handleAggregate(req *rpc.Request) *rpc.Response {
	col, cost, err := n.readChunk(req.Chunk)
	if err != nil {
		return errRespCost(err, cost)
	}
	bm, err := bitmap.Unmarshal(req.Bitmap)
	if err != nil {
		return errRespCost(err, cost)
	}
	if bm.Len() != col.Len() {
		return errRespCost(fmt.Errorf("cluster: bitmap has %d rows, chunk has %d", bm.Len(), col.Len()), cost)
	}
	// The accumulator gathers count, sum and extrema at once; the
	// coordinator extracts whichever the query's aggregates need.
	state := sql.NewAggState(sql.AggCount)
	state.AddColumn(col, bm)
	return &rpc.Response{Matches: bm.Count(), Agg: state, Cost: cost}
}

// handleGroupAgg folds one row group's selected rows into per-group partial
// aggregate states and returns them in deterministic key order. Only the
// partial states cross the network — (count, sum, min, max) per group and
// aggregate, never a pre-divided AVG — so the coordinator's merge is exact
// regardless of how rows were split across nodes.
func (n *Node) handleGroupAgg(req *rpc.Request) *rpc.Response {
	var cost rpc.Cost
	if len(req.KeyChunks) == 0 {
		return errResp(fmt.Errorf("cluster: GroupAgg without key chunks"))
	}
	if len(req.ValChunks) != len(req.AggKinds) {
		return errResp(fmt.Errorf("cluster: GroupAgg has %d value chunks, %d aggregate kinds",
			len(req.ValChunks), len(req.AggKinds)))
	}
	bm, err := bitmap.Unmarshal(req.Bitmap)
	if err != nil {
		return errResp(err)
	}
	keys := make([]lpq.ColumnData, len(req.KeyChunks))
	for i, ref := range req.KeyChunks {
		col, c, err := n.readChunk(ref)
		cost.Add(c)
		if err != nil {
			return errRespCost(err, cost)
		}
		if col.Len() != bm.Len() {
			return errRespCost(fmt.Errorf("cluster: bitmap has %d rows, key chunk has %d", bm.Len(), col.Len()), cost)
		}
		keys[i] = col
	}
	vals := make([]lpq.ColumnData, len(req.ValChunks))
	for i, ref := range req.ValChunks {
		if ref.BlockID == "" {
			continue // COUNT(*): no argument column
		}
		col, c, err := n.readChunk(ref)
		cost.Add(c)
		if err != nil {
			return errRespCost(err, cost)
		}
		if col.Len() != bm.Len() {
			return errRespCost(fmt.Errorf("cluster: bitmap has %d rows, value chunk has %d", bm.Len(), col.Len()), cost)
		}
		vals[i] = col
	}
	g := sql.NewGroupTable(req.AggKinds, req.MaxGroups)
	if err := g.AddRows(keys, vals, bm); err != nil {
		return errRespCost(err, cost)
	}
	return &rpc.Response{Groups: g.Sorted(), Matches: bm.Count(), Cost: cost}
}

// handleTopK returns the row group's local top-k selected rows by the
// request's order chunk: each candidate carries its sort key and global
// (rg, row) position, so the coordinator's bounded k-way merge stays
// deterministic under ties.
func (n *Node) handleTopK(req *rpc.Request) *rpc.Response {
	col, cost, err := n.readChunk(req.Chunk)
	if err != nil {
		return errRespCost(err, cost)
	}
	bm, err := bitmap.Unmarshal(req.Bitmap)
	if err != nil {
		return errRespCost(err, cost)
	}
	if bm.Len() != col.Len() {
		return errRespCost(fmt.Errorf("cluster: bitmap has %d rows, chunk has %d", bm.Len(), col.Len()), cost)
	}
	tk := sql.NewTopK(req.K, req.Desc)
	bm.ForEach(func(i int) {
		tk.Push(rowLiteral(col, i), req.RG, int32(i))
	})
	return &rpc.Response{TopRows: tk.Rows(), Matches: bm.Count(), Cost: cost}
}

// rowLiteral extracts row i of col as a literal.
func rowLiteral(col lpq.ColumnData, i int) sql.Literal {
	switch col.Type {
	case lpq.Int64:
		return sql.IntLit(col.Ints[i])
	case lpq.Float64:
		return sql.FloatLit(col.Floats[i])
	default:
		return sql.StringLit(col.Strings[i])
	}
}

// handleBatch executes a scatter-gather frame: each sub-request runs through
// the regular dispatch and its result lands in the index-aligned
// sub-response. Failures stay per-op (a missing block fails only its slot);
// only a malformed batch — over the op cap, nested, or carrying a
// non-batchable kind — fails the frame as a whole. The outer Cost aggregates
// the sub-ops' so transports and the latency model account the frame as one
// round trip of combined work.
//
// Sub-op boundaries are the frame's deadline checkpoints: once the request
// budget elapses, every remaining sub-op fails with ErrExpired instead of
// running — a long scan aborts mid-row-group rather than finishing work its
// caller abandoned.
func (n *Node) handleBatch(req *rpc.Request, deadline time.Time) *rpc.Response {
	if msg := rpc.ValidateBatch(req); msg != "" {
		return errResp(fmt.Errorf("cluster: %s", msg))
	}
	out := &rpc.Response{Subs: make([]rpc.Response, len(req.Subs))}
	for i := range req.Subs {
		if expired(deadline) {
			err := fmt.Errorf("%w: batch abandoned at sub-op %d/%d", ErrExpired, i, len(req.Subs))
			for j := i; j < len(req.Subs); j++ {
				out.Subs[j] = rpc.Response{Err: err.Error()}
			}
			return out
		}
		sub := n.handle(&req.Subs[i], deadline)
		out.Subs[i] = *sub
		out.Cost.Add(sub.Cost)
	}
	return out
}

func errResp(err error) *rpc.Response { return &rpc.Response{Err: err.Error()} }

func errRespCost(err error, c rpc.Cost) *rpc.Response {
	return &rpc.Response{Err: err.Error(), Cost: c}
}

// SelectRows returns the subset of col's values whose bits are set.
func SelectRows(col lpq.ColumnData, bm *bitmap.Bitmap) lpq.ColumnData {
	out := lpq.ColumnData{Type: col.Type}
	switch col.Type {
	case lpq.Int64:
		out.Ints = make([]int64, 0, bm.Count())
		bm.ForEach(func(i int) { out.Ints = append(out.Ints, col.Ints[i]) })
	case lpq.Float64:
		out.Floats = make([]float64, 0, bm.Count())
		bm.ForEach(func(i int) { out.Floats = append(out.Floats, col.Floats[i]) })
	default:
		out.Strings = make([]string, 0, bm.Count())
		bm.ForEach(func(i int) { out.Strings = append(out.Strings, col.Strings[i]) })
	}
	return out
}
