package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/rpc"
)

// alwaysFailClient counts calls and always fails with a retryable transport
// error.
type alwaysFailClient struct {
	calls atomic.Int64
	nodes int
}

func (c *alwaysFailClient) Call(node int, req *rpc.Request) (*rpc.Response, error) {
	c.calls.Add(1)
	return nil, fmt.Errorf("cluster: synthetic transport failure to node %d", node)
}

func (c *alwaysFailClient) NumNodes() int { return c.nodes }

// TestRetryBackoffCrossesDeadline is the regression test for the
// retry-past-deadline bug: a backoff that could only complete after the
// caller's deadline must fail immediately with a deadline error — not sleep
// through the deadline and issue a doomed attempt.
func TestRetryBackoffCrossesDeadline(t *testing.T) {
	c := &alwaysFailClient{nodes: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	var backoffs atomic.Int64
	p := Policy{
		MaxAttempts: 5,
		BaseBackoff: time.Second, // guaranteed to cross the 20ms deadline
		MaxBackoff:  time.Second,
		OnBackoff:   func(node, retry int, d time.Duration) { backoffs.Add(1) },
	}
	start := time.Now()
	_, attempts, err := CallRetryCtx(ctx, c, 0, &rpc.Request{Kind: rpc.KindPing}, p)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v must wrap context.DeadlineExceeded", err)
	}
	if attempts != 1 || c.calls.Load() != 1 {
		t.Fatalf("exactly one attempt must run before the doomed backoff; got attempts=%d calls=%d", attempts, c.calls.Load())
	}
	if backoffs.Load() != 1 {
		t.Fatalf("OnBackoff must still observe the aborted retry; fired %d times", backoffs.Load())
	}
	// The whole point: it must not have slept the 1s backoff.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("call took %v — it slept into the backoff instead of failing fast", elapsed)
	}
}

// TestRetryNoAttemptAfterCancel: a context cancelled before the call issues
// zero transport attempts.
func TestRetryNoAttemptAfterCancel(t *testing.T) {
	c := &alwaysFailClient{nodes: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, attempts, err := CallRetryCtx(ctx, c, 0, &rpc.Request{Kind: rpc.KindPing}, DefaultPolicy())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must wrap context.Canceled", err)
	}
	if attempts != 0 || c.calls.Load() != 0 {
		t.Fatalf("no attempt may run on a dead context; got attempts=%d calls=%d", attempts, c.calls.Load())
	}
}

// TestRetryBackgroundKeepsLegacyBehavior: without a deadline the ctx path
// must retry exactly like CallRetryN always has.
func TestRetryBackgroundKeepsLegacyBehavior(t *testing.T) {
	c := &alwaysFailClient{nodes: 1}
	p := Policy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, MaxBackoff: 200 * time.Microsecond}
	_, attempts, err := CallRetryCtx(context.Background(), c, 0, &rpc.Request{Kind: rpc.KindPing}, p)
	if err == nil {
		t.Fatal("expected error")
	}
	if attempts != 3 || c.calls.Load() != 3 {
		t.Fatalf("background context must exhaust MaxAttempts; got attempts=%d calls=%d", attempts, c.calls.Load())
	}
}

// TestNodeRejectsExpiredRequest: work whose budget elapsed before handling
// starts is refused with ErrExpired, before touching storage.
func TestNodeRejectsExpiredRequest(t *testing.T) {
	n := NewNode(0, NewMemStore())
	resp := n.handle(&rpc.Request{Kind: rpc.KindGetBlock, BlockID: "b"}, time.Now().Add(-time.Millisecond))
	if resp.Err == "" || !IsExpiredErr(resp.Err) {
		t.Fatalf("expired request must fail with ErrExpired; got %q", resp.Err)
	}
	// And the wire encoding: Handle derives the deadline from the relative
	// DeadlineMicros budget, so a zero budget means unbounded.
	if resp := n.Handle(&rpc.Request{Kind: rpc.KindPing}); resp.Err != "" {
		t.Fatalf("unbounded ping failed: %s", resp.Err)
	}
}

// TestBatchAbandonsAtSubOpCheckpoint: once the budget elapses, a batch frame
// fails every remaining sub-op at the next sub-op boundary instead of
// running them.
func TestBatchAbandonsAtSubOpCheckpoint(t *testing.T) {
	bs := NewMemStore()
	if err := bs.Put("blk", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	n := NewNode(0, bs)
	batch := &rpc.Request{Kind: rpc.KindBatch, Subs: []rpc.Request{
		{Kind: rpc.KindGetBlock, BlockID: "blk"},
		{Kind: rpc.KindGetBlock, BlockID: "blk"},
		{Kind: rpc.KindGetBlock, BlockID: "blk"},
	}}

	// Healthy budget: every sub-op runs.
	resp := n.handleBatch(batch, time.Now().Add(time.Minute))
	for i, sub := range resp.Subs {
		if sub.Err != "" {
			t.Fatalf("sub %d failed under a healthy budget: %s", i, sub.Err)
		}
	}

	// Expired budget: the checkpoint fires at sub-op 0 and every slot gets
	// a classified ErrExpired, index-aligned.
	resp = n.handleBatch(batch, time.Now().Add(-time.Millisecond))
	if len(resp.Subs) != len(batch.Subs) {
		t.Fatalf("sub-response count %d != %d", len(resp.Subs), len(batch.Subs))
	}
	for i, sub := range resp.Subs {
		if !IsExpiredErr(sub.Err) {
			t.Fatalf("sub %d: %q is not an ErrExpired", i, sub.Err)
		}
		if !strings.Contains(sub.Err, "sub-op 0/3") {
			t.Fatalf("sub %d: %q does not name the abandonment checkpoint", i, sub.Err)
		}
	}
}
