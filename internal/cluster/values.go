package cluster

import (
	"encoding/binary"
	"fmt"

	"github.com/fusionstore/fusion/internal/colenc"
	"github.com/fusionstore/fusion/internal/lpq"
)

// EncodePlain serializes column values in plain (uncompressed) form for a
// projection reply: [type byte][uvarint count][plain values]. Projection
// results cross the network uncompressed, which is exactly the asymmetry
// the pushdown cost model reasons about (§4.3).
func EncodePlain(col lpq.ColumnData) []byte {
	out := []byte{byte(col.Type)}
	out = binary.AppendUvarint(out, uint64(col.Len()))
	switch col.Type {
	case lpq.Int64:
		out = colenc.PutInt64s(out, col.Ints)
	case lpq.Float64:
		out = colenc.PutFloat64s(out, col.Floats)
	default:
		out = colenc.PutStrings(out, col.Strings)
	}
	return out
}

// DecodePlain parses the output of EncodePlain.
func DecodePlain(data []byte) (lpq.ColumnData, error) {
	if len(data) < 1 {
		return lpq.ColumnData{}, fmt.Errorf("cluster: empty value payload")
	}
	t := lpq.Type(data[0])
	count, n := binary.Uvarint(data[1:])
	if n <= 0 {
		return lpq.ColumnData{}, fmt.Errorf("cluster: bad value count")
	}
	body := data[1+n:]
	out := lpq.ColumnData{Type: t}
	var err error
	switch t {
	case lpq.Int64:
		out.Ints, err = colenc.GetInt64s(body, int(count))
	case lpq.Float64:
		out.Floats, err = colenc.GetFloat64s(body, int(count))
	case lpq.String:
		out.Strings, err = colenc.GetStrings(body, int(count))
	default:
		return lpq.ColumnData{}, fmt.Errorf("cluster: unknown value type %d", t)
	}
	return out, err
}

// AppendColumn concatenates src's values onto dst (same type).
func AppendColumn(dst *lpq.ColumnData, src lpq.ColumnData) error {
	if dst.Len() == 0 && dst.Ints == nil && dst.Floats == nil && dst.Strings == nil {
		dst.Type = src.Type
	}
	if dst.Type != src.Type {
		return fmt.Errorf("cluster: cannot append %v values to %v column", src.Type, dst.Type)
	}
	dst.Ints = append(dst.Ints, src.Ints...)
	dst.Floats = append(dst.Floats, src.Floats...)
	dst.Strings = append(dst.Strings, src.Strings...)
	return nil
}
