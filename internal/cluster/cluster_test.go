package cluster

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sql"
)

func testStores(t *testing.T) map[string]BlockStore {
	t.Helper()
	disk, err := NewDiskStore(filepath.Join(t.TempDir(), "blocks"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]BlockStore{"mem": NewMemStore(), "disk": disk}
}

func TestBlockStoreBasics(t *testing.T) {
	for name, bs := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := bs.Put("a/b", []byte("hello world")); err != nil {
				t.Fatal(err)
			}
			got, err := bs.Get("a/b", 0, 0)
			if err != nil || !bytes.Equal(got, []byte("hello world")) {
				t.Fatalf("Get = %q, %v", got, err)
			}
			got, err = bs.Get("a/b", 6, 5)
			if err != nil || string(got) != "world" {
				t.Fatalf("range Get = %q, %v", got, err)
			}
			if _, err := bs.Get("a/b", 6, 100); err == nil {
				t.Fatal("out-of-range Get must fail")
			}
			if _, err := bs.Get("a/b", 100, 0); err == nil {
				t.Fatal("offset beyond block must fail")
			}
			size, err := bs.Size("a/b")
			if err != nil || size != 11 {
				t.Fatalf("Size = %d, %v", size, err)
			}
			if _, err := bs.Get("missing", 0, 0); err == nil {
				t.Fatal("missing block must fail")
			}
			if _, err := bs.Size("missing"); err == nil {
				t.Fatal("missing block Size must fail")
			}
			// Overwrite.
			if err := bs.Put("a/b", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if size, _ := bs.Size("a/b"); size != 1 {
				t.Fatal("overwrite must replace contents")
			}
			if err := bs.Put("c", []byte("y")); err != nil {
				t.Fatal(err)
			}
			ids := bs.IDs()
			if !reflect.DeepEqual(ids, []string{"a/b", "c"}) {
				t.Fatalf("IDs = %v", ids)
			}
			if err := bs.Delete("a/b"); err != nil {
				t.Fatal(err)
			}
			if err := bs.Delete("a/b"); err != nil {
				t.Fatal("double delete must be a no-op")
			}
			if len(bs.IDs()) != 1 {
				t.Fatal("delete must remove the block")
			}
		})
	}
}

func TestMemStoreTotalBytes(t *testing.T) {
	ms := NewMemStore()
	ms.Put("a", make([]byte, 100))
	ms.Put("b", make([]byte, 28))
	if ms.TotalBytes() != 128 {
		t.Fatalf("TotalBytes = %d", ms.TotalBytes())
	}
}

func TestMemStorePutCopies(t *testing.T) {
	ms := NewMemStore()
	buf := []byte("abc")
	ms.Put("a", buf)
	buf[0] = 'z'
	got, _ := ms.Get("a", 0, 0)
	if string(got) != "abc" {
		t.Fatal("Put must copy its input")
	}
}

// chunkFixture builds one encoded chunk and stores it in a block at a
// nonzero offset, returning the node and a ChunkRef.
func chunkFixture(t *testing.T, vals []int64) (*Node, rpc.ChunkRef) {
	t.Helper()
	w := lpq.NewWriter([]lpq.Column{{Name: "v", Type: lpq.Int64}}, lpq.DefaultWriterOptions())
	if err := w.WriteRowGroup([]lpq.ColumnData{lpq.IntColumn(vals)}); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f, err := lpq.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	meta := f.Footer().RowGroups[0].Chunks[0]
	raw, err := f.ChunkBytes(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(0, NewMemStore())
	const pad = 13
	block := append(make([]byte, pad), raw...)
	if err := node.Blocks.Put("blk", block); err != nil {
		t.Fatal(err)
	}
	return node, rpc.ChunkRef{BlockID: "blk", Offset: pad, Type: lpq.Int64, Meta: meta}
}

func TestNodeFilter(t *testing.T) {
	vals := []int64{5, 10, 15, 20, 25}
	node, ref := chunkFixture(t, vals)
	resp := node.Handle(&rpc.Request{
		Kind: rpc.KindFilter, Chunk: ref, Op: sql.OpGt, Value: sql.IntLit(12),
	})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	bm, err := bitmap.Unmarshal(resp.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bm.Indexes(), []int{2, 3, 4}) {
		t.Fatalf("filter selected %v", bm.Indexes())
	}
	if resp.Matches != 3 {
		t.Fatalf("Matches = %d", resp.Matches)
	}
	if resp.Cost.DiskBytes != ref.Meta.Size || resp.Cost.ProcBytes != ref.Meta.RawSize {
		t.Fatalf("cost accounting wrong: %+v", resp.Cost)
	}
}

func TestNodeProject(t *testing.T) {
	vals := []int64{5, 10, 15, 20, 25}
	node, ref := chunkFixture(t, vals)
	bm := bitmap.New(5)
	bm.Set(0)
	bm.Set(4)
	resp := node.Handle(&rpc.Request{Kind: rpc.KindProject, Chunk: ref, Bitmap: bm.Marshal()})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	col, err := DecodePlain(resp.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col.Ints, []int64{5, 25}) {
		t.Fatalf("projected %v", col.Ints)
	}
}

func TestNodeProjectBadBitmap(t *testing.T) {
	node, ref := chunkFixture(t, []int64{1, 2, 3})
	resp := node.Handle(&rpc.Request{Kind: rpc.KindProject, Chunk: ref, Bitmap: []byte("junk")})
	if resp.Err == "" {
		t.Fatal("corrupt bitmap must fail")
	}
	wrong := bitmap.New(99)
	resp = node.Handle(&rpc.Request{Kind: rpc.KindProject, Chunk: ref, Bitmap: wrong.Marshal()})
	if resp.Err == "" {
		t.Fatal("length-mismatched bitmap must fail")
	}
}

func TestNodeErrors(t *testing.T) {
	node := NewNode(0, NewMemStore())
	if resp := node.Handle(&rpc.Request{Kind: rpc.KindGetBlock, BlockID: "nope"}); resp.Err == "" {
		t.Fatal("GetBlock of missing block must fail")
	}
	if resp := node.Handle(&rpc.Request{Kind: rpc.Kind(99)}); resp.Err == "" {
		t.Fatal("unknown kind must fail")
	}
	if resp := node.Handle(&rpc.Request{Kind: rpc.KindPing}); resp.Err != "" {
		t.Fatal("ping must succeed")
	}
	if resp := node.Handle(&rpc.Request{Kind: rpc.KindFilter, Chunk: rpc.ChunkRef{BlockID: "nope"}}); resp.Err == "" {
		t.Fatal("filter on missing block must fail")
	}
}

func TestNodeBlockOps(t *testing.T) {
	node := NewNode(3, NewMemStore())
	if resp := node.Handle(&rpc.Request{Kind: rpc.KindPutBlock, BlockID: "b", Data: []byte("0123456789")}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	resp := node.Handle(&rpc.Request{Kind: rpc.KindBlockSize, BlockID: "b"})
	if resp.Err != "" || resp.Size != 10 {
		t.Fatalf("BlockSize = %d, %s", resp.Size, resp.Err)
	}
	resp = node.Handle(&rpc.Request{Kind: rpc.KindGetBlock, BlockID: "b", Offset: 2, Length: 3})
	if resp.Err != "" || string(resp.Data) != "234" {
		t.Fatalf("GetBlock = %q, %s", resp.Data, resp.Err)
	}
	if resp.Cost.DiskBytes != 3 {
		t.Fatalf("disk cost = %d", resp.Cost.DiskBytes)
	}
	if resp := node.Handle(&rpc.Request{Kind: rpc.KindDeleteBlock, BlockID: "b"}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
}

func TestEncodeDecodePlain(t *testing.T) {
	cases := []lpq.ColumnData{
		lpq.IntColumn([]int64{1, -5, 1 << 40}),
		lpq.FloatColumn([]float64{1.5, -2.25}),
		lpq.StringColumn([]string{"a", "", "xyz"}),
		lpq.IntColumn(nil),
	}
	for _, c := range cases {
		got, err := DecodePlain(EncodePlain(c))
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != c.Type || got.Len() != c.Len() {
			t.Fatalf("round trip changed shape: %+v vs %+v", got, c)
		}
	}
	if _, err := DecodePlain(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
	if _, err := DecodePlain([]byte{9, 1, 0}); err == nil {
		t.Fatal("unknown type must fail")
	}
}

func TestSelectRows(t *testing.T) {
	col := lpq.StringColumn([]string{"a", "b", "c", "d"})
	bm := bitmap.New(4)
	bm.Set(1)
	bm.Set(3)
	got := SelectRows(col, bm)
	if !reflect.DeepEqual(got.Strings, []string{"b", "d"}) {
		t.Fatalf("SelectRows = %v", got.Strings)
	}
}

func TestAppendColumn(t *testing.T) {
	var dst lpq.ColumnData
	if err := AppendColumn(&dst, lpq.IntColumn([]int64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := AppendColumn(&dst, lpq.IntColumn([]int64{3})); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.Ints, []int64{1, 2, 3}) {
		t.Fatalf("AppendColumn = %v", dst.Ints)
	}
	if err := AppendColumn(&dst, lpq.FloatColumn([]float64{1})); err == nil {
		t.Fatal("type mismatch must fail")
	}
}

func TestParallel(t *testing.T) {
	node := NewNode(0, NewMemStore())
	node.Blocks.Put("b", []byte("data"))
	client := singleNodeClient{node}
	reqs := []*rpc.Request{
		{Kind: rpc.KindGetBlock, BlockID: "b"},
		{Kind: rpc.KindPing},
		{Kind: rpc.KindGetBlock, BlockID: "missing"},
	}
	results := Parallel(client, []int{0, 0, 0}, reqs)
	if len(results) != 3 {
		t.Fatal("wrong result count")
	}
	if string(results[0].Resp.Data) != "data" {
		t.Fatal("result 0 wrong")
	}
	if results[2].Resp.Err == "" {
		t.Fatal("result 2 must carry the error")
	}
}

type singleNodeClient struct{ node *Node }

func (c singleNodeClient) Call(node int, req *rpc.Request) (*rpc.Response, error) {
	return c.node.Handle(req), nil
}
func (c singleNodeClient) NumNodes() int { return 1 }

func TestDiskStoreEscapesIDs(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := "obj/s1/b2"
	if err := ds.Put(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got := ds.IDs()
	if !reflect.DeepEqual(got, []string{id}) {
		t.Fatalf("IDs = %v", got)
	}
}
