package cluster

import (
	"sync"
	"time"
)

// BreakerState is one node's circuit state as seen by a coordinator.
type BreakerState uint8

const (
	// BreakerClosed: the node is healthy; calls flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the node accumulated Threshold consecutive transport
	// failures; calls fail fast (ErrNodeDown) until Cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe call is
	// in flight; its outcome closes or re-opens the circuit.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerConfig parameterizes the per-node circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive transport failures that opens
	// a node's circuit. <= 0 applies the default (5).
	Threshold int
	// Cooldown is how long an open circuit rejects calls before letting a
	// single probe through. <= 0 applies the default (500ms).
	Cooldown time.Duration
}

// DefaultBreakerConfig returns the default breaker parameters.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Threshold: 5, Cooldown: 500 * time.Millisecond}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	return c
}

// breakerNode is one node's circuit.
type breakerNode struct {
	state       BreakerState
	consecFails int
	openedAt    time.Time
}

// Breaker is a per-node circuit breaker shared by every call a coordinator
// makes: wired into Policy, it converts a node that keeps failing at the
// transport level into an immediate ErrNodeDown (the fan-out's
// reconstruction path is the better retry), and it meters recovery through
// single half-open probes instead of a thundering herd. All methods are
// safe for concurrent use and safe on a nil receiver (a nil *Breaker allows
// everything and records nothing).
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu    sync.Mutex
	nodes map[int]*breakerNode
}

// NewBreaker returns a breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now, nodes: make(map[int]*breakerNode)}
}

// SetClock replaces the breaker's time source (deterministic tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

func (b *Breaker) node(id int) *breakerNode {
	n := b.nodes[id]
	if n == nil {
		n = &breakerNode{}
		b.nodes[id] = n
	}
	return n
}

// Allow reports whether a call to the node may proceed. On an open circuit
// whose cooldown has elapsed it transitions to half-open and admits exactly
// one probe; further calls are rejected until the probe reports.
func (b *Breaker) Allow(node int) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.node(node)
	switch n.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(n.openedAt) >= b.cfg.Cooldown {
			n.state = BreakerHalfOpen
			return true // the single probe
		}
		return false
	default: // BreakerHalfOpen: a probe is already in flight
		return false
	}
}

// Success reports a call that completed at the transport level. It closes a
// half-open circuit and resets the failure streak.
func (b *Breaker) Success(node int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	n := b.node(node)
	n.state = BreakerClosed
	n.consecFails = 0
	b.mu.Unlock()
}

// Failure reports a transport-level failure. Threshold consecutive failures
// open the circuit; a failed half-open probe re-opens it immediately.
func (b *Breaker) Failure(node int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	n := b.node(node)
	n.consecFails++
	if n.state == BreakerHalfOpen || n.consecFails >= b.cfg.Threshold {
		n.state = BreakerOpen
		n.openedAt = b.now()
	}
	b.mu.Unlock()
}

// State returns a node's current circuit state (without side effects).
func (b *Breaker) State(node int) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := b.nodes[node]; n != nil {
		return n.state
	}
	return BreakerClosed
}

// Snapshot returns every tracked node's state, for /debug/fusionz.
func (b *Breaker) Snapshot() map[int]string {
	out := make(map[int]string)
	if b == nil {
		return out
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, n := range b.nodes {
		out[id] = n.state.String()
	}
	return out
}
