package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, cls int
	}{
		{0, -1},
		{-1, -1},
		{1, 0},
		{512, 0},
		{513, 1},
		{1024, 1},
		{1025, 2},
		{1 << 24, numClasses - 1},
		{1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.cls {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.cls)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	for _, n := range []int{1, 100, 512, 513, 4096, 1 << 20} {
		b := GetLen(n)
		if len(b) != n {
			t.Fatalf("GetLen(%d): len %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetLen(%d): cap %d", n, cap(b))
		}
		Put(b)
	}
	// Out-of-range sizes still work, just unpooled.
	big := GetLen(1<<24 + 1)
	if len(big) != 1<<24+1 {
		t.Fatalf("oversize GetLen: len %d", len(big))
	}
	Put(big) // dropped (non-power-of-two cap), must not panic
}

func TestPutForeignBufferDropped(t *testing.T) {
	// A foreign buffer with a non-class capacity must not enter a pool: a
	// later Get of its class could otherwise return less capacity than the
	// class promises.
	Put(make([]byte, 700))
	b := Get(1024)
	if cap(b) < 1024 {
		t.Fatalf("Get(1024) returned cap %d after foreign Put", cap(b))
	}
}

func TestPoison(t *testing.T) {
	prev := SetPoison(true)
	defer SetPoison(prev)
	b := GetLen(512)
	for i := range b {
		b[i] = 0x42
	}
	alias := b
	Put(b)
	if !Poisoned(alias) {
		t.Fatal("buffer not poisoned after Put")
	}
	live := []byte{0x42, 0x42}
	if Poisoned(live) {
		t.Fatal("live buffer misreported as poisoned")
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := GetLen(1 << (9 + i%8))
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Errorf("buffer mutated while owned")
						return
					}
				}
				Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetLen(64 << 10)
		Put(buf)
	}
}
