// Package bufpool is a sized buffer arena for the read path: sync.Pools per
// power-of-two size class, so steady-state Get/Query traffic recycles block
// buffers, decode scratch and RPC frame buffers instead of allocating per
// request.
//
// Ownership discipline (see DESIGN.md §11): a buffer obtained from Get is
// owned by the caller until it either crosses an API boundary that the
// caller does not control (returned to user code, retained by a cache) — in
// which case it must NOT be put back — or until the caller is provably the
// last reader, in which case it should be returned with Put. Put is always
// optional: a buffer that never comes back is garbage-collected like any
// other allocation. Tests enable poisoning (SetPoison) so any read of a
// buffer after its Put shows up as corrupted 0xDB bytes instead of silent
// stale data.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size-class bounds: buffers below minClassBits are cheaper to allocate
// than to rent (and pool bookkeeping would dominate); buffers above
// maxClassBits (16 MiB) are rare one-offs not worth retaining.
const (
	minClassBits = 9  // 512 B
	maxClassBits = 24 // 16 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

var (
	classes [numClasses]sync.Pool

	// poison, when enabled, fills buffers with 0xDB on Put — the
	// use-after-Put tripwire the -race alias tests run under.
	poison atomic.Bool

	gets, puts, misses atomic.Uint64
)

// poisonByte is the fill value poisoned buffers carry; chosen to be neither
// zero nor valid ASCII so corrupted payloads are obvious in hex dumps.
const poisonByte = 0xDB

// classFor returns the size-class index for a buffer of capacity n, or -1
// when n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxClassBits {
		return -1
	}
	bitLen := bits.Len(uint(n - 1)) // ceil(log2 n)
	if bitLen < minClassBits {
		bitLen = minClassBits
	}
	return bitLen - minClassBits
}

// Get returns a zero-length buffer with capacity ≥ n, from the pool when a
// same-class buffer is available. Callers append or reslice as needed; the
// bytes beyond len are unspecified (possibly poisoned).
func Get(n int) []byte {
	gets.Add(1)
	cls := classFor(n)
	if cls < 0 {
		misses.Add(1)
		return make([]byte, 0, n)
	}
	if v := classes[cls].Get(); v != nil {
		return v.([]byte)[:0]
	}
	misses.Add(1)
	return make([]byte, 0, 1<<(cls+minClassBits))
}

// GetLen is Get resliced to length n (contents unspecified).
func GetLen(n int) []byte {
	return Get(n)[:n]
}

// Put returns a buffer to its size-class pool. Only buffers whose capacity
// is an exact pooled class size are retained (anything Get handed out is;
// foreign buffers of odd capacities are dropped so a later Get never
// returns less capacity than its class promises). The caller must not touch
// the buffer afterwards.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minClassBits || c&(c-1) != 0 {
		return
	}
	puts.Add(1)
	if poison.Load() {
		b = b[:c]
		for i := range b {
			b[i] = poisonByte
		}
	}
	cls := bits.Len(uint(c)) - 1 - minClassBits
	classes[cls].Put(b[:0:c])
}

// SetPoison toggles poison-on-Put (test builds only: the fill pass costs a
// full buffer write). It returns the previous setting.
func SetPoison(on bool) bool { return poison.Swap(on) }

// Poisoned reports whether b (a buffer whose content should be live) has
// been overwritten by a poison fill — the alias-detection check.
func Poisoned(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	for _, v := range b {
		if v != poisonByte {
			return false
		}
	}
	return true
}

// Stats reports cumulative pool traffic: rentals, returns, and rentals
// that had to allocate (class miss or out-of-range size).
func Stats() (getCount, putCount, missCount uint64) {
	return gets.Load(), puts.Load(), misses.Load()
}
