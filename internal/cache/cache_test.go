package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/fusionstore/fusion/internal/metrics"
)

func blockKey(obj string, epoch uint64, stripe, bin int) Key {
	return Key{Object: obj, Epoch: epoch, Kind: KindBlock, A: stripe, B: bin}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(Config{Bytes: 1 << 20})
	k := blockKey("obj", 1, 0, 2)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k, []byte("hello"), 5)
	v, ok := c.Get(k)
	if !ok || string(v.([]byte)) != "hello" {
		t.Fatalf("Get = %v, %v; want hello", v, ok)
	}
	st := c.Stats()
	if st.Block.Hits != 1 || st.Block.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DataBytes != 5 || st.DataEntries != 1 {
		t.Fatalf("residency = %d bytes / %d entries", st.DataBytes, st.DataEntries)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	// Budget of 80 bytes over 8 shards = 10 bytes per shard. Stuffing many
	// 10-byte entries into one object must keep residency within budget.
	c := New(Config{Bytes: 80})
	for i := 0; i < 100; i++ {
		c.Put(blockKey("obj", 1, i, 0), make([]byte, 10), 10)
	}
	st := c.Stats()
	if st.DataBytes > 80 {
		t.Fatalf("resident bytes %d exceed budget 80", st.DataBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under byte pressure")
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := New(Config{Bytes: 80}) // 10 bytes per shard
	c.Put(blockKey("obj", 1, 0, 0), make([]byte, 5), 5)
	c.Put(blockKey("obj", 1, 1, 0), make([]byte, 1000), 1000)
	st := c.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	if st.DataBytes > 80 {
		t.Fatalf("oversized value was admitted: %d bytes resident", st.DataBytes)
	}
}

func TestLRUOrder(t *testing.T) {
	// Single-shard-sized keys: force all keys into one shard by brute
	// force — find 3 stripes hashing to the same shard.
	c := New(Config{Bytes: 8 * 20}) // 20 bytes per shard
	sh0 := c.shardOf(blockKey("o", 1, 0, 0))
	stripes := []int{0}
	for i := 1; len(stripes) < 3 && i < 10000; i++ {
		if c.shardOf(blockKey("o", 1, i, 0)) == sh0 {
			stripes = append(stripes, i)
		}
	}
	if len(stripes) < 3 {
		t.Skip("could not find colliding shard keys")
	}
	a, b, d := blockKey("o", 1, stripes[0], 0), blockKey("o", 1, stripes[1], 0), blockKey("o", 1, stripes[2], 0)
	c.Put(a, []byte("a"), 10)
	c.Put(b, []byte("b"), 10)
	c.Get(a)               // a is now MRU
	c.Put(d, []byte("d"), 10) // evicts b (LRU)
	if _, ok := c.Get(b); ok {
		t.Fatal("expected LRU entry b evicted")
	}
	if _, ok := c.Get(a); !ok {
		t.Fatal("recently used entry a evicted out of order")
	}
	if _, ok := c.Get(d); !ok {
		t.Fatal("fresh entry d missing")
	}
}

func TestInvalidateObjectByEpoch(t *testing.T) {
	c := New(Config{Bytes: 1 << 20})
	for stripe := 0; stripe < 4; stripe++ {
		c.Put(blockKey("obj", 1, stripe, 0), []byte("old"), 3)
		c.Put(blockKey("obj", 2, stripe, 0), []byte("new"), 3)
	}
	c.Put(blockKey("other", 1, 0, 0), []byte("x"), 1)

	dropped := c.InvalidateObject("obj", 2)
	if dropped != 4 {
		t.Fatalf("dropped = %d, want 4 (epoch-1 entries only)", dropped)
	}
	for stripe := 0; stripe < 4; stripe++ {
		if _, ok := c.Get(blockKey("obj", 1, stripe, 0)); ok {
			t.Fatalf("stale epoch-1 entry stripe %d survived invalidation", stripe)
		}
		if _, ok := c.Get(blockKey("obj", 2, stripe, 0)); !ok {
			t.Fatalf("current epoch-2 entry stripe %d was dropped", stripe)
		}
	}
	if _, ok := c.Get(blockKey("other", 1, 0, 0)); !ok {
		t.Fatal("unrelated object was invalidated")
	}

	// keepEpoch 0 (Delete tombstone) drops everything for the object.
	if got := c.InvalidateObject("obj", 0); got != 4 {
		t.Fatalf("tombstone dropped = %d, want 4", got)
	}
	if st := c.Stats(); st.DataEntries != 1 {
		t.Fatalf("entries after tombstone = %d, want 1", st.DataEntries)
	}
}

func TestMetaTierBound(t *testing.T) {
	c := New(Config{Bytes: 0, MetaEntries: 4})
	for i := 0; i < 10; i++ {
		c.PutMeta(fmt.Sprintf("obj%d", i), i)
	}
	st := c.Stats()
	if st.Meta.Entries != 4 {
		t.Fatalf("meta entries = %d, want 4", st.Meta.Entries)
	}
	if st.Meta.Evictions != 6 {
		t.Fatalf("meta evictions = %d, want 6", st.Meta.Evictions)
	}
	// Most recent entries survive.
	if _, ok := c.GetMeta("obj9"); !ok {
		t.Fatal("most recent meta entry evicted")
	}
	if _, ok := c.GetMeta("obj0"); ok {
		t.Fatal("oldest meta entry survived a full wrap")
	}
	if names := c.MetaNames(); len(names) != 4 {
		t.Fatalf("MetaNames = %v, want 4 entries", names)
	}
	c.DeleteMeta("obj9")
	if _, ok := c.GetMeta("obj9"); ok {
		t.Fatal("deleted meta entry still present")
	}
}

func TestDisabledDataTier(t *testing.T) {
	c := New(Config{Bytes: 0})
	k := blockKey("obj", 1, 0, 0)
	c.Put(k, []byte("x"), 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("disabled data tier served a hit")
	}
	// Meta tier still works with data tier disabled.
	c.PutMeta("obj", 42)
	if v, ok := c.GetMeta("obj"); !ok || v.(int) != 42 {
		t.Fatal("meta tier broken when data tier disabled")
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := New(Config{Bytes: 1 << 20})
	const n = 32
	var executions atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := c.Do("key", func() (any, error) {
				<-gate // hold the leader until all callers have piled up
				executions.Add(1)
				return "value", nil
			})
			if err != nil {
				t.Errorf("Do error: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let followers enqueue behind the leader, then release it. The sleep-free
	// way to guarantee pile-up is to wait until dedups+1 goroutines arrived,
	// but the leader blocks on gate so followers must join it.
	for c.Stats().FlightDedups < n-1 {
		// Spin until all followers have registered against the in-flight call.
	}
	close(gate)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", got)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.FlightLeaders != 1 || st.FlightDedups != n-1 {
		t.Fatalf("flight stats leaders=%d dedups=%d, want 1/%d", st.FlightLeaders, st.FlightDedups, n-1)
	}
}

func TestSingleflightErrorShared(t *testing.T) {
	c := New(Config{Bytes: 1 << 20})
	boom := errors.New("boom")
	_, err, _ := c.Do("k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// A later call re-executes (failed calls are not cached).
	v, err, _ := c.Do("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry after error = %v, %v", v, err)
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	k := blockKey("obj", 1, 0, 0)
	c.Put(k, []byte("x"), 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("nil cache hit")
	}
	c.Invalidate(k)
	c.InvalidateObject("obj", 0)
	c.PutMeta("obj", 1)
	if _, ok := c.GetMeta("obj"); ok {
		t.Fatal("nil cache meta hit")
	}
	c.DeleteMeta("obj")
	if names := c.MetaNames(); names != nil {
		t.Fatal("nil cache MetaNames non-nil")
	}
	c.CountDecode()
	v, err, shared := c.Do("k", func() (any, error) { return 1, nil })
	if v.(int) != 1 || err != nil || shared {
		t.Fatal("nil cache Do must run fn directly")
	}
	if st := c.Stats(); st != (metrics.CacheStats{}) {
		t.Fatal("nil cache stats must be zero")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Config{Bytes: 1 << 12, MetaEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := blockKey(fmt.Sprintf("o%d", i%3), uint64(i%2+1), i%16, g)
				c.Put(k, []byte{byte(i)}, 64)
				c.Get(k)
				if i%50 == 0 {
					c.InvalidateObject(k.Object, 2)
				}
				c.PutMeta(k.Object, i)
				c.GetMeta(k.Object)
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.DataBytes > 1<<12 {
		t.Fatalf("budget exceeded after concurrent churn: %d", st.DataBytes)
	}
}

func TestHitRate(t *testing.T) {
	var zero metrics.CacheTier
	if zero.HitRate() != 0 {
		t.Fatal("zero tier hit rate must be 0, not NaN")
	}
	tier := metrics.CacheTier{Hits: 3, Misses: 1}
	if got := tier.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}
