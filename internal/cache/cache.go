// Package cache is the coordinator's read-path cache: a byte-budgeted,
// sharded store for verified block bytes and decoded column chunks, a
// bounded ObjectMeta tier, and a singleflight layer that dedups concurrent
// identical fetches and RS reconstructions.
//
// Correctness rests on two invariants:
//
//   - Block and chunk entries are keyed by the object's write epoch
//     (DESIGN.md §9: epochs are never reused), so an overwrite can never be
//     served a pre-overwrite block — at worst a stale key misses.
//   - Entries are filled only with bytes that passed CRC verification, so a
//     hit may skip the read path's verification pass entirely.
//
// Invalidation (Put commit point, Delete, repair rewrite) is therefore a
// memory-reclamation and freshness concern, not the only line of defense
// against resurrecting old bytes.
//
// All methods are safe for concurrent use and are no-ops (misses) on a nil
// *Cache, mirroring the trace package's nil-receiver convention.
package cache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"github.com/fusionstore/fusion/internal/metrics"
)

// Kind discriminates what a data key caches.
type Kind uint8

const (
	// KindBlock caches one stored block's verified bytes; A/B are the
	// stripe and bin indices.
	KindBlock Kind = iota
	// KindChunk caches one decoded column chunk; A/B are the row-group and
	// column indices.
	KindChunk
)

// Key identifies one cached block or chunk. The epoch is part of the key:
// entries of a superseded version become unreachable the moment readers hold
// the new metadata, regardless of invalidation timing.
type Key struct {
	Object string
	Epoch  uint64
	Kind   Kind
	A, B   int
}

// Config sizes a Cache.
type Config struct {
	// Bytes is the data-tier budget shared by block and chunk entries;
	// <= 0 disables the data tiers (the meta tier still works).
	Bytes int64
	// MetaEntries bounds the ObjectMeta tier; <= 0 applies the default
	// (4096 objects).
	MetaEntries int
}

const (
	defaultMetaEntries = 4096
	numShards          = 8
)

// entry is one resident data item.
type entry struct {
	key  Key
	val  any
	size uint64
}

// shard is one lock stripe of the data tier: a map plus an LRU list whose
// front is the most recently used entry.
type shard struct {
	mu     sync.Mutex
	budget uint64
	used   uint64
	items  map[Key]*list.Element // -> *entry
	lru    *list.List
}

// metaEntry is one resident ObjectMeta (held as any to keep this package
// free of a store dependency).
type metaEntry struct {
	name string
	val  any
}

// Cache is the coordinator cache. See the package comment for the contract.
type Cache struct {
	shards [numShards]shard

	metaMu    sync.Mutex
	metaLimit int
	metaItems map[string]*list.Element // -> *metaEntry
	metaLRU   *list.List

	flight flightGroup

	// Counters, grouped per tier. All atomics; snapshot via Stats.
	metaHits, metaMisses, metaEvictions       atomic.Uint64
	blockHits, blockMisses                    atomic.Uint64
	chunkHits, chunkMisses                    atomic.Uint64
	fills, evictions, invalidations, rejected atomic.Uint64
	flightLeaders, flightDedups               atomic.Uint64
	decodes                                   atomic.Uint64
}

// New builds a cache. The data tiers are disabled when cfg.Bytes <= 0.
func New(cfg Config) *Cache {
	c := &Cache{
		metaLimit: cfg.MetaEntries,
		metaItems: make(map[string]*list.Element),
		metaLRU:   list.New(),
	}
	if c.metaLimit <= 0 {
		c.metaLimit = defaultMetaEntries
	}
	perShard := uint64(0)
	if cfg.Bytes > 0 {
		perShard = uint64(cfg.Bytes) / numShards
		if perShard == 0 {
			perShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i] = shard{
			budget: perShard,
			items:  make(map[Key]*list.Element),
			lru:    list.New(),
		}
	}
	c.flight.calls = make(map[string]*flightCall)
	return c
}

func (c *Cache) shardOf(k Key) *shard {
	h := fnv.New32a()
	h.Write([]byte(k.Object))
	h.Write([]byte{byte(k.Epoch), byte(k.Epoch >> 8), byte(k.Epoch >> 16), byte(k.Epoch >> 24),
		byte(k.Kind), byte(k.A), byte(k.A >> 8), byte(k.B), byte(k.B >> 8)})
	return &c.shards[h.Sum32()%numShards]
}

func (c *Cache) hit(k Kind) {
	if k == KindBlock {
		c.blockHits.Add(1)
	} else {
		c.chunkHits.Add(1)
	}
}

func (c *Cache) miss(k Kind) {
	if k == KindBlock {
		c.blockMisses.Add(1)
	} else {
		c.chunkMisses.Add(1)
	}
}

// Get returns the cached value for k. The caller must treat the value as
// immutable — entries are shared across readers.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shardOf(k)
	sh.mu.Lock()
	el, ok := sh.items[k]
	var val any
	if ok {
		sh.lru.MoveToFront(el)
		val = el.Value.(*entry).val
	}
	sh.mu.Unlock()
	if !ok {
		c.miss(k.Kind)
		return nil, false
	}
	c.hit(k.Kind)
	return val, true
}

// Put inserts a value of the given resident size, evicting LRU entries as
// needed. Values larger than a shard's budget (or any value when the data
// tiers are disabled) are rejected — the cache never evicts its whole
// contents for one oversized item.
func (c *Cache) Put(k Key, val any, size uint64) {
	if c == nil || size == 0 {
		return
	}
	sh := c.shardOf(k)
	if size > sh.budget {
		c.rejected.Add(1)
		return
	}
	sh.mu.Lock()
	if el, ok := sh.items[k]; ok {
		// Replace in place (e.g. re-fill after invalidation lost the race).
		sh.used -= el.Value.(*entry).size
		sh.used += size
		el.Value.(*entry).val = val
		el.Value.(*entry).size = size
		sh.lru.MoveToFront(el)
	} else {
		sh.items[k] = sh.lru.PushFront(&entry{key: k, val: val, size: size})
		sh.used += size
		c.fills.Add(1)
	}
	for sh.used > sh.budget {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		sh.lru.Remove(back)
		delete(sh.items, ev.key)
		sh.used -= ev.size
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
}

// Invalidate drops one entry.
func (c *Cache) Invalidate(k Key) {
	if c == nil {
		return
	}
	sh := c.shardOf(k)
	sh.mu.Lock()
	if el, ok := sh.items[k]; ok {
		ev := el.Value.(*entry)
		sh.lru.Remove(el)
		delete(sh.items, k)
		sh.used -= ev.size
		c.invalidations.Add(1)
	}
	sh.mu.Unlock()
}

// InvalidateObject drops every data entry of the object whose epoch differs
// from keepEpoch (keepEpoch 0 drops all epochs — the Delete tombstone case).
// Returns how many entries were dropped.
func (c *Cache) InvalidateObject(object string, keepEpoch uint64) int {
	if c == nil {
		return 0
	}
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, el := range sh.items {
			if k.Object != object || (keepEpoch != 0 && k.Epoch == keepEpoch) {
				continue
			}
			sh.used -= el.Value.(*entry).size
			sh.lru.Remove(el)
			delete(sh.items, k)
			dropped++
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		c.invalidations.Add(uint64(dropped))
	}
	return dropped
}

// GetMeta returns the cached object metadata for name.
func (c *Cache) GetMeta(name string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.metaMu.Lock()
	el, ok := c.metaItems[name]
	var val any
	if ok {
		c.metaLRU.MoveToFront(el)
		val = el.Value.(*metaEntry).val
	}
	c.metaMu.Unlock()
	if !ok {
		c.metaMisses.Add(1)
		return nil, false
	}
	c.metaHits.Add(1)
	return val, true
}

// PutMeta caches object metadata, evicting the least recently used entry
// beyond the tier's bound.
func (c *Cache) PutMeta(name string, val any) {
	if c == nil {
		return
	}
	c.metaMu.Lock()
	if el, ok := c.metaItems[name]; ok {
		el.Value.(*metaEntry).val = val
		c.metaLRU.MoveToFront(el)
	} else {
		c.metaItems[name] = c.metaLRU.PushFront(&metaEntry{name: name, val: val})
		for len(c.metaItems) > c.metaLimit {
			back := c.metaLRU.Back()
			ev := back.Value.(*metaEntry)
			c.metaLRU.Remove(back)
			delete(c.metaItems, ev.name)
			c.metaEvictions.Add(1)
		}
	}
	c.metaMu.Unlock()
}

// DeleteMeta drops an object's cached metadata.
func (c *Cache) DeleteMeta(name string) {
	if c == nil {
		return
	}
	c.metaMu.Lock()
	if el, ok := c.metaItems[name]; ok {
		c.metaLRU.Remove(el)
		delete(c.metaItems, name)
		c.invalidations.Add(1)
	}
	c.metaMu.Unlock()
}

// MetaNames lists the objects with cached metadata.
func (c *Cache) MetaNames() []string {
	if c == nil {
		return nil
	}
	c.metaMu.Lock()
	defer c.metaMu.Unlock()
	names := make([]string, 0, len(c.metaItems))
	for n := range c.metaItems {
		names = append(names, n)
	}
	return names
}

// CountDecode records one executed RS decode (the read path calls it from
// inside the singleflight leader, so the counter equals actual decode work,
// not decode demand).
func (c *Cache) CountDecode() {
	if c == nil {
		return
	}
	c.decodes.Add(1)
}

// flightCall is one in-flight fetch shared by concurrent callers.
type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// flightGroup is a minimal singleflight: concurrent Do calls with the same
// key share one execution of fn.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// Do executes fn once per key among concurrent callers; every caller gets
// the leader's result. shared reports whether this caller joined an
// in-flight leader instead of executing fn itself. The returned value is
// shared — callers must treat it as immutable.
func (c *Cache) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	if c == nil {
		val, err = fn()
		return val, err, false
	}
	g := &c.flight
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.flightDedups.Add(1)
		call.wg.Wait()
		return call.val, call.err, true
	}
	call := &flightCall{}
	call.wg.Add(1)
	g.calls[key] = call
	g.mu.Unlock()

	c.flightLeaders.Add(1)
	call.val, call.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	call.wg.Done()
	return call.val, call.err, false
}

// Stats snapshots every tier's counters.
func (c *Cache) Stats() metrics.CacheStats {
	if c == nil {
		return metrics.CacheStats{}
	}
	var entries, bytes uint64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += uint64(len(sh.items))
		bytes += sh.used
		sh.mu.Unlock()
	}
	c.metaMu.Lock()
	metaEntries := uint64(len(c.metaItems))
	c.metaMu.Unlock()
	return metrics.CacheStats{
		Meta: metrics.CacheTier{
			Hits:      c.metaHits.Load(),
			Misses:    c.metaMisses.Load(),
			Evictions: c.metaEvictions.Load(),
			Entries:   metaEntries,
		},
		Block: metrics.CacheTier{
			Hits:   c.blockHits.Load(),
			Misses: c.blockMisses.Load(),
		},
		Chunk: metrics.CacheTier{
			Hits:   c.chunkHits.Load(),
			Misses: c.chunkMisses.Load(),
		},
		DataEntries:   entries,
		DataBytes:     bytes,
		Fills:         c.fills.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Rejected:      c.rejected.Load(),
		FlightLeaders: c.flightLeaders.Load(),
		FlightDedups:  c.flightDedups.Load(),
		Decodes:       c.decodes.Load(),
	}
}
