package colenc

// Dictionary encoding: distinct values are collected into a dictionary page
// in first-occurrence order, and each value is replaced by its uint64 code.
// The codes are then bit-packed or run-length encoded by the caller,
// whichever is smaller — mirroring Parquet's dictionary + RLE/bit-packed
// hybrid that gives the paper's column chunks their extreme compression
// ratios (Fig. 6).

// BuildDict maps vals onto dictionary codes. It returns the dictionary in
// first-occurrence order and the per-value codes.
func BuildDict[T comparable](vals []T) (dict []T, codes []uint64) {
	index := make(map[T]uint64, 64)
	codes = make([]uint64, len(vals))
	for i, v := range vals {
		code, ok := index[v]
		if !ok {
			code = uint64(len(dict))
			index[v] = code
			dict = append(dict, v)
		}
		codes[i] = code
	}
	return dict, codes
}

// ApplyDict inverts BuildDict: it maps codes back through the dictionary.
func ApplyDict[T any](dict []T, codes []uint64) ([]T, error) {
	out := make([]T, len(codes))
	for i, c := range codes {
		if c >= uint64(len(dict)) {
			return nil, ErrCorrupt
		}
		out[i] = dict[c]
	}
	return out, nil
}

// CodesEncoding picks the cheaper physical encoding for a code stream and
// returns it with the encoded bytes. RLE wins on sorted/repetitive streams,
// bit-packing on high-entropy streams.
func CodesEncoding(codes []uint64, maxCode uint64) (Encoding, []byte) {
	width := BitWidth(maxCode)
	packedSize := (len(codes)*width + 7) / 8
	rleSize := RLESize(codes)
	if rleSize < packedSize {
		return RLEEnc, RLEEncode(nil, codes)
	}
	return Plain, PackUints(nil, codes, width)
}

// DecodeCodes reverses CodesEncoding.
func DecodeCodes(enc Encoding, data []byte, count int, maxCode uint64) ([]uint64, error) {
	switch enc {
	case RLEEnc:
		return RLEDecode(data, count)
	case Plain:
		return UnpackUints(data, count, BitWidth(maxCode))
	default:
		return nil, ErrCorrupt
	}
}
