package colenc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPlainInt64RoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		enc := PutInt64s(nil, vals)
		got, err := GetInt64s(enc, len(vals))
		return err == nil && (len(vals) == 0 || reflect.DeepEqual(got, vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlainFloat64RoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1)}
	enc := PutFloat64s(nil, vals)
	got, err := GetFloat64s(enc, len(vals))
	if err != nil || !reflect.DeepEqual(got, vals) {
		t.Fatalf("round trip failed: %v %v", got, err)
	}
}

func TestPlainStringRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		enc := PutStrings(nil, vals)
		got, err := GetStrings(enc, len(vals))
		return err == nil && (len(vals) == 0 || reflect.DeepEqual(got, vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlainTruncated(t *testing.T) {
	if _, err := GetInt64s([]byte{1, 2, 3}, 1); err == nil {
		t.Fatal("GetInt64s must reject short input")
	}
	if _, err := GetFloat64s(nil, 1); err == nil {
		t.Fatal("GetFloat64s must reject short input")
	}
	if _, err := GetStrings([]byte{5, 'a'}, 1); err == nil {
		t.Fatal("GetStrings must reject truncated string")
	}
}

func TestBitWidth(t *testing.T) {
	cases := []struct {
		max  uint64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {1<<56 - 1, 56}}
	for _, c := range cases {
		if got := BitWidth(c.max); got != c.want {
			t.Errorf("BitWidth(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestPackUnpackAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for width := 1; width <= MaxPackWidth; width++ {
		n := 100 + rng.Intn(100)
		vals := make([]uint64, n)
		mask := uint64(1)<<width - 1
		for i := range vals {
			vals[i] = rng.Uint64() & mask
		}
		enc := PackUints(nil, vals, width)
		wantLen := (n*width + 7) / 8
		if len(enc) != wantLen {
			t.Fatalf("width %d: packed %d bytes, want %d", width, len(enc), wantLen)
		}
		got, err := UnpackUints(enc, n, width)
		if err != nil || !reflect.DeepEqual(got, vals) {
			t.Fatalf("width %d: round trip failed: %v", width, err)
		}
	}
}

func TestPackInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackUints must panic on invalid width")
		}
	}()
	PackUints(nil, []uint64{1}, 0)
}

func TestUnpackErrors(t *testing.T) {
	if _, err := UnpackUints([]byte{1}, 10, 8); err == nil {
		t.Fatal("UnpackUints must reject short input")
	}
	if _, err := UnpackUints(nil, 1, 64); err == nil {
		t.Fatal("UnpackUints must reject width > MaxPackWidth")
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]uint64{
		{},
		{5},
		{1, 1, 1, 1, 1},
		{1, 2, 3, 4, 5},
		{0, 0, 7, 7, 7, 0, 1 << 40},
	}
	for _, vals := range cases {
		enc := RLEEncode(nil, vals)
		if len(enc) != RLESize(vals) {
			t.Errorf("RLESize mismatch for %v: %d vs %d", vals, RLESize(vals), len(enc))
		}
		got, err := RLEDecode(enc, len(vals))
		if err != nil {
			t.Fatalf("RLEDecode(%v): %v", vals, err)
		}
		if len(vals) > 0 && !reflect.DeepEqual(got, vals) {
			t.Fatalf("RLE round trip failed for %v: got %v", vals, got)
		}
	}
}

func TestRLEProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		enc := RLEEncode(nil, vals)
		got, err := RLEDecode(enc, len(vals))
		if err != nil {
			return false
		}
		return len(vals) == 0 || reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRLEDecodeCorrupt(t *testing.T) {
	// A run that overruns the expected count.
	enc := RLEEncode(nil, []uint64{9, 9, 9, 9})
	if _, err := RLEDecode(enc, 2); err == nil {
		t.Fatal("RLEDecode must reject runs exceeding count")
	}
	if _, err := RLEDecode([]byte{3}, 3); err == nil {
		t.Fatal("RLEDecode must reject truncated pair")
	}
}

func TestBuildApplyDict(t *testing.T) {
	vals := []string{"bob", "alice", "bob", "carol", "alice", "bob"}
	dict, codes := BuildDict(vals)
	if !reflect.DeepEqual(dict, []string{"bob", "alice", "carol"}) {
		t.Fatalf("dictionary must preserve first-occurrence order, got %v", dict)
	}
	if !reflect.DeepEqual(codes, []uint64{0, 1, 0, 2, 1, 0}) {
		t.Fatalf("codes wrong: %v", codes)
	}
	back, err := ApplyDict(dict, codes)
	if err != nil || !reflect.DeepEqual(back, vals) {
		t.Fatalf("ApplyDict failed: %v %v", back, err)
	}
}

func TestApplyDictOutOfRange(t *testing.T) {
	if _, err := ApplyDict([]int64{1}, []uint64{3}); err == nil {
		t.Fatal("ApplyDict must reject out-of-range code")
	}
}

func TestDictPropertyInt64(t *testing.T) {
	f := func(vals []int64) bool {
		dict, codes := BuildDict(vals)
		back, err := ApplyDict(dict, codes)
		if err != nil {
			return false
		}
		return len(vals) == 0 || reflect.DeepEqual(back, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodesEncodingPicksRLEForRuns(t *testing.T) {
	codes := make([]uint64, 10000) // all zero: a single run
	enc, data := CodesEncoding(codes, 0)
	if enc != RLEEnc {
		t.Fatalf("constant stream must pick RLE, got %v", enc)
	}
	got, err := DecodeCodes(enc, data, len(codes), 0)
	if err != nil || !reflect.DeepEqual(got, codes) {
		t.Fatalf("decode failed: %v", err)
	}
}

func TestCodesEncodingPicksPackForEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes := make([]uint64, 5000)
	for i := range codes {
		codes[i] = uint64(rng.Intn(1000))
	}
	enc, data := CodesEncoding(codes, 999)
	if enc != Plain {
		t.Fatalf("high-entropy stream must pick bit-packing, got %v", enc)
	}
	got, err := DecodeCodes(enc, data, len(codes), 999)
	if err != nil || !reflect.DeepEqual(got, codes) {
		t.Fatalf("decode failed: %v", err)
	}
}

func TestDecodeCodesBadEncoding(t *testing.T) {
	if _, err := DecodeCodes(Dict, nil, 0, 0); err == nil {
		t.Fatal("DecodeCodes must reject unknown encodings")
	}
}

func TestEncodingString(t *testing.T) {
	if Plain.String() != "PLAIN" || Dict.String() != "DICT" || RLEEnc.String() != "RLE" {
		t.Fatal("Encoding.String wrong")
	}
	if Encoding(99).String() == "" {
		t.Fatal("unknown encoding must still stringify")
	}
}
