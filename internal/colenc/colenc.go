// Package colenc implements the physical column encodings used by the lpq
// PAX file format: plain, fixed-width bit-packing, run-length encoding, and
// dictionary encoding (§2, Fig. 3 of the paper). Each encoding is a
// self-contained byte-slice codec; the lpq writer composes them per column
// chunk and layers Snappy compression on top.
package colenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Encoding identifies how the values of a page are encoded.
type Encoding uint8

const (
	// Plain stores values back to back with no transformation.
	Plain Encoding = iota
	// Dict stores a dictionary page of distinct values plus bit-packed codes.
	Dict
	// RLE stores (run-length, value) pairs of unsigned integers.
	RLEEnc
)

func (e Encoding) String() string {
	switch e {
	case Plain:
		return "PLAIN"
	case Dict:
		return "DICT"
	case RLEEnc:
		return "RLE"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// ErrCorrupt reports malformed encoded data.
var ErrCorrupt = errors.New("colenc: corrupt encoded data")

//
// Plain codecs
//

// PutInt64s appends the little-endian plain encoding of vals to dst.
func PutInt64s(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// GetInt64s decodes count plain int64 values.
func GetInt64s(src []byte, count int) ([]int64, error) {
	if len(src) < 8*count {
		return nil, ErrCorrupt
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return out, nil
}

// PutFloat64s appends the plain encoding of vals to dst.
func PutFloat64s(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// GetFloat64s decodes count plain float64 values.
func GetFloat64s(src []byte, count int) ([]float64, error) {
	if len(src) < 8*count {
		return nil, ErrCorrupt
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return out, nil
}

// PutStrings appends the plain encoding of vals (uvarint length + bytes each)
// to dst.
func PutStrings(dst []byte, vals []string) []byte {
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// GetStrings decodes count plain string values.
func GetStrings(src []byte, count int) ([]string, error) {
	out := make([]string, count)
	for i := 0; i < count; i++ {
		l, n := binary.Uvarint(src)
		if n <= 0 || uint64(len(src)-n) < l {
			return nil, ErrCorrupt
		}
		out[i] = string(src[n : n+int(l)])
		src = src[n+int(l):]
	}
	return out, nil
}

//
// Bit-packing
//

// BitWidth returns the number of bits needed to represent max (at least 1,
// so that zero-width pages never arise).
func BitWidth(max uint64) int {
	if max == 0 {
		return 1
	}
	return bits.Len64(max)
}

// MaxPackWidth is the widest supported bit width. Bit-packing is only used
// for dictionary codes, whose width never approaches this; the bound keeps
// the accumulator arithmetic overflow-free.
const MaxPackWidth = 56

// PackUints appends vals packed at the given bit width (1..MaxPackWidth) to
// dst. Values must fit in width bits.
func PackUints(dst []byte, vals []uint64, width int) []byte {
	if width <= 0 || width > MaxPackWidth {
		panic(fmt.Sprintf("colenc: invalid bit width %d", width))
	}
	var acc uint64
	var nbits int
	for _, v := range vals {
		acc |= v << nbits // nbits ≤ 7 here, so width+nbits ≤ 63: no overflow
		nbits += width
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// UnpackUints decodes count values packed at the given bit width
// (1..MaxPackWidth).
func UnpackUints(src []byte, count, width int) ([]uint64, error) {
	if width <= 0 || width > MaxPackWidth {
		return nil, fmt.Errorf("colenc: invalid bit width %d", width)
	}
	need := (count*width + 7) / 8
	if len(src) < need {
		return nil, ErrCorrupt
	}
	out := make([]uint64, count)
	var acc uint64
	var nbits, s int
	mask := uint64(1)<<width - 1
	for i := 0; i < count; i++ {
		for nbits < width {
			acc |= uint64(src[s]) << nbits // nbits < width ≤ 56: no overflow
			s++
			nbits += 8
		}
		out[i] = acc & mask
		acc >>= width
		nbits -= width
	}
	return out, nil
}

//
// Run-length encoding
//

// RLEEncode appends the run-length encoding of vals to dst: a sequence of
// (uvarint run length, uvarint value) pairs.
func RLEEncode(dst []byte, vals []uint64) []byte {
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(j-i))
		dst = binary.AppendUvarint(dst, vals[i])
		i = j
	}
	return dst
}

// RLEDecode decodes count run-length-encoded values.
func RLEDecode(src []byte, count int) ([]uint64, error) {
	out := make([]uint64, 0, count)
	for len(out) < count {
		run, n := binary.Uvarint(src)
		if n <= 0 || run == 0 {
			return nil, ErrCorrupt
		}
		src = src[n:]
		v, n := binary.Uvarint(src)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		src = src[n:]
		if uint64(count-len(out)) < run {
			return nil, ErrCorrupt
		}
		for i := uint64(0); i < run; i++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// RLESize returns the encoded size of vals under RLEEncode without
// materializing the encoding.
func RLESize(vals []uint64) int {
	size := 0
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		size += uvarintLen(uint64(j-i)) + uvarintLen(vals[i])
		i = j
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
