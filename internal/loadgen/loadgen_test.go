package loadgen

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"reflect"
	"testing"
	"time"
)

// scheduleFingerprint hashes every field of every op, in order, so two
// schedules fingerprint equal iff they are byte-identical.
func scheduleFingerprint(ops []Op) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, op := range ops {
		word(uint64(op.At))
		word(uint64(op.Kind))
		word(uint64(op.Object))
		word(op.Arg)
	}
	return h.Sum64()
}

// TestScheduleDeterminism pins the open-loop scheduler: the same (seed,
// config) must yield the byte-identical op schedule, run to run and release
// to release. The pinned fingerprints make an accidental generator change
// (reordered rng draws, a new default) loud — failing soaks reproduce from
// their logged seed only if the schedule is stable. Update the pins only
// when deliberately changing the generator, and say so in the commit.
func TestScheduleDeterminism(t *testing.T) {
	cases := []struct {
		name        string
		cfg         Config
		fingerprint uint64
	}{
		{
			name:        "defaults",
			cfg:         Config{Seed: 1},
			fingerprint: 0x088cbb9a2f8e3590,
		},
		{
			name:        "canonical-ladder-rung",
			cfg:         Config{Seed: 11, Rate: 1500, Duration: 1200 * time.Millisecond, Objects: 24, RowsPerObject: 120},
			fingerprint: 0xf701d3fb8498baa5,
		},
		{
			name:        "write-heavy",
			cfg:         Config{Seed: 7, Rate: 300, Duration: 500 * time.Millisecond, Mix: Mix{Get: 0.2, Put: 0.6, Query: 0.2}, Objects: 6},
			fingerprint: 0x62b468cc8e85d5f6,
		},
		{
			name:        "capped",
			cfg:         Config{Seed: 42, Rate: 10000, Duration: time.Second, MaxOps: 100},
			fingerprint: 0x2b9172ed2ed5f857,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := BuildSchedule(tc.cfg)
			b := BuildSchedule(tc.cfg)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed, different schedules (%d vs %d ops)", len(a), len(b))
			}
			if got := scheduleFingerprint(a); got != tc.fingerprint {
				t.Fatalf("schedule fingerprint %#x, pinned %#x (%d ops) — generator output changed",
					got, tc.fingerprint, len(a))
			}
			other := tc.cfg
			other.Seed++
			if scheduleFingerprint(BuildSchedule(other)) == tc.fingerprint {
				t.Fatal("different seed produced the pinned schedule")
			}
		})
	}
}

// TestScheduleProperties checks the structural invariants every schedule
// must satisfy: monotone arrivals inside the horizon, range reads confined
// to the immutable half, puts to the mutable half, query args in range, and
// an op count near rate×duration (Poisson mean).
func TestScheduleProperties(t *testing.T) {
	cfg := Config{Seed: 3, Rate: 2000, Duration: time.Second, Objects: 16}
	ops := BuildSchedule(cfg)
	want := cfg.Rate * cfg.Duration.Seconds()
	if n := float64(len(ops)); math.Abs(n-want) > 0.2*want {
		t.Fatalf("schedule has %d ops, want about %.0f", len(ops), want)
	}
	immutable, mutable := corpusSplit(16)
	inSet := func(set []int, x int) bool {
		for _, s := range set {
			if s == x {
				return true
			}
		}
		return false
	}
	last := time.Duration(-1)
	var kinds [numOpKinds]int
	for i, op := range ops {
		if op.At < last || op.At > cfg.Duration {
			t.Fatalf("op %d: arrival %v out of order or past horizon", i, op.At)
		}
		last = op.At
		kinds[op.Kind]++
		switch op.Kind {
		case OpGet:
			if op.Arg != fullGetArg && !inSet(immutable, op.Object) {
				t.Fatalf("op %d: range read targets mutable object %d", i, op.Object)
			}
		case OpPut:
			if !inSet(mutable, op.Object) {
				t.Fatalf("op %d: put targets immutable object %d", i, op.Object)
			}
		case OpQuery:
			if op.Arg >= numQueryTemplates {
				t.Fatalf("op %d: query template %d out of range", i, op.Arg)
			}
		}
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		if kinds[k] == 0 {
			t.Fatalf("default mix scheduled zero %s ops over %d arrivals", k, len(ops))
		}
	}
}

func TestMixNormalization(t *testing.T) {
	m := Mix{}.normalized()
	if m != (Mix{Get: 0.80, Put: 0.05, Query: 0.15}) {
		t.Fatalf("zero mix normalized to %+v, want default", m)
	}
	m = Mix{Get: 2, Put: 1, Query: 1}.normalized()
	if m.Get != 0.5 || m.Put != 0.25 || m.Query != 0.25 {
		t.Fatalf("2:1:1 normalized to %+v", m)
	}
}

// TestSLOVerdicts exercises the evaluator on fabricated stats: a run inside
// every bound passes; latency and availability breaches each produce a named
// violation; kinds with no traffic yield no verdict.
func TestSLOVerdicts(t *testing.T) {
	stats := &RunStats{PerOp: map[string]*OpStats{
		"get":   {Attempted: 1000, Succeeded: 1000, P50Us: 500, P99Us: 2000, P999Us: 9000},
		"put":   {Attempted: 100, Succeeded: 90, Failed: 10, P50Us: 900, P99Us: 4000, P999Us: 20000},
		"query": {}, // no traffic
	}}
	slos := []SLO{
		{Op: OpGet, P50: time.Millisecond, P99: 5 * time.Millisecond, P999: 10 * time.Millisecond, Availability: 0.999},
		{Op: OpPut, P99: 3 * time.Millisecond, Availability: 0.999},
		{Op: OpQuery, P50: time.Millisecond},
	}
	vs := evaluateSLOs(stats, slos)
	if len(vs) != 2 {
		t.Fatalf("got %d verdicts, want 2 (query saw no traffic): %+v", len(vs), vs)
	}
	if !vs[0].Pass || vs[0].Op != "get" {
		t.Fatalf("get verdict should pass: %+v", vs[0])
	}
	if vs[1].Pass || len(vs[1].Violations) != 2 {
		t.Fatalf("put verdict should fail p99 and availability: %+v", vs[1])
	}
	if AllPass(vs) {
		t.Fatal("AllPass over a failing verdict")
	}
}

// TestCorpusVersionsDiffer pins that successive versions of an object are
// distinct (an overwrite the oracle can actually distinguish) and that
// generation is deterministic.
func TestCorpusVersionsDiffer(t *testing.T) {
	v0a, err := GenVersion(9, 3, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	v0b, _ := GenVersion(9, 3, 0, 40)
	if v0a.CRC != v0b.CRC {
		t.Fatal("GenVersion is not deterministic")
	}
	v1, _ := GenVersion(9, 3, 1, 40)
	if v1.CRC == v0a.CRC {
		t.Fatal("versions 0 and 1 generated identical bytes")
	}
	if reflect.DeepEqual(v0a.Answers, v1.Answers) {
		t.Fatal("versions 0 and 1 have identical reference answers for every template")
	}
}

// TestTenantFieldsDoNotPerturbSchedule: Tenant and OpDeadline shape the
// execution context, never the arrival schedule — the same (seed, rates,
// mix) must yield the byte-identical schedule with or without them, so
// multi-tenant runs stay reproducible against the pinned fingerprints.
func TestTenantFieldsDoNotPerturbSchedule(t *testing.T) {
	plain := Config{Seed: 3, Rate: 500, Duration: time.Second}
	tagged := plain
	tagged.Tenant = "aggressor"
	tagged.OpDeadline = 250 * time.Millisecond
	a, b := BuildSchedule(plain), BuildSchedule(tagged)
	if scheduleFingerprint(a) != scheduleFingerprint(b) || !reflect.DeepEqual(a, b) {
		t.Fatal("Tenant/OpDeadline perturbed the arrival schedule")
	}
}
