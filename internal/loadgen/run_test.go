package loadgen

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/store"
	"github.com/fusionstore/fusion/internal/tcpnet"
)

// testStore builds a 9-node store for load tests over the given client.
func testStore(t testing.TB, client cluster.Client, seed int64) *store.Store {
	t.Helper()
	opts := store.FusionOptions()
	opts.StorageBudget = 0.5 // corpus objects are small
	opts.QueryWorkers = 2
	opts.Retry = cluster.Policy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  500 * time.Microsecond,
		Jitter:      cluster.NewJitterSource(seed),
	}
	s, err := store.New(client, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func simClient(nodes int) cluster.Client {
	cfg := simnet.DefaultConfig()
	cfg.Nodes = nodes
	return simnet.New(cfg)
}

// checkHealthyRun asserts what a load run against a fault-free cluster must
// look like: every op served, every response verified, zero mismatches.
func checkHealthyRun(t *testing.T, run *RunStats) {
	t.Helper()
	if run.OracleMismatches != 0 {
		t.Fatalf("oracle mismatches on a healthy cluster: %v", run.MismatchSamples)
	}
	if run.OracleChecks == 0 {
		t.Fatal("run verified nothing")
	}
	if a := run.Availability(); a != 1 {
		for kind, ops := range run.PerOp {
			if ops.Failed > 0 {
				t.Errorf("%s: %d/%d failed: %v", kind, ops.Failed, ops.Attempted, ops.Errors)
			}
		}
		t.Fatalf("availability %.4f on a healthy cluster", a)
	}
	for _, kind := range []OpKind{OpGet, OpPut, OpQuery} {
		ops := run.PerOp[kind.String()]
		if ops == nil || ops.Attempted == 0 {
			t.Fatalf("no %s ops attempted", kind)
		}
	}
	if run.GoodputOps <= 0 || run.GoodputMBps <= 0 {
		t.Fatalf("no goodput recorded: %+v", run)
	}
}

// TestLoadSmokeSimnet drives the full harness end to end on a healthy
// simulated cluster: open-loop dispatch, mixed traffic, oracle verification
// of every response, SLO verdicts.
func TestLoadSmokeSimnet(t *testing.T) {
	s := testStore(t, simClient(9), 1)
	run, err := Run(StoreTarget{S: s}, Config{
		Seed:          5,
		Rate:          600,
		Duration:      400 * time.Millisecond,
		Objects:       8,
		RowsPerObject: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkHealthyRun(t, run)
	if !run.SLOPass {
		t.Fatalf("default SLOs failed on a healthy smoke run: %+v", run.Verdicts)
	}
	if run.ScheduledOps < 100 {
		t.Fatalf("suspiciously short schedule: %d ops", run.ScheduledOps)
	}
}

// TestLoadOverTCPNet runs the same harness over real sockets: 9 tcpnet
// servers on loopback, hundreds of concurrent in-flight clients. This is
// the "real transport" configuration of the ISSUE, scaled to CI time.
func TestLoadOverTCPNet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load run")
	}
	var addrs []string
	for i := 0; i < 9; i++ {
		srv, err := tcpnet.NewServer(cluster.NewNode(i, cluster.NewMemStore()), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	client := tcpnet.NewClient(addrs)
	defer client.Close()
	s := testStore(t, client, 2)
	run, err := Run(StoreTarget{S: s}, Config{
		Seed:          6,
		Rate:          500,
		Duration:      400 * time.Millisecond,
		Objects:       8,
		RowsPerObject: 40,
		MaxInflight:   256,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkHealthyRun(t, run)
}

// corruptTarget flips one byte in every Nth Get response *after* the store
// returned it — downstream of every checksum the system verifies, the way a
// buggy buffer reuse or a DMA error past the NIC would look.
type corruptTarget struct {
	Target
	n     uint64
	calls atomic.Uint64
}

func (c *corruptTarget) Get(ctx context.Context, name string, offset, length uint64) ([]byte, error) {
	data, err := c.Target.Get(ctx, name, offset, length)
	if err == nil && len(data) > 0 && c.calls.Add(1)%c.n == 0 {
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0x04
	}
	return data, err
}

// TestRunDetectsEndToEndCorruption proves the harness actually fails when
// the data path lies: with a middleware corrupting every 3rd Get response
// past all CRC layers, the run must report oracle mismatches, classify them
// under the oracle_mismatch error class, and fail the SLO verdict.
func TestRunDetectsEndToEndCorruption(t *testing.T) {
	s := testStore(t, simClient(9), 3)
	ct := &corruptTarget{Target: StoreTarget{S: s}, n: 3}
	run, err := Run(ct, Config{
		Seed:          7,
		Rate:          400,
		Duration:      300 * time.Millisecond,
		Objects:       6,
		RowsPerObject: 30,
		Mix:           Mix{Get: 1}, // all Gets: every op exercises the corrupted path
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.OracleMismatches == 0 {
		t.Fatal("corrupted responses went undetected")
	}
	gets := run.PerOp[OpGet.String()]
	if gets.Errors[ErrClassOracleMismatch] != run.OracleMismatches {
		t.Fatalf("mismatches not classified: %v (want %d oracle_mismatch)", gets.Errors, run.OracleMismatches)
	}
	if run.SLOPass {
		t.Fatal("SLOPass despite oracle mismatches")
	}
	if run.OracleChecks <= run.OracleMismatches {
		t.Fatalf("clean responses should still verify: checks=%d mismatches=%d", run.OracleChecks, run.OracleMismatches)
	}
}

// TestRunChargesQueueingToLatency pins the open-loop property the harness
// exists for: against a target that stalls every request 5ms at 4× that
// service rate with MaxInflight 1, a closed-loop driver would report ~5ms
// per op; the open-loop p99 must instead show the queueing backlog (many
// times the service time), because latency is charged from the scheduled
// arrival.
func TestRunChargesQueueingToLatency(t *testing.T) {
	s := testStore(t, simClient(9), 4)
	slow := &stallTarget{Target: StoreTarget{S: s}, delay: 5 * time.Millisecond}
	run, err := Run(slow, Config{
		Seed:          8,
		Rate:          800, // 4× the 200/s the stalled single-file target can serve
		Duration:      250 * time.Millisecond,
		Objects:       4,
		RowsPerObject: 20,
		Mix:           Mix{Get: 1},
		MaxInflight:   1, // serialize: a closed loop in disguise — except for the clock
	})
	if err != nil {
		t.Fatal(err)
	}
	gets := run.PerOp[OpGet.String()]
	// With ~200 arrivals queued behind a 5ms server, the median op waits far
	// longer than one service time. 20ms is 4 service times — conservatively
	// below the tens-of-ms backlog the schedule builds, far above a
	// closed-loop reading.
	if gets.P50Us < 20_000 {
		t.Fatalf("open-loop p50 %.0fµs hides the queueing backlog (service time 5000µs)", gets.P50Us)
	}
}

type stallTarget struct {
	Target
	delay time.Duration
}

func (s *stallTarget) Get(ctx context.Context, name string, offset, length uint64) ([]byte, error) {
	time.Sleep(s.delay)
	return s.Target.Get(ctx, name, offset, length)
}

// TestRunTenantsMultiStream drives two tenants concurrently against one
// admission-controlled store sharing a single oracle: the multi-tenant
// overload harness end to end. Both streams must verify cleanly, per-tenant
// stats must be accounted under the right names, and every shed op must be
// classified — never "other".
func TestRunTenantsMultiStream(t *testing.T) {
	opts := store.FusionOptions()
	opts.StorageBudget = 0.5
	opts.QueryWorkers = 2
	opts.Sched = sched.New(sched.Config{
		Slots: 8, ScanSlots: 4, PutSlots: 4, QueueDepth: 16,
		Weights: map[string]int{"pointy": 4, "scanny": 1},
	})
	s, err := store.New(simClient(9), opts)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Seed:          7,
		Duration:      300 * time.Millisecond,
		Objects:       8,
		RowsPerObject: 40,
		OpDeadline:    2 * time.Second,
	}
	scanny, pointy := base, base
	scanny.Rate, scanny.Mix = 500, Mix{Get: 0.2, Query: 0.8}
	pointy.Rate, pointy.Mix = 300, Mix{Get: 1}
	stats, err := RunTenants(StoreTarget{S: s}, []TenantRun{
		{Name: "scanny", Cfg: scanny},
		{Name: "pointy", Cfg: pointy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats["scanny"] == nil || stats["pointy"] == nil {
		t.Fatalf("want per-tenant stats for both tenants, got %v", stats)
	}
	for name, run := range stats {
		if run.OracleMismatches != 0 {
			t.Fatalf("%s: oracle mismatches: %v", name, run.MismatchSamples)
		}
		if run.OracleChecks == 0 {
			t.Fatalf("%s: verified nothing", name)
		}
		if n := run.UnclassifiedErrors(); n != 0 {
			t.Fatalf("%s: %d unclassified errors", name, n)
		}
		if a := run.AdmittedReadAvailability(); a < 0.99 {
			t.Fatalf("%s: admitted read availability %.4f under mild load", name, a)
		}
	}
	// The store's scheduler must have accounted both tenants by name.
	seen := map[string]bool{}
	for _, tn := range s.SchedStats().Tenants {
		seen[tn.Tenant] = true
	}
	if !seen["scanny"] || !seen["pointy"] {
		t.Fatalf("scheduler accounted tenants %v, want scanny and pointy", seen)
	}
}

// TestRunTenantsRejectsMismatchedCorpus: tenants disagreeing on the corpus
// parameters would verify reads against the wrong bytes — the runner must
// refuse up front.
func TestRunTenantsRejectsMismatchedCorpus(t *testing.T) {
	s := testStore(t, simClient(9), 1)
	_, err := RunTenants(StoreTarget{S: s}, []TenantRun{
		{Name: "a", Cfg: Config{Seed: 1, Objects: 8, RowsPerObject: 40, Duration: 10 * time.Millisecond}},
		{Name: "b", Cfg: Config{Seed: 2, Objects: 8, RowsPerObject: 40, Duration: 10 * time.Millisecond}},
	})
	if err == nil {
		t.Fatal("mismatched corpus must be rejected")
	}
}
