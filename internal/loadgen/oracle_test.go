package loadgen

import (
	"errors"
	"hash/crc32"
	"testing"

	"github.com/fusionstore/fusion/internal/sql"
)

func newTestOracle(t *testing.T) *Oracle {
	t.Helper()
	o, err := NewOracle(21, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestOracleCatchesForgedChecksumCorruption is the verifier's self-test: a
// one-byte corruption whose CRC has been recomputed to match — i.e. a
// corruption every checksum layer in the system would wave through — must
// still fail the byte-for-byte content comparison. This is what makes the
// soak's "zero corruption" verdict mean content equality, not checksum
// equality.
func TestOracleCatchesForgedChecksumCorruption(t *testing.T) {
	o := newTestOracle(t)
	v := o.Initial(0)

	// Sanity: the genuine bytes verify.
	if err := o.CheckGet(0, 0, 0, 0, v.Data); err != nil {
		t.Fatalf("clean bytes rejected: %v", err)
	}

	corrupt := append([]byte(nil), v.Data...)
	corrupt[len(corrupt)/2] ^= 0x01
	// Forge the oracle's stored checksum so the CRC fast path *accepts* the
	// corrupted bytes; only the content comparison is left to catch them.
	orig := v.CRC
	v.CRC = crc32.Checksum(corrupt, castagnoli)
	defer func() { v.CRC = orig }()

	err := o.CheckGet(0, 0, 0, 0, corrupt)
	if !errors.Is(err, ErrOracleMismatch) {
		t.Fatalf("one-byte corruption with a forged CRC passed verification: %v", err)
	}
}

// TestOracleCatchesRangeCorruption covers the range-read path, which has no
// CRC fast path at all: a flipped byte inside the requested window must
// fail, and the same window's true bytes must pass.
func TestOracleCatchesRangeCorruption(t *testing.T) {
	o := newTestOracle(t)
	data := o.Initial(1).Data
	offset, length := uint64(10), uint64(50)
	want := append([]byte(nil), data[offset:offset+length]...)
	if err := o.CheckGet(1, 0, offset, length, want); err != nil {
		t.Fatalf("clean range rejected: %v", err)
	}
	want[7] ^= 0x80
	if err := o.CheckGet(1, 0, offset, length, want); !errors.Is(err, ErrOracleMismatch) {
		t.Fatalf("corrupted range passed verification: %v", err)
	}
	// Wrong lengths are mismatches too, not panics.
	if err := o.CheckGet(1, 0, offset, length, want[:len(want)-1]); !errors.Is(err, ErrOracleMismatch) {
		t.Fatalf("truncated range passed verification: %v", err)
	}
}

// TestOracleVersionWindows pins the admissibility semantics under
// overwrites: a read overlapping a put may see either side; a read starting
// after a successful put must see the new version; a *failed* put's version
// stays admissible forever (its commit point may have passed before the
// error).
func TestOracleVersionWindows(t *testing.T) {
	o := newTestOracle(t)
	obj := 3 // mutable half of a 4-object corpus
	v0 := o.Initial(obj)

	ver, v1, ok, err := o.BeginPut(obj)
	if err != nil || !ok || ver != 1 {
		t.Fatalf("BeginPut: ver=%d ok=%v err=%v", ver, ok, err)
	}
	// Puts are serialized per object: a second BeginPut must coalesce.
	if _, _, ok2, _ := o.BeginPut(obj); ok2 {
		t.Fatal("concurrent BeginPut on the same object was not coalesced")
	}
	// A read that started before the put committed may see v0 or v1.
	if err := o.CheckGet(obj, 0, 0, 0, v0.Data); err != nil {
		t.Fatalf("overlapping read of old version rejected: %v", err)
	}
	if err := o.CheckGet(obj, 0, 0, 0, v1.Data); err != nil {
		t.Fatalf("overlapping read of new version rejected: %v", err)
	}
	o.EndPut(obj, ver, true)

	// Strictly-later reads snapshot window base 1: v0 is now stale.
	lo := o.ReadWindow(obj)
	if lo != 1 {
		t.Fatalf("ReadWindow after committed put = %d, want 1", lo)
	}
	if err := o.CheckGet(obj, lo, 0, 0, v0.Data); !errors.Is(err, ErrOracleMismatch) {
		t.Fatalf("stale read after committed overwrite passed: %v", err)
	}

	// A failed put: the bytes stay admissible, the frontier stays put.
	ver2, v2, ok, err := o.BeginPut(obj)
	if err != nil || !ok || ver2 != 2 {
		t.Fatalf("BeginPut 2: ver=%d ok=%v err=%v", ver2, ok, err)
	}
	o.EndPut(obj, ver2, false)
	if o.ReadWindow(obj) != 1 {
		t.Fatalf("failed put advanced the committed frontier to %d", o.ReadWindow(obj))
	}
	if err := o.CheckGet(obj, o.ReadWindow(obj), 0, 0, v2.Data); err != nil {
		t.Fatalf("failed put's version must stay admissible: %v", err)
	}
	if err := o.CheckGet(obj, o.ReadWindow(obj), 0, 0, v1.Data); err != nil {
		t.Fatalf("committed version must stay admissible: %v", err)
	}
}

// TestOracleCatchesQueryCorruption checks the aggregate verifier: exact and
// tolerance-level answers pass, a perturbed aggregate or wrong arity fails.
func TestOracleCatchesQueryCorruption(t *testing.T) {
	o := newTestOracle(t)
	v := o.Initial(2)
	for tpl := 0; tpl < numScalarTemplates; tpl++ {
		var aggs []sql.Literal
		for _, want := range v.Answers[tpl] {
			aggs = append(aggs, sql.FloatLit(want))
		}
		if err := o.CheckQuery(2, 0, tpl, aggs); err != nil {
			t.Fatalf("template %d: exact answers rejected: %v", tpl, err)
		}
		// Within float tolerance: different accumulation order, same answer.
		jittered := append([]sql.Literal(nil), aggs...)
		jittered[0] = sql.FloatLit(v.Answers[tpl][0] * (1 + 5e-10))
		if err := o.CheckQuery(2, 0, tpl, jittered); err != nil {
			t.Fatalf("template %d: tolerance-level jitter rejected: %v", tpl, err)
		}
		wrong := append([]sql.Literal(nil), aggs...)
		wrong[0] = sql.FloatLit(v.Answers[tpl][0] + 1)
		if err := o.CheckQuery(2, 0, tpl, wrong); !errors.Is(err, ErrOracleMismatch) {
			t.Fatalf("template %d: perturbed aggregate passed: %v", tpl, err)
		}
		if err := o.CheckQuery(2, 0, tpl, aggs[:0]); !errors.Is(err, ErrOracleMismatch) {
			t.Fatalf("template %d: empty aggregate row passed: %v", tpl, err)
		}
	}
}

// TestOracleToleranceRelativeOrAbsolute pins the comparison rule: the
// allowed error is max(absolute, relative·|want|), so large SUMs get a
// scaled allowance and small AVGs a tight absolute one.
func TestOracleToleranceRelativeOrAbsolute(t *testing.T) {
	cases := []struct {
		want, got float64
		ok        bool
	}{
		{1e9, 1e9 + 0.4, true},    // large SUM: 4e-10 relative, within 1e-9·1e9
		{1e9, 1e9 + 10, false},    // large SUM: 1e-8 relative, out
		{1e-3, 1e-3 + 5e-10, true},
		{1e-3, 1e-3 + 1e-6, false}, // the old flat 1e-6 would have passed this
		{0, 5e-10, true},
		{0, 1e-8, false},
	}
	for _, c := range cases {
		if floatClose(c.want, c.got) != c.ok {
			t.Errorf("floatClose(%g, %g) = %v, want %v", c.want, c.got, !c.ok, c.ok)
		}
	}
}

// TestOracleCatchesTableCorruption checks the table verifier over the
// grouped and top-k templates: the exact reference passes, float jitter
// within tolerance passes, and any perturbed aggregate, reordered rows, or
// truncated table fails.
func TestOracleCatchesTableCorruption(t *testing.T) {
	o := newTestOracle(t)
	v := o.Initial(2)
	clone := func(rows [][]sql.Literal) [][]sql.Literal {
		out := make([][]sql.Literal, len(rows))
		for i, r := range rows {
			out[i] = append([]sql.Literal(nil), r...)
		}
		return out
	}
	for tpl := numScalarTemplates; tpl < numQueryTemplates; tpl++ {
		want := v.Tables[tpl]
		if len(want) == 0 {
			t.Fatalf("template %d: empty reference table", tpl)
		}
		if err := o.CheckQueryTable(2, 0, tpl, clone(want)); err != nil {
			t.Fatalf("template %d: exact table rejected: %v", tpl, err)
		}
		// Jitter every float cell at half tolerance.
		jit := clone(want)
		for _, row := range jit {
			for j, l := range row {
				if l.Kind == sql.LitFloat {
					row[j] = sql.FloatLit(l.F * (1 + 5e-10))
				}
			}
		}
		if err := o.CheckQueryTable(2, 0, tpl, jit); err != nil {
			t.Fatalf("template %d: tolerance-level jitter rejected: %v", tpl, err)
		}
		// Perturb one cell of the last row.
		bad := clone(want)
		last := bad[len(bad)-1]
		switch l := last[len(last)-1]; l.Kind {
		case sql.LitFloat:
			last[len(last)-1] = sql.FloatLit(l.F + 1)
		case sql.LitInt:
			last[len(last)-1] = sql.IntLit(l.I + 1)
		default:
			last[len(last)-1] = sql.StringLit(l.S + "x")
		}
		if err := o.CheckQueryTable(2, 0, tpl, bad); !errors.Is(err, ErrOracleMismatch) {
			t.Fatalf("template %d: perturbed table passed: %v", tpl, err)
		}
		if len(want) > 1 {
			swapped := clone(want)
			swapped[0], swapped[1] = swapped[1], swapped[0]
			if err := o.CheckQueryTable(2, 0, tpl, swapped); !errors.Is(err, ErrOracleMismatch) {
				t.Fatalf("template %d: reordered rows passed: %v", tpl, err)
			}
		}
		if err := o.CheckQueryTable(2, 0, tpl, clone(want)[:len(want)-1]); !errors.Is(err, ErrOracleMismatch) {
			t.Fatalf("template %d: truncated table passed: %v", tpl, err)
		}
	}
}

// TestOracleRangeForInBounds fuzzes the range derivation: every (offset,
// length) must slice version 0 in bounds with length ≥ 1.
func TestOracleRangeForInBounds(t *testing.T) {
	o := newTestOracle(t)
	size := uint64(len(o.Initial(0).Data))
	args := []uint64{0, 1, ^uint64(0) - 1, 0xDEADBEEF12345678, size << 32, 7<<32 | 9}
	for _, arg := range args {
		off, n := o.RangeFor(0, arg)
		if n == 0 || off+n > size {
			t.Fatalf("RangeFor(%#x) = (%d, %d) out of bounds for size %d", arg, off, n, size)
		}
	}
}
