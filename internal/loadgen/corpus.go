package loadgen

import (
	"fmt"
	"hash/crc32"
	"math/rand"

	"github.com/fusionstore/fusion/internal/lpq"
)

// queryTemplates are the fixed analytical shapes the generator issues, each
// parameterized by object name. Their reference answers are computed
// directly from the generated column arrays at corpus-build time, so query
// verification never depends on the system under test.
var queryTemplates = []string{
	"SELECT COUNT(id) FROM %s WHERE qty > 25",
	"SELECT SUM(qty) FROM %s WHERE flag = 'A'",
	"SELECT AVG(price) FROM %s WHERE qty > 10",
	"SELECT COUNT(id), SUM(price) FROM %s WHERE flag = 'R' AND qty > 5",
}

const numQueryTemplates = 4

// QueryText renders query template t against object index obj.
func QueryText(t int, obj int) string {
	return fmt.Sprintf(queryTemplates[t], ObjectName(obj))
}

// Version is one seeded version of a corpus object: its exact lpq bytes,
// their CRC, and the reference answer to every query template.
type Version struct {
	// Data is the object's full byte content.
	Data []byte
	// CRC is crc32.Castagnoli over Data — the oracle's fast-path check
	// before the byte-for-byte comparison.
	CRC uint32
	// Answers[t] is the expected aggregate row of query template t.
	Answers [numQueryTemplates][]float64
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// GenVersion deterministically generates version ver of corpus object obj:
// an lpq file with the harness schema (id, qty, price, flag, comment) whose
// contents are a pure function of (corpusSeed, obj, ver). Successive
// versions of an object differ in every generated column.
func GenVersion(corpusSeed int64, obj, ver, rowsPerGroup int) (*Version, error) {
	// Mix the identity into one seed; the constants are arbitrary odd
	// multipliers keeping (obj, ver) pairs well separated.
	seed := corpusSeed ^ int64(uint64(obj)*0x9E3779B97F4A7C15) ^ int64(uint64(ver)*0xC2B2AE3D27D4EB4F)
	rng := rand.New(rand.NewSource(seed))

	schema := []lpq.Column{
		{Name: "id", Type: lpq.Int64},
		{Name: "qty", Type: lpq.Int64},
		{Name: "price", Type: lpq.Float64},
		{Name: "flag", Type: lpq.String},
		{Name: "comment", Type: lpq.String},
	}
	w := lpq.NewWriter(schema, lpq.DefaultWriterOptions())

	v := &Version{}
	// Aggregate accumulators across row groups.
	var (
		countQty25          float64
		sumQtyFlagA         float64
		sumPriceQty10, nQ10 float64
		countR5, sumPriceR5 float64
	)
	const rowGroups = 2
	next := int64(0)
	for g := 0; g < rowGroups; g++ {
		ids := make([]int64, rowsPerGroup)
		qty := make([]int64, rowsPerGroup)
		price := make([]float64, rowsPerGroup)
		flag := make([]string, rowsPerGroup)
		comment := make([]string, rowsPerGroup)
		for i := 0; i < rowsPerGroup; i++ {
			ids[i] = next
			next++
			qty[i] = int64(rng.Intn(50))
			price[i] = float64(rng.Intn(10000)) / 100
			flag[i] = []string{"A", "N", "R"}[rng.Intn(3)]
			comment[i] = fmt.Sprintf("v%d order %d notes %d", ver, rng.Intn(1000), rng.Intn(10))

			if qty[i] > 25 {
				countQty25++
			}
			if flag[i] == "A" {
				sumQtyFlagA += float64(qty[i])
			}
			if qty[i] > 10 {
				sumPriceQty10 += price[i]
				nQ10++
			}
			if flag[i] == "R" && qty[i] > 5 {
				countR5++
				sumPriceR5 += price[i]
			}
		}
		cols := []lpq.ColumnData{
			lpq.IntColumn(ids), lpq.IntColumn(qty), lpq.FloatColumn(price),
			lpq.StringColumn(flag), lpq.StringColumn(comment),
		}
		if err := w.WriteRowGroup(cols); err != nil {
			return nil, fmt.Errorf("loadgen: generating %s v%d: %w", ObjectName(obj), ver, err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		return nil, fmt.Errorf("loadgen: generating %s v%d: %w", ObjectName(obj), ver, err)
	}
	avgPriceQty10 := 0.0
	if nQ10 > 0 {
		avgPriceQty10 = sumPriceQty10 / nQ10
	}
	v.Data = data
	v.CRC = crc32.Checksum(data, castagnoli)
	v.Answers = [numQueryTemplates][]float64{
		{countQty25},
		{sumQtyFlagA},
		{avgPriceQty10},
		{countR5, sumPriceR5},
	}
	return v, nil
}
