package loadgen

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"

	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/sql"
)

// queryTemplates are the fixed analytical shapes the generator issues, each
// parameterized by object name. Their reference answers are computed
// directly from the generated column arrays at corpus-build time, so query
// verification never depends on the system under test. Templates at index
// >= numScalarTemplates return a result table (GROUP BY or ORDER BY+LIMIT)
// rather than a single aggregate row; every one carries an ORDER BY so the
// expected row order is fully determined.
var queryTemplates = []string{
	"SELECT COUNT(id) FROM %s WHERE qty > 25",
	"SELECT SUM(qty) FROM %s WHERE flag = 'A'",
	"SELECT AVG(price) FROM %s WHERE qty > 10",
	"SELECT COUNT(id), SUM(price) FROM %s WHERE flag = 'R' AND qty > 5",
	"SELECT flag, COUNT(id), SUM(price), AVG(qty) FROM %s GROUP BY flag ORDER BY flag",
	"SELECT qty, COUNT(id) FROM %s WHERE qty >= 40 GROUP BY qty ORDER BY COUNT(id) DESC, qty LIMIT 3",
	"SELECT id, price FROM %s ORDER BY price DESC LIMIT 4",
}

const (
	numScalarTemplates = 4
	numQueryTemplates  = 7
)

// TableTemplate reports whether template t returns a result table (verified
// row-by-row) instead of a single aggregate row.
func TableTemplate(t int) bool { return t >= numScalarTemplates }

// QueryText renders query template t against object index obj.
func QueryText(t int, obj int) string {
	return fmt.Sprintf(queryTemplates[t], ObjectName(obj))
}

// Version is one seeded version of a corpus object: its exact lpq bytes,
// their CRC, and the reference answer to every query template.
type Version struct {
	// Data is the object's full byte content.
	Data []byte
	// CRC is crc32.Castagnoli over Data — the oracle's fast-path check
	// before the byte-for-byte comparison.
	CRC uint32
	// Answers[t] is the expected aggregate row of scalar query template t.
	Answers [numQueryTemplates][]float64
	// Tables[t] is the expected result table of table-shaped template t
	// (TableTemplate(t) == true): rows in the template's ORDER BY order,
	// keys and integer aggregates exact, float aggregates compared with
	// tolerance.
	Tables [numQueryTemplates][][]sql.Literal
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// GenVersion deterministically generates version ver of corpus object obj:
// an lpq file with the harness schema (id, qty, price, flag, comment) whose
// contents are a pure function of (corpusSeed, obj, ver). Successive
// versions of an object differ in every generated column.
func GenVersion(corpusSeed int64, obj, ver, rowsPerGroup int) (*Version, error) {
	// Mix the identity into one seed; the constants are arbitrary odd
	// multipliers keeping (obj, ver) pairs well separated.
	seed := corpusSeed ^ int64(uint64(obj)*0x9E3779B97F4A7C15) ^ int64(uint64(ver)*0xC2B2AE3D27D4EB4F)
	rng := rand.New(rand.NewSource(seed))

	schema := []lpq.Column{
		{Name: "id", Type: lpq.Int64},
		{Name: "qty", Type: lpq.Int64},
		{Name: "price", Type: lpq.Float64},
		{Name: "flag", Type: lpq.String},
		{Name: "comment", Type: lpq.String},
	}
	w := lpq.NewWriter(schema, lpq.DefaultWriterOptions())

	v := &Version{}
	// Aggregate accumulators across row groups.
	var (
		countQty25          float64
		sumQtyFlagA         float64
		sumPriceQty10, nQ10 float64
		countR5, sumPriceR5 float64
	)
	const rowGroups = 2
	next := int64(0)
	var allID, allQty []int64
	var allPrice []float64
	var allFlag []string
	for g := 0; g < rowGroups; g++ {
		ids := make([]int64, rowsPerGroup)
		qty := make([]int64, rowsPerGroup)
		price := make([]float64, rowsPerGroup)
		flag := make([]string, rowsPerGroup)
		comment := make([]string, rowsPerGroup)
		for i := 0; i < rowsPerGroup; i++ {
			ids[i] = next
			next++
			qty[i] = int64(rng.Intn(50))
			price[i] = float64(rng.Intn(10000)) / 100
			flag[i] = []string{"A", "N", "R"}[rng.Intn(3)]
			comment[i] = fmt.Sprintf("v%d order %d notes %d", ver, rng.Intn(1000), rng.Intn(10))

			if qty[i] > 25 {
				countQty25++
			}
			if flag[i] == "A" {
				sumQtyFlagA += float64(qty[i])
			}
			if qty[i] > 10 {
				sumPriceQty10 += price[i]
				nQ10++
			}
			if flag[i] == "R" && qty[i] > 5 {
				countR5++
				sumPriceR5 += price[i]
			}
		}
		allID = append(allID, ids...)
		allQty = append(allQty, qty...)
		allPrice = append(allPrice, price...)
		allFlag = append(allFlag, flag...)
		cols := []lpq.ColumnData{
			lpq.IntColumn(ids), lpq.IntColumn(qty), lpq.FloatColumn(price),
			lpq.StringColumn(flag), lpq.StringColumn(comment),
		}
		if err := w.WriteRowGroup(cols); err != nil {
			return nil, fmt.Errorf("loadgen: generating %s v%d: %w", ObjectName(obj), ver, err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		return nil, fmt.Errorf("loadgen: generating %s v%d: %w", ObjectName(obj), ver, err)
	}
	avgPriceQty10 := 0.0
	if nQ10 > 0 {
		avgPriceQty10 = sumPriceQty10 / nQ10
	}
	v.Data = data
	v.CRC = crc32.Checksum(data, castagnoli)
	v.Answers = [numQueryTemplates][]float64{
		{countQty25},
		{sumQtyFlagA},
		{avgPriceQty10},
		{countR5, sumPriceR5},
	}
	v.Tables[4] = refGroupByFlag(allFlag, allPrice, allQty)
	v.Tables[5] = refTopQtyCounts(allQty)
	v.Tables[6] = refTopPrices(allID, allPrice)
	return v, nil
}

// refGroupByFlag computes template 4: per-flag COUNT(id), SUM(price),
// AVG(qty), rows ordered by flag ascending.
func refGroupByFlag(flag []string, price []float64, qty []int64) [][]sql.Literal {
	type acc struct {
		n        int64
		sumPrice float64
		sumQty   float64
	}
	accs := map[string]*acc{}
	for i, f := range flag {
		a := accs[f]
		if a == nil {
			a = &acc{}
			accs[f] = a
		}
		a.n++
		a.sumPrice += price[i]
		a.sumQty += float64(qty[i])
	}
	keys := make([]string, 0, len(accs))
	for k := range accs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rows [][]sql.Literal
	for _, k := range keys {
		a := accs[k]
		rows = append(rows, []sql.Literal{
			sql.StringLit(k), sql.IntLit(a.n),
			sql.FloatLit(a.sumPrice), sql.FloatLit(a.sumQty / float64(a.n)),
		})
	}
	return rows
}

// refTopQtyCounts computes template 5: COUNT(id) per qty >= 40, ordered by
// count descending then qty ascending, top 3.
func refTopQtyCounts(qty []int64) [][]sql.Literal {
	counts := map[int64]int64{}
	for _, q := range qty {
		if q >= 40 {
			counts[q]++
		}
	}
	type kv struct{ q, n int64 }
	var all []kv
	for q, n := range counts {
		all = append(all, kv{q, n})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		return all[a].q < all[b].q
	})
	if len(all) > 3 {
		all = all[:3]
	}
	var rows [][]sql.Literal
	for _, e := range all {
		rows = append(rows, []sql.Literal{sql.IntLit(e.q), sql.IntLit(e.n)})
	}
	return rows
}

// refTopPrices computes template 6: (id, price) for the 4 highest prices,
// descending, ties broken by original row order (ascending id) — the same
// tie rule the store's top-k uses ((row group, row) ascending).
func refTopPrices(id []int64, price []float64) [][]sql.Literal {
	perm := make([]int, len(id))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return price[perm[a]] > price[perm[b]] })
	if len(perm) > 4 {
		perm = perm[:4]
	}
	var rows [][]sql.Literal
	for _, i := range perm {
		rows = append(rows, []sql.Literal{sql.IntLit(id[i]), sql.FloatLit(price[i])})
	}
	return rows
}
