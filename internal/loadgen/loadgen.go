// Package loadgen is the open-loop load harness: it drives a Fusion store
// with a fixed *arrival rate* of mixed Get/Put/Query traffic against a
// seeded multi-object corpus, measures per-op latency percentiles from the
// scheduled arrival time (not the dispatch time, so queueing under overload
// is charged to the system — no coordinated omission), verifies every read
// against a content oracle, and renders SLO pass/fail verdicts.
//
// Open loop versus closed loop: a closed-loop driver with N workers issues
// the next request only after the previous one returns, so when the system
// slows down the offered load politely slows down with it and tail latency
// is hidden. An open-loop driver commits to an arrival schedule up front
// (here: seeded Poisson arrivals at Config.Rate) and charges each request's
// latency from its scheduled arrival; a stall shows up as a growing backlog
// and exploding p99.9, which is what a latency SLO is supposed to see.
//
// The whole schedule — arrival times, op kinds, object choices, range and
// query parameters — is computed deterministically from (Config.Seed,
// Config) before the clock starts, so a failing soak reproduces from its
// logged seed.
//
// The harness is transport-agnostic: anything implementing Target (a
// *store.Store via StoreTarget, over simnet or real tcpnet sockets, with or
// without a faultnet injector in between) can be driven.
package loadgen

import (
	"fmt"
	"math/rand"
	"time"
)

// OpKind enumerates the generated operation types.
type OpKind uint8

const (
	// OpGet reads an object (full-object or range read).
	OpGet OpKind = iota
	// OpPut overwrites a mutable object with its next seeded version.
	OpPut
	// OpQuery runs one of the fixed analytical query templates.
	OpQuery
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	default:
		return "query"
	}
}

// Mix is the relative weight of each op kind in the arrival stream. Weights
// need not sum to 1; they are normalized. The zero Mix defaults to the
// read-heavy analytics mix 80/5/15.
type Mix struct {
	Get   float64 `json:"get"`
	Put   float64 `json:"put"`
	Query float64 `json:"query"`
}

// DefaultMix is the read-heavy analytics default: 80% Get, 5% Put, 15% Query.
func DefaultMix() Mix { return Mix{Get: 0.80, Put: 0.05, Query: 0.15} }

func (m Mix) normalized() Mix {
	if m.Get <= 0 && m.Put <= 0 && m.Query <= 0 {
		m = DefaultMix()
	}
	total := m.Get + m.Put + m.Query
	return Mix{Get: m.Get / total, Put: m.Put / total, Query: m.Query / total}
}

// Config parameterizes one load run.
type Config struct {
	// Seed drives the whole schedule and the corpus contents.
	Seed int64
	// Rate is the open-loop arrival rate in operations per second.
	Rate float64
	// Duration is the arrival-schedule horizon; arrivals stop after it
	// (in-flight operations still drain and are measured).
	Duration time.Duration
	// MaxOps caps the schedule length regardless of Duration (0 = no cap).
	MaxOps int
	// Mix is the op-kind mix (zero value = DefaultMix).
	Mix Mix
	// Objects is the corpus size (default 32). The first half is immutable
	// (range reads verify against fixed bytes); the second half is the
	// mutable set puts overwrite.
	Objects int
	// RowsPerObject scales each corpus object (rows per row group,
	// default 160).
	RowsPerObject int
	// RangeFrac is the fraction of Gets that are range reads on immutable
	// objects rather than full-object reads (default 0.5).
	RangeFrac float64
	// MaxInflight bounds concurrently outstanding operations — a memory
	// guard, not a concurrency knob: when the bound is hit the dispatcher
	// stalls, but latency is still charged from the scheduled arrival time,
	// so the overload stays visible in the percentiles. Default 4096.
	MaxInflight int
	// Tenant, when non-empty, tags every operation's context with this
	// tenant (sched.WithTenant) so the store's admission scheduler accounts
	// and queues the stream under that tenant's weight. It does not affect
	// the schedule: the same (Seed, rates, mix) yields byte-identical
	// arrivals with or without a tenant.
	Tenant string
	// OpDeadline, when positive, attaches an end-to-end deadline to every
	// operation's context — the budget the deadline-propagation path carries
	// through retries, hedges and onto the wire to the nodes. Expired and
	// shed operations fail with classified errors (deadline, overloaded);
	// they are data, not harness failures. Like Tenant, it never perturbs
	// the arrival schedule.
	OpDeadline time.Duration
	// SLOs are the pass/fail targets evaluated over the run. Nil applies
	// DefaultSLOs.
	SLOs []SLO
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Objects <= 0 {
		c.Objects = 32
	}
	if c.Objects < 2 {
		c.Objects = 2
	}
	if c.RowsPerObject <= 0 {
		c.RowsPerObject = 160
	}
	if c.RangeFrac < 0 || c.RangeFrac > 1 {
		c.RangeFrac = 0.5
	} else if c.RangeFrac == 0 {
		c.RangeFrac = 0.5
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4096
	}
	if c.SLOs == nil {
		c.SLOs = DefaultSLOs()
	}
	c.Mix = c.Mix.normalized()
	return c
}

// Op is one scheduled operation. Every field is fixed at schedule-build
// time; executing the schedule consults no further randomness.
type Op struct {
	// At is the scheduled arrival offset from the run start.
	At time.Duration
	// Kind is the operation type.
	Kind OpKind
	// Object is the corpus object index the op targets.
	Object int
	// Arg parameterizes the op: for range Gets it seeds the offset/length
	// draw, for Queries it selects the template. ^0 on a Get marks a
	// full-object read.
	Arg uint64
}

// fullGetArg marks a full-object Get in Op.Arg.
const fullGetArg = ^uint64(0)

// BuildSchedule computes the deterministic open-loop arrival schedule for a
// config: Poisson arrivals (seeded exponential inter-arrival gaps) at
// cfg.Rate over cfg.Duration, each op's kind drawn from the mix and its
// target and parameters drawn from the same generator. The same (seed,
// config) always yields the identical schedule, byte for byte.
func BuildSchedule(cfg Config) []Op {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	immutable, mutable := corpusSplit(cfg.Objects)

	var ops []Op
	at := time.Duration(0)
	for {
		// Exponential inter-arrival gap: Poisson process at cfg.Rate.
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		at += gap
		if at > cfg.Duration {
			break
		}
		if cfg.MaxOps > 0 && len(ops) >= cfg.MaxOps {
			break
		}
		op := Op{At: at}
		draw := rng.Float64()
		switch {
		case draw < cfg.Mix.Get:
			op.Kind = OpGet
			if rng.Float64() < cfg.RangeFrac {
				// Range read: immutable objects only, so the expected bytes
				// are version-independent.
				op.Object = immutable[rng.Intn(len(immutable))]
				op.Arg = rng.Uint64()
			} else {
				op.Object = rng.Intn(cfg.Objects)
				op.Arg = fullGetArg
			}
		case draw < cfg.Mix.Get+cfg.Mix.Put:
			op.Kind = OpPut
			op.Object = mutable[rng.Intn(len(mutable))]
			op.Arg = rng.Uint64()
		default:
			op.Kind = OpQuery
			op.Object = rng.Intn(cfg.Objects)
			op.Arg = uint64(rng.Intn(numQueryTemplates))
		}
		ops = append(ops, op)
	}
	return ops
}

// corpusSplit partitions object indexes into the immutable and mutable
// halves.
func corpusSplit(objects int) (immutable, mutable []int) {
	cut := objects / 2
	if cut == 0 {
		cut = 1
	}
	for i := 0; i < objects; i++ {
		if i < cut {
			immutable = append(immutable, i)
		} else {
			mutable = append(mutable, i)
		}
	}
	return immutable, mutable
}

// ObjectName returns the corpus object name for an index.
func ObjectName(i int) string { return fmt.Sprintf("load-obj-%03d", i) }
