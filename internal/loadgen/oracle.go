package loadgen

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"github.com/fusionstore/fusion/internal/sql"
)

// ErrOracleMismatch is the sentinel wrapped by every content-verification
// failure: the store returned bytes or aggregates matching no version it
// could legally serve. Any occurrence is a correctness bug.
var ErrOracleMismatch = errors.New("loadgen: oracle mismatch")

// Oracle is the harness's ground truth: it holds every generated version of
// every corpus object and decides, per response, which versions a correct
// store could legally have served. Verification is two-layered, per the
// chaos contract: a CRC32C fast path over the returned bytes, then a full
// byte-for-byte comparison — so a corruption that slips past (or forges)
// every checksum in the system still trips the content check.
//
// Concurrency model: puts are serialized per object (BeginPut returns false
// while another put on the same object is in flight), so each object's
// version history is a clean linear order. Reads record the current
// committed version at start and the highest *begun* version at completion;
// any version in that window is admissible — a read overlapping an
// overwrite may see either side of it, but a read strictly after a
// successful overwrite must see the new bytes, and no read may ever see a
// byte string that is not exactly one generated version (the PR 4
// old-or-new-never-hybrid invariant, now enforced under load).
type Oracle struct {
	seed int64
	rows int

	mu   sync.Mutex
	objs []*objHistory
}

type objHistory struct {
	// versions[i] is version i; version 0 is the preloaded content.
	versions []*Version
	// committed is the highest version whose Put returned success.
	committed int
	// begun is the highest version whose Put was issued (a put that failed
	// after the commit point may still be visible, so begun — not committed
	// — is the admissible upper bound).
	begun int
	// putting reports an in-flight put (puts are serialized per object).
	putting bool
}

// NewOracle builds the oracle and generates version 0 of every object.
func NewOracle(seed int64, objects, rowsPerObject int) (*Oracle, error) {
	o := &Oracle{seed: seed, rows: rowsPerObject}
	for i := 0; i < objects; i++ {
		v0, err := GenVersion(seed, i, 0, rowsPerObject)
		if err != nil {
			return nil, err
		}
		o.objs = append(o.objs, &objHistory{versions: []*Version{v0}})
	}
	return o, nil
}

// Objects returns the corpus size.
func (o *Oracle) Objects() int { return len(o.objs) }

// Initial returns version 0 of an object, for preloading the store.
func (o *Oracle) Initial(obj int) *Version {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.objs[obj].versions[0]
}

// BeginPut reserves the object's next version and returns its content. It
// returns ok=false when a put on the same object is already in flight
// (callers coalesce or retarget — per-object puts are serialized so the
// version history stays linear).
func (o *Oracle) BeginPut(obj int) (ver int, v *Version, ok bool, err error) {
	o.mu.Lock()
	h := o.objs[obj]
	if h.putting {
		o.mu.Unlock()
		return 0, nil, false, nil
	}
	h.putting = true
	ver = h.begun + 1
	o.mu.Unlock()

	// Generation happens outside the lock; it is deterministic, so a given
	// (obj, ver) always regenerates identical bytes.
	v, err = GenVersion(o.seed, obj, ver, o.rows)
	if err != nil {
		o.mu.Lock()
		h.putting = false
		o.mu.Unlock()
		return 0, nil, false, err
	}
	o.mu.Lock()
	h.versions = append(h.versions, v)
	h.begun = ver
	o.mu.Unlock()
	return ver, v, true, nil
}

// EndPut records a put's outcome. A successful put advances the committed
// frontier: strictly-later reads must see at least this version. A failed
// put leaves the frontier alone but the version stays admissible — the
// store's commit point may have passed before the error (e.g. a crash
// during the commit fan-out), in which case serving it forever is correct.
func (o *Oracle) EndPut(obj, ver int, success bool) {
	o.mu.Lock()
	h := o.objs[obj]
	h.putting = false
	if success && ver > h.committed {
		h.committed = ver
	}
	o.mu.Unlock()
}

// ReadWindow snapshots the admissibility lower bound for a read that is
// about to start: the currently committed version.
func (o *Oracle) ReadWindow(obj int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.objs[obj].committed
}

// admissible returns the versions a read with the given window may return:
// every version from lo (committed at read start) through the highest begun
// version at read completion.
func (o *Oracle) admissible(obj, lo int) []*Version {
	o.mu.Lock()
	defer o.mu.Unlock()
	h := o.objs[obj]
	hi := h.begun
	if lo > hi {
		lo = hi
	}
	out := make([]*Version, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, h.versions[v])
	}
	return out
}

// CheckGet verifies a Get response: the returned bytes must be exactly the
// requested slice of one admissible version. length 0 means read-to-end
// (the store's full-object read). The CRC fast path runs first; on a full
// read whose CRC matches a version, the content comparison still runs — the
// oracle trusts bytes, not checksums.
func (o *Oracle) CheckGet(obj, lo int, offset, length uint64, got []byte) error {
	versions := o.admissible(obj, lo)
	for _, v := range versions {
		want, ok := sliceVersion(v.Data, offset, length)
		if !ok {
			continue
		}
		if length == 0 && offset == 0 {
			// Whole-object read: CRC fast path, then bytes.
			if crc32.Checksum(got, castagnoli) != v.CRC {
				continue
			}
		}
		if bytes.Equal(got, want) {
			return nil
		}
	}
	return fmt.Errorf("%w: %s [%d+%d] returned %d bytes matching none of %d admissible versions (window base v%d)",
		ErrOracleMismatch, ObjectName(obj), offset, length, len(got), len(versions), lo)
}

// sliceVersion mirrors the store's Get range semantics over reference
// bytes: length 0 reads to the end; out-of-range requests are unservable
// from this version.
func sliceVersion(data []byte, offset, length uint64) ([]byte, bool) {
	if offset > uint64(len(data)) {
		return nil, false
	}
	if length == 0 {
		return data[offset:], true
	}
	if offset+length > uint64(len(data)) {
		return nil, false
	}
	return data[offset : offset+length], true
}

// Float aggregate comparison is relative-or-absolute, whichever is larger:
// a flat absolute tolerance is wrong for large SUMs (the legitimate
// association-order error scales with the magnitude) and far too loose for
// small AVGs (where 1e-6 absolute would forgive real bugs). The store
// accumulates in a different association order than the reference, so the
// legitimate disagreement is a few ulps scaled by the row count — 1e-9
// relative bounds it with orders of magnitude to spare while still catching
// any semantic error.
const (
	aggRelTolerance = 1e-9
	aggAbsTolerance = 1e-9
)

func floatClose(want, got float64) bool {
	return math.Abs(got-want) <= math.Max(aggAbsTolerance, aggRelTolerance*math.Abs(want))
}

// CheckQuery verifies a query result's aggregate row against the reference
// answers of every admissible version.
func (o *Oracle) CheckQuery(obj, lo, template int, aggs []sql.Literal) error {
	versions := o.admissible(obj, lo)
	for _, v := range versions {
		if aggRowMatches(v.Answers[template], aggs) {
			return nil
		}
	}
	return fmt.Errorf("%w: query t%d on %s returned %v, matching none of %d admissible versions (window base v%d)",
		ErrOracleMismatch, template, ObjectName(obj), aggs, len(versions), lo)
}

func aggRowMatches(want []float64, got []sql.Literal) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if !floatClose(want[i], got[i].AsFloat()) {
			return false
		}
	}
	return true
}

// CheckQueryTable verifies a table-shaped query result (GROUP BY or ORDER
// BY+LIMIT template) against the reference tables of every admissible
// version: same row count, same row order, keys and integer aggregates
// exact, float aggregates within tolerance.
func (o *Oracle) CheckQueryTable(obj, lo, template int, rows [][]sql.Literal) error {
	versions := o.admissible(obj, lo)
	for _, v := range versions {
		if tableMatches(v.Tables[template], rows) {
			return nil
		}
	}
	return fmt.Errorf("%w: query t%d on %s returned %d rows matching none of %d admissible versions (window base v%d)",
		ErrOracleMismatch, template, ObjectName(obj), len(rows), len(versions), lo)
}

func tableMatches(want, got [][]sql.Literal) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return false
		}
		for j := range want[i] {
			w, g := want[i][j], got[i][j]
			if w.Kind == sql.LitFloat || g.Kind == sql.LitFloat {
				if !floatClose(w.AsFloat(), g.AsFloat()) {
					return false
				}
				continue
			}
			if w != g {
				return false
			}
		}
	}
	return true
}

// RangeFor derives a deterministic in-bounds (offset, length) range read
// from an op's Arg draw over version-0 bytes (range reads target immutable
// objects, so version 0 is the only version).
func (o *Oracle) RangeFor(obj int, arg uint64) (offset, length uint64) {
	size := uint64(len(o.Initial(obj).Data))
	if size == 0 {
		return 0, 0
	}
	offset = (arg >> 32) % size
	rest := size - offset
	length = arg%rest + 1
	return offset, length
}
