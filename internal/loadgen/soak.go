package loadgen

import (
	"fmt"
	"time"

	"github.com/fusionstore/fusion/internal/faultnet"
	"github.com/fusionstore/fusion/internal/rpc"
)

// SoakConfig parameterizes a chaos-under-load soak: the load run itself
// plus the fault schedule driven concurrently with it.
type SoakConfig struct {
	// Load is the traffic to sustain while faults fire.
	Load Config
	// Chaos drives the crash-walk (node crashes and revivals). MaxDown
	// must stay at or below the code's n−k tolerance for the availability
	// floor to be assertable.
	Chaos faultnet.ChaosConfig
	// CorruptProb injects in-flight response corruption on block reads at
	// this per-call probability (0 disables). The store's CRC layers must
	// catch these and reconstruct; the oracle then proves the recovery
	// produced the right bytes.
	CorruptProb float64
	// SlowProb injects SlowDelay-long stalls at this per-call probability
	// (0 disables) — tail-latency pressure, not failures.
	SlowProb float64
	// SlowDelay is the injected stall length (default 2ms).
	SlowDelay time.Duration
	// ReadAvailabilityFloor is the Get+Query availability the soak must
	// hold while the crash-walk stays within tolerance (default 0.99).
	// Puts are excluded: a stripe write legitimately fails while any
	// placement node is down, and those failures are asserted to be
	// cleanly classified instead.
	ReadAvailabilityFloor float64
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.SlowDelay <= 0 {
		c.SlowDelay = 2 * time.Millisecond
	}
	if c.ReadAvailabilityFloor <= 0 {
		c.ReadAvailabilityFloor = 0.99
	}
	return c
}

// SoakStats is a soak run's outcome: the load stats plus the fault
// schedule that ran against it and the resulting verdict.
type SoakStats struct {
	Run   *RunStats           `json:"run"`
	Chaos faultnet.ChaosStats `json:"chaos"`
	// InjectedFaults is the injector's total fired-fault count (crashes
	// via the walk are separate, in Chaos).
	InjectedFaults uint64 `json:"injected_faults"`
	// ReadAvailability is Get+Query availability over the run.
	ReadAvailability float64 `json:"read_availability"`
	// Floor echoes the asserted floor.
	Floor float64 `json:"floor"`
	// Pass is the soak verdict: read availability at or above the floor,
	// zero oracle mismatches, and no unclassified ("other") errors.
	Pass bool `json:"pass"`
	// Failures lists what broke the verdict.
	Failures []string `json:"failures,omitempty"`
}

// Soak preloads the corpus on a healthy cluster, then runs the load
// schedule while a seeded crash-walk (plus optional corruption and
// slow-response rules) mutates the injector, and renders the verdict. The
// injector must wrap the transport under the driven store; chaosSeed names
// the walk's schedule for reproduction.
func Soak(target Target, inj *faultnet.Injector, chaosSeed int64, cfg SoakConfig) (*SoakStats, error) {
	cfg = cfg.withDefaults()
	loadCfg := cfg.Load.withDefaults()
	oracle, err := NewOracle(loadCfg.Seed, loadCfg.Objects, loadCfg.RowsPerObject)
	if err != nil {
		return nil, err
	}
	// Preload before any fault fires: the soak measures serving under
	// faults, not loading under faults (that is what put availability
	// during the run measures).
	if err := Preload(target, oracle); err != nil {
		return nil, err
	}

	if cfg.CorruptProb > 0 {
		inj.Add(faultnet.Rule{
			Node: faultnet.NodeAny, Kind: rpc.KindGetBlock,
			Fault: faultnet.FaultCorrupt, Prob: cfg.CorruptProb,
		})
	}
	if cfg.SlowProb > 0 {
		inj.Add(faultnet.Rule{
			Node: faultnet.NodeAny, Kind: faultnet.KindAny,
			Fault: faultnet.FaultSlow, Prob: cfg.SlowProb, Delay: cfg.SlowDelay,
		})
	}
	chaos := faultnet.StartChaos(inj, chaosSeed, cfg.Chaos)
	run, err := RunPreloaded(target, oracle, loadCfg)
	chaos.Stop()
	inj.ClearRules()
	if err != nil {
		return nil, err
	}

	st := &SoakStats{
		Run:              run,
		Chaos:            chaos.Stats(),
		InjectedFaults:   inj.InjectedTotal(),
		ReadAvailability: run.ReadAvailability(),
		Floor:            cfg.ReadAvailabilityFloor,
		Pass:             true,
	}
	fail := func(format string, args ...any) {
		st.Pass = false
		st.Failures = append(st.Failures, fmt.Sprintf(format, args...))
	}
	if run.OracleMismatches != 0 {
		fail("%d oracle mismatches (first: %v)", run.OracleMismatches, run.MismatchSamples)
	}
	if st.ReadAvailability < cfg.ReadAvailabilityFloor {
		fail("read availability %.4f below floor %.4f", st.ReadAvailability, cfg.ReadAvailabilityFloor)
	}
	for kind, ops := range run.PerOp {
		if n := ops.Errors[ErrClassOther]; n > 0 {
			fail("%d unclassified %s errors", n, kind)
		}
	}
	return st, nil
}
