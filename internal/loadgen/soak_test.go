package loadgen

import (
	"os"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/faultnet"
	"github.com/fusionstore/fusion/internal/simnet"
)

// soakFixture builds an injector-wrapped 9-node store plus the soak config
// used by both the CI gate and the nightly run.
func soakFixture(t testing.TB, seed int64, load Config) (*faultnet.Injector, SoakConfig, Target) {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cfg.Nodes = 9
	inj := faultnet.New(simnet.New(cfg), seed)
	s := testStore(t, inj, seed)
	sc := SoakConfig{
		Load: load,
		Chaos: faultnet.ChaosConfig{
			MaxDown:    2, // below RS(9,6)'s n−k = 3: every fault pattern is tolerable
			ToggleProb: 0.6,
			Step:       20 * time.Millisecond,
		},
		CorruptProb:           0.02,
		SlowProb:              0.03,
		SlowDelay:             time.Millisecond,
		ReadAvailabilityFloor: 0.99,
	}
	return inj, sc, StoreTarget{S: s}
}

func checkSoak(t *testing.T, st *SoakStats) {
	t.Helper()
	if st.Run.OracleMismatches != 0 {
		t.Errorf("CORRUPTION: %d oracle mismatches: %v", st.Run.OracleMismatches, st.Run.MismatchSamples)
	}
	if !st.Pass {
		t.Errorf("soak verdict failed: %v", st.Failures)
	}
	if st.ReadAvailability < st.Floor {
		t.Errorf("read availability %.4f below floor %.2f", st.ReadAvailability, st.Floor)
	}
	if t.Failed() {
		t.Fatalf("soak stats: crashes=%d revives=%d maxDown=%d injected=%d checks=%d degraded=%d retries=%d",
			st.Chaos.Crashes, st.Chaos.Revives, st.Chaos.MaxSimultaneousDown, st.InjectedFaults,
			st.Run.OracleChecks, st.Run.Trace.DegradedReads, st.Run.Trace.Retries)
	}
	t.Logf("soak: readAvail=%.4f crashes=%d (≤%d down) injected=%d checks=%d degraded=%d retries=%d",
		st.ReadAvailability, st.Chaos.Crashes, st.Chaos.MaxSimultaneousDown,
		st.InjectedFaults, st.Run.OracleChecks, st.Run.Trace.DegradedReads, st.Run.Trace.Retries)
}

// TestChaosSoakUnderLoad is the PR's availability gate: the faultnet
// crash-walk (node crashes and revivals up to 2 simultaneous), response
// corruption and slow-node stalls all run *while* the open-loop generator
// serves mixed traffic, and the run must hold the 99% read-availability
// floor with zero oracle mismatches — every Get and Query response
// content-verified against the seeded corpus. The walk stays within the
// code's declared tolerance, so anything below the floor is a bug, not bad
// luck; reproduce a failure with the seeds logged in the stats line.
func TestChaosSoakUnderLoad(t *testing.T) {
	inj, sc, target := soakFixture(t, 31, Config{
		Seed:          31,
		Rate:          400,
		Duration:      700 * time.Millisecond,
		Objects:       10,
		RowsPerObject: 40,
	})
	st, err := Soak(target, inj, 32, sc)
	if err != nil {
		t.Fatal(err)
	}
	checkSoak(t, st)
	if st.Chaos.Crashes == 0 && st.InjectedFaults == 0 {
		t.Fatal("soak ran with no faults at all — the gate proved nothing")
	}
}

// TestChaosSoakNightly is the long soak, opt-in via FUSION_SOAK=1 (CI runs
// it on the nightly schedule): tens of seconds of sustained traffic under
// the same crash-walk, long enough for many crash/revive cycles, cache
// churn and repair traffic to interleave.
func TestChaosSoakNightly(t *testing.T) {
	if os.Getenv("FUSION_SOAK") != "1" {
		t.Skip("long soak; set FUSION_SOAK=1 to run")
	}
	inj, sc, target := soakFixture(t, 41, Config{
		Seed:          41,
		Rate:          600,
		Duration:      20 * time.Second,
		Objects:       24,
		RowsPerObject: 80,
	})
	st, err := Soak(target, inj, 42, sc)
	if err != nil {
		t.Fatal(err)
	}
	checkSoak(t, st)
	if st.Chaos.Crashes < 10 {
		t.Errorf("20s walk produced only %d crashes — chaos misconfigured?", st.Chaos.Crashes)
	}
}
