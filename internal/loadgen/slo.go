package loadgen

import (
	"fmt"
	"time"
)

// SLO is one op kind's service-level objective: latency ceilings at the
// three tracked percentiles plus an availability floor. A zero latency
// field means "not bounded"; Availability 0 means "not bounded".
type SLO struct {
	Op           OpKind
	P50          time.Duration
	P99          time.Duration
	P999         time.Duration
	Availability float64 // fraction of attempted ops that must succeed
}

// DefaultSLOs are deliberately loose wall-clock targets for the simnet
// harness — they catch an order-of-magnitude regression or an availability
// hole, not a few-percent drift (the trajectory numbers in BENCH_load.json
// track drift). Tighten per deployment via Config.SLOs.
func DefaultSLOs() []SLO {
	return []SLO{
		{Op: OpGet, P50: 50 * time.Millisecond, P99: 250 * time.Millisecond, P999: time.Second, Availability: 0.999},
		{Op: OpPut, P50: 100 * time.Millisecond, P99: 500 * time.Millisecond, P999: 2 * time.Second, Availability: 0.999},
		{Op: OpQuery, P50: 100 * time.Millisecond, P99: 500 * time.Millisecond, P999: 2 * time.Second, Availability: 0.999},
	}
}

// Verdict is one SLO's evaluation over a run.
type Verdict struct {
	Op   string `json:"op"`
	Pass bool   `json:"pass"`
	// Violations lists each bound the run broke, human-readable.
	Violations []string `json:"violations,omitempty"`
	// Observed values, microseconds / fraction.
	P50Us        float64 `json:"p50_us"`
	P99Us        float64 `json:"p99_us"`
	P999Us       float64 `json:"p999_us"`
	Availability float64 `json:"availability"`
}

// evaluateSLOs renders verdicts for every configured SLO whose op kind saw
// traffic.
func evaluateSLOs(stats *RunStats, slos []SLO) []Verdict {
	var out []Verdict
	for _, slo := range slos {
		ops := stats.PerOp[slo.Op.String()]
		if ops == nil || ops.Attempted == 0 {
			continue
		}
		v := Verdict{
			Op:           slo.Op.String(),
			Pass:         true,
			P50Us:        ops.P50Us,
			P99Us:        ops.P99Us,
			P999Us:       ops.P999Us,
			Availability: ops.Availability(),
		}
		check := func(name string, gotUs float64, bound time.Duration) {
			if bound <= 0 {
				return
			}
			boundUs := float64(bound) / float64(time.Microsecond)
			if gotUs > boundUs {
				v.Pass = false
				v.Violations = append(v.Violations,
					fmt.Sprintf("%s %s %.0fµs > %.0fµs", v.Op, name, gotUs, boundUs))
			}
		}
		check("p50", v.P50Us, slo.P50)
		check("p99", v.P99Us, slo.P99)
		check("p99.9", v.P999Us, slo.P999)
		if slo.Availability > 0 && v.Availability < slo.Availability {
			v.Pass = false
			v.Violations = append(v.Violations,
				fmt.Sprintf("%s availability %.4f < %.4f", v.Op, v.Availability, slo.Availability))
		}
		out = append(out, v)
	}
	return out
}

// AllPass reports whether every verdict passed.
func AllPass(vs []Verdict) bool {
	for _, v := range vs {
		if !v.Pass {
			return false
		}
	}
	return true
}
