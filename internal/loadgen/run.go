package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/faultnet"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/sql"
	"github.com/fusionstore/fusion/internal/store"
	"github.com/fusionstore/fusion/internal/trace"
)

// Target is the system under load. *store.Store satisfies it via
// StoreTarget; tests interpose middleware (e.g. response corruption) the
// same way.
type Target interface {
	Get(ctx context.Context, name string, offset, length uint64) ([]byte, error)
	Put(ctx context.Context, name string, data []byte) error
	Query(ctx context.Context, q string) (*store.Result, error)
}

// StoreTarget adapts a *store.Store to Target.
type StoreTarget struct{ S *store.Store }

// Get implements Target.
func (t StoreTarget) Get(ctx context.Context, name string, offset, length uint64) ([]byte, error) {
	return t.S.GetContext(ctx, name, offset, length)
}

// Put implements Target.
func (t StoreTarget) Put(ctx context.Context, name string, data []byte) error {
	_, err := t.S.PutContext(ctx, name, data)
	return err
}

// Query implements Target.
func (t StoreTarget) Query(ctx context.Context, q string) (*store.Result, error) {
	return t.S.QueryContext(ctx, q)
}

// Error taxonomy classes. Every failed op lands in exactly one.
const (
	ErrClassNodeDown        = "node_down"
	ErrClassTooManyFailures = "too_many_failures"
	ErrClassInjected        = "injected"
	ErrClassClientCrashed   = "client_crashed"
	ErrClassOracleMismatch  = "oracle_mismatch"
	// ErrClassOverloaded marks ops the admission scheduler shed
	// (sched.ErrOverloaded): the system explicitly refusing work it cannot
	// serve within SLO, as opposed to timing out while pretending it can.
	ErrClassOverloaded = "overloaded"
	// ErrClassDeadline marks ops that ran out of their end-to-end budget
	// (context deadline exceeded or cancelled), whether the coordinator, a
	// retry/backoff, or a node-side expiry check called it.
	ErrClassDeadline = "deadline"
	ErrClassOther    = "other"
)

// classify maps an op error to its taxonomy class.
func classify(err error) string {
	switch {
	case errors.Is(err, sched.ErrOverloaded):
		return ErrClassOverloaded
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ErrClassDeadline
	case errors.Is(err, store.ErrTooManyFailures):
		return ErrClassTooManyFailures
	case errors.Is(err, cluster.ErrNodeDown):
		return ErrClassNodeDown
	case errors.Is(err, faultnet.ErrClientCrashed):
		return ErrClassClientCrashed
	case errors.Is(err, faultnet.ErrInjected):
		return ErrClassInjected
	default:
		return ErrClassOther
	}
}

// OpStats is one op kind's outcome summary.
type OpStats struct {
	Attempted uint64            `json:"attempted"`
	Succeeded uint64            `json:"succeeded"`
	Failed    uint64            `json:"failed"`
	Coalesced uint64            `json:"coalesced,omitempty"` // puts skipped: same-object put already in flight
	Errors    map[string]uint64 `json:"errors,omitempty"`
	P50Us     float64           `json:"p50_us"`
	P99Us     float64           `json:"p99_us"`
	P999Us    float64           `json:"p999_us"`
	MeanUs    float64           `json:"mean_us"`
	MaxUs     float64           `json:"max_us"`
}

// Availability is the fraction of attempted ops that succeeded (1 when
// nothing was attempted).
func (o *OpStats) Availability() float64 {
	if o == nil || o.Attempted == 0 {
		return 1
	}
	return float64(o.Succeeded) / float64(o.Attempted)
}

// Shed counts ops the admission scheduler rejected with ErrOverloaded.
func (o *OpStats) Shed() uint64 {
	if o == nil {
		return 0
	}
	return o.Errors[ErrClassOverloaded]
}

// AdmittedAvailability is availability over admitted ops only: shed ops are
// excluded from the denominator, because an explicit, classified rejection
// the client can retry is the load shedder working as designed — what this
// metric must expose is work the system *accepted* and then failed.
func (o *OpStats) AdmittedAvailability() float64 {
	if o == nil {
		return 1
	}
	admitted := o.Attempted - o.Shed()
	if admitted == 0 {
		return 1
	}
	return float64(o.Succeeded) / float64(admitted)
}

// TraceTotals aggregates the request-span counters over every op of a run —
// the same counters /debug/fusionz reports per request, here as run totals.
type TraceTotals struct {
	Retries        uint64 `json:"retries"`
	Hedges         uint64 `json:"hedges"`
	DegradedReads  uint64 `json:"degraded_reads"`
	CacheHits      uint64 `json:"cache_hits"`
	BytesFromNodes uint64 `json:"bytes_from_nodes"`
	RoundTrips     uint64 `json:"round_trips"`
}

// RunStats is one load run's machine-readable outcome.
type RunStats struct {
	// RateOps is the configured open-loop arrival rate.
	RateOps float64 `json:"rate_ops"`
	// AchievedOps is scheduled arrivals per second actually issued
	// (arrivals the dispatcher never shed; equals the configured rate
	// unless the schedule was cut short).
	AchievedOps float64 `json:"achieved_ops"`
	// GoodputOps is successful operations per wall-clock second.
	GoodputOps float64 `json:"goodput_ops"`
	// GoodputMBps is payload bytes (Get responses + Put bodies) per second.
	GoodputMBps float64 `json:"goodput_mbps"`
	// WallMS is the measured wall time from first arrival to last
	// completion.
	WallMS float64 `json:"wall_ms"`
	// ScheduledOps is the schedule length.
	ScheduledOps int `json:"scheduled_ops"`
	// PerOp maps op kind → outcome summary. Latency percentiles are
	// arrival-to-completion (open loop: queueing is charged to the system).
	PerOp map[string]*OpStats `json:"per_op"`
	// DispatchLagP99Us is how late the dispatcher launched ops relative to
	// their scheduled arrival — generator health, not system latency.
	DispatchLagP99Us float64 `json:"dispatch_lag_p99_us"`
	// PeakInflight is the maximum concurrently outstanding ops observed.
	PeakInflight int `json:"peak_inflight"`
	// OracleChecks counts verified responses; OracleMismatches counts
	// responses matching no admissible version. Any nonzero mismatch count
	// is a correctness bug, never an acceptable degradation.
	OracleChecks     uint64   `json:"oracle_checks"`
	OracleMismatches uint64   `json:"oracle_mismatches"`
	MismatchSamples  []string `json:"mismatch_samples,omitempty"`
	// Trace aggregates the per-request span counters across the run.
	Trace TraceTotals `json:"trace"`
	// Verdicts are the SLO evaluations; SLOPass is their conjunction.
	Verdicts []Verdict `json:"verdicts"`
	SLOPass  bool      `json:"slo_pass"`
}

// Availability is the overall fraction of attempted ops that succeeded.
func (r *RunStats) Availability() float64 {
	var att, suc uint64
	for _, o := range r.PerOp {
		att += o.Attempted
		suc += o.Succeeded
	}
	if att == 0 {
		return 1
	}
	return float64(suc) / float64(att)
}

// ReadAvailability is availability over Get+Query only — the floor chaos
// soaks gate on (a put is legitimately unservable while any placement node
// is down; a read is not, up to n−k failures).
func (r *RunStats) ReadAvailability() float64 {
	var att, suc uint64
	for _, kind := range []OpKind{OpGet, OpQuery} {
		if o := r.PerOp[kind.String()]; o != nil {
			att += o.Attempted
			suc += o.Succeeded
		}
	}
	if att == 0 {
		return 1
	}
	return float64(suc) / float64(att)
}

// Shed counts ops across all kinds that the admission scheduler rejected.
func (r *RunStats) Shed() uint64 {
	var n uint64
	for _, o := range r.PerOp {
		n += o.Shed()
	}
	return n
}

// AdmittedReadAvailability is read availability with shed reads excluded
// from the denominator — the overload gate's headline number: past the
// saturation knee the store may refuse reads (that shows up in Shed), but
// the reads it admits must still overwhelmingly succeed.
func (r *RunStats) AdmittedReadAvailability() float64 {
	var att, suc uint64
	for _, kind := range []OpKind{OpGet, OpQuery} {
		if o := r.PerOp[kind.String()]; o != nil {
			att += o.Attempted - o.Shed()
			suc += o.Succeeded
		}
	}
	if att == 0 {
		return 1
	}
	return float64(suc) / float64(att)
}

// UnclassifiedErrors counts failures that landed in the catch-all "other"
// class. The shed gate requires this to be zero: under overload every
// rejection must be a typed, retryable error, not mystery breakage.
func (r *RunStats) UnclassifiedErrors() uint64 {
	var n uint64
	for _, o := range r.PerOp {
		n += o.Errors[ErrClassOther]
	}
	return n
}

// runner carries one run's shared state.
type runner struct {
	cfg    Config
	target Target
	oracle *Oracle
	hist   *metrics.HistogramSet

	mu       sync.Mutex
	perOp    map[OpKind]*OpStats
	inflight int
	peak     int
	bytes    uint64
	checks   uint64
	misses   uint64
	missMsgs []string
	trace    TraceTotals
}

// Run preloads the corpus (version 0 of every object) and executes the
// open-loop schedule against the target, returning the measured stats. The
// returned error covers harness failures (corpus generation, preload);
// system-under-test failures are data, reported in the stats.
func Run(target Target, cfg Config) (*RunStats, error) {
	cfg = cfg.withDefaults()
	oracle, err := NewOracle(cfg.Seed, cfg.Objects, cfg.RowsPerObject)
	if err != nil {
		return nil, err
	}
	if err := Preload(target, oracle); err != nil {
		return nil, err
	}
	return RunPreloaded(target, oracle, cfg)
}

// Preload writes version 0 of every corpus object to the target.
func Preload(target Target, oracle *Oracle) error {
	var wg sync.WaitGroup
	errs := make([]error, oracle.Objects())
	sem := make(chan struct{}, 8)
	for i := 0; i < oracle.Objects(); i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			v := oracle.Initial(i)
			if err := target.Put(context.Background(), ObjectName(i), v.Data); err != nil {
				errs[i] = fmt.Errorf("loadgen: preload %s: %w", ObjectName(i), err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunPreloaded executes the schedule against a target whose corpus is
// already loaded (the soak controller preloads once, then runs several
// windows against the same oracle so version history spans windows).
func RunPreloaded(target Target, oracle *Oracle, cfg Config) (*RunStats, error) {
	cfg = cfg.withDefaults()
	if oracle.Objects() < cfg.Objects {
		return nil, fmt.Errorf("loadgen: oracle holds %d objects, config wants %d", oracle.Objects(), cfg.Objects)
	}
	r := &runner{
		cfg:    cfg,
		target: target,
		oracle: oracle,
		hist:   metrics.NewHistogramSet(),
		perOp:  map[OpKind]*OpStats{},
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		r.perOp[k] = &OpStats{Errors: map[string]uint64{}}
	}

	schedule := BuildSchedule(cfg)
	sem := make(chan struct{}, cfg.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range schedule {
		op := schedule[i]
		arrival := start.Add(op.At)
		if d := time.Until(arrival); d > 200*time.Microsecond {
			time.Sleep(d)
		}
		r.hist.Observe(lagKey, time.Since(arrival))
		wg.Add(1)
		sem <- struct{}{} // memory guard; lateness it causes stays charged to latency
		r.enter()
		go func(op Op, arrival time.Time) {
			defer wg.Done()
			r.execute(op, arrival)
			r.leave()
			<-sem
		}(op, arrival)
	}
	wg.Wait()
	wall := time.Since(start)
	return r.finish(schedule, wall), nil
}

// TenantRun names one tenant's stream in a multi-tenant run. If Cfg.Tenant
// is empty it defaults to Name, so the store's scheduler accounts the stream
// under the run's name.
type TenantRun struct {
	Name string
	Cfg  Config
}

// RunTenants drives several tenants' schedules concurrently against one
// target sharing a single oracle — the multi-tenant overload experiment: an
// aggressor tenant saturates the store while a latency-sensitive tenant's
// stream measures what admission control preserved for it. The corpus is
// preloaded once; per-tenant stats are returned keyed by tenant name. The
// oracle is concurrency-safe, so cross-tenant puts to the same object
// coalesce exactly as same-tenant ones do.
func RunTenants(target Target, runs []TenantRun) (map[string]*RunStats, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("loadgen: no tenant runs")
	}
	// The shared oracle must hold the largest corpus any tenant touches, and
	// corpus contents are seed-derived: all tenants must agree on the corpus
	// parameters or reads would verify against the wrong bytes.
	base := runs[0].Cfg.withDefaults()
	objects, rows := base.Objects, base.RowsPerObject
	for _, tr := range runs[1:] {
		c := tr.Cfg.withDefaults()
		if c.Seed != base.Seed || c.Objects != objects || c.RowsPerObject != rows {
			return nil, fmt.Errorf("loadgen: tenant %q corpus (seed=%d objects=%d rows=%d) differs from %q (seed=%d objects=%d rows=%d)",
				tr.Name, c.Seed, c.Objects, c.RowsPerObject, runs[0].Name, base.Seed, objects, rows)
		}
	}
	oracle, err := NewOracle(base.Seed, objects, rows)
	if err != nil {
		return nil, err
	}
	if err := Preload(target, oracle); err != nil {
		return nil, err
	}
	out := make(map[string]*RunStats, len(runs))
	errs := make([]error, len(runs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, tr := range runs {
		cfg := tr.Cfg
		if cfg.Tenant == "" {
			cfg.Tenant = tr.Name
		}
		wg.Add(1)
		go func(i int, name string, cfg Config) {
			defer wg.Done()
			stats, err := RunPreloaded(target, oracle, cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[i] = fmt.Errorf("loadgen: tenant %q: %w", name, err)
				return
			}
			out[name] = stats
		}(i, tr.Name, cfg)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

var (
	lagKey = metrics.Key{Op: "load.lag", Node: metrics.NodeNone}
)

func opLatencyKey(k OpKind) metrics.Key {
	return metrics.Key{Op: "load." + k.String(), Node: metrics.NodeNone}
}

func (r *runner) enter() {
	r.mu.Lock()
	r.inflight++
	if r.inflight > r.peak {
		r.peak = r.inflight
	}
	r.mu.Unlock()
}

func (r *runner) leave() {
	r.mu.Lock()
	r.inflight--
	r.mu.Unlock()
}

// execute runs one scheduled op, records its arrival-to-completion latency,
// classifies any failure and verifies successful responses against the
// oracle.
func (r *runner) execute(op Op, arrival time.Time) {
	ctx, sp := trace.Start(context.Background(), "load."+op.Kind.String())
	if r.cfg.Tenant != "" {
		ctx = sched.WithTenant(ctx, r.cfg.Tenant)
	}
	if r.cfg.OpDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.OpDeadline)
		defer cancel()
	}
	var err error
	var payload uint64
	verified := false
	switch op.Kind {
	case OpGet:
		lo := r.oracle.ReadWindow(op.Object)
		var offset, length uint64
		if op.Arg != fullGetArg {
			offset, length = r.oracle.RangeFor(op.Object, op.Arg)
		}
		var got []byte
		got, err = r.target.Get(ctx, ObjectName(op.Object), offset, length)
		if err == nil {
			payload = uint64(len(got))
			err = r.oracle.CheckGet(op.Object, lo, offset, length, got)
			verified = err == nil
		}
	case OpPut:
		ver, v, ok, genErr := r.oracle.BeginPut(op.Object)
		if genErr != nil {
			err = genErr
			break
		}
		if !ok {
			sp.End()
			r.mu.Lock()
			r.perOp[OpPut].Coalesced++
			r.mu.Unlock()
			return
		}
		err = r.target.Put(ctx, ObjectName(op.Object), v.Data)
		r.oracle.EndPut(op.Object, ver, err == nil)
		if err == nil {
			payload = uint64(len(v.Data))
		}
	case OpQuery:
		lo := r.oracle.ReadWindow(op.Object)
		var res *store.Result
		res, err = r.target.Query(ctx, QueryText(int(op.Arg), op.Object))
		if err == nil {
			if TableTemplate(int(op.Arg)) {
				err = r.oracle.CheckQueryTable(op.Object, lo, int(op.Arg), resultRows(res))
			} else {
				var aggs []sql.Literal
				if res != nil {
					aggs = res.AggValues
				}
				err = r.oracle.CheckQuery(op.Object, lo, int(op.Arg), aggs)
			}
			verified = err == nil
		}
	}
	sp.End()
	latency := time.Since(arrival)
	r.hist.Observe(opLatencyKey(op.Kind), latency)

	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.perOp[op.Kind]
	st.Attempted++
	r.trace.Retries += sp.Total(trace.Retries)
	r.trace.Hedges += sp.Total(trace.Hedges)
	r.trace.DegradedReads += sp.Total(trace.DegradedReads)
	r.trace.CacheHits += sp.Total(trace.CacheHits)
	r.trace.BytesFromNodes += sp.Total(trace.BytesFromNodes)
	r.trace.RoundTrips += sp.Total(trace.RoundTrips)
	if verified {
		r.checks++
	}
	if err == nil {
		st.Succeeded++
		r.bytes += payload
		return
	}
	st.Failed++
	class := classify(err)
	if errors.Is(err, ErrOracleMismatch) {
		class = ErrClassOracleMismatch
		r.misses++
		r.checks++
		if len(r.missMsgs) < 8 {
			r.missMsgs = append(r.missMsgs, err.Error())
		}
	}
	st.Errors[class]++
}

// resultRows converts a table-shaped query result into rows of literals for
// oracle comparison.
func resultRows(res *store.Result) [][]sql.Literal {
	if res == nil {
		return nil
	}
	rows := make([][]sql.Literal, res.Rows)
	for i := range rows {
		row := make([]sql.Literal, len(res.Data))
		for j, col := range res.Data {
			switch col.Type {
			case lpq.Int64:
				row[j] = sql.IntLit(col.Ints[i])
			case lpq.Float64:
				row[j] = sql.FloatLit(col.Floats[i])
			default:
				row[j] = sql.StringLit(col.Strings[i])
			}
		}
		rows[i] = row
	}
	return rows
}

// finish summarizes the run.
func (r *runner) finish(schedule []Op, wall time.Duration) *RunStats {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	stats := &RunStats{
		RateOps:      r.cfg.Rate,
		WallMS:       float64(wall) / float64(time.Millisecond),
		ScheduledOps: len(schedule),
		PerOp:        map[string]*OpStats{},
		PeakInflight: r.peak,
	}
	var succeeded uint64
	for k := OpKind(0); k < numOpKinds; k++ {
		st := r.perOp[k]
		if snap, ok := r.hist.Get(opLatencyKey(k)); ok {
			st.P50Us = us(snap.P50)
			st.P99Us = us(snap.P99)
			st.P999Us = us(snap.P999)
			st.MeanUs = us(snap.Mean)
			st.MaxUs = us(snap.Max)
		}
		if len(st.Errors) == 0 {
			st.Errors = nil
		}
		stats.PerOp[k.String()] = st
		succeeded += st.Succeeded
	}
	if lag, ok := r.hist.Get(lagKey); ok {
		stats.DispatchLagP99Us = us(lag.P99)
	}
	if len(schedule) > 0 {
		horizon := schedule[len(schedule)-1].At
		if horizon > 0 {
			stats.AchievedOps = float64(len(schedule)) / horizon.Seconds()
		}
	}
	if wall > 0 {
		stats.GoodputOps = float64(succeeded) / wall.Seconds()
		stats.GoodputMBps = float64(r.bytes) / 1e6 / wall.Seconds()
	}
	stats.OracleChecks = r.checks
	stats.OracleMismatches = r.misses
	stats.MismatchSamples = r.missMsgs
	stats.Trace = r.trace
	stats.Verdicts = evaluateSLOs(stats, r.cfg.SLOs)
	stats.SLOPass = AllPass(stats.Verdicts) && r.misses == 0
	return stats
}
