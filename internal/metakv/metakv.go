// Package metakv is a replicated, linearizable-per-key metadata register
// over the storage nodes, in the spirit of the ZooKeeper/etcd service the
// paper plans to move location maps into (§5 "Metadata Management") —
// implemented as an ABD-style majority-quorum register rather than a
// consensus log, which is exactly enough for single-writer metadata:
//
//   - Put: read the highest version from a majority, write (version+1,
//     value) to a majority. Overlapping majorities make the new version
//     visible to every subsequent read even if a minority of replicas
//     missed the write.
//   - Get: read from a majority, return the highest-versioned value, and
//     write it back to stale or empty replicas (read repair).
//
// Values are stored as blocks named "kv/<key>" through the ordinary node
// block interface, so the service needs no new node-side code and inherits
// each transport's failure semantics.
package metakv

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/rpc"
)

// ErrNoQuorum reports that fewer than a majority of replicas answered.
var ErrNoQuorum = errors.New("metakv: no quorum")

// ErrNotFound reports a key with no value at any reachable replica.
var ErrNotFound = errors.New("metakv: key not found")

// KV is a quorum register over a fixed replica set.
type KV struct {
	client   cluster.Client
	replicas []int
}

// New builds a KV over the given replica node ids. The set's size fixes the
// fault tolerance: floor((len-1)/2) replica failures.
func New(client cluster.Client, replicas []int) (*KV, error) {
	if len(replicas) == 0 {
		return nil, errors.New("metakv: empty replica set")
	}
	seen := map[int]bool{}
	for _, r := range replicas {
		if r < 0 || r >= client.NumNodes() {
			return nil, fmt.Errorf("metakv: replica %d out of range", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("metakv: duplicate replica %d", r)
		}
		seen[r] = true
	}
	return &KV{client: client, replicas: append([]int(nil), replicas...)}, nil
}

// Majority returns the quorum size.
func (kv *KV) Majority() int { return len(kv.replicas)/2 + 1 }

func keyBlock(key string) string { return BlockID(key) }

// BlockID returns the node-side block name backing a key, for tooling and
// storage audits.
func BlockID(key string) string { return "kv/" + key }

// versioned is one replica's stored (version, value) pair. Version 0 with
// exists=false means the replica has no value.
type versioned struct {
	version uint64
	value   []byte
	exists  bool
	node    int
}

// The versioned encoding is [4-byte CRC32C][8-byte version][value], the
// checksum covering version and value. A replica whose stored register
// block rots at rest decodes as "no value" instead of possibly winning the
// read with a garbage version, and the next quorum read repairs it.
func encodeVersioned(version uint64, value []byte) []byte {
	out := make([]byte, 12+len(value))
	binary.LittleEndian.PutUint64(out[4:], version)
	copy(out[12:], value)
	binary.LittleEndian.PutUint32(out, cluster.Checksum(out[4:]))
	return out
}

func decodeVersioned(data []byte) (uint64, []byte, error) {
	if len(data) < 12 {
		return 0, nil, errors.New("metakv: truncated register value")
	}
	if cluster.Checksum(data[4:]) != binary.LittleEndian.Uint32(data) {
		return 0, nil, errors.New("metakv: register value failed checksum")
	}
	return binary.LittleEndian.Uint64(data[4:]), data[12:], nil
}

// readPhase collects each reachable replica's current (version, value).
func (kv *KV) readPhase(key string) ([]versioned, error) {
	reqs := make([]*rpc.Request, len(kv.replicas))
	for i := range kv.replicas {
		reqs[i] = &rpc.Request{Kind: rpc.KindGetBlock, BlockID: keyBlock(key)}
	}
	results := cluster.Parallel(kv.client, kv.replicas, reqs)
	var out []versioned
	answered := 0
	for _, r := range results {
		if r.Err != nil {
			continue // unreachable
		}
		answered++
		if r.Resp.Err != "" {
			// Reachable but no value: counts toward the quorum.
			out = append(out, versioned{node: r.Node})
			continue
		}
		ver, val, err := decodeVersioned(r.Resp.Data)
		if err != nil {
			out = append(out, versioned{node: r.Node})
			continue
		}
		out = append(out, versioned{version: ver, value: val, exists: true, node: r.Node})
	}
	if answered < kv.Majority() {
		return nil, fmt.Errorf("%w: %d of %d replicas answered", ErrNoQuorum, answered, len(kv.replicas))
	}
	return out, nil
}

// writePhase writes (version, value) to the replicas, requiring a majority
// of acks.
func (kv *KV) writePhase(key string, version uint64, value []byte) error {
	payload := encodeVersioned(version, value)
	reqs := make([]*rpc.Request, len(kv.replicas))
	for i := range kv.replicas {
		reqs[i] = &rpc.Request{Kind: rpc.KindPutBlock, BlockID: keyBlock(key), Data: payload}
	}
	results := cluster.Parallel(kv.client, kv.replicas, reqs)
	acks := 0
	for _, r := range results {
		if r.Err == nil && r.Resp.Err == "" {
			acks++
		}
	}
	if acks < kv.Majority() {
		return fmt.Errorf("%w: %d of %d replicas acked", ErrNoQuorum, acks, len(kv.replicas))
	}
	return nil
}

// Get returns the key's value and version, repairing stale replicas.
func (kv *KV) Get(key string) ([]byte, uint64, error) {
	reads, err := kv.readPhase(key)
	if err != nil {
		return nil, 0, err
	}
	best := versioned{}
	for _, r := range reads {
		if r.exists && (!best.exists || r.version > best.version) {
			best = r
		}
	}
	if !best.exists {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	// Read repair: replicas below the winning version get the value back.
	payload := encodeVersioned(best.version, best.value)
	for _, r := range reads {
		if !r.exists || r.version < best.version {
			_, _ = kv.client.Call(r.node, &rpc.Request{
				Kind: rpc.KindPutBlock, BlockID: keyBlock(key), Data: payload,
			})
		}
	}
	return best.value, best.version, nil
}

// Put stores value under key with a version above anything a majority has
// seen, and returns the new version.
func (kv *KV) Put(key string, value []byte) (uint64, error) {
	reads, err := kv.readPhase(key)
	if err != nil {
		return 0, err
	}
	var maxVer uint64
	for _, r := range reads {
		if r.exists && r.version > maxVer {
			maxVer = r.version
		}
	}
	next := maxVer + 1
	if err := kv.writePhase(key, next, value); err != nil {
		return 0, err
	}
	return next, nil
}

// Incr bumps the key's version without changing its (typically empty)
// value and returns the new version — a crash-safe monotonic counter. The
// store uses one register per object as its epoch allocator: two write
// attempts, even either side of a coordinator crash, can never share an
// epoch because every allocation lands on a majority before it is used.
func (kv *KV) Incr(key string) (uint64, error) {
	reads, err := kv.readPhase(key)
	if err != nil {
		return 0, err
	}
	var maxVer uint64
	var value []byte
	for _, r := range reads {
		if r.exists && r.version > maxVer {
			maxVer = r.version
			value = r.value
		}
	}
	next := maxVer + 1
	if err := kv.writePhase(key, next, value); err != nil {
		return 0, err
	}
	return next, nil
}

// Head returns the highest version any reachable replica holds, or 0 when
// the key has never been written. Unlike Get it does not error on a missing
// key and performs no read repair — it is the orphan reconciler's view of
// "the latest allocated epoch".
func (kv *KV) Head(key string) (uint64, error) {
	reads, err := kv.readPhase(key)
	if err != nil {
		return 0, err
	}
	var maxVer uint64
	for _, r := range reads {
		if r.exists && r.version > maxVer {
			maxVer = r.version
		}
	}
	return maxVer, nil
}

// Delete removes the key from every reachable replica (best effort beyond
// the required majority).
func (kv *KV) Delete(key string) error {
	reqs := make([]*rpc.Request, len(kv.replicas))
	for i := range kv.replicas {
		reqs[i] = &rpc.Request{Kind: rpc.KindDeleteBlock, BlockID: keyBlock(key)}
	}
	results := cluster.Parallel(kv.client, kv.replicas, reqs)
	acks := 0
	for _, r := range results {
		if r.Err == nil && r.Resp.Err == "" {
			acks++
		}
	}
	if acks < kv.Majority() {
		return fmt.Errorf("%w: %d of %d replicas acked delete", ErrNoQuorum, acks, len(kv.replicas))
	}
	return nil
}
