package metakv

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
)

func newKV(t *testing.T, replicas ...int) (*KV, *simnet.Cluster) {
	t.Helper()
	cl := simnet.New(simnet.Config{Nodes: 7, ProcessRate: 1e9, NetCPURate: 1e9})
	kv, err := New(cl, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return kv, cl
}

func TestNewValidation(t *testing.T) {
	cl := simnet.New(simnet.Config{Nodes: 3, ProcessRate: 1e9, NetCPURate: 1e9})
	if _, err := New(cl, nil); err == nil {
		t.Fatal("empty replica set must be rejected")
	}
	if _, err := New(cl, []int{0, 5}); err == nil {
		t.Fatal("out-of-range replica must be rejected")
	}
	if _, err := New(cl, []int{1, 1}); err == nil {
		t.Fatal("duplicate replica must be rejected")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2, 3, 4)
	if kv.Majority() != 3 {
		t.Fatalf("majority of 5 = %d", kv.Majority())
	}
	ver, err := kv.Put("obj", []byte("v1"))
	if err != nil || ver != 1 {
		t.Fatalf("Put: %d, %v", ver, err)
	}
	val, gotVer, err := kv.Get("obj")
	if err != nil || !bytes.Equal(val, []byte("v1")) || gotVer != 1 {
		t.Fatalf("Get: %q v%d, %v", val, gotVer, err)
	}
	// Overwrite bumps the version.
	ver, err = kv.Put("obj", []byte("v2"))
	if err != nil || ver != 2 {
		t.Fatalf("second Put: %d, %v", ver, err)
	}
	val, _, _ = kv.Get("obj")
	if !bytes.Equal(val, []byte("v2")) {
		t.Fatalf("Get after overwrite: %q", val)
	}
}

func TestGetMissing(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2)
	if _, _, err := kv.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestSurvivesMinorityFailure(t *testing.T) {
	kv, cl := newKV(t, 0, 1, 2, 3, 4)
	if _, err := kv.Put("obj", []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Two of five replicas down: still a quorum.
	cl.SetDown(1, true)
	cl.SetDown(3, true)
	if _, err := kv.Put("obj", []byte("after")); err != nil {
		t.Fatalf("Put with minority down: %v", err)
	}
	val, _, err := kv.Get("obj")
	if err != nil || string(val) != "after" {
		t.Fatalf("Get with minority down: %q, %v", val, err)
	}
	// Three down: no quorum.
	cl.SetDown(4, true)
	if _, err := kv.Put("obj", []byte("x")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum, got %v", err)
	}
	if _, _, err := kv.Get("obj"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum on read, got %v", err)
	}
}

// TestStaleReplicaNeverWins is the linearizability core: a replica that
// missed an update must never cause an older value to be returned, because
// write and read majorities overlap.
func TestStaleReplicaNeverWins(t *testing.T) {
	kv, cl := newKV(t, 0, 1, 2, 3, 4)
	if _, err := kv.Put("obj", []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Nodes 0 and 1 miss the update.
	cl.SetDown(0, true)
	cl.SetDown(1, true)
	if _, err := kv.Put("obj", []byte("new")); err != nil {
		t.Fatal(err)
	}
	// They come back; the nodes that took the write go away (still a
	// majority alive: 0, 1, and one of {2,3,4}).
	cl.SetDown(0, false)
	cl.SetDown(1, false)
	cl.SetDown(3, true)
	cl.SetDown(4, true)
	val, ver, err := kv.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "new" || ver != 2 {
		t.Fatalf("stale value won: %q v%d", val, ver)
	}
}

func TestReadRepair(t *testing.T) {
	kv, cl := newKV(t, 0, 1, 2)
	if _, err := kv.Put("obj", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Wipe replica 2's copy; a Get must restore it.
	if err := cl.Node(2).Blocks.Delete("kv/obj"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := kv.Get("obj"); err != nil {
		t.Fatal(err)
	}
	resp := cl.Node(2).Handle(&rpc.Request{Kind: rpc.KindGetBlock, BlockID: "kv/obj"})
	if resp.Err != "" {
		t.Fatal("read repair must restore the wiped replica")
	}
}

func TestDelete(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2)
	if _, err := kv.Put("obj", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := kv.Get("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after delete, got %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2, 3, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			for j := 0; j < 10; j++ {
				if _, err := kv.Put(key, []byte(fmt.Sprintf("%d-%d", i, j))); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := kv.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	// Versions must be monotone and substantial.
	for i := 0; i < 4; i++ {
		_, ver, err := kv.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ver < 10 {
			t.Fatalf("k%d version %d too low for 20 writes", i, ver)
		}
	}
}
