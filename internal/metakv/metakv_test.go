package metakv

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
)

func newKV(t *testing.T, replicas ...int) (*KV, *simnet.Cluster) {
	t.Helper()
	cl := simnet.New(simnet.Config{Nodes: 7, ProcessRate: 1e9, NetCPURate: 1e9})
	kv, err := New(cl, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return kv, cl
}

func TestNewValidation(t *testing.T) {
	cl := simnet.New(simnet.Config{Nodes: 3, ProcessRate: 1e9, NetCPURate: 1e9})
	if _, err := New(cl, nil); err == nil {
		t.Fatal("empty replica set must be rejected")
	}
	if _, err := New(cl, []int{0, 5}); err == nil {
		t.Fatal("out-of-range replica must be rejected")
	}
	if _, err := New(cl, []int{1, 1}); err == nil {
		t.Fatal("duplicate replica must be rejected")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2, 3, 4)
	if kv.Majority() != 3 {
		t.Fatalf("majority of 5 = %d", kv.Majority())
	}
	ver, err := kv.Put("obj", []byte("v1"))
	if err != nil || ver != 1 {
		t.Fatalf("Put: %d, %v", ver, err)
	}
	val, gotVer, err := kv.Get("obj")
	if err != nil || !bytes.Equal(val, []byte("v1")) || gotVer != 1 {
		t.Fatalf("Get: %q v%d, %v", val, gotVer, err)
	}
	// Overwrite bumps the version.
	ver, err = kv.Put("obj", []byte("v2"))
	if err != nil || ver != 2 {
		t.Fatalf("second Put: %d, %v", ver, err)
	}
	val, _, _ = kv.Get("obj")
	if !bytes.Equal(val, []byte("v2")) {
		t.Fatalf("Get after overwrite: %q", val)
	}
}

func TestGetMissing(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2)
	if _, _, err := kv.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestSurvivesMinorityFailure(t *testing.T) {
	kv, cl := newKV(t, 0, 1, 2, 3, 4)
	if _, err := kv.Put("obj", []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Two of five replicas down: still a quorum.
	cl.SetDown(1, true)
	cl.SetDown(3, true)
	if _, err := kv.Put("obj", []byte("after")); err != nil {
		t.Fatalf("Put with minority down: %v", err)
	}
	val, _, err := kv.Get("obj")
	if err != nil || string(val) != "after" {
		t.Fatalf("Get with minority down: %q, %v", val, err)
	}
	// Three down: no quorum.
	cl.SetDown(4, true)
	if _, err := kv.Put("obj", []byte("x")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum, got %v", err)
	}
	if _, _, err := kv.Get("obj"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum on read, got %v", err)
	}
}

// TestStaleReplicaNeverWins is the linearizability core: a replica that
// missed an update must never cause an older value to be returned, because
// write and read majorities overlap.
func TestStaleReplicaNeverWins(t *testing.T) {
	kv, cl := newKV(t, 0, 1, 2, 3, 4)
	if _, err := kv.Put("obj", []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Nodes 0 and 1 miss the update.
	cl.SetDown(0, true)
	cl.SetDown(1, true)
	if _, err := kv.Put("obj", []byte("new")); err != nil {
		t.Fatal(err)
	}
	// They come back; the nodes that took the write go away (still a
	// majority alive: 0, 1, and one of {2,3,4}).
	cl.SetDown(0, false)
	cl.SetDown(1, false)
	cl.SetDown(3, true)
	cl.SetDown(4, true)
	val, ver, err := kv.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "new" || ver != 2 {
		t.Fatalf("stale value won: %q v%d", val, ver)
	}
}

func TestReadRepair(t *testing.T) {
	kv, cl := newKV(t, 0, 1, 2)
	if _, err := kv.Put("obj", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Wipe replica 2's copy; a Get must restore it.
	if err := cl.Node(2).Blocks.Delete("kv/obj"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := kv.Get("obj"); err != nil {
		t.Fatal(err)
	}
	resp := cl.Node(2).Handle(&rpc.Request{Kind: rpc.KindGetBlock, BlockID: "kv/obj"})
	if resp.Err != "" {
		t.Fatal("read repair must restore the wiped replica")
	}
}

func TestDelete(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2)
	if _, err := kv.Put("obj", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := kv.Get("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after delete, got %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2, 3, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			for j := 0; j < 10; j++ {
				if _, err := kv.Put(key, []byte(fmt.Sprintf("%d-%d", i, j))); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := kv.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	// Versions must be monotone and substantial.
	for i := 0; i < 4; i++ {
		_, ver, err := kv.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ver < 10 {
			t.Fatalf("k%d version %d too low for 20 writes", i, ver)
		}
	}
}

// TestIncrMonotonicCounter pins the epoch-allocator contract: Incr bumps
// the register version without touching its value, every allocation lands
// on a majority, and Head observes the latest allocation without inventing
// values for unwritten keys.
func TestIncrMonotonicCounter(t *testing.T) {
	kv, _ := newKV(t, 0, 1, 2, 3, 4)
	if head, err := kv.Head("ctr"); err != nil || head != 0 {
		t.Fatalf("Head of unwritten key = %d, %v (want 0, nil)", head, err)
	}
	for want := uint64(1); want <= 3; want++ {
		got, err := kv.Incr("ctr")
		if err != nil || got != want {
			t.Fatalf("Incr #%d = %d, %v", want, got, err)
		}
	}
	if head, err := kv.Head("ctr"); err != nil || head != 3 {
		t.Fatalf("Head after 3 Incrs = %d, %v", head, err)
	}
	// Incr preserves the stored value.
	if _, err := kv.Put("obj", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ver, err := kv.Incr("obj")
	if err != nil || ver != 2 {
		t.Fatalf("Incr over value = %d, %v", ver, err)
	}
	val, gotVer, err := kv.Get("obj")
	if err != nil || string(val) != "payload" || gotVer != 2 {
		t.Fatalf("value after Incr = %q v%d, %v", val, gotVer, err)
	}
}

// TestIncrSurvivesMinorityFailure: allocations stay monotone across replica
// failures because each lands on an overlapping majority.
func TestIncrSurvivesMinorityFailure(t *testing.T) {
	kv, cl := newKV(t, 0, 1, 2, 3, 4)
	if v, err := kv.Incr("ctr"); err != nil || v != 1 {
		t.Fatalf("Incr: %d, %v", v, err)
	}
	cl.SetDown(0, true)
	cl.SetDown(1, true)
	if v, err := kv.Incr("ctr"); err != nil || v != 2 {
		t.Fatalf("Incr with minority down: %d, %v", v, err)
	}
	// The replicas that missed allocation 2 return; two that saw it go away.
	cl.SetDown(0, false)
	cl.SetDown(1, false)
	cl.SetDown(3, true)
	cl.SetDown(4, true)
	if v, err := kv.Incr("ctr"); err != nil || v != 3 {
		t.Fatalf("Incr after failover must not reuse a version: %d, %v", v, err)
	}
}

// TestCorruptReplicaAtRest: a register block that rots at rest fails the
// payload checksum, decodes as "no value", and can never win a quorum read
// with a garbage version; the read repairs it in passing.
func TestCorruptReplicaAtRest(t *testing.T) {
	kv, cl := newKV(t, 0, 1, 2)
	if _, err := kv.Put("obj", []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Rot replica 1's copy: flip a byte inside the version field, which
	// without the checksum would make it win the read with a huge version.
	blk, err := cl.Node(1).Blocks.Get(BlockID("obj"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	blk[7] ^= 0xFF
	if err := cl.Node(1).Blocks.Put(BlockID("obj"), blk); err != nil {
		t.Fatal(err)
	}
	val, ver, err := kv.Get("obj")
	if err != nil || string(val) != "good" || ver != 1 {
		t.Fatalf("Get over rotted replica = %q v%d, %v", val, ver, err)
	}
	// The read must have repaired the rotted replica in place.
	fixed, err := cl.Node(1).Blocks.Get(BlockID("obj"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotVer, gotVal, err := decodeVersioned(fixed); err != nil || gotVer != 1 || string(gotVal) != "good" {
		t.Fatalf("replica not repaired: v%d %q, %v", gotVer, gotVal, err)
	}
}
