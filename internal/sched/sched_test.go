package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// acquireNow admits or fails without blocking the test on a queue.
func acquireNow(t *testing.T, s *Scheduler, tenant string, class Class) func() {
	t.Helper()
	release, _, err := s.Acquire(context.Background(), tenant, class)
	if err != nil {
		t.Fatalf("Acquire(%s, %s): %v", tenant, class, err)
	}
	return release
}

func TestAcquireRelease(t *testing.T) {
	s := New(Config{Slots: 2})
	r1 := acquireNow(t, s, "a", ClassPoint)
	r2 := acquireNow(t, s, "a", ClassPoint)
	st := s.Stats()
	if st.Running != 2 {
		t.Fatalf("running = %d, want 2", st.Running)
	}
	r1()
	r1() // idempotent
	r2()
	if st := s.Stats(); st.Running != 0 {
		t.Fatalf("running after release = %d, want 0", st.Running)
	}
	if got := s.Stats().Tenants[0].Admitted; got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
}

func TestNilSchedulerAdmits(t *testing.T) {
	var s *Scheduler
	release, wait, err := s.Acquire(context.Background(), "", ClassScan)
	if err != nil || wait != 0 {
		t.Fatalf("nil scheduler: err=%v wait=%v", err, wait)
	}
	release()
	if st := s.Stats(); st.Slots != 0 {
		t.Fatalf("nil Stats = %+v", st)
	}
}

func TestScanCapLeavesRoomForPoints(t *testing.T) {
	s := New(Config{Slots: 4, ScanSlots: 2, QueueDepth: 1})
	ra := acquireNow(t, s, "agg", ClassScan)
	rb := acquireNow(t, s, "agg", ClassScan)
	defer ra()
	defer rb()
	// Scans are at their cap; a third scan queues (or sheds), but point
	// reads still get the remaining general slots.
	rp1 := acquireNow(t, s, "latency", ClassPoint)
	rp2 := acquireNow(t, s, "latency", ClassPoint)
	defer rp1()
	defer rp2()
	st := s.Stats()
	if st.Running != 4 || st.RunningScan != 2 {
		t.Fatalf("running=%d scans=%d, want 4/2", st.Running, st.RunningScan)
	}
}

func TestQueueOverflowShedsTyped(t *testing.T) {
	s := New(Config{Slots: 1, QueueDepth: 1})
	release := acquireNow(t, s, "a", ClassPoint)
	defer release()

	// Fill tenant a's queue with one waiter.
	queued := make(chan struct{})
	go func() {
		r, _, err := s.Acquire(context.Background(), "a", ClassPoint)
		if err == nil {
			r()
		}
		close(queued)
	}()
	for {
		if st := s.Stats(); len(st.Tenants) > 0 && st.Tenants[0].Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	_, _, err := s.Acquire(context.Background(), "a", ClassPoint)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var ov *Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("err %v is not *Overloaded", err)
	}
	if ov.Tenant != "a" || ov.Class != ClassPoint || ov.Reason != "queue full" {
		t.Fatalf("shed = %+v", ov)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("retry-after hint = %v, want > 0", ov.RetryAfter)
	}
	if got := s.Stats().Tenants[0].Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	release()
	<-queued
}

func TestDeadlineTooTightSheds(t *testing.T) {
	s := New(Config{Slots: 1, QueueDepth: 8})
	// Seed the point-class service-time EWMA with one slow operation so
	// the queue-wait estimate dwarfs the deadline below.
	warm := acquireNow(t, s, "a", ClassPoint)
	time.Sleep(50 * time.Millisecond)
	warm()
	release := acquireNow(t, s, "a", ClassPoint)
	defer release()
	// Estimated wait ≈ one 50ms service time; a 5ms deadline cannot cover
	// it, so the scheduler sheds instead of queueing to certain death.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := s.Acquire(ctx, "a", ClassPoint)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var ov *Overloaded
	if !errors.As(err, &ov) || ov.Reason != "queue wait exceeds deadline" {
		t.Fatalf("shed = %v", err)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	s := New(Config{Slots: 1, QueueDepth: 8})
	release := acquireNow(t, s, "a", ClassPoint)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Acquire(ctx, "a", ClassPoint)
		done <- err
	}()
	for {
		if st := s.Stats(); len(st.Tenants) > 0 && st.Tenants[0].Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.Stats().Tenants[0].Queued; got != 0 {
		t.Fatalf("queued after cancel = %d, want 0", got)
	}
	// The held slot is unaffected and still releasable.
	release()
	if st := s.Stats(); st.Running != 0 {
		t.Fatalf("running = %d, want 0", st.Running)
	}
}

func TestExpiredContextFailsFast(t *testing.T) {
	s := New(Config{Slots: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.Acquire(ctx, "a", ClassPoint)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWeightedFairShares drives two tenants through a single slot and
// checks the heavier tenant drains roughly in proportion to its weight.
func TestWeightedFairShares(t *testing.T) {
	s := New(Config{
		Slots:      1,
		QueueDepth: 1024,
		Weights:    map[string]int{"heavy": 3, "light": 1},
	})
	gate := acquireNow(t, s, "warm", ClassPoint)

	const perTenant = 40
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(tenant string) {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				release, _, err := s.Acquire(context.Background(), tenant, ClassPoint)
				if err != nil {
					t.Errorf("Acquire(%s): %v", tenant, err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				release()
			}()
		}
	}
	enqueue("heavy")
	enqueue("light")
	for {
		st := s.Stats()
		total := 0
		for _, ts := range st.Tenants {
			total += ts.Queued
		}
		if total == 2*perTenant {
			break
		}
		time.Sleep(time.Millisecond)
	}
	gate() // open the floodgate: the single slot now drains the queues
	wg.Wait()

	// In the first window both tenants still have queued work, so the
	// stride shares must hold: heavy ≈ 3x light.
	window := order[:perTenant/2]
	heavy := 0
	for _, who := range window {
		if who == "heavy" {
			heavy++
		}
	}
	light := len(window) - heavy
	if heavy < 2*light {
		t.Fatalf("weighted share violated in first window: heavy=%d light=%d (order %v)", heavy, light, window)
	}
}

// TestNoStarvationUnderAggressor floods one tenant with scans and checks a
// point-read tenant still gets admitted promptly (run with -race).
func TestNoStarvationUnderAggressor(t *testing.T) {
	s := New(Config{Slots: 4, ScanSlots: 2, QueueDepth: 256})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var aggressorOps atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				release, _, err := s.Acquire(context.Background(), "aggressor", ClassScan)
				if err != nil {
					continue
				}
				time.Sleep(200 * time.Microsecond) // a "long" scan
				aggressorOps.Add(1)
				release()
			}
		}()
	}

	// Point reads must keep flowing: the scan cap (2 of 4 slots) leaves
	// dedicated headroom.
	var worst time.Duration
	for i := 0; i < 200; i++ {
		start := time.Now()
		release, _, err := s.Acquire(context.Background(), "latency", ClassPoint)
		if err != nil {
			t.Fatalf("point read %d shed: %v", i, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
		release()
	}
	// The point-read loop can finish before any 200µs scan completes;
	// fairness (not starvation of the aggressor) still requires progress.
	deadline := time.Now().Add(5 * time.Second)
	for aggressorOps.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if aggressorOps.Load() == 0 {
		t.Fatal("aggressor made no progress")
	}
	// Generous bound: with 2 free general slots a point read never waits
	// behind a full scan queue.
	if worst > time.Second {
		t.Fatalf("worst point-read admission wait %v", worst)
	}
}

func TestStatsQueueWaitHistogram(t *testing.T) {
	s := New(Config{Slots: 1, QueueDepth: 8})
	release := acquireNow(t, s, "a", ClassPoint)
	done := make(chan struct{})
	go func() {
		r, wait, err := s.Acquire(context.Background(), "a", ClassPoint)
		if err != nil {
			t.Errorf("queued Acquire: %v", err)
		} else {
			if wait <= 0 {
				t.Errorf("queued wait = %v, want > 0", wait)
			}
			r()
		}
		close(done)
	}()
	for {
		if st := s.Stats(); len(st.Tenants) > 0 && st.Tenants[0].Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	release()
	<-done
	st := s.Stats()
	if len(st.Tenants) != 1 {
		t.Fatalf("tenants = %d, want 1", len(st.Tenants))
	}
	if st.Tenants[0].QueueWait.Count != 2 {
		t.Fatalf("queue-wait observations = %d, want 2", st.Tenants[0].QueueWait.Count)
	}
}

func TestTenantFromContext(t *testing.T) {
	if got := TenantFromContext(context.Background()); got != "" {
		t.Fatalf("empty ctx tenant = %q", got)
	}
	ctx := WithTenant(context.Background(), "alice")
	if got := TenantFromContext(ctx); got != "alice" {
		t.Fatalf("tenant = %q, want alice", got)
	}
	// Context tenant overrides the store default argument.
	s := New(Config{Slots: 1})
	release, _, err := s.Acquire(ctx, "default-tenant", ClassPoint)
	if err != nil {
		t.Fatal(err)
	}
	release()
	st := s.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "alice" {
		t.Fatalf("accounted tenants = %+v, want [alice]", st.Tenants)
	}
}
