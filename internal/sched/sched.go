// Package sched is the admission-control plane in front of the store
// facade: per-tenant weighted-fair queues with global and per-class
// concurrency caps, bounded queue depth, and explicit load shedding.
//
// The scheduler exists so an overloaded coordinator degrades predictably
// instead of collapsing. Three mechanisms combine:
//
//   - Concurrency caps: at most Slots operations run at once, and the
//     expensive classes (scans, puts) have their own sub-caps so one
//     tenant's table scans can never occupy every worker slot while point
//     reads starve behind them.
//   - Weighted-fair queueing: when the slots are busy, requests wait in
//     per-tenant FIFO queues and slots are handed out by stride scheduling
//     over tenant weights — a tenant with weight 2 drains twice as fast as
//     a tenant with weight 1, and an aggressor's queue length only delays
//     the aggressor.
//   - Load shedding: a request that cannot plausibly be served — its
//     tenant's queue is full, or the estimated queue wait exceeds the
//     request deadline — fails fast with a typed *Overloaded error carrying
//     a retry-after hint, instead of queueing to death and timing out
//     wholesale.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/metrics"
)

// Class buckets operations by the resources they hold while running. The
// per-class caps keep expensive classes from monopolizing the slot pool.
type Class uint8

const (
	// ClassPoint is a point read: a Get, bounded bytes, short service time.
	ClassPoint Class = iota
	// ClassScan is an analytical query: filter/projection fan-out across
	// row groups, the class that can occupy workers for a long time.
	ClassScan
	// ClassPut is a write: erasure encode + scatter, memory- and
	// network-heavy.
	ClassPut
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassPoint:
		return "point"
	case ClassScan:
		return "scan"
	case ClassPut:
		return "put"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ErrOverloaded is the sentinel every shed decision matches via errors.Is.
// The concrete error is *Overloaded, which carries the tenant, class,
// reason, and a retry-after hint.
var ErrOverloaded = errors.New("sched: overloaded")

// Overloaded is the typed load-shed error: the scheduler refused admission
// because serving the request within its constraints was implausible.
// errors.Is(err, ErrOverloaded) matches it; errors.As extracts the hint.
type Overloaded struct {
	// Tenant is the shed request's tenant.
	Tenant string
	// Class is the shed request's cost class.
	Class Class
	// Reason describes the shed decision ("queue full", "queue wait
	// exceeds deadline").
	Reason string
	// RetryAfter is the scheduler's estimate of when capacity may free up —
	// the hint a well-behaved client backs off by before retrying.
	RetryAfter time.Duration
}

func (e *Overloaded) Error() string {
	return fmt.Sprintf("sched: overloaded: tenant %q class %s shed (%s), retry after %v",
		e.Tenant, e.Class, e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) true for every shed error.
func (e *Overloaded) Is(target error) bool { return target == ErrOverloaded }

// DefaultTenant is the tenant requests are accounted to when neither the
// context nor the store options name one.
const DefaultTenant = "default"

type tenantCtxKey struct{}

// WithTenant returns a context whose requests are accounted to the named
// tenant. It overrides any store-level default tenant.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFromContext returns the context's tenant, or "" when none is set.
func TenantFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantCtxKey{}).(string)
	return t
}

// Config bounds a Scheduler. The zero value applies defaults sized to the
// host: 4×GOMAXPROCS total slots, half of them available to scans and to
// puts, per-tenant queue depth 64, all tenants weight 1.
type Config struct {
	// Slots is the total number of operations admitted concurrently.
	Slots int
	// ScanSlots caps concurrently running scans (ClassScan). Point reads
	// are capped only by Slots, so a scan burst leaves headroom for them.
	ScanSlots int
	// PutSlots caps concurrently running writes (ClassPut).
	PutSlots int
	// QueueDepth bounds each tenant's wait queue; a request arriving at a
	// full queue is shed with ErrOverloaded.
	QueueDepth int
	// DefaultWeight is the fair-share weight of tenants absent from
	// Weights; larger weights drain proportionally faster.
	DefaultWeight int
	// Weights assigns per-tenant fair-share weights.
	Weights map[string]int
}

// strideScale is the stride-scheduling numerator: a tenant's pass advances
// by strideScale/weight per admission, so higher weights advance slower and
// win the min-pass pick more often.
const strideScale = float64(1 << 16)

type waiter struct {
	tenant  *tenantState
	class   Class
	grant   chan struct{}
	granted bool // guarded by Scheduler.mu; set before grant is closed
	enq     time.Time
}

type tenantState struct {
	name     string
	weight   int
	pass     float64
	queue    []*waiter
	admitted uint64
	shed     uint64
}

// Scheduler is the admission controller. All methods are safe for
// concurrent use; a nil *Scheduler admits everything (every method is
// nil-safe), so the store threads it unconditionally.
type Scheduler struct {
	cfg  Config
	hist *metrics.HistogramSet // queue-wait histograms, Key{Op: "sched.wait.<tenant>"}

	mu           sync.Mutex
	running      int
	runningClass [numClasses]int
	tenants      map[string]*tenantState
	// ewmaNanos is the per-class service-time EWMA feeding queue-wait
	// estimates (zero until that class completes an operation).
	ewmaNanos [numClasses]float64
}

// New returns a Scheduler with cfg's bounds (zero fields defaulted).
func New(cfg Config) *Scheduler {
	if cfg.Slots <= 0 {
		cfg.Slots = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.ScanSlots <= 0 {
		cfg.ScanSlots = (cfg.Slots + 1) / 2
	}
	if cfg.PutSlots <= 0 {
		cfg.PutSlots = (cfg.Slots + 1) / 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1
	}
	return &Scheduler{
		cfg:     cfg,
		hist:    metrics.NewHistogramSet(),
		tenants: make(map[string]*tenantState),
	}
}

// Acquire admits one operation for the tenant, blocking in the tenant's
// fair queue while the slots are busy. On admission it returns a release
// function (idempotent; must be called when the operation finishes) and the
// time spent queued. On refusal it returns a *Overloaded shed error, and on
// cancellation the context's error. A nil scheduler admits immediately.
//
// Tenant resolution: an explicit WithTenant on ctx wins, then the tenant
// argument (the store's configured default), then DefaultTenant.
func (s *Scheduler) Acquire(ctx context.Context, tenant string, class Class) (release func(), wait time.Duration, err error) {
	if s == nil {
		return func() {}, 0, nil
	}
	if t := TenantFromContext(ctx); t != "" {
		tenant = t
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	s.mu.Lock()
	t := s.tenantLocked(tenant)
	if s.canRunLocked(class) && len(t.queue) == 0 {
		s.admitLocked(t, class)
		s.mu.Unlock()
		s.hist.Observe(waitKey(tenant), 0)
		return s.releaseFunc(class), 0, nil
	}
	// Slots (or the class cap) are busy: shed or queue.
	est := s.estWaitLocked(class)
	if len(t.queue) >= s.cfg.QueueDepth {
		t.shed++
		s.mu.Unlock()
		return nil, 0, &Overloaded{Tenant: tenant, Class: class, Reason: "queue full", RetryAfter: est}
	}
	if dl, ok := ctx.Deadline(); ok && est > time.Until(dl) {
		t.shed++
		s.mu.Unlock()
		return nil, 0, &Overloaded{Tenant: tenant, Class: class, Reason: "queue wait exceeds deadline", RetryAfter: est}
	}
	w := &waiter{tenant: t, class: class, grant: make(chan struct{}), enq: time.Now()}
	t.queue = append(t.queue, w)
	s.mu.Unlock()

	select {
	case <-w.grant:
		wait = time.Since(w.enq)
		s.hist.Observe(waitKey(tenant), wait)
		return s.releaseFunc(class), wait, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; the slot is ours to give back.
			s.mu.Unlock()
			s.releaseFunc(class)()
			return nil, 0, ctx.Err()
		}
		for i, q := range t.queue {
			if q == w {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return nil, 0, ctx.Err()
	}
}

// releaseFunc returns the idempotent slot-release closure for an admitted
// operation of the given class. Release feeds the class's service-time EWMA
// and hands freed capacity to queued waiters.
func (s *Scheduler) releaseFunc(class Class) func() {
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			dur := time.Since(start)
			s.mu.Lock()
			const alpha = 0.2
			if s.ewmaNanos[class] == 0 {
				s.ewmaNanos[class] = float64(dur)
			} else {
				s.ewmaNanos[class] += alpha * (float64(dur) - s.ewmaNanos[class])
			}
			s.running--
			s.runningClass[class]--
			s.dispatchLocked()
			s.mu.Unlock()
		})
	}
}

func (s *Scheduler) tenantLocked(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		w := s.cfg.Weights[name]
		if w <= 0 {
			w = s.cfg.DefaultWeight
		}
		// A new tenant starts at the current minimum pass so it neither
		// inherits a backlog nor gets a burst of catch-up admissions.
		pass := 0.0
		for _, o := range s.tenants {
			if pass == 0 || o.pass < pass {
				pass = o.pass
			}
		}
		t = &tenantState{name: name, weight: w, pass: pass}
		s.tenants[name] = t
	}
	return t
}

func (s *Scheduler) canRunLocked(class Class) bool {
	if s.running >= s.cfg.Slots {
		return false
	}
	return s.runningClass[class] < s.classCap(class)
}

func (s *Scheduler) classCap(class Class) int {
	switch class {
	case ClassScan:
		return s.cfg.ScanSlots
	case ClassPut:
		return s.cfg.PutSlots
	default:
		return s.cfg.Slots
	}
}

// admitLocked accounts one admission to the tenant and advances its stride
// pass, charging the fair-share clock.
func (s *Scheduler) admitLocked(t *tenantState, class Class) {
	s.running++
	s.runningClass[class]++
	t.admitted++
	t.pass += strideScale / float64(t.weight)
}

// dispatchLocked hands freed capacity to queued waiters: repeatedly pick
// the minimum-pass tenant whose head-of-queue class has capacity (FIFO
// within a tenant, stride-fair across tenants) until nothing is eligible.
func (s *Scheduler) dispatchLocked() {
	for {
		var best *tenantState
		for _, t := range s.tenants {
			if len(t.queue) == 0 || !s.canRunLocked(t.queue[0].class) {
				continue
			}
			if best == nil || t.pass < best.pass || (t.pass == best.pass && t.name < best.name) {
				best = t
			}
		}
		if best == nil {
			return
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		s.admitLocked(best, w.class)
		w.granted = true
		close(w.grant)
	}
}

// estWaitLocked estimates how long a request queued now would wait: the
// requests already queued (plus itself) divided across the slot pool, each
// wave costing one EWMA service time of the class (falling back to the
// slowest known class, then a 1ms prior before any completion).
func (s *Scheduler) estWaitLocked(class Class) time.Duration {
	cost := s.ewmaNanos[class]
	if cost == 0 {
		for _, v := range s.ewmaNanos {
			if v > cost {
				cost = v
			}
		}
	}
	if cost == 0 {
		cost = float64(time.Millisecond)
	}
	queued := 1
	for _, t := range s.tenants {
		queued += len(t.queue)
	}
	waves := 1 + float64(queued)/float64(s.cfg.Slots)
	return time.Duration(waves * cost)
}

func waitKey(tenant string) metrics.Key {
	return metrics.Key{Op: "sched.wait." + tenant, Node: metrics.NodeNone}
}

// TenantStats is one tenant's admission counters at snapshot time.
type TenantStats struct {
	Tenant    string                    `json:"tenant"`
	Weight    int                       `json:"weight"`
	Admitted  uint64                    `json:"admitted"`
	Shed      uint64                    `json:"shed"`
	Queued    int                       `json:"queued"`
	QueueWait metrics.HistogramSnapshot `json:"queue_wait"`
}

// Stats is the scheduler's state snapshot: configured bounds, occupancy,
// and per-tenant admission/shed/queue-wait summaries (sorted by tenant).
type Stats struct {
	Slots       int           `json:"slots"`
	ScanSlots   int           `json:"scan_slots"`
	PutSlots    int           `json:"put_slots"`
	QueueDepth  int           `json:"queue_depth"`
	Running     int           `json:"running"`
	RunningScan int           `json:"running_scan"`
	RunningPut  int           `json:"running_put"`
	Tenants     []TenantStats `json:"tenants,omitempty"`
}

// Stats snapshots the scheduler (zero value on nil).
func (s *Scheduler) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	out := Stats{
		Slots:       s.cfg.Slots,
		ScanSlots:   s.cfg.ScanSlots,
		PutSlots:    s.cfg.PutSlots,
		QueueDepth:  s.cfg.QueueDepth,
		Running:     s.running,
		RunningScan: s.runningClass[ClassScan],
		RunningPut:  s.runningClass[ClassPut],
	}
	tenants := make([]*tenantState, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	snaps := make([]TenantStats, len(tenants))
	for i, t := range tenants {
		snaps[i] = TenantStats{
			Tenant:   t.name,
			Weight:   t.weight,
			Admitted: t.admitted,
			Shed:     t.shed,
			Queued:   len(t.queue),
		}
	}
	s.mu.Unlock()
	for i := range snaps {
		if h, ok := s.hist.Get(waitKey(snaps[i].Tenant)); ok {
			snaps[i].QueueWait = h
		}
	}
	sort.Slice(snaps, func(a, b int) bool { return snaps[a].Tenant < snaps[b].Tenant })
	out.Tenants = snaps
	return out
}
