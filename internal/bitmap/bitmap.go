// Package bitmap implements the row-selection bitmaps that Fusion's filter
// stage produces on storage nodes and the coordinator consolidates (§4.3,
// §5). Bitmaps are Snappy-compressed for the network, exactly as in the
// paper's implementation.
package bitmap

import (
	"errors"
	"fmt"
	"math/bits"

	"github.com/fusionstore/fusion/internal/snappy"
)

// Bitmap is a fixed-length bit set over row indexes [0, Len).
type Bitmap struct {
	n     int
	words []uint64
}

// New returns an all-zero bitmap of n bits.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative length %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// NewFull returns an all-one bitmap of n bits.
func NewFull(n int) *Bitmap {
	b := New(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
	return b
}

func (b *Bitmap) clearTail() {
	if rem := b.n % 64; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (uint64(1) << rem) - 1
	}
}

// Len returns the bitmap's bit length.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.words[i/64] |= 1 << (i % 64)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.words[i/64] &^= 1 << (i % 64)
}

// Get reports bit i.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Selectivity returns Count/Len — the fraction of rows selected, the
// quantity the pushdown cost model multiplies with compressibility (§4.3).
func (b *Bitmap) Selectivity() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.Count()) / float64(b.n)
}

// ErrLengthMismatch reports an operation over bitmaps of different lengths.
var ErrLengthMismatch = errors.New("bitmap: length mismatch")

// And intersects other into b in place.
func (b *Bitmap) And(other *Bitmap) error {
	if b.n != other.n {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, b.n, other.n)
	}
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
	return nil
}

// Or unions other into b in place.
func (b *Bitmap) Or(other *Bitmap) error {
	if b.n != other.n {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, b.n, other.n)
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
	return nil
}

// Not complements b in place.
func (b *Bitmap) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.clearTail()
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Indexes returns the positions of all set bits in ascending order.
func (b *Bitmap) Indexes() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, wi*64+bit)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

// Marshal serializes the bitmap with Snappy compression — the filter-reply
// wire form (§5: "It uses Snappy to compress bitmaps before sending them
// back to the coordinator").
func (b *Bitmap) Marshal() []byte {
	raw := make([]byte, 8+8*len(b.words))
	putUint64(raw, uint64(b.n))
	for i, w := range b.words {
		putUint64(raw[8+8*i:], w)
	}
	return snappy.Encode(raw)
}

// Unmarshal parses the output of Marshal.
func Unmarshal(data []byte) (*Bitmap, error) {
	raw, err := snappy.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("bitmap: %w", err)
	}
	if len(raw) < 8 {
		return nil, errors.New("bitmap: truncated header")
	}
	n := int(getUint64(raw))
	if n < 0 || (n+63)/64*8 != len(raw)-8 {
		return nil, fmt.Errorf("bitmap: length %d inconsistent with %d payload bytes", n, len(raw)-8)
	}
	b := New(n)
	for i := range b.words {
		b.words[i] = getUint64(raw[8+8*i:])
	}
	b.clearTail()
	return b, nil
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
