package bitmap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// model is a reference implementation over a bool slice.
type model []bool

func (m model) count() int {
	c := 0
	for _, v := range m {
		if v {
			c++
		}
	}
	return c
}

func TestBasicOps(t *testing.T) {
	b := New(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatal("fresh bitmap must be empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get wrong")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Fatal("Clear wrong")
	}
	if got := b.Indexes(); !reflect.DeepEqual(got, []int{0, 129}) {
		t.Fatalf("Indexes = %v", got)
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		b := NewFull(n)
		if b.Count() != n {
			t.Fatalf("NewFull(%d).Count() = %d", n, b.Count())
		}
		if n > 0 && b.Selectivity() != 1 {
			t.Fatalf("full bitmap selectivity must be 1")
		}
	}
}

func TestNotClearsTail(t *testing.T) {
	b := New(70)
	b.Not()
	if b.Count() != 70 {
		t.Fatalf("Not of empty must set exactly n bits, got %d", b.Count())
	}
	b.Not()
	if b.Count() != 0 {
		t.Fatal("double Not must restore")
	}
}

func TestAndOrAgainstModel(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		ma, mb := make(model, n), make(model, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				ma[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
				mb[i] = true
			}
		}
		andB := a.Clone()
		if err := andB.And(b); err != nil {
			return false
		}
		orB := a.Clone()
		if err := orB.Or(b); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if andB.Get(i) != (ma[i] && mb[i]) {
				return false
			}
			if orB.Get(i) != (ma[i] || mb[i]) {
				return false
			}
		}
		return andB.Count() <= a.Count() && orB.Count() >= a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthMismatch(t *testing.T) {
	a, b := New(10), New(20)
	if err := a.And(b); err == nil {
		t.Fatal("And must reject mismatched lengths")
	}
	if err := a.Or(b); err == nil {
		t.Fatal("Or must reject mismatched lengths")
	}
}

func TestSelectivity(t *testing.T) {
	b := New(200)
	for i := 0; i < 20; i++ {
		b.Set(i * 10)
	}
	if s := b.Selectivity(); s != 0.1 {
		t.Fatalf("Selectivity = %v, want 0.1", s)
	}
	if New(0).Selectivity() != 0 {
		t.Fatal("empty bitmap selectivity must be 0")
	}
}

func TestForEachMatchesIndexes(t *testing.T) {
	b := New(300)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		if rng.Intn(3) == 0 {
			b.Set(i)
		}
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, b.Indexes()) {
		t.Fatal("ForEach must visit the same positions as Indexes")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 2000)
		rng := rand.New(rand.NewSource(seed))
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				b.Set(i)
			}
		}
		got, err := Unmarshal(b.Marshal())
		if err != nil {
			return false
		}
		if got.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Get(i) != b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalCompresses(t *testing.T) {
	// A sparse bitmap over many rows must shrink dramatically on the wire.
	b := New(1 << 20)
	for i := 0; i < 100; i++ {
		b.Set(i * 10000)
	}
	enc := b.Marshal()
	if len(enc) > 1<<14 {
		t.Fatalf("sparse bitmap must compress below 16KB, got %d", len(enc))
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte{0x01, 0x02}); err == nil {
		t.Fatal("Unmarshal must reject garbage")
	}
	// Valid snappy but inconsistent header.
	b := New(100)
	enc := b.Marshal()
	// Truncate the compressed payload.
	if _, err := Unmarshal(enc[:len(enc)-3]); err == nil {
		t.Fatal("Unmarshal must reject truncated payload")
	}
}

func BenchmarkAnd(b *testing.B) {
	x, y := NewFull(1<<20), NewFull(1<<20)
	b.SetBytes(1 << 17)
	for i := 0; i < b.N; i++ {
		if err := x.And(y); err != nil {
			b.Fatal(err)
		}
	}
}
