package simnet

import (
	"errors"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/rpc"
)

func TestClusterDispatch(t *testing.T) {
	cl := New(Config{Nodes: 3, ProcessRate: 1e9, NetCPURate: 1e9})
	resp, err := cl.Call(1, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: "b", Data: []byte("hi")})
	if err != nil || resp.Err != "" {
		t.Fatalf("Call: %v %s", err, resp.Err)
	}
	resp, err = cl.Call(1, &rpc.Request{Kind: rpc.KindGetBlock, BlockID: "b"})
	if err != nil || string(resp.Data) != "hi" {
		t.Fatalf("Get: %v %q", err, resp.Data)
	}
	// Block lives only on node 1.
	resp, err = cl.Call(0, &rpc.Request{Kind: rpc.KindGetBlock, BlockID: "b"})
	if err != nil || resp.Err == "" {
		t.Fatal("node 0 must not have the block")
	}
	if _, err := cl.Call(9, &rpc.Request{Kind: rpc.KindPing}); err == nil {
		t.Fatal("out-of-range node must fail")
	}
}

func TestClusterFailureInjection(t *testing.T) {
	cl := New(Config{Nodes: 2, ProcessRate: 1e9, NetCPURate: 1e9})
	cl.SetDown(0, true)
	if _, err := cl.Call(0, &rpc.Request{Kind: rpc.KindPing}); !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("want ErrNodeDown, got %v", err)
	}
	cl.SetDown(0, false)
	if _, err := cl.Call(0, &rpc.Request{Kind: rpc.KindPing}); err != nil {
		t.Fatalf("revived node must answer: %v", err)
	}
}

func TestTrafficAccounting(t *testing.T) {
	cl := New(Config{Nodes: 1, ProcessRate: 1e9, NetCPURate: 1e9})
	if cl.Traffic().Messages != 0 {
		t.Fatal("fresh cluster must have no traffic")
	}
	cl.Call(0, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: "b", Data: make([]byte, 1000)})
	tr := cl.Traffic()
	if tr.Messages != 1 || tr.Bytes < 1000 {
		t.Fatalf("traffic = %+v", tr)
	}
	cl.ResetTraffic()
	if cl.Traffic().Bytes != 0 {
		t.Fatal("ResetTraffic must zero counters")
	}
}

func TestCPUAccounting(t *testing.T) {
	cl := New(Config{Nodes: 2, ProcessRate: 1e9, NetCPURate: 1e9})
	cl.AddCPU(1, 0.5)
	cpu := cl.CPUSeconds()
	if cpu[0] != 0 || cpu[1] != 0.5 {
		t.Fatalf("CPUSeconds = %v", cpu)
	}
	cl.ResetCPU()
	if cl.CPUSeconds()[1] != 0 {
		t.Fatal("ResetCPU must zero counters")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 9 {
		t.Fatalf("paper default is 9 nodes, got %d", cfg.Nodes)
	}
	if cfg.NetBandwidth != 25e9/8 {
		t.Fatal("default bandwidth must be 25 Gb/s")
	}
	cl := New(cfg)
	if cl.NumNodes() != 9 || cl.Config().Cores != 64 {
		t.Fatal("cluster must reflect config")
	}
}

func TestStageTimeParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	m := NewLatencyModel(cfg)
	oneOp := []OpCost{{Node: 0, DiskBytes: 1 << 30, ProcBytes: 0, RespBytes: 100, ReqBytes: 100}}
	tOne, _ := m.StageTime(oneOp)
	// The same disk work split across 4 nodes must be ~4x faster.
	fourOps := make([]OpCost, 4)
	for i := range fourOps {
		fourOps[i] = OpCost{Node: i, DiskBytes: 1 << 28, RespBytes: 25, ReqBytes: 25}
	}
	tFour, _ := m.StageTime(fourOps)
	if tFour >= tOne {
		t.Fatalf("parallel disk work must be faster: %v vs %v", tFour, tOne)
	}
	ratio := float64(tOne) / float64(tFour)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("4-way parallel speedup was %.1fx", ratio)
	}
}

func TestStageTimeNetworkSerializes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	m := NewLatencyModel(cfg)
	// Two ops on different nodes, but the replies share the coordinator's
	// ingress link: doubling reply bytes must roughly double network time.
	small := []OpCost{{Node: 0, RespBytes: 1 << 30}}
	big := []OpCost{{Node: 0, RespBytes: 1 << 30}, {Node: 1, RespBytes: 1 << 30}}
	tSmall, bdSmall := m.StageTime(small)
	tBig, bdBig := m.StageTime(big)
	if bdBig.Network <= bdSmall.Network {
		t.Fatal("more reply bytes must mean more network time")
	}
	ratio := float64(tBig) / float64(tSmall)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("fan-in serialization ratio was %.2f", ratio)
	}
}

func TestStageTimeLocalOpsSkipNetwork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	m := NewLatencyModel(cfg)
	local := []OpCost{{Local: true, ProcBytes: 1 << 30}}
	tLocal, bd := m.StageTime(local)
	if bd.Network != 0 {
		t.Fatalf("local ops must not pay network: %v", bd)
	}
	want := time.Duration(float64(1<<30) / cfg.ProcessRate * float64(time.Second))
	if tLocal < want*9/10 || tLocal > want*11/10 {
		t.Fatalf("local proc time %v, want ≈%v", tLocal, want)
	}
}

func TestStageTimeEmpty(t *testing.T) {
	m := NewLatencyModel(DefaultConfig())
	d, bd := m.StageTime(nil)
	if d != 0 || bd.Total() != 0 {
		t.Fatal("empty stage must be free")
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	// Fig. 14c's premise: lower bandwidth means higher stage latency for
	// transfer-heavy stages.
	var prev time.Duration
	for i, gbps := range []float64{100, 50, 25, 10} {
		cfg := DefaultConfig()
		cfg.JitterFrac = 0
		cfg.NetBandwidth = gbps * 1e9 / 8
		m := NewLatencyModel(cfg)
		d, _ := m.StageTime([]OpCost{{Node: 0, RespBytes: 1 << 30}})
		if i > 0 && d <= prev {
			t.Fatalf("latency must grow as bandwidth shrinks: %v then %v", prev, d)
		}
		prev = d
	}
}

func TestJitterDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	ops := []OpCost{{Node: 0, DiskBytes: 1 << 20, ProcBytes: 1 << 20, RespBytes: 1 << 20}}
	m1 := NewLatencyModel(cfg)
	m2 := NewLatencyModel(cfg)
	for i := 0; i < 10; i++ {
		d1, _ := m1.StageTime(ops)
		d2, _ := m2.StageTime(ops)
		if d1 != d2 {
			t.Fatal("same seed must give identical jitter sequences")
		}
	}
}

func TestTransferAndLocalWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	m := NewLatencyModel(cfg)
	if m.TransferTime(uint64(cfg.NetBandwidth)) != time.Second {
		t.Fatal("TransferTime wrong")
	}
	if m.LocalWork(uint64(cfg.ProcessRate)) != time.Second {
		t.Fatal("LocalWork wrong")
	}
	if m.ProcessRate() != cfg.ProcessRate {
		t.Fatal("ProcessRate accessor wrong")
	}
}

func TestTotalStoredBytes(t *testing.T) {
	cl := New(Config{Nodes: 2, ProcessRate: 1e9, NetCPURate: 1e9})
	cl.Call(0, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: "a", Data: make([]byte, 100)})
	cl.Call(1, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: "b", Data: make([]byte, 50)})
	if cl.TotalStoredBytes() != 150 {
		t.Fatalf("TotalStoredBytes = %d", cl.TotalStoredBytes())
	}
}
