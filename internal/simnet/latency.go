package simnet

import (
	"math/rand"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/metrics"
)

// OpCost describes the cost of one operation within a query stage: where it
// ran, how many bytes crossed the network, how many were read from disk and
// how many uncompressed bytes were decoded/scanned.
type OpCost struct {
	Node      int
	ReqBytes  uint64
	RespBytes uint64
	DiskBytes uint64
	ProcBytes uint64
	// Local marks operations executed on the coordinator itself (no
	// network traversal).
	Local bool
}

// LatencyModel converts the measured per-operation byte counts of a query
// stage into a stage latency, following the structure of a real fan-out:
// the coordinator serializes its requests out, nodes work in parallel
// (disk read, decode+scan, reply serialization per node), and the replies
// serialize back through the coordinator's ingress link.
type LatencyModel struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// NewLatencyModel returns a model with the configuration's jitter seed.
func NewLatencyModel(cfg Config) *LatencyModel {
	return &LatencyModel{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// ProcessRate returns the model's decode+scan rate in bytes/sec.
func (m *LatencyModel) ProcessRate() float64 { return m.cfg.ProcessRate }

// jitter returns a multiplicative factor 1±JitterFrac.
func (m *LatencyModel) jitter() float64 {
	if m.cfg.JitterFrac == 0 {
		return 1
	}
	m.mu.Lock()
	u := m.rng.Float64()*2 - 1
	m.mu.Unlock()
	return 1 + m.cfg.JitterFrac*u
}

// StageTime computes a stage's latency and phase breakdown from its
// operations' costs. Node-local work (disk read, decode+scan) runs in
// parallel across nodes, so the stage pays the slowest branch; network
// transfers serialize through the coordinator's shaped link (the fan-in
// bottleneck, exactly what wondershaper throttles in §6), so the stage pays
// the sum of request and reply bytes over that link plus one RTT.
func (m *LatencyModel) StageTime(ops []OpCost) (time.Duration, metrics.Breakdown) {
	if len(ops) == 0 {
		return 0, metrics.Breakdown{}
	}
	cfg := m.cfg
	type branch struct{ disk, proc float64 }
	branches := make(map[int]*branch)
	var localBranch branch
	var coordEgress, coordIngress float64
	remote := false
	remoteOps := 0
	for _, op := range ops {
		disk := float64(op.DiskBytes) / cfg.DiskBandwidth * m.jitter()
		proc := float64(op.ProcBytes) / cfg.ProcessRate * m.jitter()
		if op.Local {
			localBranch.disk += disk
			localBranch.proc += proc
			continue
		}
		remote = true
		remoteOps++
		b := branches[op.Node]
		if b == nil {
			b = &branch{}
			branches[op.Node] = b
		}
		b.disk += disk
		b.proc += proc
		coordEgress += float64(op.ReqBytes) / cfg.NetBandwidth
		coordIngress += float64(op.RespBytes) / cfg.NetBandwidth * m.jitter()
	}
	// The critical branch bounds the parallel node-local section.
	crit := localBranch
	for _, b := range branches {
		if b.disk+b.proc > crit.disk+crit.proc {
			crit = *b
		}
	}
	var netTime float64
	if remote {
		netTime = cfg.RTT + float64(remoteOps)*cfg.RPCOverhead + coordEgress + coordIngress
	}
	total := crit.disk + crit.proc + netTime
	bd := metrics.Breakdown{
		DiskRead:   secs(crit.disk),
		Processing: secs(crit.proc),
		Network:    secs(netTime),
	}
	return secs(total), bd
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// ClientLeg returns the fixed cost of the client round trip: one RTT plus
// the result bytes over the coordinator's link.
func (m *LatencyModel) ClientLeg(resultBytes uint64) time.Duration {
	return secs(m.cfg.RTT + float64(resultBytes)/m.cfg.NetBandwidth*m.jitter())
}

// LocalWork returns the time for coordinator-local processing of n
// uncompressed bytes (result assembly, chunk decode at the coordinator).
func (m *LatencyModel) LocalWork(procBytes uint64) time.Duration {
	return secs(float64(procBytes) / m.cfg.ProcessRate * m.jitter())
}

// TransferTime returns the time to move n bytes through one node's link.
func (m *LatencyModel) TransferTime(bytes uint64) time.Duration {
	return secs(float64(bytes) / m.cfg.NetBandwidth)
}
