// Package simnet provides the deterministic in-process cluster substrate the
// benchmark harness runs on. It stands in for the paper's 9-node CloudLab
// testbed (§6): every byte that crosses the simulated network is produced by
// the real code path (real erasure-coded blocks, real compressed chunks,
// real bitmaps), so traffic volumes are exact; latency is then computed from
// those volumes with a calibrated cost model (disk bandwidth, per-node
// network bandwidth à la wondershaper, RPC RTT, and decode/scan CPU rate).
//
// This preserves the quantities the paper's evaluation reports — who wins,
// by what factor, and where the crossover points sit — while keeping the
// experiments deterministic and laptop-scale. The tcpnet package provides a
// real-socket transport with the same interface for integration testing and
// deployment.
package simnet

import (
	"fmt"
	"sync"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/rpc"
)

// Config holds the cluster and cost-model parameters. The defaults are
// calibrated to the paper's testbed: r6525 machines with NVMe SSDs, 64
// cores, and links shaped to 25 Gb/s (§6 "Configuration").
type Config struct {
	// Nodes is the number of storage nodes (paper default: 9).
	Nodes int
	// DiskBandwidth is per-node disk read bandwidth, bytes/sec.
	DiskBandwidth float64
	// NetBandwidth is per-node ingress/egress bandwidth, bytes/sec.
	NetBandwidth float64
	// RTT is the per-stage round-trip overhead.
	RTT float64 // seconds
	// RPCOverhead is the per-operation request handling cost at the
	// coordinator (marshalling + syscalls), serialized per remote op. It
	// is what makes fetching a chunk in many fragments more expensive
	// than one contiguous read (§3.1's reassembly overhead).
	RPCOverhead float64 // seconds
	// ProcessRate is the decode+scan rate over uncompressed bytes, bytes/sec.
	ProcessRate float64
	// NetCPURate is bytes of network traffic one core processes per second
	// (the "network processing CPU" the paper says reassembly wastes, §1).
	NetCPURate float64
	// Cores is the per-node core count, for utilization accounting.
	Cores int
	// JitterFrac adds deterministic pseudo-random jitter (±frac) to each
	// operation's service time, producing realistic latency tails.
	JitterFrac float64
	// Seed drives the jitter generator.
	Seed int64
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Nodes:         9,
		DiskBandwidth: 2.0e9,    // NVMe sequential read
		NetBandwidth:  25e9 / 8, // 25 Gb/s wondershaper cap
		RTT:           200e-6,   // datacenter RPC round trip
		RPCOverhead:   50e-6,    // per-RPC handling at the coordinator
		ProcessRate:   6.0e9,    // multicore Parquet decode + predicate scan
		NetCPURate:    5e9,      // network stack bytes/core/sec
		Cores:         64,
		JitterFrac:    0.15,
		Seed:          1,
	}
}

// Cluster is an in-process set of storage nodes implementing cluster.Client.
type Cluster struct {
	cfg   Config
	nodes []*cluster.Node

	mu      sync.Mutex
	down    []bool
	traffic metrics.Traffic
	cpuSec  []float64 // per node accumulated CPU seconds
}

// New builds a simulated cluster with in-memory block stores.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("simnet: invalid node count %d", cfg.Nodes))
	}
	c := &Cluster{
		cfg:    cfg,
		down:   make([]bool, cfg.Nodes),
		cpuSec: make([]float64, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, cluster.NewNode(i, cluster.NewMemStore()))
	}
	return c
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumNodes implements cluster.Client.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node exposes a node for tests and storage audits.
func (c *Cluster) Node(i int) *cluster.Node { return c.nodes[i] }

// Call implements cluster.Client: direct dispatch plus traffic and CPU
// accounting.
func (c *Cluster) Call(node int, req *rpc.Request) (*rpc.Response, error) {
	if node < 0 || node >= len(c.nodes) {
		return nil, fmt.Errorf("simnet: node %d out of range", node)
	}
	c.mu.Lock()
	isDown := c.down[node]
	c.mu.Unlock()
	if isDown {
		return nil, fmt.Errorf("%w: %d", cluster.ErrNodeDown, node)
	}
	resp := c.nodes[node].Handle(req)
	reqB, respB := req.WireSize(), resp.WireSize()
	c.mu.Lock()
	c.traffic.Add(reqB + respB)
	c.cpuSec[node] += float64(resp.Cost.ProcBytes)/c.cfg.ProcessRate +
		float64(reqB+respB)/c.cfg.NetCPURate
	c.mu.Unlock()
	return resp, nil
}

// SetDown marks a node unreachable (failure injection).
func (c *Cluster) SetDown(node int, down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[node] = down
}

// Traffic returns the accumulated network traffic.
func (c *Cluster) Traffic() metrics.Traffic {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traffic
}

// ResetTraffic zeroes the traffic counters.
func (c *Cluster) ResetTraffic() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traffic = metrics.Traffic{}
}

// AddCPU charges extra CPU seconds to a node (coordinator-side work).
func (c *Cluster) AddCPU(node int, seconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cpuSec[node] += seconds
}

// CPUSeconds returns a copy of the per-node CPU second counters.
func (c *Cluster) CPUSeconds() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.cpuSec...)
}

// ResetCPU zeroes the CPU counters.
func (c *Cluster) ResetCPU() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.cpuSec {
		c.cpuSec[i] = 0
	}
}

// TotalStoredBytes sums every node's block bytes — the storage-overhead
// audit used by the FAC overhead experiments.
func (c *Cluster) TotalStoredBytes() uint64 {
	var total uint64
	for _, n := range c.nodes {
		if ms, ok := n.Blocks.(*cluster.MemStore); ok {
			total += ms.TotalBytes()
		}
	}
	return total
}
