package store

import (
	"bytes"
	"testing"
)

// TestOverwriteIsFreshInsert: re-putting an object writes a new version
// aside, publishes it via the metadata swap, and garbage-collects the old
// blocks — no in-place mutation (§5: updates are fresh inserts).
func TestOverwriteIsFreshInsert(t *testing.T) {
	v1, _, _ := makeObject(t, 2, 200, 101)
	v2, _, _ := makeObject(t, 3, 250, 102)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	meta1, _ := s.Meta("obj")
	if meta1.Version != 0 {
		t.Fatalf("first version = %d", meta1.Version)
	}
	storedAfterV1 := cl.TotalStoredBytes()

	if _, err := s.Put("obj", v2); err != nil {
		t.Fatal(err)
	}
	meta2, _ := s.Meta("obj")
	if meta2.Version != 1 {
		t.Fatalf("second version = %d", meta2.Version)
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("overwritten object must read back as v2: %v", err)
	}
	// Old blocks must be gone: total storage should reflect v2 only
	// (within the metadata replicas' size difference).
	storedAfterV2 := cl.TotalStoredBytes()
	if storedAfterV2 > storedAfterV1+uint64(len(v2))*2 {
		t.Fatalf("old version not collected: %d then %d bytes", storedAfterV1, storedAfterV2)
	}
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if len(id) > 7 && id[:7] == "obj/v0/" {
				t.Fatalf("stale v0 block %q survives on node %d", id, i)
			}
		}
	}
	// Queries against the new version work.
	res, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("query on overwritten object returned nothing")
	}
}

// TestOverwriteSurvivesRepeat: many overwrites keep exactly one version.
func TestOverwriteSurvivesRepeat(t *testing.T) {
	s, cl := newSimStore(t, fusionTestOptions())
	var last []byte
	for i := 0; i < 5; i++ {
		data, _, _ := makeObject(t, 2, 150, int64(200+i))
		if _, err := s.Put("obj", data); err != nil {
			t.Fatal(err)
		}
		last = data
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, last) {
		t.Fatalf("final version wrong: %v", err)
	}
	meta, _ := s.Meta("obj")
	if meta.Version != 4 {
		t.Fatalf("version = %d, want 4", meta.Version)
	}
	// Exactly one write epoch's blocks remain (five Puts burned epochs
	// 1..5; only the last survives GC).
	epochs := map[uint64]bool{}
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if object, epoch, _, _, ok := parseBlockID(id); ok && object == "obj" {
				epochs[epoch] = true
			}
		}
	}
	if len(epochs) != 1 || !epochs[5] {
		t.Fatalf("epochs on disk: %v", epochs)
	}
}
