package store

import (
	"bytes"
	"sync"
	"testing"

	"github.com/fusionstore/fusion/internal/simnet"
)

// twoCoordinators builds two Store handles over one shared cluster — two
// coordinators with independent metadata caches, the setup behind the
// concurrent-overwrite bugs.
func twoCoordinators(t *testing.T) (*Store, *Store, *simnet.Cluster) {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cl := simnet.New(cfg)
	opts := fusionTestOptions()
	opts.Model = simnet.NewLatencyModel(cfg)
	a, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, cl
}

// TestOverwriteResolvesPrevByQuorum is the deterministic regression for the
// concurrent-overwrite race: coordinator B's metadata cache goes stale while
// coordinator A overwrites the object. B's subsequent Put must resolve the
// previous version from the metadata quorum at the commit point — a
// cache-served prev would publish a duplicate Version, re-delete the
// long-gone first epoch's blocks, and strand the real previous epoch.
func TestOverwriteResolvesPrevByQuorum(t *testing.T) {
	a, b, cl := twoCoordinators(t)
	v1, _, _ := makeObject(t, 2, 200, 301)
	v2, _, _ := makeObject(t, 2, 220, 302)
	v3, _, _ := makeObject(t, 2, 240, 303)

	if _, err := a.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	// Warm B's meta cache at version 0 …
	if m, err := b.Meta("obj"); err != nil || m.Version != 0 {
		t.Fatalf("b sees version %v, err %v", m, err)
	}
	// … then supersede it through A.
	if _, err := a.Put("obj", v2); err != nil {
		t.Fatal(err)
	}
	// B overwrites with a stale cache. The commit point must consult the
	// quorum: publish version 2 and GC v2's epoch, not v1's.
	if _, err := b.Put("obj", v3); err != nil {
		t.Fatal(err)
	}
	m, err := b.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Fatalf("version after stale-cache overwrite = %d, want 2", m.Version)
	}
	got, err := b.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, v3) {
		t.Fatalf("object must read back as v3: %v", err)
	}
	// Exactly one epoch's blocks may remain — the published one. A stranded
	// earlier epoch means B GC'd the wrong previous version.
	epochs := map[uint64]bool{}
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if object, epoch, _, _, ok := parseBlockID(id); ok && object == "obj" {
				epochs[epoch] = true
			}
		}
	}
	if len(epochs) != 1 || !epochs[m.Epoch] {
		t.Fatalf("epochs on disk: %v, want only published epoch %d", epochs, m.Epoch)
	}
}

// TestOverwriteStormTwoWriters drives two coordinators overwriting the same
// name concurrently (run under -race in CI). Blind metadata writes mean the
// winning version is scheduling-dependent, but the integrity properties are
// not: every read returns one writer's payload byte-for-byte (never a
// hybrid), and after orphan reconciliation only the published epoch's blocks
// survive.
func TestOverwriteStormTwoWriters(t *testing.T) {
	a, b, cl := twoCoordinators(t)
	const rounds = 4
	payloads := make([][]byte, 0, 2*rounds)
	for i := 0; i < 2*rounds; i++ {
		p, _, _ := makeObject(t, 2, 150, int64(400+i))
		payloads = append(payloads, p)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	writer := func(s *Store, ps [][]byte) {
		defer wg.Done()
		for _, p := range ps {
			if _, err := s.Put("obj", p); err != nil {
				errs <- err
				return
			}
		}
	}
	wg.Add(2)
	go writer(a, payloads[:rounds])
	go writer(b, payloads[rounds:])
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// A fresh coordinator (no cache) must read one complete payload.
	cfg := simnet.DefaultConfig()
	opts := fusionTestOptions()
	opts.Model = simnet.NewLatencyModel(cfg)
	c, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("obj", 0, 0)
	if err != nil {
		t.Fatalf("read after overwrite storm: %v", err)
	}
	whole := false
	for _, p := range payloads {
		if bytes.Equal(got, p) {
			whole = true
			break
		}
	}
	if !whole {
		t.Fatal("storm read returned a hybrid of two writers' payloads")
	}
	// Losing attempts' blocks are orphans (their metadata was superseded by
	// a concurrent publish); reconciliation must leave only the winner.
	if _, err := c.ReconcileOrphans(true); err != nil {
		t.Fatal(err)
	}
	m, err := c.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if object, epoch, _, _, ok := parseBlockID(id); ok && object == "obj" && epoch != m.Epoch {
				t.Fatalf("epoch %d blocks survive reconciliation (published %d)", epoch, m.Epoch)
			}
		}
	}
	if got, err := c.Get("obj", 0, 0); err != nil || len(got) == 0 {
		t.Fatalf("object unreadable after reconciliation: %v", err)
	}
}

// TestOverwriteIsFreshInsert: re-putting an object writes a new version
// aside, publishes it via the metadata swap, and garbage-collects the old
// blocks — no in-place mutation (§5: updates are fresh inserts).
func TestOverwriteIsFreshInsert(t *testing.T) {
	v1, _, _ := makeObject(t, 2, 200, 101)
	v2, _, _ := makeObject(t, 3, 250, 102)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	meta1, _ := s.Meta("obj")
	if meta1.Version != 0 {
		t.Fatalf("first version = %d", meta1.Version)
	}
	storedAfterV1 := cl.TotalStoredBytes()

	if _, err := s.Put("obj", v2); err != nil {
		t.Fatal(err)
	}
	meta2, _ := s.Meta("obj")
	if meta2.Version != 1 {
		t.Fatalf("second version = %d", meta2.Version)
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("overwritten object must read back as v2: %v", err)
	}
	// Old blocks must be gone: total storage should reflect v2 only
	// (within the metadata replicas' size difference).
	storedAfterV2 := cl.TotalStoredBytes()
	if storedAfterV2 > storedAfterV1+uint64(len(v2))*2 {
		t.Fatalf("old version not collected: %d then %d bytes", storedAfterV1, storedAfterV2)
	}
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if len(id) > 7 && id[:7] == "obj/v0/" {
				t.Fatalf("stale v0 block %q survives on node %d", id, i)
			}
		}
	}
	// Queries against the new version work.
	res, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("query on overwritten object returned nothing")
	}
}

// TestOverwriteSurvivesRepeat: many overwrites keep exactly one version.
func TestOverwriteSurvivesRepeat(t *testing.T) {
	s, cl := newSimStore(t, fusionTestOptions())
	var last []byte
	for i := 0; i < 5; i++ {
		data, _, _ := makeObject(t, 2, 150, int64(200+i))
		if _, err := s.Put("obj", data); err != nil {
			t.Fatal(err)
		}
		last = data
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, last) {
		t.Fatalf("final version wrong: %v", err)
	}
	meta, _ := s.Meta("obj")
	if meta.Version != 4 {
		t.Fatalf("version = %d, want 4", meta.Version)
	}
	// Exactly one write epoch's blocks remain (five Puts burned epochs
	// 1..5; only the last survives GC).
	epochs := map[uint64]bool{}
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if object, epoch, _, _, ok := parseBlockID(id); ok && object == "obj" {
				epochs[epoch] = true
			}
		}
	}
	if len(epochs) != 1 || !epochs[5] {
		t.Fatalf("epochs on disk: %v", epochs)
	}
}
