package store

import (
	"fmt"
	"math"
	"testing"

	"github.com/fusionstore/fusion/internal/lpq"
)

// This file is the GROUP BY / ORDER BY+LIMIT equivalence suite: every
// execution path — batched pushdown, per-op pushdown, cached, baseline
// reassembly, and degraded (node down) — must return the exact same result
// table, bit-for-bit for floats. The shared canonical reduction (per-row-
// group partials merged in row-group order) is what makes that exactness
// possible; these tests are its regression net.

// resultKey renders a Result's table deterministically, with floats printed
// as raw bits so "close enough" can never mask a divergent reduction.
func resultKey(res *Result) string {
	s := fmt.Sprintf("rows=%d cols=%v aggs=%v\n", res.Rows, res.Columns, res.AggLabels)
	for i, col := range res.Data {
		s += fmt.Sprintf("col %d type=%v ", i, col.Type)
		switch col.Type {
		case lpq.Int64:
			s += fmt.Sprintf("%v", col.Ints)
		case lpq.Float64:
			for _, f := range col.Floats {
				s += fmt.Sprintf(" %016x", math.Float64bits(f))
			}
		default:
			s += fmt.Sprintf("%q", col.Strings)
		}
		s += "\n"
	}
	for i, v := range res.AggValues {
		s += fmt.Sprintf("agg %d kind=%d i=%d f=%016x s=%q\n", i, v.Kind, v.I, math.Float64bits(v.F), v.S)
	}
	return s
}

var groupEquivQueries = []string{
	"SELECT flag, COUNT(*), SUM(price), AVG(price), MIN(qty), MAX(qty) FROM obj WHERE qty < 40 GROUP BY flag",
	"SELECT qty, COUNT(*) FROM obj GROUP BY qty ORDER BY COUNT(*) DESC, qty LIMIT 5",
	"SELECT flag, MIN(comment), AVG(qty) FROM obj GROUP BY flag ORDER BY flag DESC",
	"SELECT flag, qty, SUM(price) FROM obj WHERE price > 20 GROUP BY flag, qty ORDER BY flag, qty LIMIT 10",
	"SELECT flag AS f, COUNT(*) AS n FROM obj GROUP BY f ORDER BY n DESC LIMIT 2",
	"SELECT flag, SUM(price) FROM obj GROUP BY flag ORDER BY AVG(price) DESC",
	"SELECT id, price FROM obj WHERE qty >= 10 ORDER BY price DESC LIMIT 7",
	"SELECT id FROM obj ORDER BY price LIMIT 5",
	"SELECT id, flag, qty FROM obj WHERE qty > 30 ORDER BY flag, qty DESC LIMIT 9",
	"SELECT id, qty FROM obj WHERE flag = 'A' ORDER BY qty",
	"SELECT id FROM obj ORDER BY id LIMIT 4",
	"SELECT flag, COUNT(*) FROM obj GROUP BY flag LIMIT 0",
	"SELECT id FROM obj LIMIT 0",
}

// TestGroupOrderEquivalenceMatrix runs every query under four
// configurations — batched pushdown, per-op pushdown (DisableBatch), cached
// pushdown (second run against a warm cache), and the fixed-block baseline
// with coordinator-side execution — and requires bit-identical results.
func TestGroupOrderEquivalenceMatrix(t *testing.T) {
	// Row groups must be big enough that partial states undercut compressed
	// chunks, or the cost model (correctly) refuses to push anything.
	data, _, _ := makeObject(t, 3, 6000, 95)

	type config struct {
		name string
		opts Options
		warm bool // query twice, keep the cache-served run
	}
	batched := fusionTestOptions()
	perOp := fusionTestOptions()
	perOp.DisableBatch = true
	cached := fusionTestOptions()
	cached.CacheBytes = 64 << 20
	configs := []config{
		{name: "pushdown-batched", opts: batched},
		{name: "pushdown-per-op", opts: perOp},
		{name: "pushdown-cached", opts: cached, warm: true},
		{name: "baseline", opts: BaselineOptions()},
	}

	results := make(map[string]map[string]*Result) // config -> query -> result
	for _, cfg := range configs {
		s, _ := newSimStore(t, cfg.opts)
		if _, err := s.Put("obj", data); err != nil {
			t.Fatal(err)
		}
		results[cfg.name] = make(map[string]*Result)
		for _, q := range groupEquivQueries {
			res, err := s.Query(q)
			if err != nil {
				t.Fatalf("%s: %q: %v", cfg.name, q, err)
			}
			if cfg.warm {
				if res, err = s.Query(q); err != nil {
					t.Fatalf("%s warm: %q: %v", cfg.name, q, err)
				}
			}
			results[cfg.name][q] = res
		}
	}

	ref := results["baseline"]
	for _, cfg := range configs[:3] {
		for _, q := range groupEquivQueries {
			got, want := resultKey(results[cfg.name][q]), resultKey(ref[q])
			if got != want {
				t.Errorf("%s diverges from baseline on %q:\n--- got ---\n%s--- want ---\n%s", cfg.name, q, got, want)
			}
		}
	}

	// The pushed configuration must actually push: grouped row groups as
	// partial-state RPCs, top-k row groups as TopK RPCs.
	var groupRPCs, topkRPCs, partials int
	for _, res := range results["pushdown-batched"] {
		groupRPCs += res.Stats.GroupAggRPCs
		topkRPCs += res.Stats.TopKRPCs
		partials += res.Stats.PartialGroups
	}
	if groupRPCs == 0 || partials == 0 {
		t.Errorf("batched pushdown never issued GroupAgg RPCs (rpcs=%d partials=%d)", groupRPCs, partials)
	}
	if topkRPCs == 0 {
		t.Error("batched pushdown never issued TopK RPCs")
	}
}

// TestGroupOrderDegradedEquivalence: with a storage node down, grouped and
// top-k queries spill to coordinator-side execution over reconstructed
// chunks and still return bit-identical results.
func TestGroupOrderDegradedEquivalence(t *testing.T) {
	data, _, _ := makeObject(t, 3, 600, 96)
	opts := fusionTestOptions()
	s, cl := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT flag, COUNT(*), SUM(price), AVG(price) FROM obj WHERE qty < 35 GROUP BY flag",
		"SELECT qty, COUNT(*) FROM obj GROUP BY qty ORDER BY COUNT(*) DESC, qty LIMIT 6",
		"SELECT id, price FROM obj WHERE qty >= 5 ORDER BY price DESC LIMIT 8",
	}
	want := make(map[string]string)
	for _, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = resultKey(res)
	}
	for node := 0; node < 3; node++ {
		cl.SetDown(node, true)
		for _, q := range queries {
			res, err := s.Query(q)
			if err != nil {
				t.Fatalf("node %d down: %q: %v", node, q, err)
			}
			if got := resultKey(res); got != want[q] {
				t.Errorf("node %d down: %q diverges:\n--- got ---\n%s--- want ---\n%s", node, q, got, want[q])
			}
		}
		cl.SetDown(node, false)
	}
}

// TestFloatAggregateDeterminism is the regression for the fan-out float-sum
// fix: SUM/AVG over a float column must produce byte-identical AggValues on
// every run, at every worker-pool size, batched or per-op, pushed or
// fetched. The reduction is defined as per-(row group, chunk) partials
// merged in task order, so no schedule and no transport can reorder it.
// Run with -race to catch any unsynchronized accumulation.
func TestFloatAggregateDeterminism(t *testing.T) {
	data, _, _ := makeObject(t, 4, 500, 97)
	const query = "SELECT SUM(price), AVG(price), COUNT(*) FROM obj WHERE qty < 45"

	bits := func(res *Result) [2]uint64 {
		return [2]uint64{math.Float64bits(res.AggValues[0].F), math.Float64bits(res.AggValues[1].F)}
	}

	serial := fusionTestOptions()
	serial.QueryWorkers = 1
	refStore, _ := newSimStore(t, serial)
	if _, err := refStore.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	refRes, err := refStore.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	want := bits(refRes)

	for _, cfg := range []struct {
		name string
		mut  func(*Options)
	}{
		{"parallel-batched", func(o *Options) { o.QueryWorkers = 8 }},
		{"parallel-per-op", func(o *Options) { o.QueryWorkers = 8; o.DisableBatch = true }},
		{"parallel-cached", func(o *Options) { o.QueryWorkers = 8; o.CacheBytes = 64 << 20 }},
		{"aggregate-pushdown", func(o *Options) { o.QueryWorkers = 8; o.AggregatePushdown = true }},
		{"baseline", func(o *Options) {}},
	} {
		opts := cfg.name
		var o Options
		if cfg.name == "baseline" {
			o = BaselineOptions()
		} else {
			o = fusionTestOptions()
		}
		cfg.mut(&o)
		s, _ := newSimStore(t, o)
		if _, err := s.Put("obj", data); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			res, err := s.Query(query)
			if err != nil {
				t.Fatalf("%s run %d: %v", opts, i, err)
			}
			if got := bits(res); got != want {
				t.Fatalf("%s run %d: AggValues bits %x, want %x — the ordered reduction leaked schedule or path dependence",
					opts, i, got, want)
			}
		}
	}
}

// TestTopKStatsPruning: a strictly increasing column lets the footer bounds
// prove that later row groups cannot place in an ascending top-k, so they
// are skipped without any I/O.
func TestTopKStatsPruning(t *testing.T) {
	data, _, _ := makeObject(t, 4, 400, 98)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// id is globally increasing: row group 0 alone holds the 5 smallest.
	res, err := s.Query("SELECT id FROM obj ORDER BY id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrunedRowGroups < 3 {
		t.Errorf("top-k bound pruning skipped %d row groups, want >= 3", res.Stats.PrunedRowGroups)
	}
	wantIDs := []int64{0, 1, 2, 3, 4}
	if len(res.Data) != 1 || len(res.Data[0].Ints) != 5 {
		t.Fatalf("unexpected shape: %+v", res.Data)
	}
	for i, id := range res.Data[0].Ints {
		if id != wantIDs[i] {
			t.Fatalf("top-5 ids = %v, want %v", res.Data[0].Ints, wantIDs)
		}
	}
}

// TestGroupByCardinalitySpill: grouping by a near-unique key makes the
// planner (distinct estimate ~= row count) refuse pushdown, spilling to
// coordinator-side grouping — and the result is still exact.
func TestGroupByCardinalitySpill(t *testing.T) {
	data, _, _ := makeObject(t, 2, 700, 99)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT id, COUNT(*) FROM obj GROUP BY id ORDER BY id LIMIT 20")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GroupAggRPCs != 0 {
		t.Errorf("near-unique keys must not push down (GroupAggRPCs=%d)", res.Stats.GroupAggRPCs)
	}
	if res.Stats.GroupSpills == 0 {
		t.Error("planner veto must be recorded as a group spill")
	}
	if res.Rows != 20 || len(res.Data[0].Ints) != 20 {
		t.Fatalf("unexpected shape: rows=%d", res.Rows)
	}
	for i, id := range res.Data[0].Ints {
		if id != int64(i) {
			t.Fatalf("ids = %v..., want 0..19 in order", res.Data[0].Ints[:i+1])
		}
	}
	for _, n := range res.Data[1].Ints {
		if n != 1 {
			t.Fatalf("COUNT(*) per unique id = %v, want all 1", res.Data[1].Ints)
		}
	}
}
