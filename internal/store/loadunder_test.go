// Degraded-read matrix, concurrent-load variant (external test package: the
// load harness imports store, so this file must sit outside package store).
//
// The PR 2 matrix proves every ≤ n−k crash pattern serves reads on an idle
// store; the PR 4 crash-point suite proves an interrupted overwrite leaves
// old-or-new-never-hybrid state. This test composes both *under traffic*:
// crash patterns are replayed while the open-loop generator overwrites and
// reads the same objects, and the content oracle asserts that no request —
// degraded, racing an overwrite, or both — observes bytes that are not
// exactly one admissible version.
package store_test

import (
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/faultnet"
	"github.com/fusionstore/fusion/internal/loadgen"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/store"
)

func TestDegradedReadsUnderLoad(t *testing.T) {
	const seed = 17
	cfg := simnet.DefaultConfig()
	cfg.Nodes = 9
	inj := faultnet.New(simnet.New(cfg), seed)
	opts := store.FusionOptions()
	opts.StorageBudget = 0.5
	opts.QueryWorkers = 2
	opts.Retry = cluster.Policy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  500 * time.Microsecond,
		Jitter:      cluster.NewJitterSource(seed),
	}
	s, err := store.New(inj, opts)
	if err != nil {
		t.Fatal(err)
	}

	loadCfg := loadgen.Config{
		Seed:          seed,
		Rate:          500,
		Duration:      900 * time.Millisecond,
		Objects:       8,
		RowsPerObject: 40,
		// Write-heavy relative to the default mix: the point is overwrites
		// racing degraded reads.
		Mix: loadgen.Mix{Get: 0.55, Put: 0.30, Query: 0.15},
	}
	target := loadgen.StoreTarget{S: s}
	oracle, err := loadgen.NewOracle(loadCfg.Seed, loadCfg.Objects, loadCfg.RowsPerObject)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadgen.Preload(target, oracle); err != nil {
		t.Fatal(err)
	}

	// Replay full-tolerance crash patterns from the PR 2 matrix while the
	// generator runs: each window downs n−k = 3 nodes, holds, then revives
	// before the next pattern (metakv's 7-replica majority survives 3 down,
	// so reads must keep working through every window).
	patterns := [][]int{{0, 1, 2}, {0, 4, 8}, {6, 7, 8}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, pattern := range patterns {
			time.Sleep(120 * time.Millisecond)
			for _, n := range pattern {
				inj.SetDown(n, true)
			}
			time.Sleep(130 * time.Millisecond)
			inj.ReviveAll()
		}
	}()
	run, err := loadgen.RunPreloaded(target, oracle, loadCfg)
	<-done
	if err != nil {
		t.Fatal(err)
	}

	if run.OracleMismatches != 0 {
		t.Fatalf("hybrid or stale bytes observed under degraded load: %v", run.MismatchSamples)
	}
	if avail := run.ReadAvailability(); avail < 0.99 {
		t.Fatalf("read availability %.4f under tolerable crash patterns (gets: %+v, queries: %+v)",
			avail, run.PerOp["get"], run.PerOp["query"])
	}
	// Puts may legitimately fail while placement nodes are down, but every
	// failure must be cleanly classified — an unexplained error class under
	// fault replay is a bug.
	for kind, ops := range run.PerOp {
		if n := ops.Errors[loadgen.ErrClassOther]; n > 0 {
			t.Fatalf("%d unclassified %s errors under crash replay: %v", n, kind, ops.Errors)
		}
	}
	if run.Trace.DegradedReads == 0 {
		t.Fatal("no degraded reads recorded — the crash windows never overlapped traffic")
	}
	t.Logf("degraded-under-load: readAvail=%.4f degraded=%d retries=%d putErrs=%v",
		run.ReadAvailability(), run.Trace.DegradedReads, run.Trace.Retries, run.PerOp["put"].Errors)
}
