package store

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/sched"
)

// TestCancelledContextFailsOps: a context dead before the call must fail
// every public ctx-aware entry point with the context's own error, never a
// transport or availability error.
func TestCancelledContextFailsOps(t *testing.T) {
	data, _, _ := makeObject(t, 2, 200, 41)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := s.GetContext(ctx, "obj", 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetContext = %v, want context.Canceled", err)
	}
	if _, err := s.QueryContext(ctx, "SELECT id FROM obj WHERE qty < 10"); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext = %v, want context.Canceled", err)
	}
	if err := s.DeleteContext(ctx, "obj"); !errors.Is(err, context.Canceled) {
		t.Fatalf("DeleteContext = %v, want context.Canceled", err)
	}
	// The object must have survived the cancelled delete.
	if _, err := s.Get("obj", 0, 0); err != nil {
		t.Fatalf("object damaged by cancelled delete: %v", err)
	}
}

// TestQueryDeadlineNoGoroutineLeak: queries abandoned at their deadline must
// not strand fan-out goroutines. The store's worker pools are per-query, so
// a leak here shows up as a monotonically growing goroutine count.
func TestQueryDeadlineNoGoroutineLeak(t *testing.T) {
	data, _, _ := makeObject(t, 4, 400, 42)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Warm once so lazily-started machinery doesn't count as a leak.
	if _, err := s.Query("SELECT COUNT(*) FROM obj"); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	for i := 0; i < 25; i++ {
		// A budget short enough that many runs die mid-fan-out, long enough
		// that some complete: both paths must clean up.
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(50+i*100)*time.Microsecond)
		_, err := s.QueryContext(ctx, "SELECT id FROM obj WHERE qty < 10")
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("query %d: unclassified error under deadline: %v", i, err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStoreShedsTypedErrorWhenQueueFull: with the only slot held and the
// tenant's queue at depth, the store's public API must fail with the typed,
// classifiable ErrOverloaded — the contract clients and the load harness
// retry against.
func TestStoreShedsTypedErrorWhenQueueFull(t *testing.T) {
	data, _, _ := makeObject(t, 2, 200, 43)
	opts := fusionTestOptions()
	opts.Sched = sched.New(sched.Config{Slots: 1, ScanSlots: 1, PutSlots: 1, QueueDepth: 1})
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}

	// Hold the only slot, then park one waiter to fill the depth-1 queue.
	release, _, err := s.sched.Acquire(context.Background(), "hog", sched.ClassPoint)
	if err != nil {
		t.Fatal(err)
	}
	waiterDone := make(chan error, 1)
	go func() {
		_, err := s.GetContext(context.Background(), "obj", 0, 0)
		waiterDone <- err
	}()
	for {
		st := s.SchedStats()
		queued := 0
		for _, tn := range st.Tenants {
			queued += tn.Queued
		}
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	_, err = s.GetContext(context.Background(), "obj", 0, 0)
	if !errors.Is(err, sched.ErrOverloaded) {
		t.Fatalf("full queue must shed with ErrOverloaded; got %v", err)
	}
	var ov *sched.Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("shed error %v must carry *sched.Overloaded", err)
	}
	if ov.Reason != "queue full" {
		t.Fatalf("Overloaded.Reason = %q, want \"queue full\"", ov.Reason)
	}

	release()
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued op failed after the slot freed: %v", err)
	}
	if st := s.SchedStats(); st.Running != 0 {
		t.Fatalf("slots leaked: %d still running after drain", st.Running)
	}
}

// TestStorePointReadsSurviveAggressor: a scan-heavy aggressor tenant
// saturating the scan slots must not starve a weighted point-read tenant —
// the store-level fairness property the scheduler exists for. Run with
// -race in CI.
func TestStorePointReadsSurviveAggressor(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 44)
	opts := fusionTestOptions()
	opts.Sched = sched.New(sched.Config{
		Slots: 4, ScanSlots: 2, PutSlots: 2, QueueDepth: 32,
		Weights: map[string]int{"point": 8, "aggressor": 1},
	})
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var aggressorOps atomic.Int64
	for i := 0; i < 6; i++ {
		go func() {
			ctx := sched.WithTenant(context.Background(), "aggressor")
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := s.QueryContext(ctx, "SELECT id FROM obj WHERE qty < 10")
				if err == nil {
					aggressorOps.Add(1)
				}
			}
		}()
	}

	// Wait until the aggressor is actually applying pressure.
	for aggressorOps.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx := sched.WithTenant(context.Background(), "point")
	const pointOps = 50
	start := time.Now()
	for i := 0; i < pointOps; i++ {
		if _, err := s.GetContext(ctx, "obj", 0, 64); err != nil {
			close(stop)
			t.Fatalf("point read %d failed under aggressor: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	close(stop)

	// Starvation would push sequential point reads toward the test timeout;
	// fairness keeps each read bounded by a few queue turns.
	if avg := elapsed / pointOps; avg > 200*time.Millisecond {
		t.Fatalf("point reads averaged %v each under aggressor — starved", avg)
	}
	var pointStats, aggStats *sched.TenantStats
	st := s.SchedStats()
	for i := range st.Tenants {
		switch st.Tenants[i].Tenant {
		case "point":
			pointStats = &st.Tenants[i]
		case "aggressor":
			aggStats = &st.Tenants[i]
		}
	}
	if pointStats == nil || pointStats.Admitted < pointOps {
		t.Fatalf("point tenant admissions not accounted: %+v", pointStats)
	}
	if pointStats.Shed != 0 {
		t.Fatalf("point tenant was shed %d times despite its weight", pointStats.Shed)
	}
	if aggStats == nil || aggStats.Admitted == 0 {
		t.Fatal("aggressor made no progress — fairness must not invert into starvation")
	}
}
