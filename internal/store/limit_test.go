package store

import "testing"

func TestQueryLimit(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 95)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	full, err := s.Query("SELECT id FROM obj WHERE qty < 25")
	if err != nil {
		t.Fatal(err)
	}
	if full.Rows < 20 {
		t.Skipf("need ≥20 matching rows, got %d", full.Rows)
	}
	limited, err := s.Query("SELECT id FROM obj WHERE qty < 25 LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if limited.Rows != 7 || limited.Data[0].Len() != 7 {
		t.Fatalf("LIMIT 7 returned %d rows / %d values", limited.Rows, limited.Data[0].Len())
	}
	// LIMIT must return a prefix of the unlimited result.
	for i := 0; i < 7; i++ {
		if limited.Data[0].Ints[i] != full.Data[0].Ints[i] {
			t.Fatalf("LIMIT result is not a prefix at %d", i)
		}
	}
	// LIMIT larger than the result is a no-op.
	big, err := s.Query("SELECT id FROM obj WHERE qty < 25 LIMIT 1000000")
	if err != nil {
		t.Fatal(err)
	}
	if big.Rows != full.Rows {
		t.Fatalf("huge LIMIT changed rows: %d vs %d", big.Rows, full.Rows)
	}
}

func TestQueryBetweenIn(t *testing.T) {
	data, schema, groups := makeObject(t, 2, 400, 96)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT id FROM obj WHERE qty BETWEEN 10 AND 20 AND flag IN ('A', 'R')")
	if err != nil {
		t.Fatal(err)
	}
	wantRows, _ := referenceQuery(t, schema, groups,
		"SELECT id FROM obj WHERE qty >= 10 AND qty <= 20 AND (flag = 'A' OR flag = 'R')")
	if res.Rows != wantRows {
		t.Fatalf("BETWEEN/IN rows = %d, want %d", res.Rows, wantRows)
	}
}
