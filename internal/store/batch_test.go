package store

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/fusionstore/fusion/internal/bufpool"
	"github.com/fusionstore/fusion/internal/trace"
)

// queryRoundTrips runs one traced query and returns the result plus the
// data-plane round trips the trace recorded.
func queryRoundTrips(t *testing.T, s *Store, query string) (*Result, uint64) {
	t.Helper()
	ctx, sp := trace.Start(context.Background(), "test.query")
	res, err := s.QueryContext(ctx, query)
	sp.End()
	if err != nil {
		t.Fatal(err)
	}
	return res, sp.Total(trace.RoundTrips)
}

// batchedAndUnbatchedStores builds two identical simnet deployments of the
// same object, one with scatter-gather batching and one without.
func batchedAndUnbatchedStores(t *testing.T, opts Options, data []byte) (batched, unbatched *Store) {
	t.Helper()
	mk := func(disable bool) *Store {
		o := opts
		o.DisableBatch = disable
		s, _ := newSimStore(t, o)
		if _, err := s.Put("obj", data); err != nil {
			t.Fatal(err)
		}
		return s
	}
	return mk(false), mk(true)
}

// TestBatchedQueryEquivalence checks that batching is invisible to query
// results across pushdown policies and aggregate pushdown.
func TestBatchedQueryEquivalence(t *testing.T) {
	data, _, _ := makeObject(t, 6, 300, 11)
	queries := []string{
		"SELECT * FROM obj WHERE qty < 25",
		"SELECT id, price FROM obj WHERE qty < 10 AND price > 20.0",
		"SELECT count(*), sum(price) FROM obj WHERE flag = 'A'",
		"SELECT min(qty), max(price), avg(price) FROM obj WHERE qty >= 40 OR flag = 'R'",
	}
	for _, policy := range []PushdownPolicy{PushdownAdaptive, PushdownAlways, PushdownNever} {
		for _, aggPush := range []bool{false, true} {
			opts := fusionTestOptions()
			opts.Pushdown = policy
			opts.AggregatePushdown = aggPush
			b, u := batchedAndUnbatchedStores(t, opts, data)
			for _, q := range queries {
				got, err := b.Query(q)
				if err != nil {
					t.Fatalf("%v/agg=%v %q: %v", policy, aggPush, q, err)
				}
				want, err := u.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Data, want.Data) ||
					!reflect.DeepEqual(got.AggValues, want.AggValues) ||
					got.Rows != want.Rows {
					t.Fatalf("%v/agg=%v %q: batched and unbatched results differ", policy, aggPush, q)
				}
			}
		}
	}
}

// TestBatchedQueryRoundTrips is the deterministic batching assertion: a
// small-chunk pushdown scan must reach each node in at most one data round
// trip per stage per row-group scan — filter frames bounded by the row
// groups (times the nodes its chunks touch), projection frames bounded by
// the node count — and far fewer round trips than per-op dispatch.
func TestBatchedQueryRoundTrips(t *testing.T) {
	const rowGroups = 10
	data, _, _ := makeObject(t, rowGroups, 200, 7)
	opts := fusionTestOptions()
	opts.Pushdown = PushdownAlways
	b, u := batchedAndUnbatchedStores(t, opts, data)

	const query = "SELECT * FROM obj WHERE qty < 25"
	resB, rtB := queryRoundTrips(t, b, query)
	resU, rtU := queryRoundTrips(t, u, query)
	if !reflect.DeepEqual(resB.Data, resU.Data) || resB.Rows != resU.Rows {
		t.Fatal("batched and unbatched results differ")
	}

	nodes := b.client.NumNodes()
	// Filter: one WHERE leaf per row group, so ≤1 frame per row group.
	// Projection: one frame per node holding pushed chunks. Everything else
	// (meta quorum reads) is control plane and uncounted.
	maxBatched := uint64(rowGroups + nodes)
	if rtB > maxBatched {
		t.Fatalf("batched query took %d data round trips, want ≤ %d", rtB, maxBatched)
	}
	// Per-op dispatch pays one round trip per logical operation.
	wantU := uint64(resU.Stats.FilterRPCs + resU.Stats.ProjectRPCs + resU.Stats.FetchRPCs)
	if rtU != wantU {
		t.Fatalf("unbatched round trips = %d, want %d (one per op)", rtU, wantU)
	}
	if rtB*2 > rtU {
		t.Fatalf("batching saved too little: %d vs %d round trips", rtB, rtU)
	}
	if resB.Stats.BatchRPCs == 0 {
		t.Fatal("batched query reported zero batch frames")
	}

	// The simulated latency win on a small-chunk scan: per-op dispatch pays
	// RPCOverhead per chunk, batching pays it per frame.
	simB, simU := resB.Stats.Sim.Total, resU.Stats.Sim.Total
	if simB <= 0 || simU <= 0 {
		t.Fatalf("missing simulated latencies: batched %v, unbatched %v", simB, simU)
	}
	if float64(simU) < 1.5*float64(simB) {
		t.Fatalf("batched query simulated %v, unbatched %v: want ≥1.5x speedup", simB, simU)
	}
	t.Logf("round trips: batched %d vs unbatched %d; simulated: %v vs %v (%.2fx)",
		rtB, rtU, simB, simU, float64(simU)/float64(simB))
}

// TestBatchedGetRoundTrips checks that a multi-segment Get reaches each node
// in one scatter-gather frame instead of one round trip per block, and
// returns identical bytes.
func TestBatchedGetRoundTrips(t *testing.T) {
	data, _, _ := makeObject(t, 12, 400, 13)
	b, u := batchedAndUnbatchedStores(t, fusionTestOptions(), data)

	get := func(s *Store) ([]byte, uint64) {
		ctx, sp := trace.Start(context.Background(), "test.get")
		got, err := s.GetContext(ctx, "obj", 0, 0)
		sp.End()
		if err != nil {
			t.Fatal(err)
		}
		return got, sp.Total(trace.RoundTrips)
	}
	gotB, rtB := get(b)
	gotU, rtU := get(u)

	if !bytes.Equal(gotB, data) || !bytes.Equal(gotU, data) {
		t.Fatal("Get returned wrong bytes")
	}
	nodes := uint64(b.client.NumNodes())
	if rtU <= nodes {
		t.Skipf("object too small to exercise batching: %d blocks over %d nodes", rtU, nodes)
	}
	if rtB > nodes {
		t.Fatalf("batched Get took %d data round trips over %d nodes, want ≤ 1 per node", rtB, nodes)
	}
	t.Logf("Get round trips: batched %d vs unbatched %d (%d nodes)", rtB, rtU, nodes)
}

// TestPooledBuffersNotAliased is the poison-on-put alias check, run under
// -race in CI: with pool poisoning armed, concurrent degraded reads (whose
// reconstructions rent and return survivor shards) and queries must never
// hand back data that aliases a returned buffer. Any use-after-put shows up
// as 0xDB-corrupted results or as a race report.
func TestPooledBuffersNotAliased(t *testing.T) {
	prev := bufpool.SetPoison(true)
	defer bufpool.SetPoison(prev)

	data, _, _ := makeObject(t, 4, 300, 17)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// A down node forces every covering Get into RS reconstruction, the
	// heaviest pooled path (survivor shards are rented and returned).
	cl.SetDown(0, true)
	defer cl.SetDown(0, false)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, err := s.Get("obj", 0, 0)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("Get returned corrupted bytes (pool aliasing?)")
					return
				}
				if bufpool.Poisoned(got) {
					errs <- fmt.Errorf("Get returned a poisoned (returned-to-pool) buffer")
					return
				}
				if _, err := s.Query("SELECT count(*), sum(price) FROM obj WHERE qty < 25"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
