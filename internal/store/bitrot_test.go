package store

import (
	"bytes"
	"testing"

	"github.com/fusionstore/fusion/internal/faultnet"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
)

// rotDataBlock flips one byte of a stored data block that backs at least one
// column chunk, bypassing the node's write path so its at-rest checksum goes
// stale — disk rot, not a bad write. Returns the stripe and bin hit.
func rotDataBlock(t *testing.T, s *Store, cl *simnet.Cluster, name string) (int, int) {
	t.Helper()
	meta, err := s.Meta(name)
	if err != nil {
		t.Fatal(err)
	}
	for itemIdx, loc := range meta.ItemLocs {
		if meta.Items[itemIdx].Kind != ItemChunk || meta.Items[itemIdx].Size <= 8 {
			continue
		}
		st := meta.Stripes[loc.Stripe]
		bs := cl.Node(st.Nodes[loc.Bin]).Blocks
		block, err := bs.Get(st.BlockIDs[loc.Bin], 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		block[3] ^= 0x55
		if err := bs.Put(st.BlockIDs[loc.Bin], block); err != nil {
			t.Fatal(err)
		}
		return loc.Stripe, loc.Bin
	}
	t.Fatal("no chunk-bearing data bin found")
	return 0, 0
}

// TestBitRotEndToEnd is the full self-healing cycle for at-rest corruption:
// a flipped byte on disk is caught by the node's checksum verification, the
// read is served bit-exact via RS reconstruction, the failure lands in the
// repair queue, and processing the queue rewrites a verified block so the
// cluster scrubs clean again.
func TestBitRotEndToEnd(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 71)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	stripe, bin := rotDataBlock(t, s, cl, "obj")

	// The read must detect the rot and still return perfect bytes.
	got, err := s.Get("obj", 0, 0)
	if err != nil {
		t.Fatalf("degraded read over rotted block: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read over rotted block returned wrong bytes")
	}
	rs := s.RepairStats()
	if rs.Enqueued == 0 || rs.QueueDepth == 0 {
		t.Fatalf("checksum failure must enqueue a repair: %+v", rs)
	}

	// Drain the queue: the block is rebuilt from survivors, verified against
	// the stripe metadata checksum, and rewritten committed.
	n, err := s.ProcessRepairs(0)
	if err != nil {
		t.Fatalf("ProcessRepairs: %v", err)
	}
	if n == 0 {
		t.Fatal("ProcessRepairs drained nothing")
	}
	rs = s.RepairStats()
	if rs.QueueDepth != 0 || rs.Processed == 0 {
		t.Fatalf("queue must drain: %+v", rs)
	}

	// The rewritten block now matches its recorded checksum at the node.
	meta, _ := s.Meta("obj")
	st := meta.Stripes[stripe]
	resp := cl.Node(st.Nodes[bin]).Handle(&rpc.Request{Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[bin]})
	if resp.Err != "" {
		t.Fatalf("repaired block must read clean at the node: %s", resp.Err)
	}

	// And the whole object scrubs clean.
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.MissingBlocks != 0 || rep.CorruptStripes != 0 || rep.ChecksumFailures != 0 {
		t.Fatalf("post-repair scrub: %+v, %v", rep, err)
	}
	if got, err := s.Get("obj", 0, 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-repair read: %v", err)
	}
}

// TestBitRotInFlightDetectedByEndToEndChecksum covers the other corruption
// channel: the stored block is fine but the response is corrupted in flight.
// The coordinator's end-to-end response checksum catches it, the read is
// retried/reconstructed to the right bytes, and the repair enqueue is
// harmless (the repair verifies the block before rewriting).
func TestBitRotInFlightDetectedByEndToEndChecksum(t *testing.T) {
	seed := faultSeed(t)
	s, inj := newFaultStore(t, 9, seed, fusionTestOptions())
	data, _, _ := makeObject(t, 2, 200, seed)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	inj.Add(faultnet.Rule{Node: faultnet.NodeAny, Kind: rpc.KindGetBlock, Fault: faultnet.FaultCorrupt, Count: 1})
	got, err := s.Get("obj", 0, 0)
	if err != nil {
		t.Fatalf("seed %d: read under in-flight corruption: %v", seed, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("seed %d: in-flight corruption leaked into the result", seed)
	}
	if rs := s.RepairStats(); rs.Enqueued == 0 {
		t.Fatalf("seed %d: end-to-end checksum failure must enqueue a repair: %+v", seed, rs)
	}
	// Repairing a block that was never bad on disk is a no-op rewrite.
	if _, err := s.ProcessRepairs(0); err != nil {
		t.Fatalf("seed %d: ProcessRepairs: %v", seed, err)
	}
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.ChecksumFailures != 0 || rep.CorruptStripes != 0 {
		t.Fatalf("seed %d: post-repair scrub: %+v, %v", seed, rep, err)
	}
}

// TestSkipChecksumVerifyDisablesEndToEndCheck pins the benchmark escape
// hatch: with SkipChecksumVerify set, the coordinator does not checksum node
// responses (an in-flight flip on a directly-read data block goes
// unnoticed), which is exactly why it is benchmark-only.
func TestSkipChecksumVerifyDisablesEndToEndCheck(t *testing.T) {
	seed := faultSeed(t)
	opts := fusionTestOptions()
	opts.SkipChecksumVerify = true
	s, inj := newFaultStore(t, 9, seed, opts)
	data, _, _ := makeObject(t, 2, 200, seed)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	// Corrupt the response of the first data bin's direct read.
	inj.Add(faultnet.Rule{Node: meta.Stripes[0].Nodes[0], Kind: rpc.KindGetBlock, Fault: faultnet.FaultCorrupt, Count: 1})
	got, err := s.Get("obj", 0, 0)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if bytes.Equal(got, data) {
		// The flipped byte may land outside the returned range (headers are
		// re-read elsewhere); only a corrupted result demonstrates the skip,
		// so tolerate a lucky flip but don't fail the run.
		t.Logf("seed %d: flip landed outside the consumed bytes", seed)
	}
	if rs := s.RepairStats(); rs.Enqueued != 0 {
		t.Fatalf("seed %d: skip mode must not enqueue repairs: %+v", seed, rs)
	}
}
