package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/metakv"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/trace"
)

// RepairConfig bounds the repair queue and the background repair manager.
type RepairConfig struct {
	// QueueLimit caps the repair queue; further enqueues are dropped (and
	// counted) until the queue drains. <= 0 applies the default (1024).
	QueueLimit int
	// Rate is the minimum spacing between queued repairs the manager
	// processes, bounding the disk/network bandwidth recovery steals from
	// foreground traffic. <= 0 applies the default (10ms).
	Rate time.Duration
	// HeartbeatEvery is the node health probe period; heartbeats feed the
	// circuit breaker and detect node rejoins. <= 0 applies the default
	// (250ms).
	HeartbeatEvery time.Duration
	// ScrubEvery is the continuous background scrub period (a full
	// ScrubAll pass per tick). 0 disables the scrub loop.
	ScrubEvery time.Duration
	// ReconcileEvery is the orphan reconciliation period. 0 disables the
	// reconcile loop.
	ReconcileEvery time.Duration
}

func (c RepairConfig) withDefaults() RepairConfig {
	if c.QueueLimit <= 0 {
		c.QueueLimit = 1024
	}
	if c.Rate <= 0 {
		c.Rate = 10 * time.Millisecond
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	return c
}

// RepairItem identifies one block needing repair. Epoch pins the object
// version the failure was observed at: if the object is overwritten (or
// deleted) between enqueue and processing, the item is stale — its blocks
// are garbage-collected or about to be — and is dropped rather than
// retried. 0 (items enqueued by pre-epoch tooling) skips the check.
type RepairItem struct {
	Object string
	Epoch  uint64
	Stripe int
	Block  int
}

// RepairStats is a snapshot of the repair queue's counters.
type RepairStats struct {
	// QueueDepth is the number of items currently queued.
	QueueDepth int
	// Enqueued counts accepted enqueues (deduplicated re-enqueues of a
	// queued item are not counted again).
	Enqueued uint64
	// Dropped counts enqueues rejected by the queue bound.
	Dropped uint64
	// Processed counts repairs completed successfully.
	Processed uint64
	// Failed counts repairs that errored (the item is re-queued unless the
	// queue is full).
	Failed uint64
	// Stale counts items dropped because their object was deleted or
	// superseded by a newer epoch between enqueue and processing. Stale
	// items are discarded, never re-queued.
	Stale uint64
}

// repairQueue is a bounded FIFO of blocks to repair, deduplicating items
// already queued: the read path enqueues on every checksum failure, and a
// hot corrupted block would otherwise flood the queue before the first
// repair lands.
type repairQueue struct {
	mu     sync.Mutex
	limit  int
	items  []RepairItem
	queued map[RepairItem]bool
	stats  RepairStats
}

func newRepairQueue(limit int) *repairQueue {
	if limit <= 0 {
		limit = 1024
	}
	return &repairQueue{limit: limit, queued: make(map[RepairItem]bool)}
}

// push enqueues an item, reporting whether it was accepted (false for both
// duplicates and a full queue; only the latter counts as a drop).
func (q *repairQueue) push(it RepairItem) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.queued[it] {
		return false
	}
	if len(q.items) >= q.limit {
		q.stats.Dropped++
		return false
	}
	q.items = append(q.items, it)
	q.queued[it] = true
	q.stats.Enqueued++
	return true
}

// pop dequeues the oldest item.
func (q *repairQueue) pop() (RepairItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return RepairItem{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	delete(q.queued, it)
	return it, true
}

func (q *repairQueue) done(ok bool) {
	q.mu.Lock()
	if ok {
		q.stats.Processed++
	} else {
		q.stats.Failed++
	}
	q.mu.Unlock()
}

func (q *repairQueue) stale() {
	q.mu.Lock()
	q.stats.Stale++
	q.mu.Unlock()
}

func (q *repairQueue) snapshot() RepairStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.QueueDepth = len(q.items)
	return s
}

// enqueueRepair queues a block for background repair. Safe from any
// goroutine; duplicates of an already-queued block are absorbed.
func (s *Store) enqueueRepair(it RepairItem) { s.repairs.push(it) }

// RepairStats returns the repair queue's counters.
func (s *Store) RepairStats() RepairStats { return s.repairs.snapshot() }

// errStaleRepair marks a repair item whose object was deleted or
// overwritten after the item was enqueued: its blocks are (or are about to
// be) garbage, so the repair is dropped, not retried.
var errStaleRepair = errors.New("store: repair item superseded or deleted")

// ProcessRepairs synchronously drains up to max queued repairs (max <= 0
// means the whole queue) and returns how many blocks were rewritten. A
// failed repair is re-queued for a later pass; a stale one (object deleted
// or superseded since enqueue) is dropped and counted, never re-queued —
// re-queuing it would retry forever against blocks that no longer exist.
// This is the deterministic entry the repair manager's worker loop — and
// the tests — drive.
func (s *Store) ProcessRepairs(max int) (int, error) {
	if max <= 0 {
		max = s.repairs.snapshot().QueueDepth
	}
	processed := 0
	var firstErr error
	for i := 0; i < max; i++ {
		it, ok := s.repairs.pop()
		if !ok {
			break
		}
		if err := s.repairBlock(it); err != nil {
			if errors.Is(err, errStaleRepair) {
				s.repairs.stale()
				continue
			}
			s.repairs.done(false)
			s.repairs.push(it)
			if firstErr == nil {
				firstErr = fmt.Errorf("store: repairing %s stripe %d block %d: %w",
					it.Object, it.Stripe, it.Block, err)
			}
			continue
		}
		s.repairs.done(true)
		processed++
	}
	return processed, firstErr
}

// repairBlock rebuilds one block from its stripe's survivors, verifies the
// rebuilt bytes against the stripe metadata checksum, and rewrites it to
// its home node as a committed checksummed block.
func (s *Store) repairBlock(it RepairItem) error {
	sp := trace.FromContext(context.Background()).Child("store.RepairBlock")
	defer sp.End()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("repair.block"), time.Since(start))
		}(time.Now())
	}
	// Resolve against the quorum, not the coordinator cache: a repair
	// must target the committed version, and a stale cached epoch would
	// make it rewrite garbage-collected blocks.
	meta, err := s.metaQuorum(it.Object)
	if err != nil {
		if errors.Is(err, metakv.ErrNotFound) {
			return fmt.Errorf("%w: object %q deleted", errStaleRepair, it.Object)
		}
		return err
	}
	if it.Epoch != 0 && meta.Epoch != it.Epoch {
		return fmt.Errorf("%w: object %q now at epoch %d, item enqueued at %d",
			errStaleRepair, it.Object, meta.Epoch, it.Epoch)
	}
	if it.Stripe < 0 || it.Stripe >= len(meta.Stripes) {
		return fmt.Errorf("store: stripe %d out of range", it.Stripe)
	}
	p := s.opts.Params
	if it.Block < 0 || it.Block >= p.N {
		return fmt.Errorf("store: block %d out of range", it.Block)
	}
	var block []byte
	// Repair is background maintenance: it runs under Background, never a
	// caller's context, so foreground cancellation cannot strand a rebuild.
	if it.Block < p.K {
		block, err = s.reconstructBlock(context.Background(), sp, meta, it.Stripe, it.Block)
	} else {
		block, err = s.reconstructParity(context.Background(), sp, meta, it.Stripe, it.Block)
	}
	if err != nil {
		return err
	}
	return s.rewriteBlock(context.Background(), sp, meta, it.Stripe, it.Block, block)
}

// DiscoverObjects returns every object name any reachable node holds
// metadata for, by scanning node inventories for metadata-register blocks.
// Unlike Objects (this coordinator's cache), discovery sees objects written
// through other coordinators — a freshly started repair tool has an empty
// cache but still must find everything.
func (s *Store) DiscoverObjects() ([]string, error) {
	names := map[string]bool{}
	answered := 0
	for node := 0; node < s.client.NumNodes(); node++ {
		resp, err := s.call(context.Background(), nil, node, &rpc.Request{Kind: rpc.KindListBlocks})
		if err != nil || resp.Err != "" {
			continue
		}
		answered++
		for _, b := range resp.Blocks {
			if name, ok := strings.CutPrefix(b.ID, "kv/meta/"); ok && name != "" {
				names[name] = true
			}
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("store: no node answered inventory scan")
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// ScrubAllReport aggregates a cluster-wide scrub pass.
type ScrubAllReport struct {
	// Objects is the number of objects scrubbed.
	Objects int
	// Reports holds each object's scrub report.
	Reports map[string]*ScrubReport
	// Errors holds per-object scrub failures; the pass continues past them.
	Errors map[string]string
}

// Totals sums the per-object reports.
func (r *ScrubAllReport) Totals() ScrubReport {
	var t ScrubReport
	for _, rep := range r.Reports {
		t.Stripes += rep.Stripes
		t.MissingBlocks += rep.MissingBlocks
		t.CorruptStripes += rep.CorruptStripes
		t.ChecksumFailures += rep.ChecksumFailures
		t.Repaired += rep.Repaired
	}
	return t
}

// ScrubAll scrubs every discoverable object in the cluster — the
// continuous-verification pass the repair manager runs in the background.
// Per-object failures are reported, not fatal.
func (s *Store) ScrubAll(opts ScrubOptions) (*ScrubAllReport, error) {
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("repair.scruball"), time.Since(start))
		}(time.Now())
	}
	names, err := s.DiscoverObjects()
	if err != nil {
		return nil, err
	}
	report := &ScrubAllReport{
		Reports: make(map[string]*ScrubReport),
		Errors:  make(map[string]string),
	}
	for _, name := range names {
		rep, err := s.Scrub(name, opts)
		if rep != nil {
			report.Reports[name] = rep
		}
		if err != nil {
			report.Errors[name] = err.Error()
			continue
		}
		report.Objects++
	}
	return report, nil
}

// RepairNodeAll sweeps RepairNode across every discoverable object — the
// catch-up a node gets after rejoining the cluster, restoring each block
// and metadata replica it missed while down. Returns total blocks/replicas
// repaired.
func (s *Store) RepairNodeAll(node int) (int, error) {
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("repair.node"), time.Since(start))
		}(time.Now())
	}
	names, err := s.DiscoverObjects()
	if err != nil {
		return 0, err
	}
	total := 0
	var firstErr error
	for _, name := range names {
		n, err := s.RepairNode(name, node)
		total += n
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: repairing node %d for %q: %w", node, name, err)
		}
	}
	return total, firstErr
}

// ReconcileReport summarizes an orphan reconciliation pass.
type ReconcileReport struct {
	// Scanned is the number of non-register blocks examined.
	Scanned int
	// Live is the number of blocks belonging to their object's committed
	// epoch.
	Live int
	// Committed is the number of half-committed blocks (pending at the
	// committed epoch) this pass flipped to committed.
	Committed int
	// Deleted is the number of orphaned blocks garbage-collected (debris of
	// failed or superseded write attempts).
	Deleted int
	// Skipped is the number of pending blocks left alone because they may
	// belong to an in-flight Put (latest allocated epoch, non-force mode).
	Skipped int
	// Unknown is the number of blocks whose name didn't parse; they are
	// never touched.
	Unknown int
}

// ReconcileOrphans scans every node's block inventory and resolves the
// debris a crashed coordinator can leave behind:
//
//   - A pending block of an object's committed epoch is a half-commit (the
//     coordinator died between the metadata publish and the commit
//     fan-out): finish the commit.
//   - A block of any other epoch is unreachable garbage — a failed
//     attempt, a crashed attempt that never committed, or a superseded
//     version whose GC was cut short: delete it. Exception: pending blocks
//     at the object's latest *allocated* epoch may be a Put in flight
//     right now, so they are skipped unless force is set (force is for
//     quiesced clusters — admin tools and tests).
//
// Blocks that don't parse as object blocks (including the metadata
// register's kv/ blocks) are never touched.
func (s *Store) ReconcileOrphans(force bool) (*ReconcileReport, error) {
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("repair.reconcile"), time.Since(start))
		}(time.Now())
	}
	report := &ReconcileReport{}
	// Committed epoch per object, resolved lazily; ok=false means the
	// object has no committed metadata at all.
	type objState struct {
		epoch     uint64
		committed bool
		head      uint64 // latest allocated epoch (non-force guard)
	}
	states := map[string]*objState{}
	stateFor := func(object string) *objState {
		if st, ok := states[object]; ok {
			return st
		}
		st := &objState{}
		if meta, err := s.metaQuorum(object); err == nil {
			st.epoch, st.committed = meta.Epoch, true
		}
		if !force {
			if kv, err := s.metaKV(object); err == nil {
				if head, err := kv.Head(epochKey(object)); err == nil {
					st.head = head
				}
			}
		}
		states[object] = st
		return st
	}
	answered := 0
	for node := 0; node < s.client.NumNodes(); node++ {
		resp, err := s.call(context.Background(), nil, node, &rpc.Request{Kind: rpc.KindListBlocks})
		if err != nil || resp.Err != "" {
			continue
		}
		answered++
		for _, b := range resp.Blocks {
			if strings.HasPrefix(b.ID, "kv/") {
				continue // metadata/epoch register blocks
			}
			object, epoch, _, _, ok := parseBlockID(b.ID)
			if !ok {
				report.Unknown++
				continue
			}
			report.Scanned++
			st := stateFor(object)
			if st.committed && epoch == st.epoch {
				report.Live++
				if b.Pending {
					// Half-commit: the metadata publish made this epoch
					// durable, the per-node commit never arrived.
					_, _ = s.call(context.Background(), nil, node, &rpc.Request{
						Kind: rpc.KindCommitObject, Object: object, Epoch: epoch,
					})
					report.Committed++
				}
				continue
			}
			if !force && b.Pending && epoch >= st.head && st.head > 0 {
				// Possibly a Put scattering blocks right now: its epoch is
				// the newest allocated and nothing newer exists. Leave it
				// for a later pass (or force).
				report.Skipped++
				continue
			}
			if !force && !st.committed && st.head == 0 {
				// No metadata and no epoch register answered — too little
				// information to distinguish debris from an unreachable
				// object; touch nothing.
				report.Skipped++
				continue
			}
			_, _ = s.call(context.Background(), nil, node, &rpc.Request{Kind: rpc.KindDeleteBlock, BlockID: b.ID})
			report.Deleted++
		}
	}
	if answered == 0 {
		return report, fmt.Errorf("store: no node answered inventory scan")
	}
	return report, nil
}

// metaQuorum reads an object's metadata from the quorum register without
// consulting or filling the coordinator cache — reconciliation must see the
// committed truth, not a stale cached epoch.
func (s *Store) metaQuorum(name string) (*ObjectMeta, error) {
	kv, err := s.metaKV(name)
	if err != nil {
		return nil, err
	}
	enc, _, err := kv.Get(metaKey(name))
	if err != nil {
		return nil, err
	}
	return DecodeMeta(enc)
}

// NodeState is the repair manager's view of one node's health.
type NodeState struct {
	// Up is the last heartbeat's outcome.
	Up bool
	// Breaker is the node's circuit state ("closed"/"open"/"half-open"),
	// when the store has a breaker.
	Breaker string
	// DownSince is when the node was last observed transitioning down.
	DownSince time.Time
}

// RepairManagerStats snapshots the manager's activity counters.
type RepairManagerStats struct {
	// Heartbeats counts completed heartbeat sweeps.
	Heartbeats uint64
	// Rejoins counts node down→up transitions that triggered catch-up.
	Rejoins uint64
	// RejoinRepairs counts blocks/replicas restored by rejoin catch-up.
	RejoinRepairs uint64
	// RepairsProcessed counts queue items the worker loop completed.
	RepairsProcessed uint64
	// ScrubPasses counts completed background ScrubAll passes.
	ScrubPasses uint64
	// ReconcilePasses counts completed reconciliation passes.
	ReconcilePasses uint64
}

// RepairManager is the store's self-healing background service: a
// heartbeat loop tracking per-node health (feeding the circuit breaker and
// detecting rejoins, which trigger a catch-up sweep), a rate-limited worker
// draining the repair queue the read path and scrubber feed, and optional
// continuous scrub and orphan-reconciliation loops.
type RepairManager struct {
	store *Store
	cfg   RepairConfig

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu    sync.Mutex
	nodes map[int]*NodeState
	stats RepairManagerStats
}

// StartRepairManager launches the background repair service and returns
// its handle. Stop it before discarding the store.
func (s *Store) StartRepairManager(cfg RepairConfig) *RepairManager {
	m := &RepairManager{
		store: s,
		cfg:   cfg.withDefaults(),
		stop:  make(chan struct{}),
		nodes: make(map[int]*NodeState),
	}
	m.wg.Add(2)
	go m.heartbeatLoop()
	go m.repairLoop()
	if m.cfg.ScrubEvery > 0 {
		m.wg.Add(1)
		go m.scrubLoop()
	}
	if m.cfg.ReconcileEvery > 0 {
		m.wg.Add(1)
		go m.reconcileLoop()
	}
	return m
}

// Stop terminates the manager's loops and waits for them. Idempotent.
func (m *RepairManager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Stats returns the manager's activity counters.
func (m *RepairManager) Stats() RepairManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Nodes returns the manager's per-node health view.
func (m *RepairManager) Nodes() map[int]NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]NodeState, len(m.nodes))
	for id, st := range m.nodes {
		out[id] = *st
	}
	return out
}

// sleep waits d or until Stop, reporting whether the manager should keep
// running.
func (m *RepairManager) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.stop:
		return false
	case <-t.C:
		return true
	}
}

// heartbeatLoop pings every node each period. Outcomes feed the circuit
// breaker (when configured) so foreground calls fail fast on a node the
// heartbeats already know is down, and a down→up transition triggers the
// rejoin catch-up sweep.
func (m *RepairManager) heartbeatLoop() {
	defer m.wg.Done()
	s := m.store
	for {
		if !m.sleep(m.cfg.HeartbeatEvery) {
			return
		}
		var rejoined []int
		for node := 0; node < s.client.NumNodes(); node++ {
			// One unretried probe with a bounded deadline; the breaker's
			// threshold absorbs isolated blips.
			resp, err := cluster.CallTimeout(s.client, node, &rpc.Request{Kind: rpc.KindPing}, m.cfg.HeartbeatEvery)
			up := err == nil && resp.Err == ""
			if up {
				s.retry.Breaker.Success(node)
			} else {
				s.retry.Breaker.Failure(node)
			}
			m.mu.Lock()
			st := m.nodes[node]
			if st == nil {
				st = &NodeState{Up: true}
				m.nodes[node] = st
			}
			if up && !st.Up {
				rejoined = append(rejoined, node)
			}
			if !up && st.Up {
				st.DownSince = time.Now()
			}
			st.Up = up
			st.Breaker = s.retry.Breaker.State(node).String()
			m.mu.Unlock()
		}
		m.mu.Lock()
		m.stats.Heartbeats++
		m.mu.Unlock()
		for _, node := range rejoined {
			n, _ := s.RepairNodeAll(node)
			m.mu.Lock()
			m.stats.Rejoins++
			m.stats.RejoinRepairs += uint64(n)
			m.mu.Unlock()
		}
	}
}

// repairLoop drains the repair queue one item per Rate tick — the
// bandwidth governor between recovery and foreground traffic.
func (m *RepairManager) repairLoop() {
	defer m.wg.Done()
	for {
		if !m.sleep(m.cfg.Rate) {
			return
		}
		n, _ := m.store.ProcessRepairs(1)
		if n > 0 {
			m.mu.Lock()
			m.stats.RepairsProcessed += uint64(n)
			m.mu.Unlock()
		}
	}
}

// scrubLoop runs a full verification pass per period; what it finds flows
// into the repair queue (and, with Repair set on the pass itself, is fixed
// inline).
func (m *RepairManager) scrubLoop() {
	defer m.wg.Done()
	for {
		if !m.sleep(m.cfg.ScrubEvery) {
			return
		}
		_, _ = m.store.ScrubAll(ScrubOptions{Repair: true})
		m.mu.Lock()
		m.stats.ScrubPasses++
		m.mu.Unlock()
	}
}

// reconcileLoop garbage-collects crash debris per period (non-force: an
// in-flight Put's pending blocks are left alone).
func (m *RepairManager) reconcileLoop() {
	defer m.wg.Done()
	for {
		if !m.sleep(m.cfg.ReconcileEvery) {
			return
		}
		_, _ = m.store.ReconcileOrphans(false)
		m.mu.Lock()
		m.stats.ReconcilePasses++
		m.mu.Unlock()
	}
}
