// Package store implements the Fusion object store core (§4-5 of the
// paper): Put with file-format-aware coding and placement, Get with
// degraded reads, and Query with two-stage fine-grained adaptive pushdown.
// It also implements the paper's baseline — a MinIO/Ceph-representative
// store that erasure-codes objects into fixed blocks and reassembles column
// chunks at the coordinator — behind the same API, selected by Options.
package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"github.com/fusionstore/fusion/internal/fac"
	"github.com/fusionstore/fusion/internal/lpq"
)

// LayoutMode records how an object was coded.
type LayoutMode uint8

const (
	// LayoutFAC is Fusion's file-format-aware coding (variable-size bins,
	// chunks never split).
	LayoutFAC LayoutMode = iota
	// LayoutFixed is conventional fixed-block striping (chunks may split).
	LayoutFixed
)

func (m LayoutMode) String() string {
	if m == LayoutFAC {
		return "FAC"
	}
	return "FIXED"
}

// ItemKind distinguishes real column chunks from the non-computable byte
// ranges (file header, footer) that must also be stored.
type ItemKind uint8

const (
	// ItemChunk is a column chunk (the smallest computable unit).
	ItemChunk ItemKind = iota
	// ItemHeader is the file's leading magic bytes.
	ItemHeader
	// ItemFooter is the footer region.
	ItemFooter
)

// Item is one packing unit of the object: a column chunk or a pseudo-extent
// covering header/footer bytes. Items tile the object's byte range exactly.
type Item struct {
	Kind   ItemKind
	Offset uint64
	Size   uint64
	// RG and Col identify the chunk for ItemChunk.
	RG, Col int
}

// ItemLoc locates an item's bytes in the cluster.
type ItemLoc struct {
	Stripe int
	Bin    int
	// Offset of the item within its bin (FAC mode).
	BinOffset uint64
}

// StripeMeta describes one stored stripe: which nodes hold its n blocks.
type StripeMeta struct {
	// Capacity is the logical block size (largest bin; parity blocks have
	// exactly this size).
	Capacity uint64
	// Nodes[j] holds block j (0..k-1 data bins, k..n-1 parity).
	Nodes []int
	// BlockIDs[j] names block j on its node.
	BlockIDs []string
	// DataLens[j] is the stored length of data bin j (j < k); bins are
	// stored unpadded and zero-extended to Capacity for decoding.
	DataLens []uint64
	// Checksums[j] is the CRC32C of block j's stored (unpadded) bytes,
	// recorded at write time. Readers verify survivors against these before
	// feeding them to RS decode, so a rotted block is treated as an erasure
	// instead of silently corrupting the reconstruction.
	Checksums []uint32
}

// ObjectMeta is the per-object metadata Fusion keeps: the parsed footer,
// the item layout and the chunk location map. It is replicated to k+1
// nodes for durability (§5 "Metadata Management").
type ObjectMeta struct {
	Name string
	Size uint64
	Mode LayoutMode
	// Version increments on each overwrite; updates are fresh inserts (§5).
	Version uint64
	// Epoch is the write attempt that produced this metadata's blocks.
	// Epochs are allocated from a per-object quorum counter before any block
	// is written, so two attempts — even either side of a coordinator crash —
	// never share block names; block IDs embed the epoch, and only the
	// metadata publish (the commit point) makes an epoch's blocks reachable.
	Epoch uint64

	// Footer is the object's parsed lpq footer (schema, chunk metadata).
	Footer *lpq.Footer
	// Items tile the object: header, chunks in file order, footer.
	Items []Item
	// Stripes is the stored stripe list.
	Stripes []StripeMeta
	// ItemLocs[i] locates Items[i] (FAC mode).
	ItemLocs []ItemLoc
	// BlockSize is the fixed block size (fixed mode).
	BlockSize uint64
}

// NumChunkItems returns the number of real column-chunk items.
func (m *ObjectMeta) NumChunkItems() int {
	n := 0
	for _, it := range m.Items {
		if it.Kind == ItemChunk {
			n++
		}
	}
	return n
}

// ChunkItemIndex returns the index in Items of chunk (rg, col), or -1.
func (m *ObjectMeta) ChunkItemIndex(rg, col int) int {
	if m.Footer == nil {
		return -1
	}
	// Items are [header, chunks in rg-major order..., footer].
	idx := 1 + rg*len(m.Footer.Columns) + col
	if idx >= len(m.Items) || m.Items[idx].Kind != ItemChunk ||
		m.Items[idx].RG != rg || m.Items[idx].Col != col {
		// Fall back to a scan (robust to future layout changes).
		for i, it := range m.Items {
			if it.Kind == ItemChunk && it.RG == rg && it.Col == col {
				return i
			}
		}
		return -1
	}
	return idx
}

// LocMapEntryBytes is the size of one chunk-location-map entry in the
// paper's accounting: 4 bytes of chunk offset + 4 bytes of node id (§5).
const LocMapEntryBytes = 8

// LocMapBytes returns the paper-accounted size of the object's chunk
// location map.
func (m *ObjectMeta) LocMapBytes() int {
	return m.NumChunkItems() * LocMapEntryBytes
}

// buildItems tiles the object into items from its parsed footer: leading
// magic, every chunk in rg-major order, then the footer region. It verifies
// the tiling is exact (no gaps, no overlaps).
func buildItems(data []byte, footer *lpq.Footer) ([]Item, error) {
	footerSize, err := lpq.FooterSize(data)
	if err != nil {
		return nil, err
	}
	return buildItemsSized(uint64(len(data)), footerSize, footer)
}

// buildItemsSized is buildItems from the footer and the object's total size
// alone — the streaming Put path computes the whole layout before a single
// body byte is resident.
func buildItemsSized(size uint64, footerSize int, footer *lpq.Footer) ([]Item, error) {
	if uint64(footerSize) > size {
		return nil, fmt.Errorf("store: footer region (%d bytes) exceeds object size %d", footerSize, size)
	}
	items := []Item{{Kind: ItemHeader, Offset: 0, Size: uint64(len(lpq.Magic))}}
	for rg, rgMeta := range footer.RowGroups {
		for col, ch := range rgMeta.Chunks {
			items = append(items, Item{Kind: ItemChunk, Offset: ch.Offset, Size: ch.Size, RG: rg, Col: col})
		}
	}
	items = append(items, Item{
		Kind:   ItemFooter,
		Offset: size - uint64(footerSize),
		Size:   uint64(footerSize),
	})
	// Verify exact tiling in offset order.
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Offset < sorted[b].Offset })
	var pos uint64
	for _, it := range sorted {
		if it.Offset != pos {
			return nil, fmt.Errorf("store: object bytes [%d,%d) not covered by footer layout", pos, it.Offset)
		}
		pos += it.Size
	}
	if pos != size {
		return nil, fmt.Errorf("store: layout covers %d of %d object bytes", pos, size)
	}
	return items, nil
}

// itemSizes extracts the packing sizes from items.
func itemSizes(items []Item) []uint64 {
	sizes := make([]uint64, len(items))
	for i, it := range items {
		sizes[i] = it.Size
	}
	return sizes
}

// facLayoutToMeta converts a fac.Layout plus per-stripe node/block choices
// into item locations.
func facLayoutToMeta(layout fac.Layout, items []Item) []ItemLoc {
	locs := make([]ItemLoc, len(items))
	for si, st := range layout.Stripes {
		for j, bin := range st.Bins {
			var off uint64
			for _, itemIdx := range bin {
				locs[itemIdx] = ItemLoc{Stripe: si, Bin: j, BinOffset: off}
				off += items[itemIdx].Size
			}
		}
	}
	return locs
}

// EncodeMeta serializes object metadata for replication to storage nodes.
func EncodeMeta(m *ObjectMeta) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("store: encoding metadata: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeMeta parses the output of EncodeMeta.
func DecodeMeta(data []byte) (*ObjectMeta, error) {
	var m ObjectMeta
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, fmt.Errorf("store: decoding metadata: %w", err)
	}
	return &m, nil
}
