package store

import (
	"bytes"
	"testing"
)

func TestScrubCleanObject(t *testing.T) {
	data, _, _ := makeObject(t, 3, 300, 61)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stripes == 0 {
		t.Fatal("scrub must examine stripes")
	}
	if rep.MissingBlocks != 0 || rep.CorruptStripes != 0 || rep.Repaired != 0 {
		t.Fatalf("clean object must scrub clean: %+v", rep)
	}
}

func TestScrubDetectsAndRepairsMissingBlock(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 62)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	st := meta.Stripes[0]
	victim := cl.Node(st.Nodes[2])
	if err := victim.Blocks.Delete(st.BlockIDs[2]); err != nil {
		t.Fatal(err)
	}
	// Report-only first.
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissingBlocks != 1 {
		t.Fatalf("scrub must find the missing block: %+v", rep)
	}
	// Now repair.
	rep, err = s.Scrub("obj", ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("scrub must repair the missing block: %+v", rep)
	}
	// Object must now scrub clean and read back intact.
	rep, err = s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.MissingBlocks != 0 || rep.CorruptStripes != 0 {
		t.Fatalf("post-repair scrub: %+v, %v", rep, err)
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-repair read: %v", err)
	}
}

func TestScrubDetectsAndRepairsCorruptDataBlock(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 63)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	// Corrupt a data bin that holds at least one chunk.
	var si, bin int
	found := false
	for itemIdx, loc := range meta.ItemLocs {
		if meta.Items[itemIdx].Kind == ItemChunk && meta.Items[itemIdx].Size > 8 {
			si, bin = loc.Stripe, loc.Bin
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no chunk item found")
	}
	st := meta.Stripes[si]
	node := cl.Node(st.Nodes[bin])
	block, err := node.Blocks.Get(st.BlockIDs[bin], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	block[4] ^= 0x77
	if err := node.Blocks.Put(st.BlockIDs[bin], block); err != nil {
		t.Fatal(err)
	}
	// The node's at-rest verification refuses the rotted block, so the
	// scrub sees a checksum failure (treated as an erasure), not a parity
	// puzzle.
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumFailures != 1 {
		t.Fatalf("scrub must flag the corrupt block: %+v", rep)
	}
	rep, err = s.Scrub("obj", ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 {
		t.Fatalf("scrub must rewrite the corrupt block: %+v", rep)
	}
	rep, err = s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.CorruptStripes != 0 || rep.ChecksumFailures != 0 {
		t.Fatalf("post-repair scrub: %+v, %v", rep, err)
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-repair read: %v", err)
	}
}

func TestScrubRepairsCorruptParity(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 64)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	st := meta.Stripes[0]
	parityIdx := s.opts.Params.K // first parity block
	node := cl.Node(st.Nodes[parityIdx])
	block, err := node.Blocks.Get(st.BlockIDs[parityIdx], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(block) == 0 {
		t.Skip("empty parity block")
	}
	block[0] ^= 0x01
	if err := node.Blocks.Put(st.BlockIDs[parityIdx], block); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub("obj", ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumFailures != 1 || rep.Repaired == 0 {
		t.Fatalf("scrub must rewrite parity: %+v", rep)
	}
	rep, err = s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.CorruptStripes != 0 || rep.ChecksumFailures != 0 {
		t.Fatalf("post-repair scrub: %+v, %v", rep, err)
	}
}
