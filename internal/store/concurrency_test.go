package store

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentQueries exercises the coordinator under parallel load: many
// goroutines issuing queries and reads against the same object must all see
// consistent results.
func TestConcurrentQueries(t *testing.T) {
	data, _, _ := makeObject(t, 3, 500, 77)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 48)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				res, err := s.Query("SELECT id FROM obj WHERE qty < 10")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows != want.Rows {
					errs <- fmt.Errorf("goroutine %d: %d rows, want %d", i, res.Rows, want.Rows)
				}
			case 1:
				got, err := s.Get("obj", 100, 5000)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data[100:5100]) {
					errs <- fmt.Errorf("goroutine %d: Get mismatch", i)
				}
			default:
				res, err := s.Query("SELECT COUNT(*) FROM obj WHERE flag = 'A'")
				if err != nil {
					errs <- err
					return
				}
				if res.AggValues[0].I == 0 {
					errs <- fmt.Errorf("goroutine %d: empty count", i)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentPuts stores distinct objects in parallel and verifies each.
func TestConcurrentPuts(t *testing.T) {
	s, _ := newSimStore(t, fusionTestOptions())
	const objects = 8
	payloads := make([][]byte, objects)
	var wg sync.WaitGroup
	errs := make(chan error, objects)
	for i := 0; i < objects; i++ {
		data, _, _ := makeObject(t, 2, 150, int64(1000+i))
		payloads[i] = data
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Put(fmt.Sprintf("obj-%d", i), payloads[i]); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < objects; i++ {
		got, err := s.Get(fmt.Sprintf("obj-%d", i), 0, 0)
		if err != nil || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("object %d round trip failed: %v", i, err)
		}
	}
}

// TestParallelQueryUnderConcurrentLoad drives the fan-out query path (stage
// worker pools forced wide) while other goroutines Put fresh objects and
// Scrub the queried one, so `go test -race` exercises the execState locking
// and the fork/join merging together with the erasure coder's parallel
// Verify/Reconstruct ranges.
func TestParallelQueryUnderConcurrentLoad(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 55)
	opts := fusionTestOptions()
	opts.QueryWorkers = 8
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query("SELECT id, price FROM obj WHERE qty < 20")
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := s.Query("SELECT COUNT(*), SUM(qty) FROM obj WHERE flag = 'A'")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0:
				res, err := s.Query("SELECT id, price FROM obj WHERE qty < 20")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows != want.Rows || !reflect.DeepEqual(res.Data, want.Data) {
					errs <- fmt.Errorf("goroutine %d: parallel query diverged", i)
				}
			case 1:
				res, err := s.Query("SELECT COUNT(*), SUM(qty) FROM obj WHERE flag = 'A'")
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.AggValues, wantCount.AggValues) {
					errs <- fmt.Errorf("goroutine %d: aggregate diverged", i)
				}
			case 2:
				other, _, _ := makeObject(t, 2, 120, int64(500+i))
				name := fmt.Sprintf("side-%d", i)
				if _, err := s.Put(name, other); err != nil {
					errs <- err
					return
				}
				if got, err := s.Get(name, 0, 0); err != nil || !bytes.Equal(got, other) {
					errs <- fmt.Errorf("goroutine %d: side object round trip: %v", i, err)
				}
			default:
				rep, err := s.Scrub("obj", ScrubOptions{Repair: true})
				if err != nil {
					errs <- err
					return
				}
				if rep.CorruptStripes != 0 || rep.MissingBlocks != 0 {
					errs <- fmt.Errorf("goroutine %d: scrub found damage on healthy object: %+v", i, rep)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRepairNodeRestoresMetaReplica verifies node repair also restores
// metadata replicas hosted on the repaired node.
func TestRepairNodeRestoresMetaReplica(t *testing.T) {
	data, _, _ := makeObject(t, 2, 200, 88)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	victim := s.metaReplicaNodes("obj")[1]
	node := cl.Node(victim)
	for _, id := range node.Blocks.IDs() {
		if err := node.Blocks.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.RepairNode("obj", victim); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Blocks.Size(metaBlockID("obj")); err != nil {
		t.Fatal("meta replica must be restored after repair")
	}
}
