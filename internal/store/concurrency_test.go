package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueries exercises the coordinator under parallel load: many
// goroutines issuing queries and reads against the same object must all see
// consistent results.
func TestConcurrentQueries(t *testing.T) {
	data, _, _ := makeObject(t, 3, 500, 77)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 48)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				res, err := s.Query("SELECT id FROM obj WHERE qty < 10")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows != want.Rows {
					errs <- fmt.Errorf("goroutine %d: %d rows, want %d", i, res.Rows, want.Rows)
				}
			case 1:
				got, err := s.Get("obj", 100, 5000)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data[100:5100]) {
					errs <- fmt.Errorf("goroutine %d: Get mismatch", i)
				}
			default:
				res, err := s.Query("SELECT COUNT(*) FROM obj WHERE flag = 'A'")
				if err != nil {
					errs <- err
					return
				}
				if res.AggValues[0].I == 0 {
					errs <- fmt.Errorf("goroutine %d: empty count", i)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentPuts stores distinct objects in parallel and verifies each.
func TestConcurrentPuts(t *testing.T) {
	s, _ := newSimStore(t, fusionTestOptions())
	const objects = 8
	payloads := make([][]byte, objects)
	var wg sync.WaitGroup
	errs := make(chan error, objects)
	for i := 0; i < objects; i++ {
		data, _, _ := makeObject(t, 2, 150, int64(1000+i))
		payloads[i] = data
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Put(fmt.Sprintf("obj-%d", i), payloads[i]); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < objects; i++ {
		got, err := s.Get(fmt.Sprintf("obj-%d", i), 0, 0)
		if err != nil || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("object %d round trip failed: %v", i, err)
		}
	}
}

// TestRepairNodeRestoresMetaReplica verifies node repair also restores
// metadata replicas hosted on the repaired node.
func TestRepairNodeRestoresMetaReplica(t *testing.T) {
	data, _, _ := makeObject(t, 2, 200, 88)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	victim := s.metaReplicaNodes("obj")[1]
	node := cl.Node(victim)
	for _, id := range node.Blocks.IDs() {
		if err := node.Blocks.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.RepairNode("obj", victim); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Blocks.Size(metaBlockID("obj")); err != nil {
		t.Fatal("meta replica must be restored after repair")
	}
}
