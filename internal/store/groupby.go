package store

import (
	"fmt"
	"sort"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/sql"
	"github.com/fusionstore/fusion/internal/trace"
)

// This file is the grouped-aggregation stage: GROUP BY queries reduce each
// surviving row group to per-group partial states — on the hosting node when
// the stats-driven planner says the partials are cheaper than the chunks,
// at the coordinator otherwise — then merge the partials in row-group order.
// That per-row-group-partials-merged-in-order reduction is the canonical
// one every execution path shares (pushed, fetched, cached, degraded), so a
// query's groups are bit-identical no matter which mix of paths served it.
// AVG never travels pre-divided: it rides as (sum, count) inside its
// AggState and divides once, at result rendering.

// groupAgg is one aggregate the grouped stage computes: its projection (for
// labels and ORDER BY matching) and its argument column index, -1 for
// COUNT(*).
type groupAgg struct {
	proj sql.Projection
	ci   int
}

// groupWork is one row group's unit of grouped-stage work.
type groupWork struct {
	rg       int
	sub      *execState
	partials []sql.GroupPartial
	err      error
	pre      *rpc.Response // batched sub-response, when successful
	push     bool          // planner chose node-side partial aggregation
	node     int
	keyRefs  []rpc.ChunkRef
	valRefs  []rpc.ChunkRef
	// chunkBytes is the stored size of the row group's key and argument
	// chunks — the bytes a pushed op logically touched, for trace
	// accounting.
	chunkBytes uint64
}

// groupByStage executes a GROUP BY query over the filtered row groups and
// returns the finished result table (ORDER BY and LIMIT applied, one row
// per group).
func (s *Store) groupByStage(st *execState, q *sql.Query, colIdx map[string]int, rgBitmaps map[int]*bitmap.Bitmap) (*Result, error) {
	meta := st.meta
	keyIdx := make([]int, len(q.GroupBy))
	for i, c := range q.GroupBy {
		keyIdx[i] = colIdx[c]
	}
	// The aggregate list: the SELECT list's aggregates plus hidden ones
	// appearing only in ORDER BY, deduplicated by expression.
	var aggs []groupAgg
	findAgg := func(p sql.Projection) int {
		for i := range aggs {
			a := aggs[i].proj
			if a.Column == p.Column && a.Agg == p.Agg && a.Star == p.Star {
				return i
			}
		}
		return -1
	}
	addAgg := func(p sql.Projection) {
		if findAgg(p) >= 0 {
			return
		}
		ci := -1
		if !p.Star {
			ci = colIdx[p.Column]
		}
		aggs = append(aggs, groupAgg{proj: p, ci: ci})
	}
	for _, p := range q.Projections {
		if p.Agg != sql.AggNone {
			addAgg(p)
		}
	}
	for _, o := range q.OrderBy {
		if o.Proj.Agg != sql.AggNone {
			addAgg(o.Proj)
		}
	}
	kinds := make([]sql.AggKind, len(aggs))
	valIdx := make([]int, len(aggs))
	for i, a := range aggs {
		kinds[i] = a.proj.Agg
		valIdx[i] = a.ci
	}

	// Plan each surviving row group: node-side partial aggregation needs the
	// key and argument chunks co-located on one node AND the planner's
	// partial-vs-chunk cost check to pass.
	cfgPush := s.opts.Exec == ExecPushdown && meta.Mode == LayoutFAC
	var works []*groupWork
	for rg := range meta.Footer.RowGroups {
		bm := rgBitmaps[rg]
		if bm == nil || bm.Count() == 0 {
			continue
		}
		w := &groupWork{rg: rg}
		if cfgPush {
			node, keyRefs, valRefs, chunkBytes, ok := groupChunkRefs(meta, rg, keyIdx, valIdx)
			if ok && planGroupPush(meta, rg, keyIdx, valIdx, bm.Count()) {
				w.push, w.node = true, node
				w.keyRefs, w.valRefs, w.chunkBytes = keyRefs, valRefs, chunkBytes
			} else {
				// A pushdown deployment couldn't offload this row group:
				// either the key/argument chunks are not co-located on one
				// node, or the planner predicted the partial states would
				// outweigh the chunks.
				st.stats.GroupSpills++
				st.sp.Count(trace.GroupSpills, 1)
			}
		}
		works = append(works, w)
	}

	if s.batchOn() {
		s.predispatchGroupWorks(st, works, kinds, rgBitmaps)
	}
	runTasks(s.queryWorkers(), len(works), func(i int) {
		w := works[i]
		w.sub = st.fork()
		bm := rgBitmaps[w.rg]
		if w.pre != nil {
			w.partials = w.pre.Groups
			return
		}
		if w.push && !s.batchOn() {
			if partials, err := s.pushdownGroupAgg(w.sub, w, kinds, bm); err == nil {
				w.partials = partials
				return
			}
		}
		if w.push {
			// The pushed attempt failed — node down, or it hit the
			// cardinality cap — so this row group spills to the coordinator.
			w.sub.stats.GroupSpills++
			w.sub.sp.Count(trace.GroupSpills, 1)
		}
		w.partials, w.err = s.localGroupRG(w.sub, w.rg, keyIdx, valIdx, kinds, bm)
	})

	// Merge partials in row-group order — the canonical reduction.
	global := sql.NewGroupTable(kinds, 0)
	for _, w := range works {
		st.join(w.sub)
		if w.err != nil {
			return nil, w.err
		}
		if err := global.Merge(w.partials); err != nil {
			return nil, err
		}
	}
	groups := global.Sorted()

	// ORDER BY over group keys and aggregate results. Sorted() already put
	// the groups in canonical key order, and the sort below is stable, so
	// canonical key order is the deterministic tie-break (and the default
	// order when there is no ORDER BY at all).
	if len(q.OrderBy) > 0 {
		type orderRef struct {
			key  int // index into the group key tuple, or -1
			agg  int // index into aggs, or -1
			desc bool
		}
		ords := make([]orderRef, len(q.OrderBy))
		for i, o := range q.OrderBy {
			if o.Proj.Agg != sql.AggNone {
				ords[i] = orderRef{key: -1, agg: findAgg(o.Proj), desc: o.Desc}
			} else {
				ords[i] = orderRef{key: q.GroupKeyIndex(o.Proj.Column), agg: -1, desc: o.Desc}
			}
		}
		st.chargeCoordCPU(uint64(len(groups)) * 16)
		sort.SliceStable(groups, func(i, j int) bool {
			for _, o := range ords {
				var c int
				if o.key >= 0 {
					c = sql.CompareLiterals(groups[i].Key[o.key], groups[j].Key[o.key])
				} else {
					c = sql.CompareLiterals(groups[i].Aggs[o.agg].Result(), groups[j].Aggs[o.agg].Result())
				}
				if c == 0 {
					continue
				}
				if o.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.HasLimit && len(groups) > q.Limit {
		groups = groups[:q.Limit]
	}

	// Shape the result table: one column per SELECT item, one row per group.
	res := &Result{Rows: len(groups)}
	for _, p := range q.Projections {
		if p.Agg == sql.AggNone {
			ki := q.GroupKeyIndex(p.Column)
			col := lpq.ColumnData{Type: meta.Footer.Columns[colIdx[p.Column]].Type}
			for gi := range groups {
				l := groups[gi].Key[ki]
				switch col.Type {
				case lpq.Int64:
					col.Ints = append(col.Ints, l.I)
				case lpq.Float64:
					col.Floats = append(col.Floats, l.F)
				default:
					col.Strings = append(col.Strings, l.S)
				}
			}
			res.Columns = append(res.Columns, p.Column)
			res.Data = append(res.Data, col)
			continue
		}
		ai := findAgg(p)
		res.Columns = append(res.Columns, p.String())
		res.Data = append(res.Data, aggColumn(meta, aggs[ai], groups, ai))
	}
	return res, nil
}

// predispatchGroupWorks ships the stage's pushed row groups as one
// scatter-gather frame per node (concurrently across nodes) and attaches
// each successful sub-response. Failed sub-ops and frames are left for the
// workers' coordinator-side fallback.
func (s *Store) predispatchGroupWorks(st *execState, works []*groupWork, kinds []sql.AggKind, rgBitmaps map[int]*bitmap.Bitmap) {
	type nodeGroup struct {
		node  int
		subs  []rpc.Request
		works []*groupWork
	}
	groups := make(map[int]*nodeGroup)
	var order []*nodeGroup
	for _, w := range works {
		if !w.push {
			continue
		}
		g := groups[w.node]
		if g == nil {
			g = &nodeGroup{node: w.node}
			groups[w.node] = g
			order = append(order, g)
		}
		g.subs = append(g.subs, rpc.Request{
			Kind:      rpc.KindGroupAgg,
			Bitmap:    rgBitmaps[w.rg].Marshal(),
			KeyChunks: w.keyRefs,
			ValChunks: w.valRefs,
			AggKinds:  kinds,
			MaxGroups: maxNodeGroups,
		})
		g.works = append(g.works, w)
	}
	forks := make([]*execState, len(order))
	runTasks(s.queryWorkers(), len(order), func(i int) {
		g := order[i]
		sub := st.fork()
		forks[i] = sub
		resps, err := s.batchCall(sub.ctx, sub, sub.sp, g.node, g.subs)
		if err != nil {
			return // whole frame lost: every row group here falls back
		}
		for j, w := range g.works {
			if resps[j].Err != "" {
				continue
			}
			w.pre = &resps[j]
			sub.sp.Count(trace.BytesRequested, w.chunkBytes)
			sub.sp.Count(trace.GroupPartials, uint64(len(resps[j].Groups)))
			sub.stats.GroupAggRPCs++
			sub.stats.PartialGroups += len(resps[j].Groups)
		}
	})
	for _, sub := range forks {
		if sub != nil {
			st.join(sub)
		}
	}
}

// pushdownGroupAgg sends one row group's grouped aggregation to its node
// (the per-op path, used when batching is disabled).
func (s *Store) pushdownGroupAgg(st *execState, w *groupWork, kinds []sql.AggKind, bm *bitmap.Bitmap) ([]sql.GroupPartial, error) {
	req := &rpc.Request{
		Kind:      rpc.KindGroupAgg,
		Bitmap:    bm.Marshal(),
		KeyChunks: w.keyRefs,
		ValChunks: w.valRefs,
		AggKinds:  kinds,
		MaxGroups: maxNodeGroups,
	}
	resp, err := s.callChecked(st.ctx, st.sp, w.node, req)
	if err != nil {
		return nil, err
	}
	st.sp.Count(trace.BytesRequested, w.chunkBytes)
	st.sp.Count(trace.GroupPartials, uint64(len(resp.Groups)))
	st.stats.GroupAggRPCs++
	st.stats.PartialGroups += len(resp.Groups)
	st.addOp(simnet.OpCost{
		Node:      w.node,
		ReqBytes:  req.WireSize(),
		RespBytes: resp.WireSize(),
		DiskBytes: resp.Cost.DiskBytes,
		ProcBytes: resp.Cost.ProcBytes,
	})
	return resp.Groups, nil
}

// localGroupRG groups one row group at the coordinator: fetch the key and
// argument chunks (cache and reconstruction apply as usual) and fold the
// selected rows through the same GroupTable a node would use, yielding
// partials in the same deterministic key order.
func (s *Store) localGroupRG(st *execState, rg int, keyIdx, valIdx []int, kinds []sql.AggKind, bm *bitmap.Bitmap) ([]sql.GroupPartial, error) {
	chs := st.meta.Footer.RowGroups[rg].Chunks
	fetched := make(map[int]lpq.ColumnData)
	var proc uint64
	get := func(ci int) (lpq.ColumnData, error) {
		if col, ok := fetched[ci]; ok {
			return col, nil
		}
		col, err := s.fetchChunkColumn(st, rg, ci)
		if err != nil {
			return lpq.ColumnData{}, err
		}
		if col.Len() != bm.Len() {
			return lpq.ColumnData{}, fmt.Errorf("store: chunk (%d,%d) has %d rows, bitmap %d", rg, ci, col.Len(), bm.Len())
		}
		fetched[ci] = col
		proc += chs[ci].RawSize
		return col, nil
	}
	keys := make([]lpq.ColumnData, len(keyIdx))
	for i, ci := range keyIdx {
		col, err := get(ci)
		if err != nil {
			return nil, err
		}
		keys[i] = col
	}
	vals := make([]lpq.ColumnData, len(valIdx))
	for i, ci := range valIdx {
		if ci < 0 {
			continue // COUNT(*): no argument column
		}
		col, err := get(ci)
		if err != nil {
			return nil, err
		}
		vals[i] = col
	}
	st.chargeCoordCPU(proc)
	g := sql.NewGroupTable(kinds, 0)
	if err := g.AddRows(keys, vals, bm); err != nil {
		return nil, err
	}
	return g.Sorted(), nil
}

// aggColumn renders one aggregate's per-group values as a result column:
// COUNT is integral, SUM/AVG numeric, MIN/MAX follow the argument column's
// type.
func aggColumn(meta *ObjectMeta, a groupAgg, groups []sql.GroupPartial, ai int) lpq.ColumnData {
	switch a.proj.Agg {
	case sql.AggCount:
		col := lpq.ColumnData{Type: lpq.Int64}
		for gi := range groups {
			col.Ints = append(col.Ints, groups[gi].Aggs[ai].Result().I)
		}
		return col
	case sql.AggMin, sql.AggMax:
		if a.ci >= 0 && meta.Footer.Columns[a.ci].Type == lpq.String {
			col := lpq.ColumnData{Type: lpq.String}
			for gi := range groups {
				col.Strings = append(col.Strings, groups[gi].Aggs[ai].Result().S)
			}
			return col
		}
	}
	col := lpq.ColumnData{Type: lpq.Float64}
	for gi := range groups {
		col.Floats = append(col.Floats, groups[gi].Aggs[ai].Result().F)
	}
	return col
}
