package store

import (
	"sync"
	"sync/atomic"
)

// runTasks executes fn(0) … fn(n-1) on at most workers goroutines, pulling
// task indices from a shared counter. With one worker (or one task) it runs
// inline on the caller. fn must be safe to call concurrently for distinct
// indices; callers make results deterministic by writing each task's output
// into its own slot and merging in index order afterwards.
func runTasks(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
