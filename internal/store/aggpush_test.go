package store

import (
	"math"
	"testing"
)

// TestAggregatePushdownEquivalence verifies the aggregate-pushdown
// extension returns exactly the same aggregate values as coordinator-side
// evaluation, while moving fewer bytes.
func TestAggregatePushdownEquivalence(t *testing.T) {
	data, _, _ := makeObject(t, 3, 800, 91)
	const query = "SELECT COUNT(*), SUM(price), AVG(price), MIN(qty), MAX(qty) FROM obj WHERE flag = 'A'"

	plain, _ := newSimStore(t, fusionTestOptions())
	if _, err := plain.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := plain.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.AggregateRPCs != 0 {
		t.Fatal("aggregate pushdown must be off by default")
	}

	opts := fusionTestOptions()
	opts.AggregatePushdown = true
	pushed, _ := newSimStore(t, opts)
	if _, err := pushed.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	got, err := pushed.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.AggregateRPCs == 0 {
		t.Fatalf("aggregate pushdown must issue Aggregate RPCs: %+v", got.Stats)
	}
	if len(got.AggValues) != len(want.AggValues) {
		t.Fatalf("aggregate count mismatch: %d vs %d", len(got.AggValues), len(want.AggValues))
	}
	for i := range want.AggValues {
		w, g := want.AggValues[i], got.AggValues[i]
		if w.Kind != g.Kind || w.I != g.I || math.Abs(w.F-g.F) > 1e-9 || w.S != g.S {
			t.Fatalf("aggregate %s: got %v, want %v", want.AggLabels[i], g, w)
		}
	}
	if got.Stats.TrafficBytes >= want.Stats.TrafficBytes {
		t.Fatalf("aggregate pushdown must move fewer bytes: %d vs %d",
			got.Stats.TrafficBytes, want.Stats.TrafficBytes)
	}
}

// TestAggregatePushdownMixedProjection: a column that is both projected and
// aggregated must be materialized once and aggregated from the local copy
// (no double RPC), and results must match.
func TestAggregatePushdownMixedProjection(t *testing.T) {
	data, _, _ := makeObject(t, 2, 500, 92)
	opts := fusionTestOptions()
	opts.AggregatePushdown = true
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT qty, SUM(qty), MAX(comment) FROM obj WHERE qty >= 45")
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range res.Data[0].Ints {
		sum += v
	}
	if res.AggValues[0].F != float64(sum) {
		t.Fatalf("SUM(qty) = %v, want %d (from the projected values)", res.AggValues[0], sum)
	}
	if res.AggValues[1].S == "" {
		t.Fatal("MAX(comment) must be computed")
	}
}

// TestAggregatePushdownStringColumn covers MIN/MAX over string chunks.
func TestAggregatePushdownStringColumn(t *testing.T) {
	data, _, _ := makeObject(t, 2, 400, 93)
	opts := fusionTestOptions()
	opts.AggregatePushdown = true
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Query("SELECT MIN(flag), MAX(flag) FROM obj WHERE qty < 40")
	if err != nil {
		t.Fatal(err)
	}
	if got.AggValues[0].S != "A" || got.AggValues[1].S != "R" {
		t.Fatalf("string MIN/MAX = %v/%v, want A/R", got.AggValues[0], got.AggValues[1])
	}
}

// TestAggregatePushdownDegraded: with the hosting node down, aggregation
// falls back to fetch + local reduction and still succeeds.
func TestAggregatePushdownDegraded(t *testing.T) {
	data, _, _ := makeObject(t, 2, 400, 94)
	opts := fusionTestOptions()
	opts.AggregatePushdown = true
	s, cl := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query("SELECT SUM(price) FROM obj WHERE qty < 25")
	if err != nil {
		t.Fatal(err)
	}
	cl.SetDown(4, true)
	defer cl.SetDown(4, false)
	got, err := s.Query("SELECT SUM(price) FROM obj WHERE qty < 25")
	if err != nil {
		t.Fatalf("degraded aggregate: %v", err)
	}
	if math.Abs(got.AggValues[0].F-want.AggValues[0].F) > 1e-9 {
		t.Fatalf("degraded SUM = %v, want %v", got.AggValues[0], want.AggValues[0])
	}
}
