package store

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
)

// TestCrashPointMatrix kills the coordinator at every interesting point of
// an overwrite — during epoch allocation, after j of the scattered block
// prepares, partway through the metadata quorum publish, during the commit
// fan-out and during previous-version GC — and asserts the crash-consistency
// contract:
//
//  1. A fresh coordinator reads exactly the old bytes or exactly the new
//     bytes, never a hybrid.
//  2. A Put that returned success is durable: readers see the new version.
//  3. Orphan reconciliation (force, quiesced cluster) leaves the cluster
//     holding exactly the committed version's blocks plus the metadata
//     registers — no pending flags, no debris — and the object still reads
//     back and scrubs clean.
func TestCrashPointMatrix(t *testing.T) {
	runCrashPointMatrix(t, func(s *Store, name string, data []byte) error {
		_, err := s.Put(name, data)
		return err
	})
}

// TestCrashPointMatrixStreaming replays the whole matrix through PutReader:
// a crash mid-scatter now interrupts a live producer/consumer pipeline with
// pooled stripe arenas in flight, and the contract — old-or-new-never-
// hybrid, clean rollback mid-stripe, reconcile leaves no debris — must hold
// identically.
func TestCrashPointMatrixStreaming(t *testing.T) {
	runCrashPointMatrix(t, func(s *Store, name string, data []byte) error {
		_, err := s.PutReader(context.Background(), name, bytes.NewReader(data), uint64(len(data)))
		return err
	})
}

func runCrashPointMatrix(t *testing.T, put func(s *Store, name string, data []byte) error) {
	seed := faultSeed(t)
	dataOld, _, _ := makeObject(t, 2, 200, seed)
	dataNew, _, _ := makeObject(t, 3, 150, seed+1)
	if bytes.Equal(dataOld, dataNew) {
		t.Fatal("old and new versions must differ")
	}

	// Crash points: kind + how many matching calls complete first. For
	// KindPutBlock the first 7 calls of an overwrite are the epoch
	// allocation's write phase (k+1 = 7 register replicas), so 0 and 3 crash
	// inside epoch allocation and 7/10 crash partway through the metadata
	// publish itself.
	points := []struct {
		name  string
		kind  rpc.Kind
		after int
	}{
		{"epoch-alloc-0", rpc.KindPutBlock, 0},
		{"epoch-alloc-3", rpc.KindPutBlock, 3},
		{"prepare-0", rpc.KindPrepareBlock, 0},
		{"prepare-1", rpc.KindPrepareBlock, 1},
		{"prepare-5", rpc.KindPrepareBlock, 5},
		{"prepare-8", rpc.KindPrepareBlock, 8},
		{"meta-publish-7", rpc.KindPutBlock, 7},
		{"meta-publish-10", rpc.KindPutBlock, 10},
		{"commit-0", rpc.KindCommitObject, 0},
		{"commit-2", rpc.KindCommitObject, 2},
		{"gc-delete-0", rpc.KindDeleteBlock, 0},
	}

	for _, pt := range points {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			s1, inj := newFaultStore(t, 9, seed, fusionTestOptions())
			if err := put(s1, "obj", dataOld); err != nil {
				t.Fatal(err)
			}

			inj.CrashClientAfter(pt.kind, pt.after)
			putErr := put(s1, "obj", dataNew)
			if !inj.Crashed() {
				t.Fatalf("crash point never reached (putErr = %v)", putErr)
			}
			inj.Reattach()

			// A fresh coordinator over the same cluster: empty cache, quorum
			// reads only.
			s2, err := New(inj, fusionTestOptions())
			if err != nil {
				t.Fatal(err)
			}
			got, err := s2.Get("obj", 0, 0)
			if err != nil {
				t.Fatalf("seed %d: fresh read after crash: %v", seed, err)
			}
			isOld, isNew := bytes.Equal(got, dataOld), bytes.Equal(got, dataNew)
			if !isOld && !isNew {
				t.Fatalf("seed %d: fresh read is a hybrid (%d bytes; old %d, new %d)",
					seed, len(got), len(dataOld), len(dataNew))
			}
			if putErr == nil && !isNew {
				// The commit point passed (Put reported success): the write
				// must be durable for every subsequent reader.
				t.Fatalf("seed %d: successful Put not visible after crash", seed)
			}

			// Quiesced cluster: force-reconcile GCs every orphan.
			rep, err := s2.ReconcileOrphans(true)
			if err != nil {
				t.Fatalf("seed %d: reconcile: %v", seed, err)
			}
			meta, err := s2.Meta("obj")
			if err != nil {
				t.Fatal(err)
			}
			// Inventory audit: only register blocks and committed-epoch,
			// non-pending object blocks may remain.
			cl := inj.Inner().(*simnet.Cluster)
			for node := 0; node < cl.NumNodes(); node++ {
				resp := cl.Node(node).Handle(&rpc.Request{Kind: rpc.KindListBlocks})
				if resp.Err != "" {
					t.Fatalf("node %d inventory: %s", node, resp.Err)
				}
				for _, b := range resp.Blocks {
					if strings.HasPrefix(b.ID, "kv/") {
						continue
					}
					object, epoch, _, _, ok := parseBlockID(b.ID)
					if !ok || object != "obj" {
						t.Fatalf("node %d: unexpected block %q after reconcile", node, b.ID)
					}
					if epoch != meta.Epoch {
						t.Fatalf("seed %d: node %d: debris %q survived reconcile (committed epoch %d, report %+v)",
							seed, node, b.ID, meta.Epoch, rep)
					}
					if b.Pending {
						t.Fatalf("seed %d: node %d: block %q still pending after reconcile", seed, node, b.ID)
					}
				}
			}

			// The object still reads the same bytes and scrubs clean.
			got2, err := s2.Get("obj", 0, 0)
			if err != nil || !bytes.Equal(got2, got) {
				t.Fatalf("seed %d: post-reconcile read changed: %v", seed, err)
			}
			srep, err := s2.Scrub("obj", ScrubOptions{})
			if err != nil || srep.MissingBlocks != 0 || srep.CorruptStripes != 0 || srep.ChecksumFailures != 0 {
				t.Fatalf("seed %d: post-reconcile scrub: %+v, %v", seed, srep, err)
			}
		})
	}
}

// TestCrashMidPutInvisibleUntilCommit pins the non-force reconciler's
// conservatism: the pending blocks of a crashed-before-commit attempt sit at
// the newest allocated epoch, so a non-force pass (which cannot tell them
// from an in-flight Put) leaves them alone, and only a force pass collects
// them.
func TestCrashMidPutInvisibleUntilCommit(t *testing.T) {
	seed := faultSeed(t)
	s1, inj := newFaultStore(t, 9, seed, fusionTestOptions())
	data, _, _ := makeObject(t, 2, 150, seed)
	if _, err := s1.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	dataNew, _, _ := makeObject(t, 2, 180, seed+1)
	inj.CrashClientAfter(rpc.KindPrepareBlock, 5)
	if _, err := s1.Put("obj", dataNew); err == nil {
		t.Fatal("crashed Put must not report success")
	}
	inj.Reattach()

	s2, err := New(inj, fusionTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.ReconcileOrphans(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatalf("non-force reconcile must skip the crashed attempt's pending blocks: %+v", rep)
	}
	if rep.Deleted != 0 {
		t.Fatalf("non-force reconcile must not GC possibly-in-flight blocks: %+v", rep)
	}
	rep, err = s2.ReconcileOrphans(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deleted == 0 {
		t.Fatalf("force reconcile must collect the debris: %+v", rep)
	}
	got, err := s2.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("old version must survive: %v", err)
	}
}
