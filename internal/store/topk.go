package store

import (
	"fmt"
	"sort"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/sql"
	"github.com/fusionstore/fusion/internal/trace"
)

// This file is the ORDER BY execution path for ungrouped queries. The
// general shape materializes the projections (plus hidden order-only
// columns), sorts at the coordinator, and truncates. ORDER BY + LIMIT on a
// single plain column instead pushes a top-k operator to the nodes: each
// row group returns at most k (key, rg, row) candidates, the coordinator
// runs a bounded k-way merge, and only the k winning rows are ever
// projected. Ties always break on global (rg, row) position — the same
// order a stable coordinator sort yields — so every path returns the same
// rows in the same order.

// orderedProjection runs the projection stage and applies the query's ORDER
// BY (LIMIT is applied by the caller).
func (s *Store) orderedProjection(st *execState, q *sql.Query, colIdx map[string]int, rgBitmaps map[int]*bitmap.Bitmap) (*Result, error) {
	if len(q.OrderColumns()) == 0 {
		// No ORDER BY, or ORDER BY over aggregates only — an ungrouped
		// aggregate result is a single row, so there is nothing to sort.
		return s.projectionStage(st, q, colIdx, rgBitmaps)
	}
	if q.HasLimit && q.Limit > 0 && len(q.OrderBy) == 1 &&
		q.OrderBy[0].Proj.Agg == sql.AggNone && !q.HasAggregates() {
		return s.topKStage(st, q, colIdx, rgBitmaps)
	}
	return s.sortedProjection(st, q, colIdx, rgBitmaps)
}

// sortedProjection is the general ORDER BY path: order-only columns ride
// along as hidden projections, the materialized rows are permuted by a
// stable sort (ties keep row-group-major row order), and the hidden columns
// are stripped before returning.
func (s *Store) sortedProjection(st *execState, q *sql.Query, colIdx map[string]int, rgBitmaps map[int]*bitmap.Bitmap) (*Result, error) {
	projected := make(map[string]bool)
	for _, p := range q.Projections {
		if p.Agg == sql.AggNone {
			projected[p.Column] = true
		}
	}
	hidden := make(map[string]bool)
	for _, c := range q.OrderColumns() {
		if !projected[c] {
			hidden[c] = true
			q.Projections = append(q.Projections, sql.Projection{Column: c})
		}
	}
	res, err := s.projectionStage(st, q, colIdx, rgBitmaps)
	if err != nil {
		return nil, err
	}
	pos := make(map[string]int, len(res.Columns))
	for i, c := range res.Columns {
		pos[c] = i
	}
	n := 0
	if len(res.Data) > 0 {
		n = res.Data[0].Len()
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	st.chargeCoordCPU(uint64(n) * 16)
	sort.SliceStable(perm, func(a, b int) bool {
		for _, o := range q.OrderBy {
			if o.Proj.Agg != sql.AggNone {
				continue // a scalar aggregate ties every row
			}
			col := res.Data[pos[o.Proj.Column]]
			c := sql.CompareLiterals(litAt(col, perm[a]), litAt(col, perm[b]))
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range res.Data {
		res.Data[i] = permuteColumn(res.Data[i], perm)
	}
	// Hidden columns were appended last, so surviving columns keep their
	// SELECT-list positions.
	for len(res.Columns) > 0 && hidden[res.Columns[len(res.Columns)-1]] {
		res.Columns = res.Columns[:len(res.Columns)-1]
		res.Data = res.Data[:len(res.Data)-1]
	}
	return res, nil
}

// topKWork is one row group's unit of top-k work.
type topKWork struct {
	rg   int
	sub  *execState
	rows []sql.TopRow
	err  error
	pre  *rpc.Response // batched sub-response, when successful
}

// topKStage executes ORDER BY <col> [DESC] LIMIT k via top-k pushdown:
// footer bounds prune row groups that provably cannot place, each surviving
// row group yields its local top-k (on the node or at the coordinator), and
// a bounded merge picks the winners — only then are the other projected
// columns materialized, for just those k rows.
func (s *Store) topKStage(st *execState, q *sql.Query, colIdx map[string]int, rgBitmaps map[int]*bitmap.Bitmap) (*Result, error) {
	meta := st.meta
	o := q.OrderBy[0]
	ci := colIdx[o.Proj.Column]
	k := q.Limit
	skip := topKPrunable(meta, ci, rgBitmaps, k, o.Desc)
	st.stats.PrunedRowGroups += len(skip)

	var works []*topKWork
	for rg := range meta.Footer.RowGroups {
		bm := rgBitmaps[rg]
		if bm == nil || bm.Count() == 0 || skip[rg] {
			continue
		}
		works = append(works, &topKWork{rg: rg})
	}
	cfgPush := s.opts.Exec == ExecPushdown && meta.Mode == LayoutFAC
	if cfgPush && s.batchOn() {
		s.predispatchTopKWorks(st, works, ci, k, o.Desc, rgBitmaps)
	}
	runTasks(s.queryWorkers(), len(works), func(i int) {
		w := works[i]
		w.sub = st.fork()
		bm := rgBitmaps[w.rg]
		ch := meta.Footer.RowGroups[w.rg].Chunks[ci]
		if w.pre != nil {
			w.rows = w.pre.TopRows
			return
		}
		if cfgPush && !s.batchOn() && planTopKPush(ch, k) {
			if rows, err := s.pushdownTopK(w.sub, w.rg, ci, ch, bm, k, o.Desc); err == nil {
				w.rows = rows
				return
			}
		}
		// Coordinator-side fallback: fetch the order column and fold the
		// selected rows through the same accumulator a node runs.
		col, err := s.fetchChunkColumn(w.sub, w.rg, ci)
		if err != nil {
			w.err = err
			return
		}
		if col.Len() != bm.Len() {
			w.err = fmt.Errorf("store: chunk (%d,%d) has %d rows, bitmap %d", w.rg, ci, col.Len(), bm.Len())
			return
		}
		w.sub.chargeCoordCPU(ch.RawSize)
		tk := sql.NewTopK(k, o.Desc)
		bm.ForEach(func(r int) { tk.Push(litAt(col, r), int32(w.rg), int32(r)) })
		w.rows = tk.Rows()
	})
	merged := sql.NewTopK(k, o.Desc)
	for _, w := range works {
		st.join(w.sub)
		if w.err != nil {
			return nil, w.err
		}
		merged.Merge(w.rows)
	}
	winners := merged.Rows()

	// Materialize the SELECT list for just the winning rows, then permute
	// the (rg, row)-ordered projection output into rank order.
	winBm := make(map[int]*bitmap.Bitmap)
	for _, w := range winners {
		bm := winBm[int(w.RG)]
		if bm == nil {
			bm = bitmap.New(meta.Footer.RowGroups[w.RG].NumRows)
			winBm[int(w.RG)] = bm
		}
		bm.Set(int(w.Row))
	}
	res, err := s.projectionStage(st, q, colIdx, winBm)
	if err != nil {
		return nil, err
	}
	type rowPos struct{ rg, row int32 }
	concat := append([]sql.TopRow(nil), winners...)
	sort.Slice(concat, func(a, b int) bool {
		if concat[a].RG != concat[b].RG {
			return concat[a].RG < concat[b].RG
		}
		return concat[a].Row < concat[b].Row
	})
	idx := make(map[rowPos]int, len(concat))
	for i, w := range concat {
		idx[rowPos{w.RG, w.Row}] = i
	}
	perm := make([]int, len(winners))
	for i, w := range winners {
		perm[i] = idx[rowPos{w.RG, w.Row}]
	}
	for i := range res.Data {
		res.Data[i] = permuteColumn(res.Data[i], perm)
	}
	return res, nil
}

// predispatchTopKWorks ships the stage's pushable top-k ops as one
// scatter-gather frame per node; failed sub-ops fall back to the workers'
// coordinator-side path.
func (s *Store) predispatchTopKWorks(st *execState, works []*topKWork, ci, k int, desc bool, rgBitmaps map[int]*bitmap.Bitmap) {
	meta := st.meta
	type nodeGroup struct {
		node  int
		subs  []rpc.Request
		works []*topKWork
		chs   []lpq.ChunkMeta
	}
	groups := make(map[int]*nodeGroup)
	var order []*nodeGroup
	for _, w := range works {
		ch := meta.Footer.RowGroups[w.rg].Chunks[ci]
		if !planTopKPush(ch, k) {
			continue
		}
		node, ref, ok := chunkLocation(meta, w.rg, ci, ch)
		if !ok {
			continue
		}
		g := groups[node]
		if g == nil {
			g = &nodeGroup{node: node}
			groups[node] = g
			order = append(order, g)
		}
		g.subs = append(g.subs, rpc.Request{
			Kind:   rpc.KindTopK,
			Chunk:  ref,
			Bitmap: rgBitmaps[w.rg].Marshal(),
			K:      k,
			Desc:   desc,
			RG:     int32(w.rg),
		})
		g.works = append(g.works, w)
		g.chs = append(g.chs, ch)
	}
	forks := make([]*execState, len(order))
	runTasks(s.queryWorkers(), len(order), func(i int) {
		g := order[i]
		sub := st.fork()
		forks[i] = sub
		resps, err := s.batchCall(sub.ctx, sub, sub.sp, g.node, g.subs)
		if err != nil {
			return // whole frame lost: every row group here falls back
		}
		for j, w := range g.works {
			if resps[j].Err != "" {
				continue
			}
			w.pre = &resps[j]
			sub.sp.Count(trace.BytesRequested, g.chs[j].Size)
			sub.stats.TopKRPCs++
		}
	})
	for _, sub := range forks {
		if sub != nil {
			st.join(sub)
		}
	}
}

// pushdownTopK sends one row group's top-k to its node (the per-op path,
// used when batching is disabled).
func (s *Store) pushdownTopK(st *execState, rg, ci int, ch lpq.ChunkMeta, bm *bitmap.Bitmap, k int, desc bool) ([]sql.TopRow, error) {
	meta := st.meta
	node, ref, ok := chunkLocation(meta, rg, ci, ch)
	if !ok {
		return nil, fmt.Errorf("store: chunk (%d,%d) has no item", rg, ci)
	}
	req := &rpc.Request{
		Kind:   rpc.KindTopK,
		Chunk:  ref,
		Bitmap: bm.Marshal(),
		K:      k,
		Desc:   desc,
		RG:     int32(rg),
	}
	resp, err := s.callChecked(st.ctx, st.sp, node, req)
	if err != nil {
		return nil, err
	}
	st.sp.Count(trace.BytesRequested, ch.Size)
	st.stats.TopKRPCs++
	st.addOp(simnet.OpCost{
		Node:      node,
		ReqBytes:  req.WireSize(),
		RespBytes: resp.WireSize(),
		DiskBytes: resp.Cost.DiskBytes,
		ProcBytes: resp.Cost.ProcBytes,
	})
	return resp.TopRows, nil
}

// litAt extracts row i of col as a literal.
func litAt(col lpq.ColumnData, i int) sql.Literal {
	switch col.Type {
	case lpq.Int64:
		return sql.IntLit(col.Ints[i])
	case lpq.Float64:
		return sql.FloatLit(col.Floats[i])
	default:
		return sql.StringLit(col.Strings[i])
	}
}

// permuteColumn returns col's rows reordered so row i of the output is row
// perm[i] of the input.
func permuteColumn(col lpq.ColumnData, perm []int) lpq.ColumnData {
	out := lpq.ColumnData{Type: col.Type}
	switch col.Type {
	case lpq.Int64:
		out.Ints = make([]int64, len(perm))
		for i, p := range perm {
			out.Ints[i] = col.Ints[p]
		}
	case lpq.Float64:
		out.Floats = make([]float64, len(perm))
		for i, p := range perm {
			out.Floats[i] = col.Floats[p]
		}
	default:
		out.Strings = make([]string, len(perm))
		for i, p := range perm {
			out.Strings[i] = col.Strings[p]
		}
	}
	return out
}
