package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fusionstore/fusion/internal/erasure"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/metakv"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/sql"
)

// makeObject builds a small lpq object with mixed column types and enough
// row groups to exercise pruning. Returns the file bytes and the raw data
// for reference evaluation.
func makeObject(t testing.TB, rowGroups, rowsPer int, seed int64) ([]byte, []lpq.Column, [][]lpq.ColumnData) {
	t.Helper()
	schema := []lpq.Column{
		{Name: "id", Type: lpq.Int64},
		{Name: "qty", Type: lpq.Int64},
		{Name: "price", Type: lpq.Float64},
		{Name: "flag", Type: lpq.String},
		{Name: "comment", Type: lpq.String},
	}
	rng := rand.New(rand.NewSource(seed))
	w := lpq.NewWriter(schema, lpq.DefaultWriterOptions())
	var groups [][]lpq.ColumnData
	next := int64(0)
	for g := 0; g < rowGroups; g++ {
		ids := make([]int64, rowsPer)
		qty := make([]int64, rowsPer)
		price := make([]float64, rowsPer)
		flag := make([]string, rowsPer)
		comment := make([]string, rowsPer)
		for i := 0; i < rowsPer; i++ {
			ids[i] = next
			next++
			qty[i] = int64(rng.Intn(50))
			price[i] = float64(rng.Intn(10000)) / 100
			flag[i] = []string{"A", "N", "R"}[rng.Intn(3)]
			comment[i] = fmt.Sprintf("order %d notes %d", rng.Intn(1000), rng.Intn(10))
		}
		cols := []lpq.ColumnData{
			lpq.IntColumn(ids), lpq.IntColumn(qty), lpq.FloatColumn(price),
			lpq.StringColumn(flag), lpq.StringColumn(comment),
		}
		if err := w.WriteRowGroup(cols); err != nil {
			t.Fatal(err)
		}
		groups = append(groups, cols)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return data, schema, groups
}

// fusionTestOptions is FusionOptions with a loosened storage budget: the
// paper's 2% default assumes hundreds of chunks per object (Fig. 16a);
// the small objects these tests build have tens, where Algorithm 1's
// overhead is legitimately a few percent.
func fusionTestOptions() Options {
	o := FusionOptions()
	o.StorageBudget = 0.5
	return o
}

func newSimStore(t testing.TB, opts Options) (*Store, *simnet.Cluster) {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cl := simnet.New(cfg)
	opts.Model = simnet.NewLatencyModel(cfg)
	s, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, cl
}

func TestPutGetRoundTripFAC(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 1)
	s, _ := newSimStore(t, fusionTestOptions())
	stats, err := s.Put("obj", data)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != LayoutFAC || stats.FellBack {
		t.Fatalf("expected FAC layout, got %+v", stats)
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("full Get must return the original object")
	}
	// Range reads.
	for _, r := range [][2]uint64{{0, 10}, {100, 1000}, {uint64(len(data)) - 7, 7}, {5, 0}} {
		got, err := s.Get("obj", r[0], r[1])
		if err != nil {
			t.Fatalf("Get(%d,%d): %v", r[0], r[1], err)
		}
		want := data[r[0]:]
		if r[1] > 0 {
			want = data[r[0] : r[0]+r[1]]
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%d,%d) mismatch", r[0], r[1])
		}
	}
	// Out-of-range errors.
	if _, err := s.Get("obj", uint64(len(data))+1, 0); err == nil {
		t.Fatal("Get beyond object must fail")
	}
	if _, err := s.Get("obj", 0, uint64(len(data))+1); err == nil {
		t.Fatal("Get past end must fail")
	}
}

func TestPutGetRoundTripFixed(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 2)
	opts := BaselineOptions()
	opts.FixedBlockSize = 4096 // force splits
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fixed-layout Get must return the original object")
	}
}

func TestPutRejectsGarbage(t *testing.T) {
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("junk", []byte("not an lpq file")); err == nil {
		t.Fatal("Put must reject non-lpq objects")
	}
}

func TestPutFACNeverSplitsChunks(t *testing.T) {
	data, _, _ := makeObject(t, 4, 300, 3)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	for rg := range meta.Footer.RowGroups {
		for ci := range meta.Footer.Columns {
			span, err := s.ChunkNodeSpan("obj", rg, ci)
			if err != nil {
				t.Fatal(err)
			}
			if span != 1 {
				t.Fatalf("FAC chunk (%d,%d) spans %d nodes", rg, ci, span)
			}
		}
	}
}

func TestFixedLayoutSplitsChunks(t *testing.T) {
	data, _, _ := makeObject(t, 3, 2000, 4)
	opts := BaselineOptions()
	opts.FixedBlockSize = 2048 // much smaller than chunks
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	split := 0
	for rg := range meta.Footer.RowGroups {
		for ci := range meta.Footer.Columns {
			span, err := s.ChunkNodeSpan("obj", rg, ci)
			if err != nil {
				t.Fatal(err)
			}
			if span > 1 {
				split++
			}
		}
	}
	if split == 0 {
		t.Fatal("small fixed blocks must split some chunks")
	}
}

func TestMetaReplicationAndRecovery(t *testing.T) {
	data, _, _ := makeObject(t, 2, 200, 5)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// A second store (fresh coordinator) with no cache must find the
	// metadata from replicas, even with the primary replica node down.
	s2, err := New(cl, fusionTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	primary := s.metaReplicaNodes("obj")[0]
	cl.SetDown(primary, true)
	defer cl.SetDown(primary, false)
	meta, err := s2.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Name != "obj" || meta.Size != uint64(len(data)) {
		t.Fatalf("recovered metadata wrong: %+v", meta)
	}
}

func TestDegradedRead(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 6)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Take down up to n−k = 3 nodes; Get must still succeed.
	for _, down := range [][]int{{0}, {1, 5}, {2, 4, 8}} {
		for _, n := range down {
			cl.SetDown(n, true)
		}
		got, err := s.Get("obj", 0, 0)
		if err != nil {
			t.Fatalf("degraded Get with %v down: %v", down, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("degraded Get with %v down returned wrong bytes", down)
		}
		for _, n := range down {
			cl.SetDown(n, false)
		}
	}
}

func TestDegradedQueryFallsBack(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 7)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	cl.SetDown(3, true)
	defer cl.SetDown(3, false)
	got, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatalf("query with node down: %v", err)
	}
	if !reflect.DeepEqual(got.Data, want.Data) {
		t.Fatal("degraded query returned different rows")
	}
}

func TestRepairNode(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 8)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// Wipe node 2's blocks (simulating disk loss), then repair.
	victim := 2
	node := cl.Node(victim)
	for _, id := range node.Blocks.IDs() {
		if id != "meta/obj" {
			if err := node.Blocks.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	n, err := s.RepairNode("obj", victim)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Skip("placement gave node 2 no blocks for this seed")
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after repair: %v", err)
	}
}

func TestDelete(t *testing.T) {
	data, _, _ := makeObject(t, 1, 100, 9)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	// Only the object's epoch-allocator register may remain: it is kept as
	// a tombstone so a re-created object can never reuse an epoch whose
	// debris might survive on a down node.
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if id != metakv.BlockID(epochKey("obj")) {
				t.Fatalf("block %q remains after delete", id)
			}
		}
	}
	if _, err := s.Meta("obj"); err == nil {
		t.Fatal("Meta after delete must fail")
	}
}

// referenceQuery evaluates a query against the raw row-group data.
func referenceQuery(t *testing.T, schema []lpq.Column, groups [][]lpq.ColumnData, query string) (rows int, cols map[string][]string) {
	t.Helper()
	q, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	colIdx := map[string]int{}
	for i, c := range schema {
		colIdx[c.Name] = i
	}
	cols = map[string][]string{}
	var evalRow func(e sql.Expr, g, i int) bool
	evalRow = func(e sql.Expr, g, i int) bool {
		switch node := e.(type) {
		case *sql.Compare:
			col := groups[g][colIdx[node.Column]]
			single := lpq.ColumnData{Type: col.Type}
			switch col.Type {
			case lpq.Int64:
				single.Ints = col.Ints[i : i+1]
			case lpq.Float64:
				single.Floats = col.Floats[i : i+1]
			default:
				single.Strings = col.Strings[i : i+1]
			}
			bm, err := sql.EvalCompare(node, single)
			if err != nil {
				t.Fatal(err)
			}
			return bm.Get(0)
		case *sql.Binary:
			if node.Op == sql.OpAnd {
				return evalRow(node.L, g, i) && evalRow(node.R, g, i)
			}
			return evalRow(node.L, g, i) || evalRow(node.R, g, i)
		case *sql.Not:
			return !evalRow(node.E, g, i)
		}
		return false
	}
	for g := range groups {
		n := groups[g][0].Len()
		for i := 0; i < n; i++ {
			if q.Where != nil && !evalRow(q.Where, g, i) {
				continue
			}
			rows++
			for _, p := range q.Projections {
				if p.Agg != sql.AggNone {
					continue
				}
				col := groups[g][colIdx[p.Column]]
				var v string
				switch col.Type {
				case lpq.Int64:
					v = fmt.Sprint(col.Ints[i])
				case lpq.Float64:
					v = fmt.Sprint(col.Floats[i])
				default:
					v = col.Strings[i]
				}
				cols[p.Column] = append(cols[p.Column], v)
			}
		}
	}
	return rows, cols
}

func resultColumnStrings(res *Result, name string) []string {
	for i, c := range res.Columns {
		if c != name {
			continue
		}
		col := res.Data[i]
		out := make([]string, 0, col.Len())
		switch col.Type {
		case lpq.Int64:
			for _, v := range col.Ints {
				out = append(out, fmt.Sprint(v))
			}
		case lpq.Float64:
			for _, v := range col.Floats {
				out = append(out, fmt.Sprint(v))
			}
		default:
			out = append(out, col.Strings...)
		}
		return out
	}
	return nil
}

// TestQueryEquivalence is the central end-to-end property: Fusion (FAC +
// adaptive pushdown), Fusion with pushdown forced on/off, and the baseline
// (fixed blocks + reassembly) must all return exactly the rows a reference
// row-scan returns.
func TestQueryEquivalence(t *testing.T) {
	data, schema, groups := makeObject(t, 4, 500, 10)
	queries := []string{
		"SELECT id FROM obj WHERE qty < 5",
		"SELECT id, price FROM obj WHERE flag = 'A' AND qty >= 25",
		"SELECT comment FROM obj WHERE price > 99.5 OR qty = 0",
		"SELECT id FROM obj WHERE NOT flag = 'N'",
		"SELECT id FROM obj WHERE id >= 100 AND id < 140",
		"SELECT id FROM obj",
		"SELECT id FROM obj WHERE qty > 100",  // empty result
		"SELECT id FROM obj WHERE id = 12345", // pruned everywhere
		"SELECT flag FROM obj WHERE comment >= 'order 5' AND comment < 'order 6'",
	}
	configs := map[string]Options{
		"fusion":        fusionTestOptions(),
		"fusion-always": func() Options { o := fusionTestOptions(); o.Pushdown = PushdownAlways; return o }(),
		"fusion-never":  func() Options { o := fusionTestOptions(); o.Pushdown = PushdownNever; return o }(),
		"baseline": func() Options {
			o := BaselineOptions()
			o.FixedBlockSize = 8192
			return o
		}(),
	}
	for cfgName, opts := range configs {
		s, _ := newSimStore(t, opts)
		if _, err := s.Put("obj", data); err != nil {
			t.Fatalf("%s: %v", cfgName, err)
		}
		for _, query := range queries {
			res, err := s.Query(query)
			if err != nil {
				t.Fatalf("%s %q: %v", cfgName, query, err)
			}
			wantRows, wantCols := referenceQuery(t, schema, groups, query)
			if res.Rows != wantRows {
				t.Fatalf("%s %q: %d rows, want %d", cfgName, query, res.Rows, wantRows)
			}
			for name, want := range wantCols {
				got := resultColumnStrings(res, name)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s %q column %s: %d values vs %d want", cfgName, query, name, len(got), len(want))
				}
			}
		}
	}
}

func TestQueryAggregates(t *testing.T) {
	data, _, groups := makeObject(t, 3, 400, 11)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT COUNT(*), SUM(qty), AVG(price), MIN(qty), MAX(qty) FROM obj WHERE flag = 'A'")
	if err != nil {
		t.Fatal(err)
	}
	// Reference computation.
	var count, sumQty int64
	var sumPrice float64
	minQty, maxQty := int64(1<<62), int64(-1)
	for g := range groups {
		flags := groups[g][3].Strings
		for i, f := range flags {
			if f != "A" {
				continue
			}
			count++
			q := groups[g][1].Ints[i]
			sumQty += q
			sumPrice += groups[g][2].Floats[i]
			if q < minQty {
				minQty = q
			}
			if q > maxQty {
				maxQty = q
			}
		}
	}
	if len(res.AggValues) != 5 {
		t.Fatalf("want 5 aggregates, got %d", len(res.AggValues))
	}
	if res.AggValues[0].I != count {
		t.Fatalf("COUNT(*) = %v, want %d", res.AggValues[0], count)
	}
	if res.AggValues[1].F != float64(sumQty) {
		t.Fatalf("SUM(qty) = %v, want %d", res.AggValues[1], sumQty)
	}
	wantAvg := sumPrice / float64(count)
	if diff := res.AggValues[2].F - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("AVG(price) = %v, want %v", res.AggValues[2], wantAvg)
	}
	if res.AggValues[3].F != float64(minQty) || res.AggValues[4].F != float64(maxQty) {
		t.Fatalf("MIN/MAX = %v/%v, want %d/%d", res.AggValues[3], res.AggValues[4], minQty, maxQty)
	}
}

func TestQueryErrors(t *testing.T) {
	data, _, _ := makeObject(t, 1, 100, 12)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"SELECT nope FROM obj",
		"SELECT id FROM obj WHERE nope = 1",
		"SELECT id FROM missing",
		"SELECT id FROM obj WHERE flag < 5", // type error
		"garbage",
	} {
		if _, err := s.Query(q); err == nil {
			t.Errorf("Query(%q) must fail", q)
		}
	}
}

func TestQueryStatsPruning(t *testing.T) {
	data, _, _ := makeObject(t, 4, 500, 13)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	// id is monotonically increasing across row groups: a narrow range
	// must prune at least two of the four groups.
	res, err := s.Query("SELECT qty FROM obj WHERE id >= 600 AND id < 650")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrunedRowGroups < 2 {
		t.Fatalf("expected row-group pruning, got %d", res.Stats.PrunedRowGroups)
	}
	if res.Rows != 50 {
		t.Fatalf("want 50 rows, got %d", res.Rows)
	}
}

func TestCostModelDecisions(t *testing.T) {
	// The Cost Equation (§4.3): push down iff selectivity × compressibility
	// < 1. A highly compressible chunk must not be pushed even at low
	// selectivity; an incompressible chunk must be pushed whenever
	// selectivity < 1.
	schema := []lpq.Column{
		{Name: "k", Type: lpq.Int64},
		{Name: "comp", Type: lpq.Int64}, // constant: compressibility ≫ 1
		{Name: "rnd", Type: lpq.Int64},  // random: compressibility ≈ 1
	}
	n := 20000
	rng := rand.New(rand.NewSource(99))
	ks := make([]int64, n)
	cs := make([]int64, n)
	rs := make([]int64, n)
	for i := range ks {
		ks[i] = int64(i)
		cs[i] = 7
		rs[i] = rng.Int63()
	}
	w := lpq.NewWriter(schema, lpq.DefaultWriterOptions())
	if err := w.WriteRowGroup([]lpq.ColumnData{lpq.IntColumn(ks), lpq.IntColumn(cs), lpq.IntColumn(rs)}); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	opts := fusionTestOptions()
	opts.StorageBudget = 5 // few-chunk object: worst-case packing shape
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	if c := meta.Footer.RowGroups[0].Chunks[1].Compressibility(); c < 10 {
		t.Fatalf("constant column compressibility %v too low for the test", c)
	}
	if c := meta.Footer.RowGroups[0].Chunks[2].Compressibility(); c > 2 {
		t.Fatalf("random column compressibility %v too high for the test", c)
	}
	// Compressible chunk, 1%% selectivity: sel × comp ≫ 1 → no pushdown.
	res, err := s.Query("SELECT comp FROM obj WHERE k < 200")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PushdownOff == 0 || res.Stats.PushdownOn != 0 {
		t.Fatalf("compressible chunk must not be pushed: %+v", res.Stats)
	}
	// Incompressible chunk, 1%% selectivity: sel × comp < 1 → pushdown.
	res, err = s.Query("SELECT rnd FROM obj WHERE k < 200")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PushdownOn == 0 {
		t.Fatalf("incompressible low-selectivity projection must push down: %+v", res.Stats)
	}
	if res.Rows != 200 {
		t.Fatalf("rows = %d", res.Rows)
	}
}

func TestBudgetFallbackToFixed(t *testing.T) {
	// One giant chunk and tiny ones: FAC cannot meet a 2% budget, so Put
	// must fall back to fixed blocks and still serve queries.
	schema := []lpq.Column{{Name: "a", Type: lpq.String}, {Name: "b", Type: lpq.Int64}}
	rng := rand.New(rand.NewSource(14))
	n := 2000
	as := make([]string, n)
	bs := make([]int64, n)
	for i := range as {
		buf := make([]byte, 400)
		rng.Read(buf)
		as[i] = string(buf) // incompressible giant column
		bs[i] = 3           // tiny constant column
	}
	w := lpq.NewWriter(schema, lpq.DefaultWriterOptions())
	if err := w.WriteRowGroup([]lpq.ColumnData{lpq.StringColumn(as), lpq.IntColumn(bs)}); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	opts := FusionOptions()
	opts.FixedBlockSize = 64 << 10
	s, _ := newSimStore(t, opts)
	stats, err := s.Put("obj", data)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FellBack || stats.Mode != LayoutFixed {
		t.Fatalf("expected budget fallback, got %+v", stats)
	}
	res, err := s.Query("SELECT b FROM obj WHERE b = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != n {
		t.Fatalf("rows = %d, want %d", res.Rows, n)
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after fallback: %v", err)
	}
}

func TestStorageOverheadAudit(t *testing.T) {
	data, _, _ := makeObject(t, 4, 500, 15)
	s, cl := newSimStore(t, fusionTestOptions())
	stats, err := s.Put("obj", data)
	if err != nil {
		t.Fatal(err)
	}
	// The cluster's stored bytes must equal PutStats (plus metadata: the
	// location-map register and the epoch-allocator register).
	metaBytes := uint64(0)
	for _, n := range s.metaReplicaNodes("obj") {
		sz, err := cl.Node(n).Blocks.Size(metaBlockID("obj"))
		if err != nil {
			t.Fatal(err)
		}
		metaBytes += sz
		if esz, err := cl.Node(n).Blocks.Size(metakv.BlockID(epochKey("obj"))); err == nil {
			metaBytes += esz
		}
	}
	if cl.TotalStoredBytes() != stats.StoredBytes+metaBytes {
		t.Fatalf("stored %d, stats %d + meta %d", cl.TotalStoredBytes(), stats.StoredBytes, metaBytes)
	}
	// FAC stays within a few percent of optimal even on this 22-item
	// object; the paper's ≤1.24% claim (hundreds of chunks) is validated
	// by the fig16 benchmarks over the real dataset generators.
	if stats.OverheadVsOptimal > 0.10 {
		t.Fatalf("overhead %v implausibly high", stats.OverheadVsOptimal)
	}
}

func TestSimLatencyPopulated(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 16)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Sim.Total <= 0 {
		t.Fatal("simulated latency must be positive")
	}
	if res.Stats.TrafficBytes == 0 {
		t.Fatal("query must account network traffic")
	}
	if res.Stats.Wall <= 0 {
		t.Fatal("wall time must be positive")
	}
}

func TestFusionBeatsBaselineOnSelectiveQuery(t *testing.T) {
	// The headline behaviour: on a selective query over a large object,
	// Fusion's simulated latency and traffic must beat the
	// chunk-splitting baseline.
	data, _, _ := makeObject(t, 4, 4000, 17)
	fusion, _ := newSimStore(t, fusionTestOptions())
	if _, err := fusion.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	opts := BaselineOptions()
	opts.FixedBlockSize = uint64(len(data)) / 50 // realistic split ratio
	base, _ := newSimStore(t, opts)
	if _, err := base.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT comment FROM obj WHERE qty = 7"
	fRes, err := fusion.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := base.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if fRes.Rows != bRes.Rows {
		t.Fatalf("row mismatch: %d vs %d", fRes.Rows, bRes.Rows)
	}
	if fRes.Stats.TrafficBytes >= bRes.Stats.TrafficBytes {
		t.Fatalf("fusion traffic %d must be below baseline %d",
			fRes.Stats.TrafficBytes, bRes.Stats.TrafficBytes)
	}
	if fRes.Stats.Sim.Total >= bRes.Stats.Sim.Total {
		t.Fatalf("fusion latency %v must beat baseline %v",
			fRes.Stats.Sim.Total, bRes.Stats.Sim.Total)
	}
}

func TestCoordinatorForStable(t *testing.T) {
	s, _ := newSimStore(t, fusionTestOptions())
	a := s.CoordinatorFor("lineitem")
	if a != s.CoordinatorFor("lineitem") {
		t.Fatal("coordinator choice must be deterministic")
	}
	if a < 0 || a >= 9 {
		t.Fatalf("coordinator %d out of range", a)
	}
}

func TestNewValidation(t *testing.T) {
	cl := simnet.New(simnet.Config{Nodes: 3})
	if _, err := New(cl, FusionOptions()); err == nil {
		t.Fatal("RS(9,6) on 3 nodes must be rejected")
	}
	bad := FusionOptions()
	bad.Params = erasure.Params{N: 1, K: 1}
	if _, err := New(simnet.New(simnet.DefaultConfig()), bad); err == nil {
		t.Fatal("invalid params must be rejected")
	}
}

func TestMetaEncodeDecode(t *testing.T) {
	data, _, _ := makeObject(t, 2, 100, 18)
	footer, err := lpq.ParseFooter(data)
	if err != nil {
		t.Fatal(err)
	}
	items, err := buildItems(data, footer)
	if err != nil {
		t.Fatal(err)
	}
	m := &ObjectMeta{Name: "x", Size: uint64(len(data)), Mode: LayoutFAC, Footer: footer, Items: items}
	enc, err := EncodeMeta(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMeta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || got.Size != m.Size || len(got.Items) != len(items) {
		t.Fatal("meta round trip failed")
	}
	if got.NumChunkItems() != footer.NumChunks() {
		t.Fatal("chunk item count wrong")
	}
	if got.LocMapBytes() != footer.NumChunks()*8 {
		t.Fatal("LocMapBytes wrong")
	}
	if _, err := DecodeMeta([]byte("garbage")); err == nil {
		t.Fatal("DecodeMeta must reject garbage")
	}
}

// TestGetRandomRangesProperty: every random (offset, length) Get must equal
// the same slice of the original object, under both layouts.
func TestGetRandomRangesProperty(t *testing.T) {
	data, _, _ := makeObject(t, 3, 300, 19)
	for _, opts := range []Options{fusionTestOptions(), func() Options {
		o := BaselineOptions()
		o.FixedBlockSize = 4096
		return o
	}()} {
		s, _ := newSimStore(t, opts)
		if _, err := s.Put("obj", data); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(20))
		for trial := 0; trial < 200; trial++ {
			off := uint64(rng.Intn(len(data)))
			length := uint64(rng.Intn(len(data) - int(off) + 1))
			got, err := s.Get("obj", off, length)
			if err != nil {
				t.Fatalf("Get(%d,%d): %v", off, length, err)
			}
			want := data[off:]
			if length > 0 {
				want = data[off : off+length]
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Get(%d,%d) mismatch (%v layout)", off, length, opts.Layout)
			}
		}
	}
}
