package store

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/erasure"
	"github.com/fusionstore/fusion/internal/faultnet"
	"github.com/fusionstore/fusion/internal/simnet"
)

// faultSeed returns the fault-injection seed: FUSION_FAULT_SEED when set,
// else a fixed default. Every fault test logs it so a failure can be
// reproduced by re-running with the printed value.
func faultSeed(t testing.TB) int64 {
	t.Helper()
	seed := int64(1)
	if v := os.Getenv("FUSION_FAULT_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FUSION_FAULT_SEED=%q: %v", v, err)
		}
		seed = n
	}
	t.Logf("fault seed = %d (re-run with FUSION_FAULT_SEED=%d to reproduce)", seed, seed)
	return seed
}

// forEachErasurePattern calls fn with every subset of {0..n-1} of size 1..r.
func forEachErasurePattern(n, r int, fn func(pattern []int)) {
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			fn(cur)
		}
		if len(cur) == r {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
}

// newFaultStore builds a store over a faultnet-wrapped simnet cluster.
func newFaultStore(t testing.TB, nodes int, seed int64, opts Options) (*Store, *faultnet.Injector) {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cfg.Nodes = nodes
	inj := faultnet.New(simnet.New(cfg), seed)
	// Tight backoff keeps the exhaustive matrix fast while still walking
	// the full retry path for injected transient errors.
	opts.Retry = cluster.Policy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  500 * time.Microsecond,
		// Tie the backoff jitter to the fault seed so the whole run —
		// injected faults AND retry schedules — replays from one number.
		Jitter: cluster.NewJitterSource(seed),
	}
	s, err := New(inj, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, inj
}

// TestDegradedReadMatrix is the exhaustive erasure-pattern matrix: for
// RS(9,6) and RS(14,10), every pattern of 1..n−k downed nodes is injected
// through faultnet, and Get and Query results must be bit-identical to the
// healthy cluster's.
func TestDegradedReadMatrix(t *testing.T) {
	const query = "SELECT qty, price FROM obj WHERE flag = 'A' AND qty > 10"
	for _, tc := range []struct {
		name   string
		params erasure.Params
	}{
		{"RS96", erasure.RS96},
		{"RS1410", erasure.RS1410},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seed := faultSeed(t)
			opts := fusionTestOptions()
			opts.Params = tc.params
			s, inj := newFaultStore(t, tc.params.N, seed, opts)

			data, _, _ := makeObject(t, 2, 250, seed)
			if _, err := s.Put("obj", data); err != nil {
				t.Fatal(err)
			}
			healthy, err := s.Get("obj", 0, 0)
			if err != nil || !bytes.Equal(healthy, data) {
				t.Fatalf("healthy Get: %v", err)
			}
			healthyRes, err := s.Query(query)
			if err != nil {
				t.Fatalf("healthy Query: %v", err)
			}

			n, r := tc.params.N, tc.params.N-tc.params.K
			patterns := 0
			forEachErasurePattern(n, r, func(pattern []int) {
				patterns++
				for _, node := range pattern {
					inj.SetDown(node, true)
				}
				got, err := s.Get("obj", 0, 0)
				if err != nil {
					t.Fatalf("seed %d pattern %v: degraded Get: %v", seed, pattern, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("seed %d pattern %v: degraded Get bytes differ", seed, pattern)
				}
				res, err := s.Query(query)
				if err != nil {
					t.Fatalf("seed %d pattern %v: degraded Query: %v", seed, pattern, err)
				}
				if res.Rows != healthyRes.Rows ||
					!reflect.DeepEqual(res.Columns, healthyRes.Columns) ||
					!reflect.DeepEqual(res.Data, healthyRes.Data) ||
					!reflect.DeepEqual(res.AggValues, healthyRes.AggValues) {
					t.Fatalf("seed %d pattern %v: degraded Query result differs from healthy", seed, pattern)
				}
				inj.ReviveAll()
			})
			want := patternCount(n, r)
			if patterns != want {
				t.Fatalf("visited %d patterns, want %d", patterns, want)
			}
			t.Logf("%s: %d erasure patterns verified", tc.name, patterns)
		})
	}
}

// patternCount is sum_{i=1..r} C(n, i).
func patternCount(n, r int) int {
	total := 0
	for i := 1; i <= r; i++ {
		c := 1
		for j := 0; j < i; j++ {
			c = c * (n - j) / (j + 1)
		}
		total += c
	}
	return total
}

// TestDegradedMatrixBeyondTolerance verifies the flip side of the matrix:
// every pattern of exactly n−k+1 downed data-bearing nodes makes Get fail
// with the ErrTooManyFailures sentinel rather than wrong bytes.
func TestDegradedMatrixBeyondTolerance(t *testing.T) {
	seed := faultSeed(t)
	opts := fusionTestOptions()
	s, inj := newFaultStore(t, 9, seed, opts)
	data, _, _ := makeObject(t, 2, 200, seed)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	p := s.Options().Params
	over := p.N - p.K + 1
	checked := 0
	forEachErasurePattern(p.N, over, func(pattern []int) {
		if len(pattern) != over {
			return
		}
		checked++
		for _, node := range pattern {
			inj.SetDown(node, true)
		}
		got, err := s.Get("obj", 0, 0)
		if err == nil {
			// n−k+1 downed *nodes* can still leave every data bin of every
			// stripe readable only if all the downed nodes held parity; with
			// random placement over exactly n nodes that cannot happen for
			// over > n−k, so a success here must still be correct bytes.
			if !bytes.Equal(got, data) {
				t.Fatalf("seed %d pattern %v: Get returned wrong bytes without error", seed, pattern)
			}
		} else if !errors.Is(err, ErrTooManyFailures) {
			t.Fatalf("seed %d pattern %v: want ErrTooManyFailures, got %v", seed, pattern, err)
		}
		inj.ReviveAll()
	})
	if checked == 0 {
		t.Fatal("no over-tolerance patterns visited")
	}
	t.Logf("%d over-tolerance patterns verified", checked)
}
