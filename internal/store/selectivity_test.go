package store

import (
	"math"
	"testing"
)

// TestSelectivityMeasured is the table test for the QueryStats.Selectivity
// guard: a zero-row denominator (empty table, fully-pruned footer) must
// report 0, never NaN.
func TestSelectivityMeasured(t *testing.T) {
	cases := []struct {
		name     string
		selected int
		total    int
		want     float64
	}{
		{"empty-table", 0, 0, 0},
		{"all-pruned-zero-total", 0, 0, 0},
		{"negative-total-guard", 3, -1, 0},
		{"nothing-selected", 0, 1000, 0},
		{"half", 500, 1000, 0.5},
		{"everything", 1000, 1000, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := measuredSelectivity(c.selected, c.total)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("measuredSelectivity(%d, %d) = %v, not finite", c.selected, c.total, got)
			}
			if got != c.want {
				t.Fatalf("measuredSelectivity(%d, %d) = %v, want %v", c.selected, c.total, got, c.want)
			}
		})
	}
}

// TestSelectivityAllPrunedQuery runs real queries whose predicates prune or
// reject every row and asserts the reported stats stay finite.
func TestSelectivityAllPrunedQuery(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 1)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// id is sequential from 0: every row group's zone map excludes this.
		"SELECT COUNT(id) FROM obj WHERE id > 100000000",
		// Contradictory range: survives pruning shortcuts but selects nothing.
		"SELECT SUM(qty) FROM obj WHERE id > 500 AND id < 100",
	}
	for _, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sel := res.Stats.Selectivity
		if math.IsNaN(sel) || math.IsInf(sel, 0) {
			t.Fatalf("%s: Selectivity = %v, want finite", q, sel)
		}
		if sel != 0 {
			t.Fatalf("%s: Selectivity = %v, want 0 for a zero-row result", q, sel)
		}
	}
}
