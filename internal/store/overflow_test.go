package store

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// overflowStore builds one small object under each layout for the
// adversarial-range tests.
func overflowStore(t testing.TB, layout LayoutMode) (*Store, []byte) {
	t.Helper()
	opts := fusionTestOptions()
	opts.Layout = layout
	s, _ := newSimStore(t, opts)
	data, _, _ := makeObject(t, 2, 200, 7)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	return s, data
}

// TestGetRangeOverflow is the regression table for the read-path overflow:
// offset+length can wrap uint64, so a naive `offset+length > meta.Size`
// check accepts adversarial ranges and silently returns truncated (or
// empty) data. Every out-of-range request must fail cleanly; every
// in-range request must return exactly the requested bytes.
func TestGetRangeOverflow(t *testing.T) {
	for _, layout := range []LayoutMode{LayoutFAC, LayoutFixed} {
		t.Run(layout.String(), func(t *testing.T) {
			s, data := overflowStore(t, layout)
			size := uint64(len(data))
			cases := []struct {
				name           string
				offset, length uint64
				wantErr        bool
			}{
				{"full", 0, 0, false},
				{"full-explicit", 0, size, false},
				{"tail", size - 10, 10, false},
				{"empty-at-end", size, 0, false},
				{"mid", size / 3, size / 4, false},
				{"offset-past-end", size + 1, 1, true},
				{"length-past-end", size - 1, 2, true},
				{"max-length", 0, ^uint64(0), true},
				{"max-length-at-end", size, ^uint64(0), true},
				{"max-offset", ^uint64(0), 1, true},
				// offset+length wraps to a small value: the classic bypass.
				{"wrapping-sum", 2, ^uint64(0) - 1, true},
				{"wrapping-sum-to-size", size, ^uint64(0) - size + 1, true},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					got, err := s.Get("obj", tc.offset, tc.length)
					if tc.wantErr {
						if err == nil {
							t.Fatalf("Get(%d, %d) = %d bytes, want error", tc.offset, tc.length, len(got))
						}
						return
					}
					if err != nil {
						t.Fatalf("Get(%d, %d): %v", tc.offset, tc.length, err)
					}
					wantLen := tc.length
					if wantLen == 0 && tc.offset < size {
						wantLen = size - tc.offset
					}
					want := data[tc.offset : tc.offset+wantLen]
					if !bytes.Equal(got, want) {
						t.Fatalf("Get(%d, %d) returned wrong bytes (%d vs %d)", tc.offset, tc.length, len(got), len(want))
					}
				})
			}
		})
	}
}

// TestSliceBlockOverflow covers the second overflow site: slicing a
// reconstructed block with attacker-influenced off/length.
func TestSliceBlockOverflow(t *testing.T) {
	block := []byte("0123456789")
	cases := []struct {
		off, length uint64
		wantErr     bool
		want        string
	}{
		{0, 10, false, "0123456789"},
		{3, 4, false, "3456"},
		{10, 0, false, ""},
		{0, 11, true, ""},
		{11, 0, true, ""},
		{1, ^uint64(0), true, ""}, // off+length wraps to 0
		{^uint64(0), 2, true, ""},
		{^uint64(0), ^uint64(0), true, ""},
	}
	for _, tc := range cases {
		got, err := sliceBlock(block, tc.off, tc.length)
		if tc.wantErr {
			if err == nil {
				t.Errorf("sliceBlock(%d, %d) = %q, want error", tc.off, tc.length, got)
			}
			continue
		}
		if err != nil || string(got) != tc.want {
			t.Errorf("sliceBlock(%d, %d) = %q, %v; want %q", tc.off, tc.length, got, err, tc.want)
		}
	}
}

// TestGetNeverPanicsQuick is the property test: for arbitrary uint64
// (offset, length) pairs, Get must either return exactly the requested
// range or a clean error — never panic, never silently truncate.
func TestGetNeverPanicsQuick(t *testing.T) {
	s, data := overflowStore(t, LayoutFAC)
	size := uint64(len(data))
	prop := func(offset, length uint64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Get(%d, %d) panicked: %v", offset, length, r)
				ok = false
			}
		}()
		got, err := s.Get("obj", offset, length)
		inRange := offset <= size && length <= size-offset
		if !inRange {
			return err != nil
		}
		wantLen := length
		if wantLen == 0 {
			wantLen = size - offset
		}
		return err == nil && bytes.Equal(got, data[offset:offset+wantLen])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzGetRange drives Get with fuzzer-chosen ranges; the oracle is the
// original object bytes.
func FuzzGetRange(f *testing.F) {
	s, data := overflowStore(f, LayoutFAC)
	size := uint64(len(data))
	f.Add(uint64(0), uint64(0))
	f.Add(size, ^uint64(0))
	f.Add(uint64(2), ^uint64(0)-1)
	f.Add(size/2, size/3)
	f.Fuzz(func(t *testing.T, offset, length uint64) {
		got, err := s.Get("obj", offset, length)
		if offset > size || length > size-offset {
			if err == nil {
				t.Fatalf("Get(%d, %d) accepted an out-of-range request (%d bytes)", offset, length, len(got))
			}
			return
		}
		if err != nil {
			t.Fatalf("Get(%d, %d): %v", offset, length, err)
		}
		wantLen := length
		if wantLen == 0 {
			wantLen = size - offset
		}
		if !bytes.Equal(got, data[offset:offset+wantLen]) {
			t.Fatalf("Get(%d, %d) returned wrong bytes", offset, length)
		}
	})
}

func init() {
	// Guard against LayoutMode gaining values without a String method (the
	// subtest names above rely on it).
	_ = fmt.Stringer(LayoutFAC)
}
