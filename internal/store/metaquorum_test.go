package store

import (
	"bytes"
	"testing"

	"github.com/fusionstore/fusion/internal/simnet"
)

// TestOverwriteMetaNeverStale is the quorum-register guarantee: a metadata
// replica that was down during an overwrite must never serve the old
// version to a fresh coordinator, even when the replicas that took the
// write are themselves down afterwards — because write and read majorities
// overlap.
func TestOverwriteMetaNeverStale(t *testing.T) {
	v1, _, _ := makeObject(t, 2, 200, 111)
	v2, _, _ := makeObject(t, 2, 220, 112)
	// 12 nodes so RS(9,6) data placement can route around 3 down nodes.
	cfg := simnet.DefaultConfig()
	cfg.Nodes = 12
	cl := simnet.New(cfg)
	opts := fusionTestOptions()
	opts.Model = simnet.NewLatencyModel(cfg)
	s, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	replicas := s.metaReplicaNodes("obj") // 7 replicas, majority 4
	if len(replicas) != 7 {
		t.Fatalf("expected k+1=7 meta replicas, got %d", len(replicas))
	}
	// Three replicas miss the overwrite (the tolerance limit).
	for _, n := range replicas[:3] {
		cl.SetDown(n, true)
	}
	if _, err := s.Put("obj", v2); err != nil {
		t.Fatalf("overwrite with 3 meta replicas down: %v", err)
	}
	// The laggards return; three of the replicas that took the write go
	// away. The alive set still holds a majority, but only one of its
	// members saw the overwrite.
	for _, n := range replicas[:3] {
		cl.SetDown(n, false)
	}
	for _, n := range replicas[3:6] {
		cl.SetDown(n, true)
	}
	defer func() {
		for _, n := range replicas[3:6] {
			cl.SetDown(n, false)
		}
	}()
	// A fresh coordinator (no cache) must observe version 1 — reading v0
	// metadata here would point at garbage-collected v0 blocks.
	s2, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s2.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 1 {
		t.Fatalf("stale metadata served: version %d, want 1", meta.Version)
	}
	if meta.Size != uint64(len(v2)) {
		t.Fatalf("meta size %d, want %d", meta.Size, len(v2))
	}
	// And the object reads back as v2 (data nodes may need degraded reads
	// since some are down, which Get handles).
	got, err := s2.Get("obj", 0, 0)
	if err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("read returned the wrong version's bytes")
	}
}

// TestPutRoutesAroundDownNodes: with more nodes than n, Put places stripes
// on healthy nodes even while some are unreachable.
func TestPutRoutesAroundDownNodes(t *testing.T) {
	data, _, _ := makeObject(t, 2, 200, 113)
	cfg := simnet.DefaultConfig()
	cfg.Nodes = 12
	cl := simnet.New(cfg)
	opts := fusionTestOptions()
	opts.Model = simnet.NewLatencyModel(cfg)
	s, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetDown(2, true)
	cl.SetDown(7, true)
	cl.SetDown(11, true)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatalf("Put with 3 of 12 nodes down: %v", err)
	}
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	for si, st := range meta.Stripes {
		seen := map[int]bool{}
		for _, n := range st.Nodes {
			if n == 2 || n == 7 || n == 11 {
				t.Fatalf("stripe %d placed a block on a down node %d", si, n)
			}
			if seen[n] {
				t.Fatalf("stripe %d reused node %d", si, n)
			}
			seen[n] = true
		}
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after degraded placement: %v", err)
	}
}
