package store

import (
	"testing"
)

func TestQuerySurvivesChunkCorruption(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 55)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the block holding the qty chunk of row group 0 in place.
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	itemIdx := meta.ChunkItemIndex(0, 1) // qty column
	loc := meta.ItemLocs[itemIdx]
	stripe := meta.Stripes[loc.Stripe]
	node := cl.Node(stripe.Nodes[loc.Bin])
	blockID := stripe.BlockIDs[loc.Bin]
	block, err := node.Blocks.Get(blockID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	block[loc.BinOffset+3] ^= 0xff // flip a byte inside the chunk
	if err := node.Blocks.Put(blockID, block); err != nil {
		t.Fatal(err)
	}
	// The pushed-down filter on the corrupt chunk fails its checksum on
	// the node; the coordinator falls back to fetching, detects the
	// corruption again, and reconstructs the chunk from stripe parity.
	got, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatalf("query over corrupted chunk: %v", err)
	}
	if got.Rows != want.Rows {
		t.Fatalf("rows = %d, want %d", got.Rows, want.Rows)
	}
}

func TestProjectionSurvivesChunkCorruption(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 56)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query("SELECT comment FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	itemIdx := meta.ChunkItemIndex(1, 4) // comment column, rg 1
	loc := meta.ItemLocs[itemIdx]
	stripe := meta.Stripes[loc.Stripe]
	node := cl.Node(stripe.Nodes[loc.Bin])
	blockID := stripe.BlockIDs[loc.Bin]
	block, err := node.Blocks.Get(blockID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	block[loc.BinOffset] ^= 0x5a
	if err := node.Blocks.Put(blockID, block); err != nil {
		t.Fatal(err)
	}
	got, err := s.Query("SELECT comment FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatalf("projection over corrupted chunk: %v", err)
	}
	if got.Rows != want.Rows || got.Data[0].Len() != want.Data[0].Len() {
		t.Fatal("corrupted-chunk projection returned wrong rows")
	}
}
