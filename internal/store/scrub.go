package store

import (
	"context"
	"fmt"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/trace"
)

// ScrubReport summarizes one object's integrity scrub.
type ScrubReport struct {
	// Stripes is the number of stripes examined.
	Stripes int
	// MissingBlocks counts blocks that were unreadable (node down or
	// block gone).
	MissingBlocks int
	// ChecksumFailures counts blocks that failed CRC verification — the
	// node refusing a rotted block at rest, a reply corrupted in flight, or
	// bytes not matching the checksum recorded in the stripe metadata. Such
	// blocks are treated like missing ones for repair purposes.
	ChecksumFailures int
	// CorruptStripes counts stripes whose parity did not verify.
	CorruptStripes int
	// Repaired counts blocks rewritten by the scrub (with Repair set).
	Repaired int
}

// ScrubOptions configure Scrub.
type ScrubOptions struct {
	// Repair rewrites missing or corrupt blocks from the stripe's
	// survivors; without it the scrub only reports.
	Repair bool
}

// Scrub verifies every stripe of an object: all n blocks are fetched,
// zero-extended to the stripe capacity, and the parity relation is checked
// (erasure.Coder.Verify). With Repair set, unreadable blocks are rebuilt
// and rewritten, and corrupt stripes are re-encoded from the chunk data's
// checksummed source of truth where recoverable.
//
// This is the conventional background-scrubbing companion to §5's recovery
// procedure: RS parity detects whole-stripe inconsistency, while per-chunk
// CRCs (lpq) localize which copy is bad.
func (s *Store) Scrub(name string, opts ScrubOptions) (*ScrubReport, error) {
	return s.ScrubContext(context.Background(), name, opts)
}

// ScrubContext is Scrub under a (possibly traced) context: the span records
// one child per stripe with its block-fetch RPCs and any repair writes.
func (s *Store) ScrubContext(ctx context.Context, name string, opts ScrubOptions) (*ScrubReport, error) {
	sp := trace.FromContext(ctx).Child("store.Scrub")
	defer sp.End()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("Scrub"), time.Since(start))
		}(time.Now())
	}
	meta, err := s.Meta(name)
	if err != nil {
		return nil, err
	}
	p := s.opts.Params
	report := &ScrubReport{}
	for si, st := range meta.Stripes {
		ssp := sp.Child("stripe")
		report.Stripes++
		shards := make([][]byte, p.N)
		var missing []int
		for j := 0; j < p.N; j++ {
			resp, err := s.call(ctx, ssp, st.Nodes[j], &rpc.Request{
				Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[j],
			})
			if err != nil || resp.Err != "" {
				if err == nil && cluster.IsChecksumErr(resp.Err) {
					report.ChecksumFailures++
					ssp.Count(trace.ChecksumFailures, 1)
					s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: si, Block: j})
				}
				missing = append(missing, j)
				continue
			}
			// The CRC recorded at write time localizes a bad copy exactly;
			// a block failing it is an erasure, not a parity puzzle.
			if j < len(st.Checksums) && cluster.Checksum(resp.Data) != st.Checksums[j] {
				report.ChecksumFailures++
				ssp.Count(trace.ChecksumFailures, 1)
				s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: si, Block: j})
				missing = append(missing, j)
				continue
			}
			shards[j] = padTo(resp.Data, st.Capacity)
		}
		ssp.End() // the fetch phase; repair writes charge to the parent
		report.MissingBlocks += len(missing)
		if len(missing) > 0 {
			if !opts.Repair {
				continue
			}
			if len(missing) > p.N-p.K {
				return report, fmt.Errorf("store: stripe %d of %q has %d blocks missing, unrecoverable", si, name, len(missing))
			}
			work := make([][]byte, p.N)
			for j := range shards {
				if shards[j] != nil {
					work[j] = shards[j]
				}
			}
			if err := s.coder.Reconstruct(work); err != nil {
				return report, fmt.Errorf("store: rebuilding stripe %d of %q: %w", si, name, err)
			}
			for _, j := range missing {
				data := work[j]
				if j < p.K {
					data = data[:st.DataLens[j]]
				}
				if err := s.rewriteBlock(ctx, sp, meta, si, j, data); err != nil {
					return report, err
				}
				shards[j] = work[j]
				report.Repaired++
			}
		}
		ok, err := s.coder.Verify(shards)
		if err != nil {
			return report, fmt.Errorf("store: verifying stripe %d of %q: %w", si, name, err)
		}
		if !ok {
			report.CorruptStripes++
			if opts.Repair {
				n, err := s.repairCorruptStripe(ctx, sp, meta, si, shards)
				if err != nil {
					return report, err
				}
				report.Repaired += n
			}
		}
	}
	return report, nil
}

// repairCorruptStripe localizes corruption within a parity-inconsistent
// stripe using the per-chunk CRCs (FAC mode), then rebuilds the bad blocks
// from the remaining ones. It returns the number of blocks rewritten.
func (s *Store) repairCorruptStripe(ctx context.Context, sp *trace.Span, meta *ObjectMeta, si int, shards [][]byte) (int, error) {
	p := s.opts.Params
	st := meta.Stripes[si]
	bad := map[int]bool{}
	if meta.Mode == LayoutFAC {
		// A data bin is bad iff any chunk stored in it fails its CRC.
		for itemIdx, loc := range meta.ItemLocs {
			if loc.Stripe != si {
				continue
			}
			it := meta.Items[itemIdx]
			if it.Kind != ItemChunk || it.Size == 0 {
				continue
			}
			ch := meta.Footer.RowGroups[it.RG].Chunks[it.Col]
			raw := shards[loc.Bin][loc.BinOffset : loc.BinOffset+it.Size]
			if _, err := lpq.DecodeChunk(meta.Footer.Columns[it.Col].Type, ch, raw); err != nil {
				bad[loc.Bin] = true
			}
		}
	}
	if len(bad) == 0 {
		// Cannot localize (parity block corrupt, or fixed layout): assume
		// the parity blocks are stale and re-encode them from data.
		work := make([][]byte, p.N)
		for j := 0; j < p.K; j++ {
			work[j] = shards[j]
		}
		for j := p.K; j < p.N; j++ {
			work[j] = make([]byte, st.Capacity)
		}
		if err := s.coder.Encode(work); err != nil {
			return 0, err
		}
		n := 0
		for j := p.K; j < p.N; j++ {
			if err := s.rewriteBlock(ctx, sp, meta, si, j, work[j]); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}
	if len(bad) > p.N-p.K {
		return 0, fmt.Errorf("%w: stripe %d has %d corrupt blocks, unrecoverable", ErrTooManyFailures, si, len(bad))
	}
	work := make([][]byte, p.N)
	for j := range shards {
		if !bad[j] {
			work[j] = shards[j]
		}
	}
	if err := s.coder.Reconstruct(work); err != nil {
		return 0, err
	}
	n := 0
	for j := range bad {
		data := work[j]
		if j < p.K {
			data = data[:st.DataLens[j]]
		}
		if err := s.rewriteBlock(ctx, sp, meta, si, j, data); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
