package store

import (
	"context"
	"fmt"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/sql"
	"github.com/fusionstore/fusion/internal/trace"
)

// This file is the coordinator side of scatter-gather batching: the query
// stages and multi-segment Gets plan their per-node sub-requests first, ship
// one KindBatch frame per node, and fall back per-op only for the
// sub-requests whose batched attempt failed. On a small-chunk scan this
// collapses one round trip per chunk into one per node per stage.

// batchCall dispatches subs to one node as scatter-gather frames (chunked at
// rpc.MaxBatchOps) and returns index-aligned sub-responses. A transport or
// outer application error fails the whole call — callers treat that as "all
// subs failed" and fall back per-op. When st is non-nil the call accounts
// one simulated operation per frame (the whole point: one RPC overhead and
// one round trip amortized over every sub-request in the frame).
func (s *Store) batchCall(ctx context.Context, st *execState, sp *trace.Span, node int, subs []rpc.Request) ([]rpc.Response, error) {
	out := make([]rpc.Response, 0, len(subs))
	for start := 0; start < len(subs); start += rpc.MaxBatchOps {
		end := min(start+rpc.MaxBatchOps, len(subs))
		req := &rpc.Request{Kind: rpc.KindBatch, Subs: subs[start:end]}
		resp, err := s.callChecked(ctx, sp, node, req)
		if err != nil {
			return nil, err
		}
		if len(resp.Subs) != end-start {
			return nil, fmt.Errorf("store: batch to node %d returned %d sub-responses, want %d",
				node, len(resp.Subs), end-start)
		}
		if st != nil {
			st.mu.Lock()
			st.stats.BatchRPCs++
			st.mu.Unlock()
			st.addOp(simnet.OpCost{
				Node:      node,
				ReqBytes:  req.WireSize(),
				RespBytes: resp.WireSize(),
				DiskBytes: resp.Cost.DiskBytes,
				ProcBytes: resp.Cost.ProcBytes,
			})
		}
		out = append(out, resp.Subs...)
	}
	return out, nil
}

// chunkLocation resolves the node hosting chunk (rg, ci) under FAC layout
// and builds its wire reference. ok is false when the chunk has no item
// (non-FAC objects, or footer regions).
func chunkLocation(meta *ObjectMeta, rg, ci int, ch lpq.ChunkMeta) (node int, ref rpc.ChunkRef, ok bool) {
	itemIdx := meta.ChunkItemIndex(rg, ci)
	if itemIdx < 0 {
		return 0, rpc.ChunkRef{}, false
	}
	loc := meta.ItemLocs[itemIdx]
	stripe := meta.Stripes[loc.Stripe]
	return stripe.Nodes[loc.Bin], rpc.ChunkRef{
		BlockID: stripe.BlockIDs[loc.Bin],
		Offset:  loc.BinOffset,
		Type:    meta.Footer.Columns[ci].Type,
		Meta:    ch,
	}, true
}

// pushProjection applies the projection pushdown policy (the Cost Equation
// under PushdownAdaptive, §4.3) to one chunk.
func (s *Store) pushProjection(meta *ObjectMeta, ch lpq.ChunkMeta, sel float64) bool {
	if s.opts.Exec != ExecPushdown || meta.Mode != LayoutFAC {
		return false
	}
	switch s.opts.Pushdown {
	case PushdownAlways:
		return true
	case PushdownNever:
		return false
	default:
		return sel*ch.Compressibility() < 1
	}
}

// exprLeaves collects a predicate tree's comparison leaves in evaluation
// order. EvalExpr visits every leaf unconditionally (no short-circuiting),
// so pre-dispatching all of them never does speculative work.
func exprLeaves(e sql.Expr, out []*sql.Compare) []*sql.Compare {
	switch node := e.(type) {
	case *sql.Compare:
		return append(out, node)
	case *sql.Binary:
		return exprLeaves(node.R, exprLeaves(node.L, out))
	case *sql.Not:
		return exprLeaves(node.E, out)
	}
	return out
}

// filterStageBatched computes every row group's selection bitmap with the
// stage's leaf pushdowns planned globally: ONE scatter-gather frame per node
// covering every (row group, leaf) pair that node hosts — sub-ops carry the
// row-group id in Request.RG — instead of one frame per node per row group.
// The planner's shortcuts are applied first and never touch the network:
// whole row groups pruned (or accepted) by the footer-stats verdict, then
// per-leaf chunk-stats verdicts. Leaves whose batched filter failed (node
// down, corrupt chunk, lost frame) fall back to fetching the chunk during
// consolidation, exactly like the per-op path.
func (s *Store) filterStageBatched(st *execState, q *sql.Query, colIdx map[string]int) (map[int]*bitmap.Bitmap, error) {
	meta := st.meta
	rgs := meta.Footer.RowGroups
	leaves := exprLeaves(q.Where, nil)
	type rgState struct {
		pruned bool // footer stats prove no row matches
		full   bool // footer stats prove every row matches
		pre    map[*sql.Compare]*bitmap.Bitmap
	}
	states := make([]rgState, len(rgs))
	type leafRef struct {
		rg  int
		cmp *sql.Compare
		ch  lpq.ChunkMeta
	}
	type nodeGroup struct {
		node  int
		subs  []rpc.Request
		leafs []leafRef
		bms   []*bitmap.Bitmap // filled by this node's dispatch task
	}
	groups := make(map[int]*nodeGroup)
	var order []*nodeGroup
	for rg := range rgs {
		rs := &states[rg]
		switch rgVerdict(q.Where, meta.Footer, colIdx, rg) {
		case sql.StatsNone:
			rs.pruned = true
			continue
		case sql.StatsAll:
			rs.full = true
			continue
		}
		rs.pre = make(map[*sql.Compare]*bitmap.Bitmap, len(leaves))
		nRows := rgs[rg].NumRows
		for _, c := range leaves {
			ci := colIdx[c.Column]
			ch := rgs[rg].Chunks[ci]
			colType := meta.Footer.Columns[ci].Type
			// Chunk-level stats shortcut (no I/O at all), same as the per-op
			// path.
			switch sql.CheckStats(c, colType, ch.Stats) {
			case sql.StatsNone:
				rs.pre[c] = bitmap.New(nRows)
				continue
			case sql.StatsAll:
				rs.pre[c] = bitmap.NewFull(nRows)
				continue
			}
			node, ref, ok := chunkLocation(meta, rg, ci, ch)
			if !ok {
				continue // no item: the fallback closure fetches locally
			}
			g := groups[node]
			if g == nil {
				g = &nodeGroup{node: node}
				groups[node] = g
				order = append(order, g)
			}
			g.subs = append(g.subs, rpc.Request{
				Kind: rpc.KindFilter, Chunk: ref, Op: c.Op, Value: c.Value, RG: int32(rg),
			})
			g.leafs = append(g.leafs, leafRef{rg: rg, cmp: c, ch: ch})
		}
	}
	// Ship the stage: the per-node frames go out concurrently, each task
	// accounting into a forked state; forks are joined in node-first-
	// appearance order so the cost sheets stay deterministic. Each task
	// writes only its own group's bms slice — the shared pre maps are
	// filled sequentially below.
	forks := make([]*execState, len(order))
	runTasks(s.queryWorkers(), len(order), func(i int) {
		g := order[i]
		sub := st.fork()
		forks[i] = sub
		if sub.ctx.Err() != nil {
			return // cancelled: leaves fall back (and consolidation re-checks)
		}
		resps, err := s.batchCall(sub.ctx, sub, sub.sp, g.node, g.subs)
		if err != nil {
			return // whole frame lost: every leaf on this node falls back
		}
		g.bms = make([]*bitmap.Bitmap, len(g.leafs))
		for j, lr := range g.leafs {
			if resps[j].Err != "" {
				continue
			}
			bm, err := bitmap.Unmarshal(resps[j].Data)
			if err != nil || bm.Len() != rgs[lr.rg].NumRows {
				continue
			}
			// The filter logically touched the chunk but only the bitmap
			// crossed the network.
			sub.sp.Count(trace.BytesRequested, lr.ch.Size)
			sub.stats.FilterRPCs++
			g.bms[j] = bm
		}
	})
	for i, sub := range forks {
		if sub != nil {
			st.join(sub)
		}
		g := order[i]
		if g.bms == nil {
			continue
		}
		for j, lr := range g.leafs {
			if g.bms[j] != nil {
				states[lr.rg].pre[lr.cmp] = g.bms[j]
			}
		}
	}
	// Consolidate per row group on the worker pool (the fallback path
	// fetches chunks, so this can do real I/O), forked and joined in
	// row-group order exactly like the per-op filterStage.
	type rgResult struct {
		bm  *bitmap.Bitmap
		sub *execState
		err error
	}
	results := make([]rgResult, len(rgs))
	runTasks(s.queryWorkers(), len(rgs), func(rg int) {
		r := &results[rg]
		rs := &states[rg]
		if rs.pruned {
			return
		}
		nRows := rgs[rg].NumRows
		if rs.full {
			r.bm = bitmap.NewFull(nRows)
			return
		}
		// Row-group boundary is the consolidation's cancellation checkpoint.
		if err := st.ctx.Err(); err != nil {
			r.err = err
			return
		}
		r.sub = st.fork()
		leaf := func(c *sql.Compare) (*bitmap.Bitmap, error) {
			if bm, ok := rs.pre[c]; ok {
				return bm, nil
			}
			ci := colIdx[c.Column]
			col, err := s.fetchChunkColumn(r.sub, rg, ci)
			if err != nil {
				return nil, err
			}
			r.sub.chargeCoordCPU(rgs[rg].Chunks[ci].RawSize)
			return sql.EvalCompare(c, col)
		}
		bm, err := sql.EvalExpr(q.Where, nRows, leaf)
		if err != nil {
			r.err = err
			return
		}
		if bm.Count() > 0 {
			r.bm = bm // else leave nil: empty after exact filtering
		}
	})
	out := make(map[int]*bitmap.Bitmap, len(rgs))
	for rg := range results {
		r := &results[rg]
		if r.sub != nil {
			st.join(r.sub)
		}
		if r.err != nil {
			return nil, r.err
		}
		if states[rg].pruned {
			st.stats.PrunedRowGroups++
		}
		out[rg] = r.bm
	}
	return out, nil
}

// chunkTask is one unit of projection-stage work: materializing (or in-situ
// aggregating) the selected rows of one chunk. pre carries the chunk's
// sub-response from the scatter-gather pre-dispatch; nil means the task runs
// (or falls back) per-op.
type chunkTask struct {
	rg      int
	name    string
	agg     bool
	sub     *execState
	vals    lpq.ColumnData
	partial *sql.AggState
	err     error
	pre     *rpc.Response
}

// predispatchChunkTasks ships the projection stage's pushdown work as one
// scatter-gather frame per node (concurrently across nodes) and attaches
// each successful sub-response to its task. Tasks whose chunk is not pushed
// down — or whose sub-request failed — are left for the per-op workers.
// Group accounting is forked per node and joined in node-first-appearance
// order, keeping the cost sheets deterministic.
func (s *Store) predispatchChunkTasks(st *execState, colIdx map[string]int, rgBitmaps map[int]*bitmap.Bitmap, tasks []*chunkTask) {
	meta := st.meta
	type nodeGroup struct {
		node  int
		subs  []rpc.Request
		tasks []*chunkTask
		chs   []lpq.ChunkMeta
	}
	groups := make(map[int]*nodeGroup)
	var order []*nodeGroup
	for _, t := range tasks {
		ci := colIdx[t.name]
		ch := meta.Footer.RowGroups[t.rg].Chunks[ci]
		bm := rgBitmaps[t.rg]
		node, ref, ok := chunkLocation(meta, t.rg, ci, ch)
		if !ok {
			continue
		}
		var req rpc.Request
		if t.agg {
			// Aggregate-only tasks exist only when aggregate pushdown is on.
			req = rpc.Request{Kind: rpc.KindAggregate, Chunk: ref, Bitmap: bm.Marshal()}
		} else {
			if !s.pushProjection(meta, ch, bm.Selectivity()) {
				continue
			}
			req = rpc.Request{Kind: rpc.KindProject, Chunk: ref, Bitmap: bm.Marshal()}
		}
		g := groups[node]
		if g == nil {
			g = &nodeGroup{node: node}
			groups[node] = g
			order = append(order, g)
		}
		g.subs = append(g.subs, req)
		g.tasks = append(g.tasks, t)
		g.chs = append(g.chs, ch)
	}
	forks := make([]*execState, len(order))
	runTasks(s.queryWorkers(), len(order), func(i int) {
		g := order[i]
		sub := st.fork()
		forks[i] = sub
		resps, err := s.batchCall(sub.ctx, sub, sub.sp, g.node, g.subs)
		if err != nil {
			return // every task in the group falls back per-op
		}
		for j, t := range g.tasks {
			if resps[j].Err != "" {
				continue
			}
			t.pre = &resps[j]
			sub.sp.Count(trace.BytesRequested, g.chs[j].Size)
			if t.agg {
				sub.stats.AggregateRPCs++
			} else {
				sub.stats.ProjectRPCs++
			}
		}
	})
	for _, sub := range forks {
		if sub != nil {
			st.join(sub)
		}
	}
}

// blockKey identifies one data block of an object: (stripe, bin).
type blockKey struct{ stripe, bin int }

// prefetchWholeBlocks batch-fetches the whole blocks a Get needs, one
// scatter-gather frame per node holding two or more of them. Cached blocks
// are served directly; fetched blocks are verified against the stripe
// checksums exactly like a direct read and admitted to the cache. A block
// absent from the returned map (failed frame, failed sub-read, checksum
// mismatch) is left to readSegments' per-op path, which retries and falls
// into RS reconstruction.
func (s *Store) prefetchWholeBlocks(ctx context.Context, sp *trace.Span, meta *ObjectMeta, need []blockKey) map[blockKey][]byte {
	whole := make(map[blockKey][]byte, len(need))
	type nodeGroup struct {
		subs []rpc.Request
		keys []blockKey
	}
	groups := make(map[int]*nodeGroup)
	var order []int
	for _, key := range need {
		if s.cacheOn() {
			if v, ok := s.cache.Get(blockKeyOf(meta, key.stripe, key.bin)); ok {
				sp.Count(trace.CacheHits, 1)
				whole[key] = v.([]byte)
				continue
			}
		}
		st := meta.Stripes[key.stripe]
		verify := !s.opts.SkipChecksumVerify && key.bin < len(st.Checksums)
		node := st.Nodes[key.bin]
		g := groups[node]
		if g == nil {
			g = &nodeGroup{}
			groups[node] = g
			order = append(order, node)
		}
		g.subs = append(g.subs, rpc.Request{
			Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[key.bin], CallerVerifies: verify,
		})
		g.keys = append(g.keys, key)
	}
	for _, node := range order {
		g := groups[node]
		if len(g.subs) < 2 {
			continue // a lone read gains nothing from batch framing
		}
		resps, err := s.batchCall(ctx, nil, sp, node, g.subs)
		if err != nil {
			continue
		}
		for j, key := range g.keys {
			data, ok := s.verifyBlockReply(sp, meta, key.stripe, key.bin, &resps[j])
			if !ok {
				continue
			}
			whole[key] = data
			s.cacheFillBlock(meta, key.stripe, key.bin, data)
		}
	}
	return whole
}

// verifyBlockReply applies the whole-block end-to-end verification (see
// fetchWholeBlock) to one batched sub-response: a node-side error, a stripe
// checksum mismatch, or — for legacy stripes without recorded checksums — a
// reply CRC mismatch each count a checksum failure where applicable, enqueue
// the block for repair, and reject the reply.
func (s *Store) verifyBlockReply(sp *trace.Span, meta *ObjectMeta, stripe, bin int, resp *rpc.Response) ([]byte, bool) {
	st := meta.Stripes[stripe]
	verify := !s.opts.SkipChecksumVerify && bin < len(st.Checksums)
	repair := func() {
		sp.Count(trace.ChecksumFailures, 1)
		s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: stripe, Block: bin})
	}
	switch {
	case resp.Err != "":
		if cluster.IsChecksumErr(resp.Err) {
			repair()
		}
		return nil, false
	case verify && cluster.Checksum(resp.Data) != st.Checksums[bin]:
		repair()
		return nil, false
	case !verify && !s.opts.SkipChecksumVerify && cluster.Checksum(resp.Data) != resp.Crc:
		repair()
		return nil, false
	}
	return resp.Data, true
}
