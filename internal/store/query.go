package store

import (
	"context"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/sql"
	"github.com/fusionstore/fusion/internal/trace"
)

// Result is a query's output: filtered column values for plain projections
// and/or aggregate values, plus execution statistics.
type Result struct {
	// Columns and Data are the result table. For an ungrouped query they
	// hold the plain (non-aggregate) projections; for a GROUP BY query they
	// hold one column per SELECT item — group keys and per-group aggregate
	// values alike — with one row per group.
	Columns []string
	Data    []lpq.ColumnData
	// AggLabels and AggValues are the scalar aggregate projections of an
	// ungrouped query (empty for GROUP BY queries, whose aggregates are
	// per-group columns in Data).
	AggLabels []string
	AggValues []sql.Literal
	// Rows is the number of rows selected by the WHERE clause (capped by
	// LIMIT); for a GROUP BY query it is the number of returned groups.
	Rows int
	// Stats describes how the query executed.
	Stats QueryStats
}

// QueryStats reports a query's execution profile.
type QueryStats struct {
	// Wall is the measured wall-clock time.
	Wall time.Duration
	// Sim is the simulated latency sample (zero when no cost model is
	// configured).
	Sim metrics.LatencySample
	// TrafficBytes is the network traffic this query generated.
	TrafficBytes uint64
	// FilterRPCs, ProjectRPCs, AggregateRPCs and FetchRPCs count remote
	// operations.
	FilterRPCs, ProjectRPCs, AggregateRPCs, FetchRPCs int
	// BatchRPCs counts the scatter-gather frames that carried the batched
	// share of those operations — each frame is one network round trip, so
	// FilterRPCs+ProjectRPCs+AggregateRPCs-sized work arriving in few
	// BatchRPCs is the batching win.
	BatchRPCs int
	// GroupAggRPCs and TopKRPCs count grouped-aggregation and top-k
	// pushdown operations (each reduces a whole row group in situ).
	GroupAggRPCs, TopKRPCs int
	// PartialGroups counts the per-group partial states received from nodes
	// — the wire payload the stats-driven planner weighed against shipping
	// the raw chunks.
	PartialGroups int
	// GroupSpills counts row groups whose grouped pushdown was abandoned —
	// the planner predicted the partial states would outweigh the chunks,
	// or the node hit its cardinality cap — and fell back to
	// coordinator-side grouping.
	GroupSpills int
	// PushdownOn/PushdownOff count the cost model's per-chunk decisions.
	PushdownOn, PushdownOff int
	// PrunedRowGroups counts row groups skipped via footer statistics
	// (filter-stage min/max pruning and top-k bound pruning).
	PrunedRowGroups int
	// Selectivity is the measured fraction of rows selected.
	Selectivity float64
}

// execState accumulates per-stage operation costs during one query. The
// stage fan-out gives every concurrent task a forked child state and joins
// the children back in deterministic row-group/chunk order, so the merged
// stats and cost sheets — and therefore the simulated latency sample — are
// byte-identical to a serial run. The mutex additionally makes direct
// concurrent accounting on a shared state safe.
type execState struct {
	store *Store
	ctx   context.Context // caller's context; fan-out tasks observe it
	meta  *ObjectMeta
	coord int
	nowSt int         // current stage index
	sp    *trace.Span // current stage's trace span (nil when untraced)

	mu    sync.Mutex
	stats QueryStats
	stage [2][]simnet.OpCost
}

func (e *execState) addOp(op simnet.OpCost) {
	e.mu.Lock()
	e.stage[e.nowSt] = append(e.stage[e.nowSt], op)
	if !op.Local {
		e.stats.TrafficBytes += op.ReqBytes + op.RespBytes
	}
	e.mu.Unlock()
}

// fork returns a child state for one fan-out task. Children are owned by a
// single worker goroutine and carry the parent's stage index and span (the
// span itself is concurrency-safe, so tasks account into it directly).
func (e *execState) fork() *execState {
	return &execState{store: e.store, ctx: e.ctx, meta: e.meta, coord: e.coord, nowSt: e.nowSt, sp: e.sp}
}

// join folds a child's accounting back into e. Callers join children in
// task order, which keeps the cost-sheet op order — and with it the jitter
// draws of the latency model — independent of worker scheduling.
func (e *execState) join(c *execState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.stage {
		e.stage[i] = append(e.stage[i], c.stage[i]...)
	}
	s, cs := &e.stats, &c.stats
	s.TrafficBytes += cs.TrafficBytes
	s.FilterRPCs += cs.FilterRPCs
	s.ProjectRPCs += cs.ProjectRPCs
	s.AggregateRPCs += cs.AggregateRPCs
	s.FetchRPCs += cs.FetchRPCs
	s.BatchRPCs += cs.BatchRPCs
	s.GroupAggRPCs += cs.GroupAggRPCs
	s.TopKRPCs += cs.TopKRPCs
	s.PartialGroups += cs.PartialGroups
	s.GroupSpills += cs.GroupSpills
	s.PushdownOn += cs.PushdownOn
	s.PushdownOff += cs.PushdownOff
	s.PrunedRowGroups += cs.PrunedRowGroups
}

// chargeCoordCPU adds coordinator-side processing to the cluster's CPU
// accounting when the transport supports it (simnet).
func (e *execState) chargeCoordCPU(procBytes uint64) {
	acc, ok := e.store.client.(interface{ AddCPU(int, float64) })
	if !ok {
		return
	}
	rate := 6.0e9 // matches simnet.DefaultConfig().ProcessRate
	if m := e.store.opts.Model; m != nil {
		rate = m.ProcessRate()
	}
	acc.AddCPU(e.coord, float64(procBytes)/rate)
}

// Query parses and executes a SELECT statement; the FROM clause names the
// object. Execution follows §4.3/§5: a filter stage that pushes comparisons
// to the nodes hosting the relevant column chunks (after footer-based row
// group pruning), bitmap consolidation at the coordinator, then a
// projection stage with per-chunk cost-based pushdown. Under the baseline
// configuration the needed chunks are instead fetched (and reassembled
// across nodes when split) and processed at the coordinator.
func (s *Store) Query(query string) (*Result, error) {
	return s.QueryContext(context.Background(), query)
}

// QueryContext is Query under a (possibly traced) context. The span tree
// records the filter and projection stages, per-chunk block RPCs, pushdown
// replies, reconstructions and local decodes, plus the bytes-requested vs
// bytes-from-nodes counters behind the read-amplification figure — for a
// pushdown query the amplification drops below 1, which is the paper's
// headline effect.
func (s *Store) QueryContext(ctx context.Context, query string) (*Result, error) {
	qsp := trace.FromContext(ctx).Child("store.Query")
	defer qsp.End()
	release, err := s.admit(ctx, qsp, sched.ClassScan)
	if err != nil {
		return nil, err
	}
	defer release()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("Query"), time.Since(start))
		}(time.Now())
	}
	start := time.Now()
	q, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	msp := qsp.Child("meta")
	meta, err := s.Meta(q.Table)
	msp.End()
	if err != nil {
		return nil, err
	}
	res, err := s.runQuery(ctx, qsp, q, meta, start)
	if err != nil {
		// A cancelled or expired caller must not burn a second full pass —
		// the retry below exists for concurrent overwrites, not deadlines.
		if ctx.Err() != nil {
			return nil, err
		}
		// A concurrent overwrite can garbage-collect the blocks this
		// metadata snapshot points at mid-query. Re-resolve against the
		// quorum and retry once iff the object moved to a newer epoch.
		if fresh := s.refreshedMeta(q.Table, meta); fresh != nil {
			return s.runQuery(ctx, qsp, q, fresh, start)
		}
	}
	return res, err
}

// runQuery executes a parsed query against one specific metadata snapshot.
// The parsed query is copied first: star expansion appends to Projections,
// and a retry against fresh metadata must start from the original SELECT
// list, not one already expanded.
func (s *Store) runQuery(ctx context.Context, qsp *trace.Span, orig *sql.Query, meta *ObjectMeta, start time.Time) (*Result, error) {
	qc := *orig
	qc.Projections = append([]sql.Projection(nil), orig.Projections...)
	q := &qc
	st := &execState{store: s, ctx: ctx, meta: meta, coord: s.CoordinatorFor(q.Table), sp: qsp}

	// Resolve the SELECT list.
	if q.Star {
		for _, c := range meta.Footer.Columns {
			q.Projections = append(q.Projections, sql.Projection{Column: c.Name})
		}
	}
	colIdx := make(map[string]int, len(meta.Footer.Columns))
	for i, c := range meta.Footer.Columns {
		colIdx[c.Name] = i
	}
	check := func(names []string) error {
		for _, n := range names {
			if _, ok := colIdx[n]; !ok {
				return fmt.Errorf("store: unknown column %q in object %q", n, q.Table)
			}
		}
		return nil
	}
	if err := check(q.FilterColumns()); err != nil {
		return nil, err
	}
	if err := check(q.ProjectionColumns()); err != nil {
		return nil, err
	}
	if err := check(q.GroupBy); err != nil {
		return nil, err
	}
	if err := check(q.OrderColumns()); err != nil {
		return nil, err
	}

	// Stage 1: filter. Produces one bitmap per surviving row group.
	st.nowSt = 0
	st.sp = qsp.Child("filter")
	rgBitmaps, err := s.filterStage(st, q, colIdx)
	st.sp.End()
	if err != nil {
		return nil, err
	}
	selected := 0
	for _, bm := range rgBitmaps {
		if bm != nil {
			selected += bm.Count()
		}
	}
	// Pruned row groups still count toward total rows.
	st.stats.Selectivity = measuredSelectivity(selected, meta.Footer.NumRows())

	// Stage boundary: a caller that gave up during the filter stage must not
	// pay for (or inflict on the cluster) the projection stage.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: projection — or grouped aggregation, which produces its own
	// result table (one row per group) and applies ORDER BY/LIMIT itself.
	st.nowSt = 1
	var res *Result
	if len(q.GroupBy) > 0 {
		st.sp = qsp.Child("group")
		res, err = s.groupByStage(st, q, colIdx, rgBitmaps)
		st.sp.End()
		if err != nil {
			return nil, err
		}
	} else {
		st.sp = qsp.Child("project")
		res, err = s.orderedProjection(st, q, colIdx, rgBitmaps)
		st.sp.End()
		if err != nil {
			return nil, err
		}
		res.Rows = selected
		if q.HasLimit {
			truncateResult(res, q.Limit)
		}
	}
	st.stats.Wall = time.Since(start)
	if m := s.opts.Model; m != nil {
		t1, b1 := m.StageTime(st.stage[0])
		t2, b2 := m.StageTime(st.stage[1])
		b1.Add(b2)
		// Client leg: the query arrives at and its result leaves the
		// coordinator over the network (the paper's dedicated client node,
		// §6), so every query pays at least one RTT plus the result
		// transfer.
		client := m.ClientLeg(resultWireBytes(res))
		b1.Network += client
		st.stats.Sim = metrics.LatencySample{Total: t1 + t2 + client, Phase: b1}
	}
	res.Stats = st.stats
	return res, nil
}

// measuredSelectivity is the fraction of an object's rows a query's filter
// selected. A zero-row object (or a fully-pruned query over one) reports 0
// — never NaN — so downstream consumers (the adaptive pushdown cost model,
// stats JSON, dashboards averaging selectivities) see a well-defined value.
func measuredSelectivity(selected, total int) float64 {
	if total <= 0 {
		return 0
	}
	return float64(selected) / float64(total)
}

// rgVerdict folds chunk statistics through the predicate tree, yielding a
// tri-state verdict for a whole row group.
func rgVerdict(e sql.Expr, footer *lpq.Footer, colIdx map[string]int, rg int) sql.StatsVerdict {
	switch node := e.(type) {
	case *sql.Compare:
		ci := colIdx[node.Column]
		ch := footer.RowGroups[rg].Chunks[ci]
		return sql.CheckStats(node, footer.Columns[ci].Type, ch.Stats)
	case *sql.Binary:
		l := rgVerdict(node.L, footer, colIdx, rg)
		r := rgVerdict(node.R, footer, colIdx, rg)
		if node.Op == sql.OpAnd {
			if l == sql.StatsNone || r == sql.StatsNone {
				return sql.StatsNone
			}
			if l == sql.StatsAll && r == sql.StatsAll {
				return sql.StatsAll
			}
			return sql.StatsUnknown
		}
		if l == sql.StatsAll || r == sql.StatsAll {
			return sql.StatsAll
		}
		if l == sql.StatsNone && r == sql.StatsNone {
			return sql.StatsNone
		}
		return sql.StatsUnknown
	case *sql.Not:
		switch rgVerdict(node.E, footer, colIdx, rg) {
		case sql.StatsAll:
			return sql.StatsNone
		case sql.StatsNone:
			return sql.StatsAll
		default:
			return sql.StatsUnknown
		}
	default:
		return sql.StatsUnknown
	}
}

// filterStage computes the selection bitmap of every row group. A nil entry
// means the row group was pruned (provably empty). Row groups are filtered
// concurrently on a bounded worker pool; each task accounts into a forked
// execState and the children are joined in row-group order, so the stage's
// output and cost sheet match a serial run exactly.
func (s *Store) filterStage(st *execState, q *sql.Query, colIdx map[string]int) (map[int]*bitmap.Bitmap, error) {
	meta := st.meta
	// Batched pushdown plans the whole stage at once: one scatter-gather
	// frame per node covering every row group's surviving leaves, cutting
	// filter round trips from O(rowGroups×nodes) to O(nodes).
	if q.Where != nil && s.batchOn() && s.opts.Exec == ExecPushdown && meta.Mode == LayoutFAC {
		return s.filterStageBatched(st, q, colIdx)
	}
	rgs := meta.Footer.RowGroups
	type rgResult struct {
		bm     *bitmap.Bitmap
		pruned bool
		sub    *execState
		err    error
	}
	results := make([]rgResult, len(rgs))
	runTasks(s.queryWorkers(), len(rgs), func(rg int) {
		r := &results[rg]
		// Row-group boundary is the filter stage's cancellation checkpoint:
		// once the caller gives up, the remaining row groups do no work.
		if err := st.ctx.Err(); err != nil {
			r.err = err
			return
		}
		if q.Where == nil {
			r.bm = bitmap.NewFull(rgs[rg].NumRows)
			return
		}
		switch rgVerdict(q.Where, meta.Footer, colIdx, rg) {
		case sql.StatsNone:
			r.pruned = true
			return
		case sql.StatsAll:
			r.bm = bitmap.NewFull(rgs[rg].NumRows)
			return
		}
		r.sub = st.fork()
		bm, err := s.rowGroupFilter(r.sub, q, colIdx, rg)
		if err != nil {
			r.err = err
			return
		}
		if bm.Count() > 0 {
			r.bm = bm // else leave nil: empty after exact filtering
		}
	})
	out := make(map[int]*bitmap.Bitmap, len(rgs))
	for rg := range results {
		r := &results[rg]
		if r.sub != nil {
			st.join(r.sub)
		}
		if r.err != nil {
			return nil, r.err
		}
		if r.pruned {
			st.stats.PrunedRowGroups++
		}
		out[rg] = r.bm
	}
	return out, nil
}

// rowGroupFilter evaluates the WHERE tree for one row group, pushing each
// leaf comparison to the node hosting its column chunk when possible. (The
// batched pushdown path never reaches here — filterStage plans the whole
// stage as per-node frames in filterStageBatched instead.)
func (s *Store) rowGroupFilter(st *execState, q *sql.Query, colIdx map[string]int, rg int) (*bitmap.Bitmap, error) {
	meta := st.meta
	rgMeta := meta.Footer.RowGroups[rg]
	nRows := rgMeta.NumRows
	leaf := func(c *sql.Compare) (*bitmap.Bitmap, error) {
		ci := colIdx[c.Column]
		ch := rgMeta.Chunks[ci]
		colType := meta.Footer.Columns[ci].Type
		// Chunk-level stats shortcut (no I/O at all).
		switch sql.CheckStats(c, colType, ch.Stats) {
		case sql.StatsNone:
			return bitmap.New(nRows), nil
		case sql.StatsAll:
			return bitmap.NewFull(nRows), nil
		}
		if s.opts.Exec == ExecPushdown && meta.Mode == LayoutFAC {
			bm, err := s.pushdownFilter(st, c, colType, rg, ci, ch)
			if err == nil {
				return bm, nil
			}
			// Pushdown failed (e.g. node down): fall through to fetching.
		}
		col, err := s.fetchChunkColumn(st, rg, ci)
		if err != nil {
			return nil, err
		}
		st.chargeCoordCPU(ch.RawSize)
		return sql.EvalCompare(c, col)
	}
	return sql.EvalExpr(q.Where, nRows, leaf)
}

// pushdownFilter sends one comparison to the node hosting the chunk.
func (s *Store) pushdownFilter(st *execState, c *sql.Compare, colType lpq.Type, rg, ci int, ch lpq.ChunkMeta) (*bitmap.Bitmap, error) {
	meta := st.meta
	itemIdx := meta.ChunkItemIndex(rg, ci)
	if itemIdx < 0 {
		return nil, fmt.Errorf("store: chunk (%d,%d) has no item", rg, ci)
	}
	loc := meta.ItemLocs[itemIdx]
	stripe := meta.Stripes[loc.Stripe]
	node := stripe.Nodes[loc.Bin]
	req := &rpc.Request{
		Kind: rpc.KindFilter,
		Chunk: rpc.ChunkRef{
			BlockID: stripe.BlockIDs[loc.Bin],
			Offset:  loc.BinOffset,
			Type:    colType,
			Meta:    ch,
		},
		Op:    c.Op,
		Value: c.Value,
	}
	resp, err := s.callChecked(st.ctx, st.sp, node, req)
	if err != nil {
		return nil, err
	}
	// The filter logically touched the chunk but only the bitmap crossed
	// the network — this is what pulls query read amplification below 1.
	st.sp.Count(trace.BytesRequested, ch.Size)
	st.stats.FilterRPCs++
	st.addOp(simnet.OpCost{
		Node:      node,
		ReqBytes:  req.WireSize(),
		RespBytes: resp.WireSize(),
		DiskBytes: resp.Cost.DiskBytes,
		ProcBytes: resp.Cost.ProcBytes,
	})
	return bitmap.Unmarshal(resp.Data)
}

// fetchChunkColumn brings a chunk's bytes to the coordinator (reassembling
// across blocks/nodes when split) and decodes it locally. This is the
// baseline's only path and Fusion's fallback when the cost model disables
// pushdown. A checksum failure (bit rot on the hosting node) triggers a
// second fetch that reconstructs the chunk's blocks from stripe parity.
//
// With the cache enabled, decoded chunks are cached keyed by (object,
// epoch, row group, column): a repeated scan serves its columns straight
// from memory — no RPC, no decompression — and records zero
// bytes-from-nodes. DecodeChunk verifies the chunk's CRC, so only verified
// decodes are admitted. Concurrent fetches of one chunk are deduplicated
// by singleflight. Cached ColumnData is shared — callers must not mutate.
func (s *Store) fetchChunkColumn(st *execState, rg, ci int) (lpq.ColumnData, error) {
	if !s.cacheOn() {
		return s.fetchChunkColumnUncached(st, rg, ci)
	}
	key := chunkKeyOf(st.meta, rg, ci)
	ch := st.meta.Footer.RowGroups[rg].Chunks[ci]
	if v, ok := s.cache.Get(key); ok {
		st.sp.Count(trace.BytesRequested, ch.Size)
		st.sp.Count(trace.CacheHits, 1)
		return v.(lpq.ColumnData), nil
	}
	flightKey := fmt.Sprintf("c/%s/e%d/%d/%d", st.meta.Name, st.meta.Epoch, rg, ci)
	v, err, _ := s.cache.Do(flightKey, func() (any, error) {
		col, err := s.fetchChunkColumnUncached(st, rg, ci)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, col, ch.RawSize)
		return col, nil
	})
	if err != nil {
		return lpq.ColumnData{}, err
	}
	return v.(lpq.ColumnData), nil
}

// fetchChunkColumnUncached is the actual fetch+decode of one chunk.
func (s *Store) fetchChunkColumnUncached(st *execState, rg, ci int) (lpq.ColumnData, error) {
	raw, err := s.fetchChunkBytes(st, rg, ci)
	if err != nil {
		return lpq.ColumnData{}, err
	}
	meta := st.meta
	ch := meta.Footer.RowGroups[rg].Chunks[ci]
	st.addOp(simnet.OpCost{Local: true, ProcBytes: ch.RawSize})
	dsp := st.sp.Child("decode")
	col, err := lpq.DecodeChunk(meta.Footer.Columns[ci].Type, ch, raw)
	dsp.End()
	if err == nil {
		return col, nil
	}
	// Corrupt on-disk copy: rebuild from the stripe's survivors.
	raw, rerr := s.reconstructChunkBytes(st, rg, ci)
	if rerr != nil {
		return lpq.ColumnData{}, fmt.Errorf("store: chunk (%d,%d) corrupt (%v) and unreconstructable: %w", rg, ci, err, rerr)
	}
	st.addOp(simnet.OpCost{Local: true, ProcBytes: ch.RawSize})
	return lpq.DecodeChunk(meta.Footer.Columns[ci].Type, ch, raw)
}

// reconstructChunkBytes rebuilds a chunk's bytes via RS reconstruction,
// bypassing the (possibly corrupt) stored copies of the blocks that hold it.
func (s *Store) reconstructChunkBytes(st *execState, rg, ci int) ([]byte, error) {
	meta := st.meta
	ch := meta.Footer.RowGroups[rg].Chunks[ci]
	if meta.Mode == LayoutFAC {
		itemIdx := meta.ChunkItemIndex(rg, ci)
		loc := meta.ItemLocs[itemIdx]
		block, err := s.reconstructBlock(st.ctx, st.sp, meta, loc.Stripe, loc.Bin)
		if err != nil {
			return nil, err
		}
		if loc.BinOffset+ch.Size > uint64(len(block)) {
			return nil, fmt.Errorf("store: reconstructed block too short")
		}
		s.accountReconstruct(st, meta, loc.Stripe)
		return block[loc.BinOffset : loc.BinOffset+ch.Size], nil
	}
	// Fixed layout: the chunk spans blocks, and the chunk-level CRC cannot
	// say which stored block carries the corruption. Rebuilding a block via
	// RS with a silently-corrupt sibling as a source would itself produce
	// garbage, so each covering block is treated as the suspect in turn:
	// only it is rebuilt from the stripe's other blocks, the rest are used
	// as stored, and the first assembly whose chunk CRC verifies wins.
	bs := meta.BlockSize
	k := uint64(s.opts.Params.K)
	type span struct {
		stripe, bin int
		within, n   uint64
	}
	var spans []span
	end := ch.Offset + ch.Size
	for pos := ch.Offset; pos < end; {
		blockIdx := pos / bs
		within := pos - blockIdx*bs
		n := min(bs-within, end-pos)
		spans = append(spans, span{
			stripe: int(blockIdx / k),
			bin:    int(blockIdx % k),
			within: within,
			n:      n,
		})
		pos += n
	}
	stored := make([][]byte, len(spans))
	for i, sp := range spans {
		sm := meta.Stripes[sp.stripe]
		resp, err := s.call(st.ctx, st.sp, sm.Nodes[sp.bin], &rpc.Request{
			Kind: rpc.KindGetBlock, BlockID: sm.BlockIDs[sp.bin],
		})
		if err == nil && resp.Err == "" {
			stored[i] = resp.Data
		}
	}
	for suspect := range spans {
		out := make([]byte, 0, ch.Size)
		ok := true
		for i, sp := range spans {
			var block []byte
			if i == suspect || stored[i] == nil {
				rebuilt, err := s.reconstructBlock(st.ctx, st.sp, meta, sp.stripe, sp.bin)
				if err != nil {
					ok = false
					break
				}
				s.accountReconstruct(st, meta, sp.stripe)
				block = rebuilt
			} else {
				block = stored[i]
			}
			if sp.within+sp.n > uint64(len(block)) {
				ok = false
				break
			}
			out = append(out, block[sp.within:sp.within+sp.n]...)
		}
		if !ok {
			continue
		}
		if crc32.ChecksumIEEE(out) == ch.CRC {
			return out, nil
		}
	}
	return nil, fmt.Errorf("store: chunk (%d,%d): no single-block repair restores its checksum", rg, ci)
}

// accountReconstruct charges the cost of reading a whole stripe for
// reconstruction (k blocks over the network).
func (s *Store) accountReconstruct(st *execState, meta *ObjectMeta, stripe int) {
	sm := meta.Stripes[stripe]
	for j := 0; j < s.opts.Params.K && j < len(sm.Nodes); j++ {
		st.addOp(simnet.OpCost{
			Node:      sm.Nodes[j],
			ReqBytes:  rpcOverhead,
			RespBytes: sm.Capacity + rpcOverhead,
			DiskBytes: sm.Capacity,
		})
	}
}

// fetchChunkBytes reads the chunk's on-disk bytes from wherever they live.
func (s *Store) fetchChunkBytes(st *execState, rg, ci int) ([]byte, error) {
	meta := st.meta
	ch := meta.Footer.RowGroups[rg].Chunks[ci]
	st.sp.Count(trace.BytesRequested, ch.Size)
	if meta.Mode == LayoutFAC {
		itemIdx := meta.ChunkItemIndex(rg, ci)
		loc := meta.ItemLocs[itemIdx]
		stripe := meta.Stripes[loc.Stripe]
		node := stripe.Nodes[loc.Bin]
		data, err := s.readStripeRange(st.ctx, st.sp, meta, loc.Stripe, loc.Bin, loc.BinOffset, ch.Size)
		if err != nil {
			return nil, err
		}
		st.stats.FetchRPCs++
		st.addOp(simnet.OpCost{
			Node:      node,
			ReqBytes:  rpcOverhead,
			RespBytes: uint64(len(data)) + rpcOverhead,
			DiskBytes: uint64(len(data)),
		})
		return data, nil
	}
	// Fixed layout: the chunk may span multiple blocks on multiple nodes
	// (§3.1) — the reassembly the paper identifies as the bottleneck.
	bs := meta.BlockSize
	k := uint64(s.opts.Params.K)
	out := make([]byte, 0, ch.Size)
	end := ch.Offset + ch.Size
	for pos := ch.Offset; pos < end; {
		blockIdx := pos / bs
		stripe := int(blockIdx / k)
		bin := int(blockIdx % k)
		within := pos - blockIdx*bs
		n := min(bs-within, end-pos)
		data, err := s.readStripeRange(st.ctx, st.sp, meta, stripe, bin, within, n)
		if err != nil {
			return nil, err
		}
		node := meta.Stripes[stripe].Nodes[bin]
		st.stats.FetchRPCs++
		st.addOp(simnet.OpCost{
			Node:      node,
			ReqBytes:  rpcOverhead,
			RespBytes: uint64(len(data)) + rpcOverhead,
			DiskBytes: uint64(len(data)),
		})
		out = append(out, data...)
		pos += n
	}
	return out, nil
}

const rpcOverhead = 64

// ChunkNodeSpan returns how many distinct nodes hold parts of chunk
// (rg, ci) — 1 under FAC; possibly several under fixed blocks (Fig. 12).
func (s *Store) ChunkNodeSpan(name string, rg, ci int) (int, error) {
	meta, err := s.Meta(name)
	if err != nil {
		return 0, err
	}
	ch := meta.Footer.RowGroups[rg].Chunks[ci]
	if meta.Mode == LayoutFAC {
		return 1, nil
	}
	bs := meta.BlockSize
	k := uint64(s.opts.Params.K)
	nodes := make(map[int]bool)
	end := ch.Offset + ch.Size
	if ch.Size == 0 {
		return 1, nil
	}
	for pos := ch.Offset; pos < end; {
		blockIdx := pos / bs
		stripe := int(blockIdx / k)
		bin := int(blockIdx % k)
		nodes[meta.Stripes[stripe].Nodes[bin]] = true
		next := (blockIdx + 1) * bs
		if next > end {
			next = end
		}
		pos = next
	}
	return len(nodes), nil
}

// projectionStage materializes the SELECT list over the filtered rows.
func (s *Store) projectionStage(st *execState, q *sql.Query, colIdx map[string]int, rgBitmaps map[int]*bitmap.Bitmap) (*Result, error) {
	meta := st.meta
	res := &Result{}

	// Plain projected columns (in SELECT order, deduplicated).
	plainCols := make([]string, 0, len(q.Projections))
	seen := map[string]bool{}
	for _, p := range q.Projections {
		if p.Agg == sql.AggNone && !seen[p.Column] {
			seen[p.Column] = true
			plainCols = append(plainCols, p.Column)
		}
	}
	// Aggregate accumulators.
	type aggWork struct {
		proj  sql.Projection
		state *sql.AggState
	}
	var aggs []aggWork
	for _, p := range q.Projections {
		if p.Agg != sql.AggNone {
			aggs = append(aggs, aggWork{proj: p, state: sql.NewAggState(p.Agg)})
		}
	}
	// Columns whose selected values must be materialized per row group.
	// Aggregate-only columns are excluded when aggregate pushdown applies:
	// their chunks are reduced in-situ instead.
	aggPush := s.opts.AggregatePushdown && s.opts.Exec == ExecPushdown && meta.Mode == LayoutFAC
	aggOnly := map[string]bool{}
	var aggOnlyCols []string // SELECT-list order, for deterministic execution
	needCols := append([]string(nil), plainCols...)
	for _, a := range aggs {
		if a.proj.Star || seen[a.proj.Column] {
			continue
		}
		if aggPush {
			if !aggOnly[a.proj.Column] {
				aggOnly[a.proj.Column] = true
				aggOnlyCols = append(aggOnlyCols, a.proj.Column)
			}
		} else {
			needCols = append(needCols, a.proj.Column)
		}
	}
	needCols = dedupStrings(needCols)

	colData := make(map[string]*lpq.ColumnData, len(needCols))
	for _, name := range needCols {
		ci := colIdx[name]
		colData[name] = &lpq.ColumnData{Type: meta.Footer.Columns[ci].Type}
	}

	// Fan the per-chunk work (projections and in-situ aggregations) out
	// across a bounded worker pool. Tasks are generated in row-group-major,
	// SELECT-list-minor order and merged back in exactly that order, so the
	// result — including float aggregate accumulation order and the cost
	// sheets feeding the latency model — is identical to a serial run.
	var tasks []*chunkTask
	for rg := range meta.Footer.RowGroups {
		bm := rgBitmaps[rg]
		if bm == nil || bm.Count() == 0 {
			continue
		}
		for _, name := range needCols {
			tasks = append(tasks, &chunkTask{rg: rg, name: name})
		}
		for _, name := range aggOnlyCols {
			tasks = append(tasks, &chunkTask{rg: rg, name: name, agg: true})
		}
	}
	if s.batchOn() && s.opts.Exec == ExecPushdown && meta.Mode == LayoutFAC {
		// Ship the stage's pushdown work as one scatter-gather frame per
		// node; workers below consume the attached sub-responses and only
		// fall back per-op for the chunks whose batched attempt failed.
		s.predispatchChunkTasks(st, colIdx, rgBitmaps, tasks)
	}
	runTasks(s.queryWorkers(), len(tasks), func(i int) {
		t := tasks[i]
		bm := rgBitmaps[t.rg]
		ci := colIdx[t.name]
		ch := meta.Footer.RowGroups[t.rg].Chunks[ci]
		t.sub = st.fork()
		if t.agg {
			t.partial, t.err = s.aggregateChunk(t.sub, t.rg, ci, ch, bm, t.pre)
		} else {
			t.vals, t.err = s.projectChunk(t.sub, t.rg, ci, ch, bm, bm.Selectivity(), t.pre)
		}
	})
	for _, t := range tasks {
		st.join(t.sub)
		if t.err != nil {
			return nil, t.err
		}
		if t.agg {
			for i := range aggs {
				if !aggs[i].proj.Star && aggs[i].proj.Column == t.name {
					aggs[i].state.Merge(t.partial)
				}
			}
			continue
		}
		if err := cluster.AppendColumn(colData[t.name], t.vals); err != nil {
			return nil, err
		}
		// Fold the aggregates over this chunk's selected values right here,
		// as a per-row-group partial merged in task order. This is the same
		// reduction shape as the pushdown branch above — one partial per
		// (row group, chunk), merged in row-group-major order — so float
		// accumulation is bit-identical no matter which mix of pushed,
		// fetched, and cached chunks served the query.
		for i := range aggs {
			if aggs[i].proj.Star || aggs[i].proj.Column != t.name {
				continue
			}
			part := sql.NewAggState(aggs[i].proj.Agg)
			part.AddColumn(t.vals, bitmap.NewFull(t.vals.Len()))
			aggs[i].state.Merge(part)
		}
	}
	for rg := range meta.Footer.RowGroups {
		bm := rgBitmaps[rg]
		if bm == nil || bm.Count() == 0 {
			continue
		}
		for i := range aggs {
			if aggs[i].proj.Star {
				aggs[i].state.AddCount(bm.Count())
			}
		}
	}
	for _, name := range plainCols {
		res.Columns = append(res.Columns, name)
		res.Data = append(res.Data, *colData[name])
	}
	for _, a := range aggs {
		res.AggLabels = append(res.AggLabels, a.proj.String())
		res.AggValues = append(res.AggValues, a.state.Result())
	}
	return res, nil
}

// projectChunk returns the selected values of one chunk, deciding per chunk
// whether to push the projection down or fetch the compressed chunk,
// according to the Cost Equation (§4.3): push down iff
// selectivity × compressibility < 1. pre, when non-nil, is the chunk's
// sub-response from the scatter-gather pre-dispatch (already a successful
// pushdown — only decoding remains).
func (s *Store) projectChunk(st *execState, rg, ci int, ch lpq.ChunkMeta, bm *bitmap.Bitmap, sel float64, pre *rpc.Response) (lpq.ColumnData, error) {
	meta := st.meta
	pushdownPossible := s.opts.Exec == ExecPushdown && meta.Mode == LayoutFAC
	push := s.pushProjection(meta, ch, sel)
	if push {
		if pre != nil {
			vals, err := cluster.DecodePlain(pre.Data)
			if err == nil {
				st.stats.PushdownOn++
				return vals, nil
			}
			// Malformed reply: fall through to fetching.
		} else if !s.batchOn() {
			vals, err := s.pushdownProject(st, rg, ci, ch, bm)
			if err == nil {
				st.stats.PushdownOn++
				return vals, nil
			}
			// Node down or similar: fall back to fetching.
		}
		// Batched pushdown whose sub-request failed lands here too: the
		// chunk fetch below is the per-op fallback.
	}
	if pushdownPossible {
		st.stats.PushdownOff++
	}
	col, err := s.fetchChunkColumn(st, rg, ci)
	if err != nil {
		return lpq.ColumnData{}, err
	}
	if col.Len() != bm.Len() {
		return lpq.ColumnData{}, fmt.Errorf("store: chunk (%d,%d) has %d rows, bitmap %d", rg, ci, col.Len(), bm.Len())
	}
	return cluster.SelectRows(col, bm), nil
}

// aggregateChunk reduces one chunk's selected rows to a partial aggregate,
// in-situ on the hosting node when possible, locally otherwise. pre, when
// non-nil, is the chunk's sub-response from the scatter-gather pre-dispatch.
func (s *Store) aggregateChunk(st *execState, rg, ci int, ch lpq.ChunkMeta, bm *bitmap.Bitmap, pre *rpc.Response) (*sql.AggState, error) {
	meta := st.meta
	if pre != nil && pre.Agg != nil {
		return pre.Agg, nil
	}
	if itemIdx := meta.ChunkItemIndex(rg, ci); itemIdx >= 0 && meta.Mode == LayoutFAC && !s.batchOn() {
		loc := meta.ItemLocs[itemIdx]
		stripe := meta.Stripes[loc.Stripe]
		node := stripe.Nodes[loc.Bin]
		req := &rpc.Request{
			Kind: rpc.KindAggregate,
			Chunk: rpc.ChunkRef{
				BlockID: stripe.BlockIDs[loc.Bin],
				Offset:  loc.BinOffset,
				Type:    meta.Footer.Columns[ci].Type,
				Meta:    ch,
			},
			Bitmap: bm.Marshal(),
		}
		resp, err := s.callChecked(st.ctx, st.sp, node, req)
		if err == nil && resp.Agg != nil {
			st.sp.Count(trace.BytesRequested, ch.Size)
			st.stats.AggregateRPCs++
			st.addOp(simnet.OpCost{
				Node:      node,
				ReqBytes:  req.WireSize(),
				RespBytes: resp.WireSize() + 64, // accumulator payload
				DiskBytes: resp.Cost.DiskBytes,
				ProcBytes: resp.Cost.ProcBytes,
			})
			return resp.Agg, nil
		}
		// Node down or decode failure: fall through to local reduction.
	}
	col, err := s.fetchChunkColumn(st, rg, ci)
	if err != nil {
		return nil, err
	}
	if col.Len() != bm.Len() {
		return nil, fmt.Errorf("store: chunk (%d,%d) has %d rows, bitmap %d", rg, ci, col.Len(), bm.Len())
	}
	state := sql.NewAggState(sql.AggCount)
	state.AddColumn(col, bm)
	return state, nil
}

// pushdownProject sends the projection to the chunk's node with the
// consolidated bitmap; the reply carries the selected values uncompressed.
func (s *Store) pushdownProject(st *execState, rg, ci int, ch lpq.ChunkMeta, bm *bitmap.Bitmap) (lpq.ColumnData, error) {
	meta := st.meta
	itemIdx := meta.ChunkItemIndex(rg, ci)
	if itemIdx < 0 {
		return lpq.ColumnData{}, fmt.Errorf("store: chunk (%d,%d) has no item", rg, ci)
	}
	loc := meta.ItemLocs[itemIdx]
	stripe := meta.Stripes[loc.Stripe]
	node := stripe.Nodes[loc.Bin]
	req := &rpc.Request{
		Kind: rpc.KindProject,
		Chunk: rpc.ChunkRef{
			BlockID: stripe.BlockIDs[loc.Bin],
			Offset:  loc.BinOffset,
			Type:    meta.Footer.Columns[ci].Type,
			Meta:    ch,
		},
		Bitmap: bm.Marshal(),
	}
	resp, err := s.callChecked(st.ctx, st.sp, node, req)
	if err != nil {
		return lpq.ColumnData{}, err
	}
	st.sp.Count(trace.BytesRequested, ch.Size)
	st.stats.ProjectRPCs++
	st.addOp(simnet.OpCost{
		Node:      node,
		ReqBytes:  req.WireSize(),
		RespBytes: resp.WireSize(),
		DiskBytes: resp.Cost.DiskBytes,
		ProcBytes: resp.Cost.ProcBytes,
	})
	return cluster.DecodePlain(resp.Data)
}

// truncateResult applies a LIMIT clause: returned rows are capped after
// projection (LIMIT does not change which chunks execute, matching S3
// Select's post-filter semantics).
func truncateResult(res *Result, limit int) {
	for i := range res.Data {
		col := &res.Data[i]
		if col.Len() <= limit {
			continue
		}
		switch col.Type {
		case lpq.Int64:
			col.Ints = col.Ints[:limit]
		case lpq.Float64:
			col.Floats = col.Floats[:limit]
		default:
			col.Strings = col.Strings[:limit]
		}
	}
	if res.Rows > limit {
		res.Rows = limit
	}
}

// resultWireBytes estimates the result's size on the client connection.
func resultWireBytes(res *Result) uint64 {
	n := uint64(rpcOverhead)
	for _, col := range res.Data {
		switch col.Type {
		case lpq.Int64:
			n += 8 * uint64(len(col.Ints))
		case lpq.Float64:
			n += 8 * uint64(len(col.Floats))
		default:
			for _, s := range col.Strings {
				n += uint64(len(s)) + 1
			}
		}
	}
	n += 16 * uint64(len(res.AggValues))
	return n
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
