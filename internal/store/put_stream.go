package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"github.com/fusionstore/fusion/internal/bufpool"
	"github.com/fusionstore/fusion/internal/fac"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/trace"
)

// footerProbeBytes is the tail read a streamed Put starts with. Footers
// larger than the probe (huge schemas) trigger exactly one re-read of the
// precise footer region.
const footerProbeBytes = 64 << 10

// putSource is the random-access view of a Put's payload. The lpq footer
// lives at the file tail, so bounded-memory streaming fundamentally needs
// an io.ReaderAt; a purely sequential reader is materialized once (the
// documented fallback) and then served through the same interface, keeping
// the rest of the pipeline single-pathed.
type putSource struct {
	ra   io.ReaderAt
	size uint64
}

func newPutSource(r io.Reader, size uint64) (*putSource, error) {
	if ra, ok := r.(io.ReaderAt); ok {
		return &putSource{ra: ra, size: size}, nil
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("source ended before declared size %d: %w", size, err)
	}
	// The declared size must be exact — a longer source would be silently
	// truncated into an object whose footer no longer matches its body.
	var probe [1]byte
	if _, err := io.ReadFull(r, probe[:]); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("source longer than declared size %d", size)
		}
		return nil, err
	}
	return &putSource{ra: bytes.NewReader(buf), size: size}, nil
}

// readAt fills dst from the source at offset off, treating short reads and
// out-of-bounds ranges as errors.
func (ps *putSource) readAt(dst []byte, off uint64) error {
	if len(dst) == 0 {
		return nil
	}
	if off+uint64(len(dst)) > ps.size || off+uint64(len(dst)) < off {
		return fmt.Errorf("store: read [%d,%d) beyond declared size %d", off, off+uint64(len(dst)), ps.size)
	}
	n, err := ps.ra.ReadAt(dst, int64(off))
	if n == len(dst) {
		return nil // ReaderAt may pair a full read at the tail with io.EOF
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// parseFooter probes the source tail for the lpq footer and verifies the
// leading magic, reading at most footerProbeBytes + the exact footer region
// + 4 head bytes — never the body.
func (ps *putSource) parseFooter() (*lpq.Footer, int, error) {
	probe := uint64(footerProbeBytes)
	if probe > ps.size {
		probe = ps.size
	}
	tail := make([]byte, probe)
	if err := ps.readAt(tail, ps.size-probe); err != nil {
		return nil, 0, err
	}
	fsize, err := lpq.FooterSizeTail(tail, ps.size)
	if err != nil {
		return nil, 0, err
	}
	if fsize > len(tail) {
		tail = make([]byte, fsize)
		if err := ps.readAt(tail, ps.size-uint64(fsize)); err != nil {
			return nil, 0, err
		}
	}
	footer, err := lpq.ParseFooterTail(tail, ps.size)
	if err != nil {
		return nil, 0, err
	}
	head := make([]byte, len(lpq.Magic))
	if err := ps.readAt(head, 0); err != nil {
		return nil, 0, err
	}
	if string(head) != lpq.Magic {
		return nil, 0, lpq.ErrFormat
	}
	return footer, fsize, nil
}

// fileSeg is one contiguous byte range of the source object.
type fileSeg struct{ off, n uint64 }

// binPlan lists the source ranges concatenated (in order) into one data bin.
type binPlan struct {
	segs []fileSeg
	size uint64
}

// stripePlan is the gather recipe for one stripe: where in the source file
// each of the k data bins' bytes live. Plans are derived from the footer
// alone, so the complete layout exists before any body byte is resident —
// the property that lets the pipeline read the object stripe by stripe.
type stripePlan struct {
	capacity uint64
	bins     []binPlan
}

// facStripePlans converts a FAC layout into gather plans. The layout is the
// unmodified output of the global stripe construction (Algorithm 1) — the
// streamed placement is bit-identical to the materialized one.
func facStripePlans(layout fac.Layout, items []Item) []stripePlan {
	plans := make([]stripePlan, len(layout.Stripes))
	for si, st := range layout.Stripes {
		pl := stripePlan{capacity: st.Capacity, bins: make([]binPlan, len(st.Bins))}
		for j, bin := range st.Bins {
			bp := binPlan{size: st.BinSizes[j], segs: make([]fileSeg, 0, len(bin))}
			for _, itemIdx := range bin {
				it := items[itemIdx]
				bp.segs = append(bp.segs, fileSeg{off: it.Offset, n: it.Size})
			}
			pl.bins[j] = bp
		}
		plans[si] = pl
	}
	return plans
}

// fixedStripePlans builds gather plans for fixed-block striping: block j of
// stripe si covers source bytes [(si·k+j)·bs, …+bs), the tail block short.
func fixedStripePlans(size, bs uint64, k int) []stripePlan {
	fb := fac.NewFixedBlockLayout(size, bs, k)
	plans := make([]stripePlan, fb.NumStripes)
	for si := range plans {
		pl := stripePlan{capacity: bs, bins: make([]binPlan, k)}
		for j := 0; j < k; j++ {
			start := (uint64(si)*uint64(k) + uint64(j)) * bs
			if start < size {
				n := size - start
				if n > bs {
					n = bs
				}
				pl.bins[j] = binPlan{size: n, segs: []fileSeg{{off: start, n: n}}}
			}
		}
		plans[si] = pl
	}
	return plans
}

// memGauge tracks the pipeline's resident pooled bytes and their high-water
// mark. The builder and scatter goroutines account concurrently, so both
// counters are atomics.
type memGauge struct{ cur, peak atomic.Int64 }

func (g *memGauge) add(n int64) {
	c := g.cur.Add(n)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

// stripeJob is one stripe in flight: pooled arenas holding the gathered
// data bins (zero-padded to capacity for encoding) and the computed parity.
type stripeJob struct {
	si     int
	blocks [][]byte // n views to scatter: data bins unpadded, parity at capacity
	bufs   [][]byte // pooled backing arenas, released after scatter
	lens   []uint64 // stored length of each data bin (j < k)
	bytes  int64    // resident footprint: sum of arena capacities
}

// release returns the job's arenas to the pool and retires its footprint
// from the gauge. With bufpool poisoning enabled the arenas are scribbled on
// return — any scattered frame still aliasing a pooled buffer fails its CRC
// immediately instead of corrupting data at rest.
func (j *stripeJob) release(g *memGauge) {
	for _, b := range j.bufs {
		bufpool.Put(b)
	}
	g.add(-j.bytes)
	j.bufs = nil
}

// buildStripe gathers one stripe's data-bin bytes from the source into
// pooled arenas and computes its parity — the read+encode half of the
// pipeline, overlapped with the previous stripe's scatter.
func (s *Store) buildStripe(src *putSource, si int, pl stripePlan, g *memGauge) (*stripeJob, error) {
	p := s.opts.Params
	job := &stripeJob{si: si, blocks: make([][]byte, p.N), lens: make([]uint64, p.K)}
	rent := func(n uint64) []byte {
		b := bufpool.GetLen(int(n))
		job.bufs = append(job.bufs, b)
		job.bytes += int64(cap(b))
		g.add(int64(cap(b)))
		return b
	}
	fail := func(err error) (*stripeJob, error) {
		job.release(g)
		return nil, err
	}
	shards := make([][]byte, p.N)
	for j := 0; j < p.K; j++ {
		bp := pl.bins[j]
		buf := rent(pl.capacity)
		var pos uint64
		for _, seg := range bp.segs {
			if err := src.readAt(buf[pos:pos+seg.n], seg.off); err != nil {
				return fail(fmt.Errorf("store: gathering stripe %d bin %d: %w", si, j, err))
			}
			pos += seg.n
		}
		if pos != bp.size {
			return fail(fmt.Errorf("store: stripe %d bin %d gathered %d of %d bytes", si, j, pos, bp.size))
		}
		// Pooled arenas carry stale (or poisoned) bytes: the capacity
		// padding must be explicit zeros so parity matches the implicit
		// zero-extension decode performs on unpadded stored bins.
		clear(buf[pos:])
		job.blocks[j] = buf[:pos]
		job.lens[j] = pos
		shards[j] = buf
	}
	if pl.capacity > 0 {
		// Parity arenas need no zeroing: Encode fully overwrites them
		// (multiply into, then multiply-accumulate).
		for j := p.K; j < p.N; j++ {
			buf := rent(pl.capacity)
			shards[j] = buf
			job.blocks[j] = buf
		}
		if err := s.coder.Encode(shards); err != nil {
			return fail(fmt.Errorf("store: encoding stripe %d: %w", si, err))
		}
	} else {
		for j := p.K; j < p.N; j++ {
			job.blocks[j] = []byte{}
		}
	}
	return job, nil
}

// streamStripes runs the bounded-memory half of Put: a builder goroutine
// gathers and encodes stripe i+1 while this goroutine scatters stripe i
// over an unbuffered channel, so at most two stripes of pooled arenas are
// resident regardless of object size. Scatter stays strictly sequential in
// stripe order — placement draws its candidate permutation per stripe from
// the store's seeded rng, so the streamed node assignment is bit-identical
// to the materialized path's. On any failure the pipeline drains, every
// arena is returned, and the caller rolls back the placed blocks.
func (s *Store) streamStripes(ctx context.Context, sp *trace.Span, meta *ObjectMeta, src *putSource, plans []stripePlan, stats *PutStats, placed *[]placedBlock) error {
	p := s.opts.Params
	var g memGauge
	jobs := make(chan *stripeJob) // unbuffered: builder runs ≤1 stripe ahead
	stop := make(chan struct{})
	builderErr := make(chan error, 1)
	go func() {
		defer close(jobs)
		for si := range plans {
			if err := ctx.Err(); err != nil {
				builderErr <- err
				return
			}
			job, err := s.buildStripe(src, si, plans[si], &g)
			if err != nil {
				builderErr <- err
				return
			}
			select {
			case jobs <- job:
			case <-stop:
				job.release(&g)
				return
			}
		}
	}()
	var failed error
	for job := range jobs {
		if failed != nil {
			job.release(&g)
			continue
		}
		if uint64(job.bytes) > stats.MaxStripeBytes {
			stats.MaxStripeBytes = uint64(job.bytes)
		}
		sm := StripeMeta{
			Capacity:  plans[job.si].capacity,
			Nodes:     make([]int, p.N),
			BlockIDs:  make([]string, p.N),
			DataLens:  append([]uint64(nil), job.lens...),
			Checksums: make([]uint32, p.N),
		}
		err := s.placeStripe(ctx, sp, meta, job.si, job.blocks, &sm, stats, placed)
		job.release(&g)
		if err != nil {
			failed = err
			close(stop)
			continue
		}
		meta.Stripes = append(meta.Stripes, sm)
	}
	if failed != nil {
		return failed
	}
	select {
	case err := <-builderErr:
		return err
	default:
	}
	stats.PeakPipelineBytes = uint64(g.peak.Load())
	return nil
}
