package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/fusionstore/fusion/internal/metakv"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/trace"
)

// cacheTestOptions enables the read cache's data tiers on top of the usual
// test configuration.
func cacheTestOptions() Options {
	o := fusionTestOptions()
	o.CacheBytes = 64 << 20
	return o
}

// TestCacheHitZeroBytesFromNodes pins the read-amplification contract: a
// repeat Get served from the cache moves zero bytes from storage nodes and
// is visible as cache hits in both the trace and the store stats.
func TestCacheHitZeroBytesFromNodes(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 1)
	s, _ := newSimStore(t, cacheTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}

	ctx, cold := trace.Start(context.Background(), "cold")
	got, err := s.GetContext(ctx, "obj", 0, 0)
	cold.End()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cold read: %v", err)
	}
	if cold.Total(trace.BytesFromNodes) == 0 {
		t.Fatal("cold read should move bytes from nodes")
	}

	ctx, hot := trace.Start(context.Background(), "hot")
	got, err = s.GetContext(ctx, "obj", 0, 0)
	hot.End()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("hot read: %v", err)
	}
	if n := hot.Total(trace.BytesFromNodes); n != 0 {
		t.Fatalf("hot read moved %d bytes from nodes, want 0", n)
	}
	if hot.Total(trace.CacheHits) == 0 {
		t.Fatal("hot read recorded no cache hits")
	}
	if hot.Total(trace.BytesRequested) == 0 {
		t.Fatal("hot read must still count bytes requested")
	}
	cs := s.CacheStats()
	if cs.Block.Hits == 0 {
		t.Fatalf("block tier saw no hits: %+v", cs)
	}
}

// TestCacheHitQueryZeroBytesFromNodes is the query-path variant: a repeated
// reassembly-mode scan is served from the decoded-chunk tier.
func TestCacheHitQueryZeroBytesFromNodes(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 1)
	opts := cacheTestOptions()
	opts.Exec = ExecReassemble
	opts.Pushdown = PushdownNever
	s, _ := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT SUM(qty), AVG(price) FROM obj WHERE qty > 10"

	ctx, cold := trace.Start(context.Background(), "cold")
	resCold, err := s.QueryContext(ctx, q)
	cold.End()
	if err != nil {
		t.Fatal(err)
	}

	ctx, hot := trace.Start(context.Background(), "hot")
	resHot, err := s.QueryContext(ctx, q)
	hot.End()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resHot.AggValues) != fmt.Sprint(resCold.AggValues) {
		t.Fatalf("hot query changed the answer: %v vs %v", resHot.AggValues, resCold.AggValues)
	}
	if n := hot.Total(trace.BytesFromNodes); n != 0 {
		t.Fatalf("hot query moved %d bytes from nodes, want 0", n)
	}
	if hot.Total(trace.CacheHits) == 0 {
		t.Fatal("hot query recorded no cache hits")
	}
	if cs := s.CacheStats(); cs.Chunk.Hits == 0 {
		t.Fatalf("chunk tier saw no hits: %+v", cs)
	}
}

// TestCacheInvalidationOnOverwrite: the commit point of an overwrite must
// flip this coordinator's cache to the new version atomically — a warm
// reader can never be handed pre-overwrite bytes again.
func TestCacheInvalidationOnOverwrite(t *testing.T) {
	dataOld, _, _ := makeObject(t, 2, 300, 1)
	dataNew, _, _ := makeObject(t, 3, 250, 2)
	s, _ := newSimStore(t, cacheTestOptions())
	if _, err := s.Put("obj", dataOld); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("obj", 0, 0); err != nil || !bytes.Equal(got, dataOld) {
		t.Fatalf("warming read: %v", err)
	}
	if _, err := s.Put("obj", dataNew); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("obj", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dataNew) {
		t.Fatal("read after overwrite served pre-overwrite bytes")
	}
}

// TestCacheInvalidationOnDelete: a Delete tombstones the cache — the
// deleting coordinator must never serve the dead object from memory.
func TestCacheInvalidationOnDelete(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 1)
	s, _ := newSimStore(t, cacheTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("obj", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("obj", 0, 0); err == nil {
		t.Fatal("read after delete served cached bytes of a deleted object")
	} else if !strings.Contains(err.Error(), "not found") {
		t.Fatalf("read after delete: %v, want not-found", err)
	}
	if st := s.CacheStats(); st.DataEntries != 0 {
		t.Fatalf("%d data entries survived the delete tombstone", st.DataEntries)
	}
}

// TestCacheInvalidationMatrix is the crash-point matrix with caching
// enabled: the writing coordinator's cache is warm with the old version,
// the coordinator crashes at every interesting point of two-phase Put
// (epoch alloc, prepare scatter, metadata publish, commit fan-out, GC), and
// after reattach both the warm coordinator and a second coordinator that
// warmed its own cache before the overwrite must observe exactly the old or
// exactly the new bytes — never a mix — with a successful Put implying new
// on the writer.
func TestCacheInvalidationMatrix(t *testing.T) {
	seed := faultSeed(t)
	dataOld, _, _ := makeObject(t, 2, 200, seed)
	dataNew, _, _ := makeObject(t, 3, 150, seed+1)

	points := []struct {
		name  string
		kind  rpc.Kind
		after int
	}{
		{"epoch-alloc-0", rpc.KindPutBlock, 0},
		{"epoch-alloc-3", rpc.KindPutBlock, 3},
		{"prepare-0", rpc.KindPrepareBlock, 0},
		{"prepare-5", rpc.KindPrepareBlock, 5},
		{"meta-publish-7", rpc.KindPutBlock, 7},
		{"meta-publish-10", rpc.KindPutBlock, 10},
		{"commit-0", rpc.KindCommitObject, 0},
		{"commit-2", rpc.KindCommitObject, 2},
		{"gc-delete-0", rpc.KindDeleteBlock, 0},
	}

	for _, pt := range points {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			s1, inj := newFaultStore(t, 9, seed, cacheTestOptions())
			if _, err := s1.Put("obj", dataOld); err != nil {
				t.Fatal(err)
			}
			// Warm the writer's cache and an independent reader's cache.
			if _, err := s1.Get("obj", 0, 0); err != nil {
				t.Fatal(err)
			}
			s2, err := New(inj, cacheTestOptions())
			if err != nil {
				t.Fatal(err)
			}
			if got, err := s2.Get("obj", 0, 0); err != nil || !bytes.Equal(got, dataOld) {
				t.Fatalf("reader warm-up: %v", err)
			}

			inj.CrashClientAfter(pt.kind, pt.after)
			_, putErr := s1.Put("obj", dataNew)
			if !inj.Crashed() {
				t.Fatalf("crash point never reached (putErr = %v)", putErr)
			}
			inj.Reattach()

			check := func(who string, s *Store, requireNew bool) {
				got, err := s.Get("obj", 0, 0)
				if err != nil {
					t.Fatalf("%s read after crash: %v", who, err)
				}
				isOld, isNew := bytes.Equal(got, dataOld), bytes.Equal(got, dataNew)
				if !isOld && !isNew {
					t.Fatalf("%s read a hybrid (%d bytes; old %d, new %d)",
						who, len(got), len(dataOld), len(dataNew))
				}
				if requireNew && !isNew {
					t.Fatalf("%s resurrected pre-overwrite bytes after the commit point", who)
				}
			}
			// The writer saw its own Put succeed ⇒ its cache flipped at the
			// commit point; reading old again would be the resurrection bug.
			check("warm writer", s1, putErr == nil)
			// The independent warm reader may serve its cached old version
			// or the new one, but never a mix.
			check("warm reader", s2, false)
			// A fresh coordinator is the committed truth.
			s3, err := New(inj, cacheTestOptions())
			if err != nil {
				t.Fatal(err)
			}
			check("fresh reader", s3, putErr == nil)
		})
	}
}

// TestSingleflightSingleDecodeGate: N concurrent readers of an object with
// one node down must trigger exactly one RS decode per lost block — the
// singleflight guarantee the ISSUE's acceptance criteria name.
func TestSingleflightSingleDecodeGate(t *testing.T) {
	data, _, _ := makeObject(t, 3, 400, 1)
	s, cl := newSimStore(t, cacheTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	// Count the distinct data blocks living on the victim node: each is one
	// unavoidable decode. Parity-only stripes don't force decodes on Get.
	const victim = 2
	lost := 0
	for _, st := range meta.Stripes {
		for bin := 0; bin < s.opts.Params.K && bin < len(st.Nodes); bin++ {
			if st.Nodes[bin] == victim && bin < len(st.DataLens) && st.DataLens[bin] > 0 {
				lost++
			}
		}
	}
	if lost == 0 {
		t.Skip("placement put no data blocks on the victim node")
	}
	cl.SetDown(victim, true)
	defer cl.SetDown(victim, false)

	const readers = 16
	var wg sync.WaitGroup
	errs := make([]error, readers)
	outs := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s.Get("obj", 0, 0)
		}(i)
	}
	wg.Wait()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], data) {
			t.Fatalf("reader %d got wrong bytes", i)
		}
	}
	cs := s.CacheStats()
	if cs.Decodes != uint64(lost) {
		t.Fatalf("observed %d RS decodes for %d lost blocks across %d concurrent readers (flight: %d leaders, %d dedups)",
			cs.Decodes, lost, readers, cs.FlightLeaders, cs.FlightDedups)
	}
}

// TestStaleReadAfterOverwriteRecovers: a coordinator holding a stale cached
// metadata snapshot whose blocks were overwritten AND garbage-collected by
// another coordinator must re-resolve and retry, not fail or serve garbage.
func TestStaleReadAfterOverwriteRecovers(t *testing.T) {
	dataOld, _, _ := makeObject(t, 2, 300, 1)
	dataNew, _, _ := makeObject(t, 3, 250, 2)
	opts := fusionTestOptions() // cache data tiers off: the meta snapshot itself is the hazard
	s1, cl := newSimStore(t, opts)
	s2, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("obj", dataOld); err != nil {
		t.Fatal(err)
	}
	// s2 captures the old metadata.
	if got, err := s2.Get("obj", 0, 0); err != nil || !bytes.Equal(got, dataOld) {
		t.Fatalf("warming read: %v", err)
	}
	// s1 overwrites; its GC deletes every old-epoch block.
	if _, err := s1.Put("obj", dataNew); err != nil {
		t.Fatal(err)
	}
	// s2's cached metadata now points at deleted blocks. The read must
	// re-resolve and return the new version.
	got, err := s2.Get("obj", 0, 0)
	if err != nil {
		t.Fatalf("stale-snapshot read did not recover: %v", err)
	}
	if !bytes.Equal(got, dataNew) {
		t.Fatal("stale-snapshot read returned wrong bytes")
	}
	// The same holds for queries.
	res1, err := s1.Query("SELECT COUNT(id) FROM obj")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Query("SELECT COUNT(id) FROM obj")
	if err != nil {
		t.Fatalf("stale-snapshot query did not recover: %v", err)
	}
	if fmt.Sprint(res2.AggValues) != fmt.Sprint(res1.AggValues) {
		t.Fatalf("stale-snapshot query answer %v, want %v", res2.AggValues, res1.AggValues)
	}
}

// TestStaleReadConcurrentOverwrite races Gets against overwrites (run it
// under -race): every successful read must equal one complete version —
// epoch-keyed blocks make a hybrid structurally impossible, and this pins
// it.
func TestStaleReadConcurrentOverwrite(t *testing.T) {
	versions := make([][]byte, 4)
	for i := range versions {
		versions[i], _, _ = makeObject(t, 2, 200, int64(i+1))
	}
	opts := cacheTestOptions()
	s1, cl := newSimStore(t, opts)
	s2, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("obj", versions[0]); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		for round := 0; round < 8; round++ {
			if _, err := s1.Put("obj", versions[round%len(versions)]); err != nil {
				writerErr = err
				return
			}
		}
	}()

	reads, failures := 0, 0
	for {
		select {
		case <-done:
			if writerErr != nil {
				t.Fatal(writerErr)
			}
			if reads == 0 {
				t.Fatal("no read completed during the overwrite storm")
			}
			t.Logf("%d reads (%d transient failures) during 8 overwrites", reads, failures)
			return
		default:
		}
		got, err := s2.Get("obj", 0, 0)
		if err != nil {
			// A read can lose the race twice in a row (its refreshed
			// snapshot GC'd by the next overwrite); that is a transient
			// failure, not a correctness bug.
			failures++
			continue
		}
		reads++
		match := false
		for _, v := range versions {
			if bytes.Equal(got, v) {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("read %d returned bytes matching no complete version (%d bytes)", reads, len(got))
		}
	}
}

// TestRepairQueueDropsDeleted: a repair enqueued for an object that is
// deleted before processing must be dropped and counted, not retried
// forever.
func TestRepairQueueDropsDeleted(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 1)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	s.enqueueRepair(RepairItem{Object: "obj", Epoch: meta.Epoch, Stripe: 0, Block: 0})
	if err := s.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	// Two passes: before the fix the item bounced back into the queue on
	// every pass, so a drained queue after processing is the regression.
	for i := 0; i < 2; i++ {
		if _, err := s.ProcessRepairs(0); err != nil {
			t.Fatalf("pass %d: stale repair surfaced an error: %v", i, err)
		}
	}
	st := s.RepairStats()
	if st.QueueDepth != 0 {
		t.Fatalf("stale repair still queued (depth %d): endless retry", st.QueueDepth)
	}
	if st.Stale != 1 {
		t.Fatalf("stale count = %d, want 1 (%+v)", st.Stale, st)
	}
	if st.Failed != 0 {
		t.Fatalf("stale drop must not count as failure (%+v)", st)
	}
}

// TestRepairQueueDropsSuperseded: same for an overwrite between enqueue and
// processing — the old epoch's blocks are gone; repairing them is at best
// wasted work and at worst resurrection.
func TestRepairQueueDropsSuperseded(t *testing.T) {
	dataOld, _, _ := makeObject(t, 2, 300, 1)
	dataNew, _, _ := makeObject(t, 2, 250, 2)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", dataOld); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	s.enqueueRepair(RepairItem{Object: "obj", Epoch: meta.Epoch, Stripe: 0, Block: 0})
	if _, err := s.Put("obj", dataNew); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProcessRepairs(0); err != nil {
		t.Fatalf("superseded repair surfaced an error: %v", err)
	}
	st := s.RepairStats()
	if st.QueueDepth != 0 || st.Stale != 1 || st.Failed != 0 {
		t.Fatalf("superseded repair not dropped cleanly: %+v", st)
	}
	// The new version is untouched and healthy.
	got, err := s.Get("obj", 0, 0)
	if err != nil || !bytes.Equal(got, dataNew) {
		t.Fatalf("object damaged by stale-repair handling: %v", err)
	}
}

// TestDeleteUsesQuorumNotCache: Delete through a coordinator whose cached
// metadata is superseded must delete the *current* version's blocks (via a
// quorum read), not the stale cached one's — the latter stranded the new
// blocks as orphans.
func TestDeleteUsesQuorumNotCache(t *testing.T) {
	dataOld, _, _ := makeObject(t, 2, 300, 1)
	dataNew, _, _ := makeObject(t, 2, 250, 2)
	opts := fusionTestOptions()
	s1, cl := newSimStore(t, opts)
	s2, err := New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("obj", dataOld); err != nil {
		t.Fatal(err)
	}
	// s2 caches the old metadata, then s1 overwrites.
	if _, err := s2.Meta("obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("obj", dataNew); err != nil {
		t.Fatal(err)
	}
	// Delete through the coordinator with the stale cache.
	if err := s2.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	// No object blocks may remain anywhere.
	for node := 0; node < cl.NumNodes(); node++ {
		resp := cl.Node(node).Handle(&rpc.Request{Kind: rpc.KindListBlocks})
		for _, b := range resp.Blocks {
			if strings.HasPrefix(b.ID, "kv/") {
				continue
			}
			if object, _, _, _, ok := parseBlockID(b.ID); ok && object == "obj" {
				t.Fatalf("node %d: block %q stranded by stale-cache delete", node, b.ID)
			}
		}
	}
	if err := s2.Delete("obj"); err == nil {
		t.Fatal("second delete must report not-found")
	} else if !errors.Is(err, metakv.ErrNotFound) {
		t.Fatalf("second delete: %v, want ErrNotFound", err)
	}
}
