package store

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/faultnet"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
)

// flakyClient deterministically fails every odd-numbered transport call, so
// each logical RPC fails once and succeeds on its first retry — the retry
// path runs on every call without ever escalating to the (parallel, and
// therefore schedule-dependent) reconstruction fan-out.
type flakyClient struct {
	inner cluster.Client
	mu    sync.Mutex
	n     int
	armed bool
}

func (f *flakyClient) NumNodes() int { return f.inner.NumNodes() }

func (f *flakyClient) Call(node int, req *rpc.Request) (*rpc.Response, error) {
	f.mu.Lock()
	fail := false
	if f.armed {
		f.n++
		fail = f.n%2 == 1
	}
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("flaky: injected transient failure (call %d)", f.n)
	}
	return f.inner.Call(node, req)
}

// TestBackoffTraceDeterminism pins the Policy.Jitter contract: with the
// jitter source seeded, a serial Put+Get workload whose every RPC retries
// once must produce a byte-identical (node, retry, duration) backoff trace
// on every run — the property the global math/rand jitter silently broke
// under FUSION_FAULT_SEED. A different seed must change the durations.
func TestBackoffTraceDeterminism(t *testing.T) {
	run := func(jitterSeed int64) string {
		cfg := simnet.DefaultConfig()
		cfg.Nodes = 9
		fc := &flakyClient{inner: simnet.New(cfg)}
		var trace strings.Builder
		opts := fusionTestOptions()
		opts.Retry = cluster.Policy{
			MaxAttempts: 3,
			BaseBackoff: 50 * time.Microsecond,
			MaxBackoff:  500 * time.Microsecond,
			JitterFrac:  0.5,
			Jitter:      cluster.NewJitterSource(jitterSeed),
			OnBackoff: func(node, retry int, d time.Duration) {
				fmt.Fprintf(&trace, "node=%d retry=%d d=%v\n", node, retry, d)
			},
		}
		s, err := New(fc, opts)
		if err != nil {
			t.Fatal(err)
		}
		data, _, _ := makeObject(t, 2, 150, 7)
		if _, err := s.Put("obj", data); err != nil {
			t.Fatal(err)
		}
		// Warm the metadata cache before arming the failures: Put already
		// cached it, so every Get below is pure serial block reads.
		fc.mu.Lock()
		fc.armed = true
		fc.mu.Unlock()
		size := uint64(len(data))
		for _, r := range [][2]uint64{{0, 0}, {10, 100}, {size / 2, size / 3}, {size - 5, 5}} {
			if _, err := s.Get("obj", r[0], r[1]); err != nil {
				t.Fatalf("Get(%d, %d): %v", r[0], r[1], err)
			}
		}
		return trace.String()
	}

	first := run(42)
	if first == "" {
		t.Fatal("workload recorded no backoff events — the retry path never ran")
	}
	if again := run(42); again != first {
		t.Errorf("same jitter seed produced different backoff traces:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, again)
	}
	if other := run(43); other == first {
		t.Error("different jitter seeds produced identical backoff traces — jitter is not wired to the source")
	}
}

// TestChaosReplayDeterminism is the soak-reproducibility assertion: a fixed
// seed must replay the entire fault schedule AND the retry/backoff schedule
// byte-identically. The workload is driven serially through CallRetryN so
// the trace order is the call order, exactly as a FUSION_FAULT_SEED replay
// of a failing chaos run would be debugged.
func TestChaosReplayDeterminism(t *testing.T) {
	run := func(seed int64) (string, uint64) {
		cfg := simnet.DefaultConfig()
		cfg.Nodes = 9
		inj := faultnet.New(simnet.New(cfg), seed)
		inj.Add(faultnet.Rule{Node: faultnet.NodeAny, Kind: rpc.KindGetBlock, Fault: faultnet.FaultError, Prob: 0.3})
		var trace strings.Builder
		p := cluster.Policy{
			MaxAttempts: 4,
			BaseBackoff: 50 * time.Microsecond,
			MaxBackoff:  500 * time.Microsecond,
			JitterFrac:  0.5,
			Jitter:      cluster.NewJitterSource(seed),
			OnBackoff: func(node, retry int, d time.Duration) {
				fmt.Fprintf(&trace, "node=%d retry=%d d=%v\n", node, retry, d)
			},
		}
		for i := 0; i < 200; i++ {
			req := &rpc.Request{Kind: rpc.KindGetBlock, BlockID: fmt.Sprintf("b%d", i)}
			_, _, _ = cluster.CallRetryN(inj, i%cfg.Nodes, req, p)
		}
		return trace.String(), inj.InjectedTotal()
	}

	seed := faultSeed(t)
	trace1, faults1 := run(seed)
	trace2, faults2 := run(seed)
	if faults1 == 0 || trace1 == "" {
		t.Fatalf("fault schedule never fired (faults=%d, trace %d bytes)", faults1, len(trace1))
	}
	if faults1 != faults2 {
		t.Errorf("same seed injected %d vs %d faults", faults1, faults2)
	}
	if trace1 != trace2 {
		t.Errorf("same seed produced different backoff traces:\n--- run 1 ---\n%s--- run 2 ---\n%s", trace1, trace2)
	}
	if traceOther, _ := run(seed + 1); traceOther == trace1 {
		t.Error("different seeds replayed identical schedules")
	}
}
