package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/faultnet"
	"github.com/fusionstore/fusion/internal/rpc"
)

// TestChaosSoak runs concurrent Put/Get/Query/Scrub for a short, seeded
// window under a random fault schedule: up to 2 crashed nodes (revived and
// re-crashed by the chaos controller), one flaky node injecting transient
// errors, and one slow node that trips read hedging. With at most
// 2 (down) + 1 (flaky) = n−k unreliable nodes, every read and query must
// succeed bit-identically; the only permitted failure anywhere is the
// ErrTooManyFailures sentinel (a Put can hit it: a stripe needs n healthy
// target nodes and the schedule may leave fewer).
func TestChaosSoak(t *testing.T) {
	seed := faultSeed(t)
	const (
		flakyNode = 0
		slowNode  = 1
		maxDown   = 2 // + 1 flaky = n−k for RS(9,6)
	)
	opts := fusionTestOptions()
	opts.HedgeAfter = 2 * time.Millisecond
	s, inj := newFaultStore(t, 9, seed, opts)

	// Stable objects are written healthy and never overwritten: their
	// contents and query results are the ground truth the workers check.
	const query = "SELECT qty, price FROM %s WHERE flag = 'A' AND qty > 10"
	type stable struct {
		name string
		data []byte
		rows int
	}
	var stables []stable
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("stable-%d", i)
		data, _, _ := makeObject(t, 2, 150, seed+int64(i))
		if _, err := s.Put(name, data); err != nil {
			t.Fatal(err)
		}
		res, err := s.Query(fmt.Sprintf(query, name))
		if err != nil {
			t.Fatal(err)
		}
		stables = append(stables, stable{name: name, data: data, rows: res.Rows})
	}

	// Fault schedule: transient errors on one node, slow reads on another,
	// and a seeded random walk crashing/reviving up to maxDown nodes.
	inj.Add(faultnet.Rule{Node: flakyNode, Kind: faultnet.KindAny, Fault: faultnet.FaultError, Prob: 0.2})
	inj.Add(faultnet.Rule{Node: slowNode, Kind: rpc.KindGetBlock, Fault: faultnet.FaultSlow, Prob: 0.1, Delay: 5 * time.Millisecond})
	chaos := faultnet.StartChaos(inj, seed, faultnet.ChaosConfig{
		MaxDown:    maxDown,
		ToggleProb: 0.7,
		Step:       5 * time.Millisecond,
	})

	soak := 2 * time.Second
	if testing.Short() {
		soak = 500 * time.Millisecond
	}
	deadline := time.Now().Add(soak)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Readers: random ranges of stable objects, bytes must match exactly.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(100+w)))
			for time.Now().Before(deadline) {
				st := stables[rng.Intn(len(stables))]
				off := uint64(rng.Intn(len(st.data)))
				length := uint64(rng.Intn(len(st.data)-int(off))) + 1
				got, err := s.Get(st.name, off, length)
				if err != nil {
					report(fmt.Errorf("get %s [%d,%d): %w", st.name, off, off+length, err))
					return
				}
				if !bytes.Equal(got, st.data[off:off+length]) {
					report(fmt.Errorf("get %s [%d,%d): bytes differ", st.name, off, off+length))
					return
				}
			}
		}(w)
	}
	// Queries: row counts must match the healthy result.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 200))
		for time.Now().Before(deadline) {
			st := stables[rng.Intn(len(stables))]
			res, err := s.Query(fmt.Sprintf(query, st.name))
			if err != nil {
				report(fmt.Errorf("query %s: %w", st.name, err))
				return
			}
			if res.Rows != st.rows {
				report(fmt.Errorf("query %s: %d rows, want %d", st.name, res.Rows, st.rows))
				return
			}
		}
	}()
	// Writer: fresh names; a Put may fail with the sentinel (stripes need n
	// healthy nodes), but a successful Put must be durably readable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			name := fmt.Sprintf("chaos-%d", i)
			data, _, _ := makeObject(t, 1, 60, seed+int64(1000+i))
			if _, err := s.Put(name, data); err != nil {
				if !errors.Is(err, ErrTooManyFailures) {
					report(fmt.Errorf("put %s: %w", name, err))
					return
				}
				continue
			}
			got, err := s.Get(name, 0, 0)
			if err != nil {
				report(fmt.Errorf("get-after-put %s: %w", name, err))
				return
			}
			if !bytes.Equal(got, data) {
				report(fmt.Errorf("get-after-put %s: bytes differ", name))
				return
			}
		}
	}()
	// Scrubber: report-only scrubs must never error below the tolerance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 300))
		for time.Now().Before(deadline) {
			st := stables[rng.Intn(len(stables))]
			if _, err := s.Scrub(st.name, ScrubOptions{}); err != nil {
				report(fmt.Errorf("scrub %s: %w", st.name, err))
				return
			}
		}
	}()

	wg.Wait()
	chaos.Stop()
	close(errCh)
	for err := range errCh {
		t.Errorf("seed %d (%s): %v\nhealth:\n%s", seed, chaos, err, s.Health())
	}
	total := s.Health().Total()
	t.Logf("soak done: %d injected faults; calls %d fail %d retry %d hedge %d hedgewin %d",
		inj.InjectedTotal(), total.Calls, total.Failures, total.Retries, total.Hedges, total.HedgeWins)
	if total.Retries == 0 {
		t.Error("soak never exercised the retry path")
	}

	// Over-tolerance phase: crash n−k+1 nodes and the sentinel must surface.
	inj.ClearRules()
	inj.ReviveAll()
	for node := 0; node < 4; node++ {
		inj.SetDown(node, true)
	}
	if _, err := s.Get(stables[0].name, 0, 0); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("seed %d: want ErrTooManyFailures with 4 nodes down, got %v", seed, err)
	}
	inj.ReviveAll()
	if got, err := s.Get(stables[0].name, 0, 0); err != nil || !bytes.Equal(got, stables[0].data) {
		t.Fatalf("seed %d: recovery after revival failed: %v", seed, err)
	}
}

// TestHedgedReadBeatsSlowNode pins hedging behavior: with the node holding
// stripe 0's first data bin serving block reads 50ms slow and a 1ms hedging
// threshold, Get must return the correct bytes via the reconstruction
// fan-out instead of waiting out the direct read, and the health counters
// must record the hedge and its win.
func TestHedgedReadBeatsSlowNode(t *testing.T) {
	seed := faultSeed(t)
	opts := fusionTestOptions()
	opts.HedgeAfter = time.Millisecond
	s, inj := newFaultStore(t, 9, seed, opts)
	data, _, _ := makeObject(t, 2, 200, seed)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	// Slow down a node that definitely serves a direct data-bin read; its
	// reconstruction fan-out touches only the other 8 (fast) nodes.
	slowNode := meta.Stripes[0].Nodes[0]
	inj.Add(faultnet.Rule{Node: slowNode, Kind: rpc.KindGetBlock, Fault: faultnet.FaultSlow, Delay: 50 * time.Millisecond})
	start := time.Now()
	got, err := s.Get("obj", 0, 0)
	if err != nil {
		t.Fatalf("seed %d: hedged Get: %v", seed, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("seed %d: hedged Get bytes differ", seed)
	}
	elapsed := time.Since(start)
	h := s.Health().Node(slowNode)
	if h.Hedges == 0 {
		t.Fatalf("seed %d: no hedge fired against slow node %d (health:\n%s)", seed, slowNode, s.Health())
	}
	if h.HedgeWins == 0 {
		t.Fatalf("seed %d: hedge never won against a 50ms-slow direct read (took %v)", seed, elapsed)
	}
}

// TestScrubDetectsInFlightCorruption drives faultnet's corruption fault
// through Scrub: a flipped byte in one shard's response must fail the
// checksum recorded in the stripe metadata, and a clean pass must follow
// once the fault schedule is exhausted.
func TestScrubDetectsInFlightCorruption(t *testing.T) {
	seed := faultSeed(t)
	s, inj := newFaultStore(t, 9, seed, fusionTestOptions())
	data, _, _ := makeObject(t, 1, 150, seed)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	inj.Add(faultnet.Rule{Node: faultnet.NodeAny, Kind: rpc.KindGetBlock, Fault: faultnet.FaultCorrupt, Count: 1})
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil {
		t.Fatalf("seed %d: scrub: %v", seed, err)
	}
	if rep.ChecksumFailures == 0 {
		t.Fatalf("seed %d: scrub missed the corrupted shard: %+v", seed, rep)
	}
	rep, err = s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.CorruptStripes != 0 || rep.MissingBlocks != 0 || rep.ChecksumFailures != 0 {
		t.Fatalf("seed %d: clean scrub after fault exhausted: %+v %v", seed, rep, err)
	}
}
