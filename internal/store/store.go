package store

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/cache"
	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/erasure"
	"github.com/fusionstore/fusion/internal/metakv"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/trace"
)

// PushdownPolicy selects how the projection stage treats each column chunk.
type PushdownPolicy uint8

const (
	// PushdownAdaptive applies the paper's cost equation per chunk:
	// selectivity × compressibility < 1 (§4.3). Fusion's default.
	PushdownAdaptive PushdownPolicy = iota
	// PushdownAlways pushes every projection down (ablation).
	PushdownAlways
	// PushdownNever fetches every chunk to the coordinator (ablation).
	PushdownNever
)

func (p PushdownPolicy) String() string {
	switch p {
	case PushdownAdaptive:
		return "adaptive"
	case PushdownAlways:
		return "always"
	default:
		return "never"
	}
}

// ExecMode selects the query execution strategy.
type ExecMode uint8

const (
	// ExecPushdown is Fusion's two-stage distributed execution.
	ExecPushdown ExecMode = iota
	// ExecReassemble is the baseline: fetch the needed chunk bytes to the
	// coordinator (reassembling splits), then process locally.
	ExecReassemble
)

// Options configure a Store.
type Options struct {
	// Params is the erasure code; default RS(9,6).
	Params erasure.Params
	// Layout selects FAC or fixed-block coding on Put.
	Layout LayoutMode
	// Exec selects the query execution strategy.
	Exec ExecMode
	// Pushdown is the projection pushdown policy under ExecPushdown.
	Pushdown PushdownPolicy
	// StorageBudget is the FAC overhead budget relative to optimal; if
	// Algorithm 1 exceeds it, Put falls back to fixed blocks (§4.2).
	// Default 0.02 (the paper's 2%).
	StorageBudget float64
	// FixedBlockSize is the block size for fixed-block coding; default
	// 100MB (§6), scaled down by benchmarks alongside their datasets.
	FixedBlockSize uint64
	// AggregatePushdown enables computing aggregates in-situ on storage
	// nodes (partial accumulators instead of values cross the network).
	// This is the aggregate-pushdown extension the paper lists as future
	// work (§5); it applies to aggregate columns that are not also plainly
	// projected.
	AggregatePushdown bool
	// QueryWorkers bounds the worker pool that fans the filter stage out
	// across row groups and the projection/aggregation stage out across
	// chunks. 0 means runtime.GOMAXPROCS; 1 runs queries serially. Results
	// are merged in row-group/chunk order, so query output is identical at
	// every pool size.
	QueryWorkers int
	// Retry bounds the transport retry/backoff/deadline behavior of every
	// coordinator→node call. The zero value applies cluster.DefaultPolicy
	// semantics: 3 attempts, exponential backoff with jitter, ErrNodeDown
	// fails fast (the reconstruction fan-out is the better retry).
	Retry cluster.Policy
	// HedgeAfter, when positive, hedges block reads: if a direct read has
	// not completed within this threshold, Get fires the RS reconstruction
	// fan-out concurrently and takes whichever finishes first. 0 disables
	// hedging (the reconstruction still runs, but only after the direct
	// read has failed outright).
	HedgeAfter time.Duration
	// Health, when set, receives per-node failure/retry/hedge counters. New
	// installs a fresh recorder when nil, exposed via Store.Health.
	Health *metrics.Health
	// Metrics, when set, receives per-(op, node) latency histograms from
	// every coordinator→node RPC and every top-level operation — the data
	// behind /debug/fusionz and fusion-bench's percentile tables. Nil (the
	// default) disables all timing.
	Metrics *metrics.HistogramSet
	// SkipChecksumVerify disables the coordinator-side end-to-end checksum
	// checks on reads (node replies and pre-decode survivor verification).
	// Node-side at-rest verification still runs. Intended for benchmarking
	// the verification cost, not for production use.
	SkipChecksumVerify bool
	// Breaker, when set, is the per-node circuit breaker consulted by every
	// coordinator→node call: a node whose circuit is open fails fast with
	// ErrNodeDown instead of burning a transport attempt. Nil disables
	// circuit breaking.
	Breaker *cluster.Breaker
	// Repair bounds the repair queue and the background repair manager.
	// Zero values apply defaults (see RepairConfig).
	Repair RepairConfig
	// CacheBytes is the byte budget of the coordinator's read cache for
	// verified block bytes and decoded column chunks, shared across both
	// data tiers. It also arms the singleflight layer that dedups
	// concurrent identical block fetches and RS reconstructions. 0 (the
	// default) disables the data tiers and singleflight; the metadata
	// cache below stays on regardless.
	CacheBytes int64
	// MetaCacheEntries bounds the coordinator's ObjectMeta cache (hot
	// objects skip the metakv quorum read). 0 applies the default (4096
	// objects). The tier is epoch-safe: an overwrite or delete refreshes
	// or drops the entry at its commit point, and every stale-suspicious
	// read re-resolves against the quorum.
	MetaCacheEntries int
	// DisableBatch turns off scatter-gather RPC batching: every filter,
	// projection, aggregate and block read is dispatched as its own request
	// frame (the pre-batching behavior). Intended for A/B benchmarks of the
	// batching layer; leave false in production.
	DisableBatch bool
	// Sched, when set, is the admission scheduler every top-level operation
	// (Get, Put, Delete, Query) passes through before doing any work:
	// per-tenant weighted-fair queuing under global and per-class concurrency
	// caps, with explicit load shedding (sched.ErrOverloaded) once a tenant's
	// queue is full or the estimated wait exceeds the caller's deadline. Nil
	// (the default) disables admission control entirely.
	Sched *sched.Scheduler
	// Tenant is the tenant this store's operations are accounted to by the
	// admission scheduler when the caller's context carries none
	// (sched.WithTenant overrides it per call). Empty means
	// sched.DefaultTenant.
	Tenant string
	// Seed drives stripe placement.
	Seed int64
	// Model, when set, computes simulated query latencies from the
	// operation cost sheets (simnet experiments). Nil for TCP deployments.
	Model *simnet.LatencyModel
}

// FusionOptions returns Fusion's configuration: FAC coding, two-stage
// pushdown execution, adaptive cost model, 2% budget.
func FusionOptions() Options {
	return Options{
		Params:         erasure.RS96,
		Layout:         LayoutFAC,
		Exec:           ExecPushdown,
		Pushdown:       PushdownAdaptive,
		StorageBudget:  0.02,
		FixedBlockSize: 100 << 20,
		Seed:           1,
	}
}

// BaselineOptions returns the paper's baseline: fixed-block coding with
// coordinator-side reassembly (MinIO/Ceph-representative, §6), including
// the footer-pruning optimization.
func BaselineOptions() Options {
	o := FusionOptions()
	o.Layout = LayoutFixed
	o.Exec = ExecReassemble
	o.Pushdown = PushdownNever
	return o
}

// Store is an analytics object store client/coordinator bound to a cluster.
// Every node can act as coordinator; a Store embodies the coordinator role
// for the requests routed to it (§5: requests route to a node by object-name
// hash — see CoordinatorFor).
type Store struct {
	client  cluster.Client
	opts    Options
	coder   *erasure.Coder
	retry   cluster.Policy
	health  *metrics.Health
	hist    *metrics.HistogramSet
	repairs *repairQueue
	cache   *cache.Cache
	sched   *sched.Scheduler

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Store over the given cluster client.
func New(client cluster.Client, opts Options) (*Store, error) {
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Params.N > client.NumNodes() {
		return nil, fmt.Errorf("store: %v needs %d nodes, cluster has %d",
			opts.Params, opts.Params.N, client.NumNodes())
	}
	if opts.StorageBudget == 0 {
		opts.StorageBudget = 0.02
	}
	if opts.FixedBlockSize == 0 {
		opts.FixedBlockSize = 100 << 20
	}
	coder, err := erasure.NewCoder(opts.Params)
	if err != nil {
		return nil, err
	}
	health := opts.Health
	if health == nil {
		health = metrics.NewHealth()
	}
	retry := opts.Retry
	retry.Health = health
	if retry.Breaker == nil {
		retry.Breaker = opts.Breaker
	}
	return &Store{
		client:  client,
		opts:    opts,
		coder:   coder,
		retry:   retry,
		health:  health,
		hist:    opts.Metrics,
		repairs: newRepairQueue(opts.Repair.QueueLimit),
		cache: cache.New(cache.Config{
			Bytes:       opts.CacheBytes,
			MetaEntries: opts.MetaCacheEntries,
		}),
		sched: opts.Sched,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// SchedStats snapshots the admission scheduler's per-tenant counters (the
// zero value when no scheduler is configured).
func (s *Store) SchedStats() sched.Stats { return s.sched.Stats() }

// admit passes one top-level operation through the admission scheduler.
// With no scheduler configured it admits immediately. The returned release
// must be called when the operation finishes (it frees the slot and
// dispatches the next queued waiter); time spent queued is charged to the
// request span so traces show added-by-choice latency separately from
// service time.
func (s *Store) admit(ctx context.Context, sp *trace.Span, class sched.Class) (release func(), err error) {
	release, wait, err := s.sched.Acquire(ctx, s.opts.Tenant, class)
	if err != nil {
		return nil, err
	}
	if wait > 0 {
		sp.Count(trace.QueueWaitMicros, uint64(wait.Microseconds()))
	}
	return release, nil
}

// Health returns the store's per-node failure/retry/hedge counters.
func (s *Store) Health() *metrics.Health { return s.health }

// Breaker returns the circuit breaker guarding coordinator→node calls
// (nil when none is configured).
func (s *Store) Breaker() *cluster.Breaker { return s.retry.Breaker }

// Metrics returns the store's latency histogram set (nil unless
// Options.Metrics was set).
func (s *Store) Metrics() *metrics.HistogramSet { return s.hist }

// opKey is the histogram key for a coordinator-level operation.
func opKey(op string) metrics.Key {
	return metrics.Key{Op: "op." + op, Node: metrics.NodeNone}
}

// call is the hardened transport entry for coordinator→node RPCs: bounded
// retries with backoff and per-attempt deadlines per Options.Retry, with
// per-node health accounting, all bounded end to end by ctx — a done
// context issues no attempt, and a context deadline is stamped onto the
// request as a relative microsecond budget (rpc.Request.DeadlineMicros) so
// the node, too, can refuse or abandon expired work. When sp is non-nil the
// call charges its RPC, retry and bytes-from-node counters to that request
// span; when the store has a histogram set, the call's latency is recorded
// under the node and request kind. Both are nil by default and then cost
// nothing.
func (s *Store) call(ctx context.Context, sp *trace.Span, node int, req *rpc.Request) (*rpc.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return nil, context.DeadlineExceeded
		}
		// Round the budget up so a sub-microsecond remainder is never
		// stamped as "no deadline".
		req.DeadlineMicros = rem.Microseconds() + 1
	}
	if sp == nil && s.hist == nil {
		resp, _, err := cluster.CallRetryCtx(ctx, s.client, node, req, s.retry)
		return resp, err
	}
	start := time.Now()
	resp, attempts, err := cluster.CallRetryCtx(ctx, s.client, node, req, s.retry)
	s.hist.Observe(metrics.Key{Op: "rpc." + req.Kind.String(), Node: node}, time.Since(start))
	sp.Count(trace.RPCs, uint64(attempts))
	if isDataKind(req.Kind) {
		// Every transport attempt of a data-plane request is one network
		// round trip — a whole scatter-gather batch counts once, which is
		// exactly the economy the batching layer buys.
		sp.Count(trace.RoundTrips, uint64(attempts))
	}
	if attempts > 1 {
		sp.Count(trace.Retries, uint64(attempts-1))
	}
	if resp != nil {
		n := uint64(len(resp.Data))
		for i := range resp.Subs {
			n += uint64(len(resp.Subs[i].Data))
		}
		sp.Count(trace.BytesFromNodes, n)
	}
	return resp, err
}

// isDataKind reports whether a request kind moves or scans block data (the
// round-trip-counted data plane, as opposed to metadata and control traffic).
func isDataKind(k rpc.Kind) bool {
	switch k {
	case rpc.KindGetBlock, rpc.KindFilter, rpc.KindProject, rpc.KindAggregate, rpc.KindBatch:
		return true
	}
	return false
}

// batchOn reports whether the coordinator groups data-plane sub-requests
// into scatter-gather batch frames.
func (s *Store) batchOn() bool { return !s.opts.DisableBatch }

// callChecked is call with application errors converted to Go errors. A
// node-side deadline rejection surfaces as context.DeadlineExceeded (via
// errors.Is) so callers and the load harness classify it like any other
// expired request.
func (s *Store) callChecked(ctx context.Context, sp *trace.Span, node int, req *rpc.Request) (*rpc.Response, error) {
	resp, err := s.call(ctx, sp, node, req)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		if cluster.IsExpiredErr(resp.Err) {
			return resp, fmt.Errorf("cluster: node %d: %s: %w", node, resp.Err, context.DeadlineExceeded)
		}
		return resp, fmt.Errorf("cluster: node %d: %s", node, resp.Err)
	}
	return resp, nil
}

// Options returns the store's configuration.
func (s *Store) Options() Options { return s.opts }

// queryWorkers resolves the query-stage worker pool size.
func (s *Store) queryWorkers() int {
	if w := s.opts.QueryWorkers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// CoordinatorFor returns the node that coordinates requests for an object:
// hash(name) mod cluster size (§5: no dedicated coordinator).
func (s *Store) CoordinatorFor(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32()) % s.client.NumNodes()
}

// nodeOrder returns all node ids in a fresh random order — the candidate
// list for a stripe's placement (§4.2: blocks go to randomly chosen nodes).
func (s *Store) nodeOrder() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Perm(s.client.NumNodes())
}

// blockID names a stored block. The epoch makes every write attempt
// write-aside: a failed or crashed Put's blocks can never collide with (or
// be mistaken for) a later attempt's, because epochs are never reused.
func blockID(object string, epoch uint64, stripe, block int) string {
	return fmt.Sprintf("%s/e%d/s%d/b%d", object, epoch, stripe, block)
}

// parseBlockID inverts blockID. Object names may themselves contain "/", so
// the fixed-shape suffix is parsed from the right.
func parseBlockID(id string) (object string, epoch uint64, stripe, block int, ok bool) {
	rest := id
	for i := 0; i < 3; i++ {
		slash := strings.LastIndexByte(rest, '/')
		if slash < 0 {
			return "", 0, 0, 0, false
		}
		seg := rest[slash+1:]
		rest = rest[:slash]
		var n uint64
		var err error
		switch {
		case i == 0 && strings.HasPrefix(seg, "b"):
			n, err = strconv.ParseUint(seg[1:], 10, 32)
			block = int(n)
		case i == 1 && strings.HasPrefix(seg, "s"):
			n, err = strconv.ParseUint(seg[1:], 10, 32)
			stripe = int(n)
		case i == 2 && strings.HasPrefix(seg, "e"):
			epoch, err = strconv.ParseUint(seg[1:], 10, 64)
		default:
			return "", 0, 0, 0, false
		}
		if err != nil {
			return "", 0, 0, 0, false
		}
	}
	if rest == "" {
		return "", 0, 0, 0, false
	}
	return rest, epoch, stripe, block, true
}

// metaKey is the quorum-register key holding an object's metadata.
func metaKey(object string) string { return "meta/" + object }

// epochKey is the quorum-register key of an object's epoch allocator; the
// register's version is the counter, its value stays empty.
func epochKey(object string) string { return "epoch/" + object }

// allocEpoch reserves the object's next write epoch on a metadata-replica
// majority. The reservation is durable before any block carries the epoch,
// so a crashed attempt's epoch is burned, never recycled.
func (s *Store) allocEpoch(name string) (uint64, error) {
	kv, err := s.metaKV(name)
	if err != nil {
		return 0, err
	}
	epoch, err := kv.Incr(epochKey(name))
	if err != nil {
		return 0, fmt.Errorf("store: allocating epoch for %q: %w", name, err)
	}
	return epoch, nil
}

// metaBlockID names the node-side block backing an object's metadata
// replica (for storage audits and tests).
func metaBlockID(object string) string { return metakv.BlockID(metaKey(object)) }

// metaKV returns the quorum register over the object's k+1 metadata
// replicas (§5; the ZooKeeper/etcd-style service of the paper's future
// work, here an ABD majority register). It tolerates floor(k/2) metadata
// replica failures with linearizable reads — in particular, a replica that
// missed an overwrite can never serve stale metadata pointing at
// garbage-collected blocks.
func (s *Store) metaKV(name string) (*metakv.KV, error) {
	return metakv.New(s.client, s.metaReplicaNodes(name))
}

// metaReplicaNodes returns the k+1 nodes that hold an object's metadata
// (§5: the location map is replicated to k+1 nodes).
func (s *Store) metaReplicaNodes(name string) []int {
	n := s.client.NumNodes()
	first := s.CoordinatorFor(name)
	count := s.opts.Params.K + 1
	if count > n {
		count = n
	}
	nodes := make([]int, count)
	for i := range nodes {
		nodes[i] = (first + i) % n
	}
	return nodes
}

// cacheOn reports whether the data tiers (block bytes, decoded chunks) and
// the singleflight layer are enabled.
func (s *Store) cacheOn() bool { return s.opts.CacheBytes > 0 }

// cacheMeta stores metadata in the coordinator cache.
func (s *Store) cacheMeta(m *ObjectMeta) {
	s.cache.PutMeta(m.Name, m)
}

// cachedMeta returns cached metadata, if any.
func (s *Store) cachedMeta(name string) *ObjectMeta {
	if v, ok := s.cache.GetMeta(name); ok {
		return v.(*ObjectMeta)
	}
	return nil
}

// CacheStats snapshots the coordinator cache counters (tier hit rates,
// residency, singleflight dedups, executed RS decodes).
func (s *Store) CacheStats() metrics.CacheStats { return s.cache.Stats() }

// blockKeyOf is the cache key of one stored block's verified bytes.
func blockKeyOf(meta *ObjectMeta, stripe, bin int) cache.Key {
	return cache.Key{Object: meta.Name, Epoch: meta.Epoch, Kind: cache.KindBlock, A: stripe, B: bin}
}

// chunkKeyOf is the cache key of one decoded column chunk.
func chunkKeyOf(meta *ObjectMeta, rowGroup, col int) cache.Key {
	return cache.Key{Object: meta.Name, Epoch: meta.Epoch, Kind: cache.KindChunk, A: rowGroup, B: col}
}

// Objects lists the names of objects known to this coordinator.
func (s *Store) Objects() []string {
	return s.cache.MetaNames()
}
