package store

import (
	"reflect"
	"testing"
)

// TestQueryParallelMatchesSerial is the determinism guarantee of the query
// fan-out: for every execution configuration, a store running the stage
// worker pool at size 8 must produce Results identical to a store running
// it at size 1 (serial), including stats and the simulated latency sample —
// only wall-clock time may differ.
func TestQueryParallelMatchesSerial(t *testing.T) {
	queries := []string{
		"SELECT id, price FROM obj WHERE qty < 10",
		"SELECT * FROM obj WHERE qty < 25 AND flag = 'A'",
		"SELECT COUNT(*), SUM(qty), AVG(price) FROM obj WHERE qty < 40",
		"SELECT flag, SUM(price) FROM obj WHERE id < 900",
		"SELECT id FROM obj WHERE qty < 12 LIMIT 7",
		"SELECT comment FROM obj WHERE flag = 'R' OR qty < 3",
	}
	configs := []struct {
		name string
		opts func() Options
	}{
		{"fusion", fusionTestOptions},
		{"baseline", BaselineOptions},
		{"aggpush", func() Options {
			o := fusionTestOptions()
			o.AggregatePushdown = true
			return o
		}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			data, _, _ := makeObject(t, 4, 400, 99)
			serialOpts := cfg.opts()
			serialOpts.QueryWorkers = 1
			parallelOpts := cfg.opts()
			parallelOpts.QueryWorkers = 8
			serial, _ := newSimStore(t, serialOpts)
			parallel, _ := newSimStore(t, parallelOpts)
			if _, err := serial.Put("obj", data); err != nil {
				t.Fatal(err)
			}
			if _, err := parallel.Put("obj", data); err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				want, err := serial.Query(q)
				if err != nil {
					t.Fatalf("%s (serial): %v", q, err)
				}
				got, err := parallel.Query(q)
				if err != nil {
					t.Fatalf("%s (parallel): %v", q, err)
				}
				want.Stats.Wall, got.Stats.Wall = 0, 0
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s: parallel result differs from serial\nserial:   %+v\nparallel: %+v", q, want, got)
				}
			}
		})
	}
}
