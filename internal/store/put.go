package store

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/fac"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/metakv"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/trace"
)

// PutStats reports how an object was stored.
type PutStats struct {
	// Mode is the layout actually used (FAC may fall back to fixed).
	Mode LayoutMode
	// FellBack reports that the FAC budget was exceeded and fixed-block
	// coding was used instead.
	FellBack bool
	// LayoutTime is the stripe-construction time (the Fig. 16c numerator).
	LayoutTime time.Duration
	// TotalTime is the wall-clock Put duration.
	TotalTime time.Duration
	// StoredBytes is the total bytes persisted (data + parity).
	StoredBytes uint64
	// OverheadVsOptimal is the storage overhead relative to optimal.
	OverheadVsOptimal float64
	// Stripes is the stripe count.
	Stripes int
}

// Put stores an lpq analytics object. Under LayoutFAC the coordinator
// parses the object's footer, runs the stripe construction algorithm over
// the column-chunk sizes (never splitting a chunk), erasure-codes each
// stripe and scatters its blocks, falling back to fixed-block coding when
// the storage budget cannot be met (§4.2, §5 "Storing Objects").
func (s *Store) Put(name string, data []byte) (*PutStats, error) {
	return s.PutContext(context.Background(), name, data)
}

// PutContext is Put under a (possibly traced) context: the span records
// layout construction, per-stripe placement RPCs and metadata replication.
func (s *Store) PutContext(ctx context.Context, name string, data []byte) (*PutStats, error) {
	sp := trace.FromContext(ctx).Child("store.Put")
	defer sp.End()
	release, err := s.admit(ctx, sp, sched.ClassPut)
	if err != nil {
		return nil, err
	}
	defer release()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("Put"), time.Since(start))
		}(time.Now())
	}
	start := time.Now()
	footer, err := lpq.ParseFooter(data)
	if err != nil {
		return nil, fmt.Errorf("store: %s is not a valid lpq object: %w", name, err)
	}
	items, err := buildItems(data, footer)
	if err != nil {
		return nil, err
	}
	meta := &ObjectMeta{
		Name:   name,
		Size:   uint64(len(data)),
		Footer: footer,
		Items:  items,
	}
	// Overwrites are fresh inserts (§5): new blocks are written under a
	// fresh epoch, the metadata swap publishes them, and only then is the
	// previous version garbage-collected.
	var prev *ObjectMeta
	if old, err := s.Meta(name); err == nil {
		prev = old
		meta.Version = old.Version + 1
	}
	// Reserve the write epoch on a quorum before any block exists. If this
	// attempt dies, the epoch is burned — a retry allocates a higher one, so
	// its blocks never collide with this attempt's debris.
	epoch, err := s.allocEpoch(name)
	if err != nil {
		return nil, err
	}
	meta.Epoch = epoch
	stats := &PutStats{}

	mode := s.opts.Layout
	var layout fac.Layout
	if mode == LayoutFAC {
		lsp := sp.Child("layout")
		layoutStart := time.Now()
		l, err := fac.ConstructWithBudget(s.opts.Params.N, s.opts.Params.K, itemSizes(items), s.opts.StorageBudget)
		stats.LayoutTime = time.Since(layoutStart)
		lsp.End()
		switch {
		case err == nil:
			layout = l
		case errors.Is(err, fac.ErrBudgetExceeded):
			mode = LayoutFixed
			stats.FellBack = true
		default:
			return nil, err
		}
	}

	meta.Mode = mode
	// Every block this attempt scatters is recorded so a failure anywhere
	// before the commit point can roll the whole attempt back instead of
	// stranding blocks on the nodes that did accept the write.
	var placed []placedBlock
	if mode == LayoutFAC {
		if err := s.putFAC(ctx, sp, meta, data, layout, stats, &placed); err != nil {
			s.undoPlacement(placed)
			return nil, err
		}
	} else {
		if err := s.putFixed(ctx, sp, meta, data, stats, &placed); err != nil {
			s.undoPlacement(placed)
			return nil, err
		}
	}
	// Overhead relative to the optimal footprint size × n/k, from the bytes
	// actually persisted (data blocks are stored unpadded in both modes;
	// parity blocks are full-capacity).
	optimal := float64(len(data)) * float64(s.opts.Params.N) / float64(s.opts.Params.K)
	if optimal > 0 {
		stats.OverheadVsOptimal = float64(stats.StoredBytes)/optimal - 1
	}
	stats.Mode = mode
	stats.Stripes = len(meta.Stripes)

	// The metadata publish is the commit point: once the new metadata lands
	// on a replica majority, every subsequent read observes this epoch's
	// blocks. Before it, the attempt is invisible and fully rolled back on
	// failure; after it, the attempt is durable and the remaining steps
	// (commit fan-out, previous-version GC) are best-effort — orphan
	// reconciliation finishes either if the coordinator dies here.
	// Cancellation checkpoint at the commit point: a Put whose caller gave
	// up before the metadata publish rolls the attempt back instead of
	// committing an object nobody is waiting for. Past this check the
	// publish and cleanup run to completion.
	if err := ctx.Err(); err != nil {
		s.undoPlacement(placed)
		return nil, err
	}
	rsp := sp.Child("replicate-meta")
	err = s.replicateMeta(meta)
	rsp.End()
	if err != nil {
		s.undoPlacement(placed)
		return nil, err
	}
	// Refresh the coordinator cache at the commit point, before the GC of
	// the previous version can run: the meta tier flips to the new epoch
	// and every data entry of older epochs is dropped, so a cached reader
	// can never be handed pre-overwrite bytes after this line. (Entries
	// are epoch-keyed anyway — this ordering makes the invalidation
	// prompt, the keying makes it safe.)
	s.cacheMeta(meta)
	s.cache.InvalidateObject(meta.Name, meta.Epoch)
	s.commitBlocks(sp, meta)
	if prev != nil {
		s.deleteBlocks(prev)
	}
	stats.TotalTime = time.Since(start)
	return stats, nil
}

// placedBlock records one block this Put attempt wrote, for rollback.
type placedBlock struct {
	node int
	id   string
}

// undoPlacement rolls back a failed attempt's scattered blocks, best
// effort: a node that is down keeps its debris, which the orphan
// reconciler garbage-collects later (the attempt's epoch can never commit,
// so the debris is unreachable either way).
func (s *Store) undoPlacement(placed []placedBlock) {
	for _, pb := range placed {
		_, _ = s.call(context.Background(), nil, pb.node, &rpc.Request{Kind: rpc.KindDeleteBlock, BlockID: pb.id})
	}
}

// commitBlocks fans KindCommitObject out to every node holding one of the
// object's blocks, flipping them pending→committed. Best effort and
// idempotent: the metadata publish already made the write durable, and the
// reconciler re-commits any node this fan-out misses.
func (s *Store) commitBlocks(sp *trace.Span, meta *ObjectMeta) {
	nodes := map[int]bool{}
	for _, st := range meta.Stripes {
		for _, n := range st.Nodes {
			nodes[n] = true
		}
	}
	csp := sp.Child("commit-blocks")
	defer csp.End()
	for n := range nodes {
		// Post-commit fan-out is best effort and survives caller
		// cancellation: the write is already durable.
		_, _ = s.call(context.Background(), csp, n, &rpc.Request{
			Kind: rpc.KindCommitObject, Object: meta.Name, Epoch: meta.Epoch,
		})
	}
}

// putFAC encodes and stores the object under a FAC layout.
func (s *Store) putFAC(ctx context.Context, sp *trace.Span, meta *ObjectMeta, data []byte, layout fac.Layout, stats *PutStats, placed *[]placedBlock) error {
	p := s.opts.Params
	meta.ItemLocs = facLayoutToMeta(layout, meta.Items)
	for si, st := range layout.Stripes {
		sm := StripeMeta{
			Capacity:  st.Capacity,
			Nodes:     make([]int, p.N),
			BlockIDs:  make([]string, p.N),
			DataLens:  make([]uint64, p.K),
			Checksums: make([]uint32, p.N),
		}
		// Materialize the k data bins (concatenated chunk bytes, unpadded).
		bins := make([][]byte, p.N)
		for j := 0; j < p.K; j++ {
			bin := make([]byte, 0, st.BinSizes[j])
			for _, itemIdx := range st.Bins[j] {
				it := meta.Items[itemIdx]
				bin = append(bin, data[it.Offset:it.Offset+it.Size]...)
			}
			bins[j] = bin
			sm.DataLens[j] = uint64(len(bin))
		}
		// Parity is computed over capacity-padded bins; stored blocks keep
		// their true length (padding is implicit zeros, §4.2 Fig. 9).
		if st.Capacity > 0 {
			padded := make([][]byte, p.N)
			for j := 0; j < p.K; j++ {
				padded[j] = padTo(bins[j], st.Capacity)
			}
			for j := p.K; j < p.N; j++ {
				padded[j] = make([]byte, st.Capacity)
			}
			if err := s.coder.Encode(padded); err != nil {
				return fmt.Errorf("store: encoding stripe %d: %w", si, err)
			}
			for j := p.K; j < p.N; j++ {
				bins[j] = padded[j]
			}
		} else {
			for j := p.K; j < p.N; j++ {
				bins[j] = []byte{}
			}
		}
		if err := s.placeStripe(ctx, sp, meta, si, bins, &sm, stats, placed); err != nil {
			return err
		}
		meta.Stripes = append(meta.Stripes, sm)
	}
	return nil
}

// putFixed encodes and stores the object as fixed-size blocks (the
// conventional layout; also the FAC budget fallback).
func (s *Store) putFixed(ctx context.Context, sp *trace.Span, meta *ObjectMeta, data []byte, stats *PutStats, placed *[]placedBlock) error {
	p := s.opts.Params
	bs := s.opts.FixedBlockSize
	// Objects smaller than one full stripe shrink the block size so the
	// object still spreads over k shards (MinIO-style), instead of paying
	// for full-size parity blocks.
	if perShard := (uint64(len(data)) + uint64(p.K) - 1) / uint64(p.K); perShard < bs {
		bs = perShard
		if bs == 0 {
			bs = 1
		}
	}
	meta.BlockSize = bs
	fb := fac.NewFixedBlockLayout(uint64(len(data)), bs, p.K)
	for si := 0; si < fb.NumStripes; si++ {
		sm := StripeMeta{
			Capacity:  bs,
			Nodes:     make([]int, p.N),
			BlockIDs:  make([]string, p.N),
			DataLens:  make([]uint64, p.K),
			Checksums: make([]uint32, p.N),
		}
		// Data blocks are stored unpadded (the tail block is short); parity
		// is computed over blocks zero-extended to the fixed size.
		blocks := make([][]byte, p.N)
		for j := 0; j < p.K; j++ {
			start := (uint64(si)*uint64(p.K) + uint64(j)) * bs
			var blk []byte
			if start < uint64(len(data)) {
				end := min(start+bs, uint64(len(data)))
				blk = data[start:end]
			}
			blocks[j] = blk
			sm.DataLens[j] = uint64(len(blk))
		}
		padded := make([][]byte, p.N)
		for j := 0; j < p.K; j++ {
			padded[j] = padTo(blocks[j], bs)
		}
		for j := p.K; j < p.N; j++ {
			padded[j] = make([]byte, bs)
			blocks[j] = padded[j]
		}
		if err := s.coder.Encode(padded); err != nil {
			return fmt.Errorf("store: encoding stripe %d: %w", si, err)
		}
		if err := s.placeStripe(ctx, sp, meta, si, blocks, &sm, stats, placed); err != nil {
			return err
		}
		meta.Stripes = append(meta.Stripes, sm)
	}
	return nil
}

// placeStripe writes a stripe's n blocks to n distinct nodes, trying
// candidates in random order and skipping nodes that refuse the write
// (down or full) — Put succeeds as long as n healthy nodes exist. Blocks go
// out as PrepareBlock (phase one): the node verifies the payload CRC,
// stores the block tagged pending under (object, epoch), and serves it like
// any other block; the epoch only becomes reachable at the metadata commit
// point. Every accepted write is appended to tracker for rollback.
func (s *Store) placeStripe(ctx context.Context, sp *trace.Span, meta *ObjectMeta, si int, blocks [][]byte, sm *StripeMeta, stats *PutStats, tracker *[]placedBlock) error {
	ssp := sp.Child("place-stripe")
	defer ssp.End()
	p := s.opts.Params
	candidates := s.nodeOrder()
	next := 0
	for j := 0; j < p.N; j++ {
		// A cancelled or expired Put must surface the context error, not
		// burn through every candidate into ErrTooManyFailures.
		if err := ctx.Err(); err != nil {
			return err
		}
		id := blockID(meta.Name, meta.Epoch, si, j)
		crc := cluster.Checksum(blocks[j])
		placed := false
		for ; next < len(candidates); next++ {
			node := candidates[next]
			if _, err := s.callChecked(ctx, ssp, node, &rpc.Request{
				Kind: rpc.KindPrepareBlock, BlockID: id, Data: blocks[j],
				Object: meta.Name, Epoch: meta.Epoch, Crc: crc,
			}); err != nil {
				continue // unhealthy candidate: try the next
			}
			sm.Nodes[j] = node
			sm.BlockIDs[j] = id
			sm.Checksums[j] = crc
			*tracker = append(*tracker, placedBlock{node: node, id: id})
			stats.StoredBytes += uint64(len(blocks[j]))
			next++
			placed = true
			break
		}
		if !placed {
			// A stripe needs n distinct healthy nodes (no degraded writes):
			// running out of candidates is the write-side "too many
			// failures", the same sentinel degraded reads exhaust into.
			return fmt.Errorf("%w: stripe %d block %d: no healthy node left (%d candidates)", ErrTooManyFailures, si, j, len(candidates))
		}
	}
	return nil
}

func padTo(b []byte, size uint64) []byte {
	if uint64(len(b)) == size {
		return b
	}
	out := make([]byte, size)
	copy(out, b)
	return out
}

// replicateMeta publishes the object metadata through the k+1-replica
// quorum register (§5): the write lands on a majority, so every subsequent
// quorum read observes it even if a minority of replicas missed it.
func (s *Store) replicateMeta(meta *ObjectMeta) error {
	enc, err := EncodeMeta(meta)
	if err != nil {
		return err
	}
	kv, err := s.metaKV(meta.Name)
	if err != nil {
		return err
	}
	if _, err := kv.Put(metaKey(meta.Name), enc); err != nil {
		return fmt.Errorf("store: publishing metadata for %q: %w", meta.Name, err)
	}
	return nil
}

// Meta returns the object's metadata, performing a quorum read (with read
// repair of stale replicas) when it is not cached.
func (s *Store) Meta(name string) (*ObjectMeta, error) {
	if m := s.cachedMeta(name); m != nil {
		return m, nil
	}
	kv, err := s.metaKV(name)
	if err != nil {
		return nil, err
	}
	enc, _, err := kv.Get(metaKey(name))
	if err != nil {
		return nil, fmt.Errorf("store: object %q not found: %w", name, err)
	}
	m, err := DecodeMeta(enc)
	if err != nil {
		return nil, err
	}
	s.cacheMeta(m)
	return m, nil
}

// deleteBlocks removes an object version's data/parity blocks, best
// effort: a down node's blocks are simply orphaned.
func (s *Store) deleteBlocks(meta *ObjectMeta) {
	for _, st := range meta.Stripes {
		for j, id := range st.BlockIDs {
			_, _ = s.call(context.Background(), nil, st.Nodes[j], &rpc.Request{Kind: rpc.KindDeleteBlock, BlockID: id})
		}
	}
}

// Delete removes an object's blocks and metadata replicas. The quorum is
// consulted directly — deleting from a cached (possibly superseded) view
// would miss the blocks of a newer epoch written through another
// coordinator, stranding them as orphans.
func (s *Store) Delete(name string) error {
	return s.DeleteContext(context.Background(), name)
}

// DeleteContext is Delete under a context. Cancellation is observed before
// any destructive step; once block deletion has begun it runs to completion
// (a half-cancelled delete would only strand orphans for the reconciler).
func (s *Store) DeleteContext(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	release, err := s.admit(ctx, nil, sched.ClassPut)
	if err != nil {
		return err
	}
	defer release()
	meta, err := s.metaQuorum(name)
	if err != nil {
		if errors.Is(err, metakv.ErrNotFound) {
			return fmt.Errorf("store: object %q not found: %w", name, err)
		}
		return err
	}
	s.deleteBlocks(meta)
	if kv, kerr := s.metaKV(name); kerr == nil {
		_ = kv.Delete(metaKey(name)) // best effort; blocks are already gone
	}
	// Tombstone the cache: drop the meta entry and every data entry of
	// every epoch, so no reader can be served bytes of a deleted object.
	s.cache.DeleteMeta(name)
	s.cache.InvalidateObject(name, 0)
	return nil
}
