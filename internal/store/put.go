package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/fac"
	"github.com/fusionstore/fusion/internal/metakv"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/trace"
)

// PutStats reports how an object was stored.
type PutStats struct {
	// Mode is the layout actually used (FAC may fall back to fixed).
	Mode LayoutMode
	// FellBack reports that the FAC budget was exceeded and fixed-block
	// coding was used instead.
	FellBack bool
	// LayoutTime is the stripe-construction time (the Fig. 16c numerator).
	// When the FAC attempt falls back it includes the fixed-layout pass too.
	LayoutTime time.Duration
	// TotalTime is the wall-clock Put duration.
	TotalTime time.Duration
	// StoredBytes is the total bytes persisted (data + parity).
	StoredBytes uint64
	// OverheadVsOptimal is the storage overhead relative to optimal.
	OverheadVsOptimal float64
	// Stripes is the stripe count.
	Stripes int
	// PeakPipelineBytes is the high-water mark of coordinator buffering the
	// streaming pipeline held at once — the pooled bin/parity arenas of the
	// stripes in flight. The pipeline keeps at most two stripes resident, so
	// this is O(stripe), never O(object).
	PeakPipelineBytes uint64
	// MaxStripeBytes is the largest single stripe's arena footprint (k data
	// bins at capacity plus n−k parity blocks), the unit PeakPipelineBytes
	// is bounded in multiples of.
	MaxStripeBytes uint64
}

// Put stores an lpq analytics object. Under LayoutFAC the coordinator
// parses the object's footer, runs the stripe construction algorithm over
// the column-chunk sizes (never splitting a chunk), erasure-codes each
// stripe and scatters its blocks, falling back to fixed-block coding when
// the storage budget cannot be met (§4.2, §5 "Storing Objects").
func (s *Store) Put(name string, data []byte) (*PutStats, error) {
	return s.PutContext(context.Background(), name, data)
}

// PutContext is Put under a (possibly traced) context. It is a thin wrapper
// over PutReader: in-memory bytes and a streamed source run the identical
// pipeline, so the two entry points produce bit-identical blocks and
// metadata by construction.
func (s *Store) PutContext(ctx context.Context, name string, data []byte) (*PutStats, error) {
	return s.PutReader(ctx, name, bytes.NewReader(data), uint64(len(data)))
}

// PutReader stores an lpq object of exactly size bytes read from r, without
// ever materializing the whole object on the coordinator. The pipeline is
// footer-parse (tail probe) → FAC layout (from footer sizes alone) →
// per-stripe gather + erasure encode → scatter, with the gather/encode of
// stripe i+1 overlapped with the scatter of stripe i, so at most two
// stripes of pooled arenas are resident at once.
//
// Bounded memory requires random access (the lpq footer lives at the file
// tail): when r implements io.ReaderAt the body is read stripe by stripe;
// a purely sequential reader is materialized once and fed through the same
// pipeline. The two-phase epoch protocol, rollback on failure, CRCs at
// every layer and cache invalidation are identical to the in-memory path.
func (s *Store) PutReader(ctx context.Context, name string, r io.Reader, size uint64) (*PutStats, error) {
	sp := trace.FromContext(ctx).Child("store.Put")
	defer sp.End()
	release, err := s.admit(ctx, sp, sched.ClassPut)
	if err != nil {
		return nil, err
	}
	defer release()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("Put"), time.Since(start))
		}(time.Now())
	}
	start := time.Now()

	src, err := newPutSource(r, size)
	if err != nil {
		return nil, fmt.Errorf("store: reading source for %s: %w", name, err)
	}
	footer, footerSize, err := src.parseFooter()
	if err != nil {
		return nil, fmt.Errorf("store: %s is not a valid lpq object: %w", name, err)
	}
	items, err := buildItemsSized(size, footerSize, footer)
	if err != nil {
		return nil, err
	}
	meta := &ObjectMeta{
		Name:   name,
		Size:   size,
		Footer: footer,
		Items:  items,
	}
	// Reserve the write epoch on a quorum before any block exists. If this
	// attempt dies, the epoch is burned — a retry allocates a higher one, so
	// its blocks never collide with this attempt's debris.
	epoch, err := s.allocEpoch(name)
	if err != nil {
		return nil, err
	}
	meta.Epoch = epoch
	stats := &PutStats{}

	// Layout selection. The layout span and LayoutTime cover the whole pass
	// — including the fixed-layout fallback when the FAC attempt exceeds the
	// budget — so /debug/fusionz put timings account every construction that
	// actually ran. The plans are derived from footer sizes alone: the whole
	// layout exists before a single body byte is resident.
	mode := s.opts.Layout
	lsp := sp.Child("layout")
	layoutStart := time.Now()
	var plans []stripePlan
	if mode == LayoutFAC {
		l, err := fac.ConstructWithBudget(s.opts.Params.N, s.opts.Params.K, itemSizes(items), s.opts.StorageBudget)
		switch {
		case err == nil:
			meta.ItemLocs = facLayoutToMeta(l, items)
			plans = facStripePlans(l, items)
		case errors.Is(err, fac.ErrBudgetExceeded):
			mode = LayoutFixed
			stats.FellBack = true
		default:
			stats.LayoutTime = time.Since(layoutStart)
			lsp.End()
			return nil, err
		}
	}
	if mode == LayoutFixed {
		bs := s.fixedBlockSizeFor(size)
		meta.BlockSize = bs
		plans = fixedStripePlans(size, bs, s.opts.Params.K)
	}
	stats.LayoutTime = time.Since(layoutStart)
	lsp.End()
	meta.Mode = mode

	// Every block this attempt scatters is recorded so a failure anywhere
	// before the commit point can roll the whole attempt back instead of
	// stranding blocks on the nodes that did accept the write.
	var placed []placedBlock
	if err := s.streamStripes(ctx, sp, meta, src, plans, stats, &placed); err != nil {
		s.undoPlacement(placed)
		return nil, err
	}
	// Overhead relative to the optimal footprint size × n/k, from the bytes
	// actually persisted (data blocks are stored unpadded in both modes;
	// parity blocks are full-capacity).
	optimal := float64(size) * float64(s.opts.Params.N) / float64(s.opts.Params.K)
	if optimal > 0 {
		stats.OverheadVsOptimal = float64(stats.StoredBytes)/optimal - 1
	}
	stats.Mode = mode
	stats.Stripes = len(meta.Stripes)

	// Cancellation checkpoint at the commit point: a Put whose caller gave
	// up before the metadata publish rolls the attempt back instead of
	// committing an object nobody is waiting for. Past this check the
	// publish and cleanup run to completion.
	if err := ctx.Err(); err != nil {
		s.undoPlacement(placed)
		return nil, err
	}
	// Overwrites are fresh inserts (§5): new blocks are written under a
	// fresh epoch, the metadata swap publishes them, and only then is the
	// previous version garbage-collected. The previous version is resolved
	// from the metadata quorum here at the commit point — never from the
	// coordinator cache. A cache-served (possibly superseded) prev would let
	// two concurrent overwriters publish the same Version+1 and leave the
	// real previous epoch's blocks stranded while re-deleting long-gone
	// ones; the quorum read pins prev to the version this publish actually
	// supersedes.
	var prev *ObjectMeta
	if old, err := s.metaQuorum(name); err == nil {
		prev = old
		meta.Version = old.Version + 1
	}

	// The metadata publish is the commit point: once the new metadata lands
	// on a replica majority, every subsequent read observes this epoch's
	// blocks. Before it, the attempt is invisible and fully rolled back on
	// failure; after it, the attempt is durable and the remaining steps
	// (commit fan-out, previous-version GC) are best-effort — orphan
	// reconciliation finishes either if the coordinator dies here.
	rsp := sp.Child("replicate-meta")
	err = s.replicateMeta(meta)
	rsp.End()
	if err != nil {
		s.undoPlacement(placed)
		return nil, err
	}
	// Refresh the coordinator cache at the commit point, before the GC of
	// the previous version can run: the meta tier flips to the new epoch
	// and every data entry of older epochs is dropped, so a cached reader
	// can never be handed pre-overwrite bytes after this line. (Entries
	// are epoch-keyed anyway — this ordering makes the invalidation
	// prompt, the keying makes it safe.)
	s.cacheMeta(meta)
	s.cache.InvalidateObject(meta.Name, meta.Epoch)
	s.commitBlocks(sp, meta)
	if prev != nil && prev.Epoch != meta.Epoch {
		s.deleteBlocks(prev)
	}
	stats.TotalTime = time.Since(start)
	return stats, nil
}

// fixedBlockSizeFor resolves the fixed-layout block size for an object.
// Objects smaller than one full stripe shrink the block size so the object
// still spreads over k shards (MinIO-style), instead of paying for
// full-size parity blocks.
func (s *Store) fixedBlockSizeFor(size uint64) uint64 {
	k := uint64(s.opts.Params.K)
	bs := s.opts.FixedBlockSize
	if perShard := (size + k - 1) / k; perShard < bs {
		bs = perShard
		if bs == 0 {
			bs = 1
		}
	}
	return bs
}

// placedBlock records one block this Put attempt wrote, for rollback.
type placedBlock struct {
	node int
	id   string
}

// undoPlacement rolls back a failed attempt's scattered blocks, best
// effort: a node that is down keeps its debris, which the orphan
// reconciler garbage-collects later (the attempt's epoch can never commit,
// so the debris is unreachable either way).
func (s *Store) undoPlacement(placed []placedBlock) {
	for _, pb := range placed {
		_, _ = s.call(context.Background(), nil, pb.node, &rpc.Request{Kind: rpc.KindDeleteBlock, BlockID: pb.id})
	}
}

// commitBlocks fans KindCommitObject out to every node holding one of the
// object's blocks, flipping them pending→committed. Best effort and
// idempotent: the metadata publish already made the write durable, and the
// reconciler re-commits any node this fan-out misses.
func (s *Store) commitBlocks(sp *trace.Span, meta *ObjectMeta) {
	nodes := map[int]bool{}
	for _, st := range meta.Stripes {
		for _, n := range st.Nodes {
			nodes[n] = true
		}
	}
	csp := sp.Child("commit-blocks")
	defer csp.End()
	for n := range nodes {
		// Post-commit fan-out is best effort and survives caller
		// cancellation: the write is already durable.
		_, _ = s.call(context.Background(), csp, n, &rpc.Request{
			Kind: rpc.KindCommitObject, Object: meta.Name, Epoch: meta.Epoch,
		})
	}
}

// placeStripe writes a stripe's n blocks to n distinct nodes, trying
// candidates in random order and skipping nodes that refuse the write
// (down or full) — Put succeeds as long as n healthy nodes exist. Blocks go
// out as PrepareBlock (phase one): the node verifies the payload CRC,
// stores the block tagged pending under (object, epoch), and serves it like
// any other block; the epoch only becomes reachable at the metadata commit
// point. Every accepted write is appended to tracker for rollback.
func (s *Store) placeStripe(ctx context.Context, sp *trace.Span, meta *ObjectMeta, si int, blocks [][]byte, sm *StripeMeta, stats *PutStats, tracker *[]placedBlock) error {
	ssp := sp.Child("place-stripe")
	defer ssp.End()
	p := s.opts.Params
	candidates := s.nodeOrder()
	next := 0
	for j := 0; j < p.N; j++ {
		// A cancelled or expired Put must surface the context error, not
		// burn through every candidate into ErrTooManyFailures.
		if err := ctx.Err(); err != nil {
			return err
		}
		id := blockID(meta.Name, meta.Epoch, si, j)
		crc := cluster.Checksum(blocks[j])
		placed := false
		for ; next < len(candidates); next++ {
			node := candidates[next]
			if _, err := s.callChecked(ctx, ssp, node, &rpc.Request{
				Kind: rpc.KindPrepareBlock, BlockID: id, Data: blocks[j],
				Object: meta.Name, Epoch: meta.Epoch, Crc: crc,
			}); err != nil {
				continue // unhealthy candidate: try the next
			}
			sm.Nodes[j] = node
			sm.BlockIDs[j] = id
			sm.Checksums[j] = crc
			*tracker = append(*tracker, placedBlock{node: node, id: id})
			stats.StoredBytes += uint64(len(blocks[j]))
			next++
			placed = true
			break
		}
		if !placed {
			// A stripe needs n distinct healthy nodes (no degraded writes):
			// running out of candidates is the write-side "too many
			// failures", the same sentinel degraded reads exhaust into.
			return fmt.Errorf("%w: stripe %d block %d: no healthy node left (%d candidates)", ErrTooManyFailures, si, j, len(candidates))
		}
	}
	return nil
}

func padTo(b []byte, size uint64) []byte {
	if uint64(len(b)) == size {
		return b
	}
	out := make([]byte, size)
	copy(out, b)
	return out
}

// replicateMeta publishes the object metadata through the k+1-replica
// quorum register (§5): the write lands on a majority, so every subsequent
// quorum read observes it even if a minority of replicas missed it.
func (s *Store) replicateMeta(meta *ObjectMeta) error {
	enc, err := EncodeMeta(meta)
	if err != nil {
		return err
	}
	kv, err := s.metaKV(meta.Name)
	if err != nil {
		return err
	}
	if _, err := kv.Put(metaKey(meta.Name), enc); err != nil {
		return fmt.Errorf("store: publishing metadata for %q: %w", meta.Name, err)
	}
	return nil
}

// Meta returns the object's metadata, performing a quorum read (with read
// repair of stale replicas) when it is not cached.
func (s *Store) Meta(name string) (*ObjectMeta, error) {
	if m := s.cachedMeta(name); m != nil {
		return m, nil
	}
	kv, err := s.metaKV(name)
	if err != nil {
		return nil, err
	}
	enc, _, err := kv.Get(metaKey(name))
	if err != nil {
		return nil, fmt.Errorf("store: object %q not found: %w", name, err)
	}
	m, err := DecodeMeta(enc)
	if err != nil {
		return nil, err
	}
	s.cacheMeta(m)
	return m, nil
}

// deleteBlocks removes an object version's data/parity blocks, best
// effort: a down node's blocks are simply orphaned.
func (s *Store) deleteBlocks(meta *ObjectMeta) {
	for _, st := range meta.Stripes {
		for j, id := range st.BlockIDs {
			_, _ = s.call(context.Background(), nil, st.Nodes[j], &rpc.Request{Kind: rpc.KindDeleteBlock, BlockID: id})
		}
	}
}

// Delete removes an object's blocks and metadata replicas. The quorum is
// consulted directly — deleting from a cached (possibly superseded) view
// would miss the blocks of a newer epoch written through another
// coordinator, stranding them as orphans.
func (s *Store) Delete(name string) error {
	return s.DeleteContext(context.Background(), name)
}

// DeleteContext is Delete under a context. Cancellation is observed before
// any destructive step; once block deletion has begun it runs to completion
// (a half-cancelled delete would only strand orphans for the reconciler).
func (s *Store) DeleteContext(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	release, err := s.admit(ctx, nil, sched.ClassPut)
	if err != nil {
		return err
	}
	defer release()
	meta, err := s.metaQuorum(name)
	if err != nil {
		if errors.Is(err, metakv.ErrNotFound) {
			return fmt.Errorf("store: object %q not found: %w", name, err)
		}
		return err
	}
	s.deleteBlocks(meta)
	if kv, kerr := s.metaKV(name); kerr == nil {
		_ = kv.Delete(metaKey(name)) // best effort; blocks are already gone
	}
	// Tombstone the cache: drop the meta entry and every data entry of
	// every epoch, so no reader can be served bytes of a deleted object.
	s.cache.DeleteMeta(name)
	s.cache.InvalidateObject(name, 0)
	return nil
}
