package store

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/trace"
)

// ErrTooManyFailures is the sentinel for a degraded operation that ran out
// of redundancy: fewer than k of a stripe's n blocks were readable, so the
// RS code cannot reconstruct. Every unrecoverable degraded-path error wraps
// it (errors.Is), which is what the chaos tests assert once failures exceed
// the code's n−k tolerance.
var ErrTooManyFailures = errors.New("store: too many failures")

// Get reads length bytes of the object starting at offset (length 0 = to
// the end). Reads survive up to n−k node failures: a block on a down node
// is rebuilt from the rest of its stripe via RS reconstruction (a degraded
// read, §5 "Recovery and Fault Tolerance").
func (s *Store) Get(name string, offset, length uint64) ([]byte, error) {
	return s.GetContext(context.Background(), name, offset, length)
}

// GetContext is Get under a context. When the context carries a trace span
// (trace.Start), the read records a span tree — meta read, per-block RPCs,
// reconstructions — plus byte counters for read amplification; an untraced
// context costs nothing.
func (s *Store) GetContext(ctx context.Context, name string, offset, length uint64) ([]byte, error) {
	sp := trace.FromContext(ctx).Child("store.Get")
	defer sp.End()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("Get"), time.Since(start))
		}(time.Now())
	}
	msp := sp.Child("meta")
	meta, err := s.Meta(name)
	msp.End()
	if err != nil {
		return nil, err
	}
	if offset > meta.Size {
		return nil, fmt.Errorf("store: offset %d beyond object of %d bytes", offset, meta.Size)
	}
	if length == 0 {
		length = meta.Size - offset
	}
	// Overflow-safe range check: offset+length can wrap uint64 (e.g.
	// length = ^uint64(0)), so never compare the sum against Size.
	if length > meta.Size-offset {
		return nil, fmt.Errorf("store: range [%d,+%d) beyond object of %d bytes", offset, length, meta.Size)
	}
	if length == 0 {
		return []byte{}, nil
	}
	sp.Count(trace.BytesRequested, length)
	if meta.Mode == LayoutFAC {
		return s.getFAC(sp, meta, offset, length)
	}
	return s.getFixed(sp, meta, offset, length)
}

// getFAC gathers the range from the items covering it.
func (s *Store) getFAC(sp *trace.Span, meta *ObjectMeta, offset, length uint64) ([]byte, error) {
	out := make([]byte, 0, length)
	end := offset + length
	for i, it := range meta.Items {
		itEnd := it.Offset + it.Size
		if itEnd <= offset || it.Offset >= end || it.Size == 0 {
			continue
		}
		a := max(offset, it.Offset) - it.Offset // start within item
		b := min(end, itEnd) - it.Offset        // end within item
		loc := meta.ItemLocs[i]
		data, err := s.readStripeRange(sp, meta, loc.Stripe, loc.Bin, loc.BinOffset+a, b-a)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	if uint64(len(out)) != length {
		return nil, fmt.Errorf("store: assembled %d bytes, want %d", len(out), length)
	}
	return out, nil
}

// getFixed gathers the range from fixed blocks.
func (s *Store) getFixed(sp *trace.Span, meta *ObjectMeta, offset, length uint64) ([]byte, error) {
	out := make([]byte, 0, length)
	bs := meta.BlockSize
	k := uint64(s.opts.Params.K)
	end := offset + length
	for pos := offset; pos < end; {
		blockIdx := pos / bs
		stripe := int(blockIdx / k)
		bin := int(blockIdx % k)
		within := pos - blockIdx*bs
		n := min(bs-within, end-pos)
		data, err := s.readStripeRange(sp, meta, stripe, bin, within, n)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		pos += n
	}
	return out, nil
}

// readStripeRange reads [off, off+length) of data block bin in a stripe,
// reconstructing the block from the stripe's survivors when its node is
// unreachable or its block is missing. With Options.HedgeAfter set, a
// direct read that is merely slow also races a reconstruction fan-out and
// the first result wins.
func (s *Store) readStripeRange(sp *trace.Span, meta *ObjectMeta, stripe, bin int, off, length uint64) ([]byte, error) {
	bsp := sp.Child("block")
	defer bsp.End()
	st := meta.Stripes[stripe]
	req := &rpc.Request{
		Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[bin], Offset: off, Length: length,
	}
	if s.opts.HedgeAfter > 0 {
		return s.readStripeRangeHedged(bsp, meta, stripe, bin, off, length, req)
	}
	resp, err := s.call(bsp, st.Nodes[bin], req)
	if err == nil && resp.Err == "" {
		return resp.Data, nil
	}
	if err == nil {
		err = errors.New(resp.Err)
	}
	// Degraded read: rebuild the whole block, then slice.
	block, derr := s.reconstructBlock(bsp, meta, stripe, bin)
	if derr != nil {
		return nil, fmt.Errorf("store: degraded read failed (direct: %v): %w", err, derr)
	}
	return sliceBlock(block, off, length)
}

// readStripeRangeHedged races the direct read against a reconstruction
// fan-out fired once the direct read exceeds the hedging threshold.
func (s *Store) readStripeRangeHedged(sp *trace.Span, meta *ObjectMeta, stripe, bin int, off, length uint64, req *rpc.Request) ([]byte, error) {
	node := meta.Stripes[stripe].Nodes[bin]
	type result struct {
		data   []byte
		err    error
		hedged bool
	}
	results := make(chan result, 2) // buffered: late finishers never block
	go func() {
		resp, err := s.call(sp, node, req)
		if err == nil && resp.Err != "" {
			err = errors.New(resp.Err)
		}
		if err != nil {
			results <- result{err: err}
			return
		}
		results <- result{data: resp.Data}
	}()
	launchHedge := func() {
		go func() {
			block, err := s.reconstructBlock(sp, meta, stripe, bin)
			if err != nil {
				results <- result{err: err, hedged: true}
				return
			}
			data, err := sliceBlock(block, off, length)
			results <- result{data: data, err: err, hedged: true}
		}()
	}
	timer := time.NewTimer(s.opts.HedgeAfter)
	defer timer.Stop()
	pending := 1
	hedgeLaunched := false
	var firstErr error
	for {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				if r.hedged {
					s.health.HedgeWin(node)
					sp.Count(trace.HedgeWins, 1)
				}
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedgeLaunched {
				// Direct read failed before the threshold: reconstruct now.
				hedgeLaunched = true
				pending++
				launchHedge()
			} else if pending == 0 {
				// Both %w so the ErrTooManyFailures sentinel survives
				// whichever order the two failures arrived in.
				return nil, fmt.Errorf("store: degraded read failed: %w; %w", firstErr, r.err)
			}
		case <-timer.C:
			if !hedgeLaunched {
				hedgeLaunched = true
				pending++
				s.health.Hedge(node)
				sp.Count(trace.Hedges, 1)
				launchHedge()
			}
		}
	}
}

// sliceBlock bounds-checks and slices [off, off+length) of a reconstructed
// block. The two-step comparison is overflow-safe for adversarial offsets
// and lengths (off+length may wrap uint64).
func sliceBlock(block []byte, off, length uint64) ([]byte, error) {
	if off > uint64(len(block)) || length > uint64(len(block))-off {
		return nil, fmt.Errorf("store: reconstructed block is %d bytes, need [%d,+%d)", len(block), off, length)
	}
	return block[off : off+length : off+length], nil
}

// gatherSurvivors fans GetBlock reads for a stripe's blocks (skipping the
// block being rebuilt) out in parallel and returns as soon as any k shards
// arrive, capacity-padded and indexed by bin. Losing reads are abandoned to
// the buffered channel (cluster.Client calls cannot be cancelled mid-
// flight; every RPC is idempotent, so a late response is harmless). This is
// the one survivor-gathering path shared by block reconstruction, parity
// reconstruction and the hedged-read fan-out.
func (s *Store) gatherSurvivors(sp *trace.Span, meta *ObjectMeta, stripe, skip int) ([][]byte, error) {
	p := s.opts.Params
	st := meta.Stripes[stripe]
	type result struct {
		bin  int
		data []byte
		ok   bool
	}
	results := make(chan result, p.N)
	launched := 0
	for j := 0; j < p.N; j++ {
		if j == skip {
			continue
		}
		launched++
		go func(j int) {
			resp, err := s.call(sp, st.Nodes[j], &rpc.Request{
				Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[j],
			})
			if err != nil || resp.Err != "" {
				results <- result{bin: j}
				return
			}
			results <- result{bin: j, data: resp.Data, ok: true}
		}(j)
	}
	shards := make([][]byte, p.N)
	available := 0
	for i := 0; i < launched && available < p.K; i++ {
		r := <-results
		if r.ok {
			shards[r.bin] = padTo(r.data, st.Capacity)
			available++
		}
	}
	if available < p.K {
		return nil, fmt.Errorf("%w: only %d of %d shards available for stripe %d", ErrTooManyFailures, available, p.K, stripe)
	}
	return shards, nil
}

// reconstructBlock rebuilds one data block of a stripe from any k surviving
// blocks and returns its unpadded bytes.
func (s *Store) reconstructBlock(sp *trace.Span, meta *ObjectMeta, stripe, bin int) ([]byte, error) {
	rsp := sp.Child("reconstruct")
	defer rsp.End()
	rsp.Count(trace.DegradedReads, 1)
	st := meta.Stripes[stripe]
	shards, err := s.gatherSurvivors(rsp, meta, stripe, bin)
	if err != nil {
		return nil, err
	}
	if err := s.coder.ReconstructData(shards); err != nil {
		return nil, err
	}
	return shards[bin][:st.DataLens[bin]], nil
}

// reconstructParity rebuilds a parity block from the stripe's survivors.
func (s *Store) reconstructParity(sp *trace.Span, meta *ObjectMeta, stripe, idx int) ([]byte, error) {
	rsp := sp.Child("reconstruct-parity")
	defer rsp.End()
	rsp.Count(trace.DegradedReads, 1)
	shards, err := s.gatherSurvivors(rsp, meta, stripe, idx)
	if err != nil {
		return nil, err
	}
	if err := s.coder.Reconstruct(shards); err != nil {
		return nil, err
	}
	return shards[idx], nil
}

// RepairNode rebuilds every block an object had on the given node and
// rewrites it there — the conventional recovery procedure run after a node
// is replaced. Metadata replicas hosted by the node are restored too.
func (s *Store) RepairNode(name string, node int) (int, error) {
	return s.RepairNodeContext(context.Background(), name, node)
}

// RepairNodeContext is RepairNode under a (possibly traced) context.
func (s *Store) RepairNodeContext(ctx context.Context, name string, node int) (int, error) {
	sp := trace.FromContext(ctx).Child("store.RepairNode")
	defer sp.End()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("RepairNode"), time.Since(start))
		}(time.Now())
	}
	meta, err := s.Meta(name)
	if err != nil {
		return 0, err
	}
	repaired := 0
	for _, mn := range s.metaReplicaNodes(name) {
		if mn != node {
			continue
		}
		// A quorum read repairs the replica from the register's majority.
		kv, err := s.metaKV(name)
		if err != nil {
			return 0, err
		}
		if _, _, err := kv.Get(metaKey(name)); err != nil {
			return 0, err
		}
		repaired++
	}
	p := s.opts.Params
	for si, st := range meta.Stripes {
		for j, blkNode := range st.Nodes {
			if blkNode != node {
				continue
			}
			var block []byte
			if j < p.K {
				block, err = s.reconstructBlock(sp, meta, si, j)
			} else {
				block, err = s.reconstructParity(sp, meta, si, j)
			}
			if err != nil {
				return repaired, fmt.Errorf("store: repairing stripe %d block %d: %w", si, j, err)
			}
			if _, err := s.callChecked(sp, node, &rpc.Request{
				Kind: rpc.KindPutBlock, BlockID: st.BlockIDs[j], Data: block,
			}); err != nil {
				return repaired, err
			}
			repaired++
		}
	}
	return repaired, nil
}
