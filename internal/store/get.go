package store

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/fusionstore/fusion/internal/bufpool"
	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/trace"
)

// ErrTooManyFailures is the sentinel for a degraded operation that ran out
// of redundancy: fewer than k of a stripe's n blocks were readable, so the
// RS code cannot reconstruct. Every unrecoverable degraded-path error wraps
// it (errors.Is), which is what the chaos tests assert once failures exceed
// the code's n−k tolerance.
var ErrTooManyFailures = errors.New("store: too many failures")

// Get reads length bytes of the object starting at offset (length 0 = to
// the end). Reads survive up to n−k node failures: a block on a down node
// is rebuilt from the rest of its stripe via RS reconstruction (a degraded
// read, §5 "Recovery and Fault Tolerance").
func (s *Store) Get(name string, offset, length uint64) ([]byte, error) {
	return s.GetContext(context.Background(), name, offset, length)
}

// GetContext is Get under a context. When the context carries a trace span
// (trace.Start), the read records a span tree — meta read, per-block RPCs,
// reconstructions — plus byte counters for read amplification; an untraced
// context costs nothing.
func (s *Store) GetContext(ctx context.Context, name string, offset, length uint64) ([]byte, error) {
	sp := trace.FromContext(ctx).Child("store.Get")
	defer sp.End()
	release, err := s.admit(ctx, sp, sched.ClassPoint)
	if err != nil {
		return nil, err
	}
	defer release()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("Get"), time.Since(start))
		}(time.Now())
	}
	msp := sp.Child("meta")
	meta, err := s.Meta(name)
	msp.End()
	if err != nil {
		return nil, err
	}
	data, err := s.getWithMeta(ctx, sp, meta, offset, length)
	if err != nil {
		// The metadata may have been captured before a concurrent
		// overwrite committed: the blocks it points at can be
		// garbage-collected mid-read. Re-resolve against the quorum and
		// retry once iff the object really moved to a newer epoch.
		if fresh := s.refreshedMeta(name, meta); fresh != nil {
			return s.getWithMeta(ctx, sp, fresh, offset, length)
		}
	}
	return data, err
}

// getWithMeta runs a Get against one specific metadata snapshot.
func (s *Store) getWithMeta(ctx context.Context, sp *trace.Span, meta *ObjectMeta, offset, length uint64) ([]byte, error) {
	if offset > meta.Size {
		return nil, fmt.Errorf("store: offset %d beyond object of %d bytes", offset, meta.Size)
	}
	if length == 0 {
		length = meta.Size - offset
	}
	// Overflow-safe range check: offset+length can wrap uint64 (e.g.
	// length = ^uint64(0)), so never compare the sum against Size.
	if length > meta.Size-offset {
		return nil, fmt.Errorf("store: range [%d,+%d) beyond object of %d bytes", offset, length, meta.Size)
	}
	if length == 0 {
		return []byte{}, nil
	}
	sp.Count(trace.BytesRequested, length)
	if meta.Mode == LayoutFAC {
		return s.getFAC(ctx, sp, meta, offset, length)
	}
	return s.getFixed(ctx, sp, meta, offset, length)
}

// refreshedMeta re-resolves an object's metadata against the quorum after a
// failed read, returning it only when the object has actually moved to a
// different epoch (the stale-snapshot case worth retrying). The fresh
// metadata replaces the cached entry and every data-tier entry of older
// epochs is dropped.
func (s *Store) refreshedMeta(name string, old *ObjectMeta) *ObjectMeta {
	fresh, err := s.metaQuorum(name)
	if err != nil || fresh.Epoch == old.Epoch {
		return nil
	}
	s.cacheMeta(fresh)
	s.cache.InvalidateObject(name, fresh.Epoch)
	return fresh
}

// segment is one contiguous piece of a Get: a byte range of one stripe's
// data bin, destined for out[outStart:outStart+length].
type segment struct {
	stripe, bin int
	off, length uint64
	outStart    uint64
}

// getFAC gathers the range from the items covering it.
func (s *Store) getFAC(ctx context.Context, sp *trace.Span, meta *ObjectMeta, offset, length uint64) ([]byte, error) {
	segs := make([]segment, 0, len(meta.Items))
	var pos uint64
	end := offset + length
	for i, it := range meta.Items {
		itEnd := it.Offset + it.Size
		if itEnd <= offset || it.Offset >= end || it.Size == 0 {
			continue
		}
		a := max(offset, it.Offset) - it.Offset // start within item
		b := min(end, itEnd) - it.Offset        // end within item
		loc := meta.ItemLocs[i]
		segs = append(segs, segment{
			stripe: loc.Stripe, bin: loc.Bin,
			off: loc.BinOffset + a, length: b - a, outStart: pos,
		})
		pos += b - a
	}
	if pos != length {
		return nil, fmt.Errorf("store: assembled %d bytes, want %d", pos, length)
	}
	return s.readSegments(ctx, sp, meta, segs, length)
}

// getFixed gathers the range from fixed blocks.
func (s *Store) getFixed(ctx context.Context, sp *trace.Span, meta *ObjectMeta, offset, length uint64) ([]byte, error) {
	var segs []segment
	bs := meta.BlockSize
	k := uint64(s.opts.Params.K)
	end := offset + length
	for pos := offset; pos < end; {
		blockIdx := pos / bs
		stripe := int(blockIdx / k)
		bin := int(blockIdx % k)
		within := pos - blockIdx*bs
		n := min(bs-within, end-pos)
		segs = append(segs, segment{
			stripe: stripe, bin: bin, off: within, length: n, outStart: pos - offset,
		})
		pos += n
	}
	return s.readSegments(ctx, sp, meta, segs, length)
}

// readSegments assembles a Get's segments into one buffer. Segments that
// together cover their whole block — the common case for full-object and
// row-group reads, where the items of a block tile it exactly — are served
// by a single whole-block read, fetched and verified once no matter how
// many items it holds; the rest fall back to per-range reads. Coalescing is
// what keeps verified reads at one checksum pass per block end to end: the
// coordinator checks the received block against the stripe checksum in its
// own metadata (covering both bit rot and transit corruption), so the node
// is told to skip its redundant at-rest pass.
func (s *Store) readSegments(ctx context.Context, sp *trace.Span, meta *ObjectMeta, segs []segment, length uint64) ([]byte, error) {
	out := make([]byte, length)
	// Bytes requested per block; ranges never overlap (items are disjoint),
	// so covering DataLens bytes means tiling the whole block.
	covered := make(map[blockKey]uint64, len(segs))
	for _, g := range segs {
		covered[blockKey{g.stripe, g.bin}] += g.length
	}
	whole := make(map[blockKey][]byte)
	if s.batchOn() && s.opts.HedgeAfter <= 0 {
		// Scatter-gather: collect the distinct whole-block reads this Get
		// needs and fetch them with one batch frame per node, instead of one
		// round trip per block. Blocks the prefetch could not serve fall
		// back to the per-op (retrying, reconstructing) path below.
		var need []blockKey
		seen := make(map[blockKey]bool, len(covered))
		for _, g := range segs {
			key := blockKey{g.stripe, g.bin}
			st := meta.Stripes[g.stripe]
			if g.bin < len(st.DataLens) && covered[key] == st.DataLens[g.bin] && !seen[key] {
				seen[key] = true
				need = append(need, key)
			}
		}
		whole = s.prefetchWholeBlocks(ctx, sp, meta, need)
	}
	for _, g := range segs {
		key := blockKey{g.stripe, g.bin}
		st := meta.Stripes[g.stripe]
		if s.opts.HedgeAfter > 0 || g.bin >= len(st.DataLens) || covered[key] != st.DataLens[g.bin] {
			data, err := s.readStripeRange(ctx, sp, meta, g.stripe, g.bin, g.off, g.length)
			if err != nil {
				return nil, err
			}
			copy(out[g.outStart:], data)
			continue
		}
		block, ok := whole[key]
		if !ok {
			var err error
			block, err = s.readWholeBlock(ctx, sp, meta, g.stripe, g.bin)
			if err != nil {
				return nil, err
			}
			whole[key] = block
		}
		data, err := sliceBlock(block, g.off, g.length)
		if err != nil {
			return nil, err
		}
		copy(out[g.outStart:], data)
	}
	return out, nil
}

// readWholeBlock reads one entire data block, serving it from the
// coordinator cache when possible. Cached bytes were CRC-verified on fill
// (cacheFillBlock admits nothing else), so a hit skips verification
// entirely and — because it never touches s.call — contributes zero
// bytes-from-nodes to read amplification. Misses are deduplicated by the
// singleflight layer: N concurrent readers of one block trigger one fetch.
func (s *Store) readWholeBlock(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, bin int) ([]byte, error) {
	if !s.cacheOn() {
		return s.fetchWholeBlock(ctx, sp, meta, stripe, bin)
	}
	if v, ok := s.cache.Get(blockKeyOf(meta, stripe, bin)); ok {
		sp.Count(trace.CacheHits, 1)
		return v.([]byte), nil
	}
	v, err, _ := s.cache.Do("b/"+meta.Stripes[stripe].BlockIDs[bin], func() (any, error) {
		block, err := s.fetchWholeBlock(ctx, sp, meta, stripe, bin)
		if err != nil {
			return nil, err
		}
		s.cacheFillBlock(meta, stripe, bin, block)
		return block, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// cacheFillBlock admits one block's bytes to the cache. Admission requires
// a successful CRC check against the stripe metadata — that verification is
// what lets hits skip the read path's own pass — so nothing is cached when
// verification is off or the stripe predates recorded checksums.
func (s *Store) cacheFillBlock(meta *ObjectMeta, stripe, bin int, block []byte) {
	if !s.cacheOn() || s.opts.SkipChecksumVerify {
		return
	}
	st := meta.Stripes[stripe]
	if bin >= len(st.Checksums) || cluster.Checksum(block) != st.Checksums[bin] {
		return
	}
	s.cache.Put(blockKeyOf(meta, stripe, bin), block, uint64(len(block)))
}

// fetchWholeBlock reads one entire data block from its node. When
// verification is on and the stripe metadata records the block's checksum,
// the received bytes are verified against that record — one pass at the
// coordinator catching both a rotted block and a reply corrupted in flight
// — and the node is told to skip its own at-rest pass. A failed read or a
// checksum mismatch enqueues a repair and serves the block from the
// stripe's redundancy instead.
func (s *Store) fetchWholeBlock(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, bin int) ([]byte, error) {
	bsp := sp.Child("block")
	defer bsp.End()
	st := meta.Stripes[stripe]
	verify := !s.opts.SkipChecksumVerify && bin < len(st.Checksums)
	resp, err := s.call(ctx, bsp, st.Nodes[bin], &rpc.Request{
		Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[bin], CallerVerifies: verify,
	})
	var fail error
	switch {
	case err != nil:
		fail = err
	case resp.Err != "":
		if cluster.IsChecksumErr(resp.Err) {
			bsp.Count(trace.ChecksumFailures, 1)
			s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: stripe, Block: bin})
		}
		fail = errors.New(resp.Err)
	case verify && cluster.Checksum(resp.Data) != st.Checksums[bin]:
		bsp.Count(trace.ChecksumFailures, 1)
		s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: stripe, Block: bin})
		fail = fmt.Errorf("store: block %s failed verification against stripe checksum", st.BlockIDs[bin])
	case !verify && !s.opts.SkipChecksumVerify && cluster.Checksum(resp.Data) != resp.Crc:
		// Legacy stripe without recorded checksums: end-to-end check
		// against the CRC the node claims, as checkDirectRead does.
		bsp.Count(trace.ChecksumFailures, 1)
		s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: stripe, Block: bin})
		fail = fmt.Errorf("store: block %s: reply failed end-to-end checksum", st.BlockIDs[bin])
	default:
		return resp.Data, nil
	}
	// A dead context dooms the reconstruction fan-out too; surface the
	// caller's cancellation, not a misleading too-many-failures.
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("store: read abandoned (direct: %v): %w", fail, cerr)
	}
	block, derr := s.reconstructBlock(ctx, bsp, meta, stripe, bin)
	if derr != nil {
		if cerr := ctx.Err(); cerr != nil {
			// The deadline fired mid-reconstruction: the caller's budget,
			// not shard availability, is what failed this read.
			return nil, fmt.Errorf("store: read abandoned (direct: %v; degraded: %v): %w", fail, derr, cerr)
		}
		return nil, fmt.Errorf("store: degraded read failed (direct: %v): %w", fail, derr)
	}
	return block, nil
}

// readStripeRange reads [off, off+length) of data block bin in a stripe,
// reconstructing the block from the stripe's survivors when its node is
// unreachable or its block is missing. With Options.HedgeAfter set, a
// direct read that is merely slow also races a reconstruction fan-out and
// the first result wins.
func (s *Store) readStripeRange(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, bin int, off, length uint64) ([]byte, error) {
	// With the cache enabled, partial reads are served at block
	// granularity: a hit slices resident verified bytes, a miss fetches
	// (and caches) the whole block so the next range of the same block is
	// a hit. The hedged path keeps its range reads but still checks for a
	// resident block first.
	if s.cacheOn() {
		if v, ok := s.cache.Get(blockKeyOf(meta, stripe, bin)); ok {
			sp.Count(trace.CacheHits, 1)
			return sliceBlock(v.([]byte), off, length)
		}
		if s.opts.HedgeAfter <= 0 && bin < len(meta.Stripes[stripe].DataLens) {
			block, err := s.readWholeBlock(ctx, sp, meta, stripe, bin)
			if err != nil {
				return nil, err
			}
			return sliceBlock(block, off, length)
		}
	}
	bsp := sp.Child("block")
	defer bsp.End()
	st := meta.Stripes[stripe]
	req := &rpc.Request{
		Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[bin], Offset: off, Length: length,
	}
	if s.opts.HedgeAfter > 0 {
		return s.readStripeRangeHedged(ctx, bsp, meta, stripe, bin, off, length, req)
	}
	resp, err := s.call(ctx, bsp, st.Nodes[bin], req)
	data, err := s.checkDirectRead(bsp, meta, stripe, bin, resp, err)
	if err == nil {
		return data, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("store: read abandoned (direct: %v): %w", err, cerr)
	}
	// Degraded read: rebuild the whole block, then slice. A checksum
	// failure lands here too — the rotted block is an erasure, the read is
	// served from the stripe's redundancy, and the repair queue already has
	// the block.
	block, derr := s.reconstructBlock(ctx, bsp, meta, stripe, bin)
	if derr != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("store: read abandoned (direct: %v; degraded: %v): %w", err, derr, cerr)
		}
		return nil, fmt.Errorf("store: degraded read failed (direct: %v): %w", err, derr)
	}
	return sliceBlock(block, off, length)
}

// checkDirectRead validates one direct block read. Transport errors pass
// through; application errors become errors, and both flavors of checksum
// failure — the node refusing a rotted block at rest, or the reply failing
// its end-to-end CRC in flight — additionally count a ChecksumFailure and
// enqueue the block for repair before the caller falls into the
// reconstruct-and-serve path.
func (s *Store) checkDirectRead(sp *trace.Span, meta *ObjectMeta, stripe, bin int, resp *rpc.Response, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		if cluster.IsChecksumErr(resp.Err) {
			sp.Count(trace.ChecksumFailures, 1)
			s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: stripe, Block: bin})
		}
		return nil, errors.New(resp.Err)
	}
	if !s.opts.SkipChecksumVerify && cluster.Checksum(resp.Data) != resp.Crc {
		sp.Count(trace.ChecksumFailures, 1)
		s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: stripe, Block: bin})
		return nil, fmt.Errorf("store: block %s: reply failed end-to-end checksum",
			meta.Stripes[stripe].BlockIDs[bin])
	}
	return resp.Data, nil
}

// readStripeRangeHedged races the direct read against a reconstruction
// fan-out fired once the direct read exceeds the hedging threshold.
func (s *Store) readStripeRangeHedged(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, bin int, off, length uint64, req *rpc.Request) ([]byte, error) {
	node := meta.Stripes[stripe].Nodes[bin]
	type result struct {
		data   []byte
		err    error
		hedged bool
	}
	results := make(chan result, 2) // buffered: late finishers never block
	go func() {
		resp, err := s.call(ctx, sp, node, req)
		data, err := s.checkDirectRead(sp, meta, stripe, bin, resp, err)
		results <- result{data: data, err: err}
	}()
	launchHedge := func() {
		go func() {
			block, err := s.reconstructBlock(ctx, sp, meta, stripe, bin)
			if err != nil {
				results <- result{err: err, hedged: true}
				return
			}
			data, err := sliceBlock(block, off, length)
			results <- result{data: data, err: err, hedged: true}
		}()
	}
	timer := time.NewTimer(s.opts.HedgeAfter)
	defer timer.Stop()
	pending := 1
	hedgeLaunched := false
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			// The caller gave up: stop waiting. Both racers write to a
			// buffered channel and their own RPCs observe ctx, so nothing
			// leaks.
			return nil, ctx.Err()
		case r := <-results:
			pending--
			if r.err == nil {
				if r.hedged {
					s.health.HedgeWin(node)
					sp.Count(trace.HedgeWins, 1)
				}
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedgeLaunched {
				// Direct read failed before the threshold: reconstruct now.
				hedgeLaunched = true
				pending++
				launchHedge()
			} else if pending == 0 {
				// Both %w so the ErrTooManyFailures sentinel survives
				// whichever order the two failures arrived in.
				return nil, fmt.Errorf("store: degraded read failed: %w; %w", firstErr, r.err)
			}
		case <-timer.C:
			if !hedgeLaunched {
				hedgeLaunched = true
				pending++
				s.health.Hedge(node)
				sp.Count(trace.Hedges, 1)
				launchHedge()
			}
		}
	}
}

// sliceBlock bounds-checks and slices [off, off+length) of a reconstructed
// block. The two-step comparison is overflow-safe for adversarial offsets
// and lengths (off+length may wrap uint64).
func sliceBlock(block []byte, off, length uint64) ([]byte, error) {
	if off > uint64(len(block)) || length > uint64(len(block))-off {
		return nil, fmt.Errorf("store: reconstructed block is %d bytes, need [%d,+%d)", len(block), off, length)
	}
	return block[off : off+length : off+length], nil
}

// gatherSurvivors fans GetBlock reads for a stripe's blocks (skipping the
// block being rebuilt) out in parallel and returns as soon as any k shards
// arrive, capacity-padded and indexed by bin. Losing reads are abandoned to
// the buffered channel (cluster.Client calls cannot be cancelled mid-
// flight; every RPC is idempotent, so a late response is harmless). This is
// the one survivor-gathering path shared by block reconstruction, parity
// reconstruction and the hedged-read fan-out.
func (s *Store) gatherSurvivors(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, skip int) ([][]byte, error) {
	p := s.opts.Params
	st := meta.Stripes[stripe]
	type result struct {
		bin  int
		data []byte
		ok   bool
	}
	results := make(chan result, p.N)
	launched := 0
	for j := 0; j < p.N; j++ {
		if j == skip {
			continue
		}
		launched++
		go func(j int) {
			resp, err := s.call(ctx, sp, st.Nodes[j], &rpc.Request{
				Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[j],
			})
			if err != nil || resp.Err != "" {
				if err == nil && cluster.IsChecksumErr(resp.Err) {
					sp.Count(trace.ChecksumFailures, 1)
					s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: stripe, Block: j})
				}
				results <- result{bin: j}
				return
			}
			// Survivors feed RS decode, so a silently rotted shard would
			// corrupt every block rebuilt from it: verify each full-block
			// read against the checksum recorded at write time.
			if !s.opts.SkipChecksumVerify && j < len(st.Checksums) &&
				cluster.Checksum(resp.Data) != st.Checksums[j] {
				sp.Count(trace.ChecksumFailures, 1)
				s.enqueueRepair(RepairItem{Object: meta.Name, Epoch: meta.Epoch, Stripe: stripe, Block: j})
				results <- result{bin: j}
				return
			}
			results <- result{bin: j, data: resp.Data, ok: true}
		}(j)
	}
	shards := make([][]byte, p.N)
	available := 0
	for i := 0; i < launched && available < p.K; i++ {
		r := <-results
		if r.ok {
			shards[r.bin] = padShard(r.data, st.Capacity)
			available++
		}
	}
	if available < p.K {
		return nil, fmt.Errorf("%w: only %d of %d shards available for stripe %d", ErrTooManyFailures, available, p.K, stripe)
	}
	return shards, nil
}

// reconstructBlock rebuilds one data block of a stripe from any k surviving
// blocks and returns its unpadded bytes. With the cache enabled the rebuild
// runs under singleflight: a thundering herd of readers hitting the same
// lost block triggers exactly one survivor fan-out and one RS decode, and
// every reader shares the result (which is also admitted to the cache, so
// later readers hit without any decode at all).
func (s *Store) reconstructBlock(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, bin int) ([]byte, error) {
	if !s.cacheOn() {
		return s.reconstructDataBlock(ctx, sp, meta, stripe, bin)
	}
	v, err, _ := s.cache.Do("r/"+meta.Stripes[stripe].BlockIDs[bin], func() (any, error) {
		block, err := s.reconstructDataBlock(ctx, sp, meta, stripe, bin)
		if err != nil {
			return nil, err
		}
		s.cacheFillBlock(meta, stripe, bin, block)
		return block, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// reconstructDataBlock is the actual survivor-gathering RS rebuild of a
// data block.
func (s *Store) reconstructDataBlock(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, bin int) ([]byte, error) {
	rsp := sp.Child("reconstruct")
	defer rsp.End()
	rsp.Count(trace.DegradedReads, 1)
	st := meta.Stripes[stripe]
	shards, err := s.gatherSurvivors(ctx, rsp, meta, stripe, bin)
	if err != nil {
		return nil, err
	}
	s.cache.CountDecode()
	if err := s.coder.ReconstructData(shards); err != nil {
		return nil, err
	}
	// The rebuilt shard is freshly allocated by the decode (bin was nil on
	// entry), so the pooled survivor buffers have no readers left: return
	// them to the arena before handing the block out.
	block := shards[bin][:st.DataLens[bin]]
	putSurvivors(shards, bin)
	return block, nil
}

// reconstructParity rebuilds a parity block from the stripe's survivors.
func (s *Store) reconstructParity(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, idx int) ([]byte, error) {
	rsp := sp.Child("reconstruct-parity")
	defer rsp.End()
	rsp.Count(trace.DegradedReads, 1)
	shards, err := s.gatherSurvivors(ctx, rsp, meta, stripe, idx)
	if err != nil {
		return nil, err
	}
	s.cache.CountDecode()
	if err := s.coder.Reconstruct(shards); err != nil {
		return nil, err
	}
	block := shards[idx]
	putSurvivors(shards, idx)
	return block, nil
}

// padShard copies b into a pooled capacity-sized shard buffer, zero-padding
// the tail (pooled bytes are unspecified). The copy — never aliasing b — is
// what makes returning the shard to the arena after decoding safe: the RPC
// response that produced b may be cached or aliased elsewhere, but the shard
// itself has exactly one owner.
func padShard(b []byte, size uint64) []byte {
	out := bufpool.GetLen(int(size))
	n := copy(out, b)
	clear(out[n:])
	return out
}

// putSurvivors returns a reconstruction's shard buffers to the arena,
// skipping the one at keep — the result handed to callers. Every other
// entry is dead after the decode and singly-owned: padShard copies (never
// aliases) the RPC replies, and shards the decode itself allocated have no
// other reference either.
func putSurvivors(shards [][]byte, keep int) {
	for j, sh := range shards {
		if j != keep && sh != nil {
			bufpool.Put(sh)
		}
	}
}

// RepairNode rebuilds every block an object had on the given node and
// rewrites it there — the conventional recovery procedure run after a node
// is replaced. Metadata replicas hosted by the node are restored too.
func (s *Store) RepairNode(name string, node int) (int, error) {
	return s.RepairNodeContext(context.Background(), name, node)
}

// RepairNodeContext is RepairNode under a (possibly traced) context.
func (s *Store) RepairNodeContext(ctx context.Context, name string, node int) (int, error) {
	sp := trace.FromContext(ctx).Child("store.RepairNode")
	defer sp.End()
	if s.hist != nil {
		defer func(start time.Time) {
			s.hist.Observe(opKey("RepairNode"), time.Since(start))
		}(time.Now())
	}
	meta, err := s.Meta(name)
	if err != nil {
		return 0, err
	}
	repaired := 0
	for _, mn := range s.metaReplicaNodes(name) {
		if mn != node {
			continue
		}
		// A quorum read repairs the replica from the register's majority.
		kv, err := s.metaKV(name)
		if err != nil {
			return 0, err
		}
		if _, _, err := kv.Get(metaKey(name)); err != nil {
			return 0, err
		}
		repaired++
	}
	p := s.opts.Params
	for si, st := range meta.Stripes {
		for j, blkNode := range st.Nodes {
			if blkNode != node {
				continue
			}
			// Fast path for rejoin catch-up: a block the node still holds
			// with verifying bytes needs no reconstruction.
			if j < len(st.Checksums) {
				if resp, err := s.call(ctx, sp, node, &rpc.Request{
					Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[j],
				}); err == nil && resp.Err == "" && cluster.Checksum(resp.Data) == st.Checksums[j] {
					continue
				}
			}
			var block []byte
			if j < p.K {
				block, err = s.reconstructBlock(ctx, sp, meta, si, j)
			} else {
				block, err = s.reconstructParity(ctx, sp, meta, si, j)
			}
			if err != nil {
				return repaired, fmt.Errorf("store: repairing stripe %d block %d: %w", si, j, err)
			}
			if err := s.rewriteBlock(ctx, sp, meta, si, j, block); err != nil {
				return repaired, err
			}
			repaired++
		}
	}
	return repaired, nil
}

// rewriteBlock writes a rebuilt block back to its home node as a committed,
// checksummed write, verifying the rebuilt bytes against the stripe
// metadata first — a repair must never replace a rotted block with
// different garbage.
func (s *Store) rewriteBlock(ctx context.Context, sp *trace.Span, meta *ObjectMeta, stripe, bin int, block []byte) error {
	st := meta.Stripes[stripe]
	crc := cluster.Checksum(block)
	if bin < len(st.Checksums) && crc != st.Checksums[bin] {
		return fmt.Errorf("store: rebuilt block %s failed checksum verification", st.BlockIDs[bin])
	}
	_, err := s.callChecked(ctx, sp, st.Nodes[bin], &rpc.Request{
		Kind: rpc.KindPutBlock, BlockID: st.BlockIDs[bin], Data: block,
		Object: meta.Name, Epoch: meta.Epoch, Crc: crc,
	})
	if err == nil {
		// The rewrite replaced the block on its node; drop any cached
		// copy so readers go back to the (now healthy) source of truth.
		s.cache.Invalidate(blockKeyOf(meta, stripe, bin))
	}
	return err
}
