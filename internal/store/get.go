package store

import (
	"errors"
	"fmt"
	"time"

	"github.com/fusionstore/fusion/internal/rpc"
)

// ErrTooManyFailures is the sentinel for a degraded operation that ran out
// of redundancy: fewer than k of a stripe's n blocks were readable, so the
// RS code cannot reconstruct. Every unrecoverable degraded-path error wraps
// it (errors.Is), which is what the chaos tests assert once failures exceed
// the code's n−k tolerance.
var ErrTooManyFailures = errors.New("store: too many failures")

// Get reads length bytes of the object starting at offset (length 0 = to
// the end). Reads survive up to n−k node failures: a block on a down node
// is rebuilt from the rest of its stripe via RS reconstruction (a degraded
// read, §5 "Recovery and Fault Tolerance").
func (s *Store) Get(name string, offset, length uint64) ([]byte, error) {
	meta, err := s.Meta(name)
	if err != nil {
		return nil, err
	}
	if offset > meta.Size {
		return nil, fmt.Errorf("store: offset %d beyond object of %d bytes", offset, meta.Size)
	}
	if length == 0 {
		length = meta.Size - offset
	}
	if offset+length > meta.Size {
		return nil, fmt.Errorf("store: range [%d,%d) beyond object of %d bytes", offset, offset+length, meta.Size)
	}
	if length == 0 {
		return []byte{}, nil
	}
	if meta.Mode == LayoutFAC {
		return s.getFAC(meta, offset, length)
	}
	return s.getFixed(meta, offset, length)
}

// getFAC gathers the range from the items covering it.
func (s *Store) getFAC(meta *ObjectMeta, offset, length uint64) ([]byte, error) {
	out := make([]byte, 0, length)
	end := offset + length
	for i, it := range meta.Items {
		itEnd := it.Offset + it.Size
		if itEnd <= offset || it.Offset >= end || it.Size == 0 {
			continue
		}
		a := max(offset, it.Offset) - it.Offset // start within item
		b := min(end, itEnd) - it.Offset        // end within item
		loc := meta.ItemLocs[i]
		data, err := s.readStripeRange(meta, loc.Stripe, loc.Bin, loc.BinOffset+a, b-a)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	if uint64(len(out)) != length {
		return nil, fmt.Errorf("store: assembled %d bytes, want %d", len(out), length)
	}
	return out, nil
}

// getFixed gathers the range from fixed blocks.
func (s *Store) getFixed(meta *ObjectMeta, offset, length uint64) ([]byte, error) {
	out := make([]byte, 0, length)
	bs := meta.BlockSize
	k := uint64(s.opts.Params.K)
	end := offset + length
	for pos := offset; pos < end; {
		blockIdx := pos / bs
		stripe := int(blockIdx / k)
		bin := int(blockIdx % k)
		within := pos - blockIdx*bs
		n := min(bs-within, end-pos)
		data, err := s.readStripeRange(meta, stripe, bin, within, n)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		pos += n
	}
	return out, nil
}

// readStripeRange reads [off, off+length) of data block bin in a stripe,
// reconstructing the block from the stripe's survivors when its node is
// unreachable or its block is missing. With Options.HedgeAfter set, a
// direct read that is merely slow also races a reconstruction fan-out and
// the first result wins.
func (s *Store) readStripeRange(meta *ObjectMeta, stripe, bin int, off, length uint64) ([]byte, error) {
	st := meta.Stripes[stripe]
	req := &rpc.Request{
		Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[bin], Offset: off, Length: length,
	}
	if s.opts.HedgeAfter > 0 {
		return s.readStripeRangeHedged(meta, stripe, bin, off, length, req)
	}
	resp, err := s.call(st.Nodes[bin], req)
	if err == nil && resp.Err == "" {
		return resp.Data, nil
	}
	if err == nil {
		err = errors.New(resp.Err)
	}
	// Degraded read: rebuild the whole block, then slice.
	block, derr := s.reconstructBlock(meta, stripe, bin)
	if derr != nil {
		return nil, fmt.Errorf("store: degraded read failed (direct: %v): %w", err, derr)
	}
	return sliceBlock(block, off, length)
}

// readStripeRangeHedged races the direct read against a reconstruction
// fan-out fired once the direct read exceeds the hedging threshold.
func (s *Store) readStripeRangeHedged(meta *ObjectMeta, stripe, bin int, off, length uint64, req *rpc.Request) ([]byte, error) {
	node := meta.Stripes[stripe].Nodes[bin]
	type result struct {
		data   []byte
		err    error
		hedged bool
	}
	results := make(chan result, 2) // buffered: late finishers never block
	go func() {
		resp, err := s.call(node, req)
		if err == nil && resp.Err != "" {
			err = errors.New(resp.Err)
		}
		if err != nil {
			results <- result{err: err}
			return
		}
		results <- result{data: resp.Data}
	}()
	launchHedge := func() {
		go func() {
			block, err := s.reconstructBlock(meta, stripe, bin)
			if err != nil {
				results <- result{err: err, hedged: true}
				return
			}
			data, err := sliceBlock(block, off, length)
			results <- result{data: data, err: err, hedged: true}
		}()
	}
	timer := time.NewTimer(s.opts.HedgeAfter)
	defer timer.Stop()
	pending := 1
	hedgeLaunched := false
	var firstErr error
	for {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				if r.hedged {
					s.health.HedgeWin(node)
				}
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedgeLaunched {
				// Direct read failed before the threshold: reconstruct now.
				hedgeLaunched = true
				pending++
				launchHedge()
			} else if pending == 0 {
				// Both %w so the ErrTooManyFailures sentinel survives
				// whichever order the two failures arrived in.
				return nil, fmt.Errorf("store: degraded read failed: %w; %w", firstErr, r.err)
			}
		case <-timer.C:
			if !hedgeLaunched {
				hedgeLaunched = true
				pending++
				s.health.Hedge(node)
				launchHedge()
			}
		}
	}
}

// sliceBlock bounds-checks and slices [off, off+length) of a reconstructed
// block.
func sliceBlock(block []byte, off, length uint64) ([]byte, error) {
	if off+length > uint64(len(block)) {
		return nil, fmt.Errorf("store: reconstructed block is %d bytes, need [%d,%d)", len(block), off, off+length)
	}
	return block[off : off+length : off+length], nil
}

// reconstructBlock rebuilds one data block of a stripe from any k surviving
// blocks and returns its unpadded bytes.
func (s *Store) reconstructBlock(meta *ObjectMeta, stripe, bin int) ([]byte, error) {
	p := s.opts.Params
	st := meta.Stripes[stripe]
	shards := make([][]byte, p.N)
	available := 0
	for j := 0; j < p.N && available < p.K; j++ {
		if j == bin {
			continue
		}
		resp, err := s.call(st.Nodes[j], &rpc.Request{
			Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[j],
		})
		if err != nil || resp.Err != "" {
			continue
		}
		shards[j] = padTo(resp.Data, st.Capacity)
		available++
	}
	if available < p.K {
		return nil, fmt.Errorf("%w: only %d of %d shards available for stripe %d", ErrTooManyFailures, available, p.K, stripe)
	}
	if err := s.coder.ReconstructData(shards); err != nil {
		return nil, err
	}
	return shards[bin][:st.DataLens[bin]], nil
}

// RepairNode rebuilds every block an object had on the given node and
// rewrites it there — the conventional recovery procedure run after a node
// is replaced. Metadata replicas hosted by the node are restored too.
func (s *Store) RepairNode(name string, node int) (int, error) {
	meta, err := s.Meta(name)
	if err != nil {
		return 0, err
	}
	repaired := 0
	for _, mn := range s.metaReplicaNodes(name) {
		if mn != node {
			continue
		}
		// A quorum read repairs the replica from the register's majority.
		kv, err := s.metaKV(name)
		if err != nil {
			return 0, err
		}
		if _, _, err := kv.Get(metaKey(name)); err != nil {
			return 0, err
		}
		repaired++
	}
	p := s.opts.Params
	for si, st := range meta.Stripes {
		for j, blkNode := range st.Nodes {
			if blkNode != node {
				continue
			}
			var block []byte
			if j < p.K {
				block, err = s.reconstructBlock(meta, si, j)
			} else {
				block, err = s.reconstructParity(meta, si, j)
			}
			if err != nil {
				return repaired, fmt.Errorf("store: repairing stripe %d block %d: %w", si, j, err)
			}
			if _, err := s.callChecked(node, &rpc.Request{
				Kind: rpc.KindPutBlock, BlockID: st.BlockIDs[j], Data: block,
			}); err != nil {
				return repaired, err
			}
			repaired++
		}
	}
	return repaired, nil
}

// reconstructParity rebuilds a parity block from the stripe's survivors.
func (s *Store) reconstructParity(meta *ObjectMeta, stripe, idx int) ([]byte, error) {
	p := s.opts.Params
	st := meta.Stripes[stripe]
	shards := make([][]byte, p.N)
	available := 0
	for j := 0; j < p.N && available < p.K; j++ {
		if j == idx {
			continue
		}
		resp, err := s.call(st.Nodes[j], &rpc.Request{
			Kind: rpc.KindGetBlock, BlockID: st.BlockIDs[j],
		})
		if err != nil || resp.Err != "" {
			continue
		}
		shards[j] = padTo(resp.Data, st.Capacity)
		available++
	}
	if available < p.K {
		return nil, fmt.Errorf("%w: only %d of %d shards available", ErrTooManyFailures, available, p.K)
	}
	if err := s.coder.Reconstruct(shards); err != nil {
		return nil, err
	}
	return shards[idx], nil
}
