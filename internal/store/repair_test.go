package store

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/simnet"
)

// nonRegisterBlocks inventories every non-kv block ID across the cluster.
func nonRegisterBlocks(t *testing.T, cl *simnet.Cluster) []string {
	t.Helper()
	var out []string
	for node := 0; node < cl.NumNodes(); node++ {
		resp := cl.Node(node).Handle(&rpc.Request{Kind: rpc.KindListBlocks})
		if resp.Err != "" {
			t.Fatalf("node %d inventory: %s", node, resp.Err)
		}
		for _, b := range resp.Blocks {
			if !strings.HasPrefix(b.ID, "kv/") {
				out = append(out, fmt.Sprintf("n%d:%s", node, b.ID))
			}
		}
	}
	return out
}

// TestPutFailureRollsBackPlacedBlocks: a Put that cannot finish its scatter
// (fewer than n healthy nodes) must fail AND undo the blocks it already
// placed — no stranded debris, only the burned epoch register remains.
func TestPutFailureRollsBackPlacedBlocks(t *testing.T) {
	seed := faultSeed(t)
	s, inj := newFaultStore(t, 9, seed, fusionTestOptions())
	data, _, _ := makeObject(t, 2, 200, seed)
	// One node down: stripes need 9 distinct healthy nodes, so placement
	// runs out of candidates after writing up to 8 blocks of a stripe.
	inj.SetDown(0, true)
	if _, err := s.Put("obj", data); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("want ErrTooManyFailures with 8 healthy nodes, got %v", err)
	}
	inj.ReviveAll()
	cl := inj.Inner().(*simnet.Cluster)
	if left := nonRegisterBlocks(t, cl); len(left) != 0 {
		t.Fatalf("failed Put stranded %d blocks: %v", len(left), left)
	}
	// The burned epoch must not be reused: a successful retry writes epoch 2+.
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Meta("obj")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch < 2 {
		t.Fatalf("retry must burn a fresh epoch, got %d", meta.Epoch)
	}
	if got, err := s.Get("obj", 0, 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after retry: %v", err)
	}
}

func TestRepairQueueDedupAndBound(t *testing.T) {
	q := newRepairQueue(2)
	a := RepairItem{Object: "o", Stripe: 0, Block: 1}
	b := RepairItem{Object: "o", Stripe: 0, Block: 2}
	c := RepairItem{Object: "o", Stripe: 1, Block: 0}
	if !q.push(a) || !q.push(b) {
		t.Fatal("pushes under the bound must be accepted")
	}
	if q.push(a) {
		t.Fatal("duplicate of a queued item must be absorbed")
	}
	if q.push(c) {
		t.Fatal("push over the bound must be rejected")
	}
	st := q.snapshot()
	if st.QueueDepth != 2 || st.Enqueued != 2 || st.Dropped != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// FIFO order, and a popped item may be re-queued.
	if it, ok := q.pop(); !ok || it != a {
		t.Fatalf("pop = %+v, %v", it, ok)
	}
	if !q.push(a) {
		t.Fatal("popped item must be enqueueable again")
	}
	if it, _ := q.pop(); it != b {
		t.Fatalf("FIFO violated: got %+v", it)
	}
}

// TestDiscoverObjectsSeesOtherCoordinatorsWrites: discovery scans node
// inventories, so a fresh coordinator with an empty cache still finds every
// object in the cluster.
func TestDiscoverObjectsSeesOtherCoordinatorsWrites(t *testing.T) {
	s1, cl := newSimStore(t, fusionTestOptions())
	for i := 0; i < 3; i++ {
		data, _, _ := makeObject(t, 1, 100, int64(80+i))
		if _, err := s1.Put(fmt.Sprintf("obj-%d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := New(cl, fusionTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Objects()) != 0 {
		t.Fatal("fresh coordinator must start with an empty cache")
	}
	names, err := s2.DiscoverObjects()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"obj-0", "obj-1", "obj-2"}
	if len(names) != len(want) {
		t.Fatalf("DiscoverObjects = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("DiscoverObjects = %v, want %v (sorted)", names, want)
		}
	}
}

// TestScrubAllRepairsEveryObject: one lost block per object, one cluster-wide
// repair pass, everything clean after.
func TestScrubAllRepairsEveryObject(t *testing.T) {
	s, cl := newSimStore(t, fusionTestOptions())
	var datas [][]byte
	for i := 0; i < 2; i++ {
		data, _, _ := makeObject(t, 1, 150, int64(90+i))
		datas = append(datas, data)
		if _, err := s.Put(fmt.Sprintf("obj-%d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		meta, _ := s.Meta(fmt.Sprintf("obj-%d", i))
		st := meta.Stripes[0]
		if err := cl.Node(st.Nodes[1]).Blocks.Delete(st.BlockIDs[1]); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.ScrubAll(ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Objects != 2 || len(rep.Errors) != 0 {
		t.Fatalf("ScrubAll: %+v errors %v", rep, rep.Errors)
	}
	tot := rep.Totals()
	if tot.MissingBlocks != 2 || tot.Repaired != 2 {
		t.Fatalf("totals: %+v", tot)
	}
	rep, err = s.ScrubAll(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tot := rep.Totals(); tot.MissingBlocks != 0 || tot.CorruptStripes != 0 || tot.ChecksumFailures != 0 {
		t.Fatalf("post-repair totals: %+v", tot)
	}
	for i, data := range datas {
		if got, err := s.Get(fmt.Sprintf("obj-%d", i), 0, 0); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("obj-%d post-repair read: %v", i, err)
		}
	}
}

// TestRepairNodeAllRestoresWipedNode simulates a node returning with an
// empty disk: every object's blocks and metadata replicas on it must come
// back in one catch-up sweep.
func TestRepairNodeAllRestoresWipedNode(t *testing.T) {
	s, cl := newSimStore(t, fusionTestOptions())
	for i := 0; i < 2; i++ {
		data, _, _ := makeObject(t, 1, 150, int64(95+i))
		if _, err := s.Put(fmt.Sprintf("obj-%d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	// Wipe node 3 completely (blocks and register replicas).
	const victim = 3
	resp := cl.Node(victim).Handle(&rpc.Request{Kind: rpc.KindListBlocks})
	wiped := 0
	for _, b := range resp.Blocks {
		if err := cl.Node(victim).Blocks.Delete(b.ID); err != nil {
			t.Fatal(err)
		}
		wiped++
	}
	if wiped == 0 {
		t.Fatal("node 3 held nothing; placement changed?")
	}
	n, err := s.RepairNodeAll(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("catch-up repaired nothing")
	}
	rep, err := s.ScrubAll(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tot := rep.Totals(); tot.MissingBlocks != 0 {
		t.Fatalf("blocks still missing after catch-up: %+v", tot)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRepairManagerHeartbeatBreakerAndRejoin drives the background service
// end to end: heartbeats mark a crashed node down and open its breaker
// (foreground calls fail fast), and the node's revival triggers a catch-up
// sweep that restores the block its disk lost while it was away.
func TestRepairManagerHeartbeatBreakerAndRejoin(t *testing.T) {
	seed := faultSeed(t)
	opts := fusionTestOptions()
	opts.Breaker = cluster.NewBreaker(cluster.BreakerConfig{Threshold: 2, Cooldown: 5 * time.Millisecond})
	s, inj := newFaultStore(t, 9, seed, opts)
	data, _, _ := makeObject(t, 1, 150, seed)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	victim := meta.Stripes[0].Nodes[0]
	victimID := meta.Stripes[0].BlockIDs[0]
	cl := inj.Inner().(*simnet.Cluster)

	m := s.StartRepairManager(RepairConfig{
		HeartbeatEvery: 3 * time.Millisecond,
		Rate:           time.Millisecond,
	})
	defer m.Stop()

	waitFor(t, 2*time.Second, "first heartbeat sweep", func() bool {
		return m.Stats().Heartbeats > 0
	})
	// Crash the node; while it is "away" its disk loses a block.
	inj.SetDown(victim, true)
	if err := cl.Node(victim).Blocks.Delete(victimID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "heartbeats to mark the node down", func() bool {
		st, ok := m.Nodes()[victim]
		return ok && !st.Up
	})
	waitFor(t, 2*time.Second, "the breaker to open", func() bool {
		return s.Breaker().State(victim) != cluster.BreakerClosed
	})
	// Revive: the rejoin sweep must restore the lost block.
	inj.SetDown(victim, false)
	waitFor(t, 2*time.Second, "rejoin catch-up", func() bool {
		st := m.Stats()
		return st.Rejoins > 0
	})
	waitFor(t, 2*time.Second, "node marked up again", func() bool {
		st, ok := m.Nodes()[victim]
		return ok && st.Up
	})
	m.Stop()

	if _, err := cl.Node(victim).Blocks.Get(victimID, 0, 0); err != nil {
		t.Fatalf("rejoin sweep must restore the lost block: %v", err)
	}
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.MissingBlocks != 0 || rep.CorruptStripes != 0 || rep.ChecksumFailures != 0 {
		t.Fatalf("post-rejoin scrub: %+v, %v", rep, err)
	}
	if got, err := s.Get("obj", 0, 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-rejoin read: %v", err)
	}
}

// TestRepairManagerDrainsQueue: the worker loop processes read-path
// checksum-failure enqueues without any explicit ProcessRepairs call.
func TestRepairManagerDrainsQueue(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 72)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	rotDataBlock(t, s, cl, "obj")
	if got, err := s.Get("obj", 0, 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded read: %v", err)
	}
	if rs := s.RepairStats(); rs.QueueDepth == 0 {
		t.Fatalf("rot must be queued: %+v", rs)
	}
	m := s.StartRepairManager(RepairConfig{Rate: time.Millisecond})
	defer m.Stop()
	waitFor(t, 2*time.Second, "the worker to drain the queue", func() bool {
		rs := s.RepairStats()
		return rs.QueueDepth == 0 && rs.Processed > 0
	})
	waitFor(t, 2*time.Second, "manager counters to record the repair", func() bool {
		return m.Stats().RepairsProcessed > 0
	})
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.ChecksumFailures != 0 || rep.CorruptStripes != 0 {
		t.Fatalf("post-drain scrub: %+v, %v", rep, err)
	}
}

// TestRepairManagerScrubLoop: the periodic scrub finds and fixes rot with no
// reads ever touching the object.
func TestRepairManagerScrubLoop(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 73)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	rotDataBlock(t, s, cl, "obj")
	m := s.StartRepairManager(RepairConfig{ScrubEvery: 3 * time.Millisecond})
	defer m.Stop()
	waitFor(t, 2*time.Second, "a scrub pass to repair the rot", func() bool {
		return m.Stats().ScrubPasses > 0
	})
	waitFor(t, 2*time.Second, "the object to scrub clean", func() bool {
		rep, err := s.Scrub("obj", ScrubOptions{})
		return err == nil && rep.ChecksumFailures == 0 && rep.CorruptStripes == 0 && rep.MissingBlocks == 0
	})
	if got, err := s.Get("obj", 0, 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-scrub read: %v", err)
	}
}
