package store

import (
	"github.com/fusionstore/fusion/internal/bitmap"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/sql"
)

// This file is the stats-driven planner behind the grouped-aggregation and
// top-k stages. Both decisions are per row group and follow the same shape
// as the projection Cost Equation (§4.3): push the operator down iff what
// comes back over the wire is provably smaller than the chunks the
// coordinator would otherwise have to fetch. The inputs are the lakeshore
// footer statistics — min/max bounds and the distinct-count estimates the
// writer records per chunk — so a plan costs no I/O.

// maxNodeGroups caps the group table a storage node builds for one row
// group. A node exceeding it fails the op (sql.ErrTooManyGroups) and the
// coordinator re-runs that row group locally: past this cardinality the
// partial states would rival the raw chunks anyway, so pushdown has already
// lost.
const maxNodeGroups = 1 << 16

// groupPartialBytes estimates one group's wire size: the Rows counter, a
// literal per key (with headroom for short strings), and a fixed-size
// AggState per aggregate — mirroring rpc.GroupPartialWireSize without
// needing materialized states.
func groupPartialBytes(nKeys, nAggs int) uint64 {
	return 8 + 24*uint64(nKeys) + 48*uint64(nAggs)
}

// estGroups upper-bounds the distinct key tuples a row group can produce,
// as the product of the key chunks' footer distinct estimates capped at the
// selected row count. A missing or saturated estimate (legacy file, or more
// than lpq.DistinctCap distinct values) degrades to the selected count —
// the true worst case.
func estGroups(meta *ObjectMeta, rg int, keyIdx []int, selected int) uint64 {
	worst := uint64(selected)
	est := uint64(1)
	for _, ci := range keyIdx {
		st := meta.Footer.RowGroups[rg].Chunks[ci].Stats
		d := uint64(st.DistinctEst)
		if !st.Valid || d == 0 || d > lpq.DistinctCap {
			return worst
		}
		est *= d
		if est >= worst {
			return worst
		}
	}
	return est
}

// planGroupPush decides whether pushing one row group's grouped aggregation
// to its node beats fetching the chunks: the estimated partial-state payload
// must undercut the key and argument chunks' stored bytes, and the estimated
// cardinality must fit the node-side cap.
func planGroupPush(meta *ObjectMeta, rg int, keyIdx, valIdx []int, selected int) bool {
	groups := estGroups(meta, rg, keyIdx, selected)
	if groups > maxNodeGroups {
		return false
	}
	var fetch uint64
	chs := meta.Footer.RowGroups[rg].Chunks
	for _, ci := range keyIdx {
		fetch += chs[ci].Size
	}
	for _, ci := range valIdx {
		if ci >= 0 {
			fetch += chs[ci].Size
		}
	}
	return groups*groupPartialBytes(len(keyIdx), len(valIdx)) < fetch
}

// groupChunkRefs resolves a row group's key and aggregate-argument chunks
// and reports whether they are co-located on one node — grouped pushdown
// needs the whole key/argument row visible to a single node. valIdx entries
// of -1 (COUNT(*)) yield an empty ChunkRef. chunkBytes is the stored size
// of the resolved chunks, the fetch cost the planner weighs against.
func groupChunkRefs(meta *ObjectMeta, rg int, keyIdx, valIdx []int) (node int, keyRefs, valRefs []rpc.ChunkRef, chunkBytes uint64, ok bool) {
	chs := meta.Footer.RowGroups[rg].Chunks
	node = -1
	resolve := func(ci int) (rpc.ChunkRef, bool) {
		n, ref, ok := chunkLocation(meta, rg, ci, chs[ci])
		if !ok {
			return rpc.ChunkRef{}, false
		}
		if node < 0 {
			node = n
		} else if node != n {
			return rpc.ChunkRef{}, false
		}
		chunkBytes += chs[ci].Size
		return ref, true
	}
	for _, ci := range keyIdx {
		ref, rok := resolve(ci)
		if !rok {
			return 0, nil, nil, 0, false
		}
		keyRefs = append(keyRefs, ref)
	}
	for _, ci := range valIdx {
		if ci < 0 {
			valRefs = append(valRefs, rpc.ChunkRef{}) // COUNT(*): no column
			continue
		}
		ref, rok := resolve(ci)
		if !rok {
			return 0, nil, nil, 0, false
		}
		valRefs = append(valRefs, ref)
	}
	return node, keyRefs, valRefs, chunkBytes, true
}

// planTopKPush decides whether pushing one row group's top-k beats fetching
// the order chunk: a pushed reply is at most k candidates of ~32 wire bytes
// each.
func planTopKPush(ch lpq.ChunkMeta, k int) bool {
	return uint64(k)*32 < ch.Size
}

// topKPrunable returns the live row groups that provably cannot contribute
// to the top k, from the order chunk's footer min/max bounds: a row group is
// skipped when other row groups whose every row sorts strictly ahead of its
// entire range already hold at least k selected rows. This is the top-k
// analogue of filter-stage row-group pruning — whole row groups drop out of
// the scan before any I/O.
func topKPrunable(meta *ObjectMeta, ci int, rgBitmaps map[int]*bitmap.Bitmap, k int, desc bool) map[int]bool {
	type bound struct {
		rg       int
		lo, hi   sql.Literal
		ok       bool
		selected int
	}
	var bs []bound
	for rg := range meta.Footer.RowGroups {
		bm := rgBitmaps[rg]
		if bm == nil || bm.Count() == 0 {
			continue
		}
		b := bound{rg: rg, selected: bm.Count()}
		st := meta.Footer.RowGroups[rg].Chunks[ci].Stats
		if st.Valid {
			b.ok = true
			switch meta.Footer.Columns[ci].Type {
			case lpq.Int64:
				b.lo, b.hi = sql.IntLit(st.MinI), sql.IntLit(st.MaxI)
			case lpq.Float64:
				b.lo, b.hi = sql.FloatLit(st.MinF), sql.FloatLit(st.MaxF)
			default:
				b.lo, b.hi = sql.StringLit(st.MinS), sql.StringLit(st.MaxS)
			}
		}
		bs = append(bs, b)
	}
	skip := make(map[int]bool)
	for _, r := range bs {
		if !r.ok {
			continue
		}
		ahead := 0
		for _, j := range bs {
			if j.rg == r.rg || !j.ok {
				continue
			}
			if (!desc && sql.CompareLiterals(j.hi, r.lo) < 0) ||
				(desc && sql.CompareLiterals(j.lo, r.hi) > 0) {
				ahead += j.selected
			}
		}
		if ahead >= k {
			skip[r.rg] = true
		}
	}
	return skip
}
