package store

import (
	"testing"
)

func TestStringers(t *testing.T) {
	if LayoutFAC.String() != "FAC" || LayoutFixed.String() != "FIXED" {
		t.Fatal("LayoutMode.String wrong")
	}
	if PushdownAdaptive.String() != "adaptive" || PushdownAlways.String() != "always" || PushdownNever.String() != "never" {
		t.Fatal("PushdownPolicy.String wrong")
	}
}

func TestOptionsAndObjects(t *testing.T) {
	data, _, _ := makeObject(t, 1, 100, 121)
	s, _ := newSimStore(t, fusionTestOptions())
	if s.Options().Layout != LayoutFAC {
		t.Fatal("Options accessor wrong")
	}
	if len(s.Objects()) != 0 {
		t.Fatal("fresh store must know no objects")
	}
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	names := s.Objects()
	if len(names) != 1 || names[0] != "obj" {
		t.Fatalf("Objects = %v", names)
	}
}

// TestRepairNodeParityBlock forces a parity-block repair specifically.
func TestRepairNodeParityBlock(t *testing.T) {
	data, _, _ := makeObject(t, 2, 300, 122)
	s, cl := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	// Find a parity block (index >= k) and wipe exactly it.
	st := meta.Stripes[0]
	j := s.opts.Params.K + 1
	victim := st.Nodes[j]
	if err := cl.Node(victim).Blocks.Delete(st.BlockIDs[j]); err != nil {
		t.Fatal(err)
	}
	n, err := s.RepairNode("obj", victim)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("repair must rewrite the parity block")
	}
	rep, err := s.Scrub("obj", ScrubOptions{})
	if err != nil || rep.MissingBlocks != 0 || rep.CorruptStripes != 0 {
		t.Fatalf("post-repair scrub: %+v, %v", rep, err)
	}
}

// TestFixedLayoutCorruptionReconstruction covers the fixed-layout branch of
// reconstructChunkBytes: a corrupted split chunk must be rebuilt from
// parity during a query.
func TestFixedLayoutCorruptionReconstruction(t *testing.T) {
	data, _, _ := makeObject(t, 2, 2000, 123)
	opts := BaselineOptions()
	opts.FixedBlockSize = 4096
	s, cl := newSimStore(t, opts)
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first data block of stripe 0 in place.
	meta, _ := s.Meta("obj")
	st := meta.Stripes[0]
	node := cl.Node(st.Nodes[0])
	block, err := node.Blocks.Get(st.BlockIDs[0], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte beyond the magic header so some chunk's CRC breaks.
	block[len(block)/2] ^= 0x3c
	if err := node.Blocks.Put(st.BlockIDs[0], block); err != nil {
		t.Fatal(err)
	}
	got, err := s.Query("SELECT id FROM obj WHERE qty < 10")
	if err != nil {
		t.Fatalf("query over corrupted fixed-layout chunk: %v", err)
	}
	if got.Rows != want.Rows {
		t.Fatalf("rows = %d, want %d", got.Rows, want.Rows)
	}
	// The object bytes are still reconstructable in full.
	full, err := s.Get("obj", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Get reads the (corrupt) stored block directly; only chunk-level CRC
	// detects it, so compare via a fresh decode instead of raw bytes.
	if len(full) != len(data) {
		t.Fatalf("length mismatch: %d vs %d", len(full), len(data))
	}
}

func TestChunkItemIndexFallbackScan(t *testing.T) {
	data, _, _ := makeObject(t, 2, 100, 124)
	s, _ := newSimStore(t, fusionTestOptions())
	if _, err := s.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("obj")
	if meta.ChunkItemIndex(1, 2) < 0 {
		t.Fatal("valid chunk must resolve")
	}
	if meta.ChunkItemIndex(99, 0) != -1 {
		t.Fatal("bogus chunk must return -1")
	}
	if (&ObjectMeta{}).ChunkItemIndex(0, 0) != -1 {
		t.Fatal("nil-footer meta must return -1")
	}
}

func TestReplicateMetaFailsWithoutQuorum(t *testing.T) {
	data, _, _ := makeObject(t, 1, 100, 125)
	s, cl := newSimStore(t, fusionTestOptions())
	// Down 4 of the 7 meta replicas: no majority.
	replicas := s.metaReplicaNodes("obj")
	for _, n := range replicas[:4] {
		cl.SetDown(n, true)
	}
	defer func() {
		for _, n := range replicas[:4] {
			cl.SetDown(n, false)
		}
	}()
	if _, err := s.Put("obj", data); err == nil {
		t.Fatal("Put must fail when metadata cannot reach a quorum")
	}
}
