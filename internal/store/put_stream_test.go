package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/fusionstore/fusion/internal/bufpool"
	"github.com/fusionstore/fusion/internal/simnet"
)

// sequentialReader hides the io.ReaderAt of its wrapped reader, forcing
// PutReader onto the documented materialize fallback.
type sequentialReader struct{ r io.Reader }

func (s *sequentialReader) Read(p []byte) (int, error) { return s.r.Read(p) }

// clusterInventory snapshots every stored block as node/id → bytes.
func clusterInventory(t *testing.T, cl *simnet.Cluster) map[string][]byte {
	t.Helper()
	inv := map[string][]byte{}
	for i := 0; i < cl.NumNodes(); i++ {
		ids := cl.Node(i).Blocks.IDs()
		sort.Strings(ids)
		for _, id := range ids {
			data, err := cl.Node(i).Blocks.Get(id, 0, 0)
			if err != nil {
				t.Fatalf("node %d block %s: %v", i, id, err)
			}
			inv[fmt.Sprintf("%d/%s", i, id)] = append([]byte(nil), data...)
		}
	}
	return inv
}

// TestStreamingEquivalenceMatrix: the materialized Put, the streaming
// PutReader over a random-access source, and PutReader over a purely
// sequential source must produce byte-identical metadata and byte-identical
// block placement — for both FAC and fixed layouts. Each variant runs on
// its own identically-seeded cluster, so any divergence (layout, node
// choice, padding, CRC) shows up as an inventory mismatch.
func TestStreamingEquivalenceMatrix(t *testing.T) {
	data, _, _ := makeObject(t, 4, 350, 31)
	layouts := []struct {
		name string
		opts func() Options
	}{
		{"fac", fusionTestOptions},
		{"fixed", func() Options {
			o := BaselineOptions()
			o.FixedBlockSize = 4096 // force multi-stripe splits
			return o
		}},
	}
	for _, lay := range layouts {
		t.Run(lay.name, func(t *testing.T) {
			type variant struct {
				name string
				put  func(s *Store) (*PutStats, error)
			}
			variants := []variant{
				{"materialized", func(s *Store) (*PutStats, error) {
					return s.Put("obj", data)
				}},
				{"reader-at", func(s *Store) (*PutStats, error) {
					return s.PutReader(context.Background(), "obj", bytes.NewReader(data), uint64(len(data)))
				}},
				{"sequential", func(s *Store) (*PutStats, error) {
					return s.PutReader(context.Background(), "obj", &sequentialReader{r: bytes.NewReader(data)}, uint64(len(data)))
				}},
			}
			var refMeta []byte
			var refInv map[string][]byte
			for _, v := range variants {
				s, cl := newSimStore(t, lay.opts())
				if _, err := v.put(s); err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				meta, err := s.Meta("obj")
				if err != nil {
					t.Fatal(err)
				}
				enc, err := EncodeMeta(meta)
				if err != nil {
					t.Fatal(err)
				}
				inv := clusterInventory(t, cl)
				if refMeta == nil {
					refMeta, refInv = enc, inv
					continue
				}
				if !bytes.Equal(enc, refMeta) {
					t.Errorf("%s: ObjectMeta differs from materialized path", v.name)
				}
				if len(inv) != len(refInv) {
					t.Fatalf("%s: %d stored blocks, want %d", v.name, len(inv), len(refInv))
				}
				for key, want := range refInv {
					got, ok := inv[key]
					if !ok {
						t.Fatalf("%s: block %s missing", v.name, key)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s: block %s bytes differ", v.name, key)
					}
				}
				// And the object reads back whole.
				got, err := s.Get("obj", 0, 0)
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("%s: Get mismatch: %v", v.name, err)
				}
			}
		})
	}
}

// TestPutReaderSizeValidation: a sequential source that disagrees with the
// declared size must be rejected before any block is written — a short
// source would under-fill the object, a long one would be silently
// truncated.
func TestPutReaderSizeValidation(t *testing.T) {
	data, _, _ := makeObject(t, 2, 200, 32)
	s, cl := newSimStore(t, fusionTestOptions())
	short := &sequentialReader{r: bytes.NewReader(data[:len(data)-10])}
	if _, err := s.PutReader(context.Background(), "obj", short, uint64(len(data))); err == nil {
		t.Fatal("short sequential source must fail")
	}
	long := &sequentialReader{r: bytes.NewReader(append(append([]byte(nil), data...), 0xAA))}
	if _, err := s.PutReader(context.Background(), "obj", long, uint64(len(data))); err == nil {
		t.Fatal("long sequential source must fail")
	}
	// A truncated random-access source fails when the gather reads past it.
	if _, err := s.PutReader(context.Background(), "obj", bytes.NewReader(data[:len(data)/2]), uint64(len(data))); err == nil {
		t.Fatal("truncated ReaderAt source must fail")
	}
	// Nothing may have been committed or left behind by the failed attempts.
	if _, err := s.Meta("obj"); err == nil {
		t.Fatal("failed Put must not publish metadata")
	}
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if !strings.HasPrefix(id, "kv/") {
				t.Fatalf("failed Put left block %q on node %d", id, i)
			}
		}
	}
}

// TestPutReaderGarbageTail: a source whose tail is not an lpq footer must be
// rejected by the tail probe without writing anything.
func TestPutReaderGarbageTail(t *testing.T) {
	s, cl := newSimStore(t, fusionTestOptions())
	junk := bytes.Repeat([]byte{0x5A}, 4096)
	if _, err := s.PutReader(context.Background(), "obj", bytes.NewReader(junk), uint64(len(junk))); err == nil {
		t.Fatal("non-lpq source must fail footer parse")
	}
	for i := 0; i < cl.NumNodes(); i++ {
		for _, id := range cl.Node(i).Blocks.IDs() {
			if !strings.HasPrefix(id, "kv/") {
				t.Fatalf("rejected Put left block %q on node %d", id, i)
			}
		}
	}
}

// TestStreamingPutPooledBuffersNotAliased extends the poison-on-put alias
// discipline to the put pipeline, under -race in CI: with pool poisoning
// armed, the pooled bin/parity arenas the streaming Put rents, scatters and
// releases must never alias bytes that reach a storage node or a reader.
// Concurrent Puts + readbacks make any use-after-put show up as corrupted
// round trips or a race report.
func TestStreamingPutPooledBuffersNotAliased(t *testing.T) {
	prev := bufpool.SetPoison(true)
	defer bufpool.SetPoison(prev)

	s, _ := newSimStore(t, fusionTestOptions())
	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data, _, _ := makeObject(t, 3, 250, int64(40+g))
			name := fmt.Sprintf("obj%d", g)
			for i := 0; i < 3; i++ {
				if _, err := s.PutReader(context.Background(), name, bytes.NewReader(data), uint64(len(data))); err != nil {
					errs <- err
					return
				}
				got, err := s.Get(name, 0, 0)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("%s: Put scattered poisoned/aliased bytes", name)
					return
				}
				if bufpool.Poisoned(got) {
					errs <- fmt.Errorf("%s: Get returned a returned-to-pool buffer", name)
					return
				}
				if _, err := s.Query("SELECT count(*) FROM " + name + " WHERE qty < 25"); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPutPipelineBoundedMemory: the pipeline's high-water mark must stay
// within two stripes' arenas — the builder works at most one stripe ahead of
// the scatter — on both layouts.
func TestPutPipelineBoundedMemory(t *testing.T) {
	data, _, _ := makeObject(t, 8, 1200, 33)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"fac", fusionTestOptions()},
		{"fixed", func() Options {
			o := BaselineOptions()
			o.FixedBlockSize = 4096
			return o
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := newSimStore(t, tc.opts)
			stats, err := s.PutReader(context.Background(), "obj", bytes.NewReader(data), uint64(len(data)))
			if err != nil {
				t.Fatal(err)
			}
			if stats.MaxStripeBytes == 0 || stats.PeakPipelineBytes == 0 {
				t.Fatalf("pipeline accounting missing: %+v", stats)
			}
			if stats.PeakPipelineBytes > 2*stats.MaxStripeBytes {
				t.Fatalf("peak pipeline bytes %d exceed two stripes (max stripe %d)",
					stats.PeakPipelineBytes, stats.MaxStripeBytes)
			}
			t.Logf("%s: %d stripes, max stripe %d B, peak %d B, object %d B",
				tc.name, stats.Stripes, stats.MaxStripeBytes, stats.PeakPipelineBytes, len(data))
		})
	}
}
