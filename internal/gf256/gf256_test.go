package gf256

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if Add(0x53, 0xca) != 0x53^0xca {
		t.Fatal("Add must be XOR")
	}
	if Sub(0x53, 0xca) != Add(0x53, 0xca) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestMulKnownValues(t *testing.T) {
	// Known products in the 0x11d field.
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 21, 0},
		{1, 1, 1},
		{2, 2, 4},
		{2, 128, 29}, // 2*128 overflows and reduces by 0x1d
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributivity(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%#x) = %#x is not an inverse", a, inv)
		}
	}
}

func TestDiv(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero must panic")
		}
	}()
	Div(5, 0)
}

func TestExpGeneratorOrder(t *testing.T) {
	if Exp(0) != 1 || Exp(255) != 1 {
		t.Fatal("generator order must be 255")
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("Exp must handle negative exponents")
	}
	seen := make(map[byte]bool)
	for e := 0; e < 255; e++ {
		seen[Exp(e)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator must cycle through all 255 nonzero elements, got %d", len(seen))
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	src := []byte{0, 1, 2, 3, 100, 200, 255, 17}
	dst := make([]byte, len(src))
	for c := 0; c < 256; c++ {
		MulSlice(byte(c), src, dst)
		for i := range src {
			if dst[i] != Mul(byte(c), src[i]) {
				t.Fatalf("MulSlice(%d) mismatch at %d", c, i)
			}
		}
	}
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	src := []byte{0, 1, 2, 3, 100, 200, 255, 17}
	for c := 0; c < 256; c++ {
		dst := []byte{9, 8, 7, 6, 5, 4, 3, 2}
		want := make([]byte, len(dst))
		for i := range dst {
			want[i] = dst[i] ^ Mul(byte(c), src[i])
		}
		MulAddSlice(byte(c), src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlice(%d) mismatch: got %v want %v", c, dst, want)
		}
	}
}

func TestMatrixIdentityMul(t *testing.T) {
	m := NewMatrix(3, 3)
	vals := []byte{1, 2, 3, 4, 5, 6, 7, 8, 10}
	copy(m.Data, vals)
	p := Identity(3).Mul(m)
	if !bytes.Equal(p.Data, vals) {
		t.Fatal("I*M must equal M")
	}
	p = m.Mul(Identity(3))
	if !bytes.Equal(p.Data, vals) {
		t.Fatal("M*I must equal M")
	}
}

func TestMatrixInvert(t *testing.T) {
	m := NewMatrix(3, 3)
	copy(m.Data, []byte{1, 2, 3, 4, 5, 6, 7, 8, 10})
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	prod := m.Mul(inv)
	if !bytes.Equal(prod.Data, Identity(3).Data) {
		t.Fatalf("M * M^-1 != I: %v", prod.Data)
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []byte{1, 2, 1, 2}) // duplicate rows
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestMatrixInvertRandom(t *testing.T) {
	f := func(data [16]byte) bool {
		m := NewMatrix(4, 4)
		copy(m.Data, data[:])
		inv, err := m.Invert()
		if err != nil {
			return true // singular matrices are allowed to fail
		}
		return bytes.Equal(m.Mul(inv).Data, Identity(4).Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatrix(t *testing.T) {
	m := NewMatrix(3, 2)
	copy(m.Data, []byte{1, 2, 3, 4, 5, 6})
	s := m.SubMatrix([]int{2, 0})
	if !bytes.Equal(s.Data, []byte{5, 6, 1, 2}) {
		t.Fatalf("SubMatrix wrong: %v", s.Data)
	}
}

func TestVandermondeShape(t *testing.T) {
	v := Vandermonde(5, 3)
	for r := 0; r < 5; r++ {
		if v.At(r, 0) != 1 {
			t.Fatalf("column 0 must be all ones, row %d is %d", r, v.At(r, 0))
		}
	}
	if v.At(3, 1) != 3 {
		t.Fatalf("entry (3,1) must be 3, got %d", v.At(3, 1))
	}
	if v.At(3, 2) != Mul(3, 3) {
		t.Fatalf("entry (3,2) must be 3^2")
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 1<<20)
	dst := make([]byte, 1<<20)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x1f, src, dst)
	}
}
