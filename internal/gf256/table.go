package gf256

import "encoding/binary"

// MulTable is a precomputed multiplication table for one coefficient c:
// tab[b] = c·b for every byte b. Building a table walks the log/exp tables
// 255 times; applying it replaces the log/exp arithmetic and the zero test
// of Mul with a single branch-free load per byte. Callers with a fixed set
// of coefficients (the erasure coder's code matrix) build the tables once
// and reuse them on every stripe, which is where the bulk-encode speedup
// over MulAddSlice comes from.
type MulTable struct {
	c   byte
	tab [256]byte
}

// NewMulTable returns the multiplication table for coefficient c.
func NewMulTable(c byte) *MulTable {
	t := &MulTable{c: c}
	if c == 0 {
		return t
	}
	logC := int(logTable[c])
	for b := 1; b < 256; b++ {
		t.tab[b] = expTable[logC+int(logTable[b])]
	}
	return t
}

// Coefficient returns the coefficient the table was built for.
func (t *MulTable) Coefficient() byte { return t.c }

// MulAdd sets dst[i] ^= c·src[i] for all i of src; dst must be at least as
// long. Coefficient 1 degenerates to a word-at-a-time XOR and coefficient 0
// to a no-op; other coefficients run the 8-way unrolled table kernel.
func (t *MulTable) MulAdd(src, dst []byte) {
	switch t.c {
	case 0:
		return
	case 1:
		XorSlice(src, dst)
		return
	}
	tab := &t.tab
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= tab[s[0]]
		d[1] ^= tab[s[1]]
		d[2] ^= tab[s[2]]
		d[3] ^= tab[s[3]]
		d[4] ^= tab[s[4]]
		d[5] ^= tab[s[5]]
		d[6] ^= tab[s[6]]
		d[7] ^= tab[s[7]]
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= tab[src[i]]
	}
}

// Mul sets dst[i] = c·src[i] for all i of src, overwriting dst. Using Mul
// for the first accumulated row saves the clear pass (and dst read-back)
// that a MulAdd into a zeroed buffer would pay.
func (t *MulTable) Mul(src, dst []byte) {
	switch t.c {
	case 0:
		clear(dst[:len(src)])
		return
	case 1:
		copy(dst, src)
		return
	}
	tab := &t.tab
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = tab[s[0]]
		d[1] = tab[s[1]]
		d[2] = tab[s[2]]
		d[3] = tab[s[3]]
		d[4] = tab[s[4]]
		d[5] = tab[s[5]]
		d[6] = tab[s[6]]
		d[7] = tab[s[7]]
	}
	for i := n; i < len(src); i++ {
		dst[i] = tab[src[i]]
	}
}

// XorSlice sets dst[i] ^= src[i] for all i of src, 32 bytes per step via
// unaligned uint64 loads — the coefficient-1 fast path (GF(2^8) addition).
func XorSlice(src, dst []byte) {
	n := len(src)
	i := 0
	for ; i+32 <= n; i += 32 {
		s := src[i : i+32 : i+32]
		d := dst[i : i+32 : i+32]
		binary.LittleEndian.PutUint64(d[0:], binary.LittleEndian.Uint64(s[0:])^binary.LittleEndian.Uint64(d[0:]))
		binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(s[8:])^binary.LittleEndian.Uint64(d[8:]))
		binary.LittleEndian.PutUint64(d[16:], binary.LittleEndian.Uint64(s[16:])^binary.LittleEndian.Uint64(d[16:]))
		binary.LittleEndian.PutUint64(d[24:], binary.LittleEndian.Uint64(s[24:])^binary.LittleEndian.Uint64(d[24:]))
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(src[i:])^binary.LittleEndian.Uint64(dst[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
