package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMulTableMatchesMul checks every (coefficient, operand) pair against
// the log/exp Mul.
func TestMulTableMatchesMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		tab := NewMulTable(byte(c))
		if tab.Coefficient() != byte(c) {
			t.Fatalf("Coefficient() = %d, want %d", tab.Coefficient(), c)
		}
		for b := 0; b < 256; b++ {
			if got, want := tab.tab[b], Mul(byte(c), byte(b)); got != want {
				t.Fatalf("table[%d][%d] = %d, want %d", c, b, got, want)
			}
		}
	}
}

// TestMulTableSlicesMatchNaive drives MulAdd and Mul against the retained
// byte-wise MulAddSlice/MulSlice across random coefficients and lengths,
// including the odd tails the 8-way unroll must handle.
func TestMulTableSlicesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(c byte, raw []byte) bool {
		src := raw
		if len(src) == 0 {
			src = []byte{byte(rng.Intn(256))}
		}
		tab := NewMulTable(c)

		dstA := make([]byte, len(src))
		dstB := make([]byte, len(src))
		rng.Read(dstA)
		copy(dstB, dstA)
		tab.MulAdd(src, dstA)
		MulAddSlice(c, src, dstB)
		if !bytes.Equal(dstA, dstB) {
			return false
		}

		tab.Mul(src, dstA)
		MulSlice(c, src, dstB)
		return bytes.Equal(dstA, dstB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestXorSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = src[i] ^ dst[i]
		}
		XorSlice(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("XorSlice length %d mismatch", n)
		}
	}
}

// BenchmarkGF256MulAdd compares the seed byte-wise kernel with the
// table-driven kernel and the coefficient-1 XOR fast path on a 64 KiB
// buffer (a typical encode sub-range).
func BenchmarkGF256MulAdd(b *testing.B) {
	const size = 64 << 10
	src := make([]byte, size)
	dst := make([]byte, size)
	rand.New(rand.NewSource(9)).Read(src)
	const coeff = 0x8e

	b.Run("naive", func(b *testing.B) {
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MulAddSlice(coeff, src, dst)
		}
	})
	b.Run("table", func(b *testing.B) {
		tab := NewMulTable(coeff)
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tab.MulAdd(src, dst)
		}
	})
	b.Run("xor", func(b *testing.B) {
		tab := NewMulTable(1)
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tab.MulAdd(src, dst)
		}
	})
}
