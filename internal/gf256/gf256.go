// Package gf256 implements arithmetic over the Galois field GF(2^8) with the
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the field used by most
// storage-system Reed–Solomon implementations. All operations run on single
// bytes; bulk helpers operate over slices for the erasure coder's hot path.
package gf256

// Irreducible polynomial used to generate the field, without the x^8 term.
const polynomial = 0x1d

// exp and log tables. exp is doubled so Mul can skip a modular reduction.
var (
	expTable [512]byte
	logTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		expTable[i+255] = x
		logTable[x] = byte(i)
		// Multiply x by the generator 2 in GF(2^8).
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= polynomial
		}
	}
	expTable[510] = expTable[0]
	expTable[511] = expTable[1]
}

// Add returns a + b. Addition in GF(2^8) is XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b, which equals a + b in characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns the product a * b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b. It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])-int(logTable[b])+255]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator 2 raised to the power e (mod 255).
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// MulSlice sets dst[i] = c * src[i] for all i. dst and src must have the same
// length. This is the coder's row-scaling primitive.
func MulSlice(c byte, src, dst []byte) {
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[logC+int(logTable[s])]
		}
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] for all i, accumulating a scaled row
// into dst. dst and src must have the same length.
func MulAddSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}
