//go:build amd64 && !purego

package gf256

// useSSSE3 gates the PSHUFB bulk path. SSSE3 shipped in 2006 and is present
// on effectively every amd64 CPU, but the baseline amd64 ISA does not
// guarantee it, so it is probed once at startup.
var useSSSE3 = hasSSSE3()

// hasSSSE3 reports whether the CPU supports SSSE3 (CPUID.1:ECX bit 9).
//
//go:noescape
func hasSSSE3() bool

// gfMulAddSSSE3 sets dst[i] ^= c·src[i] for i < n using the split tables as
// PSHUFB shuffle operands. n must be a positive multiple of 16.
//
//go:noescape
func gfMulAddSSSE3(lo, hi *[16]byte, src, dst *byte, n int)

// gfMulSSSE3 sets dst[i] = c·src[i] for i < n. n must be a positive
// multiple of 16.
//
//go:noescape
func gfMulSSSE3(lo, hi *[16]byte, src, dst *byte, n int)
