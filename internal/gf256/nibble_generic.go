//go:build !amd64 || purego

package gf256

// useSSSE3 is false off amd64 (and under the purego tag): the bulk paths
// run the portable SWAR bitplane loop instead.
const useSSSE3 = false

func gfMulAddSSSE3(lo, hi *[16]byte, src, dst *byte, n int) {
	panic("gf256: SSSE3 kernel called without SSSE3")
}

func gfMulSSSE3(lo, hi *[16]byte, src, dst *byte, n int) {
	panic("gf256: SSSE3 kernel called without SSSE3")
}
