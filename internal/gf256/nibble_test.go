package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestNibbleTableMatchesMul checks every (coefficient, operand) pair: the
// scalar split-table path and the SWAR word path must both reproduce the
// log/exp Mul exactly.
func TestNibbleTableMatchesMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		tab := NewNibbleTable(byte(c))
		if tab.Coefficient() != byte(c) {
			t.Fatalf("Coefficient() = %d, want %d", tab.Coefficient(), c)
		}
		for b := 0; b < 256; b++ {
			want := Mul(byte(c), byte(b))
			if got := tab.lo[b&0x0f] ^ tab.hi[b>>4]; got != want {
				t.Fatalf("split table [%d][%d] = %d, want %d", c, b, got, want)
			}
			if got := byte(tab.mulWord(uint64(b))); got != want {
				t.Fatalf("mulWord [%d][%d] = %d, want %d", c, b, got, want)
			}
		}
	}
}

// TestNibbleLanesIndependent fills all 8 lanes of a word with distinct
// random bytes and checks each lane multiplies independently — the carry
// containment the SWAR mask-multiply relies on.
func TestNibbleLanesIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		c := byte(rng.Intn(256))
		tab := NewNibbleTable(c)
		w := rng.Uint64()
		got := tab.mulWord(w)
		for lane := 0; lane < 8; lane++ {
			in := byte(w >> (8 * lane))
			want := Mul(c, in)
			if out := byte(got >> (8 * lane)); out != want {
				t.Fatalf("c=%#02x word=%#016x lane %d: got %#02x, want %#02x",
					c, w, lane, out, want)
			}
		}
	}
}

// TestNibbleSlicesMatchNaive drives MulAdd and Mul against the retained
// byte-wise MulAddSlice/MulSlice across random coefficients and lengths,
// including the sub-16-byte tails that fall through to the split tables.
func TestNibbleSlicesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(c byte, raw []byte) bool {
		src := raw
		if len(src) == 0 {
			src = []byte{byte(rng.Intn(256))}
		}
		tab := NewNibbleTable(c)

		dstA := make([]byte, len(src))
		dstB := make([]byte, len(src))
		rng.Read(dstA)
		copy(dstB, dstA)
		tab.MulAdd(src, dstA)
		MulAddSlice(c, src, dstB)
		if !bytes.Equal(dstA, dstB) {
			return false
		}

		tab.Mul(src, dstA)
		MulSlice(c, src, dstB)
		return bytes.Equal(dstA, dstB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNibbleSWARMatchesNaive exercises the portable SWAR bulk path
// directly — on amd64 MulAdd/Mul dispatch to the PSHUFB kernel, so the
// fallback needs its own drive-through.
func TestNibbleSWARMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func(c byte, raw []byte) bool {
		src := raw
		if len(src) == 0 {
			src = []byte{byte(rng.Intn(256))}
		}
		tab := NewNibbleTable(c)
		if tab.c == 0 || tab.c == 1 {
			c, tab = 0x8e, NewNibbleTable(0x8e) // SWAR paths assume c ≥ 2
		}

		dstA := make([]byte, len(src))
		dstB := make([]byte, len(src))
		rng.Read(dstA)
		copy(dstB, dstA)
		tab.mulAddSWAR(src, dstA, 0)
		MulAddSlice(c, src, dstB)
		if !bytes.Equal(dstA, dstB) {
			return false
		}

		tab.mulSWAR(src, dstA, 0)
		MulSlice(c, src, dstB)
		return bytes.Equal(dstA, dstB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNibbleTails pins the unroll boundaries: every length around the
// 16-byte and 8-byte steps must agree with the naive kernel.
func TestNibbleTails(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tab := NewNibbleTable(0x8e)
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 31, 32, 33, 1000} {
		src := make([]byte, n)
		dst := make([]byte, n)
		want := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		copy(want, dst)
		tab.MulAdd(src, dst)
		MulAddSlice(0x8e, src, want)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAdd length %d mismatch", n)
		}
		tab.Mul(src, dst)
		MulSlice(0x8e, src, want)
		if !bytes.Equal(dst, want) {
			t.Fatalf("Mul length %d mismatch", n)
		}
	}
}

// BenchmarkGF256MulAddNibble pits the nibble SWAR kernel against the product
// table on the same 64 KiB buffer BenchmarkGF256MulAdd uses, so the two
// suites read side by side.
func BenchmarkGF256MulAddNibble(b *testing.B) {
	const size = 64 << 10
	src := make([]byte, size)
	dst := make([]byte, size)
	rand.New(rand.NewSource(14)).Read(src)
	tab := NewNibbleTable(0x8e)
	b.SetBytes(size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.MulAdd(src, dst)
	}
}
