//go:build amd64 && !purego

#include "textflag.h"

// func hasSSSE3() bool
TEXT ·hasSSSE3(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	SHRL $9, CX
	ANDL $1, CX
	MOVB CX, ret+0(FP)
	RET

// The two kernels below implement nibble split-table GF(2^8) multiplication:
// X0 holds the 16-entry low-nibble product table, X1 the high-nibble table,
// X2 the 0x0f byte mask. Each 16-byte block is split into nibbles and each
// PSHUFB performs sixteen table lookups at once; XORing the two shuffle
// results yields c·src for all 16 lanes.

// func gfMulAddSSSE3(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·gfMulAddSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), CX
	MOVOU (AX), X0
	MOVOU (BX), X1
	MOVQ  $0x0f0f0f0f0f0f0f0f, AX
	MOVQ  AX, X2
	PUNPCKLQDQ X2, X2

addloop32:
	CMPQ CX, $32
	JL   addloop16
	MOVOU (SI), X3
	MOVOU 16(SI), X8
	MOVOA X3, X4
	MOVOA X8, X9
	PSRLW $4, X4
	PSRLW $4, X9
	PAND  X2, X3
	PAND  X2, X4
	PAND  X2, X8
	PAND  X2, X9
	MOVOA X0, X5
	MOVOA X1, X6
	MOVOA X0, X10
	MOVOA X1, X11
	PSHUFB X3, X5
	PSHUFB X4, X6
	PSHUFB X8, X10
	PSHUFB X9, X11
	PXOR  X6, X5
	PXOR  X11, X10
	MOVOU (DI), X7
	MOVOU 16(DI), X12
	PXOR  X5, X7
	PXOR  X10, X12
	MOVOU X7, (DI)
	MOVOU X12, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	JMP   addloop32

addloop16:
	CMPQ CX, $16
	JL   adddone
	MOVOU (SI), X3
	MOVOA X3, X4
	PSRLW $4, X4
	PAND  X2, X3
	PAND  X2, X4
	MOVOA X0, X5
	MOVOA X1, X6
	PSHUFB X3, X5
	PSHUFB X4, X6
	PXOR  X6, X5
	MOVOU (DI), X7
	PXOR  X5, X7
	MOVOU X7, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JMP   addloop16

adddone:
	RET

// func gfMulSSSE3(lo, hi *[16]byte, src, dst *byte, n int)
TEXT ·gfMulSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ dst+24(FP), DI
	MOVQ n+32(FP), CX
	MOVOU (AX), X0
	MOVOU (BX), X1
	MOVQ  $0x0f0f0f0f0f0f0f0f, AX
	MOVQ  AX, X2
	PUNPCKLQDQ X2, X2

mulloop32:
	CMPQ CX, $32
	JL   mulloop16
	MOVOU (SI), X3
	MOVOU 16(SI), X8
	MOVOA X3, X4
	MOVOA X8, X9
	PSRLW $4, X4
	PSRLW $4, X9
	PAND  X2, X3
	PAND  X2, X4
	PAND  X2, X8
	PAND  X2, X9
	MOVOA X0, X5
	MOVOA X1, X6
	MOVOA X0, X10
	MOVOA X1, X11
	PSHUFB X3, X5
	PSHUFB X4, X6
	PSHUFB X8, X10
	PSHUFB X9, X11
	PXOR  X6, X5
	PXOR  X11, X10
	MOVOU X5, (DI)
	MOVOU X10, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	JMP   mulloop32

mulloop16:
	CMPQ CX, $16
	JL   muldone
	MOVOU (SI), X3
	MOVOA X3, X4
	PSRLW $4, X4
	PAND  X2, X3
	PAND  X2, X4
	MOVOA X0, X5
	MOVOA X1, X6
	PSHUFB X3, X5
	PSHUFB X4, X6
	PXOR  X6, X5
	MOVOU X5, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JMP   mulloop16

muldone:
	RET
