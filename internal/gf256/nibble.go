package gf256

import "encoding/binary"

// Kernel is a bulk multiply-accumulate engine for one fixed coefficient —
// the seam the erasure coder selects its inner loop through. Three
// implementations exist, in ascending speed: the naive log/exp arithmetic
// (MulSlice/MulAddSlice, kept as the property-test reference), the 256-entry
// product table (MulTable), and the nibble split-table SWAR kernel
// (NibbleTable).
type Kernel interface {
	// Coefficient returns the coefficient the kernel was built for.
	Coefficient() byte
	// Mul sets dst[i] = c·src[i], overwriting dst.
	Mul(src, dst []byte)
	// MulAdd sets dst[i] ^= c·src[i], accumulating into dst.
	MulAdd(src, dst []byte)
}

// NewKernel returns the fastest kernel for coefficient c.
func NewKernel(c byte) Kernel { return NewNibbleTable(c) }

// NibbleTable is the split-table kernel for one coefficient c — the shuffle
// erasure-coding technique. Multiplication by c is linear over GF(2), so
// c·b decomposes per nibble — c·b = lo[b&15] ^ hi[b>>4] — needing two
// 16-entry tables instead of one 256-entry table. Sixteen entries is
// exactly one vector register: on amd64 the bulk loop runs both lookups as
// PSHUFB shuffles, multiplying 16 bytes per instruction pair, which is what
// puts this kernel well ahead of the product table on bulk encodes (the
// 256-entry table is a per-byte load the CPU cannot vectorize).
//
// Elsewhere the bulk loop decomposes per *bit* instead: c·b = XOR over set
// bits i of b of c·2^i, which vectorizes over 8 bytes at a time in a uint64
// (SWAR). For each bit position i, ((w>>i) & 0x0101…01) extracts that bit
// of every lane as a 0/1 byte, and multiplying the mask by the byte
// constant c·2^i broadcasts the constant into exactly the lanes whose bit
// was set — lanes never carry into each other because every mask byte is 0
// or 1 and the constant fits in 8 bits. Eight shift/mask/multiply/XOR
// rounds replace twenty-four per-byte loads and stores.
type NibbleTable struct {
	c      byte
	lo, hi [16]byte  // lo[v] = c·v, hi[v] = c·(v<<4): the scalar-tail tables
	planes [8]uint64 // planes[i] = c·2^i: the SWAR bitplane constants
}

// NewNibbleTable returns the split-table kernel for coefficient c.
func NewNibbleTable(c byte) *NibbleTable {
	t := &NibbleTable{c: c}
	for v := 0; v < 16; v++ {
		t.lo[v] = Mul(c, byte(v))
		t.hi[v] = Mul(c, byte(v<<4))
	}
	for i := 0; i < 8; i++ {
		t.planes[i] = uint64(Mul(c, 1<<i))
	}
	return t
}

// Coefficient returns the coefficient the kernel was built for.
func (t *NibbleTable) Coefficient() byte { return t.c }

// laneMask extracts one bit of each of a word's 8 byte lanes.
const laneMask = 0x0101010101010101

// mulWord multiplies all 8 byte lanes of w by the kernel's coefficient.
func (t *NibbleTable) mulWord(w uint64) uint64 {
	p := &t.planes
	acc := (w & laneMask) * p[0]
	acc ^= ((w >> 1) & laneMask) * p[1]
	acc ^= ((w >> 2) & laneMask) * p[2]
	acc ^= ((w >> 3) & laneMask) * p[3]
	acc ^= ((w >> 4) & laneMask) * p[4]
	acc ^= ((w >> 5) & laneMask) * p[5]
	acc ^= ((w >> 6) & laneMask) * p[6]
	acc ^= ((w >> 7) & laneMask) * p[7]
	return acc
}

// MulAdd sets dst[i] ^= c·src[i] for all i of src; dst must be at least as
// long. Coefficient 1 degenerates to a word-at-a-time XOR and coefficient 0
// to a no-op. Other coefficients run the split tables 16 bytes per step via
// PSHUFB where the CPU has it (the shuffle is a 16-way parallel lookup into
// the 16-entry tables) and otherwise fall back to the portable SWAR bitplane
// loop.
func (t *NibbleTable) MulAdd(src, dst []byte) {
	switch t.c {
	case 0:
		return
	case 1:
		XorSlice(src, dst)
		return
	}
	i := 0
	if useSSSE3 && len(src) >= 16 {
		i = len(src) &^ 15
		gfMulAddSSSE3(&t.lo, &t.hi, &src[0], &dst[0], i)
	}
	t.mulAddSWAR(src, dst, i)
}

// mulAddSWAR is the portable bulk path from byte offset start: the SWAR
// bitplane kernel, two independent words per iteration to hide the multiply
// latency, with the split tables covering the sub-word tail.
func (t *NibbleTable) mulAddSWAR(src, dst []byte, start int) {
	n := len(src)
	i := start
	for ; i+16 <= n; i += 16 {
		s := src[i : i+16 : i+16]
		d := dst[i : i+16 : i+16]
		a := t.mulWord(binary.LittleEndian.Uint64(s[0:]))
		b := t.mulWord(binary.LittleEndian.Uint64(s[8:]))
		binary.LittleEndian.PutUint64(d[0:], binary.LittleEndian.Uint64(d[0:])^a)
		binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(d[8:])^b)
	}
	for ; i+8 <= n; i += 8 {
		a := t.mulWord(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^a)
	}
	for ; i < n; i++ {
		s := src[i]
		dst[i] ^= t.lo[s&0x0f] ^ t.hi[s>>4]
	}
}

// Mul sets dst[i] = c·src[i] for all i of src, overwriting dst. Using Mul
// for the first accumulated row saves the clear pass (and dst read-back)
// that a MulAdd into a zeroed buffer would pay.
func (t *NibbleTable) Mul(src, dst []byte) {
	switch t.c {
	case 0:
		clear(dst[:len(src)])
		return
	case 1:
		copy(dst, src)
		return
	}
	i := 0
	if useSSSE3 && len(src) >= 16 {
		i = len(src) &^ 15
		gfMulSSSE3(&t.lo, &t.hi, &src[0], &dst[0], i)
	}
	t.mulSWAR(src, dst, i)
}

// mulSWAR is Mul's portable bulk path from byte offset start.
func (t *NibbleTable) mulSWAR(src, dst []byte, start int) {
	n := len(src)
	i := start
	for ; i+16 <= n; i += 16 {
		s := src[i : i+16 : i+16]
		d := dst[i : i+16 : i+16]
		a := t.mulWord(binary.LittleEndian.Uint64(s[0:]))
		b := t.mulWord(binary.LittleEndian.Uint64(s[8:]))
		binary.LittleEndian.PutUint64(d[0:], a)
		binary.LittleEndian.PutUint64(d[8:], b)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], t.mulWord(binary.LittleEndian.Uint64(src[i:])))
	}
	for ; i < n; i++ {
		s := src[i]
		dst[i] = t.lo[s&0x0f] ^ t.hi[s>>4]
	}
}
