package gf256

import (
	"errors"
	"fmt"
)

// Matrix is a dense matrix over GF(2^8), stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix returns a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mul returns the matrix product m × other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf256: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			MulAddSlice(a, other.Row(k), out.Row(r))
		}
	}
	return out
}

// ErrSingular reports that a matrix could not be inverted.
var ErrSingular = errors.New("gf256: matrix is singular")

// Invert returns the inverse of a square matrix via Gauss–Jordan
// elimination, or ErrSingular if no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("gf256: cannot invert non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale the pivot row so the pivot is 1.
		if p := work.At(col, col); p != 1 {
			pi := Inv(p)
			MulSlice(pi, work.Row(col), work.Row(col))
			MulSlice(pi, inv.Row(col), inv.Row(col))
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.At(r, col); f != 0 {
				MulAddSlice(f, work.Row(col), work.Row(r))
				MulAddSlice(f, inv.Row(col), inv.Row(r))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// SubMatrix returns the matrix formed by the given rows of m.
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Vandermonde returns a rows×cols matrix with entry (r, c) = r^c, the raw
// Vandermonde construction. Combined with Gaussian elimination (see
// erasure.buildMatrix) it yields a systematic code matrix whose every square
// submatrix of k rows is invertible.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		v := byte(1)
		for c := 0; c < cols; c++ {
			m.Set(r, c, v)
			v = Mul(v, byte(r))
		}
	}
	return m
}
