package metrics

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram is a fixed-footprint latency histogram with power-of-two
// exponential buckets: bucket i counts durations whose nanosecond value has
// bit length i, i.e. [2^(i-1), 2^i). 64 buckets span sub-nanosecond to
// centuries, so there is no configuration and no clipping. Quantiles are
// resolved to a bucket and interpolated geometrically within it, which is
// exact to within a factor of 2 — plenty for the p50/p95/p99 summaries the
// evaluation tables report. Histogram itself is not synchronized; use
// HistogramSet for concurrent recording.
type Histogram struct {
	count   uint64
	sum     uint64 // nanoseconds
	min     uint64
	max     uint64
	buckets [65]uint64
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bits.Len64(ns)]++
	h.count++
	h.sum += ns
	if h.count == 1 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// merge folds another histogram into h.
func (h *Histogram) merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the q-quantile (q in [0,1]) by bucket walk with
// geometric interpolation, clamped to the observed min/max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if seen+c > rank {
			// Bucket i spans [2^(i-1), 2^i); interpolate linearly inside.
			lo, hi := uint64(0), uint64(1)<<i
			if i > 0 {
				lo = uint64(1) << (i - 1)
			}
			if i >= 63 {
				hi = h.max
			}
			frac := float64(rank-seen) / float64(c)
			v := lo + uint64(frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
		seen += c
	}
	return time.Duration(h.max)
}

// Key identifies one histogram in a HistogramSet: an operation label and a
// node id (NodeNone for coordinator-level operations).
type Key struct {
	Op   string
	Node int
}

// NodeNone marks a histogram not tied to a storage node.
const NodeNone = -1

func (k Key) String() string {
	if k.Node == NodeNone {
		return k.Op
	}
	return fmt.Sprintf("%s[node %d]", k.Op, k.Node)
}

// histStripes is the lock-stripe count; a small power of two keeps the
// modulo cheap while spreading per-node keys across locks.
const histStripes = 16

type histShard struct {
	mu sync.Mutex
	m  map[Key]*Histogram
}

// HistogramSet is a lock-striped collection of latency histograms keyed by
// (op, node). Observe is safe for concurrent use from every hot path;
// stripes keep unrelated (op, node) pairs from contending on one lock. All
// methods are nil-safe, so an optional recorder threads through without
// checks.
type HistogramSet struct {
	shards [histStripes]histShard
}

// NewHistogramSet returns an empty set.
func NewHistogramSet() *HistogramSet {
	s := &HistogramSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[Key]*Histogram)
	}
	return s
}

func (s *HistogramSet) shard(k Key) *histShard {
	h := fnv.New32a()
	io.WriteString(h, k.Op)
	var nb [4]byte
	n := uint32(k.Node)
	nb[0], nb[1], nb[2], nb[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	h.Write(nb[:])
	return &s.shards[h.Sum32()%histStripes]
}

// Observe records one duration under a key.
func (s *HistogramSet) Observe(k Key, d time.Duration) {
	if s == nil {
		return
	}
	sh := s.shard(k)
	sh.mu.Lock()
	h := sh.m[k]
	if h == nil {
		h = &Histogram{}
		sh.m[k] = h
	}
	h.Observe(d)
	sh.mu.Unlock()
}

// HistogramSnapshot is one histogram's summary at snapshot time.
type HistogramSnapshot struct {
	Op    string        `json:"op"`
	Node  int           `json:"node"`
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

func summarize(k Key, h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Op:    k.Op,
		Node:  k.Node,
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Min:   time.Duration(h.min),
		Max:   time.Duration(h.max),
	}
}

// Snapshot summarizes every histogram, sorted by op then node.
func (s *HistogramSet) Snapshot() []HistogramSnapshot {
	if s == nil {
		return nil
	}
	var out []HistogramSnapshot
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, h := range sh.m {
			out = append(out, summarize(k, h))
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Op != out[b].Op {
			return out[a].Op < out[b].Op
		}
		return out[a].Node < out[b].Node
	})
	return out
}

// Get returns one key's summary and whether it exists.
func (s *HistogramSet) Get(k Key) (HistogramSnapshot, bool) {
	if s == nil {
		return HistogramSnapshot{}, false
	}
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h := sh.m[k]
	if h == nil {
		return HistogramSnapshot{}, false
	}
	return summarize(k, h), true
}

// Merged folds all nodes' histograms for one op into a single summary
// (per-op totals for /debug/fusionz's headline rows).
func (s *HistogramSet) Merged(op string) (HistogramSnapshot, bool) {
	if s == nil {
		return HistogramSnapshot{}, false
	}
	var sum Histogram
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, h := range sh.m {
			if k.Op == op {
				sum.merge(h)
			}
		}
		sh.mu.Unlock()
	}
	if sum.count == 0 {
		return HistogramSnapshot{}, false
	}
	return summarize(Key{Op: op, Node: NodeNone}, &sum), true
}

// Reset drops every histogram.
func (s *HistogramSet) Reset() {
	if s == nil {
		return
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = make(map[Key]*Histogram)
		sh.mu.Unlock()
	}
}

// WriteText renders the set as an aligned text table (the /debug/fusionz
// text format and fusion-bench's histogram summaries).
func (s *HistogramSet) WriteText(w io.Writer) {
	snaps := s.Snapshot()
	if len(snaps) == 0 {
		fmt.Fprintln(w, "(no histograms)")
		return
	}
	keyW := len("op")
	for _, sn := range snaps {
		if l := len(Key{Op: sn.Op, Node: sn.Node}.String()); l > keyW {
			keyW = l
		}
	}
	fmt.Fprintf(w, "  %-*s %10s %12s %12s %12s %12s %12s %12s\n",
		keyW, "op", "count", "mean", "p50", "p95", "p99", "p99.9", "max")
	for _, sn := range snaps {
		fmt.Fprintf(w, "  %-*s %10d %12v %12v %12v %12v %12v %12v\n",
			keyW, Key{Op: sn.Op, Node: sn.Node}.String(), sn.Count,
			round(sn.Mean), round(sn.P50), round(sn.P95), round(sn.P99), round(sn.P999), round(sn.Max))
	}
}

// String renders WriteText as a string.
func (s *HistogramSet) String() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}

// round trims sub-microsecond noise from rendered durations.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}
