// Package metrics provides the measurement primitives the evaluation
// harness uses: latency percentile summaries, per-phase latency breakdowns
// (disk read / chunk processing / network / other, as in Figs. 4b and
// 13c-d), CDFs, and byte-traffic accumulators.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// LatencySample is one query's end-to-end latency with its phase breakdown.
type LatencySample struct {
	Total time.Duration
	Phase Breakdown
}

// Breakdown is per-phase time, following the paper's decomposition: disk
// read, chunk processing (decode + SQL evaluation), network (transfer +
// RPC overhead) and other.
type Breakdown struct {
	DiskRead   time.Duration
	Processing time.Duration
	Network    time.Duration
	Other      time.Duration
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.DiskRead += o.DiskRead
	b.Processing += o.Processing
	b.Network += o.Network
	b.Other += o.Other
}

// Total returns the sum of all phases.
func (b Breakdown) Total() time.Duration {
	return b.DiskRead + b.Processing + b.Network + b.Other
}

// Fractions returns each phase as a fraction of the total (zeros for an
// empty breakdown).
func (b Breakdown) Fractions() (disk, proc, net, other float64) {
	t := float64(b.Total())
	if t == 0 {
		return 0, 0, 0, 0
	}
	return float64(b.DiskRead) / t, float64(b.Processing) / t, float64(b.Network) / t, float64(b.Other) / t
}

func (b Breakdown) String() string {
	d, p, n, o := b.Fractions()
	return fmt.Sprintf("disk %.1f%% proc %.1f%% net %.1f%% other %.1f%% (total %v)",
		d*100, p*100, n*100, o*100, b.Total())
}

// LatencyRecorder collects samples and summarizes percentiles.
type LatencyRecorder struct {
	samples []LatencySample
}

// Record appends a sample.
func (r *LatencyRecorder) Record(s LatencySample) { r.samples = append(r.samples, s) }

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Percentile returns the p-th percentile latency (p in [0,100]) using
// nearest-rank on the sorted samples. It returns 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.samples))
	for i, s := range r.samples {
		sorted[i] = s.Total
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return percentileOf(sorted, p)
}

func percentileOf(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// P50 and P99 are the paper's two headline percentiles.
func (r *LatencyRecorder) P50() time.Duration { return r.Percentile(50) }

// P99 returns the 99th percentile latency.
func (r *LatencyRecorder) P99() time.Duration { return r.Percentile(99) }

// MeanBreakdown averages the phase breakdown across samples.
func (r *LatencyRecorder) MeanBreakdown() Breakdown {
	var sum Breakdown
	if len(r.samples) == 0 {
		return sum
	}
	for _, s := range r.samples {
		sum.Add(s.Phase)
	}
	n := time.Duration(len(r.samples))
	return Breakdown{
		DiskRead:   sum.DiskRead / n,
		Processing: sum.Processing / n,
		Network:    sum.Network / n,
		Other:      sum.Other / n,
	}
}

// Reduction returns the relative latency reduction of b versus a baseline:
// (baseline − b) / baseline. Positive means b is faster. This is the
// "latency reduction (%)" quantity of Figs. 13-15 (as a fraction).
func Reduction(baseline, b time.Duration) float64 {
	if baseline == 0 {
		return 0
	}
	return float64(baseline-b) / float64(baseline)
}

// Traffic accumulates network byte counts.
type Traffic struct {
	Bytes    uint64
	Messages uint64
}

// Add records one message of n bytes.
func (t *Traffic) Add(n uint64) {
	t.Bytes += n
	t.Messages++
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value      float64
	Percentile float64 // 0..100
}

// CDF computes the empirical CDF of values at each sample point.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Percentile: float64(i+1) / float64(len(sorted)) * 100}
	}
	return out
}

// CDFAt returns the fraction of values ≤ x.
func CDFAt(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// Normalize scales values into [0, 1] by the maximum (Fig. 4c's
// "normalized column chunk size"). A zero max yields all zeros.
func Normalize(values []float64) []float64 {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(values))
	if max == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / max
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}
