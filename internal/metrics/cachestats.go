package metrics

// CacheTier holds one cache tier's hit/miss accounting.
type CacheTier struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions,omitempty"`
	Entries   uint64 `json:"entries,omitempty"`
}

// HitRate is Hits / (Hits + Misses), or 0 when the tier saw no lookups.
func (t CacheTier) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}

// CacheStats snapshots the coordinator cache: per-tier lookup counters plus
// the shared data-tier budget accounting and the singleflight/decode
// counters used by the thundering-herd gate.
type CacheStats struct {
	Meta  CacheTier `json:"meta"`
	Block CacheTier `json:"block"`
	Chunk CacheTier `json:"chunk"`

	// Data-tier residency (blocks + chunks share one byte budget).
	DataEntries uint64 `json:"data_entries"`
	DataBytes   uint64 `json:"data_bytes"`

	Fills         uint64 `json:"fills"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Rejected      uint64 `json:"rejected"`

	// FlightLeaders counts singleflight executions; FlightDedups counts
	// callers that joined an in-flight leader instead of fetching.
	FlightLeaders uint64 `json:"flight_leaders"`
	FlightDedups  uint64 `json:"flight_dedups"`
	// Decodes counts RS reconstructions actually executed on the read
	// path (singleflight makes this decode work, not decode demand).
	Decodes uint64 `json:"decodes"`
}
