package metrics

import (
	"math"
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	var r LatencyRecorder
	if r.P50() != 0 || r.P99() != 0 {
		t.Fatal("empty recorder must report zero")
	}
	for i := 1; i <= 100; i++ {
		r.Record(LatencySample{Total: time.Duration(i) * time.Millisecond})
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
	if got := r.P50(); got != 50*time.Millisecond {
		t.Fatalf("P50 = %v", got)
	}
	if got := r.P99(); got != 99*time.Millisecond {
		t.Fatalf("P99 = %v", got)
	}
	if got := r.Percentile(0); got != 1*time.Millisecond {
		t.Fatalf("P0 = %v", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("P100 = %v", got)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{DiskRead: 10, Processing: 20, Network: 50, Other: 20}
	if b.Total() != 100 {
		t.Fatalf("Total = %v", b.Total())
	}
	d, p, n, o := b.Fractions()
	if d != 0.1 || p != 0.2 || n != 0.5 || o != 0.2 {
		t.Fatalf("Fractions = %v %v %v %v", d, p, n, o)
	}
	var zero Breakdown
	d, p, n, o = zero.Fractions()
	if d != 0 || p != 0 || n != 0 || o != 0 {
		t.Fatal("zero breakdown must yield zero fractions")
	}
	b2 := Breakdown{DiskRead: 5}
	b2.Add(b)
	if b2.DiskRead != 15 || b2.Network != 50 {
		t.Fatal("Add wrong")
	}
	if b.String() == "" {
		t.Fatal("String must produce output")
	}
}

func TestMeanBreakdown(t *testing.T) {
	var r LatencyRecorder
	r.Record(LatencySample{Phase: Breakdown{DiskRead: 10, Network: 30}})
	r.Record(LatencySample{Phase: Breakdown{DiskRead: 20, Network: 10}})
	mb := r.MeanBreakdown()
	if mb.DiskRead != 15 || mb.Network != 20 {
		t.Fatalf("MeanBreakdown = %+v", mb)
	}
	var empty LatencyRecorder
	if empty.MeanBreakdown().Total() != 0 {
		t.Fatal("empty mean breakdown must be zero")
	}
}

func TestReduction(t *testing.T) {
	if Reduction(100, 36) != 0.64 {
		t.Fatalf("Reduction = %v", Reduction(100, 36))
	}
	if Reduction(0, 10) != 0 {
		t.Fatal("zero baseline must yield 0")
	}
	if Reduction(100, 150) != -0.5 {
		t.Fatal("slower system must yield negative reduction")
	}
}

func TestTraffic(t *testing.T) {
	var tr Traffic
	tr.Add(100)
	tr.Add(50)
	if tr.Bytes != 150 || tr.Messages != 2 {
		t.Fatalf("Traffic = %+v", tr)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatal("CDF must have one point per value")
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Fatal("CDF must be sorted")
	}
	if pts[2].Percentile != 100 {
		t.Fatalf("last percentile = %v", pts[2].Percentile)
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF must be nil")
	}
	if got := CDFAt([]float64{1, 2, 3, 4}, 2.5); got != 0.5 {
		t.Fatalf("CDFAt = %v", got)
	}
	if CDFAt(nil, 1) != 0 {
		t.Fatal("empty CDFAt must be 0")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 2, 4})
	if out[0] != 0.25 || out[2] != 1 {
		t.Fatalf("Normalize = %v", out)
	}
	out = Normalize([]float64{0, 0})
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("all-zero input must normalize to zeros")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
}
