package metrics

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 samples uniform over (0, 100ms]: quantiles must land within the
	// 2x bucket resolution of the true value.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("q%.2f = %v, want within 2x of %v", c.q, got, c.want)
		}
	}
	if got := h.Quantile(0); got != 100*time.Microsecond {
		t.Errorf("q0 = %v, want min", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("q1 = %v, want max", got)
	}
	if mean := h.Mean(); mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("mean = %v, want ~50ms", mean)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatal("negative observations must clamp to zero")
	}
}

func TestHistogramSetConcurrent(t *testing.T) {
	s := NewHistogramSet()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := Key{Op: "GetBlock", Node: rng.Intn(9)}
				s.Observe(k, time.Duration(rng.Intn(1000)+1)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	total := uint64(0)
	for _, sn := range s.Snapshot() {
		if sn.Op != "GetBlock" {
			t.Fatalf("unexpected op %q", sn.Op)
		}
		total += sn.Count
	}
	if total != workers*perWorker {
		t.Fatalf("total observations = %d, want %d", total, workers*perWorker)
	}
	merged, ok := s.Merged("GetBlock")
	if !ok || merged.Count != workers*perWorker {
		t.Fatalf("merged = %+v ok=%v", merged, ok)
	}
	if _, ok := s.Merged("nope"); ok {
		t.Fatal("Merged must miss on unknown op")
	}
}

func TestHistogramSetNilSafe(t *testing.T) {
	var s *HistogramSet
	s.Observe(Key{Op: "x"}, time.Second)
	if s.Snapshot() != nil {
		t.Fatal("nil set must snapshot empty")
	}
	if _, ok := s.Get(Key{Op: "x"}); ok {
		t.Fatal("nil set must miss")
	}
	s.Reset()
}

func TestHistogramSetText(t *testing.T) {
	s := NewHistogramSet()
	s.Observe(Key{Op: "query", Node: NodeNone}, 3*time.Millisecond)
	s.Observe(Key{Op: "rpc.GetBlock", Node: 2}, 40*time.Microsecond)
	out := s.String()
	for _, want := range []string{"query", "rpc.GetBlock[node 2]", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	s.Reset()
	if got := s.Snapshot(); len(got) != 0 {
		t.Fatalf("after reset: %v", got)
	}
}

func TestHistogramSetGetAndSort(t *testing.T) {
	s := NewHistogramSet()
	for node := 4; node >= 0; node-- {
		for i := 0; i <= node; i++ {
			s.Observe(Key{Op: "op", Node: node}, time.Millisecond)
		}
	}
	snap := s.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("len = %d", len(snap))
	}
	for i, sn := range snap {
		if sn.Node != i {
			t.Fatalf("snapshot not sorted by node: %+v", snap)
		}
	}
	got, ok := s.Get(Key{Op: "op", Node: 3})
	if !ok || got.Count != 4 {
		t.Fatalf("Get = %+v ok=%v", got, ok)
	}
}

func BenchmarkHistogramSetObserve(b *testing.B) {
	s := NewHistogramSet()
	keys := make([]Key, 9)
	for i := range keys {
		keys[i] = Key{Op: "rpc.GetBlock", Node: i}
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Observe(keys[i%len(keys)], time.Duration(i)*time.Nanosecond)
			i++
		}
	})
	_ = fmt.Sprint(s.Snapshot()[0].Count)
}
