package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeHealth is one node's transport-reliability counters as seen from a
// coordinator: how often it was called, how often calls failed or timed out,
// how many retries it cost, and how often slow direct reads made the caller
// hedge with a reconstruction fan-out.
type NodeHealth struct {
	Calls     uint64
	Failures  uint64
	Retries   uint64
	Timeouts  uint64
	Hedges    uint64
	HedgeWins uint64
}

// add accumulates another node's counters.
func (n *NodeHealth) add(o NodeHealth) {
	n.Calls += o.Calls
	n.Failures += o.Failures
	n.Retries += o.Retries
	n.Timeouts += o.Timeouts
	n.Hedges += o.Hedges
	n.HedgeWins += o.HedgeWins
}

// Health collects per-node failure/retry/hedge counters. All methods are
// safe for concurrent use and safe on a nil receiver (a nil *Health records
// nothing), so callers can thread an optional recorder without nil checks.
type Health struct {
	mu    sync.Mutex
	nodes map[int]*NodeHealth
}

// NewHealth returns an empty recorder.
func NewHealth() *Health {
	return &Health{nodes: make(map[int]*NodeHealth)}
}

func (h *Health) node(id int) *NodeHealth {
	n := h.nodes[id]
	if n == nil {
		n = &NodeHealth{}
		h.nodes[id] = n
	}
	return n
}

func (h *Health) record(id int, f func(*NodeHealth)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	f(h.node(id))
	h.mu.Unlock()
}

// Call records one attempt against a node.
func (h *Health) Call(node int) { h.record(node, func(n *NodeHealth) { n.Calls++ }) }

// Failure records a transport-level failure.
func (h *Health) Failure(node int) { h.record(node, func(n *NodeHealth) { n.Failures++ }) }

// Retry records a retried attempt (counted before the attempt runs).
func (h *Health) Retry(node int) { h.record(node, func(n *NodeHealth) { n.Retries++ }) }

// Timeout records an attempt abandoned at its deadline.
func (h *Health) Timeout(node int) { h.record(node, func(n *NodeHealth) { n.Timeouts++ }) }

// Hedge records a hedged read fired because the node's direct read was slow.
func (h *Health) Hedge(node int) { h.record(node, func(n *NodeHealth) { n.Hedges++ }) }

// HedgeWin records a hedged read that beat the direct read.
func (h *Health) HedgeWin(node int) { h.record(node, func(n *NodeHealth) { n.HedgeWins++ }) }

// Node returns a snapshot of one node's counters.
func (h *Health) Node(node int) NodeHealth {
	if h == nil {
		return NodeHealth{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := h.nodes[node]; n != nil {
		return *n
	}
	return NodeHealth{}
}

// Snapshot returns a copy of every node's counters.
func (h *Health) Snapshot() map[int]NodeHealth {
	out := make(map[int]NodeHealth)
	if h == nil {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, n := range h.nodes {
		out[id] = *n
	}
	return out
}

// Total sums the counters across all nodes.
func (h *Health) Total() NodeHealth {
	var sum NodeHealth
	if h == nil {
		return sum
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, n := range h.nodes {
		sum.add(*n)
	}
	return sum
}

// Reset zeroes all counters.
func (h *Health) Reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nodes = make(map[int]*NodeHealth)
}

// String renders the non-zero nodes in id order, for failure diagnostics.
func (h *Health) String() string {
	snap := h.Snapshot()
	ids := make([]int, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		n := snap[id]
		fmt.Fprintf(&b, "node %d: calls %d fail %d retry %d timeout %d hedge %d hedgewin %d\n",
			id, n.Calls, n.Failures, n.Retries, n.Timeouts, n.Hedges, n.HedgeWins)
	}
	return b.String()
}
