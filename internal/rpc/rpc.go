// Package rpc defines the request/response messages exchanged between a
// Fusion coordinator and storage nodes, shared by the simulated transport
// (simnet) and the real TCP transport (tcpnet). Every node exposes the same
// small service surface (§4.1: nodes are identical; any node coordinates):
// block storage primitives plus the two pushdown operations, Filter and
// Project.
package rpc

import (
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/sql"
)

// Kind identifies the operation a Request carries.
type Kind uint8

const (
	// KindPing checks liveness.
	KindPing Kind = iota
	// KindPutBlock stores a named block.
	KindPutBlock
	// KindGetBlock reads a byte range of a block (Length 0 = whole block).
	KindGetBlock
	// KindDeleteBlock removes a block.
	KindDeleteBlock
	// KindBlockSize stats a block.
	KindBlockSize
	// KindFilter executes a comparison predicate on a column chunk held by
	// the node and returns a compressed row bitmap (filter-stage pushdown).
	KindFilter
	// KindProject returns the chunk's values selected by a bitmap, in plain
	// encoding (projection-stage pushdown).
	KindProject
	// KindAggregate computes a partial aggregate (count/sum/min/max) over
	// the chunk rows selected by a bitmap, returning only the accumulator —
	// the aggregate-pushdown extension the paper lists as future work (§5).
	KindAggregate
	// KindPrepareBlock is phase one of the crash-consistent write protocol:
	// it stores a named block like KindPutBlock but tags it pending under
	// (Object, Epoch) and records its CRC32C, rejecting payloads whose bytes
	// do not match Crc. Pending blocks are readable (a committed metadata
	// record may reference them before the commit fan-out lands) but are
	// garbage unless the object's metadata commits their epoch.
	KindPrepareBlock
	// KindCommitObject is phase two: it flips every pending block of
	// (Object, Epoch) on the node to committed. Idempotent.
	KindCommitObject
	// KindListBlocks returns the node's block inventory with each block's
	// pending/committed state and CRC — the substrate for orphan
	// reconciliation and repair catch-up.
	KindListBlocks
	// KindBatch carries many sub-requests for the same node in one frame
	// (scatter-gather). The node executes each sub-request independently and
	// returns a sub-response per sub-request in order, so one slow or failed
	// op never poisons its siblings. Only data-plane kinds may be batched
	// (GetBlock, Filter, Project, Aggregate, GroupAgg, TopK); nesting
	// batches is an error.
	KindBatch
	// KindGroupAgg computes per-group partial aggregates over one row
	// group's selected rows: the node reads the key chunks and aggregate
	// argument chunks it holds, folds them into a sql.GroupTable, and
	// returns the partial states in deterministic key order — never a
	// pre-divided AVG (GROUP BY pushdown, the OASIS-style extension of the
	// paper's aggregation offload).
	KindGroupAgg
	// KindTopK returns the row group's local top-k rows by one order
	// column: (value, row) pairs the coordinator feeds into a bounded
	// k-way merge (ORDER BY + LIMIT pushdown).
	KindTopK
)

func (k Kind) String() string {
	switch k {
	case KindPing:
		return "Ping"
	case KindPutBlock:
		return "PutBlock"
	case KindGetBlock:
		return "GetBlock"
	case KindDeleteBlock:
		return "DeleteBlock"
	case KindBlockSize:
		return "BlockSize"
	case KindFilter:
		return "Filter"
	case KindProject:
		return "Project"
	case KindAggregate:
		return "Aggregate"
	case KindPrepareBlock:
		return "PrepareBlock"
	case KindCommitObject:
		return "CommitObject"
	case KindListBlocks:
		return "ListBlocks"
	case KindBatch:
		return "Batch"
	case KindGroupAgg:
		return "GroupAgg"
	case KindTopK:
		return "TopK"
	default:
		return "Unknown"
	}
}

// ChunkRef locates a column chunk inside a block on a node and carries the
// metadata needed to decode it in place.
type ChunkRef struct {
	BlockID string
	// Offset and the metadata's Size give the chunk's range in the block.
	Offset uint64
	Type   lpq.Type
	Meta   lpq.ChunkMeta
}

// Request is the single message type sent to nodes.
type Request struct {
	Kind Kind

	// DeadlineMicros, when positive, is the caller's remaining deadline
	// budget in microseconds at the moment the request was sent. The budget
	// is relative — never an absolute timestamp — so clock skew between
	// coordinator and node cannot corrupt it. A node measures its own
	// elapsed time against the budget: already-expired work is rejected
	// before any disk read, and batch frames abort between sub-ops at the
	// checkpoint where the budget runs out (see cluster.ErrExpired). 0
	// means no deadline.
	DeadlineMicros int64

	// Block operations.
	BlockID string
	Data    []byte // PutBlock/PrepareBlock payload
	Offset  uint64 // GetBlock range start
	Length  uint64 // GetBlock range length (0 = rest of block)
	// CallerVerifies tells a GetBlock that the caller will verify the
	// returned bytes against a checksum recorded in its own metadata (which
	// covers bit rot and in-flight corruption in one pass), so the node may
	// skip its redundant at-rest verification for this read. Callers without
	// an independent checksum must leave it unset.
	CallerVerifies bool

	// Durability fields (PrepareBlock, CommitObject; optional on PutBlock).
	// Object and Epoch tie a block to the object version being written, so
	// commit and orphan reconciliation can reason per attempt; Crc is the
	// CRC32C of Data, letting the node reject corrupted writes and verify
	// the block at rest on later reads.
	Object string
	Epoch  uint64
	Crc    uint32

	// Pushdown operations.
	Chunk  ChunkRef
	Op     sql.CmpOp   // Filter comparison operator
	Value  sql.Literal // Filter literal
	Bitmap []byte      // Project/GroupAgg/TopK row selection (compressed bitmap)

	// Grouped-aggregation pushdown (GroupAgg). KeyChunks are the grouping
	// columns' chunks for one row group; ValChunks[i] is the argument chunk
	// of aggregate i (an empty BlockID means COUNT(*), which needs no
	// column); AggKinds[i] is its function. MaxGroups caps the node-side
	// group table — exceeding it fails the op so the coordinator falls back
	// to coordinator-side execution for the row group.
	KeyChunks []ChunkRef
	ValChunks []ChunkRef
	AggKinds  []sql.AggKind
	MaxGroups int

	// Top-k pushdown (TopK; Chunk is the order column's chunk). K is the
	// row budget (<=0 keeps every selected row), Desc the direction, and RG
	// the row group's global index, echoed into the returned TopRows so the
	// coordinator's merge tie-breaks on (rg, row) without re-mapping.
	//
	// RG also tags the sub-ops of a batched filter stage: the coordinator
	// ships one KindBatch frame per node per stage covering every row group,
	// so each Filter sub-op carries the row group its bitmap answers for.
	K    int
	Desc bool
	RG   int32

	// Subs carries the sub-requests of a KindBatch frame, at most
	// MaxBatchOps, none itself a batch.
	Subs []Request
}

// MaxBatchOps bounds a batch frame's sub-request count. A row-group scan
// batches one op per chunk per node, so the cap comfortably exceeds any
// planner fan-out while keeping a malicious frame from declaring an
// unbounded amount of work.
const MaxBatchOps = 1024

// batchable reports whether a kind may appear inside a batch. Only
// data-plane reads may: mutations keep their own frames so the two-phase
// write protocol's error handling stays per-block.
func batchable(k Kind) bool {
	switch k {
	case KindGetBlock, KindFilter, KindProject, KindAggregate, KindGroupAgg, KindTopK:
		return true
	}
	return false
}

// ValidateBatch checks a KindBatch request's shape: a positive sub-request
// count within MaxBatchOps and every sub-request of a batchable data-plane
// kind (in particular, no nested batches). It returns a description of the
// first violation, or "" when the batch is well-formed.
func ValidateBatch(r *Request) string {
	if r.Kind != KindBatch {
		return "not a batch request"
	}
	if len(r.Subs) == 0 {
		return "empty batch"
	}
	if len(r.Subs) > MaxBatchOps {
		return "batch exceeds MaxBatchOps"
	}
	for i := range r.Subs {
		if !batchable(r.Subs[i].Kind) {
			return "sub-request " + r.Subs[i].Kind.String() + " not batchable"
		}
	}
	return ""
}

// Cost reports the node-local work a request incurred, used by the
// simulated latency model and by the CPU-utilization accounting (Fig. 14d).
type Cost struct {
	// DiskBytes is the number of bytes read from the node's block store.
	DiskBytes uint64
	// ProcBytes is the number of uncompressed bytes decoded and scanned.
	ProcBytes uint64
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.DiskBytes += o.DiskBytes
	c.ProcBytes += o.ProcBytes
}

// BlockInfo is one block's inventory entry in a ListBlocks reply.
type BlockInfo struct {
	// ID is the block's name on the node.
	ID string
	// Object and Epoch identify the write attempt that produced the block
	// (empty/zero when the node has no durability record for it, e.g. a
	// metadata register block or a block written before the node restarted).
	Object string
	Epoch  uint64
	// Pending reports a prepared-but-uncommitted block.
	Pending bool
	// HasCrc reports whether Crc is a recorded CRC32C of the block.
	HasCrc bool
	Crc    uint32
}

// Response is the single message type returned by nodes.
type Response struct {
	// Err is a non-empty error description on failure.
	Err string
	// Data carries block bytes (GetBlock), plain-encoded projected values
	// (Project), or a compressed bitmap (Filter).
	Data []byte
	// Size is the block size for BlockSize.
	Size uint64
	// Crc is the CRC32C of Data on GetBlock replies — the end-to-end
	// checksum that catches in-flight corruption of a ranged read, where
	// the caller cannot check the whole-block checksum itself.
	Crc uint32
	// Blocks is the node's inventory (ListBlocks).
	Blocks []BlockInfo
	// Matches is the number of selected rows (Filter/Project).
	Matches int
	// Agg is the partial aggregate accumulator (Aggregate).
	Agg *sql.AggState
	// Groups holds per-group partial states in deterministic key order
	// (GroupAgg).
	Groups []sql.GroupPartial
	// TopRows holds the row group's local top-k candidates, fully ordered
	// (TopK).
	TopRows []sql.TopRow
	// Cost is the node-local work performed.
	Cost Cost
	// Subs carries the per-op sub-responses of a batch reply, index-aligned
	// with the request's Subs. A sub-op failure sets that sub-response's Err;
	// the outer Err stays empty unless the batch itself was malformed.
	Subs []Response
}

// reqFixedOverhead approximates per-message framing/header bytes on the
// wire, used by the simulated network accounting.
const fixedOverhead = 64

// WireSize estimates the serialized size of the request.
func (r *Request) WireSize() uint64 {
	n := uint64(fixedOverhead + len(r.BlockID) + len(r.Data) + len(r.Bitmap))
	n += uint64(len(r.Chunk.BlockID) + len(r.Value.S) + len(r.Object))
	for i := range r.KeyChunks {
		n += uint64(len(r.KeyChunks[i].BlockID) + 32)
	}
	for i := range r.ValChunks {
		n += uint64(len(r.ValChunks[i].BlockID) + 32)
	}
	n += uint64(len(r.AggKinds))
	for i := range r.Subs {
		n += r.Subs[i].WireSize()
	}
	return n
}

// WireSize estimates the serialized size of the response.
func (r *Response) WireSize() uint64 {
	n := uint64(fixedOverhead + len(r.Err) + len(r.Data))
	for i := range r.Blocks {
		n += uint64(len(r.Blocks[i].ID) + len(r.Blocks[i].Object) + 16)
	}
	for i := range r.Groups {
		n += GroupPartialWireSize(&r.Groups[i])
	}
	// A TopRow is a literal plus two int32 coordinates.
	for i := range r.TopRows {
		n += uint64(24 + len(r.TopRows[i].Key.S))
	}
	for i := range r.Subs {
		n += r.Subs[i].WireSize()
	}
	return n
}

// GroupPartialWireSize estimates one group partial's serialized size: the
// key literals plus a fixed-size AggState per aggregate. The planner uses
// the same estimate to decide whether pushing partials beats shipping the
// raw chunks.
func GroupPartialWireSize(g *sql.GroupPartial) uint64 {
	n := uint64(8) // Rows
	for i := range g.Key {
		n += uint64(16 + len(g.Key[i].S))
	}
	for i := range g.Aggs {
		n += uint64(48 + len(g.Aggs[i].MinS) + len(g.Aggs[i].MaxS))
	}
	return n
}
