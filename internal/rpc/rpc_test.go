package rpc

import (
	"testing"

	"github.com/fusionstore/fusion/internal/sql"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindPing:        "Ping",
		KindPutBlock:    "PutBlock",
		KindGetBlock:    "GetBlock",
		KindDeleteBlock: "DeleteBlock",
		KindBlockSize:   "BlockSize",
		KindFilter:      "Filter",
		KindProject:     "Project",
		KindAggregate:   "Aggregate",
		Kind(200):       "Unknown",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestWireSizeScalesWithPayload(t *testing.T) {
	small := &Request{Kind: KindPutBlock, BlockID: "b", Data: make([]byte, 10)}
	big := &Request{Kind: KindPutBlock, BlockID: "b", Data: make([]byte, 10000)}
	if big.WireSize() <= small.WireSize() {
		t.Fatal("request wire size must scale with the payload")
	}
	if diff := big.WireSize() - small.WireSize(); diff != 9990 {
		t.Fatalf("payload delta must be exact, got %d", diff)
	}
	r1 := &Response{Data: make([]byte, 5)}
	r2 := &Response{Data: make([]byte, 500)}
	if r2.WireSize()-r1.WireSize() != 495 {
		t.Fatal("response wire size must scale with the payload")
	}
}

func TestWireSizeCountsLiteralStrings(t *testing.T) {
	a := &Request{Kind: KindFilter, Value: sql.StringLit("x")}
	b := &Request{Kind: KindFilter, Value: sql.StringLit("a much longer literal value")}
	if b.WireSize() <= a.WireSize() {
		t.Fatal("string literals must count toward wire size")
	}
}

func TestCostAdd(t *testing.T) {
	c := Cost{DiskBytes: 10, ProcBytes: 20}
	c.Add(Cost{DiskBytes: 5, ProcBytes: 7})
	if c.DiskBytes != 15 || c.ProcBytes != 27 {
		t.Fatalf("Cost.Add wrong: %+v", c)
	}
}
