// Package trace is Fusion's zero-dependency request-scoped tracing layer:
// a span tree per request recording per-stage wall times plus the byte and
// event counters the paper's evaluation is built on (§6) — bytes requested
// vs bytes read from storage nodes (read amplification), retries, hedge
// fires/wins, and degraded reads.
//
// Tracing is strictly optional. Every method is safe on a nil *Span and
// compiles down to a single nil check, so the hot paths thread a span
// unconditionally and pay (nearly) nothing when no caller installed one —
// BenchmarkTraceDisabled pins the disabled-path cost below 5 ns/op. A
// request opts in by putting a root span into its context:
//
//	ctx, root := trace.Start(ctx, "GET /objects/taxi")
//	data, err := store.GetContext(ctx, "taxi", 0, 0)
//	root.End()
//	fmt.Println(root.Tree()) // per-stage timings + read amplification
package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Counter enumerates the per-span event/byte counters.
type Counter uint8

const (
	// BytesRequested is the logical payload the caller asked for (a Get's
	// range length, a query's result wire size).
	BytesRequested Counter = iota
	// BytesFromNodes is the payload bytes actually received from storage
	// nodes, including reconstruction overreads. The ratio
	// BytesFromNodes/BytesRequested is the read amplification of Fig. 4/§6.
	BytesFromNodes
	// RPCs counts coordinator→node calls (attempts, including retries).
	RPCs
	// Retries counts retried attempts beyond each call's first.
	Retries
	// Hedges counts hedged reconstruction fan-outs fired on slow reads.
	Hedges
	// HedgeWins counts hedges that beat the direct read.
	HedgeWins
	// DegradedReads counts block reads served via RS reconstruction.
	DegradedReads
	// ChecksumFailures counts blocks whose bytes failed CRC verification
	// (at rest on the node, in flight, or against the stripe metadata).
	ChecksumFailures
	// CacheHits counts block/chunk reads served from the coordinator
	// cache. Hits bypass the RPC layer entirely, so BytesFromNodes stays
	// untouched and read amplification reflects true node traffic.
	CacheHits
	// RoundTrips counts data-plane network round trips to storage nodes. A
	// scatter-gather batch of many sub-ops to one node is one round trip —
	// the number the batching layer exists to minimize — whereas RPCs counts
	// every logical operation regardless of framing.
	RoundTrips
	// GroupPartials counts per-group partial aggregate states received from
	// nodes during GROUP BY pushdown — the wire cost the stats-driven
	// planner weighed against shipping the raw chunks.
	GroupPartials
	// GroupSpills counts row groups whose grouped pushdown was abandoned
	// (node-side cardinality cap exceeded, or the planner predicted the
	// partial states would outweigh the chunks) and fell back to
	// coordinator-side grouping.
	GroupSpills
	// QueueWaitMicros is the time (in microseconds) the operation spent in
	// the admission scheduler's fair queue before running — latency the
	// store chose to add under load, distinct from service time.
	QueueWaitMicros
	numCounters
)

var counterNames = [numCounters]string{
	"bytes_requested", "bytes_from_nodes", "rpcs", "retries",
	"hedges", "hedge_wins", "degraded_reads", "checksum_failures",
	"cache_hits", "round_trips", "group_partials", "group_spills",
	"queue_wait_us",
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// maxChildren bounds a span's fan-out so a huge Get (thousands of stripes)
// cannot balloon a trace; spans beyond the cap are dropped and counted.
const maxChildren = 256

// Span is one timed stage of a request. Spans form a tree; all methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	children []*Span
	dropped  int
	counters [numCounters]uint64
}

// New starts a root span. Callers that want context propagation should
// prefer Start.
func New(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a sub-span. On a nil receiver it returns nil, so an untraced
// request's whole span tree stays nil end to end. The nil fast path must
// stay inlinable (the <5 ns/op disabled-overhead budget), hence the
// outlined slow path.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name)
}

func (s *Span) child(name string) *Span {
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	if len(s.children) < maxChildren {
		s.children = append(s.children, c)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
	return c
}

// End marks the span finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endSlow()
}

func (s *Span) endSlow() {
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Count adds delta to one of the span's counters.
func (s *Span) Count(c Counter, delta uint64) {
	if s == nil {
		return
	}
	s.count(c, delta)
}

func (s *Span) count(c Counter, delta uint64) {
	if c >= numCounters {
		return
	}
	s.mu.Lock()
	s.counters[c] += delta
	s.mu.Unlock()
}

// Name returns the span's label ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's wall time; an unfinished span reads as
// elapsed-so-far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Counters returns a snapshot of the span's own (non-recursive) counters.
func (s *Span) Counters() map[string]uint64 {
	out := make(map[string]uint64)
	if s == nil {
		return out
	}
	s.mu.Lock()
	for i, v := range s.counters {
		if v != 0 {
			out[Counter(i).String()] = v
		}
	}
	s.mu.Unlock()
	return out
}

// Total sums one counter over the span's whole subtree.
func (s *Span) Total(c Counter) uint64 {
	if s == nil || c >= numCounters {
		return 0
	}
	s.mu.Lock()
	sum := s.counters[c]
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, k := range kids {
		sum += k.Total(c)
	}
	return sum
}

// ReadAmplification returns the subtree's bytes-from-nodes over
// bytes-requested ratio — the §6 read-amplification metric. It returns 0
// when nothing was requested.
func (s *Span) ReadAmplification() float64 {
	req := s.Total(BytesRequested)
	if req == 0 {
		return 0
	}
	return float64(s.Total(BytesFromNodes)) / float64(req)
}

// SpanJSON is a span subtree in /debug/fusionz's wire shape.
type SpanJSON struct {
	Name       string            `json:"name"`
	DurationNS int64             `json:"duration_ns"`
	Counters   map[string]uint64 `json:"counters,omitempty"`
	ReadAmp    float64           `json:"read_amplification,omitempty"`
	Dropped    int               `json:"dropped_children,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// Snapshot renders the span subtree for JSON encoding. Only the root
// carries the read-amplification ratio (it is a subtree aggregate).
func (s *Span) Snapshot() SpanJSON {
	return s.snapshot(true)
}

func (s *Span) snapshot(root bool) SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	dropped := s.dropped
	s.mu.Unlock()
	out := SpanJSON{
		Name:       s.name,
		DurationNS: s.Duration().Nanoseconds(),
		Counters:   s.Counters(),
		Dropped:    dropped,
	}
	if root {
		out.ReadAmp = s.ReadAmplification()
	}
	for _, k := range kids {
		out.Children = append(out.Children, k.snapshot(false))
	}
	return out
}

// Tree renders the span tree as indented text, for CLI/debug output.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.tree(&b, 0)
	if amp := s.ReadAmplification(); amp > 0 {
		fmt.Fprintf(&b, "read amplification: %.2fx\n", amp)
	}
	return b.String()
}

func (s *Span) tree(b *strings.Builder, depth int) {
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	dropped := s.dropped
	s.mu.Unlock()
	fmt.Fprintf(b, "%s%s  %v", strings.Repeat("  ", depth), s.name,
		s.Duration().Round(time.Microsecond))
	counters := s.Counters()
	for i := Counter(0); i < numCounters; i++ {
		if v, ok := counters[i.String()]; ok {
			fmt.Fprintf(b, " %s=%d", i.String(), v)
		}
	}
	if dropped > 0 {
		fmt.Fprintf(b, " (+%d dropped)", dropped)
	}
	b.WriteByte('\n')
	for _, k := range kids {
		k.tree(b, depth+1)
	}
}

type ctxKey struct{}

// NewContext returns a context carrying the span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's span, or nil when the request is
// untraced (including a nil context). Callers never need a nil check: every
// Span method is nil-safe.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start begins a root span and installs it in the context.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	s := New(name)
	return NewContext(ctx, s), s
}

// Ring keeps the most recent finished traces for /debug/fusionz. The zero
// number of slots is invalid; use NewRing. All methods are nil-safe.
type Ring struct {
	mu   sync.Mutex
	buf  []*Span
	next int
	seen uint64
}

// NewRing returns a ring holding the last n traces.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1
	}
	return &Ring{buf: make([]*Span, n)}
}

// Add records a finished trace (nil spans and nil rings are ignored).
func (r *Ring) Add(s *Span) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.seen++
	r.mu.Unlock()
}

// Seen returns how many traces were ever added.
func (r *Ring) Seen() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Snapshot returns the retained traces, oldest first.
func (r *Ring) Snapshot() []SpanJSON {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := make([]*Span, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		if s := r.buf[(r.next+i)%len(r.buf)]; s != nil {
			spans = append(spans, s)
		}
	}
	r.mu.Unlock()
	out := make([]SpanJSON, len(spans))
	for i, s := range spans {
		out[i] = s.Snapshot()
	}
	return out
}

// Trees renders the retained traces as indented text, oldest first (the
// /debug/fusionz?format=text trace section).
func (r *Ring) Trees() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := make([]*Span, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		if s := r.buf[(r.next+i)%len(r.buf)]; s != nil {
			spans = append(spans, s)
		}
	}
	r.mu.Unlock()
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Tree()
	}
	return out
}
