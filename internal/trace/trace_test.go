package trace

import (
	"context"
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndCounters(t *testing.T) {
	ctx, root := Start(context.Background(), "store.Get")
	if FromContext(ctx) != root {
		t.Fatal("FromContext did not return the installed span")
	}
	meta := root.Child("meta")
	meta.End()
	blk := root.Child("block")
	blk.Count(BytesRequested, 100)
	blk.Count(BytesFromNodes, 600)
	blk.Count(RPCs, 2)
	blk.Count(Retries, 1)
	blk.End()
	root.End()

	if got := root.Total(BytesFromNodes); got != 600 {
		t.Fatalf("Total(BytesFromNodes) = %d, want 600", got)
	}
	if amp := root.ReadAmplification(); amp != 6.0 {
		t.Fatalf("read amplification = %v, want 6", amp)
	}
	snap := root.Snapshot()
	if snap.Name != "store.Get" || len(snap.Children) != 2 {
		t.Fatalf("snapshot shape wrong: %+v", snap)
	}
	if snap.ReadAmp != 6.0 {
		t.Fatalf("snapshot read amp = %v", snap.ReadAmp)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	tree := root.Tree()
	for _, want := range []string{"store.Get", "meta", "block", "retries=1", "read amplification: 6.00x"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree rendering missing %q:\n%s", want, tree)
		}
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span's child must be nil")
	}
	c.End()
	c.Count(BytesRequested, 1)
	if s.Duration() != 0 || s.Total(RPCs) != 0 || s.ReadAmplification() != 0 {
		t.Fatal("nil span must read as zero")
	}
	if s.Tree() != "" || s.Name() != "" {
		t.Fatal("nil span must render empty")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("untraced context must yield a nil span")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatal("nil context must yield a nil span")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := New("root")
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("c")
			c.Count(RPCs, 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := root.Total(RPCs); got != 64 {
		t.Fatalf("Total(RPCs) = %d, want 64", got)
	}
}

func TestChildCapDrops(t *testing.T) {
	root := New("root")
	for i := 0; i < maxChildren+10; i++ {
		root.Child("c").End()
	}
	root.End()
	snap := root.Snapshot()
	if len(snap.Children) != maxChildren {
		t.Fatalf("children = %d, want cap %d", len(snap.Children), maxChildren)
	}
	if snap.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap.Dropped)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 3; i++ {
		s := New("op" + strconv.Itoa(i))
		s.End()
		r.Add(s)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "op1" || snap[1].Name != "op2" {
		t.Fatalf("ring snapshot wrong: %+v", snap)
	}
	if r.Seen() != 3 {
		t.Fatalf("seen = %d, want 3", r.Seen())
	}
	var nilRing *Ring
	nilRing.Add(New("x"))
	if nilRing.Snapshot() != nil || nilRing.Seen() != 0 {
		t.Fatal("nil ring must be inert")
	}
}

// BenchmarkTraceDisabled measures the full per-RPC tracing sequence on the
// untraced path — FromContext on a span-free context, a Child, two Counts
// and an End on the resulting nil span. This is exactly what every hot-path
// call pays when no caller installed a trace; the CI gate (see
// TestTraceDisabledOverheadGate) keeps it under 5 ns/op.
func BenchmarkTraceDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := FromContext(ctx)
		c := sp.Child("block")
		c.Count(BytesRequested, 1)
		c.Count(BytesFromNodes, 1)
		c.End()
	}
}

// BenchmarkTraceEnabled is the same sequence with a live root span, for
// comparing enabled-path cost (not gated).
func BenchmarkTraceEnabled(b *testing.B) {
	ctx, root := Start(context.Background(), "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := FromContext(ctx)
		c := sp.Child("block")
		c.Count(BytesRequested, 1)
		c.Count(BytesFromNodes, 1)
		c.End()
	}
	b.StopTimer()
	root.End()
}

// TestTraceDisabledOverheadGate is the CI benchmark gate: it runs
// BenchmarkTraceDisabled via testing.Benchmark and fails when the disabled
// path costs more than the budget (default 5 ns/op, override with
// FUSION_TRACE_GATE_NS). It only runs when FUSION_TRACE_GATE=1 so ordinary
// `go test ./...` runs stay timing-independent.
func TestTraceDisabledOverheadGate(t *testing.T) {
	if os.Getenv("FUSION_TRACE_GATE") == "" {
		t.Skip("set FUSION_TRACE_GATE=1 to run the overhead gate")
	}
	limit := 5 * time.Nanosecond
	if v := os.Getenv("FUSION_TRACE_GATE_NS"); v != "" {
		ns, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("FUSION_TRACE_GATE_NS=%q: %v", v, err)
		}
		limit = time.Duration(ns) * time.Nanosecond
	}
	res := testing.Benchmark(BenchmarkTraceDisabled)
	perOp := time.Duration(res.NsPerOp())
	t.Logf("disabled tracing path: %v/op over %d iterations", perOp, res.N)
	if perOp > limit {
		t.Fatalf("disabled tracing path costs %v/op, budget %v", perOp, limit)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("disabled tracing path allocates %d objects/op, want 0", allocs)
	}
}
