// Package erasure implements systematic (n, k) Reed–Solomon erasure codes
// over GF(2^8), the codes used by Fusion and by the baseline object store.
//
// A Coder splits data into k data shards and generates n−k parity shards.
// The code is systematic: the data shards are stored in plaintext, which is
// what makes in-situ computation pushdown on storage nodes possible (§2 of
// the paper). Any k of the n shards reconstruct the original stripe.
//
// The two configurations the paper discusses, RS(9,6) and RS(14,10), are
// available as RS96 and RS1410, but any n > k ≥ 1 with n ≤ 256 works.
package erasure

import (
	"errors"
	"fmt"

	"github.com/fusionstore/fusion/internal/gf256"
)

// Common configurations from the paper (§2).
var (
	// RS96 is the default RS(9,6) code: 6 data + 3 parity shards.
	RS96 = Params{N: 9, K: 6}
	// RS1410 is the RS(14,10) code: 10 data + 4 parity shards.
	RS1410 = Params{N: 14, K: 10}
)

// Params names an (n, k) systematic code: n total shards, k data shards.
type Params struct {
	N int // total shards per stripe
	K int // data shards per stripe
}

// Parity returns the number of parity shards, n − k.
func (p Params) Parity() int { return p.N - p.K }

// Overhead returns the optimal storage overhead of the code, (n−k)/k.
func (p Params) Overhead() float64 { return float64(p.N-p.K) / float64(p.K) }

// Validate reports whether the parameters describe a usable code.
func (p Params) Validate() error {
	switch {
	case p.K < 1:
		return fmt.Errorf("erasure: k must be ≥ 1, got %d", p.K)
	case p.N <= p.K:
		return fmt.Errorf("erasure: n (%d) must exceed k (%d)", p.N, p.K)
	case p.N > 256:
		return fmt.Errorf("erasure: n must be ≤ 256, got %d", p.N)
	}
	return nil
}

func (p Params) String() string { return fmt.Sprintf("RS(%d,%d)", p.N, p.K) }

// Coder encodes and reconstructs stripes for a fixed (n, k).
type Coder struct {
	params Params
	// matrix is the n×k systematic code matrix: the top k rows are the
	// identity, the bottom n−k rows generate parity.
	matrix *gf256.Matrix
}

// NewCoder builds a Coder for the given parameters.
func NewCoder(p Params) (*Coder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Coder{params: p, matrix: buildMatrix(p.N, p.K)}, nil
}

// MustCoder is NewCoder for parameters known to be valid; it panics on error.
func MustCoder(p Params) *Coder {
	c, err := NewCoder(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Params returns the coder's (n, k).
func (c *Coder) Params() Params { return c.params }

// buildMatrix constructs the systematic n×k code matrix: a raw Vandermonde
// matrix normalized so its top k×k block is the identity. Every k-row
// submatrix of the result is invertible, which is the property reconstruction
// relies on.
func buildMatrix(n, k int) *gf256.Matrix {
	vm := gf256.Vandermonde(n, k)
	top := vm.SubMatrix(rangeInts(k))
	topInv, err := top.Invert()
	if err != nil {
		// The top k rows of a Vandermonde matrix with distinct points are
		// always independent; failure here is a programming error.
		panic("erasure: vandermonde top block singular: " + err.Error())
	}
	return vm.Mul(topInv)
}

func rangeInts(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// Errors returned by Encode, Verify and Reconstruct.
var (
	ErrShardCount = errors.New("erasure: wrong number of shards")
	ErrShardSize  = errors.New("erasure: shards have mismatched or zero sizes")
	ErrTooFewLeft = errors.New("erasure: too many shards lost to reconstruct")
)

// checkShards validates shape: exactly n shards; all non-nil shards share one
// non-zero size. It returns that size.
func (c *Coder) checkShards(shards [][]byte, allowNil bool) (int, error) {
	if len(shards) != c.params.N {
		return 0, fmt.Errorf("%w: have %d, want %d", ErrShardCount, len(shards), c.params.N)
	}
	size := -1
	for _, s := range shards {
		if s == nil {
			if !allowNil {
				return 0, fmt.Errorf("%w: nil shard", ErrShardSize)
			}
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: %d vs %d", ErrShardSize, len(s), size)
		}
	}
	if size <= 0 {
		return 0, fmt.Errorf("%w: no data present", ErrShardSize)
	}
	return size, nil
}

// Encode fills shards[k:] with parity computed from shards[:k]. All n shards
// must be allocated with the same length; the first k hold data.
func (c *Coder) Encode(shards [][]byte) error {
	if _, err := c.checkShards(shards, false); err != nil {
		return err
	}
	k := c.params.K
	for p := k; p < c.params.N; p++ {
		row := c.matrix.Row(p)
		out := shards[p]
		clear(out)
		for d := 0; d < k; d++ {
			gf256.MulAddSlice(row[d], shards[d], out)
		}
	}
	return nil
}

// Split partitions data into k equal data shards (zero-padding the tail) and
// allocates n−k parity shards, ready for Encode. The returned shard size is
// ceil(len(data)/k); data of length 0 yields shards of size 1.
func (c *Coder) Split(data []byte) [][]byte {
	k, n := c.params.K, c.params.N
	size := (len(data) + k - 1) / k
	if size == 0 {
		size = 1
	}
	shards := make([][]byte, n)
	for i := 0; i < n; i++ {
		shards[i] = make([]byte, size)
		if i < k {
			start := i * size
			if start < len(data) {
				copy(shards[i], data[start:min(start+size, len(data))])
			}
		}
	}
	return shards
}

// Join concatenates the k data shards and trims the result to dataLen.
func (c *Coder) Join(shards [][]byte, dataLen int) ([]byte, error) {
	if len(shards) < c.params.K {
		return nil, ErrShardCount
	}
	out := make([]byte, 0, dataLen)
	for i := 0; i < c.params.K && len(out) < dataLen; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing", ErrShardSize, i)
		}
		need := dataLen - len(out)
		out = append(out, shards[i][:min(need, len(shards[i]))]...)
	}
	if len(out) != dataLen {
		return nil, fmt.Errorf("erasure: shards hold %d bytes, need %d", len(out), dataLen)
	}
	return out, nil
}

// Verify recomputes parity from the data shards and reports whether it
// matches the stored parity shards.
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return false, err
	}
	k := c.params.K
	buf := make([]byte, size)
	for p := k; p < c.params.N; p++ {
		row := c.matrix.Row(p)
		clear(buf)
		for d := 0; d < k; d++ {
			gf256.MulAddSlice(row[d], shards[d], buf)
		}
		for i := range buf {
			if buf[i] != shards[p][i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds every nil shard in place. Missing shards are denoted
// by nil entries; at least k shards must be present. Present shards are never
// modified. Reconstruct rebuilds both data and parity shards.
func (c *Coder) Reconstruct(shards [][]byte) error {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return err
	}
	n, k := c.params.N, c.params.K
	present := make([]int, 0, n)
	missing := make([]int, 0, n)
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(present) < k {
		return fmt.Errorf("%w: %d present, need %d", ErrTooFewLeft, len(present), k)
	}
	// Decode matrix: pick any k present rows of the code matrix, invert.
	rows := present[:k]
	sub := c.matrix.SubMatrix(rows)
	dec, err := sub.Invert()
	if err != nil {
		// Cannot happen for a valid RS matrix: every k-row submatrix is
		// invertible by construction.
		return fmt.Errorf("erasure: decode matrix singular: %v", err)
	}
	// Rebuild missing data shards first: data[d] = dec.Row(d) · presentShards.
	needData := false
	for _, m := range missing {
		if m < k {
			needData = true
			break
		}
	}
	if needData {
		for d := 0; d < k; d++ {
			if shards[d] != nil {
				continue
			}
			out := make([]byte, size)
			row := dec.Row(d)
			for j, src := range rows {
				gf256.MulAddSlice(row[j], shards[src], out)
			}
			shards[d] = out
		}
	}
	// Rebuild missing parity shards from (now complete) data shards.
	for _, m := range missing {
		if m < k {
			continue
		}
		if shards[0] == nil {
			// Data shards must be complete by now.
			return errors.New("erasure: internal: data shards incomplete")
		}
		out := make([]byte, size)
		row := c.matrix.Row(m)
		for d := 0; d < k; d++ {
			gf256.MulAddSlice(row[d], shards[d], out)
		}
		shards[m] = out
	}
	return nil
}

// ReconstructData rebuilds only the missing data shards (indexes < k),
// leaving missing parity shards nil. It is the cheaper call when the caller
// only needs the original bytes back.
func (c *Coder) ReconstructData(shards [][]byte) error {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return err
	}
	n, k := c.params.N, c.params.K
	present := make([]int, 0, n)
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		}
	}
	if len(present) < k {
		return fmt.Errorf("%w: %d present, need %d", ErrTooFewLeft, len(present), k)
	}
	allData := true
	for d := 0; d < k; d++ {
		if shards[d] == nil {
			allData = false
			break
		}
	}
	if allData {
		return nil
	}
	rows := present[:k]
	dec, err := c.matrix.SubMatrix(rows).Invert()
	if err != nil {
		return fmt.Errorf("erasure: decode matrix singular: %v", err)
	}
	for d := 0; d < k; d++ {
		if shards[d] != nil {
			continue
		}
		out := make([]byte, size)
		row := dec.Row(d)
		for j, src := range rows {
			gf256.MulAddSlice(row[j], shards[src], out)
		}
		shards[d] = out
	}
	return nil
}
