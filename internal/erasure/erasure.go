// Package erasure implements systematic (n, k) Reed–Solomon erasure codes
// over GF(2^8), the codes used by Fusion and by the baseline object store.
//
// A Coder splits data into k data shards and generates n−k parity shards.
// The code is systematic: the data shards are stored in plaintext, which is
// what makes in-situ computation pushdown on storage nodes possible (§2 of
// the paper). Any k of the n shards reconstruct the original stripe.
//
// The two configurations the paper discusses, RS(9,6) and RS(14,10), are
// available as RS96 and RS1410, but any n > k ≥ 1 with n ≤ 256 works.
package erasure

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/fusionstore/fusion/internal/gf256"
)

// Common configurations from the paper (§2).
var (
	// RS96 is the default RS(9,6) code: 6 data + 3 parity shards.
	RS96 = Params{N: 9, K: 6}
	// RS1410 is the RS(14,10) code: 10 data + 4 parity shards.
	RS1410 = Params{N: 14, K: 10}
)

// Params names an (n, k) systematic code: n total shards, k data shards.
type Params struct {
	N int // total shards per stripe
	K int // data shards per stripe
}

// Parity returns the number of parity shards, n − k.
func (p Params) Parity() int { return p.N - p.K }

// Overhead returns the optimal storage overhead of the code, (n−k)/k.
func (p Params) Overhead() float64 { return float64(p.N-p.K) / float64(p.K) }

// Validate reports whether the parameters describe a usable code.
func (p Params) Validate() error {
	switch {
	case p.K < 1:
		return fmt.Errorf("erasure: k must be ≥ 1, got %d", p.K)
	case p.N <= p.K:
		return fmt.Errorf("erasure: n (%d) must exceed k (%d)", p.N, p.K)
	case p.N > 256:
		return fmt.Errorf("erasure: n must be ≤ 256, got %d", p.N)
	}
	return nil
}

func (p Params) String() string { return fmt.Sprintf("RS(%d,%d)", p.N, p.K) }

// Coder encodes and reconstructs stripes for a fixed (n, k).
type Coder struct {
	params Params
	// matrix is the n×k systematic code matrix: the top k rows are the
	// identity, the bottom n−k rows generate parity.
	matrix *gf256.Matrix
	// tables[r][c] is the precomputed multiply kernel for matrix entry
	// (r, c). The matrix is fixed at construction, so the kernels are
	// built once and shared by every Encode/Verify/Reconstruct; distinct
	// entries with equal coefficients share one kernel.
	tables [][]gf256.Kernel
	// newKernel builds the kernel for one coefficient — the selection seam.
	// NewCoder installs gf256.NewKernel (the nibble split-table kernel);
	// NewCoderKernel pins a specific implementation for benchmarking one
	// kernel generation against another.
	newKernel func(byte) gf256.Kernel

	// mu guards the coefficient-kernel dedup map and the decode-plan cache
	// (decode matrices depend on which shards survive, so they are built
	// lazily and memoized per erasure pattern).
	mu       sync.RWMutex
	byCoeff  map[byte]gf256.Kernel
	decCache map[string]*decodePlan
}

// maxDecodePlans bounds the decode-plan cache; real deployments see a
// handful of erasure patterns (which nodes are down), so the cap only
// guards against adversarial churn.
const maxDecodePlans = 256

// NewCoder builds a Coder for the given parameters, running the fastest
// multiply kernel (the nibble split-table kernel).
func NewCoder(p Params) (*Coder, error) {
	return NewCoderKernel(p, gf256.NewKernel)
}

// NewCoderKernel builds a Coder whose bulk multiplies run the given kernel
// constructor — the selection seam the kernel benchmarks and the
// FUSION_KERNEL_GATE use to race one kernel generation against another
// (e.g. gf256.NewMulTable vs gf256.NewNibbleTable).
func NewCoderKernel(p Params, kernel func(byte) gf256.Kernel) (*Coder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Coder{
		params:    p,
		matrix:    buildMatrix(p.N, p.K),
		newKernel: kernel,
		byCoeff:   make(map[byte]gf256.Kernel),
		decCache:  make(map[string]*decodePlan),
	}
	c.tables = make([][]gf256.Kernel, p.N)
	for r := 0; r < p.N; r++ {
		c.tables[r] = c.rowTables(c.matrix.Row(r))
	}
	return c, nil
}

// rowTables returns one multiply kernel per coefficient of row,
// deduplicated through the coder's coefficient map.
func (c *Coder) rowTables(row []byte) []gf256.Kernel {
	tabs := make([]gf256.Kernel, len(row))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, coeff := range row {
		t := c.byCoeff[coeff]
		if t == nil {
			t = c.newKernel(coeff)
			c.byCoeff[coeff] = t
		}
		tabs[i] = t
	}
	return tabs
}

// MustCoder is NewCoder for parameters known to be valid; it panics on error.
func MustCoder(p Params) *Coder {
	c, err := NewCoder(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Params returns the coder's (n, k).
func (c *Coder) Params() Params { return c.params }

// buildMatrix constructs the systematic n×k code matrix: a raw Vandermonde
// matrix normalized so its top k×k block is the identity. Every k-row
// submatrix of the result is invertible, which is the property reconstruction
// relies on.
func buildMatrix(n, k int) *gf256.Matrix {
	vm := gf256.Vandermonde(n, k)
	top := vm.SubMatrix(rangeInts(k))
	topInv, err := top.Invert()
	if err != nil {
		// The top k rows of a Vandermonde matrix with distinct points are
		// always independent; failure here is a programming error.
		panic("erasure: vandermonde top block singular: " + err.Error())
	}
	return vm.Mul(topInv)
}

func rangeInts(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// Errors returned by Encode, Verify and Reconstruct.
var (
	ErrShardCount = errors.New("erasure: wrong number of shards")
	ErrShardSize  = errors.New("erasure: shards have mismatched or zero sizes")
	ErrTooFewLeft = errors.New("erasure: too many shards lost to reconstruct")
)

// checkShards validates shape: exactly n shards; all non-nil shards share one
// non-zero size. It returns that size.
func (c *Coder) checkShards(shards [][]byte, allowNil bool) (int, error) {
	if len(shards) != c.params.N {
		return 0, fmt.Errorf("%w: have %d, want %d", ErrShardCount, len(shards), c.params.N)
	}
	size := -1
	for _, s := range shards {
		if s == nil {
			if !allowNil {
				return 0, fmt.Errorf("%w: nil shard", ErrShardSize)
			}
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: %d vs %d", ErrShardSize, len(s), size)
		}
	}
	if size <= 0 {
		return 0, fmt.Errorf("%w: no data present", ErrShardSize)
	}
	return size, nil
}

// Encode fills shards[k:] with parity computed from shards[:k]. All n shards
// must be allocated with the same length; the first k hold data.
//
// The hot loop runs the table-driven kernels over cache-sized sub-stripe
// ranges, fanned out across up to GOMAXPROCS goroutines (forEachRange).
func (c *Coder) Encode(shards [][]byte) error {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return err
	}
	forEachRange(size, func(lo, hi int) { c.encodeRange(shards, lo, hi) })
	return nil
}

// encodeRange computes every parity shard over the byte range [lo, hi).
// The first data shard is multiplied straight into the output (no clear
// pass or read-back of zeroes); the rest accumulate.
func (c *Coder) encodeRange(shards [][]byte, lo, hi int) {
	k, n := c.params.K, c.params.N
	for p := k; p < n; p++ {
		out := shards[p][lo:hi]
		tabs := c.tables[p]
		tabs[0].Mul(shards[0][lo:hi], out)
		for d := 1; d < k; d++ {
			tabs[d].MulAdd(shards[d][lo:hi], out)
		}
	}
}

// encodeNaive is the seed byte-wise encode kernel (log/exp MulAddSlice, one
// full-stripe pass per matrix coefficient). It is retained as the reference
// implementation: property tests assert the table-driven parallel kernels
// are bit-identical to it, and benchmarks report its throughput as the
// baseline the kernel rewrite is measured against.
func (c *Coder) encodeNaive(shards [][]byte) error {
	if _, err := c.checkShards(shards, false); err != nil {
		return err
	}
	k := c.params.K
	for p := k; p < c.params.N; p++ {
		row := c.matrix.Row(p)
		out := shards[p]
		clear(out)
		for d := 0; d < k; d++ {
			gf256.MulAddSlice(row[d], shards[d], out)
		}
	}
	return nil
}

// Split partitions data into k equal data shards (zero-padding the tail) and
// allocates n−k parity shards, ready for Encode. The returned shard size is
// ceil(len(data)/k); data of length 0 yields shards of size 1.
func (c *Coder) Split(data []byte) [][]byte {
	k, n := c.params.K, c.params.N
	size := (len(data) + k - 1) / k
	if size == 0 {
		size = 1
	}
	shards := make([][]byte, n)
	for i := 0; i < n; i++ {
		shards[i] = make([]byte, size)
		if i < k {
			start := i * size
			if start < len(data) {
				copy(shards[i], data[start:min(start+size, len(data))])
			}
		}
	}
	return shards
}

// Join concatenates the k data shards and trims the result to dataLen.
func (c *Coder) Join(shards [][]byte, dataLen int) ([]byte, error) {
	if len(shards) < c.params.K {
		return nil, ErrShardCount
	}
	out := make([]byte, 0, dataLen)
	for i := 0; i < c.params.K && len(out) < dataLen; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing", ErrShardSize, i)
		}
		need := dataLen - len(out)
		out = append(out, shards[i][:min(need, len(shards[i]))]...)
	}
	if len(out) != dataLen {
		return nil, fmt.Errorf("erasure: shards hold %d bytes, need %d", len(out), dataLen)
	}
	return out, nil
}

// Verify recomputes parity from the data shards and reports whether it
// matches the stored parity shards. Parity is recomputed into pooled
// scratch buffers (no per-call allocation) over parallel sub-stripe
// ranges; the first mismatching range short-circuits the rest.
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return false, err
	}
	k, n := c.params.K, c.params.N
	var mismatch atomic.Bool
	forEachRange(size, func(lo, hi int) {
		if mismatch.Load() {
			return
		}
		bufp := getScratch(hi - lo)
		defer putScratch(bufp)
		buf := *bufp
		for p := k; p < n; p++ {
			tabs := c.tables[p]
			tabs[0].Mul(shards[0][lo:hi], buf)
			for d := 1; d < k; d++ {
				tabs[d].MulAdd(shards[d][lo:hi], buf)
			}
			if !bytes.Equal(buf, shards[p][lo:hi]) {
				mismatch.Store(true)
				return
			}
		}
	})
	return !mismatch.Load(), nil
}

// decodePlan is a memoized decode strategy for one erasure pattern: which k
// present shards to read, which data shards to rebuild, and the
// multiplication tables of the inverted decode matrix rows that do it.
// Plans are cached per pattern so repeated reconstructions (scrubs, node
// repair loops, degraded-read storms) skip the matrix inversion and table
// builds entirely.
type decodePlan struct {
	rows    []int            // the k present shard indices the plan reads
	missing []int            // data shard indices the plan rebuilds
	tables  [][]gf256.Kernel // tables[i][j] multiplies shards[rows[j]] into missing[i]
}

// decodePlanFor returns the (cached) plan that rebuilds the data shards
// absent from rows, where rows holds k present shard indices in ascending
// order.
func (c *Coder) decodePlanFor(rows []int) (*decodePlan, error) {
	keyBytes := make([]byte, len(rows))
	for i, r := range rows {
		keyBytes[i] = byte(r)
	}
	key := string(keyBytes)
	c.mu.RLock()
	plan := c.decCache[key]
	c.mu.RUnlock()
	if plan != nil {
		return plan, nil
	}
	dec, err := c.matrix.SubMatrix(rows).Invert()
	if err != nil {
		// Cannot happen for a valid RS matrix: every k-row submatrix is
		// invertible by construction.
		return nil, fmt.Errorf("erasure: decode matrix singular: %v", err)
	}
	k := c.params.K
	inRows := make([]bool, k)
	for _, r := range rows {
		if r < k {
			inRows[r] = true
		}
	}
	plan = &decodePlan{rows: append([]int(nil), rows...)}
	for d := 0; d < k; d++ {
		if inRows[d] {
			continue
		}
		plan.missing = append(plan.missing, d)
		plan.tables = append(plan.tables, c.rowTables(dec.Row(d)))
	}
	c.mu.Lock()
	if len(c.decCache) < maxDecodePlans {
		c.decCache[key] = plan
	}
	c.mu.Unlock()
	return plan, nil
}

// Reconstruct rebuilds every nil shard in place. Missing shards are denoted
// by nil entries; at least k shards must be present. Present shards are never
// modified. Reconstruct rebuilds both data and parity shards.
func (c *Coder) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, true)
}

// ReconstructData rebuilds only the missing data shards (indexes < k),
// leaving missing parity shards nil. It is the cheaper call when the caller
// only needs the original bytes back.
func (c *Coder) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, false)
}

func (c *Coder) reconstruct(shards [][]byte, parity bool) error {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return err
	}
	n, k := c.params.N, c.params.K
	present := make([]int, 0, n)
	var missData, missParity []int
	for i, s := range shards {
		switch {
		case s != nil:
			present = append(present, i)
		case i < k:
			missData = append(missData, i)
		case parity:
			missParity = append(missParity, i)
		}
	}
	if len(missData) == 0 && len(missParity) == 0 {
		return nil
	}
	if len(present) < k {
		return fmt.Errorf("%w: %d present, need %d", ErrTooFewLeft, len(present), k)
	}
	// Any k present shards decode. Every present data index sits within the
	// first k of the ascending present list, so the plan's missing-data set
	// matches missData exactly.
	rows := present[:k]
	plan, err := c.decodePlanFor(rows)
	if err != nil {
		return err
	}
	for _, m := range missData {
		shards[m] = make([]byte, size)
	}
	for _, m := range missParity {
		shards[m] = make([]byte, size)
	}
	// One pass per sub-stripe range: rebuild missing data in [lo, hi), then
	// missing parity from the (range-complete) data shards. Ranges are
	// disjoint, so the fan-out needs no further synchronization.
	forEachRange(size, func(lo, hi int) {
		for i, d := range plan.missing {
			out := shards[d][lo:hi]
			tabs := plan.tables[i]
			tabs[0].Mul(shards[rows[0]][lo:hi], out)
			for j := 1; j < k; j++ {
				tabs[j].MulAdd(shards[rows[j]][lo:hi], out)
			}
		}
		for _, p := range missParity {
			out := shards[p][lo:hi]
			tabs := c.tables[p]
			tabs[0].Mul(shards[0][lo:hi], out)
			for d := 1; d < k; d++ {
				tabs[d].MulAdd(shards[d][lo:hi], out)
			}
		}
	})
	return nil
}
