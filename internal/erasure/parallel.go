package erasure

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// blockSize is the sub-stripe granule the coders shard work by: small
// enough that one output block stays L1-resident across the k accumulation
// passes (the cache-blocking that makes even single-core encodes faster),
// large enough to amortize the goroutine handoff when fanning out.
const blockSize = 32 << 10

// forEachRange invokes fn over consecutive [lo, hi) sub-ranges covering
// [0, size), fanning blocks out to at most GOMAXPROCS goroutines. fn must
// be safe to call concurrently on disjoint ranges. With a single worker
// (or a single block) the ranges run inline on the calling goroutine.
func forEachRange(size int, fn func(lo, hi int)) {
	nblocks := (size + blockSize - 1) / blockSize
	workers := runtime.GOMAXPROCS(0)
	if workers > nblocks {
		workers = nblocks
	}
	if workers <= 1 {
		for lo := 0; lo < size; lo += blockSize {
			fn(lo, min(lo+blockSize, size))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nblocks {
					return
				}
				lo := b * blockSize
				fn(lo, min(lo+blockSize, size))
			}
		}()
	}
	wg.Wait()
}

// scratchPool recycles parity scratch buffers across Verify calls and range
// workers, so verification and reconstruction stop allocating per call.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, blockSize)
		return &b
	},
}

// getScratch returns a pooled buffer of length n; release with putScratch.
func getScratch(n int) *[]byte {
	p := scratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratch(p *[]byte) { scratchPool.Put(p) }
