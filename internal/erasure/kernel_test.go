package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fusionstore/fusion/internal/gf256"
)

// randShards builds n shards of the given size; the first k hold random
// data, the rest are zeroed parity slots.
func randShards(rng *rand.Rand, p Params, size int) [][]byte {
	shards := make([][]byte, p.N)
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < p.K {
			rng.Read(shards[i])
		}
	}
	return shards
}

func cloneShards(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		if s != nil {
			out[i] = append([]byte(nil), s...)
		}
	}
	return out
}

// TestEncodeMatchesNaive is the property test of the tentpole kernels: over
// random (n, k), shard sizes with odd tails, and payloads, the table-driven
// parallel Encode must be bit-identical to the retained seed kernel.
func TestEncodeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(12)
		n := k + 1 + r.Intn(6)
		// Sizes straddle the block granule and include odd tails.
		size := 1 + r.Intn(3*blockSize)
		c := MustCoder(Params{N: n, K: k})
		shards := randShards(r, c.params, size)
		naive := cloneShards(shards)
		if err := c.Encode(shards); err != nil {
			t.Logf("Encode: %v", err)
			return false
		}
		if err := c.encodeNaive(naive); err != nil {
			t.Logf("encodeNaive: %v", err)
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], naive[i]) {
				t.Logf("RS(%d,%d) size %d: shard %d differs", n, k, size, i)
				return false
			}
		}
		ok, err := c.Verify(shards)
		if err != nil || !ok {
			t.Logf("Verify after Encode: ok=%v err=%v", ok, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestReconstructMatchesOriginal checks that across random erasure patterns
// (up to n−k lost shards, data and parity alike) the parallel Reconstruct
// restores exactly the encoded stripe.
func TestReconstructMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(12)
		n := k + 1 + r.Intn(6)
		size := 1 + r.Intn(3*blockSize)
		c := MustCoder(Params{N: n, K: k})
		shards := randShards(r, c.params, size)
		if err := c.Encode(shards); err != nil {
			t.Logf("Encode: %v", err)
			return false
		}
		original := cloneShards(shards)
		lost := 1 + r.Intn(n-k)
		damaged := cloneShards(shards)
		for _, i := range r.Perm(n)[:lost] {
			damaged[i] = nil
		}
		if err := c.Reconstruct(damaged); err != nil {
			t.Logf("Reconstruct: %v", err)
			return false
		}
		for i := range damaged {
			if !bytes.Equal(damaged[i], original[i]) {
				t.Logf("RS(%d,%d) size %d lost %d: shard %d differs", n, k, size, lost, i)
				return false
			}
		}
		// Data-only reconstruction must restore the data shards and leave
		// missing parity nil.
		dataOnly := cloneShards(shards)
		killed := r.Perm(n)[:lost]
		for _, i := range killed {
			dataOnly[i] = nil
		}
		if err := c.ReconstructData(dataOnly); err != nil {
			t.Logf("ReconstructData: %v", err)
			return false
		}
		for d := 0; d < k; d++ {
			if !bytes.Equal(dataOnly[d], original[d]) {
				t.Logf("RS(%d,%d): data shard %d differs after ReconstructData", n, k, d)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDecodePlanCacheReuse checks that repeated reconstructions of the same
// erasure pattern hit one cached plan.
func TestDecodePlanCacheReuse(t *testing.T) {
	c := MustCoder(RS96)
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 5; i++ {
		shards := randShards(rng, c.params, 4096)
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		want := cloneShards(shards)
		shards[1], shards[7] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		for j := range shards {
			if !bytes.Equal(shards[j], want[j]) {
				t.Fatalf("iteration %d: shard %d differs", i, j)
			}
		}
	}
	c.mu.RLock()
	plans := len(c.decCache)
	c.mu.RUnlock()
	if plans != 1 {
		t.Fatalf("decode-plan cache holds %d plans, want 1", plans)
	}
}

// TestCoderKernelsAgree encodes the same stripes through the product-table
// and nibble coders and requires bit-identical output — the seam-level
// companion to the gf256 property tests.
func TestCoderKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(12)
		n := k + 1 + r.Intn(6)
		size := 1 + r.Intn(2*blockSize)
		p := Params{N: n, K: k}
		table, err := NewCoderKernel(p, func(c byte) gf256.Kernel { return gf256.NewMulTable(c) })
		if err != nil {
			t.Logf("NewCoderKernel: %v", err)
			return false
		}
		nibble := MustCoder(p)
		a := randShards(r, p, size)
		bShards := cloneShards(a)
		if err := table.Encode(a); err != nil {
			t.Logf("table Encode: %v", err)
			return false
		}
		if err := nibble.Encode(bShards); err != nil {
			t.Logf("nibble Encode: %v", err)
			return false
		}
		for i := range a {
			if !bytes.Equal(a[i], bShards[i]) {
				t.Logf("RS(%d,%d) size %d: shard %d differs across kernels", n, k, size, i)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func benchEncode(b *testing.B, p Params, shardSize int, naive bool) {
	benchEncodeCoder(b, MustCoder(p), p, shardSize, naive)
}

func benchEncodeCoder(b *testing.B, c *Coder, p Params, shardSize int, naive bool) {
	shards := make([][]byte, p.N)
	rng := rand.New(rand.NewSource(45))
	for i := range shards {
		shards[i] = make([]byte, shardSize)
		if i < p.K {
			rng.Read(shards[i])
		}
	}
	b.SetBytes(int64(p.K * shardSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if naive {
			err = c.encodeNaive(shards)
		} else {
			err = c.Encode(shards)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeRS96 / RS1410 measure the default (nibble split-table)
// parallel kernels on 1 MiB shards; the Table variants pin the previous
// product-table generation and the Naive variants the seed kernel, so the
// three generations read as one ladder.
func BenchmarkEncodeRS96(b *testing.B)        { benchEncode(b, RS96, 1<<20, false) }
func BenchmarkEncodeRS1410(b *testing.B)      { benchEncode(b, RS1410, 1<<20, false) }
func BenchmarkEncodeNaiveRS96(b *testing.B)   { benchEncode(b, RS96, 1<<20, true) }
func BenchmarkEncodeNaiveRS1410(b *testing.B) { benchEncode(b, RS1410, 1<<20, true) }

func benchEncodeTable(b *testing.B, p Params, shardSize int) {
	c, err := NewCoderKernel(p, func(coeff byte) gf256.Kernel { return gf256.NewMulTable(coeff) })
	if err != nil {
		b.Fatal(err)
	}
	benchEncodeCoder(b, c, p, shardSize, false)
}

func BenchmarkEncodeTableRS96(b *testing.B)   { benchEncodeTable(b, RS96, 1<<20) }
func BenchmarkEncodeTableRS1410(b *testing.B) { benchEncodeTable(b, RS1410, 1<<20) }

func BenchmarkReconstruct(b *testing.B) {
	const shardSize = 1 << 20
	c := MustCoder(RS96)
	rng := rand.New(rand.NewSource(46))
	shards := make([][]byte, c.params.N)
	for i := range shards {
		shards[i] = make([]byte, shardSize)
		if i < c.params.K {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	work := make([][]byte, len(shards))
	b.SetBytes(int64(c.params.K * shardSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, shards)
		work[0], work[3], work[8] = nil, nil, nil
		if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	const shardSize = 1 << 20
	c := MustCoder(RS96)
	rng := rand.New(rand.NewSource(47))
	shards := make([][]byte, c.params.N)
	for i := range shards {
		shards[i] = make([]byte, shardSize)
		if i < c.params.K {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(c.params.K * shardSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := c.Verify(shards)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}
