package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{RS96, true},
		{RS1410, true},
		{Params{N: 2, K: 1}, true},
		{Params{N: 1, K: 1}, false},
		{Params{N: 6, K: 9}, false},
		{Params{N: 300, K: 10}, false},
		{Params{N: 3, K: 0}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%v: Validate() = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestParamsOverhead(t *testing.T) {
	if RS96.Overhead() != 0.5 {
		t.Fatalf("RS(9,6) overhead must be 0.5, got %v", RS96.Overhead())
	}
	if RS1410.Overhead() != 0.4 {
		t.Fatalf("RS(14,10) overhead must be 0.4, got %v", RS1410.Overhead())
	}
	if RS96.Parity() != 3 {
		t.Fatal("RS(9,6) parity count must be 3")
	}
	if RS96.String() != "RS(9,6)" {
		t.Fatalf("String() = %q", RS96.String())
	}
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	c := MustCoder(RS96)
	data := make([]byte, 6*1024)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	shards := c.Split(data)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true", ok, err)
	}
	// Corrupt one parity byte: verify must fail.
	shards[8][17] ^= 0xff
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify after corruption = %v, %v; want false", ok, err)
	}
}

func TestSplitJoin(t *testing.T) {
	c := MustCoder(RS96)
	for _, n := range []int{0, 1, 5, 6, 7, 100, 6143, 6144, 6145} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		shards := c.Split(data)
		if len(shards) != 9 {
			t.Fatalf("Split must return 9 shards, got %d", len(shards))
		}
		got, err := c.Join(shards, n)
		if err != nil {
			t.Fatalf("Join(%d): %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Join(%d) round trip failed", n)
		}
	}
}

// reconstructCase runs one erase-and-reconstruct cycle, erasing the given
// shard indexes, and checks the data comes back intact.
func reconstructCase(t *testing.T, p Params, erase []int) {
	t.Helper()
	c := MustCoder(p)
	data := make([]byte, p.K*512+13)
	rng := rand.New(rand.NewSource(int64(len(erase) + p.N)))
	rng.Read(data)
	shards := c.Split(data)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, len(shards))
	for i, s := range shards {
		orig[i] = bytes.Clone(s)
	}
	for _, e := range erase {
		shards[e] = nil
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatalf("Reconstruct(erase %v): %v", erase, err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("shard %d differs after reconstruction (erased %v)", i, erase)
		}
	}
	got, err := c.Join(shards, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data mismatch after reconstruction: %v", err)
	}
}

func TestReconstructAllPatterns(t *testing.T) {
	// RS(9,6): every single, double and triple erasure must be recoverable.
	for i := 0; i < 9; i++ {
		reconstructCase(t, RS96, []int{i})
		for j := i + 1; j < 9; j++ {
			reconstructCase(t, RS96, []int{i, j})
			for l := j + 1; l < 9; l++ {
				reconstructCase(t, RS96, []int{i, j, l})
			}
		}
	}
}

func TestReconstructRS1410(t *testing.T) {
	reconstructCase(t, RS1410, []int{0, 5, 10, 13})
	reconstructCase(t, RS1410, []int{10, 11, 12, 13}) // all parity
	reconstructCase(t, RS1410, []int{0, 1, 2, 3})     // leading data
}

func TestReconstructTooManyLost(t *testing.T) {
	c := MustCoder(RS96)
	shards := c.Split(make([]byte, 600))
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for _, e := range []int{0, 1, 2, 3} { // 4 > n-k = 3
		shards[e] = nil
	}
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("Reconstruct must fail with 4 losses under RS(9,6)")
	}
}

func TestReconstructDataOnly(t *testing.T) {
	c := MustCoder(RS96)
	data := []byte("fusion reconstructs only what it needs for a degraded read")
	shards := c.Split(data)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[2] = nil // data
	shards[7] = nil // parity
	if err := c.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if shards[7] != nil {
		t.Fatal("ReconstructData must not rebuild parity shards")
	}
	got, err := c.Join(shards, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data mismatch: %v", err)
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	c := MustCoder(RS96)
	shards := c.Split([]byte("complete"))
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if err := c.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeShapeErrors(t *testing.T) {
	c := MustCoder(RS96)
	if err := c.Encode(make([][]byte, 5)); err == nil {
		t.Fatal("Encode must reject wrong shard count")
	}
	shards := c.Split([]byte("x"))
	shards[3] = make([]byte, 99)
	if err := c.Encode(shards); err == nil {
		t.Fatal("Encode must reject mismatched sizes")
	}
}

// Property: for random data, a random code, and any random erasure of at most
// n−k shards, reconstruction recovers the data exactly.
func TestReconstructProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(10)
		n := k + 1 + r.Intn(6)
		c := MustCoder(Params{N: n, K: k})
		data := make([]byte, 1+r.Intn(4096))
		r.Read(data)
		shards := c.Split(data)
		if err := c.Encode(shards); err != nil {
			return false
		}
		// Erase up to n−k random shards.
		losses := r.Intn(n - k + 1)
		perm := r.Perm(n)
		for _, e := range perm[:losses] {
			shards[e] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		got, err := c.Join(shards, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRS96_1MB(b *testing.B) {
	c := MustCoder(RS96)
	data := make([]byte, 6<<20)
	rand.New(rand.NewSource(1)).Read(data)
	shards := c.Split(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructRS96(b *testing.B) {
	c := MustCoder(RS96)
	data := make([]byte, 6<<20)
	rand.New(rand.NewSource(1)).Read(data)
	shards := c.Split(data)
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saved0, saved4 := shards[0], shards[4]
		shards[0], shards[4] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
		_ = saved0
		_ = saved4
	}
}
