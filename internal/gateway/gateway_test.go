package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/store"
)

func testServer(t *testing.T) (*httptest.Server, []byte) {
	t.Helper()
	cl := simnet.New(simnet.DefaultConfig())
	opts := store.FusionOptions()
	opts.StorageBudget = 1
	s, err := store.New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(s))
	t.Cleanup(srv.Close)

	w := lpq.NewWriter([]lpq.Column{
		{Name: "k", Type: lpq.Int64},
		{Name: "v", Type: lpq.Float64},
		{Name: "tag", Type: lpq.String},
	}, lpq.DefaultWriterOptions())
	var ks []int64
	var vs []float64
	var tags []string
	for i := 0; i < 2000; i++ {
		ks = append(ks, int64(i))
		vs = append(vs, float64(i)/4)
		tags = append(tags, fmt.Sprintf("t%d", i%5))
	}
	if err := w.WriteRowGroup([]lpq.ColumnData{lpq.IntColumn(ks), lpq.FloatColumn(vs), lpq.StringColumn(tags)}); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return srv, data
}

func do(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestGatewayLifecycle(t *testing.T) {
	srv, object := testServer(t)

	// Health.
	resp, _ := do(t, "GET", srv.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Put.
	resp, body := do(t, "PUT", srv.URL+"/objects/tbl", object)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put = %d: %s", resp.StatusCode, body)
	}
	var putInfo map[string]any
	if err := json.Unmarshal(body, &putInfo); err != nil {
		t.Fatal(err)
	}
	if putInfo["layout"] != "FAC" {
		t.Fatalf("layout = %v", putInfo["layout"])
	}

	// Meta.
	resp, body = do(t, "GET", srv.URL+"/objects/tbl/meta", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta = %d", resp.StatusCode)
	}
	var meta map[string]any
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta["rows"].(float64) != 2000 {
		t.Fatalf("rows = %v", meta["rows"])
	}

	// Get (full + range).
	resp, body = do(t, "GET", srv.URL+"/objects/tbl", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, object) {
		t.Fatalf("get = %d, %d bytes", resp.StatusCode, len(body))
	}
	resp, body = do(t, "GET", srv.URL+"/objects/tbl?offset=4&length=16", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, object[4:20]) {
		t.Fatalf("range get = %d", resp.StatusCode)
	}

	// Query with rows.
	resp, body = do(t, "POST", srv.URL+"/query", []byte("SELECT k, tag FROM tbl WHERE k < 3"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 3 || len(qr.Rows) != 3 {
		t.Fatalf("query rows = %d/%d", qr.RowCount, len(qr.Rows))
	}
	if qr.Rows[0][1] != "t0" {
		t.Fatalf("row content wrong: %v", qr.Rows[0])
	}

	// Query with aggregates.
	resp, body = do(t, "POST", srv.URL+"/query", []byte("SELECT COUNT(*), AVG(v) FROM tbl WHERE tag = 't1'"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("agg query = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Aggregates["COUNT(*)"].(float64) != 400 {
		t.Fatalf("COUNT(*) = %v", qr.Aggregates["COUNT(*)"])
	}

	// Scrub.
	resp, body = do(t, "POST", srv.URL+"/scrub/tbl", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub = %d: %s", resp.StatusCode, body)
	}
	var rep store.ScrubReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Stripes == 0 || rep.CorruptStripes != 0 {
		t.Fatalf("scrub report: %+v", rep)
	}

	// Delete, then 404.
	resp, _ = do(t, "DELETE", srv.URL+"/objects/tbl", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", srv.URL+"/objects/tbl", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d", resp.StatusCode)
	}
}

func TestGatewayErrors(t *testing.T) {
	srv, object := testServer(t)
	// Garbage object.
	resp, _ := do(t, "PUT", srv.URL+"/objects/bad", []byte("not lpq"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad put = %d", resp.StatusCode)
	}
	// Query on missing object.
	resp, _ = do(t, "POST", srv.URL+"/query", []byte("SELECT a FROM missing"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing query = %d", resp.StatusCode)
	}
	// Bad SQL.
	do(t, "PUT", srv.URL+"/objects/tbl", object)
	resp, body := do(t, "POST", srv.URL+"/query", []byte("SELEC nope"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sql = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "error") {
		t.Fatal("error body must carry a message")
	}
	// Empty query body.
	resp, _ = do(t, "POST", srv.URL+"/query", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query = %d", resp.StatusCode)
	}
	// Bad range params.
	resp, _ = do(t, "GET", srv.URL+"/objects/tbl?offset=x", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad offset = %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", srv.URL+"/objects/tbl?offset=999999999", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range offset = %d", resp.StatusCode)
	}
}
