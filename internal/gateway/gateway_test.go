package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/simnet"
	"github.com/fusionstore/fusion/internal/store"
	"github.com/fusionstore/fusion/internal/trace"
)

func testServer(t *testing.T) (*httptest.Server, []byte) {
	t.Helper()
	cl := simnet.New(simnet.DefaultConfig())
	opts := store.FusionOptions()
	opts.StorageBudget = 1
	opts.Metrics = metrics.NewHistogramSet()
	s, err := store.New(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(s))
	t.Cleanup(srv.Close)

	w := lpq.NewWriter([]lpq.Column{
		{Name: "k", Type: lpq.Int64},
		{Name: "v", Type: lpq.Float64},
		{Name: "tag", Type: lpq.String},
	}, lpq.DefaultWriterOptions())
	var ks []int64
	var vs []float64
	var tags []string
	for i := 0; i < 2000; i++ {
		ks = append(ks, int64(i))
		vs = append(vs, float64(i)/4)
		tags = append(tags, fmt.Sprintf("t%d", i%5))
	}
	if err := w.WriteRowGroup([]lpq.ColumnData{lpq.IntColumn(ks), lpq.FloatColumn(vs), lpq.StringColumn(tags)}); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return srv, data
}

func do(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestGatewayLifecycle(t *testing.T) {
	srv, object := testServer(t)

	// Health.
	resp, _ := do(t, "GET", srv.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Put.
	resp, body := do(t, "PUT", srv.URL+"/objects/tbl", object)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put = %d: %s", resp.StatusCode, body)
	}
	var putInfo map[string]any
	if err := json.Unmarshal(body, &putInfo); err != nil {
		t.Fatal(err)
	}
	if putInfo["layout"] != "FAC" {
		t.Fatalf("layout = %v", putInfo["layout"])
	}

	// Meta.
	resp, body = do(t, "GET", srv.URL+"/objects/tbl/meta", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta = %d", resp.StatusCode)
	}
	var meta map[string]any
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta["rows"].(float64) != 2000 {
		t.Fatalf("rows = %v", meta["rows"])
	}

	// Get (full + range).
	resp, body = do(t, "GET", srv.URL+"/objects/tbl", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, object) {
		t.Fatalf("get = %d, %d bytes", resp.StatusCode, len(body))
	}
	resp, body = do(t, "GET", srv.URL+"/objects/tbl?offset=4&length=16", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, object[4:20]) {
		t.Fatalf("range get = %d", resp.StatusCode)
	}

	// Query with rows.
	resp, body = do(t, "POST", srv.URL+"/query", []byte("SELECT k, tag FROM tbl WHERE k < 3"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 3 || len(qr.Rows) != 3 {
		t.Fatalf("query rows = %d/%d", qr.RowCount, len(qr.Rows))
	}
	if qr.Rows[0][1] != "t0" {
		t.Fatalf("row content wrong: %v", qr.Rows[0])
	}

	// Query with aggregates.
	resp, body = do(t, "POST", srv.URL+"/query", []byte("SELECT COUNT(*), AVG(v) FROM tbl WHERE tag = 't1'"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("agg query = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Aggregates["COUNT(*)"].(float64) != 400 {
		t.Fatalf("COUNT(*) = %v", qr.Aggregates["COUNT(*)"])
	}

	// Scrub.
	resp, body = do(t, "POST", srv.URL+"/scrub/tbl", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub = %d: %s", resp.StatusCode, body)
	}
	var rep store.ScrubReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Stripes == 0 || rep.CorruptStripes != 0 {
		t.Fatalf("scrub report: %+v", rep)
	}

	// Delete, then 404.
	resp, _ = do(t, "DELETE", srv.URL+"/objects/tbl", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", srv.URL+"/objects/tbl", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d", resp.StatusCode)
	}
}

// findSpan walks a span-tree snapshot for a span whose name starts with
// prefix, depth first.
func findSpan(spans []trace.SpanJSON, prefix string) *trace.SpanJSON {
	for i := range spans {
		if strings.HasPrefix(spans[i].Name, prefix) {
			return &spans[i]
		}
		if s := findSpan(spans[i].Children, prefix); s != nil {
			return s
		}
	}
	return nil
}

// TestDebugFusionz drives a traced PUT/GET/query workload and asserts the
// observability endpoint reports per-stage spans, latency histograms, and a
// read-amplification ratio — the ISSUE's acceptance check for the tracing
// layer.
func TestDebugFusionz(t *testing.T) {
	srv, object := testServer(t)
	if resp, body := do(t, "PUT", srv.URL+"/objects/tbl", object); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put = %d: %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, "GET", srv.URL+"/objects/tbl", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("get = %d", resp.StatusCode)
	}
	if resp, body := do(t, "POST", srv.URL+"/query", []byte("SELECT k FROM tbl WHERE k < 100")); resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", resp.StatusCode, body)
	}

	// JSON form: histograms + span trees.
	resp, body := do(t, "GET", srv.URL+"/debug/fusionz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fusionz = %d", resp.StatusCode)
	}
	var dump struct {
		Histograms []metrics.HistogramSnapshot `json:"histograms"`
		Traces     []trace.SpanJSON            `json:"traces"`
		TracesSeen uint64                      `json:"traces_seen"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("fusionz json: %v\n%s", err, body)
	}
	if dump.TracesSeen < 3 {
		t.Fatalf("traces_seen = %d, want >= 3 (put, get, query)", dump.TracesSeen)
	}
	ops := make(map[string]bool)
	for _, h := range dump.Histograms {
		if h.Count == 0 {
			t.Fatalf("histogram %s[%d] has zero count", h.Op, h.Node)
		}
		ops[h.Op] = true
	}
	for _, want := range []string{"op.Put", "op.Get", "op.Query", "rpc.GetBlock"} {
		if !ops[want] {
			t.Fatalf("histograms missing op %q (have %v)", want, ops)
		}
	}

	// The traced query must carry its per-stage children and a
	// read-amplification ratio on the root.
	q := findSpan(dump.Traces, "http.query")
	if q == nil {
		t.Fatalf("no http.query trace in %d retained traces", len(dump.Traces))
	}
	if q.ReadAmp <= 0 {
		t.Fatalf("query trace read amplification = %v, want > 0", q.ReadAmp)
	}
	for _, stage := range []string{"store.Query", "meta", "filter", "project"} {
		if findSpan([]trace.SpanJSON{*q}, stage) == nil {
			t.Fatalf("query trace missing %q stage:\n%s", stage, body)
		}
	}
	if g := findSpan(dump.Traces, "http.get"); g == nil {
		t.Fatal("no http.get trace retained")
	} else if findSpan([]trace.SpanJSON{*g}, "store.Get") == nil {
		t.Fatal("get trace missing store.Get child")
	}

	// Text form: histogram table, health section, rendered trees.
	resp, body = do(t, "GET", srv.URL+"/debug/fusionz?format=text", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fusionz text = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"== histograms ==", "== node health ==", "== recent traces",
		"http.query", "read amplification:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestGatewayErrors(t *testing.T) {
	srv, object := testServer(t)
	// Garbage object.
	resp, _ := do(t, "PUT", srv.URL+"/objects/bad", []byte("not lpq"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad put = %d", resp.StatusCode)
	}
	// Query on missing object.
	resp, _ = do(t, "POST", srv.URL+"/query", []byte("SELECT a FROM missing"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing query = %d", resp.StatusCode)
	}
	// Bad SQL.
	do(t, "PUT", srv.URL+"/objects/tbl", object)
	resp, body := do(t, "POST", srv.URL+"/query", []byte("SELEC nope"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sql = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "error") {
		t.Fatal("error body must carry a message")
	}
	// Empty query body.
	resp, _ = do(t, "POST", srv.URL+"/query", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query = %d", resp.StatusCode)
	}
	// Bad range params.
	resp, _ = do(t, "GET", srv.URL+"/objects/tbl?offset=x", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad offset = %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", srv.URL+"/objects/tbl?offset=999999999", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range offset = %d", resp.StatusCode)
	}
}
