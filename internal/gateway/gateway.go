// Package gateway exposes a Fusion store over HTTP, in the style of the
// cloud object-store front doors the paper positions Fusion behind (S3 +
// S3 Select, Azure query acceleration — Fig. 1): object PUT/GET/DELETE
// plus a query endpoint that runs SQL near the data.
//
//	PUT    /objects/{name}            store an lpq object (body = bytes)
//	GET    /objects/{name}            read it (optional ?offset= & ?length=)
//	DELETE /objects/{name}            remove it
//	GET    /objects/{name}/meta      footer summary (JSON)
//	POST   /query                     body = SELECT statement; JSON reply
//	POST   /scrub/{name}?repair=1     integrity scrub
//	POST   /scruball?repair=1         scrub every discoverable object
//	POST   /repair/{node}             rebuild a node's blocks (rejoin catch-up)
//	POST   /reconcile?force=1         garbage-collect crash debris
//	GET    /healthz                   liveness
//	GET    /debug/fusionz             observability: latency histograms,
//	                                  per-node health, recent request traces
//	                                  with read amplification (?format=text
//	                                  for the human-readable rendering)
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/sql"
	"github.com/fusionstore/fusion/internal/store"
	"github.com/fusionstore/fusion/internal/trace"
)

// maxObjectBytes bounds a PUT body.
const maxObjectBytes = 4 << 30

// ringSize is how many finished request traces /debug/fusionz retains.
const ringSize = 64

// Handler routes gateway requests to a Store.
type Handler struct {
	store *store.Store
	mux   *http.ServeMux
	ring  *trace.Ring
}

// New builds the HTTP handler for a store.
func New(s *store.Store) *Handler {
	h := &Handler{store: s, mux: http.NewServeMux(), ring: trace.NewRing(ringSize)}
	h.mux.HandleFunc("PUT /objects/{name}", h.putObject)
	h.mux.HandleFunc("GET /objects/{name}", h.getObject)
	h.mux.HandleFunc("DELETE /objects/{name}", h.deleteObject)
	h.mux.HandleFunc("GET /objects/{name}/meta", h.getMeta)
	h.mux.HandleFunc("POST /query", h.query)
	h.mux.HandleFunc("POST /scrub/{name}", h.scrub)
	h.mux.HandleFunc("POST /scruball", h.scrubAll)
	h.mux.HandleFunc("POST /repair/{node}", h.repairNode)
	h.mux.HandleFunc("POST /reconcile", h.reconcile)
	h.mux.HandleFunc("GET /debug/fusionz", h.debugFusionz)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return h
}

// traced begins a request-scoped trace; the returned finish captures the
// completed span tree into the debug ring.
func (h *Handler) traced(r *http.Request, name string) (context.Context, func()) {
	ctx, sp := trace.Start(r.Context(), name)
	return ctx, func() {
		sp.End()
		h.ring.Add(sp)
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (h *Handler) putObject(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxObjectBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxObjectBytes {
		httpError(w, http.StatusRequestEntityTooLarge, errors.New("object too large"))
		return
	}
	ctx, finish := h.traced(r, "http.put "+name)
	defer finish()
	stats, err := h.store.PutContext(ctx, name, body)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"name":               name,
		"bytes":              len(body),
		"stored_bytes":       stats.StoredBytes,
		"layout":             stats.Mode.String(),
		"stripes":            stats.Stripes,
		"overhead_vs_opt":    stats.OverheadVsOptimal,
		"fell_back_to_fixed": stats.FellBack,
	})
}

func (h *Handler) getObject(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var offset, length uint64
	var err error
	if v := r.URL.Query().Get("offset"); v != "" {
		if offset, err = strconv.ParseUint(v, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad offset: %w", err))
			return
		}
	}
	if v := r.URL.Query().Get("length"); v != "" {
		if length, err = strconv.ParseUint(v, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad length: %w", err))
			return
		}
	}
	ctx, finish := h.traced(r, "http.get "+name)
	defer finish()
	data, err := h.store.GetContext(ctx, name, offset, length)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (h *Handler) deleteObject(w http.ResponseWriter, r *http.Request) {
	if err := h.store.DeleteContext(r.Context(), r.PathValue("name")); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *Handler) getMeta(w http.ResponseWriter, r *http.Request) {
	meta, err := h.store.Meta(r.PathValue("name"))
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	type colInfo struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	cols := make([]colInfo, len(meta.Footer.Columns))
	for i, c := range meta.Footer.Columns {
		cols[i] = colInfo{Name: c.Name, Type: c.Type.String()}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"name":       meta.Name,
		"size":       meta.Size,
		"layout":     meta.Mode.String(),
		"columns":    cols,
		"row_groups": len(meta.Footer.RowGroups),
		"rows":       meta.Footer.NumRows(),
		"chunks":     meta.Footer.NumChunks(),
		"stripes":    len(meta.Stripes),
	})
}

// QueryResponse is the JSON shape of a query reply.
type QueryResponse struct {
	Columns    []string       `json:"columns,omitempty"`
	Rows       [][]any        `json:"rows,omitempty"`
	Aggregates map[string]any `json:"aggregates,omitempty"`
	RowCount   int            `json:"row_count"`
	Stats      map[string]any `json:"stats"`
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil || len(body) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("request body must be a SELECT statement"))
		return
	}
	ctx, finish := h.traced(r, "http.query")
	defer finish()
	res, err := h.store.QueryContext(ctx, string(body))
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	resp := QueryResponse{
		Columns:  res.Columns,
		RowCount: res.Rows,
		Stats: map[string]any{
			"selectivity":       res.Stats.Selectivity,
			"traffic_bytes":     res.Stats.TrafficBytes,
			"filter_rpcs":       res.Stats.FilterRPCs,
			"project_rpcs":      res.Stats.ProjectRPCs,
			"aggregate_rpcs":    res.Stats.AggregateRPCs,
			"fetch_rpcs":        res.Stats.FetchRPCs,
			"pushdown_on":       res.Stats.PushdownOn,
			"pushdown_off":      res.Stats.PushdownOff,
			"pruned_row_groups": res.Stats.PrunedRowGroups,
			"wall_ns":           res.Stats.Wall.Nanoseconds(),
		},
	}
	if n := len(res.Data); n > 0 {
		rows := 0
		if res.Data[0].Len() > 0 {
			rows = res.Data[0].Len()
		}
		resp.Rows = make([][]any, rows)
		for i := 0; i < rows; i++ {
			row := make([]any, n)
			for c, col := range res.Data {
				switch col.Type {
				case lpq.Int64:
					row[c] = col.Ints[i]
				case lpq.Float64:
					row[c] = col.Floats[i]
				default:
					row[c] = col.Strings[i]
				}
			}
			resp.Rows[i] = row
		}
	}
	if len(res.AggValues) > 0 {
		resp.Aggregates = make(map[string]any, len(res.AggValues))
		for i, label := range res.AggLabels {
			v := res.AggValues[i]
			switch v.Kind {
			case sql.LitInt:
				resp.Aggregates[label] = v.I
			case sql.LitFloat:
				resp.Aggregates[label] = v.F
			default:
				resp.Aggregates[label] = v.S
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (h *Handler) scrub(w http.ResponseWriter, r *http.Request) {
	repair := r.URL.Query().Get("repair") == "1"
	ctx, finish := h.traced(r, "http.scrub "+r.PathValue("name"))
	defer finish()
	rep, err := h.store.ScrubContext(ctx, r.PathValue("name"), store.ScrubOptions{Repair: repair})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rep)
}

func (h *Handler) scrubAll(w http.ResponseWriter, r *http.Request) {
	repair := r.URL.Query().Get("repair") == "1"
	rep, err := h.store.ScrubAll(store.ScrubOptions{Repair: repair})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"objects": rep.Objects,
		"totals":  rep.Totals(),
		"reports": rep.Reports,
		"errors":  rep.Errors,
	})
}

func (h *Handler) repairNode(w http.ResponseWriter, r *http.Request) {
	node, err := strconv.Atoi(r.PathValue("node"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad node id: %w", err))
		return
	}
	n, err := h.store.RepairNodeAll(node)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"node": node, "repaired": n})
}

func (h *Handler) reconcile(w http.ResponseWriter, r *http.Request) {
	force := r.URL.Query().Get("force") == "1"
	rep, err := h.store.ReconcileOrphans(force)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rep)
}

// debugFusionz serves the observability snapshot: latency histograms by
// (op, node), per-node health counters, and the most recent request traces
// (span trees with read-amplification ratios). JSON by default;
// ?format=text renders the aligned tables and indented trees.
func (h *Handler) debugFusionz(w http.ResponseWriter, r *http.Request) {
	hist := h.store.Metrics()
	repair := h.store.RepairStats()
	cstats := h.store.CacheStats()
	sstats := h.store.SchedStats()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "== histograms ==\n")
		hist.WriteText(w)
		fmt.Fprintf(w, "\n== node health ==\n%s", h.store.Health())
		fmt.Fprintf(w, "\n== repair queue ==\ndepth %d  enqueued %d  processed %d  failed %d  dropped %d  stale %d\n",
			repair.QueueDepth, repair.Enqueued, repair.Processed, repair.Failed, repair.Dropped, repair.Stale)
		fmt.Fprintf(w, "\n== cache ==\n")
		fmt.Fprintf(w, "meta:  hits %d  misses %d  rate %.2f  entries %d\n",
			cstats.Meta.Hits, cstats.Meta.Misses, cstats.Meta.HitRate(), cstats.Meta.Entries)
		fmt.Fprintf(w, "block: hits %d  misses %d  rate %.2f\n",
			cstats.Block.Hits, cstats.Block.Misses, cstats.Block.HitRate())
		fmt.Fprintf(w, "chunk: hits %d  misses %d  rate %.2f\n",
			cstats.Chunk.Hits, cstats.Chunk.Misses, cstats.Chunk.HitRate())
		fmt.Fprintf(w, "data:  %d entries  %d bytes  fills %d  evictions %d  invalidations %d  rejected %d\n",
			cstats.DataEntries, cstats.DataBytes, cstats.Fills, cstats.Evictions, cstats.Invalidations, cstats.Rejected)
		fmt.Fprintf(w, "flight: leaders %d  dedups %d  decodes %d\n",
			cstats.FlightLeaders, cstats.FlightDedups, cstats.Decodes)
		if b := h.store.Breaker(); b != nil {
			fmt.Fprintf(w, "\n== circuit breakers ==\n")
			for node, state := range b.Snapshot() {
				fmt.Fprintf(w, "node %d: %s\n", node, state)
			}
		}
		if sstats.Slots > 0 {
			fmt.Fprintf(w, "\n== admission scheduler ==\n")
			fmt.Fprintf(w, "slots %d (scan %d, put %d)  queue-depth %d  running %d (scan %d, put %d)\n",
				sstats.Slots, sstats.ScanSlots, sstats.PutSlots, sstats.QueueDepth,
				sstats.Running, sstats.RunningScan, sstats.RunningPut)
			for _, t := range sstats.Tenants {
				fmt.Fprintf(w, "tenant %-12s w=%d  admitted %d  shed %d  queued %d  wait p50 %v p99 %v\n",
					t.Tenant, t.Weight, t.Admitted, t.Shed, t.Queued,
					t.QueueWait.P50, t.QueueWait.P99)
			}
		}
		fmt.Fprintf(w, "\n== recent traces (%d seen) ==\n", h.ring.Seen())
		for _, tree := range h.ring.Trees() {
			fmt.Fprintf(w, "%s\n", tree)
		}
		return
	}
	out := map[string]any{
		"histograms":  hist.Snapshot(),
		"health":      h.store.Health().Snapshot(),
		"repair":      repair,
		"cache":       cstats,
		"traces":      h.ring.Snapshot(),
		"traces_seen": h.ring.Seen(),
	}
	if b := h.store.Breaker(); b != nil {
		out["breakers"] = b.Snapshot()
	}
	if sstats.Slots > 0 {
		out["sched"] = sstats
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// statusFor maps store errors onto HTTP codes. A shed operation maps to 503
// (the client should back off and retry; the Overloaded error's RetryAfter
// is in the body) and an expired deadline to 504.
func statusFor(err error) int {
	if errors.Is(err, sched.ErrOverloaded) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "not found"):
		return http.StatusNotFound
	case strings.Contains(msg, "parse error"),
		strings.Contains(msg, "unknown column"),
		strings.Contains(msg, "beyond object"),
		strings.Contains(msg, "beyond the object"):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
