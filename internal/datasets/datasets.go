// Package datasets generates the three real-world datasets of the paper's
// evaluation (§6, Table 3) as seeded synthetic lpq objects, plus the Zipf
// chunk-size sampler behind the synthetic overhead sweep (Fig. 16a).
//
// Each generator reproduces the published shape of its dataset — column
// count, row-group count, type mix, and the compressibility profile the
// evaluation leans on — rather than the actual (unavailable) records:
//
//   - taxi: 20 columns, near-uniform chunk sizes (Fig. 4c), a
//     weakly-compressible timestamp column (ratio ≈1.6, Q3) and a highly
//     compressible fare column (ratio ≈150, Q4);
//   - recipeNLG: 7 columns dominated by free-text (title, ingredients,
//     directions), a strongly skewed chunk-size distribution;
//   - uk pp (UK property prices): 16 mixed columns of ids, prices, dates
//     and low-cardinality address fields.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/fusionstore/fusion/internal/lpq"
)

// Config scales a generated dataset.
type Config struct {
	RowGroups    int
	RowsPerGroup int
	Seed         int64
	Writer       lpq.WriterOptions
}

func (c Config) writerOpts() lpq.WriterOptions {
	if c.Writer.DictMaxFraction == 0 && !c.Writer.Compress && !c.Writer.DisableDict {
		return lpq.DefaultWriterOptions()
	}
	return c.Writer
}

// TaxiConfig is the laptop-scale default preserving the paper's structure:
// 16 row groups, 20 columns, 320 column chunks (Table 3).
func TaxiConfig() Config { return Config{RowGroups: 16, RowsPerGroup: 40000, Seed: 11} }

// RecipeConfig: 12 row groups × 7 columns = 84 chunks (Table 3). The row
// count keeps the file ≈1/10 the size of the lineitem file, matching the
// paper's 0.98GB-vs-10GB ratio, which the padding-overhead experiments
// (Figs. 4d, 16b) are sensitive to.
func RecipeConfig() Config { return Config{RowGroups: 12, RowsPerGroup: 500, Seed: 12} }

// UKPPConfig: 15 row groups × 16 columns = 240 chunks (Table 3); sized to
// ≈1.5/10 of the lineitem file as in the paper.
func UKPPConfig() Config { return Config{RowGroups: 15, RowsPerGroup: 4000, Seed: 13} }

// TaxiSeconds is the span of pickup timestamps in seconds (2015-2017).
const TaxiSeconds = 3 * 365 * 24 * 3600

// TaxiSchema returns the 20-column NYC yellow taxi schema.
func TaxiSchema() []lpq.Column {
	return []lpq.Column{
		{Name: "vendor_id", Type: lpq.Int64},
		{Name: "pickup_datetime", Type: lpq.Int64},
		{Name: "dropoff_datetime", Type: lpq.Int64},
		{Name: "passenger_count", Type: lpq.Int64},
		{Name: "trip_distance", Type: lpq.Float64},
		{Name: "pickup_longitude", Type: lpq.Float64},
		{Name: "pickup_latitude", Type: lpq.Float64},
		{Name: "rate_code", Type: lpq.Int64},
		{Name: "store_and_fwd", Type: lpq.String},
		{Name: "dropoff_longitude", Type: lpq.Float64},
		{Name: "dropoff_latitude", Type: lpq.Float64},
		{Name: "payment_type", Type: lpq.Int64},
		{Name: "fare_amount", Type: lpq.Float64},
		{Name: "extra", Type: lpq.Float64},
		{Name: "mta_tax", Type: lpq.Float64},
		{Name: "tip_amount", Type: lpq.Float64},
		{Name: "tolls_amount", Type: lpq.Float64},
		{Name: "improvement_surcharge", Type: lpq.Float64},
		{Name: "total_amount", Type: lpq.Float64},
		{Name: "trip_duration", Type: lpq.Int64},
	}
}

// Taxi generates the NYC yellow taxi dataset.
func Taxi(cfg Config) ([]byte, error) {
	w := lpq.NewWriter(TaxiSchema(), cfg.writerOpts())
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.RowsPerGroup
	rows := cfg.RowGroups * n
	if rows == 0 {
		return nil, fmt.Errorf("datasets: empty taxi config")
	}
	ts := int64(0)
	step := int64(TaxiSeconds) / int64(rows)
	if step < 1 {
		step = 1
	}
	for g := 0; g < cfg.RowGroups; g++ {
		vendor := make([]int64, n)
		pickup := make([]int64, n)
		dropoff := make([]int64, n)
		pax := make([]int64, n)
		dist := make([]float64, n)
		plon := make([]float64, n)
		plat := make([]float64, n)
		rate := make([]int64, n)
		fwd := make([]string, n)
		dlon := make([]float64, n)
		dlat := make([]float64, n)
		pay := make([]int64, n)
		fare := make([]float64, n)
		extra := make([]float64, n)
		mta := make([]float64, n)
		tip := make([]float64, n)
		tolls := make([]float64, n)
		surcharge := make([]float64, n)
		total := make([]float64, n)
		dur := make([]int64, n)
		for i := 0; i < n; i++ {
			vendor[i] = 1 + rng.Int63n(2)
			// Timestamps advance with second-level noise: high cardinality,
			// weakly compressible (ratio ≈1.6), the Q3 column.
			pickup[i] = ts + rng.Int63n(2*step+1)
			ts += step
			durSec := 120 + rng.Int63n(3600)
			dropoff[i] = pickup[i] + durSec
			dur[i] = durSec
			pax[i] = 1 + rng.Int63n(6)
			dist[i] = float64(rng.Intn(3000)) / 100
			plon[i] = -74.02 + float64(rng.Intn(2000))/10000
			plat[i] = 40.60 + float64(rng.Intn(2000))/10000
			rate[i] = 1 + rng.Int63n(6)
			if rng.Intn(100) == 0 {
				fwd[i] = "Y"
			} else {
				fwd[i] = "N"
			}
			dlon[i] = -74.02 + float64(rng.Intn(2000))/10000
			dlat[i] = 40.60 + float64(rng.Intn(2000))/10000
			pay[i] = 1 + rng.Int63n(4)
			// Fares cluster on a handful of metered price points, so
			// dictionary encoding crushes them. The paper reports ratio
			// ≈152 on the real file; this generator reaches ≈20, which
			// preserves what the evaluation depends on: the Q4 cost-model
			// product selectivity × compressibility stays well above 1.
			fare[i] = fareValues[rng.Intn(len(fareValues))]
			extra[i] = []float64{0, 0.5, 1}[rng.Intn(3)]
			mta[i] = 0.5
			tip[i] = math.Round(fare[i]*[]float64{0, 0.1, 0.15, 0.2}[rng.Intn(4)]*2) / 2
			tolls[i] = []float64{0, 0, 0, 5.54}[rng.Intn(4)]
			surcharge[i] = 0.3
			total[i] = fare[i] + extra[i] + mta[i] + tip[i] + tolls[i] + surcharge[i]
		}
		cols := []lpq.ColumnData{
			lpq.IntColumn(vendor), lpq.IntColumn(pickup), lpq.IntColumn(dropoff),
			lpq.IntColumn(pax), lpq.FloatColumn(dist), lpq.FloatColumn(plon),
			lpq.FloatColumn(plat), lpq.IntColumn(rate), lpq.StringColumn(fwd),
			lpq.FloatColumn(dlon), lpq.FloatColumn(dlat), lpq.IntColumn(pay),
			lpq.FloatColumn(fare), lpq.FloatColumn(extra), lpq.FloatColumn(mta),
			lpq.FloatColumn(tip), lpq.FloatColumn(tolls), lpq.FloatColumn(surcharge),
			lpq.FloatColumn(total), lpq.IntColumn(dur),
		}
		if err := w.WriteRowGroup(cols); err != nil {
			return nil, err
		}
	}
	return w.Finish()
}

// TaxiQ3 is Table 4's Q3 ("how many rides took place every day in 2015"):
// one filter on the weakly-compressible timestamp column at ≈37.5%
// selectivity, projecting the timestamps.
func TaxiQ3() string {
	cutoff := int64(0.375 * TaxiSeconds)
	return fmt.Sprintf("SELECT pickup_datetime FROM taxi WHERE pickup_datetime < %d", cutoff)
}

// TaxiQ4 is Table 4's Q4 ("average fare amount in January 2015"): ≈6.3%
// selectivity, projecting the timestamp column and aggregating the highly
// compressible fare column (whose projection pushdown the cost model
// disables, §6.2).
func TaxiQ4() string {
	cutoff := int64(0.063 * TaxiSeconds)
	return fmt.Sprintf("SELECT pickup_datetime, AVG(fare_amount), fare_amount FROM taxi WHERE pickup_datetime < %d", cutoff)
}

// RecipeSchema returns the 7-column recipeNLG schema.
func RecipeSchema() []lpq.Column {
	return []lpq.Column{
		{Name: "id", Type: lpq.Int64},
		{Name: "title", Type: lpq.String},
		{Name: "ingredients", Type: lpq.String},
		{Name: "directions", Type: lpq.String},
		{Name: "link", Type: lpq.String},
		{Name: "source", Type: lpq.String},
		{Name: "ner", Type: lpq.String},
	}
}

var recipeWords = []string{
	"flour", "sugar", "butter", "salt", "pepper", "onion", "garlic", "stir",
	"whisk", "bake", "simmer", "chop", "dice", "mince", "saute", "boil",
	"oven", "degrees", "minutes", "until", "golden", "brown", "tender",
	"combine", "mixture", "bowl", "pan", "skillet", "heat", "medium",
	"cream", "cheese", "chicken", "beef", "tomato", "basil", "oregano",
}

func randText(rng *rand.Rand, minWords, maxWords int) string {
	n := minWords + rng.Intn(maxWords-minWords+1)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += recipeWords[rng.Intn(len(recipeWords))]
	}
	return out
}

// RecipeNLG generates the recipeNLG dataset: text-dominated columns with a
// strongly skewed chunk-size distribution (Fig. 4c) — directions and
// ingredients dwarf the id and source columns.
func RecipeNLG(cfg Config) ([]byte, error) {
	w := lpq.NewWriter(RecipeSchema(), cfg.writerOpts())
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.RowsPerGroup
	id := int64(0)
	for g := 0; g < cfg.RowGroups; g++ {
		ids := make([]int64, n)
		title := make([]string, n)
		ingredients := make([]string, n)
		directions := make([]string, n)
		link := make([]string, n)
		source := make([]string, n)
		ner := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = id
			id++
			title[i] = randText(rng, 2, 6)
			ingredients[i] = randText(rng, 20, 60)
			directions[i] = randText(rng, 50, 160)
			link[i] = fmt.Sprintf("www.recipes.example/%d/%x", id, rng.Int63())
			source[i] = []string{"Gathered", "Recipes1M"}[rng.Intn(2)]
			ner[i] = randText(rng, 4, 12)
		}
		cols := []lpq.ColumnData{
			lpq.IntColumn(ids), lpq.StringColumn(title), lpq.StringColumn(ingredients),
			lpq.StringColumn(directions), lpq.StringColumn(link),
			lpq.StringColumn(source), lpq.StringColumn(ner),
		}
		if err := w.WriteRowGroup(cols); err != nil {
			return nil, err
		}
	}
	return w.Finish()
}

// UKPPSchema returns the 16-column UK property prices schema.
func UKPPSchema() []lpq.Column {
	return []lpq.Column{
		{Name: "transaction_id", Type: lpq.String},
		{Name: "price", Type: lpq.Int64},
		{Name: "date", Type: lpq.Int64},
		{Name: "postcode", Type: lpq.String},
		{Name: "property_type", Type: lpq.String},
		{Name: "old_new", Type: lpq.String},
		{Name: "duration", Type: lpq.String},
		{Name: "paon", Type: lpq.Int64},
		{Name: "saon", Type: lpq.String},
		{Name: "street", Type: lpq.String},
		{Name: "locality", Type: lpq.String},
		{Name: "town", Type: lpq.String},
		{Name: "district", Type: lpq.String},
		{Name: "county", Type: lpq.String},
		{Name: "ppd_category", Type: lpq.String},
		{Name: "record_status", Type: lpq.String},
	}
}

// fareValues are the metered price points taxi fares cluster on.
var fareValues = []float64{4.5, 6, 7.5, 9.5, 12, 15.5, 22, 45}

var (
	streetNames = []string{"HIGH STREET", "STATION ROAD", "MAIN STREET", "CHURCH LANE",
		"VICTORIA ROAD", "GREEN LANE", "MANOR ROAD", "KINGS ROAD", "QUEENS AVENUE", "THE CRESCENT"}
	towns    = []string{"LONDON", "MANCHESTER", "BIRMINGHAM", "LEEDS", "BRISTOL", "YORK", "OXFORD", "CAMBRIDGE"}
	counties = []string{"GREATER LONDON", "GREATER MANCHESTER", "WEST MIDLANDS", "WEST YORKSHIRE", "AVON"}
)

// UKPP generates the UK property prices dataset: a mix of a
// near-incompressible transaction-id column, skewed integer prices, and
// low-cardinality address columns.
func UKPP(cfg Config) ([]byte, error) {
	w := lpq.NewWriter(UKPPSchema(), cfg.writerOpts())
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.RowsPerGroup
	for g := 0; g < cfg.RowGroups; g++ {
		txid := make([]string, n)
		price := make([]int64, n)
		date := make([]int64, n)
		postcode := make([]string, n)
		ptype := make([]string, n)
		oldnew := make([]string, n)
		duration := make([]string, n)
		paon := make([]int64, n)
		saon := make([]string, n)
		street := make([]string, n)
		locality := make([]string, n)
		town := make([]string, n)
		district := make([]string, n)
		county := make([]string, n)
		ppdcat := make([]string, n)
		status := make([]string, n)
		for i := 0; i < n; i++ {
			txid[i] = fmt.Sprintf("{%08X-%04X-%04X-%012X}", rng.Uint32(), rng.Intn(1<<16), rng.Intn(1<<16), rng.Int63n(1<<48))
			// Log-normal-ish price distribution.
			price[i] = int64(50000 * math.Exp(rng.NormFloat64()*0.7+0.5))
			date[i] = rng.Int63n(9000) // days since 1995
			postcode[i] = fmt.Sprintf("%s%d %d%s%s",
				[]string{"SW", "NW", "M", "LS", "BS", "YO", "OX", "CB"}[rng.Intn(8)],
				1+rng.Intn(20), 1+rng.Intn(9),
				string(rune('A'+rng.Intn(26))), string(rune('A'+rng.Intn(26))))
			ptype[i] = []string{"D", "S", "T", "F", "O"}[rng.Intn(5)]
			oldnew[i] = []string{"Y", "N"}[rng.Intn(2)]
			duration[i] = []string{"F", "L"}[rng.Intn(2)]
			paon[i] = 1 + rng.Int63n(300)
			if rng.Intn(10) == 0 {
				saon[i] = fmt.Sprintf("FLAT %d", 1+rng.Intn(40))
			}
			street[i] = streetNames[rng.Intn(len(streetNames))]
			locality[i] = ""
			town[i] = towns[rng.Intn(len(towns))]
			district[i] = towns[rng.Intn(len(towns))]
			county[i] = counties[rng.Intn(len(counties))]
			ppdcat[i] = []string{"A", "B"}[rng.Intn(2)]
			status[i] = "A"
		}
		cols := []lpq.ColumnData{
			lpq.StringColumn(txid), lpq.IntColumn(price), lpq.IntColumn(date),
			lpq.StringColumn(postcode), lpq.StringColumn(ptype), lpq.StringColumn(oldnew),
			lpq.StringColumn(duration), lpq.IntColumn(paon), lpq.StringColumn(saon),
			lpq.StringColumn(street), lpq.StringColumn(locality), lpq.StringColumn(town),
			lpq.StringColumn(district), lpq.StringColumn(county), lpq.StringColumn(ppdcat),
			lpq.StringColumn(status),
		}
		if err := w.WriteRowGroup(cols); err != nil {
			return nil, err
		}
	}
	return w.Finish()
}

// ZipfSizes samples n chunk sizes in [min, max] from a Zipf-like
// distribution with skew s (s = 0 is uniform) — the synthetic chunk-size
// generator of Fig. 16a.
func ZipfSizes(rng *rand.Rand, s float64, n int, minSize, maxSize uint64) []uint64 {
	out := make([]uint64, n)
	if s <= 0 {
		for i := range out {
			out[i] = minSize + uint64(rng.Int63n(int64(maxSize-minSize+1)))
		}
		return out
	}
	// Inverse-CDF sampling over a discretized power-law: rank r has weight
	// 1/r^s over the size range.
	const buckets = 1024
	weights := make([]float64, buckets)
	totalW := 0.0
	for r := 0; r < buckets; r++ {
		weights[r] = 1 / math.Pow(float64(r+1), s)
		totalW += weights[r]
	}
	span := float64(maxSize - minSize)
	for i := range out {
		u := rng.Float64() * totalW
		acc := 0.0
		r := 0
		for ; r < buckets-1; r++ {
			acc += weights[r]
			if acc >= u {
				break
			}
		}
		frac := float64(r) / float64(buckets-1)
		out[i] = minSize + uint64(frac*span)
	}
	return out
}
