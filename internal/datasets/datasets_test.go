package datasets

import (
	"math/rand"
	"testing"

	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/sql"
)

func openGen(t testing.TB, gen func(Config) ([]byte, error), cfg Config) *lpq.File {
	t.Helper()
	data, err := gen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lpq.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func smallTaxi() Config   { return Config{RowGroups: 4, RowsPerGroup: 10000, Seed: 11} }
func smallRecipe() Config { return Config{RowGroups: 3, RowsPerGroup: 2000, Seed: 12} }
func smallUKPP() Config   { return Config{RowGroups: 3, RowsPerGroup: 6000, Seed: 13} }

func TestTaxiShape(t *testing.T) {
	cfg := smallTaxi()
	f := openGen(t, Taxi, cfg)
	if len(f.Footer().Columns) != 20 {
		t.Fatalf("taxi must have 20 columns, got %d", len(f.Footer().Columns))
	}
	if f.Footer().NumChunks() != 20*cfg.RowGroups {
		t.Fatalf("chunks = %d", f.Footer().NumChunks())
	}
}

// TestTaxiCompressibilityProfile verifies the two properties §6.2 leans on:
// pickup timestamps are weakly compressible (≈1.6) and fares are extremely
// compressible (≈150).
func TestTaxiCompressibilityProfile(t *testing.T) {
	f := openGen(t, Taxi, smallTaxi())
	footer := f.Footer()
	dateIdx := footer.ColumnIndex("pickup_datetime")
	fareIdx := footer.ColumnIndex("fare_amount")
	if dateIdx < 0 || fareIdx < 0 {
		t.Fatal("columns missing")
	}
	dateRatio := footer.RowGroups[0].Chunks[dateIdx].Compressibility()
	fareRatio := footer.RowGroups[0].Chunks[fareIdx].Compressibility()
	if dateRatio > 3 {
		t.Fatalf("pickup_datetime compressibility %.1f, want ≈1.6", dateRatio)
	}
	// The paper reports ≈152 on the real file; what matters for Q4 is
	// that selectivity (6.3%) × compressibility stays well above 1.
	if fareRatio < 16 {
		t.Fatalf("fare_amount compressibility %.1f, want ≥16", fareRatio)
	}
}

// TestTaxiUniformChunks verifies Fig. 4c's contrast: taxi chunk sizes are
// far less skewed than recipeNLG's.
func TestTaxiUniformChunks(t *testing.T) {
	taxi := openGen(t, Taxi, smallTaxi())
	recipe := openGen(t, RecipeNLG, smallRecipe())
	skew := func(f *lpq.File) float64 {
		var sizes []float64
		for _, s := range f.Footer().ChunkSizes() {
			sizes = append(sizes, float64(s))
		}
		max := 0.0
		for _, s := range sizes {
			if s > max {
				max = s
			}
		}
		return max / metrics.Mean(sizes)
	}
	if skew(taxi) >= skew(recipe) {
		t.Fatalf("taxi (%.1f) must be less skewed than recipeNLG (%.1f)", skew(taxi), skew(recipe))
	}
}

func TestTaxiQueriesSelectivity(t *testing.T) {
	f := openGen(t, Taxi, smallTaxi())
	idx := f.Footer().ColumnIndex("pickup_datetime")
	col, err := f.ReadColumn(idx)
	if err != nil {
		t.Fatal(err)
	}
	check := func(qs string, target, tol float64) {
		q, err := sql.Parse(qs)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		var cutoff int64
		switch w := q.Where.(type) {
		case *sql.Compare:
			cutoff = w.Value.I
		default:
			t.Fatalf("unexpected WHERE shape in %q", qs)
		}
		matched := 0
		for _, v := range col.Ints {
			if v < cutoff {
				matched++
			}
		}
		got := float64(matched) / float64(len(col.Ints))
		if got < target-tol || got > target+tol {
			t.Errorf("%q: selectivity %.4f, want ≈%.3f", qs, got, target)
		}
	}
	check(TaxiQ3(), 0.375, 0.05)
	check(TaxiQ4(), 0.063, 0.02)
}

func TestRecipeShape(t *testing.T) {
	cfg := smallRecipe()
	f := openGen(t, RecipeNLG, cfg)
	if len(f.Footer().Columns) != 7 {
		t.Fatalf("recipeNLG must have 7 columns, got %d", len(f.Footer().Columns))
	}
	// directions must dominate id.
	footer := f.Footer()
	dir := footer.RowGroups[0].Chunks[footer.ColumnIndex("directions")].Size
	id := footer.RowGroups[0].Chunks[footer.ColumnIndex("id")].Size
	if dir < 20*id {
		t.Fatalf("directions (%d) must dwarf id (%d)", dir, id)
	}
}

func TestUKPPShape(t *testing.T) {
	cfg := smallUKPP()
	f := openGen(t, UKPP, cfg)
	if len(f.Footer().Columns) != 16 {
		t.Fatalf("uk pp must have 16 columns, got %d", len(f.Footer().Columns))
	}
	footer := f.Footer()
	// The transaction id is near-incompressible; record_status is constant.
	tx := footer.RowGroups[0].Chunks[footer.ColumnIndex("transaction_id")].Compressibility()
	st := footer.RowGroups[0].Chunks[footer.ColumnIndex("record_status")].Compressibility()
	if tx > 3 {
		t.Fatalf("transaction_id compressibility %.1f too high", tx)
	}
	if st < 50 {
		t.Fatalf("record_status compressibility %.1f too low", st)
	}
}

func TestDefaultConfigsMatchTable3(t *testing.T) {
	// Table 3: taxi 320 chunks, recipeNLG 84, uk pp 240.
	if got := TaxiConfig().RowGroups * 20; got != 320 {
		t.Fatalf("taxi chunks = %d, want 320", got)
	}
	if got := RecipeConfig().RowGroups * 7; got != 84 {
		t.Fatalf("recipeNLG chunks = %d, want 84", got)
	}
	if got := UKPPConfig().RowGroups * 16; got != 240 {
		t.Fatalf("uk pp chunks = %d, want 240", got)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, err := Taxi(smallTaxi())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Taxi(smallTaxi())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("same seed must give identical output")
	}
}

func TestZipfSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []float64{0, 0.5, 0.99} {
		sizes := ZipfSizes(rng, s, 1000, 1<<20, 100<<20)
		if len(sizes) != 1000 {
			t.Fatal("wrong count")
		}
		for _, sz := range sizes {
			if sz < 1<<20 || sz > 100<<20 {
				t.Fatalf("size %d out of range (skew %v)", sz, s)
			}
		}
	}
	// Higher skew concentrates mass at the small end.
	rng = rand.New(rand.NewSource(2))
	uniform := ZipfSizes(rng, 0, 5000, 1, 1000)
	skewed := ZipfSizes(rng, 0.99, 5000, 1, 1000)
	mean := func(v []uint64) float64 {
		t := 0.0
		for _, x := range v {
			t += float64(x)
		}
		return t / float64(len(v))
	}
	if mean(skewed) >= mean(uniform) {
		t.Fatalf("zipf 0.99 mean %v must be below uniform mean %v", mean(skewed), mean(uniform))
	}
}
