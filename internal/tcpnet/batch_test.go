package tcpnet

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"github.com/fusionstore/fusion/internal/rpc"
)

func sampleBatchRequest() *rpc.Request {
	return &rpc.Request{
		Kind: rpc.KindBatch,
		Subs: []rpc.Request{
			{Kind: rpc.KindGetBlock, BlockID: "b1", Offset: 8, Length: 32, CallerVerifies: true},
			{Kind: rpc.KindFilter, Chunk: rpc.ChunkRef{BlockID: "b2", Offset: 64}},
			{Kind: rpc.KindProject, Bitmap: []byte{1, 2, 3}},
		},
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	req := sampleBatchRequest()
	payload, err := appendBatchRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBatchRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	resp := &rpc.Response{
		Cost: rpc.Cost{DiskBytes: 96, ProcBytes: 128},
		Subs: []rpc.Response{
			{Data: []byte("abc"), Crc: 7, Cost: rpc.Cost{DiskBytes: 96}},
			{Err: "no such block"},
			{Matches: 41, Cost: rpc.Cost{ProcBytes: 128}},
		},
	}
	payload, err := appendBatchResponse(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBatchResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, resp)
	}
}

// TestBatchFrameOverWire drives a batch request end to end through the
// request/response frame writers and readers.
func TestBatchFrameOverWire(t *testing.T) {
	req := sampleBatchRequest()
	var wire bytes.Buffer
	if err := writeRequestFrame(&wire, req); err != nil {
		t.Fatal(err)
	}
	got, err := readRequestFrame(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("wire round trip mismatch")
	}

	resp := &rpc.Response{Subs: []rpc.Response{{Data: []byte("x")}, {Err: "nope"}}}
	wire.Reset()
	if err := writeResponseFrame(&wire, resp); err != nil {
		t.Fatal(err)
	}
	gotResp, err := readResponseFrame(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("response wire round trip mismatch")
	}
}

func TestBatchEncodeRejectsMalformed(t *testing.T) {
	if _, err := appendBatchRequest(nil, &rpc.Request{Kind: rpc.KindBatch}); err == nil {
		t.Fatal("empty batch encoded")
	}
	nested := &rpc.Request{Kind: rpc.KindBatch, Subs: []rpc.Request{{Kind: rpc.KindBatch}}}
	if _, err := appendBatchRequest(nil, nested); err == nil {
		t.Fatal("nested batch encoded")
	}
	mutation := &rpc.Request{Kind: rpc.KindBatch, Subs: []rpc.Request{{Kind: rpc.KindPutBlock}}}
	if _, err := appendBatchRequest(nil, mutation); err == nil {
		t.Fatal("mutating batch encoded")
	}
}

// TestBatchOverTCP sends a scatter-gather batch through a real Server/Client
// pair and checks the sub-responses come back index-aligned with per-op
// error isolation.
func TestBatchOverTCP(t *testing.T) {
	client, _ := startCluster(t, 1)
	if resp, err := client.Call(0, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: "b", Data: []byte("0123456789")}); err != nil || resp.Err != "" {
		t.Fatalf("put: %v %s", err, resp.Err)
	}
	resp, err := client.Call(0, &rpc.Request{
		Kind: rpc.KindBatch,
		Subs: []rpc.Request{
			{Kind: rpc.KindGetBlock, BlockID: "b", Offset: 2, Length: 3},
			{Kind: rpc.KindGetBlock, BlockID: "missing"},
			{Kind: rpc.KindGetBlock, BlockID: "b"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("batch outer error: %s", resp.Err)
	}
	if len(resp.Subs) != 3 {
		t.Fatalf("got %d sub-responses, want 3", len(resp.Subs))
	}
	if string(resp.Subs[0].Data) != "234" {
		t.Fatalf("sub 0: %q", resp.Subs[0].Data)
	}
	if resp.Subs[1].Err == "" {
		t.Fatal("sub 1: missing block must carry a sub-error")
	}
	if string(resp.Subs[2].Data) != "0123456789" {
		t.Fatalf("sub 2: %q", resp.Subs[2].Data)
	}
}

// TestBatchDecodeRejects drives the decoder's bounds checks with hand-built
// malformed payloads.
func TestBatchDecodeRejects(t *testing.T) {
	good, err := appendBatchRequest(nil, sampleBatchRequest())
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0xFF),
		"hugeChunk": binary.AppendUvarint(nil, 1<<40),
	}
	// A declared sub-count far beyond the remaining bytes.
	envOnly, _ := appendGob(nil, &rpc.Request{Kind: rpc.KindBatch})
	cases["countOverrun"] = append(binary.AppendUvarint(envOnly, 500), 0x01)

	for name, payload := range cases {
		if _, err := decodeBatchRequest(payload); err == nil {
			t.Errorf("%s: decode succeeded on malformed payload", name)
		}
		if _, err := decodeBatchResponse(payload); err == nil {
			t.Errorf("%s: response decode succeeded on malformed payload", name)
		}
	}
}

// TestBatchFrameCarriesDeadline: the envelope's relative deadline budget
// (rpc.Request.DeadlineMicros) must survive the explicit batch codec — it
// is what lets a remote node abandon a scan at a sub-op boundary — and
// per-sub budgets must round-trip too.
func TestBatchFrameCarriesDeadline(t *testing.T) {
	req := sampleBatchRequest()
	req.DeadlineMicros = 250_000
	req.Subs[1].DeadlineMicros = 10_000
	payload, err := appendBatchRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBatchRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.DeadlineMicros != 250_000 {
		t.Fatalf("envelope DeadlineMicros = %d, want 250000", got.DeadlineMicros)
	}
	if got.Subs[1].DeadlineMicros != 10_000 {
		t.Fatalf("sub DeadlineMicros = %d, want 10000", got.Subs[1].DeadlineMicros)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
}
