package tcpnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"github.com/fusionstore/fusion/internal/bufpool"
	"github.com/fusionstore/fusion/internal/rpc"
)

// Frame-type discriminators (first payload byte of every frame). A plain
// frame is [uint32 length][frameGob][gob message]. A batch frame is
//
//	[uint32 length][frameBatch]
//	[uvarint envLen][gob envelope]     // the outer message, Subs stripped
//	[uvarint count]                    // 1..rpc.MaxBatchOps
//	count × [uvarint subLen][gob sub]  // the sub-messages, in order
//
// The batch codec is explicit rather than one nested gob message so every
// count and length is bounds-checked against the bytes actually present
// before anything is allocated: a malicious frame cannot declare a million
// sub-requests backed by ten bytes, and a truncated frame fails with an
// error instead of a panic or an over-allocation. FuzzBatchFrame drives
// exactly this property.
const (
	frameGob   = 0x00 // single gob message
	frameBatch = 0x01 // batch envelope + sub-messages
)

// errBatchFrame wraps every batch-decode failure.
func errBatchFrame(format string, args ...any) error {
	return fmt.Errorf("tcpnet: batch frame: "+format, args...)
}

// appendGob appends v's gob encoding to buf, prefixed with its uvarint
// length.
func appendGob(buf []byte, v any) ([]byte, error) {
	var tmp bytes.Buffer
	if err := gob.NewEncoder(&tmp).Encode(v); err != nil {
		return buf, err
	}
	buf = binary.AppendUvarint(buf, uint64(tmp.Len()))
	return append(buf, tmp.Bytes()...), nil
}

// nextChunk splits one uvarint-length-prefixed chunk off payload, bounds-
// checking the declared length against the bytes present.
func nextChunk(payload []byte) (chunk, rest []byte, err error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, nil, errBatchFrame("bad length prefix")
	}
	payload = payload[used:]
	if n > uint64(len(payload)) {
		return nil, nil, errBatchFrame("chunk of %d bytes exceeds %d remaining", n, len(payload))
	}
	return payload[:n], payload[n:], nil
}

// decodeGob decodes one gob message from b into v, rejecting trailing junk.
func decodeGob(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// appendBatchRequest appends a batch request's frame payload (after the
// frameBatch byte) to buf.
func appendBatchRequest(buf []byte, req *rpc.Request) ([]byte, error) {
	if msg := rpc.ValidateBatch(req); msg != "" {
		return buf, errBatchFrame("encode: %s", msg)
	}
	env := *req
	env.Subs = nil
	buf, err := appendGob(buf, &env)
	if err != nil {
		return buf, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(req.Subs)))
	for i := range req.Subs {
		if buf, err = appendGob(buf, &req.Subs[i]); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// decodeBatchRequest rebuilds a batch request from a frame payload (the
// bytes after the frameBatch discriminator).
func decodeBatchRequest(payload []byte) (*rpc.Request, error) {
	envBytes, payload, err := nextChunk(payload)
	if err != nil {
		return nil, err
	}
	req := &rpc.Request{}
	if err := decodeGob(envBytes, req); err != nil {
		return nil, errBatchFrame("envelope: %v", err)
	}
	if req.Kind != rpc.KindBatch || req.Subs != nil {
		return nil, errBatchFrame("envelope is not a bare batch request")
	}
	count, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, errBatchFrame("bad sub-request count")
	}
	payload = payload[used:]
	// Each sub-message costs at least one length byte on the wire, so the
	// count can never exceed the bytes present — checked before allocating.
	if count == 0 || count > rpc.MaxBatchOps || count > uint64(len(payload)) {
		return nil, errBatchFrame("implausible sub-request count %d (%d bytes remain)", count, len(payload))
	}
	req.Subs = make([]rpc.Request, count)
	for i := range req.Subs {
		var subBytes []byte
		if subBytes, payload, err = nextChunk(payload); err != nil {
			return nil, err
		}
		if err := decodeGob(subBytes, &req.Subs[i]); err != nil {
			return nil, errBatchFrame("sub-request %d: %v", i, err)
		}
	}
	if len(payload) != 0 {
		return nil, errBatchFrame("%d trailing bytes", len(payload))
	}
	if msg := rpc.ValidateBatch(req); msg != "" {
		return nil, errBatchFrame("%s", msg)
	}
	return req, nil
}

// appendBatchResponse appends a batch response's frame payload to buf.
func appendBatchResponse(buf []byte, resp *rpc.Response) ([]byte, error) {
	if len(resp.Subs) == 0 || len(resp.Subs) > rpc.MaxBatchOps {
		return buf, errBatchFrame("encode: %d sub-responses", len(resp.Subs))
	}
	env := *resp
	env.Subs = nil
	buf, err := appendGob(buf, &env)
	if err != nil {
		return buf, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(resp.Subs)))
	for i := range resp.Subs {
		if buf, err = appendGob(buf, &resp.Subs[i]); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// decodeBatchResponse rebuilds a batch response from a frame payload.
func decodeBatchResponse(payload []byte) (*rpc.Response, error) {
	envBytes, payload, err := nextChunk(payload)
	if err != nil {
		return nil, err
	}
	resp := &rpc.Response{}
	if err := decodeGob(envBytes, resp); err != nil {
		return nil, errBatchFrame("envelope: %v", err)
	}
	if resp.Subs != nil {
		return nil, errBatchFrame("envelope is not a bare batch response")
	}
	count, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, errBatchFrame("bad sub-response count")
	}
	payload = payload[used:]
	if count == 0 || count > rpc.MaxBatchOps || count > uint64(len(payload)) {
		return nil, errBatchFrame("implausible sub-response count %d (%d bytes remain)", count, len(payload))
	}
	resp.Subs = make([]rpc.Response, count)
	for i := range resp.Subs {
		var subBytes []byte
		if subBytes, payload, err = nextChunk(payload); err != nil {
			return nil, err
		}
		if err := decodeGob(subBytes, &resp.Subs[i]); err != nil {
			return nil, errBatchFrame("sub-response %d: %v", i, err)
		}
	}
	if len(payload) != 0 {
		return nil, errBatchFrame("%d trailing bytes", len(payload))
	}
	return resp, nil
}

// bufWriter adapts a pooled byte slice to io.Writer for gob encoding.
type bufWriter struct{ b []byte }

func (w *bufWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// release returns the writer's buffer to the arena.
func (w *bufWriter) release() {
	bufpool.Put(w.b)
	w.b = nil
}
