package tcpnet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/fusionstore/fusion/internal/rpc"
)

// FuzzBatchFrame throws arbitrary bytes at both batch-frame decoders. The
// invariants: never panic, never allocate proportionally to a declared count
// that the payload cannot back, and round-trip anything that decodes
// successfully. Seeds cover valid frames, truncations, and corrupted counts.
func FuzzBatchFrame(f *testing.F) {
	goodReq, err := appendBatchRequest(nil, sampleBatchRequest())
	if err != nil {
		f.Fatal(err)
	}
	goodResp, err := appendBatchResponse(nil, &rpc.Response{
		Subs: []rpc.Response{{Data: []byte("payload")}, {Err: "gone"}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(goodReq)
	f.Add(goodResp)
	f.Add(goodReq[:len(goodReq)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00})
	// Envelope followed by an absurd declared count.
	envOnly, _ := appendGob(nil, &rpc.Request{Kind: rpc.KindBatch})
	f.Add(append(binary.AppendUvarint(envOnly, 1<<40), 1))
	// Maximal uvarint length prefix.
	f.Add(binary.AppendUvarint(nil, 1<<62))

	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := decodeBatchRequest(payload); err == nil {
			re, err := appendBatchRequest(nil, req)
			if err != nil {
				t.Fatalf("re-encode of decoded request failed: %v", err)
			}
			re2, err := decodeBatchRequest(re)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if re3, _ := appendBatchRequest(nil, re2); !bytes.Equal(re, re3) {
				t.Fatal("request round trip not stable")
			}
		}
		if resp, err := decodeBatchResponse(payload); err == nil {
			re, err := appendBatchResponse(nil, resp)
			if err != nil {
				t.Fatalf("re-encode of decoded response failed: %v", err)
			}
			re2, err := decodeBatchResponse(re)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if re3, _ := appendBatchResponse(nil, re2); !bytes.Equal(re, re3) {
				t.Fatal("response round trip not stable")
			}
		}
	})
}
