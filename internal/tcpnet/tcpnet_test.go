package tcpnet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/rpc"
	"github.com/fusionstore/fusion/internal/store"
)

// startCluster brings up n real TCP storage nodes and a client.
func startCluster(t *testing.T, n int) (*Client, []*Server) {
	t.Helper()
	var servers []*Server
	var addrs []string
	for i := 0; i < n; i++ {
		srv, err := NewServer(cluster.NewNode(i, cluster.NewMemStore()), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	client := NewClient(addrs)
	t.Cleanup(func() {
		client.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return client, servers
}

func TestBasicRoundTrip(t *testing.T) {
	client, _ := startCluster(t, 2)
	resp, err := client.Call(0, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: "b", Data: []byte("payload")})
	if err != nil || resp.Err != "" {
		t.Fatalf("put: %v %s", err, resp.Err)
	}
	resp, err = client.Call(0, &rpc.Request{Kind: rpc.KindGetBlock, BlockID: "b", Offset: 3, Length: 4})
	if err != nil || string(resp.Data) != "load" {
		t.Fatalf("get: %v %q", err, resp.Data)
	}
	// Application errors travel as Response.Err, not transport errors.
	resp, err = client.Call(1, &rpc.Request{Kind: rpc.KindGetBlock, BlockID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("node 1 must not have the block")
	}
}

func TestNodeDown(t *testing.T) {
	client, servers := startCluster(t, 2)
	servers[1].Close()
	_, err := client.Call(1, &rpc.Request{Kind: rpc.KindPing})
	if !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("want ErrNodeDown, got %v", err)
	}
	// Node 0 must still work.
	if _, err := client.Call(0, &rpc.Request{Kind: rpc.KindPing}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	client, _ := startCluster(t, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := i % 3
			id := fmt.Sprintf("blk-%d", i)
			payload := bytes.Repeat([]byte{byte(i)}, 1000+i)
			if resp, err := client.Call(node, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: id, Data: payload}); err != nil || resp.Err != "" {
				errs <- fmt.Errorf("put %d: %v %s", i, err, resp.Err)
				return
			}
			resp, err := client.Call(node, &rpc.Request{Kind: rpc.KindGetBlock, BlockID: id})
			if err != nil || !bytes.Equal(resp.Data, payload) {
				errs <- fmt.Errorf("get %d mismatch: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLargePayload(t *testing.T) {
	client, _ := startCluster(t, 1)
	big := make([]byte, 8<<20)
	rand.New(rand.NewSource(1)).Read(big)
	if resp, err := client.Call(0, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: "big", Data: big}); err != nil || resp.Err != "" {
		t.Fatalf("put: %v", err)
	}
	resp, err := client.Call(0, &rpc.Request{Kind: rpc.KindGetBlock, BlockID: "big"})
	if err != nil || !bytes.Equal(resp.Data, big) {
		t.Fatalf("get mismatch: %v", err)
	}
}

// TestEndToEndStoreOverTCP runs the full Fusion store over real sockets:
// put an object, query it, read it back, and survive a node failure.
func TestEndToEndStoreOverTCP(t *testing.T) {
	client, servers := startCluster(t, 9)
	opts := store.FusionOptions()
	opts.StorageBudget = 0.5 // small test object
	s, err := store.New(client, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Build a small object.
	schema := []lpq.Column{{Name: "k", Type: lpq.Int64}, {Name: "name", Type: lpq.String}}
	var ks []int64
	var names []string
	for i := 0; i < 3000; i++ {
		ks = append(ks, int64(i))
		names = append(names, fmt.Sprintf("user-%d", i%100))
	}
	w := lpq.NewWriter(schema, lpq.DefaultWriterOptions())
	if err := w.WriteRowGroup([]lpq.ColumnData{lpq.IntColumn(ks[:1500]), lpq.StringColumn(names[:1500])}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRowGroup([]lpq.ColumnData{lpq.IntColumn(ks[1500:]), lpq.StringColumn(names[1500:])}); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("users", data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT k FROM users WHERE name = 'user-42'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 30 {
		t.Fatalf("rows = %d, want 30", res.Rows)
	}
	got, err := s.Get("users", 0, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get: %v", err)
	}
	// Kill one node: degraded query and read must still work.
	servers[4].Close()
	res, err = s.Query("SELECT k FROM users WHERE name = 'user-42'")
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if res.Rows != 30 {
		t.Fatalf("degraded rows = %d", res.Rows)
	}
	got, err = s.Get("users", 100, 5000)
	if err != nil || !bytes.Equal(got, data[100:5100]) {
		t.Fatalf("degraded Get: %v", err)
	}
}

// TestStaleConnReDial is the regression test for re-dialing a stale pooled
// connection: the server is killed and restarted on the same address between
// two calls, so the pooled connection is dead at the second call, which must
// succeed transparently on a single re-dial.
func TestStaleConnReDial(t *testing.T) {
	node := cluster.NewNode(0, cluster.NewMemStore())
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := NewClient([]string{addr})
	defer client.Close()
	if resp, err := client.Call(0, &rpc.Request{Kind: rpc.KindPutBlock, BlockID: "b", Data: []byte("stays")}); err != nil || resp.Err != "" {
		t.Fatalf("put: %v", err)
	}
	// Restart on the same port; the client's pooled connection is now stale.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(node, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := client.Call(0, &rpc.Request{Kind: rpc.KindGetBlock, BlockID: "b"})
	if err != nil {
		t.Fatalf("call after restart must re-dial transparently: %v", err)
	}
	if string(resp.Data) != "stays" {
		t.Fatalf("got %q after restart", resp.Data)
	}
}

// TestStaleConnServerStaysDown is the companion: if the re-dial also fails
// (the server never came back), the call must surface ErrNodeDown rather
// than loop.
func TestStaleConnServerStaysDown(t *testing.T) {
	srv, err := NewServer(cluster.NewNode(0, cluster.NewMemStore()), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient([]string{srv.Addr()})
	defer client.Close()
	if _, err := client.Call(0, &rpc.Request{Kind: rpc.KindPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := client.Call(0, &rpc.Request{Kind: rpc.KindPing}); !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("want ErrNodeDown after failed re-dial, got %v", err)
	}
}

// TestIOTimeoutSurfacesNodeDown verifies the per-frame deadline: a peer that
// accepts connections but never answers must fail the call within the IO
// timeout instead of blocking forever.
func TestIOTimeoutSurfacesNodeDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { // accept and hold connections without ever responding
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	client := NewClient([]string{ln.Addr().String()})
	defer client.Close()
	client.SetIOTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err = client.Call(0, &rpc.Request{Kind: rpc.KindPing})
	if !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("want ErrNodeDown on deadline, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline call took %v, want ~50ms", d)
	}
}
