// Package tcpnet is the real-socket transport: a storage-node server that
// speaks length-prefixed gob over TCP, and a client implementing
// cluster.Client against a set of node addresses. The fusion-server and
// fusion-cli binaries and the integration tests run on this transport; the
// benchmark harness uses simnet.
package tcpnet

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/fusionstore/fusion/internal/bufpool"
	"github.com/fusionstore/fusion/internal/cluster"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/rpc"
)

// maxFrame bounds a single message to guard against corrupt peers.
const maxFrame = 1 << 31

// writePayload sends one frame: the pooled payload (frame-type byte plus
// body) behind a uint32 length prefix. It returns the payload to the arena.
func writePayload(w io.Writer, payload []byte) error {
	defer bufpool.Put(payload)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrame sends one gob-encoded value as a frameGob frame.
func writeFrame(w io.Writer, v any) error {
	bw := &bufWriter{b: append(bufpool.Get(1<<12), frameGob)}
	if err := gob.NewEncoder(bw).Encode(v); err != nil {
		bw.release()
		return err
	}
	return writePayload(w, bw.b)
}

// readPayload receives one length-prefixed frame payload into a pooled
// buffer. The caller must return it with bufpool.Put (gob decoding copies
// every byte field, so nothing decoded from it aliases the buffer).
func readPayload(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	if n == 0 {
		return nil, fmt.Errorf("tcpnet: empty frame")
	}
	buf := bufpool.GetLen(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// writeRequestFrame sends a request, choosing the batch framing for
// scatter-gather requests.
func writeRequestFrame(w io.Writer, req *rpc.Request) error {
	if req.Kind != rpc.KindBatch {
		return writeFrame(w, req)
	}
	payload, err := appendBatchRequest(append(bufpool.Get(1<<12), frameBatch), req)
	if err != nil {
		bufpool.Put(payload)
		return err
	}
	return writePayload(w, payload)
}

// readRequestFrame receives one request frame of either framing.
func readRequestFrame(r io.Reader) (*rpc.Request, error) {
	payload, err := readPayload(r)
	if err != nil {
		return nil, err
	}
	defer bufpool.Put(payload)
	switch payload[0] {
	case frameGob:
		req := &rpc.Request{}
		if err := decodeGob(payload[1:], req); err != nil {
			return nil, err
		}
		return req, nil
	case frameBatch:
		return decodeBatchRequest(payload[1:])
	default:
		return nil, fmt.Errorf("tcpnet: unknown frame type %#02x", payload[0])
	}
}

// writeResponseFrame sends a response, choosing the batch framing when
// sub-responses are present.
func writeResponseFrame(w io.Writer, resp *rpc.Response) error {
	if len(resp.Subs) == 0 {
		return writeFrame(w, resp)
	}
	payload, err := appendBatchResponse(append(bufpool.Get(1<<12), frameBatch), resp)
	if err != nil {
		bufpool.Put(payload)
		return err
	}
	return writePayload(w, payload)
}

// readResponseFrame receives one response frame of either framing.
func readResponseFrame(r io.Reader) (*rpc.Response, error) {
	payload, err := readPayload(r)
	if err != nil {
		return nil, err
	}
	defer bufpool.Put(payload)
	switch payload[0] {
	case frameGob:
		resp := &rpc.Response{}
		if err := decodeGob(payload[1:], resp); err != nil {
			return nil, err
		}
		return resp, nil
	case frameBatch:
		return decodeBatchResponse(payload[1:])
	default:
		return nil, fmt.Errorf("tcpnet: unknown frame type %#02x", payload[0])
	}
}

// Server wraps a storage node and serves its RPC interface on a listener.
type Server struct {
	node *cluster.Node
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer starts serving the node on addr (e.g. "127.0.0.1:0") and
// returns immediately; Serve runs in the background.
func NewServer(node *cluster.Node, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	s := &Server{node: node, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := readRequestFrame(conn)
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		resp := s.node.Handle(req)
		if err := writeResponseFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the server and severs open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client implements cluster.Client over TCP connections to node addresses.
// Connections are cached per node; a failed exchange on a pooled connection
// (e.g. the server restarted since the last call) re-dials once and retries
// transparently — safe because every node RPC is idempotent.
type Client struct {
	addrs     []string
	ioTimeout time.Duration
	hist      *metrics.HistogramSet

	mu    sync.Mutex
	conns []net.Conn
	locks []sync.Mutex // per-connection, serializes request/response pairs
}

// NewClient returns a client for the given node addresses (node i is
// addrs[i]).
func NewClient(addrs []string) *Client {
	return &Client{
		addrs: append([]string(nil), addrs...),
		conns: make([]net.Conn, len(addrs)),
		locks: make([]sync.Mutex, len(addrs)),
	}
}

// SetIOTimeout installs a per-frame read/write deadline on every connection
// (0 disables, the default). It bounds how long a Call can block on a hung
// or partitioned peer; the deadline error surfaces as cluster.ErrNodeDown.
func (c *Client) SetIOTimeout(d time.Duration) {
	c.mu.Lock()
	c.ioTimeout = d
	c.mu.Unlock()
}

// SetMetrics installs per-frame wire timing: every request/response pair
// records its serialize+write and wait+read+decode legs under
// Key{Op: "net.write"/"net.read", Node: node}. The read leg includes the
// server's processing time — comparing it against the node-side
// "node.<kind>" histograms isolates pure network cost. Nil (the default)
// disables timing.
func (c *Client) SetMetrics(h *metrics.HistogramSet) {
	c.mu.Lock()
	c.hist = h
	c.mu.Unlock()
}

// NumNodes implements cluster.Client.
func (c *Client) NumNodes() int { return len(c.addrs) }

// conn returns the pooled connection for node, dialing if absent. The
// second result reports whether the connection was freshly dialed (and so
// has never carried a request).
func (c *Client) conn(node int) (net.Conn, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns[node] != nil {
		return c.conns[node], false, nil
	}
	conn, err := net.Dial("tcp", c.addrs[node])
	if err != nil {
		return nil, false, fmt.Errorf("%w: %d: %v", cluster.ErrNodeDown, node, err)
	}
	c.conns[node] = conn
	return conn, true, nil
}

func (c *Client) dropConn(node int) {
	c.mu.Lock()
	if c.conns[node] != nil {
		c.conns[node].Close()
		c.conns[node] = nil
	}
	c.mu.Unlock()
}

// exchange performs one request/response pair on conn, applying the
// per-frame IO deadline when configured and recording per-frame timings
// when a histogram set is installed.
func (c *Client) exchange(conn net.Conn, node int, req *rpc.Request) (*rpc.Response, error) {
	c.mu.Lock()
	timeout := c.ioTimeout
	hist := c.hist
	c.mu.Unlock()
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	start := time.Time{}
	if hist != nil {
		start = time.Now()
	}
	if err := writeRequestFrame(conn, req); err != nil {
		return nil, err
	}
	if hist != nil {
		now := time.Now()
		hist.Observe(metrics.Key{Op: "net.write", Node: node}, now.Sub(start))
		start = now
	}
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	resp, err := readResponseFrame(conn)
	if err != nil {
		return nil, err
	}
	if hist != nil {
		hist.Observe(metrics.Key{Op: "net.read", Node: node}, time.Since(start))
	}
	return resp, nil
}

// Call implements cluster.Client. One in-flight request per node connection;
// parallelism across nodes is what the query stages need. A pooled
// connection that fails mid-exchange is closed and the call retried once on
// a fresh dial, so a server restart between calls is invisible to callers;
// a failure on a freshly-dialed connection is returned as ErrNodeDown.
func (c *Client) Call(node int, req *rpc.Request) (*rpc.Response, error) {
	if node < 0 || node >= len(c.addrs) {
		return nil, fmt.Errorf("tcpnet: node %d out of range", node)
	}
	c.locks[node].Lock()
	defer c.locks[node].Unlock()
	for {
		conn, fresh, err := c.conn(node)
		if err != nil {
			return nil, err
		}
		resp, err := c.exchange(conn, node, req)
		if err == nil {
			return resp, nil
		}
		c.dropConn(node)
		if fresh {
			return nil, fmt.Errorf("%w: %d: %v", cluster.ErrNodeDown, node, err)
		}
		// Stale pooled connection: loop re-dials exactly once (the retry's
		// connection is fresh, so a second failure returns above).
	}
}

// Close severs all cached connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, conn := range c.conns {
		if conn != nil {
			conn.Close()
			c.conns[i] = nil
		}
	}
}
