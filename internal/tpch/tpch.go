// Package tpch generates the TPC-H lineitem table as an lpq object, the
// primary evaluation dataset of the paper (§6). The generator is a
// deterministic, seeded dbgen workalike that reproduces the properties the
// evaluation depends on:
//
//   - 16 columns with the value distributions of the TPC-H specification
//     (column id order matches the spec and the paper's Figs. 6, 12, 13);
//   - a bimodal chunk-size profile: a few huge weakly-compressible chunks
//     (l_comment, l_extendedprice, l_partkey) and many tiny highly
//     compressed ones (l_linestatus, l_returnflag, l_linenumber), giving
//     compression ratios from ≈1.5 up to ≈60+ (Fig. 6: median 9.3, max
//     63.5);
//   - row-group structure matching the paper's files (10 row groups in the
//     full-scale configuration).
package tpch

import (
	"fmt"
	"math/rand"

	"github.com/fusionstore/fusion/internal/lpq"
)

// Column ids of the lineitem table, in schema order.
const (
	ColOrderKey = iota
	ColPartKey
	ColSuppKey
	ColLineNumber
	ColQuantity
	ColExtendedPrice
	ColDiscount
	ColTax
	ColReturnFlag
	ColLineStatus
	ColShipDate
	ColCommitDate
	ColReceiptDate
	ColShipInstruct
	ColShipMode
	ColComment
	NumColumns
)

// Schema returns the lineitem schema. Dates are Int64 days since
// 1992-01-01; prices are Float64.
func Schema() []lpq.Column {
	return []lpq.Column{
		{Name: "l_orderkey", Type: lpq.Int64},
		{Name: "l_partkey", Type: lpq.Int64},
		{Name: "l_suppkey", Type: lpq.Int64},
		{Name: "l_linenumber", Type: lpq.Int64},
		{Name: "l_quantity", Type: lpq.Int64},
		{Name: "l_extendedprice", Type: lpq.Float64},
		{Name: "l_discount", Type: lpq.Float64},
		{Name: "l_tax", Type: lpq.Float64},
		{Name: "l_returnflag", Type: lpq.String},
		{Name: "l_linestatus", Type: lpq.String},
		{Name: "l_shipdate", Type: lpq.Int64},
		{Name: "l_commitdate", Type: lpq.Int64},
		{Name: "l_receiptdate", Type: lpq.Int64},
		{Name: "l_shipinstruct", Type: lpq.String},
		{Name: "l_shipmode", Type: lpq.String},
		{Name: "l_comment", Type: lpq.String},
	}
}

// ShipDateDays is the span of l_shipdate values in days (the TPC-H range
// 1992-01-02 .. 1998-12-01). Selectivity-targeted queries derive their
// cutoffs from it.
const ShipDateDays = 2526

var (
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	commentWords  = []string{
		"furiously", "quickly", "carefully", "blithely", "slyly", "express",
		"pending", "regular", "special", "ironic", "final", "bold", "even",
		"accounts", "deposits", "packages", "requests", "instructions",
		"theodolites", "foxes", "pinto", "beans", "dependencies", "asymptotes",
		"sleep", "nag", "haggle", "wake", "cajole", "integrate", "boost",
		"against", "among", "across", "above", "along", "the", "quiet",
	}
)

// Config controls the generated file's scale.
type Config struct {
	// RowGroups is the number of row groups (paper full scale: 10).
	RowGroups int
	// RowsPerGroup is the rows per row group (paper full scale: 30M).
	RowsPerGroup int
	// Seed makes generation deterministic.
	Seed int64
	// Writer configures encoding; zero value means the paper's settings
	// (dictionary + Snappy).
	Writer lpq.WriterOptions
}

// DefaultConfig is a laptop-scale configuration preserving the full-scale
// file's structure: 10 row groups, 16 columns, 160 column chunks.
func DefaultConfig() Config {
	return Config{RowGroups: 10, RowsPerGroup: 60000, Seed: 7, Writer: lpq.DefaultWriterOptions()}
}

// Generate builds the lineitem lpq object.
func Generate(cfg Config) ([]byte, error) {
	if cfg.RowGroups <= 0 || cfg.RowsPerGroup <= 0 {
		return nil, fmt.Errorf("tpch: invalid scale %d x %d", cfg.RowGroups, cfg.RowsPerGroup)
	}
	if cfg.Writer.DictMaxFraction == 0 && !cfg.Writer.Compress && !cfg.Writer.DisableDict {
		cfg.Writer = lpq.DefaultWriterOptions()
	}
	w := lpq.NewWriter(Schema(), cfg.Writer)
	rng := rand.New(rand.NewSource(cfg.Seed))
	orderKey := int64(1)
	lineNo := int64(1)
	for g := 0; g < cfg.RowGroups; g++ {
		n := cfg.RowsPerGroup
		cols := make([]lpq.ColumnData, NumColumns)
		orderkey := make([]int64, n)
		partkey := make([]int64, n)
		suppkey := make([]int64, n)
		linenumber := make([]int64, n)
		quantity := make([]int64, n)
		extprice := make([]float64, n)
		discount := make([]float64, n)
		tax := make([]float64, n)
		returnflag := make([]string, n)
		linestatus := make([]string, n)
		shipdate := make([]int64, n)
		commitdate := make([]int64, n)
		receiptdate := make([]int64, n)
		shipinstruct := make([]string, n)
		shipmode := make([]string, n)
		comment := make([]string, n)
		for i := 0; i < n; i++ {
			// Orders have 1-7 lineitems; orderkey repeats accordingly.
			if lineNo > int64(1+rng.Intn(7)) {
				orderKey++
				lineNo = 1
			}
			orderkey[i] = orderKey
			linenumber[i] = lineNo
			lineNo++
			partkey[i] = 1 + rng.Int63n(200000)
			suppkey[i] = 1 + rng.Int63n(10000)
			quantity[i] = 1 + rng.Int63n(50)
			// extendedprice = quantity * part price; prices are
			// near-unique floats (weakly compressible, Fig. 6).
			extprice[i] = float64(quantity[i]) * (900 + float64(rng.Intn(200000))/100)
			discount[i] = float64(rng.Intn(11)) / 100
			tax[i] = float64(rng.Intn(9)) / 100
			sd := rng.Int63n(ShipDateDays)
			shipdate[i] = sd
			commitdate[i] = sd + int64(rng.Intn(60)) - 30
			receiptdate[i] = sd + 1 + rng.Int63n(30)
			// returnflag depends on receiptdate (spec: R/A before the
			// current date, N after), giving the 3-value distribution.
			switch {
			case receiptdate[i] < ShipDateDays*17/24:
				if rng.Intn(2) == 0 {
					returnflag[i] = "R"
				} else {
					returnflag[i] = "A"
				}
			default:
				returnflag[i] = "N"
			}
			if shipdate[i] < ShipDateDays*3/4 {
				linestatus[i] = "F"
			} else {
				linestatus[i] = "O"
			}
			shipinstruct[i] = shipInstructs[rng.Intn(len(shipInstructs))]
			shipmode[i] = shipModes[rng.Intn(len(shipModes))]
			comment[i] = randComment(rng)
		}
		cols[ColOrderKey] = lpq.IntColumn(orderkey)
		cols[ColPartKey] = lpq.IntColumn(partkey)
		cols[ColSuppKey] = lpq.IntColumn(suppkey)
		cols[ColLineNumber] = lpq.IntColumn(linenumber)
		cols[ColQuantity] = lpq.IntColumn(quantity)
		cols[ColExtendedPrice] = lpq.FloatColumn(extprice)
		cols[ColDiscount] = lpq.FloatColumn(discount)
		cols[ColTax] = lpq.FloatColumn(tax)
		cols[ColReturnFlag] = lpq.StringColumn(returnflag)
		cols[ColLineStatus] = lpq.StringColumn(linestatus)
		cols[ColShipDate] = lpq.IntColumn(shipdate)
		cols[ColCommitDate] = lpq.IntColumn(commitdate)
		cols[ColReceiptDate] = lpq.IntColumn(receiptdate)
		cols[ColShipInstruct] = lpq.StringColumn(shipinstruct)
		cols[ColShipMode] = lpq.StringColumn(shipmode)
		cols[ColComment] = lpq.StringColumn(comment)
		if err := w.WriteRowGroup(cols); err != nil {
			return nil, err
		}
	}
	return w.Finish()
}

// randComment produces a 10-43 character pseudo-text comment (the TPC-H
// l_comment column), the table's dominant, weakly-compressible column.
func randComment(rng *rand.Rand) string {
	out := commentWords[rng.Intn(len(commentWords))]
	for len(out) < 10+rng.Intn(34) {
		out += " " + commentWords[rng.Intn(len(commentWords))]
	}
	return out
}

// MicrobenchQuery returns the paper's microbenchmark (§6): a single-column
// selection with a WHERE clause hitting approximately the given selectivity
// (a fraction in (0, 1]). The filter runs on l_shipdate, which is uniform,
// so the cutoff maps linearly to selectivity.
func MicrobenchQuery(column string, selectivity float64) string {
	cutoff := int64(selectivity * ShipDateDays)
	if cutoff < 1 {
		cutoff = 1
	}
	if cutoff >= ShipDateDays {
		return fmt.Sprintf("SELECT %s FROM lineitem WHERE l_shipdate >= 0", column)
	}
	return fmt.Sprintf("SELECT %s FROM lineitem WHERE l_shipdate < %d", column, cutoff)
}

// Q1 is the paper's "pricing summary report" adaptation (Table 4): one
// filter, six projected columns, ≈1.4% selectivity.
func Q1() string {
	span := float64(ShipDateDays)
	cutoff := int64(0.014 * span)
	return fmt.Sprintf("SELECT l_quantity, l_extendedprice, l_discount, l_tax, l_returnflag, l_linestatus "+
		"FROM lineitem WHERE l_shipdate < %d", cutoff)
}

// Q2 is the paper's "forecasting revenue change" adaptation (TPC-H Q6
// shape, Table 4): three filters, two projected columns, ≈5.4% selectivity.
func Q2() string {
	// shipdate window (~2 years of 7) × discount (5/11) × quantity (24/50)
	// ≈ 0.286 × 0.455 × 0.48 ≈ 0.0624 — close to the paper's 5.4%.
	span := float64(ShipDateDays)
	lo := int64(0.30 * span)
	hi := int64(0.586 * span)
	return fmt.Sprintf("SELECT l_extendedprice, l_discount FROM lineitem "+
		"WHERE l_shipdate >= %d AND l_shipdate < %d AND l_discount >= 0.06 AND l_quantity < 25", lo, hi)
}
