package tpch

import (
	"strings"
	"testing"

	"github.com/fusionstore/fusion/internal/lpq"
	"github.com/fusionstore/fusion/internal/sql"
)

func smallConfig() Config {
	return Config{RowGroups: 4, RowsPerGroup: 8000, Seed: 7, Writer: lpq.DefaultWriterOptions()}
}

func generate(t testing.TB, cfg Config) *lpq.File {
	t.Helper()
	data, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lpq.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	f := generate(t, cfg)
	footer := f.Footer()
	if len(footer.Columns) != 16 {
		t.Fatalf("lineitem must have 16 columns, got %d", len(footer.Columns))
	}
	if len(footer.RowGroups) != cfg.RowGroups {
		t.Fatalf("row groups = %d", len(footer.RowGroups))
	}
	if footer.NumChunks() != 16*cfg.RowGroups {
		t.Fatalf("chunks = %d", footer.NumChunks())
	}
	if footer.NumRows() != cfg.RowGroups*cfg.RowsPerGroup {
		t.Fatalf("rows = %d", footer.NumRows())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("same seed must produce identical files")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero config must fail")
	}
}

func TestValueDomains(t *testing.T) {
	f := generate(t, smallConfig())
	qty, err := f.ReadColumn(ColQuantity)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range qty.Ints {
		if v < 1 || v > 50 {
			t.Fatalf("quantity %d out of [1,50]", v)
		}
	}
	rf, err := f.ReadColumn(ColReturnFlag)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range rf.Strings {
		seen[v] = true
	}
	if !seen["A"] || !seen["N"] || !seen["R"] {
		t.Fatalf("returnflag must use A/N/R, saw %v", seen)
	}
	sd, err := f.ReadColumn(ColShipDate)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sd.Ints {
		if v < 0 || v >= ShipDateDays {
			t.Fatalf("shipdate %d out of range", v)
		}
	}
	disc, err := f.ReadColumn(ColDiscount)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range disc.Floats {
		if v < 0 || v > 0.10 {
			t.Fatalf("discount %v out of range", v)
		}
	}
}

// TestCompressionProfile verifies the Fig. 6 shape: low-cardinality columns
// compress heavily, the comment/price columns barely.
func TestCompressionProfile(t *testing.T) {
	f := generate(t, smallConfig())
	footer := f.Footer()
	ratio := func(col int) float64 {
		sum := 0.0
		for _, rg := range footer.RowGroups {
			sum += rg.Chunks[col].Compressibility()
		}
		return sum / float64(len(footer.RowGroups))
	}
	// lpq's plain string form is uvarint+bytes (2B for 1-char values), so
	// the attainable ratio ceiling is ≈16 where Parquet (4-byte lengths)
	// reports ≈63; the ordering of columns by compressibility matches
	// Fig. 6 either way.
	if r := ratio(ColLineStatus); r < 12 {
		t.Fatalf("l_linestatus (2 values) must compress >12x, got %.1f", r)
	}
	if r := ratio(ColReturnFlag); r < 7 {
		t.Fatalf("l_returnflag (3 values) must compress >7x, got %.1f", r)
	}
	if r := ratio(ColComment); r > 5 {
		t.Fatalf("l_comment must be weakly compressible, got %.1f", r)
	}
	if r := ratio(ColExtendedPrice); r > 4 {
		t.Fatalf("l_extendedprice must be weakly compressible, got %.1f", r)
	}
	// Bimodal chunk sizes: largest column dwarfs the smallest (Fig. 4c).
	var minSz, maxSz uint64 = 1 << 62, 0
	for col := 0; col < 16; col++ {
		sz := footer.RowGroups[0].Chunks[col].Size
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz < 50*minSz {
		t.Fatalf("chunk sizes must be strongly bimodal: min %d max %d", minSz, maxSz)
	}
}

func TestMicrobenchQuerySelectivity(t *testing.T) {
	cfg := smallConfig()
	f := generate(t, cfg)
	sd, err := f.ReadColumn(ColShipDate)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.01, 0.1, 0.5, 1.0} {
		qs := MicrobenchQuery("l_orderkey", target)
		q, err := sql.Parse(qs)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		cmp := q.Where.(*sql.Compare)
		matched := 0
		for _, v := range sd.Ints {
			ok := false
			if cmp.Op == sql.OpLt {
				ok = v < cmp.Value.I
			} else {
				ok = v >= cmp.Value.I
			}
			if ok {
				matched++
			}
		}
		got := float64(matched) / float64(len(sd.Ints))
		if got < target*0.7-0.005 || got > target*1.3+0.005 {
			t.Errorf("target %.3f: achieved selectivity %.4f", target, got)
		}
	}
}

func TestQ1Q2ParseAndSelectivity(t *testing.T) {
	f := generate(t, smallConfig())
	for _, qs := range []string{Q1(), Q2()} {
		if _, err := sql.Parse(qs); err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		if !strings.Contains(qs, "FROM lineitem") {
			t.Fatalf("query must target lineitem: %q", qs)
		}
	}
	// Verify Q2's combined selectivity lands near the paper's 5.4%.
	sd, _ := f.ReadColumn(ColShipDate)
	disc, _ := f.ReadColumn(ColDiscount)
	qty, _ := f.ReadColumn(ColQuantity)
	q, err := sql.Parse(Q2())
	if err != nil {
		t.Fatal(err)
	}
	_ = q
	span := float64(ShipDateDays)
	lo := int64(0.30 * span)
	hi := int64(0.586 * span)
	matched := 0
	for i := range sd.Ints {
		if sd.Ints[i] >= lo && sd.Ints[i] < hi && disc.Floats[i] >= 0.06 && qty.Ints[i] < 25 {
			matched++
		}
	}
	sel := float64(matched) / float64(len(sd.Ints))
	if sel < 0.03 || sel > 0.09 {
		t.Fatalf("Q2 selectivity %.4f outside the expected band", sel)
	}
}
