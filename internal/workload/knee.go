package workload

import (
	"fmt"
	"time"

	"github.com/fusionstore/fusion/internal/loadgen"
	"github.com/fusionstore/fusion/internal/sched"
	"github.com/fusionstore/fusion/internal/store"
)

// KneeConfig parameterizes the saturation-knee experiment: a geometric
// arrival-rate ladder walked until the SLOs fail (the knee is the last rate
// that held them), then a multi-tenant shed leg at twice the knee that
// verifies the store degrades by *refusing* work — classified, retryable
// ErrOverloaded with bounded tails for admitted ops — rather than timing
// out wholesale.
type KneeConfig struct {
	// Seed drives schedules and corpora, exactly as in the load ladder.
	Seed int64
	// StartRate is the first rung (ops/sec); each rung multiplies by Factor.
	StartRate float64
	Factor    float64
	// MaxRungs bounds the ladder walk; if every rung passes, the knee is
	// reported at the last rung and Saturated stays false.
	MaxRungs int
	// Window is each rung's arrival horizon.
	Window time.Duration
	// Objects and RowsPerObject size the corpus (shared by every rung and
	// both shed-leg tenants).
	Objects       int
	RowsPerObject int
	// OpDeadline is the end-to-end budget attached to every shed-leg op —
	// what deadline propagation carries to the nodes and what the scheduler
	// sheds against.
	OpDeadline time.Duration
	// TailBound is the shed-leg p99.9 ceiling as a multiple of OpDeadline.
	// Admitted or shed, every op must resolve within it: a deadline-bounded
	// system has no business showing an unbounded tail.
	TailBound float64
	// PointFrac is the latency-sensitive point-read tenant's rate as a
	// fraction of the knee; the aggressor tenant offers 2x knee on top.
	PointFrac float64
	// Sched bounds the admission scheduler for the shed leg.
	Sched sched.Config
}

// DefaultKneeConfig returns the canonical knee experiment: a x2 ladder from
// 1000 ops/s, 800 ms windows, and a shed leg where a scan-heavy aggressor
// offers twice the knee while a weighted point-read tenant expects service.
func DefaultKneeConfig() KneeConfig {
	return KneeConfig{
		Seed:          11,
		StartRate:     1000,
		Factor:        2,
		MaxRungs:      7,
		Window:        800 * time.Millisecond,
		Objects:       24,
		RowsPerObject: 120,
		OpDeadline:    250 * time.Millisecond,
		TailBound:     4,
		PointFrac:     0.10,
		Sched: sched.Config{
			Slots:      64,
			ScanSlots:  16,
			PutSlots:   16,
			QueueDepth: 64,
			// The point tenant outweighs the aggressor 8:1 — fairness, not
			// priority: the aggressor still runs, it just cannot starve.
			Weights: map[string]int{"point": 8, "aggressor": 1},
		},
	}
}

// KneeRung is one ladder rung's outcome summary.
type KneeRung struct {
	RateOps    float64 `json:"rate_ops"`
	SLOPass    bool    `json:"slo_pass"`
	GoodputOps float64 `json:"goodput_ops"`
	GetP50Us   float64 `json:"get_p50_us"`
	GetP999Us  float64 `json:"get_p999_us"`
	ReadAvail  float64 `json:"read_availability"`
}

// ShedTenant is one shed-leg tenant's outcome summary.
type ShedTenant struct {
	RateOps                  float64 `json:"rate_ops"`
	Attempted                uint64  `json:"attempted"`
	Succeeded                uint64  `json:"succeeded"`
	Shed                     uint64  `json:"shed"`
	DeadlineFails            uint64  `json:"deadline_fails"`
	Unclassified             uint64  `json:"unclassified"`
	AdmittedReadAvailability float64 `json:"admitted_read_availability"`
	GetP50Us                 float64 `json:"get_p50_us"`
	GetP999Us                float64 `json:"get_p999_us"`
	OracleChecks             uint64  `json:"oracle_checks"`
	OracleMismatches         uint64  `json:"oracle_mismatches"`
}

// ShedStats is the shed leg's outcome: the store at twice its measured
// capacity, judged on *how* it fails.
type ShedStats struct {
	// OfferedOps is the total offered arrival rate across tenants.
	OfferedOps   float64                `json:"offered_ops"`
	OpDeadlineMS float64                `json:"op_deadline_ms"`
	TailBoundUs  float64                `json:"tail_bound_us"`
	Tenants      map[string]*ShedTenant `json:"tenants"`
	// Pass is the shed verdict: admitted reads ≥99% available, every
	// rejection classified, tails bounded, zero oracle mismatches.
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// KneeStats is the saturation-knee experiment's machine-readable result,
// recorded in BENCH_load.json alongside the canonical ladder.
type KneeStats struct {
	Rungs []KneeRung `json:"rungs"`
	// KneeOps is the peak sustainable rate: the last rung that held its
	// SLOs. Saturated reports whether a failing rung was actually observed
	// (false means the ladder topped out before the knee).
	KneeOps   float64    `json:"knee_ops"`
	Saturated bool       `json:"saturated"`
	Shed      *ShedStats `json:"shed,omitempty"`
}

// MeasureKnee walks the rate ladder to the saturation knee, then runs the
// multi-tenant shed leg at twice the knee.
func MeasureKnee(l *Lab, cfg KneeConfig) (*KneeStats, error) {
	const nodes = 9
	st := &KneeStats{}
	rate := cfg.StartRate
	for i := 0; i < cfg.MaxRungs; i++ {
		// A fresh, scheduler-less deployment per rung: the knee measures the
		// raw system's capacity, not the shedder's opinion of it.
		s, _, err := loadStore(nodes, cfg.Seed, 0)
		if err != nil {
			return nil, err
		}
		run, err := loadgen.Run(loadgen.StoreTarget{S: s}, loadgen.Config{
			Seed:          cfg.Seed,
			Rate:          rate,
			Duration:      cfg.Window,
			Objects:       cfg.Objects,
			RowsPerObject: cfg.RowsPerObject,
		})
		if err != nil {
			return nil, fmt.Errorf("workload: knee rung %g: %w", rate, err)
		}
		rung := KneeRung{
			RateOps:    rate,
			SLOPass:    run.SLOPass,
			GoodputOps: run.GoodputOps,
			ReadAvail:  run.ReadAvailability(),
		}
		if g := run.PerOp["get"]; g != nil {
			rung.GetP50Us, rung.GetP999Us = g.P50Us, g.P999Us
		}
		st.Rungs = append(st.Rungs, rung)
		if !run.SLOPass {
			st.Saturated = true
			break
		}
		st.KneeOps = rate
		rate *= cfg.Factor
	}
	if st.KneeOps == 0 {
		return nil, fmt.Errorf("workload: knee ladder failed at its first rung (%g ops/s) — start lower", cfg.StartRate)
	}

	shed, err := measureShed(cfg, st.KneeOps)
	if err != nil {
		return nil, err
	}
	st.Shed = shed
	return st, nil
}

// measureShed runs the 2x-past-knee leg: an admission-controlled store, a
// scan-heavy aggressor offering twice the knee, and a weighted point-read
// tenant at PointFrac of the knee, every op carrying OpDeadline.
func measureShed(cfg KneeConfig, knee float64) (*ShedStats, error) {
	const nodes = 9
	s, _, err := loadStoreWith(nodes, cfg.Seed, 0, func(o *store.Options) {
		o.Sched = sched.New(cfg.Sched)
	})
	if err != nil {
		return nil, err
	}
	aggressorRate := 2 * knee
	pointRate := cfg.PointFrac * knee
	runs := []loadgen.TenantRun{
		{Name: "aggressor", Cfg: loadgen.Config{
			Seed:          cfg.Seed,
			Rate:          aggressorRate,
			Duration:      cfg.Window,
			Mix:           loadgen.Mix{Get: 0.15, Put: 0.05, Query: 0.80},
			Objects:       cfg.Objects,
			RowsPerObject: cfg.RowsPerObject,
			OpDeadline:    cfg.OpDeadline,
			SLOs:          []loadgen.SLO{}, // judged by the shed verdict, not per-op SLOs
		}},
		{Name: "point", Cfg: loadgen.Config{
			Seed:          cfg.Seed,
			Rate:          pointRate,
			Duration:      cfg.Window,
			Mix:           loadgen.Mix{Get: 1},
			Objects:       cfg.Objects,
			RowsPerObject: cfg.RowsPerObject,
			OpDeadline:    cfg.OpDeadline,
			SLOs:          []loadgen.SLO{},
		}},
	}
	stats, err := loadgen.RunTenants(loadgen.StoreTarget{S: s}, runs)
	if err != nil {
		return nil, fmt.Errorf("workload: shed leg: %w", err)
	}

	out := &ShedStats{
		OfferedOps:   aggressorRate + pointRate,
		OpDeadlineMS: float64(cfg.OpDeadline) / float64(time.Millisecond),
		TailBoundUs:  cfg.TailBound * float64(cfg.OpDeadline) / float64(time.Microsecond),
		Tenants:      map[string]*ShedTenant{},
		Pass:         true,
	}
	fail := func(format string, args ...any) {
		out.Pass = false
		out.Failures = append(out.Failures, fmt.Sprintf(format, args...))
	}
	for name, run := range stats {
		t := &ShedTenant{
			RateOps:                  run.RateOps,
			Shed:                     run.Shed(),
			Unclassified:             run.UnclassifiedErrors(),
			AdmittedReadAvailability: run.AdmittedReadAvailability(),
			OracleChecks:             run.OracleChecks,
			OracleMismatches:         run.OracleMismatches,
		}
		for _, o := range run.PerOp {
			t.Attempted += o.Attempted
			t.Succeeded += o.Succeeded
			t.DeadlineFails += o.Errors[loadgen.ErrClassDeadline]
		}
		if g := run.PerOp["get"]; g != nil {
			t.GetP50Us, t.GetP999Us = g.P50Us, g.P999Us
		}
		out.Tenants[name] = t

		// The verdict: past the knee, shedding is expected and legal —
		// unclassified failure, unavailable *admitted* reads, silent
		// corruption or an unbounded tail are not.
		if t.AdmittedReadAvailability < 0.99 {
			fail("%s: admitted read availability %.4f < 0.99", name, t.AdmittedReadAvailability)
		}
		if t.Unclassified > 0 {
			fail("%s: %d unclassified errors under overload", name, t.Unclassified)
		}
		if t.OracleMismatches > 0 {
			fail("%s: %d oracle mismatches: %v", name, t.OracleMismatches, run.MismatchSamples)
		}
		for op, o := range run.PerOp {
			if o.Attempted > 0 && o.P999Us > out.TailBoundUs {
				fail("%s: %s p99.9 %.0fµs exceeds bound %.0fµs", name, op, o.P999Us, out.TailBoundUs)
			}
		}
	}
	// The whole point of weighted admission: the aggressor's overload must
	// not translate into the point tenant being mostly shed.
	if pt := out.Tenants["point"]; pt != nil && pt.Attempted > 0 {
		if served := float64(pt.Succeeded) / float64(pt.Attempted); served < 0.90 {
			fail("point tenant served only %.1f%% of its offered load under aggressor", served*100)
		}
	}
	return out, nil
}

// KneeReport is the registry driver: the knee ladder and shed verdict as a
// printable table.
func (l *Lab) KneeReport() *Report {
	st, err := MeasureKnee(l, DefaultKneeConfig())
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	r := &Report{
		ID:     "knee",
		Title:  "saturation knee + 2x-past-knee shed verdict",
		Header: []string{"rate ops/s", "slo", "goodput", "get p50 µs", "get p99.9 µs", "read avail"},
	}
	for _, rung := range st.Rungs {
		verdict := "pass"
		if !rung.SLOPass {
			verdict = "FAIL (knee)"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", rung.RateOps), verdict,
			fmt.Sprintf("%.0f", rung.GoodputOps),
			fmt.Sprintf("%.0f", rung.GetP50Us), fmt.Sprintf("%.0f", rung.GetP999Us),
			fmt.Sprintf("%.4f", rung.ReadAvail),
		})
	}
	r.Notes = append(r.Notes, fmt.Sprintf("knee: %.0f ops/s (saturated=%v)", st.KneeOps, st.Saturated))
	if sh := st.Shed; sh != nil {
		verdict := "pass"
		if !sh.Pass {
			verdict = fmt.Sprintf("FAIL: %v", sh.Failures)
		}
		r.Notes = append(r.Notes, fmt.Sprintf("shed @ %.0f ops/s (2x knee + point tenant): %s", sh.OfferedOps, verdict))
		for name, t := range sh.Tenants {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"  %s: offered %.0f ops/s, shed %d/%d, deadline %d, admitted-read avail %.4f, get p99.9 %.0fµs",
				name, t.RateOps, t.Shed, t.Attempted, t.DeadlineFails, t.AdmittedReadAvailability, t.GetP999Us))
		}
	}
	return r
}
