package workload

import (
	"fmt"

	"github.com/fusionstore/fusion/internal/datasets"
	"github.com/fusionstore/fusion/internal/metrics"
	"github.com/fusionstore/fusion/internal/sql"
	"github.com/fusionstore/fusion/internal/tpch"
)

// realQuery is one Table 4 entry.
type realQuery struct {
	Name    string
	Label   string
	Dataset DatasetName
	SQL     string
}

// RealQueries returns the four Table 4 queries.
func RealQueries() []realQuery {
	return []realQuery{
		{"Q1", "projection heavy", Lineitem, tpch.Q1()},
		{"Q2", "filter heavy", Lineitem, tpch.Q2()},
		{"Q3", "high selectivity", Taxi, datasets.TaxiQ3()},
		{"Q4", "low selectivity", Taxi, datasets.TaxiQ4()},
	}
}

// repeatQuery builds a batch of identical queries (real-world queries are
// fixed; latency variance comes from the cost model's jitter).
func repeatQuery(q string) []string {
	out := make([]string, QueriesPerCell)
	for i := range out {
		out[i] = q
	}
	return out
}

// Tab4 regenerates Table 4: the real-world query descriptions, with
// measured selectivity.
func (l *Lab) Tab4() *Report {
	r := &Report{
		ID:     "tab4",
		Title:  "real-world SQL query description",
		Header: []string{"query", "dataset", "num filters", "num projections", "selectivity"},
	}
	for _, rq := range RealQueries() {
		parsed, err := sql.Parse(rq.SQL)
		if err != nil {
			panic(err)
		}
		res, err := l.Fusion(rq.Dataset).Store.Query(rq.SQL)
		if err != nil {
			panic(err)
		}
		nFilters := len(countLeaves(parsed.Where))
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%s (%s)", rq.Name, rq.Label),
			string(rq.Dataset),
			fmt.Sprint(nFilters),
			fmt.Sprint(len(parsed.Projections)),
			pct(res.Stats.Selectivity),
		})
	}
	return r
}

func countLeaves(e sql.Expr) []*sql.Compare {
	switch node := e.(type) {
	case nil:
		return nil
	case *sql.Compare:
		return []*sql.Compare{node}
	case *sql.Binary:
		return append(countLeaves(node.L), countLeaves(node.R)...)
	case *sql.Not:
		return countLeaves(node.E)
	default:
		return nil
	}
}

// Fig15a regenerates Fig. 15a: p50/p99 latency reduction of Fusion on the
// four real-world queries.
func (l *Lab) Fig15a() *Report {
	r := &Report{
		ID:     "fig15a",
		Title:  "latency reduction on real-world SQL queries",
		Header: []string{"query", "p50 reduction", "p99 reduction"},
	}
	for _, rq := range RealQueries() {
		batch := repeatQuery(rq.SQL)
		f, err := RunQueries(l.Fusion(rq.Dataset), batch)
		if err != nil {
			panic(err)
		}
		b, err := RunQueries(l.Baseline(rq.Dataset), batch)
		if err != nil {
			panic(err)
		}
		r.Rows = append(r.Rows, []string{
			rq.Name,
			pct(metrics.Reduction(b.Latency.P50(), f.Latency.P50())),
			pct(metrics.Reduction(b.Latency.P99(), f.Latency.P99())),
		})
	}
	return r
}

// Fig15b regenerates Fig. 15b: total network traffic of Fusion vs the
// baseline on the real-world queries.
func (l *Lab) Fig15b() *Report {
	r := &Report{
		ID:     "fig15b",
		Title:  "total network traffic on real-world SQL queries",
		Header: []string{"query", "fusion", "baseline", "reduction factor"},
	}
	for _, rq := range RealQueries() {
		batch := repeatQuery(rq.SQL)
		f, err := RunQueries(l.Fusion(rq.Dataset), batch)
		if err != nil {
			panic(err)
		}
		b, err := RunQueries(l.Baseline(rq.Dataset), batch)
		if err != nil {
			panic(err)
		}
		factor := 0.0
		if f.Traffic > 0 {
			factor = float64(b.Traffic) / float64(f.Traffic)
		}
		r.Rows = append(r.Rows, []string{
			rq.Name, mb(f.Traffic), mb(b.Traffic), fmt.Sprintf("%.1fx", factor),
		})
	}
	return r
}

// Headline regenerates the paper's §1/§8 headline numbers from the other
// experiments: best median/tail reduction on the TPC-H microbenchmark, best
// reductions on the real queries, and FAC's storage overhead.
func (l *Lab) Headline() *Report {
	r := &Report{
		ID:     "headline",
		Title:  "headline results (paper: 64%/81% TPC-H, 40%/48% real queries, ≤1.24% storage overhead)",
		Header: []string{"metric", "value"},
	}
	// Best-column microbenchmark reductions.
	bestP50, bestP99 := 0.0, 0.0
	for col, name := range lineitemColumns() {
		f, b := l.columnCell(name, 0.01, int64(100+col))
		if v := metrics.Reduction(b.Latency.P50(), f.Latency.P50()); v > bestP50 {
			bestP50 = v
		}
		if v := metrics.Reduction(b.Latency.P99(), f.Latency.P99()); v > bestP99 {
			bestP99 = v
		}
	}
	r.Rows = append(r.Rows,
		[]string{"TPC-H microbenchmark best p50 reduction", pct(bestP50)},
		[]string{"TPC-H microbenchmark best p99 reduction", pct(bestP99)})
	// Real-query reductions.
	rBestP50, rBestP99 := 0.0, 0.0
	for _, rq := range RealQueries() {
		batch := repeatQuery(rq.SQL)
		f, _ := RunQueries(l.Fusion(rq.Dataset), batch)
		b, _ := RunQueries(l.Baseline(rq.Dataset), batch)
		if v := metrics.Reduction(b.Latency.P50(), f.Latency.P50()); v > rBestP50 {
			rBestP50 = v
		}
		if v := metrics.Reduction(b.Latency.P99(), f.Latency.P99()); v > rBestP99 {
			rBestP99 = v
		}
	}
	r.Rows = append(r.Rows,
		[]string{"real-query best p50 reduction", pct(rBestP50)},
		[]string{"real-query best p99 reduction", pct(rBestP99)})
	// FAC storage overhead across datasets (max).
	worst := 0.0
	for _, d := range AllDatasets {
		over := l.facOverhead(d)
		if over > worst {
			worst = over
		}
	}
	r.Rows = append(r.Rows, []string{"FAC storage overhead vs optimal (worst dataset)", pct(worst)})
	return r
}
